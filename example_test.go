package trsparse_test

// Runnable godoc examples for the v2 handle API. `go test` compiles and
// runs them against the printed output, so pkg.go.dev shows code that is
// guaranteed to work; keep them small enough to finish in milliseconds.

import (
	"context"
	"fmt"
	"log"

	trsparse "repro"
)

// ExampleNew builds a Sparsifier handle once and reads its construction
// facts. Construction runs the paper's Algorithm 2 and factorizes the
// result; everything afterwards reuses that work.
func ExampleNew() {
	g := trsparse.Grid2D(20, 20, 1) // a 400-vertex weighted grid
	s, err := trsparse.New(context.Background(), g,
		trsparse.WithAlpha(0.10), // paper default: recover 10%·|V| off-tree edges
		trsparse.WithSeed(1),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("vertices:", s.N())
	fmt.Println("sparsifier is a subgraph:", s.SparsifierGraph().M() <= g.M())
	// Output:
	// vertices: 400
	// sparsifier is a subgraph: true
}

// ExampleSparsifier_Solve solves L_G x = b through the handle's cached
// factorization — the call that serving workloads repeat thousands of
// times per build.
func ExampleSparsifier_Solve() {
	g := trsparse.Grid2D(20, 20, 1)
	s, err := trsparse.New(context.Background(), g, trsparse.WithSeed(1), trsparse.WithTolerance(1e-6))
	if err != nil {
		log.Fatal(err)
	}
	b := make([]float64, s.N())
	b[0], b[s.N()-1] = 1, -1 // inject current at two corners
	sol, err := s.Solve(context.Background(), b)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("converged:", sol.Converged)
	fmt.Println("solution length:", len(sol.X))
	// Output:
	// converged: true
	// solution length: 400
}

// ExampleWithShards routes a graph through the partition-parallel
// pipeline: clusters are sparsified concurrently and stitched, and the
// handle carries per-shard telemetry.
func ExampleWithShards() {
	g := trsparse.Grid2D(40, 40, 1)
	s, err := trsparse.New(context.Background(), g,
		trsparse.WithShardThreshold(400), // shard graphs above 400 vertices
		trsparse.WithShards(4),           // into (about) 4 clusters
		trsparse.WithSeed(1),
	)
	if err != nil {
		log.Fatal(err)
	}
	st := s.ShardStats()
	fmt.Println("sharded:", s.Sharded())
	fmt.Println("clusters planned:", st.Shards >= 4)
	fmt.Println("preconditioner:", s.PrecondStats().Kind)
	// Output:
	// sharded: true
	// clusters planned: true
	// preconditioner: schwarz
}

// ExampleSparsifier_Update applies an edge delta incrementally: clusters
// the delta does not touch keep their sparsifiers and Schwarz factors,
// so the rebuild costs a fraction of a cold build.
func ExampleSparsifier_Update() {
	g := trsparse.Grid2D(40, 40, 1)
	s, err := trsparse.New(context.Background(), g,
		trsparse.WithShardThreshold(400), trsparse.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	s2, err := s.Update(context.Background(), trsparse.Delta{
		Set: []trsparse.Edge{{U: 0, V: 1, W: 5}}, // one conductance changed
	})
	if err != nil {
		log.Fatal(err)
	}
	st := s2.ShardStats()
	fmt.Println("incremental:", st.Incremental)
	fmt.Println("reused most clusters:", 2*st.ClustersReused > st.Shards)
	fmt.Println("base handle unchanged:", s.N() == s2.N())
	// Output:
	// incremental: true
	// reused most clusters: true
	// base handle unchanged: true
}
