package trsparse

import (
	"repro/internal/core"
	"repro/internal/fabric"
)

// Config is the resolved configuration of a Sparsifier handle. Build one
// implicitly by passing Options to New; zero values select the paper's
// parameters (α = 10%·|V| recovered edges, N_r = 5 rounds, β = 5, δ = 0.1)
// and library defaults for every measurement.
type Config = core.Config

// Option configures New. Options compose left to right; later options win.
type Option func(*Config)

// WithMethod selects the sparsification algorithm (TraceReduction, GRASS,
// FeGRASS, or MethodER; default TraceReduction).
func WithMethod(m Method) Option {
	return func(c *Config) { c.Sparsify.Method = m }
}

// WithERSketches fixes the number of Johnson–Lindenstrauss sketch columns
// the effective-resistance estimator solves (0, the default, derives the
// count from |V| and the epsilon of WithEREpsilon). More sketches buy
// resistance accuracy — and with it sparsifier quality — linearly in
// estimation time. It affects MethodER builds and WithERRanking only.
func WithERSketches(k int) Option {
	return func(c *Config) { c.Sparsify.ERSketches = k }
}

// WithEREpsilon sets the target relative accuracy ε of the sketched
// effective resistances (default 0.5); the auto-derived sketch count
// grows as 1/ε². It affects MethodER builds and WithERRanking only, and
// is ignored when WithERSketches pins the count explicitly.
func WithEREpsilon(eps float64) Option {
	return func(c *Config) { c.Sparsify.EREpsilon = eps }
}

// WithERRanking reuses sketched effective resistances inside trace
// reduction: each densification round's candidate pool is prefiltered to
// the highest-leverage (w·R_eff) off-subgraph edges before the eq. (20)
// trace scoring runs. One sketch estimation is paid up front; each round
// then scores a small, spectrally relevant slice instead of every
// candidate. It has no effect on methods other than TraceReduction.
func WithERRanking() Option {
	return func(c *Config) { c.Sparsify.ERRanking = true }
}

// WithAlpha sets the fraction of |V| off-tree edges to recover
// (paper: 0.10).
func WithAlpha(alpha float64) Option {
	return func(c *Config) { c.Sparsify.Alpha = alpha }
}

// WithRecoveryRounds sets the number of densification iterations N_r
// (paper: 5).
func WithRecoveryRounds(rounds int) Option {
	return func(c *Config) { c.Sparsify.Rounds = rounds }
}

// WithBeta sets the BFS truncation depth β of eq. (12) (paper: 5).
func WithBeta(beta int) Option {
	return func(c *Config) { c.Sparsify.Beta = beta }
}

// WithDelta sets the SPAI pruning threshold δ of Algorithm 1 (paper: 0.1).
func WithDelta(delta float64) Option {
	return func(c *Config) { c.Sparsify.Delta = delta }
}

// WithSimilarityHops sets the BFS radius γ used to exclude edges
// spectrally similar to a recovered edge (default 2; negative disables
// exclusion).
func WithSimilarityHops(hops int) Option {
	return func(c *Config) { c.Sparsify.SimilarityHops = hops }
}

// WithShiftRel scales the shared diagonal regularization relative to the
// mean weighted degree (default 1e-6). The handle applies the same shift
// to both Laplacians of the pencil.
func WithShiftRel(rel float64) Option {
	return func(c *Config) { c.Sparsify.ShiftRel = rel }
}

// WithWorkers bounds construction-scoring and SolveBatch parallelism
// (default GOMAXPROCS).
func WithWorkers(workers int) Option {
	return func(c *Config) { c.Sparsify.Workers = workers }
}

// WithSeed drives every random choice — construction, Lanczos start
// vectors, Hutchinson probes — making runs reproducible.
func WithSeed(seed int64) Option {
	return func(c *Config) { c.Sparsify.Seed = seed }
}

// WithTolerance sets the PCG relative residual tolerance for Solve
// (default 1e-6).
func WithTolerance(tol float64) Option {
	return func(c *Config) { c.Tol = tol }
}

// WithMaxIterations caps PCG iterations per solve (default 10·n).
func WithMaxIterations(n int) Option {
	return func(c *Config) { c.MaxIter = n }
}

// WithLanczosSteps controls the CondNumber estimate's Lanczos step count
// (default 80).
func WithLanczosSteps(steps int) Option {
	return func(c *Config) { c.LanczosSteps = steps }
}

// WithTraceProbes sets the Hutchinson sample count for TraceProxy
// (default 30; ≈30 gives a few percent accuracy).
func WithTraceProbes(probes int) Option {
	return func(c *Config) { c.TraceProbes = probes }
}

// WithFiedlerSteps sets the inverse-power iteration count for Fiedler and
// Partition (default 10).
func WithFiedlerSteps(steps int) Option {
	return func(c *Config) { c.FiedlerSteps = steps }
}

// WithFiedlerTolerance sets the inner PCG tolerance of each inverse-power
// step (default: the Solve tolerance).
func WithFiedlerTolerance(tol float64) Option {
	return func(c *Config) { c.FiedlerTol = tol }
}

// WithMaxVertices rejects graphs with more vertices at admission with
// ErrTooLarge (0 disables the limit). Serving deployments use it to bound
// per-request memory.
func WithMaxVertices(n int) Option {
	return func(c *Config) { c.MaxVertices = n }
}

// WithCancelCheckEvery sets how many PCG iterations run between context
// polls (default 32). Lower values tighten cancellation latency at a
// negligible per-iteration cost.
func WithCancelCheckEvery(k int) Option {
	return func(c *Config) { c.CheckEvery = k }
}

// WithShardThreshold routes graphs with more than n vertices through the
// partition-parallel sharded pipeline: the graph is recursively
// bipartitioned into balanced clusters (spectral split with a BFS
// fallback), each cluster is sparsified concurrently, and the pieces are
// stitched with a cut-edge spanning forest plus one global
// trace-reduction recovery round. 0 (the default) builds every graph
// monolithically. Sharded handles report telemetry via
// Sparsifier.ShardStats.
func WithShardThreshold(n int) Option {
	return func(c *Config) { c.ShardThreshold = n }
}

// WithShards sets the cluster count K for the sharded pipeline (0 derives
// K from the shard threshold: ceil(|V|/threshold)). It has no effect
// unless WithShardThreshold routes the graph into the sharded path.
func WithShards(k int) Option {
	return func(c *Config) { c.Shards = k }
}

// WithPrecond selects how the sparsifier-side preconditioner is built:
// PrecondMonolithic (one Cholesky of the whole stitched sparsifier),
// PrecondSchwarz (per-cluster factors plus a coarse cut-coupling
// correction, factorized concurrently — the sharded pencil), or
// PrecondAuto (the default: Schwarz when the graph was built through the
// sharded pipeline, monolithic otherwise). Handles report the decision
// and its cost via Sparsifier.PrecondStats.
func WithPrecond(p Precond) Option {
	return func(c *Config) { c.Precond = p }
}

// WithSchwarzOverlap overrides how many structure layers each Schwarz
// cluster is extended by before its principal submatrix is factorized
// (0, the default, adapts to the cluster geometry ≈ √(N/K)/4; negative
// disables overlap). Wider overlap buys PCG convergence for a bounded
// duplication of boundary work. It has no effect on the monolithic
// preconditioner.
func WithSchwarzOverlap(layers int) Option {
	return func(c *Config) { c.Overlap = layers }
}

// WithApplyWorkers bounds the Schwarz preconditioner's per-apply
// parallelism: within each sweep color the block corrections are
// support-disjoint and A-decoupled, so one Apply fans them out across
// this many goroutines, bit-identical to the sequential sweep (0, the
// default, uses GOMAXPROCS; negative forces the sequential sweep). It
// has no effect on the monolithic preconditioner, whose single
// triangular solve has no blocks to fan out.
func WithApplyWorkers(workers int) Option {
	return func(c *Config) { c.ApplyWorkers = workers }
}

// WithRebalanceFactor tunes the incremental rebuild's balance guard: an
// Update whose delta grew any retained cluster past factor × its fair
// edge share (M/K) — or past factor × its own base-build size — replans
// from scratch instead of reusing the stale plan (0 keeps the default of
// 4; negative disables the guard). See Sparsifier.Update.
func WithRebalanceFactor(factor float64) Option {
	return func(c *Config) { c.Rebalance = factor }
}

// WithFleet dispatches the clusters of sharded builds to a worker fleet
// over HTTP: each url is the base address of a `trsparsed -worker`
// process (e.g. "http://10.0.0.7:8372"). Placement uses rendezvous
// hashing on the cluster fingerprint, so the same cluster keeps landing
// on the same worker — and that worker's cluster cache keeps its hit
// rate — across rebuilds; failed or straggling workers are retried,
// hedged, and ultimately degraded to in-process execution, so a build
// never fails because the fleet did. No urls (or none surviving
// trimming) keeps every cluster build in-process. It has no effect
// unless WithShardThreshold routes the graph into the sharded path.
func WithFleet(urls ...string) Option {
	return func(c *Config) {
		if len(urls) == 0 {
			c.Dispatcher = nil
			return
		}
		c.Dispatcher = fabric.NewRemote(urls, fabric.Options{})
	}
}

// WithSparsifierGraph skips construction and adopts p as the sparsifier.
// p must span the same vertex set as the input graph (ErrDimension
// otherwise) and be connected (ErrDisconnected otherwise). Use it to
// measure a subgraph you built yourself — a bare spanning tree, a
// sparsifier from another tool — through the same pencil machinery.
func WithSparsifierGraph(p *Graph) Option {
	return func(c *Config) { c.Prebuilt = p }
}

// WithSparsifyOptions replaces the whole construction parameter block at
// once — the bridge for v1 callers holding an Options struct.
func WithSparsifyOptions(o Options) Option {
	return func(c *Config) { c.Sparsify = o }
}

// newConfig folds options into a Config (zero value = defaults).
func newConfig(opts []Option) Config {
	var c Config
	for _, o := range opts {
		if o != nil {
			o(&c)
		}
	}
	return c
}
