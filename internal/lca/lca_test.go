package lca

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveLCA walks parents upward; the test oracle.
func naiveLCA(parent []int, u, v int) int {
	depth := func(x int) int {
		d := 0
		for parent[x] >= 0 {
			x = parent[x]
			d++
		}
		return d
	}
	du, dv := depth(u), depth(v)
	for du > dv {
		u = parent[u]
		du--
	}
	for dv > du {
		v = parent[v]
		dv--
	}
	for u != v {
		u = parent[u]
		v = parent[v]
	}
	return u
}

func TestOfflineSmallTree(t *testing.T) {
	//        0
	//       / \
	//      1   2
	//     / \    \
	//    3   4    5
	parent := []int{-1, 0, 0, 1, 1, 2}
	qs := []Query{{3, 4}, {3, 5}, {1, 4}, {0, 5}, {3, 3}, {4, 2}}
	want := []int{1, 0, 1, 0, 3, 0}
	got := Offline(Tree{Parent: parent, Root: 0}, qs)
	for i := range qs {
		if got[i] != want[i] {
			t.Errorf("lca(%d,%d) = %d, want %d", qs[i].U, qs[i].V, got[i], want[i])
		}
	}
}

func TestOfflinePathTree(t *testing.T) {
	// Path 0 → 1 → 2 → 3 → 4 rooted at 0.
	parent := []int{-1, 0, 1, 2, 3}
	qs := []Query{{4, 0}, {4, 2}, {3, 1}, {2, 2}}
	want := []int{0, 2, 1, 2}
	got := Offline(Tree{Parent: parent, Root: 0}, qs)
	for i := range qs {
		if got[i] != want[i] {
			t.Errorf("query %d: got %d, want %d", i, got[i], want[i])
		}
	}
}

func TestOfflineNoQueries(t *testing.T) {
	got := Offline(Tree{Parent: []int{-1, 0}, Root: 0}, nil)
	if len(got) != 0 {
		t.Errorf("expected empty result, got %v", got)
	}
}

func TestOfflineMatchesNaiveQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(60)
		parent := make([]int, n)
		parent[0] = -1
		for v := 1; v < n; v++ {
			parent[v] = rng.Intn(v) // random recursive tree
		}
		qs := make([]Query, 2*n)
		for i := range qs {
			qs[i] = Query{U: rng.Intn(n), V: rng.Intn(n)}
		}
		got := Offline(Tree{Parent: parent, Root: 0}, qs)
		for i, q := range qs {
			if got[i] != naiveLCA(parent, q.U, q.V) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestOfflineDeepTree(t *testing.T) {
	// A 10k-node path exercises the iterative DFS (no stack overflow).
	n := 10000
	parent := make([]int, n)
	parent[0] = -1
	for v := 1; v < n; v++ {
		parent[v] = v - 1
	}
	got := Offline(Tree{Parent: parent, Root: 0}, []Query{{n - 1, n / 2}, {0, n - 1}})
	if got[0] != n/2 || got[1] != 0 {
		t.Errorf("deep tree LCAs = %v", got)
	}
}
