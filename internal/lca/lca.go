// Package lca implements the Gabow–Tarjan offline least-common-ancestor
// algorithm over a rooted tree. The sparsifier uses it to batch-compute
// tree effective resistances R_T(p,q) = dist(p) + dist(q) − 2·dist(lca(p,q))
// for every off-tree edge in one linear-time pass (paper §3.2).
package lca

// Tree describes a rooted tree: Parent[root] == -1, Children adjacency is
// derived internally. All slices are indexed by vertex.
type Tree struct {
	Parent []int
	Root   int
}

// Query is one (U, V) LCA query; Result is filled by Offline.
type Query struct {
	U, V int
}

// Offline answers all queries against the rooted tree using Tarjan's
// offline algorithm (iterative DFS, union-find with path compression).
// Returns the LCA per query, aligned with the queries slice.
func Offline(t Tree, queries []Query) []int {
	n := len(t.Parent)
	// Build children lists.
	childHead := make([]int, n)
	childNext := make([]int, n)
	for i := range childHead {
		childHead[i] = -1
	}
	for v, p := range t.Parent {
		if p < 0 {
			continue
		}
		childNext[v] = childHead[p]
		childHead[p] = v
	}
	// Bucket queries per endpoint.
	type qref struct {
		other int
		idx   int
	}
	qHead := make([]int, n)
	for i := range qHead {
		qHead[i] = -1
	}
	qNext := make([]int, 2*len(queries))
	qData := make([]qref, 2*len(queries))
	for i, q := range queries {
		qData[2*i] = qref{other: q.V, idx: i}
		qNext[2*i] = qHead[q.U]
		qHead[q.U] = 2 * i
		qData[2*i+1] = qref{other: q.U, idx: i}
		qNext[2*i+1] = qHead[q.V]
		qHead[q.V] = 2*i + 1
	}

	parent := make([]int, n) // union-find parent
	for i := range parent {
		parent[i] = i
	}
	var find func(x int) int
	find = func(x int) int {
		root := x
		for parent[root] != root {
			root = parent[root]
		}
		for parent[x] != root {
			parent[x], x = root, parent[x]
		}
		return root
	}

	ancestor := make([]int, n)
	visited := make([]bool, n)
	result := make([]int, len(queries))
	for i := range result {
		result[i] = -1
	}

	// Iterative post-order DFS: state 0 = enter, 1 = children done.
	type frame struct {
		v     int
		child int // next child to visit (linked-list cursor)
	}
	stack := make([]frame, 0, n)
	stack = append(stack, frame{v: t.Root, child: childHead[t.Root]})
	ancestor[t.Root] = t.Root
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.child != -1 {
			c := f.child
			f.child = childNext[c]
			ancestor[c] = c
			stack = append(stack, frame{v: c, child: childHead[c]})
			continue
		}
		// Post-order for f.v: answer its pending queries, then merge into parent.
		v := f.v
		visited[v] = true
		for qi := qHead[v]; qi != -1; qi = qNext[qi] {
			o := qData[qi].other
			if visited[o] {
				result[qData[qi].idx] = ancestor[find(o)]
			}
		}
		stack = stack[:len(stack)-1]
		if p := t.Parent[v]; p >= 0 {
			parent[find(v)] = find(p)
			ancestor[find(p)] = p
		}
	}
	return result
}
