package engine

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
)

// DefaultCoalesceMaxBatch caps how many solve requests one coalesced
// batch collects when Options.CoalesceMaxBatch is unset. 64 keeps the
// block solver's panel chunks full (core splits batches into panels of
// 16 columns) without letting one batch monopolize a worker slot for
// arbitrarily long.
const DefaultCoalesceMaxBatch = 64

// coalescer batches concurrent solve requests against the same artifact
// and tolerance into one block solve. The first request for an
// (artifact key, tolerance) pair opens a batch and arms a timer; requests
// arriving within the window join it; when the window closes (or the
// batch hits its size cap) the whole batch runs as a single
// SolveBatchTol call — one matrix sweep and one preconditioner apply per
// iteration for every collected right-hand side, instead of one per
// request.
type coalescer struct {
	eng *Engine
	win time.Duration
	max int

	mu      sync.Mutex
	pending map[coalesceKey]*solveBatch
}

// coalesceKey groups requests that can share a block solve: same
// artifact (by store key — the key pins graph and build configuration,
// so any artifact under it holds the same factorization) and same
// resolved tolerance (block PCG iterates every column to one tolerance;
// mixing would over- or under-solve someone's request).
type coalesceKey struct {
	key string
	tol float64
}

// solveBatch is one open (or running) coalesced batch. bs, joined,
// waiters, and sealed are guarded by the coalescer's mutex until the
// batch seals; after sealing only the run goroutine touches bs, and
// sols/err are published to waiters by the close of done.
type solveBatch struct {
	art    *Artifact
	bs     [][]float64
	timer  *time.Timer
	sealed bool

	// waiters counts requests still interested in the result; when every
	// waiter gives up (client disconnects, deadlines fire) abandoned is
	// closed and the batch's work is canceled — nobody would read it, and
	// unlike artifact builds a solve result is not cached for later.
	waiters   int
	abandoned chan struct{}

	done chan struct{}
	sols []*core.Solution
	err  error
}

func newCoalescer(e *Engine, win time.Duration, max int) *coalescer {
	if max <= 0 {
		max = DefaultCoalesceMaxBatch
	}
	return &coalescer{
		eng:     e,
		win:     win,
		max:     max,
		pending: make(map[coalesceKey]*solveBatch),
	}
}

// solve enqueues one right-hand side, waits for its batch to execute,
// and returns this request's column of the result. The caller has
// already validated the rhs dimension.
func (c *coalescer) solve(ctx context.Context, art *Artifact, b []float64, tol float64) (*SolveResult, error) {
	bk := coalesceKey{key: art.Key, tol: normTol(tol)}

	c.mu.Lock()
	sb, ok := c.pending[bk]
	var idx int
	if ok {
		idx = len(sb.bs)
		sb.bs = append(sb.bs, b)
		sb.waiters++
		c.eng.c.solvesCoalesced.Add(1)
		if len(sb.bs) >= c.max {
			// Size cap reached: seal now instead of waiting out the window —
			// the batch is as full as it is allowed to get.
			c.seal(bk, sb)
			go c.run(bk, sb)
		}
		c.mu.Unlock()
	} else {
		sb = &solveBatch{
			art:       art,
			bs:        [][]float64{b},
			waiters:   1,
			abandoned: make(chan struct{}),
			done:      make(chan struct{}),
		}
		c.pending[bk] = sb
		sb.timer = time.AfterFunc(c.win, func() {
			c.mu.Lock()
			sealed := sb.sealed
			if !sealed {
				c.seal(bk, sb)
			}
			c.mu.Unlock()
			if !sealed {
				c.run(bk, sb)
			}
		})
		c.mu.Unlock()
	}

	select {
	case <-sb.done:
		if sb.err != nil {
			return nil, sb.err
		}
		sol := sb.sols[idx]
		return &SolveResult{
			X:          sol.X,
			Iterations: sol.Iterations,
			RelRes:     sol.RelRes,
			Converged:  sol.Converged,
			Artifact:   art,
		}, nil
	case <-ctx.Done():
		c.leave(bk, sb)
		c.eng.noteCtx(ctx)
		return nil, ctx.Err()
	}
}

// seal removes the batch from the pending map (new requests open a fresh
// one) and stops its window timer. Callers hold c.mu.
func (c *coalescer) seal(bk coalesceKey, sb *solveBatch) {
	sb.sealed = true
	delete(c.pending, bk)
	if sb.timer != nil {
		sb.timer.Stop()
	}
}

// leave records that one waiter gave up. When the last waiter leaves,
// the batch is abandoned: a not-yet-sealed batch is withdrawn so it
// never runs, a running one has its context canceled.
func (c *coalescer) leave(bk coalesceKey, sb *solveBatch) {
	c.mu.Lock()
	defer c.mu.Unlock()
	sb.waiters--
	if sb.waiters > 0 {
		return
	}
	if !sb.sealed {
		c.seal(bk, sb)
	}
	close(sb.abandoned)
}

// run executes one sealed batch on the engine's worker pool as a single
// block solve and publishes the per-column solutions to every waiter.
func (c *coalescer) run(bk coalesceKey, sb *solveBatch) {
	e := c.eng
	defer close(sb.done)

	ctx, cancel := e.jobCtx(context.Background())
	defer cancel()
	go func() {
		select {
		case <-sb.abandoned:
			cancel()
		case <-ctx.Done():
		}
	}()

	select {
	case e.sem <- struct{}{}:
	case <-sb.abandoned:
		sb.err = context.Canceled
		return
	}
	e.c.jobs.Add(1)
	e.c.inFlight.Add(1)
	start := time.Now()
	defer func() {
		if p := recover(); p != nil {
			e.c.jobErrors.Add(1)
			sb.err = fmt.Errorf("engine: batch solve panicked: %v (%w)", p, ErrInternal)
		}
		e.c.latency.observe(time.Since(start))
		e.c.inFlight.Add(-1)
		<-e.sem
	}()

	e.c.solveBatches.Add(1)
	e.c.observeBatchSize(len(sb.bs))
	sols, err := sb.art.Handle.SolveBatchTol(ctx, sb.bs, bk.tol)
	if err != nil {
		e.c.jobErrors.Add(1)
	}
	sb.sols, sb.err = sols, err
}

// normTol canonicalizes the tolerance for batch grouping: every
// non-positive value selects the configured default downstream, so they
// all coalesce together.
func normTol(tol float64) float64 {
	if tol <= 0 {
		return 0
	}
	return tol
}
