package engine

import (
	"fmt"
	"math"
	"slices"

	"repro/internal/graph"
)

// Fingerprint is a cheap content identity for a graph: vertex count, edge
// count, and an FNV-1a hash of the normalized edge list (endpoints and
// weight bits). Two graphs with the same fingerprint are treated as the
// same artifact by the Store; the hash makes an (n, m) collision between
// different graphs vanishingly unlikely while costing one O(m log m)
// pass — negligible next to sparsification.
type Fingerprint struct {
	N    int
	M    int
	Hash uint64
}

// FNV-1a parameters (64-bit).
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// FingerprintGraph computes g's fingerprint. graph.New normalizes edges
// (u < v, deduplicated) but preserves insertion order, so equal graphs
// built from permuted edge lists may store their edges in different
// orders. To stay order-independent without the malleability of a plain
// sum (where a collision is a solvable subset-sum over crafted weights),
// the per-edge hashes are sorted into a canonical order and then chained
// through one position-dependent FNV stream.
func FingerprintGraph(g *graph.Graph) Fingerprint {
	hs := make([]uint64, len(g.Edges))
	for i, e := range g.Edges {
		h := uint64(fnvOffset)
		h = (h ^ uint64(e.U)) * fnvPrime
		h = (h ^ uint64(e.V)) * fnvPrime
		h = (h ^ math.Float64bits(e.W)) * fnvPrime
		hs[i] = h
	}
	slices.Sort(hs)
	h := uint64(fnvOffset)
	h = (h ^ uint64(g.N)) * fnvPrime
	h = (h ^ uint64(g.M())) * fnvPrime
	for _, eh := range hs {
		h = (h ^ eh) * fnvPrime
	}
	return Fingerprint{N: g.N, M: g.M(), Hash: h}
}

// Key renders the fingerprint as the stable string the Store and the HTTP
// API use to reference a cached artifact, e.g. "g2500-4900-1a2b3c4d5e6f7081".
func (f Fingerprint) Key() string {
	return fmt.Sprintf("g%d-%d-%016x", f.N, f.M, f.Hash)
}
