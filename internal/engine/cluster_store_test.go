package engine

import (
	"fmt"
	"testing"
)

// pairsOfSize builds an edge set whose accounted footprint is
// 16*n bytes plus entry overhead.
func pairsOfSize(n int) [][2]int {
	out := make([][2]int, n)
	for i := range out {
		out[i] = [2]int{i, i + 1}
	}
	return out
}

func TestClusterStoreByteBudgetEvicts(t *testing.T) {
	// Each entry: overhead(160) + key(2..3) + 16*100 = ~1763 bytes. A
	// 4 KiB budget fits two entries, not three.
	s := NewClusterStore(100, 4096)
	for i := 0; i < 6; i++ {
		s.AddCluster(fmt.Sprintf("c%d", i), pairsOfSize(100))
	}
	if got := s.Len(); got != 2 {
		t.Fatalf("store holds %d entries under a 2-entry byte budget, want 2", got)
	}
	if b := s.Bytes(); b > 4096 {
		t.Fatalf("accounted bytes %d exceed the 4096 budget", b)
	}
	if ev := s.Evictions(); ev != 4 {
		t.Fatalf("evictions = %d, want 4", ev)
	}
	// The most recently added entries must be the survivors.
	if _, ok := s.GetCluster("c5"); !ok {
		t.Fatal("most recent entry evicted")
	}
	if _, ok := s.GetCluster("c0"); ok {
		t.Fatal("oldest entry survived byte pressure")
	}
}

func TestClusterStoreOversizedEntryStillCaches(t *testing.T) {
	// One entry bigger than the whole budget: the budget bounds
	// accumulation, not admission — the entry must be admitted and must
	// be the only resident.
	s := NewClusterStore(100, 1024)
	s.AddCluster("small", pairsOfSize(4))
	s.AddCluster("huge", pairsOfSize(10000))
	if _, ok := s.GetCluster("huge"); !ok {
		t.Fatal("oversized entry was not admitted")
	}
	if got := s.Len(); got != 1 {
		t.Fatalf("store holds %d entries, want only the oversized one", got)
	}
}

func TestClusterStoreBytesTrackUpdates(t *testing.T) {
	s := NewClusterStore(100, 0) // no byte budget: accounting only
	s.AddCluster("k", pairsOfSize(10))
	before := s.Bytes()
	s.AddCluster("k", pairsOfSize(1000)) // replace in place, same key
	after := s.Bytes()
	if after-before != 16*(1000-10) {
		t.Fatalf("byte accounting drifted on update: before=%d after=%d", before, after)
	}
	if s.Len() != 1 {
		t.Fatalf("update duplicated the entry: len=%d", s.Len())
	}
}

func TestClusterStoreNoByteBudgetKeepsCountBound(t *testing.T) {
	s := NewClusterStore(3, 0)
	for i := 0; i < 10; i++ {
		s.AddCluster(fmt.Sprintf("c%d", i), pairsOfSize(50))
	}
	if got := s.Len(); got != 3 {
		t.Fatalf("count bound broken: len=%d, want 3", got)
	}
}
