package engine

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
)

func testOptions() Options {
	return Options{Workers: 4, CacheSize: 8}
}

func TestFingerprintStableUnderEdgeOrder(t *testing.T) {
	edges := []graph.Edge{{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 2}, {U: 0, V: 2, W: 3}}
	reversed := []graph.Edge{edges[2], edges[1], edges[0]}
	a := graph.MustNew(3, edges)
	b := graph.MustNew(3, reversed)
	if FingerprintGraph(a).Key() != FingerprintGraph(b).Key() {
		t.Fatalf("edge order changed fingerprint: %s vs %s",
			FingerprintGraph(a).Key(), FingerprintGraph(b).Key())
	}
	c := graph.MustNew(3, []graph.Edge{{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 2}, {U: 0, V: 2, W: 3.5}})
	if FingerprintGraph(a).Key() == FingerprintGraph(c).Key() {
		t.Fatal("weight change did not change fingerprint")
	}
}

func TestSparsifyAllConcurrent(t *testing.T) {
	e := New(testOptions())
	gs := make([]*graph.Graph, 8)
	for i := range gs {
		gs[i] = gen.Grid2D(20, 20, int64(i+1))
	}
	items := e.SparsifyAll(context.Background(), gs)
	keys := make(map[string]bool)
	for _, it := range items {
		if it.Err != nil {
			t.Fatalf("item %d: %v", it.Index, it.Err)
		}
		if it.Artifact == nil || it.Artifact.SparsifierGraph().M() == 0 {
			t.Fatalf("item %d: empty artifact", it.Index)
		}
		keys[it.Artifact.Key] = true
	}
	if len(keys) != len(gs) {
		t.Fatalf("expected %d distinct artifacts, got %d", len(gs), len(keys))
	}
	if s := e.Stats(); s.Builds != int64(len(gs)) {
		t.Fatalf("expected %d builds, got %d", len(gs), s.Builds)
	}
}

func TestSingleflightCoalescesBuilds(t *testing.T) {
	e := New(testOptions())
	g := gen.Grid2D(25, 25, 3)
	var wg sync.WaitGroup
	errs := make([]error, 16)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = e.Sparsify(context.Background(), g)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	if s := e.Stats(); s.Builds != 1 {
		t.Fatalf("16 concurrent requests for one graph caused %d builds, want 1", s.Builds)
	}
}

func TestSolveCacheHitSkipsRebuild(t *testing.T) {
	e := New(testOptions())
	g := gen.Grid2D(30, 30, 1)
	b := make([]float64, g.N)
	for i := range b {
		b[i] = float64(i%7) - 3
	}

	r1, err := e.Solve(context.Background(), g, b, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if r1.CacheHit {
		t.Fatal("first solve reported a cache hit")
	}
	if !r1.Converged || r1.RelRes > 1e-6 {
		t.Fatalf("first solve did not converge: iters=%d relres=%g", r1.Iterations, r1.RelRes)
	}

	// Same graph content rebuilt from scratch must hit the cache: no new
	// sparsification, no new factorization.
	g2 := gen.Grid2D(30, 30, 1)
	r2, err := e.Solve(context.Background(), g2, b, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.CacheHit {
		t.Fatal("second solve missed the cache")
	}
	if !r2.Converged {
		t.Fatal("second solve did not converge")
	}
	if r2.Artifact.Pencil() != r1.Artifact.Pencil() {
		t.Fatal("second solve used a different factorization")
	}
	s := e.Stats()
	if s.Builds != 1 {
		t.Fatalf("second solve triggered a rebuild: builds=%d", s.Builds)
	}
	if s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("expected 1 hit / 1 miss, got %d / %d", s.Hits, s.Misses)
	}
	if s.HitRate() != 0.5 {
		t.Fatalf("hit rate = %g, want 0.5", s.HitRate())
	}
}

func TestSolveByLookupKey(t *testing.T) {
	e := New(testOptions())
	g := gen.Grid2D(20, 20, 2)
	art, _, err := e.Sparsify(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := e.Lookup(art.Key)
	if !ok || got != art {
		t.Fatalf("Lookup(%q) = %v, %v", art.Key, got, ok)
	}
	b := make([]float64, g.N)
	b[0], b[g.N-1] = 1, -1
	r, err := e.SolveArtifact(context.Background(), got, b, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Converged {
		t.Fatalf("solve by key did not converge: relres=%g", r.RelRes)
	}
	if _, ok := e.Lookup("g0-0-0000000000000000"); ok {
		t.Fatal("Lookup of unknown key succeeded")
	}
	// The key-based path counts toward hit/miss stats like inline solves:
	// build miss + key hit + unknown-key miss.
	if s := e.Stats(); s.Hits != 1 || s.Misses != 2 {
		t.Fatalf("lookup path not counted: hits=%d misses=%d", s.Hits, s.Misses)
	}
}

func TestBatchCollectsPerItemErrors(t *testing.T) {
	e := New(testOptions())
	disconnected := graph.MustNew(4, []graph.Edge{{U: 0, V: 1, W: 1}})
	gs := []*graph.Graph{gen.Grid2D(10, 10, 1), disconnected, gen.Grid2D(12, 12, 2)}
	items := e.SparsifyAll(context.Background(), gs)
	if items[0].Err != nil || items[2].Err != nil {
		t.Fatalf("healthy items failed: %v / %v", items[0].Err, items[2].Err)
	}
	if items[1].Err == nil {
		t.Fatal("disconnected graph did not fail")
	}
	if s := e.Stats(); s.JobErrors == 0 {
		t.Fatal("job error not counted")
	}
}

func TestSolveRejectsMisSizedRHSBeforeBuilding(t *testing.T) {
	e := New(testOptions())
	g := gen.Grid2D(10, 10, 1)
	if _, err := e.Solve(context.Background(), g, make([]float64, g.N-1), 1e-6); !errors.Is(err, core.ErrDimension) {
		t.Fatalf("mis-sized rhs: err = %v, want ErrDimension", err)
	}
	if s := e.Stats(); s.Builds != 0 || s.Jobs != 0 {
		t.Fatalf("mis-sized rhs still paid for a build: %+v", s)
	}
}

func TestDegenerateGraphBecomesJobError(t *testing.T) {
	e := New(testOptions())
	// A zero-vertex graph passes graph.New; it used to panic deep inside
	// the sparsifier (recovered into ErrInternal). The handle now rejects
	// it at admission with a clean validation error — which must surface
	// to the waiter as a job error, not crash the process and not be
	// blamed on the engine.
	empty, err := graph.New(0, nil)
	if err != nil {
		t.Skipf("graph.New(0, nil) now rejects empty graphs: %v", err)
	}
	_, _, err = e.Sparsify(context.Background(), empty)
	if err == nil {
		t.Fatal("Sparsify of empty graph succeeded")
	}
	if errors.Is(err, ErrInternal) {
		t.Fatalf("validation error misclassified as engine fault: %v", err)
	}
	if s := e.Stats(); s.JobErrors != 1 {
		t.Fatalf("degenerate graph not counted as job error: %+v", s)
	}
}

func TestContextCancellation(t *testing.T) {
	e := New(testOptions())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := e.Sparsify(ctx, gen.Grid2D(40, 40, 9))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

func TestJobTimeoutStillFillsCache(t *testing.T) {
	opts := testOptions()
	opts.JobTimeout = time.Nanosecond
	e := New(opts)
	g := gen.Grid2D(40, 40, 5)
	_, _, err := e.Sparsify(context.Background(), g)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
	if s := e.Stats(); s.Timeouts == 0 {
		t.Fatal("timeout not counted")
	}
	// The detached build keeps running and fills the cache for the next
	// request.
	key := FingerprintGraph(g).Key()
	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, ok := e.Lookup(key); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background build never filled the cache")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestEvaluateAll(t *testing.T) {
	if testing.Short() {
		t.Skip("evaluation pipeline is slow in -short mode")
	}
	e := New(testOptions())
	gs := []*graph.Graph{gen.Grid2D(20, 20, 1), gen.Tri2D(15, 15, 2)}
	items := e.EvaluateAll(context.Background(), gs, core.EvalOptions{Seed: 1})
	for _, it := range items {
		if it.Err != nil {
			t.Fatalf("item %d: %v", it.Index, it.Err)
		}
		if it.Outcome.PCGIters <= 0 || it.Outcome.Kappa <= 0 {
			t.Fatalf("item %d: implausible outcome %+v", it.Index, it.Outcome)
		}
	}
}

// TestJobTimeoutCancelsRunningJob: the per-job timeout context reaches
// the math inside the job — here a Fiedler run whose step budget would
// take far longer than the timeout — so the abandoned job actually stops
// (in-flight drains) instead of burning its worker slot to completion.
func TestJobTimeoutCancelsRunningJob(t *testing.T) {
	opts := testOptions()
	opts.JobTimeout = 300 * time.Millisecond
	e := New(opts)
	g := gen.Grid2D(40, 40, 7)
	// Prime the cache so the Fiedler job's wait is all computation. Under
	// -race the first build can outlive the job timeout; the detached
	// build still fills the cache, so wait for that instead of failing.
	if _, _, err := e.Sparsify(context.Background(), g); err != nil {
		key := FingerprintGraph(g).Key()
		deadline := time.Now().Add(30 * time.Second)
		for {
			if _, ok := e.Lookup(key); ok {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("background build never filled the cache (first error: %v)", err)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	_, err := e.Fiedler(context.Background(), g, 1_000_000, 1e-6, 7)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded in chain", err)
	}
	// The job itself must notice the cancellation and exit promptly; before
	// the job context was threaded into the handle methods it would grind
	// through all 10⁶ inverse-power steps in the background.
	deadline := time.Now().Add(5 * time.Second)
	for e.Stats().InFlight != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("job still running %v after its timeout", 5*time.Second)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
