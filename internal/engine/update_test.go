package engine

import (
	"context"
	"errors"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// TestEngineUpdateReusesClusters: a delta rebuild through the engine
// reuses untouched clusters from the cluster store, lands in the
// incremental counters and histogram, and is cached under the updated
// graph's own key so plain Sparsify traffic hits it.
func TestEngineUpdateReusesClusters(t *testing.T) {
	ctx := context.Background()
	g := gen.Grid2D(40, 40, 1)
	e := New(Options{ShardThreshold: 400})
	base, _, err := e.Sparsify(ctx, g)
	if err != nil {
		t.Fatal(err)
	}
	if !base.Handle.Sharded() {
		t.Fatal("base build below threshold")
	}
	if e.ClusterStore().Len() == 0 {
		t.Fatal("cold sharded build did not populate the cluster store")
	}

	d := graph.Delta{Set: []graph.Edge{{U: 0, V: 1, W: 5}}}
	art, cached, err := e.Update(ctx, base.Key, d)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("first update reported cached")
	}
	if art.Key == base.Key {
		t.Fatal("updated artifact kept the base key")
	}
	st := art.Handle.ShardStats()
	if st == nil || !st.Incremental {
		t.Fatalf("update did not take the incremental path: %+v", st)
	}
	if st.ClustersReused == 0 {
		t.Fatal("no clusters reused")
	}
	if st.ClustersReused >= st.Shards {
		t.Fatalf("all %d clusters reused despite a dirty edge", st.Shards)
	}

	s := e.Stats()
	if s.IncrementalBuilds != 1 {
		t.Fatalf("incremental_builds = %d, want 1", s.IncrementalBuilds)
	}
	if s.ClustersReused != int64(st.ClustersReused) {
		t.Fatalf("clusters_reused = %d, want %d", s.ClustersReused, st.ClustersReused)
	}
	// The localized stitch adopts clean clusters by index without store
	// lookups, so the update contributes no hits; the cold build's
	// per-cluster misses must still be accounted.
	if s.ClusterMisses == 0 {
		t.Fatalf("cluster store accounting: hits=%d misses=%d", s.ClusterHits, s.ClusterMisses)
	}
	if !st.StitchLocalized && s.ClusterHits == 0 {
		t.Fatalf("non-localized update should hit the cluster store: hits=%d", s.ClusterHits)
	}
	// The incremental build must be in the incremental histogram, not the
	// cold one (the cold build + no solves ran besides it).
	var incN int64
	for _, b := range s.IncrementalLatency {
		incN += b.Count
	}
	if incN != 1 {
		t.Fatalf("incremental histogram holds %d observations, want 1", incN)
	}

	// A plain Sparsify of the updated graph hits the incremental artifact.
	newG, err := d.Apply(g)
	if err != nil {
		t.Fatal(err)
	}
	again, hit, err := e.Sparsify(ctx, newG)
	if err != nil || !hit || again != art {
		t.Fatalf("sparsify(updated graph): hit=%v same=%v err=%v", hit, again == art, err)
	}

	// Repeating the identical update is a whole-graph cache hit.
	art2, cached, err := e.Update(ctx, base.Key, d)
	if err != nil || !cached || art2 != art {
		t.Fatalf("repeat update: cached=%v same=%v err=%v", cached, art2 == art, err)
	}
}

// TestEngineUpdateUnknownKey: updating an absent base key fails with
// ErrUnknownKey (the server maps it to 404).
func TestEngineUpdateUnknownKey(t *testing.T) {
	e := New(Options{})
	_, _, err := e.Update(context.Background(), "g9-9-0000000000000000",
		graph.Delta{Set: []graph.Edge{{U: 0, V: 1, W: 1}}})
	if !errors.Is(err, ErrUnknownKey) {
		t.Fatalf("err = %v, want ErrUnknownKey", err)
	}
}

// TestClusterStoreLRU: the cluster store evicts least-recently-used
// entries and keeps both halves (edges, factor) of a surviving key.
func TestClusterStoreLRU(t *testing.T) {
	s := NewClusterStore(2, 0)
	s.AddCluster("a", [][2]int{{0, 1}})
	s.AddCluster("b", [][2]int{{1, 2}})
	s.AddFactor("a", nil, []int{0, 1}) // nil factor slot still refreshes recency
	s.AddCluster("c", [][2]int{{2, 3}})
	if _, ok := s.GetCluster("b"); ok {
		t.Fatal("LRU kept the stalest entry")
	}
	if _, ok := s.GetCluster("a"); !ok {
		t.Fatal("LRU dropped a freshly touched entry")
	}
	if s.Evictions() != 1 {
		t.Fatalf("evictions = %d, want 1", s.Evictions())
	}
}

// TestClusterCacheDisabled: a negative ClusterCacheSize disables the
// store without breaking builds or updates (they just reuse nothing from
// the engine; the handle-level seed cache still works).
func TestClusterCacheDisabled(t *testing.T) {
	ctx := context.Background()
	g := gen.Grid2D(30, 30, 1)
	e := New(Options{ShardThreshold: 200, ClusterCacheSize: -1})
	if e.ClusterStore() != nil {
		t.Fatal("cluster store exists despite being disabled")
	}
	base, _, err := e.Sparsify(ctx, g)
	if err != nil {
		t.Fatal(err)
	}
	art, _, err := e.Update(ctx, base.Key, graph.Delta{Set: []graph.Edge{{U: 0, V: 1, W: 3}}})
	if err != nil {
		t.Fatal(err)
	}
	if st := art.Handle.ShardStats(); st == nil || !st.Incremental || st.ClustersReused == 0 {
		t.Fatalf("handle-seeded reuse failed without engine store: %+v", st)
	}
}
