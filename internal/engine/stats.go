package engine

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fabric"
	"repro/internal/tdigest"
)

// latencyBucketsMS are the upper bounds (milliseconds, inclusive) of the
// job-latency histogram; the final implicit bucket is +Inf.
var latencyBucketsMS = [...]float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}

// histogram is a fixed-bucket latency histogram with atomic counters, safe
// for concurrent observation without locks.
type histogram struct {
	counts [len(latencyBucketsMS) + 1]atomic.Int64
	sumNS  atomic.Int64
	n      atomic.Int64
}

func (h *histogram) observe(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	i := 0
	for i < len(latencyBucketsMS) && ms > latencyBucketsMS[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sumNS.Add(int64(d))
	h.n.Add(1)
}

// latencyTrack pairs the lock-free fixed-bucket histogram with a merging
// t-digest of the same observations. The buckets answer "what shape is
// the distribution" cheaply and compatibly with existing dashboards; the
// digest answers "what is p99, exactly" — fixed millisecond buckets
// cannot resolve microsecond-scale stream updates (everything lands in
// the first bucket and interpolation invents the answer). Observations
// take one short mutex hold; snapshots quantile under the same lock.
type latencyTrack struct {
	histogram
	mu sync.Mutex
	td *tdigest.TDigest
}

func (t *latencyTrack) observe(d time.Duration) {
	t.histogram.observe(d)
	t.mu.Lock()
	if t.td == nil {
		t.td = tdigest.New(0)
	}
	t.td.Add(float64(d) / float64(time.Microsecond))
	t.mu.Unlock()
}

// quantilesUS returns digest-exact percentiles in microseconds.
func (t *latencyTrack) quantilesUS(qs ...float64) []float64 {
	out := make([]float64, len(qs))
	t.mu.Lock()
	if t.td != nil {
		for i, q := range qs {
			out[i] = t.td.Quantile(q)
		}
	}
	t.mu.Unlock()
	return out
}

// LatencyBucket is one histogram bucket in a stats snapshot.
type LatencyBucket struct {
	// LE is the bucket's inclusive upper bound in milliseconds;
	// +Inf is rendered as -1 for JSON friendliness.
	LE    float64 `json:"le_ms"`
	Count int64   `json:"count"`
}

// Stats is a point-in-time snapshot of engine counters.
type Stats struct {
	// Cache behaviour.
	Hits      int64 `json:"cache_hits"`
	Misses    int64 `json:"cache_misses"`
	Builds    int64 `json:"builds"`
	Evictions int64 `json:"evictions"`
	CacheLen  int   `json:"cache_len"`
	CacheCap  int   `json:"cache_cap"`
	// Sharded-pipeline behaviour: how many builds went through the
	// partition-parallel path, the total cluster count they produced,
	// how many plans the expander guard abandoned (high cut fraction →
	// monolithic fallback), and how many artifacts carry an
	// additive-Schwarz preconditioner instead of a monolithic factor.
	ShardedBuilds   int64 `json:"sharded_builds"`
	ShardsBuilt     int64 `json:"shards_built"`
	AbandonedPlans  int64 `json:"abandoned_plans"`
	SchwarzPreconds int64 `json:"schwarz_preconds"`
	// Incremental-rebuild behaviour: delta rebuilds served, clusters
	// whose cached sparsifier was adopted verbatim across all builds, and
	// the cluster store's own hit/miss/eviction accounting (one lookup
	// per planned cluster per sharded build).
	IncrementalBuilds int64 `json:"incremental_builds"`
	ClustersReused    int64 `json:"clusters_reused"`
	ClusterHits       int64 `json:"cluster_hits"`
	ClusterMisses     int64 `json:"cluster_misses"`
	ClusterEvictions  int64 `json:"cluster_evictions"`
	ClusterCacheLen   int   `json:"cluster_cache_len"`
	ClusterCacheCap   int   `json:"cluster_cache_cap"`
	// ClusterCacheBytes is the cluster store's accounted artifact
	// footprint; ClusterCacheMaxBytes the configured byte budget
	// (0 = count-bounded only).
	ClusterCacheBytes    int64 `json:"cluster_cache_bytes"`
	ClusterCacheMaxBytes int64 `json:"cluster_cache_max_bytes"`
	// ClustersRemote counts clusters whose construction a worker fleet
	// answered, summed across sharded builds (0 on fleet-less engines).
	ClustersRemote int64 `json:"clusters_remote"`
	// FactorsRemote counts Schwarz per-cluster factors a worker fleet
	// built, summed across builds (0 unless -remote-factors is on;
	// clusters whose factor dispatch failed fall back locally and are
	// not counted).
	FactorsRemote int64 `json:"factors_remote"`
	// Fleet is the worker-fleet telemetry — per-worker health and
	// counters, degradation totals, remote latency — when a fleet is
	// configured; absent otherwise.
	Fleet *fabric.Stats `json:"fleet,omitempty"`
	// Solve-batching behaviour: block solves executed (window-coalesced
	// batches plus explicit batched requests), requests that joined an
	// already-open coalescing batch instead of solving alone, and the
	// exact batch-width percentiles over executed batches. A healthy
	// coalescing deployment shows BatchP50 > 1 under concurrent load;
	// BatchP50 == 1 means the window never caught two requests together.
	SolveBatches    int64   `json:"solve_batches"`
	SolvesCoalesced int64   `json:"solves_coalesced"`
	BatchP50        float64 `json:"batch_p50"`
	BatchP95        float64 `json:"batch_p95"`
	// Job behaviour.
	Jobs      int64 `json:"jobs_total"`
	InFlight  int64 `json:"jobs_in_flight"`
	Timeouts  int64 `json:"job_timeouts"`
	JobErrors int64 `json:"job_errors"`
	// Latency of completed jobs (queue wait + work), EXCLUDING
	// incremental delta rebuilds: those are fast by design, and folding
	// them into the same buckets would drag the percentiles down until
	// they stopped describing the cold path once delta traffic dominates.
	// The percentiles are derived from the histogram by linear
	// interpolation inside the containing bucket, so operators don't have
	// to re-derive them client-side; observations landing in the +Inf
	// bucket clamp to the largest finite bound.
	MeanLatencyMS float64         `json:"mean_latency_ms"`
	P50LatencyMS  float64         `json:"p50_latency_ms"`
	P95LatencyMS  float64         `json:"p95_latency_ms"`
	P99LatencyMS  float64         `json:"p99_latency_ms"`
	Latency       []LatencyBucket `json:"latency_histogram"`
	// Digest-exact percentiles in microseconds (merging t-digest behind
	// the fixed buckets): the buckets keep dashboard compatibility, the
	// digest resolves sub-millisecond tails the buckets flatten.
	P50LatencyUS float64 `json:"p50_latency_us"`
	P95LatencyUS float64 `json:"p95_latency_us"`
	P99LatencyUS float64 `json:"p99_latency_us"`
	// The same latency block for incremental (Update) builds only.
	IncrementalMeanLatencyMS float64         `json:"incremental_mean_latency_ms"`
	IncrementalP50LatencyMS  float64         `json:"incremental_p50_latency_ms"`
	IncrementalP95LatencyMS  float64         `json:"incremental_p95_latency_ms"`
	IncrementalP99LatencyMS  float64         `json:"incremental_p99_latency_ms"`
	IncrementalLatency       []LatencyBucket `json:"incremental_latency_histogram"`
	IncrementalP50LatencyUS  float64         `json:"incremental_p50_latency_us"`
	IncrementalP95LatencyUS  float64         `json:"incremental_p95_latency_us"`
	IncrementalP99LatencyUS  float64         `json:"incremental_p99_latency_us"`
	// Streaming-session behaviour (/v2/stream): open sessions, rebuilds
	// applied across all sessions, pushes that merged into an already
	// pending rebuild instead of paying their own, pushes refused for
	// backpressure, and the per-update rebuild latency — digest-exact in
	// microseconds, where stream updates actually live.
	StreamSessions     int             `json:"stream_sessions"`
	StreamUpdates      int64           `json:"stream_updates"`
	StreamCoalesced    int64           `json:"stream_coalesced"`
	StreamBackpressure int64           `json:"stream_backpressure"`
	StreamMeanMS       float64         `json:"stream_mean_latency_ms"`
	StreamLatency      []LatencyBucket `json:"stream_latency_histogram"`
	StreamP50US        float64         `json:"stream_p50_latency_us"`
	StreamP95US        float64         `json:"stream_p95_latency_us"`
	StreamP99US        float64         `json:"stream_p99_latency_us"`
}

// percentile estimates the q-quantile (0 < q < 1) in milliseconds from
// the bucket counts, interpolating linearly within the containing bucket.
func percentile(counts []int64, q float64) float64 {
	var total int64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum int64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		prev := cum
		cum += c
		if float64(cum) < rank {
			continue
		}
		lo := 0.0
		if i > 0 {
			lo = latencyBucketsMS[i-1]
		}
		if i >= len(latencyBucketsMS) {
			// +Inf bucket: no finite upper bound to interpolate toward.
			return latencyBucketsMS[len(latencyBucketsMS)-1]
		}
		hi := latencyBucketsMS[i]
		frac := (rank - float64(prev)) / float64(c)
		return lo + frac*(hi-lo)
	}
	return latencyBucketsMS[len(latencyBucketsMS)-1]
}

// HitRate returns the cache hit fraction (0 when no lookups happened).
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// counters aggregates the engine's mutable telemetry.
type counters struct {
	hits               atomic.Int64
	misses             atomic.Int64
	builds             atomic.Int64
	shardedBuilds      atomic.Int64
	shardsBuilt        atomic.Int64
	abandonedPlans     atomic.Int64
	schwarzPreconds    atomic.Int64
	incrementalBuilds  atomic.Int64
	clustersReused     atomic.Int64
	clustersRemote     atomic.Int64
	factorsRemote      atomic.Int64
	solveBatches       atomic.Int64
	solvesCoalesced    atomic.Int64
	batchSizes         [batchSizeCap + 1]atomic.Int64
	jobs               atomic.Int64
	inFlight           atomic.Int64
	timeouts           atomic.Int64
	jobErrors          atomic.Int64
	streamUpdates      atomic.Int64
	streamCoalesced    atomic.Int64
	streamBackpressure atomic.Int64
	latency            latencyTrack
	incLatency         latencyTrack
	streamLatency      latencyTrack
}

// batchSizeCap bounds the exact batch-width distribution; batches wider
// than this (possible only with an explicit CoalesceMaxBatch above it or
// a wide client-supplied rhs array) clamp into the last slot, keeping
// the percentiles conservative rather than wrong.
const batchSizeCap = 64

// observeBatchSize records one executed block solve's width (in
// right-hand sides) into the exact size distribution.
func (c *counters) observeBatchSize(s int) {
	if s < 1 {
		return
	}
	if s > batchSizeCap {
		s = batchSizeCap
	}
	c.batchSizes[s].Add(1)
}

// batchPercentile returns the smallest batch width whose cumulative
// count reaches the q-quantile of the exact size distribution (0 when
// no batches ran). Unlike the latency percentiles there is no
// interpolation: widths are small integers and the exact counts are
// kept, so the answer is the true order statistic.
func batchPercentile(counts []int64, q float64) float64 {
	var total int64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum int64
	for s, c := range counts {
		cum += c
		if float64(cum) >= rank && c > 0 {
			return float64(s)
		}
	}
	return float64(len(counts) - 1)
}

// snapshotLatency renders one histogram into a bucket list, mean, and
// interpolated percentiles.
func snapshotLatency(h *histogram) (buckets []LatencyBucket, mean, p50, p95, p99 float64) {
	counts := make([]int64, len(h.counts))
	for i := range h.counts {
		le := -1.0 // +Inf bucket
		if i < len(latencyBucketsMS) {
			le = latencyBucketsMS[i]
		}
		counts[i] = h.counts[i].Load()
		buckets = append(buckets, LatencyBucket{LE: le, Count: counts[i]})
	}
	if n := h.n.Load(); n > 0 {
		mean = float64(h.sumNS.Load()) / float64(n) / float64(time.Millisecond)
	}
	return buckets, mean, percentile(counts, 0.50), percentile(counts, 0.95), percentile(counts, 0.99)
}

func (c *counters) snapshot() Stats {
	s := Stats{
		Hits:              c.hits.Load(),
		Misses:            c.misses.Load(),
		Builds:            c.builds.Load(),
		ShardedBuilds:     c.shardedBuilds.Load(),
		ShardsBuilt:       c.shardsBuilt.Load(),
		AbandonedPlans:    c.abandonedPlans.Load(),
		SchwarzPreconds:   c.schwarzPreconds.Load(),
		IncrementalBuilds: c.incrementalBuilds.Load(),
		ClustersReused:    c.clustersReused.Load(),
		ClustersRemote:    c.clustersRemote.Load(),
		FactorsRemote:     c.factorsRemote.Load(),
		SolveBatches:      c.solveBatches.Load(),
		SolvesCoalesced:   c.solvesCoalesced.Load(),
		Jobs:              c.jobs.Load(),
		InFlight:          c.inFlight.Load(),
		Timeouts:          c.timeouts.Load(),
		JobErrors:         c.jobErrors.Load(),
	}
	sizes := make([]int64, len(c.batchSizes))
	for i := range c.batchSizes {
		sizes[i] = c.batchSizes[i].Load()
	}
	s.BatchP50 = batchPercentile(sizes, 0.50)
	s.BatchP95 = batchPercentile(sizes, 0.95)
	s.Latency, s.MeanLatencyMS, s.P50LatencyMS, s.P95LatencyMS, s.P99LatencyMS = snapshotLatency(&c.latency.histogram)
	s.IncrementalLatency, s.IncrementalMeanLatencyMS, s.IncrementalP50LatencyMS,
		s.IncrementalP95LatencyMS, s.IncrementalP99LatencyMS = snapshotLatency(&c.incLatency.histogram)
	q := c.latency.quantilesUS(0.50, 0.95, 0.99)
	s.P50LatencyUS, s.P95LatencyUS, s.P99LatencyUS = q[0], q[1], q[2]
	q = c.incLatency.quantilesUS(0.50, 0.95, 0.99)
	s.IncrementalP50LatencyUS, s.IncrementalP95LatencyUS, s.IncrementalP99LatencyUS = q[0], q[1], q[2]
	s.StreamUpdates = c.streamUpdates.Load()
	s.StreamCoalesced = c.streamCoalesced.Load()
	s.StreamBackpressure = c.streamBackpressure.Load()
	var streamMean float64
	s.StreamLatency, streamMean, _, _, _ = snapshotLatency(&c.streamLatency.histogram)
	s.StreamMeanMS = streamMean
	q = c.streamLatency.quantilesUS(0.50, 0.95, 0.99)
	s.StreamP50US, s.StreamP95US, s.StreamP99US = q[0], q[1], q[2]
	return s
}
