package engine

import (
	"sync/atomic"
	"time"
)

// latencyBucketsMS are the upper bounds (milliseconds, inclusive) of the
// job-latency histogram; the final implicit bucket is +Inf.
var latencyBucketsMS = [...]float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}

// histogram is a fixed-bucket latency histogram with atomic counters, safe
// for concurrent observation without locks.
type histogram struct {
	counts [len(latencyBucketsMS) + 1]atomic.Int64
	sumNS  atomic.Int64
	n      atomic.Int64
}

func (h *histogram) observe(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	i := 0
	for i < len(latencyBucketsMS) && ms > latencyBucketsMS[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sumNS.Add(int64(d))
	h.n.Add(1)
}

// LatencyBucket is one histogram bucket in a stats snapshot.
type LatencyBucket struct {
	// LE is the bucket's inclusive upper bound in milliseconds;
	// +Inf is rendered as -1 for JSON friendliness.
	LE    float64 `json:"le_ms"`
	Count int64   `json:"count"`
}

// Stats is a point-in-time snapshot of engine counters.
type Stats struct {
	// Cache behaviour.
	Hits      int64 `json:"cache_hits"`
	Misses    int64 `json:"cache_misses"`
	Builds    int64 `json:"builds"`
	Evictions int64 `json:"evictions"`
	CacheLen  int   `json:"cache_len"`
	CacheCap  int   `json:"cache_cap"`
	// Job behaviour.
	Jobs      int64 `json:"jobs_total"`
	InFlight  int64 `json:"jobs_in_flight"`
	Timeouts  int64 `json:"job_timeouts"`
	JobErrors int64 `json:"job_errors"`
	// Latency of completed jobs (queue wait + work).
	MeanLatencyMS float64         `json:"mean_latency_ms"`
	Latency       []LatencyBucket `json:"latency_histogram"`
}

// HitRate returns the cache hit fraction (0 when no lookups happened).
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// counters aggregates the engine's mutable telemetry.
type counters struct {
	hits      atomic.Int64
	misses    atomic.Int64
	builds    atomic.Int64
	jobs      atomic.Int64
	inFlight  atomic.Int64
	timeouts  atomic.Int64
	jobErrors atomic.Int64
	latency   histogram
}

func (c *counters) snapshot() Stats {
	s := Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Builds:    c.builds.Load(),
		Jobs:      c.jobs.Load(),
		InFlight:  c.inFlight.Load(),
		Timeouts:  c.timeouts.Load(),
		JobErrors: c.jobErrors.Load(),
	}
	for i := range c.latency.counts {
		le := -1.0 // +Inf bucket
		if i < len(latencyBucketsMS) {
			le = latencyBucketsMS[i]
		}
		s.Latency = append(s.Latency, LatencyBucket{LE: le, Count: c.latency.counts[i].Load()})
	}
	if n := c.latency.n.Load(); n > 0 {
		s.MeanLatencyMS = float64(c.latency.sumNS.Load()) / float64(n) / float64(time.Millisecond)
	}
	return s
}
