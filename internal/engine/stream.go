package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/graph"
)

// Stream-session defaults; see the matching Options fields.
const (
	DefaultStreamMaxSessions = 16
	DefaultStreamStaleness   = 8
	DefaultStreamQueueDepth  = 4096
)

// ErrStreamBackpressure is returned by Stream.Push when the session's
// pending work exceeds the staleness or queue-depth bound: deltas are
// arriving faster than rebuilds retire them, and accepting more would
// only grow the served artifact's lag unboundedly. Servers map it to
// 429; clients back off or batch.
var ErrStreamBackpressure = errors.New("engine: stream backpressure: deltas outrun rebuilds")

// ErrStreamClosed is returned by operations on a closed stream session.
var ErrStreamClosed = errors.New("engine: stream closed")

// ErrStreamLimit is returned by StreamOpen when the session cap is
// reached (or streaming is disabled).
var ErrStreamLimit = errors.New("engine: stream session limit reached")

// ErrBadDelta wraps push-time validation failures — endpoints out of
// range, self-loops, non-positive weights, removals of absent edges —
// which are the client's delta, not the engine's state. Servers map it
// to 400.
var ErrBadDelta = errors.New("engine: bad stream delta")

// Stream is a long-lived update session against an evolving graph: it
// retains the current graph in memory (no per-update reconstruction from
// the pencil), merges queued deltas semantically — last set wins,
// remove-then-set resurrects — and drains them through the incremental
// fast path one rebuild at a time. Pushes that arrive while a rebuild is
// in flight coalesce into the next one; the staleness and queue-depth
// bounds turn sustained overload into explicit backpressure instead of
// unbounded lag. Safe for concurrent use.
type Stream struct {
	e  *Engine
	id string

	mu      sync.Mutex
	cond    *sync.Cond // broadcast after every applied rebuild
	cur     *Artifact
	curG    *graph.Graph
	baseKey string

	// Pending composite delta, keyed by normalized (u < v) endpoints.
	// setW holds the final weight each pending edge should end at;
	// removes marks edges of curG that must go away. An edge in both is
	// a resurrection (removed, then re-added at setW's weight).
	setW    map[[2]int]float64
	removes map[[2]int]bool

	pendingPushes int   // accepted pushes not yet applied
	pushes        int64 // accepted pushes, total
	applied       int64 // pushes whose rebuild has completed
	draining      bool
	closed        bool
	failed        error // sticky rebuild failure; session must be closed

	// Telemetry for the stats endpoint.
	updates      int64 // rebuilds applied
	coalesced    int64 // pushes merged into an already-pending rebuild
	backpressure int64
	last         StreamUpdateInfo
}

// StreamUpdateInfo describes the most recent rebuild a session applied —
// the per-update reuse report the ISSUE's bounded-staleness contract is
// judged by.
type StreamUpdateInfo struct {
	Key string `json:"artifact_key"`
	// Cached is true when the composite delta produced a graph whose
	// artifact was already resident (e.g. a trip/reclose round-trip back
	// to a previously-built topology): the rebuild cost nothing at all.
	Cached          bool    `json:"cached"`
	ClustersReused  int     `json:"clusters_reused"`
	DirtyClusters   int     `json:"dirty_clusters"`
	StitchLocalized bool    `json:"stitch_localized"`
	LGPatched       bool    `json:"lg_patched"`
	LPPatched       bool    `json:"lp_patched"`
	PatchMS         float64 `json:"patch_ms"`
	AssembleMS      float64 `json:"assemble_ms"`
	TotalMS         float64 `json:"total_ms"`
	Edits           int     `json:"edits"` // edge edits the rebuild absorbed
	PushesMerged    int     `json:"pushes_merged"`
}

// StreamStats is a session snapshot for the stats endpoint.
type StreamStats struct {
	ID            string           `json:"id"`
	BaseKey       string           `json:"base_key"`
	CurrentKey    string           `json:"current_key"`
	Vertices      int              `json:"vertices"`
	Edges         int              `json:"edges"`
	Pushes        int64            `json:"pushes"`
	Updates       int64            `json:"updates"`
	Coalesced     int64            `json:"coalesced"`
	Backpressure  int64            `json:"backpressure"`
	PendingPushes int              `json:"pending_pushes"`
	PendingEdits  int              `json:"pending_edits"`
	Closed        bool             `json:"closed"`
	Failed        string           `json:"failed,omitempty"`
	Last          StreamUpdateInfo `json:"last_update"`
}

// StreamOpen creates a session whose initial state is the artifact under
// baseKey (which must be resident, like Update's base). The session
// retains the materialized graph, so per-update cost starts at the delta
// — not at an O(nnz) graph reconstruction.
func (e *Engine) StreamOpen(baseKey string) (*Stream, error) {
	maxSessions := e.opts.StreamMaxSessions
	if maxSessions == 0 {
		maxSessions = DefaultStreamMaxSessions
	}
	if maxSessions < 0 {
		return nil, ErrStreamLimit
	}
	base, ok := e.store.Get(baseKey)
	if !ok {
		return nil, fmt.Errorf("%w: %q (evicted or never built)", ErrUnknownKey, baseKey)
	}
	s := &Stream{
		e:       e,
		cur:     base,
		curG:    base.Handle.BaseGraph(),
		baseKey: baseKey,
		setW:    make(map[[2]int]float64),
		removes: make(map[[2]int]bool),
	}
	s.cond = sync.NewCond(&s.mu)
	e.streamMu.Lock()
	if len(e.streams) >= maxSessions {
		e.streamMu.Unlock()
		return nil, fmt.Errorf("%w: %d sessions open", ErrStreamLimit, maxSessions)
	}
	e.streamSeq++
	s.id = fmt.Sprintf("s%d", e.streamSeq)
	e.streams[s.id] = s
	e.streamMu.Unlock()
	return s, nil
}

// StreamGet returns an open session by id.
func (e *Engine) StreamGet(id string) (*Stream, bool) {
	e.streamMu.Lock()
	s, ok := e.streams[id]
	e.streamMu.Unlock()
	return s, ok
}

// StreamStats snapshots every open session.
func (e *Engine) StreamStats() []StreamStats {
	e.streamMu.Lock()
	ss := make([]*Stream, 0, len(e.streams))
	for _, s := range e.streams {
		ss = append(ss, s)
	}
	e.streamMu.Unlock()
	out := make([]StreamStats, len(ss))
	for i, s := range ss {
		out[i] = s.Stats()
	}
	return out
}

// ID returns the session identifier.
func (s *Stream) ID() string { return s.id }

// Stats snapshots the session.
func (s *Stream) Stats() StreamStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := StreamStats{
		ID:            s.id,
		BaseKey:       s.baseKey,
		Pushes:        s.pushes,
		Updates:       s.updates,
		Coalesced:     s.coalesced,
		Backpressure:  s.backpressure,
		PendingPushes: s.pendingPushes,
		PendingEdits:  len(s.setW) + len(s.removes),
		Closed:        s.closed,
		Last:          s.last,
	}
	if s.cur != nil {
		st.CurrentKey = s.cur.Key
	}
	if s.curG != nil {
		st.Vertices = s.curG.N
		st.Edges = s.curG.M()
	}
	if s.failed != nil {
		st.Failed = s.failed.Error()
	}
	return st
}

// Current returns the latest applied artifact and how many accepted
// pushes it lags behind the stream head (0 = fully caught up).
func (s *Stream) Current() (*Artifact, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cur, s.pendingPushes
}

// Push validates delta d against the session's current state and queues
// it for the next rebuild, merging with any deltas already pending. It
// returns immediately; use Wait (or Push's returned generation) for
// synchronous semantics. The returned generation is the accepted push
// count; Wait(gen) blocks until that push's rebuild has been applied.
//
// Push fails with ErrStreamBackpressure when the staleness bound
// (pending pushes) or the queue depth (pending edge edits) would be
// exceeded, with ErrStreamClosed after Close, and with the sticky
// rebuild error after a failed rebuild (the session is then dead; close
// it and open a new one from a valid base).
func (s *Stream) Push(d graph.Delta) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrStreamClosed
	}
	if s.failed != nil {
		return 0, s.failed
	}

	staleness := s.e.opts.StreamStaleness
	if staleness <= 0 {
		staleness = DefaultStreamStaleness
	}
	depth := s.e.opts.StreamQueueDepth
	if depth <= 0 {
		depth = DefaultStreamQueueDepth
	}
	if s.pendingPushes >= staleness || len(s.setW)+len(s.removes)+len(d.Set)+len(d.Remove) > depth {
		s.backpressure++
		s.e.c.streamBackpressure.Add(1)
		return 0, fmt.Errorf("%w (%d pushes, %d edits pending)",
			ErrStreamBackpressure, s.pendingPushes, len(s.setW)+len(s.removes))
	}

	// Validate against current state + pending edits BEFORE mutating, so
	// a bad delta rejects atomically. Semantics mirror graph.Delta.Apply:
	// removals of absent edges and non-positive weights are errors.
	n := s.curG.N
	exists := func(u, v int) bool {
		if s.setW[[2]int{u, v}] > 0 {
			return true
		}
		if s.removes[[2]int{u, v}] {
			return false
		}
		_, ok := s.curG.EdgeBetween(u, v)
		return ok
	}
	type rm struct {
		key   [2]int
		inCur bool
	}
	rms := make([]rm, 0, len(d.Remove))
	for _, r := range d.Remove {
		u, v := normPair(r[0], r[1])
		if u < 0 || v >= n || u == v {
			return 0, fmt.Errorf("%w: remove (%d,%d): invalid endpoints for %d vertices", ErrBadDelta, r[0], r[1], n)
		}
		if !exists(u, v) {
			return 0, fmt.Errorf("%w: remove (%d,%d): edge does not exist", ErrBadDelta, r[0], r[1])
		}
		_, inCur := s.curG.EdgeBetween(u, v)
		rms = append(rms, rm{key: [2]int{u, v}, inCur: inCur})
	}
	for _, ed := range d.Set {
		u, v := normPair(ed.U, ed.V)
		if u < 0 || v >= n || u == v {
			return 0, fmt.Errorf("%w: set (%d,%d): invalid endpoints for %d vertices", ErrBadDelta, ed.U, ed.V, n)
		}
		if ed.W <= 0 {
			return 0, fmt.Errorf("%w: set (%d,%d): non-positive weight %g", ErrBadDelta, ed.U, ed.V, ed.W)
		}
	}

	// Merge. Removals first, then sets — the same order Delta.Apply uses
	// within one delta, which makes sequential composition associative.
	for _, r := range rms {
		delete(s.setW, r.key)
		if r.inCur {
			s.removes[r.key] = true
		}
	}
	for _, ed := range d.Set {
		u, v := normPair(ed.U, ed.V)
		s.setW[[2]int{u, v}] = ed.W
	}

	s.pushes++
	s.pendingPushes++
	if s.draining {
		// This push rides a rebuild that is already owed; it will be
		// merged with others rather than paying its own.
		s.coalesced++
		s.e.c.streamCoalesced.Add(1)
	} else {
		s.draining = true
		go s.drain()
	}
	return s.pushes, nil
}

// Wait blocks until the rebuild covering push generation gen has been
// applied (or the session fails/closes), returning the artifact current
// at that point.
func (s *Stream) Wait(ctx context.Context, gen int64) (*Artifact, error) {
	done := make(chan struct{})
	var art *Artifact
	var err error
	go func() {
		defer close(done)
		s.mu.Lock()
		defer s.mu.Unlock()
		for s.applied < gen && s.failed == nil && !s.closed {
			s.cond.Wait()
		}
		switch {
		case s.failed != nil:
			err = s.failed
		case s.applied < gen && s.closed:
			err = ErrStreamClosed
		default:
			art = s.cur
		}
	}()
	select {
	case <-done:
		return art, err
	case <-ctx.Done():
		// The waiter gives up; the rebuild itself keeps running.
		return nil, ctx.Err()
	}
}

// drain applies pending composite deltas one rebuild at a time until the
// queue is empty. It owns s.draining; exactly one drain goroutine runs
// per session at any moment.
func (s *Stream) drain() {
	for {
		s.mu.Lock()
		if s.closed || s.failed != nil || (len(s.setW) == 0 && len(s.removes) == 0) {
			s.draining = false
			s.cond.Broadcast()
			s.mu.Unlock()
			return
		}
		d := graph.Delta{}
		for k := range s.removes {
			d.Remove = append(d.Remove, k)
		}
		for k, w := range s.setW {
			d.Set = append(d.Set, graph.Edge{U: k[0], V: k[1], W: w})
		}
		edits := len(d.Set) + len(d.Remove)
		merged := s.pendingPushes
		covered := s.pushes
		s.setW = make(map[[2]int]float64)
		s.removes = make(map[[2]int]bool)
		s.pendingPushes = 0
		base, curG := s.cur, s.curG
		s.mu.Unlock()

		start := time.Now()
		p, err := d.ApplyPatch(curG)
		var art *Artifact
		var cached bool
		if err == nil {
			// The rebuild is detached from any request context by design:
			// accepted pushes must land even if every waiter left.
			art, cached, err = s.e.updateFrom(context.Background(), base, p)
		}
		total := time.Since(start)

		s.mu.Lock()
		if err != nil {
			// Accepted pushes that cannot be applied poison the session:
			// the served artifact would silently diverge from the pushed
			// stream otherwise. Clients observe the error on the next call.
			s.failed = fmt.Errorf("engine: stream %s rebuild: %w", s.id, err)
			s.draining = false
			s.cond.Broadcast()
			s.mu.Unlock()
			return
		}
		s.cur = art
		s.curG = p.G
		s.updates++
		s.applied = covered
		s.e.c.streamUpdates.Add(1)
		s.e.c.streamLatency.observe(total)
		info := StreamUpdateInfo{
			Key:          art.Key,
			Cached:       cached,
			TotalMS:      float64(total) / float64(time.Millisecond),
			Edits:        edits,
			PushesMerged: merged,
		}
		if st := art.Handle.ShardStats(); st != nil && !cached {
			info.ClustersReused = st.ClustersReused
			info.DirtyClusters = st.DirtyClusters
			info.StitchLocalized = st.StitchLocalized
		}
		if up := art.Handle.UpdateStats(); up != nil && !cached {
			info.LGPatched = up.LGPatched
			info.LPPatched = up.LPPatched
			info.PatchMS = float64(up.PatchTime) / float64(time.Millisecond)
			info.AssembleMS = float64(up.AssembleTime) / float64(time.Millisecond)
		}
		s.last = info
		s.cond.Broadcast()
		s.mu.Unlock()
	}
}

// Close ends the session. Pending (unapplied) pushes are discarded; the
// already-applied artifacts stay in the engine store.
func (s *Stream) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.e.streamMu.Lock()
	delete(s.e.streams, s.id)
	s.e.streamMu.Unlock()
}

func normPair(u, v int) (int, int) {
	if u > v {
		return v, u
	}
	return u, v
}
