package engine

import (
	"context"
	"errors"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

func streamFixture(t *testing.T, opts Options) (*Engine, *Artifact, *graph.Graph) {
	t.Helper()
	g := gen.Grid2D(40, 40, 1)
	if opts.ShardThreshold == 0 {
		opts.ShardThreshold = 400
	}
	e := New(opts)
	base, _, err := e.Sparsify(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if !base.Handle.Sharded() {
		t.Fatal("base build below shard threshold")
	}
	return e, base, g
}

// TestStreamBasic: a session opened from a resident base applies pushed
// deltas through the incremental fast path, serves the updated artifact,
// and lands in the stream counters.
func TestStreamBasic(t *testing.T) {
	ctx := context.Background()
	e, base, g := streamFixture(t, Options{})

	s, err := e.StreamOpen(base.Key)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := e.StreamGet(s.ID()); !ok || got != s {
		t.Fatal("StreamGet does not return the open session")
	}

	gen1, err := s.Push(graph.Delta{Set: []graph.Edge{{U: 0, V: 1, W: 5}}})
	if err != nil {
		t.Fatal(err)
	}
	art, err := s.Wait(ctx, gen1)
	if err != nil {
		t.Fatal(err)
	}
	if art.Key == base.Key {
		t.Fatal("updated artifact kept the base key")
	}
	st := art.Handle.ShardStats()
	if st == nil || !st.Incremental || !st.StitchLocalized {
		t.Fatalf("stream update missed the localized fast path: %+v", st)
	}
	if up := art.Handle.UpdateStats(); up == nil || !up.LGPatched || !up.LPPatched {
		t.Fatalf("stream update did not patch the pencil: %+v", up)
	}

	// The updated graph is served under its own key.
	newG, err := graph.Delta{Set: []graph.Edge{{U: 0, V: 1, W: 5}}}.Apply(g)
	if err != nil {
		t.Fatal(err)
	}
	again, hit, err := e.Sparsify(ctx, newG)
	if err != nil || !hit || again != art {
		t.Fatalf("sparsify(streamed graph): hit=%v same=%v err=%v", hit, again == art, err)
	}

	ss := s.Stats()
	if ss.Pushes != 1 || ss.Updates != 1 || ss.PendingPushes != 0 {
		t.Fatalf("session stats: %+v", ss)
	}
	if ss.CurrentKey != art.Key || ss.Last.Key != art.Key {
		t.Fatalf("session keys: current=%q last=%q want %q", ss.CurrentKey, ss.Last.Key, art.Key)
	}
	if ss.Last.ClustersReused == 0 || !ss.Last.StitchLocalized {
		t.Fatalf("last-update reuse report: %+v", ss.Last)
	}

	es := e.Stats()
	if es.StreamSessions != 1 || es.StreamUpdates != 1 {
		t.Fatalf("engine stream stats: sessions=%d updates=%d", es.StreamSessions, es.StreamUpdates)
	}
	if es.StreamP50US <= 0 {
		t.Fatalf("stream p50 = %g, want > 0 after an update", es.StreamP50US)
	}
}

// TestStreamCoalesce: pushes accepted while a rebuild is owed merge into
// one composite delta — remove-then-set across pushes resurrects the
// edge at the final weight, and a single rebuild absorbs all of them.
func TestStreamCoalesce(t *testing.T) {
	ctx := context.Background()
	e, base, _ := streamFixture(t, Options{})
	s, err := e.StreamOpen(base.Key)
	if err != nil {
		t.Fatal(err)
	}

	// Hold the drain by hand so the merge is deterministic.
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()

	if _, err := s.Push(graph.Delta{Remove: [][2]int{{0, 1}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Push(graph.Delta{Set: []graph.Edge{{U: 0, V: 1, W: 2.5}}}); err != nil {
		t.Fatal(err)
	}
	gen, err := s.Push(graph.Delta{Set: []graph.Edge{{U: 5, V: 6, W: 3}}})
	if err != nil {
		t.Fatal(err)
	}
	if ss := s.Stats(); ss.Coalesced != 3 || ss.PendingPushes != 3 {
		t.Fatalf("coalesce accounting before drain: %+v", ss)
	}

	go s.drain() // release the held drain
	art, err := s.Wait(ctx, gen)
	if err != nil {
		t.Fatal(err)
	}
	got := art.Handle.BaseGraph()
	if i, ok := got.EdgeBetween(0, 1); !ok || got.Edges[i].W != 2.5 {
		t.Fatalf("edge (0,1) ok=%v — want resurrected at 2.5", ok)
	}
	if i, ok := got.EdgeBetween(5, 6); !ok || got.Edges[i].W != 3 {
		t.Fatalf("edge (5,6) ok=%v — want 3", ok)
	}
	ss := s.Stats()
	if ss.Updates != 1 {
		t.Fatalf("updates = %d, want 1 rebuild absorbing 3 pushes", ss.Updates)
	}
	// 3 edits: the resurrection composes as remove(0,1) + set(0,1) so the
	// weight replaces rather than accumulates, plus the set(5,6).
	if ss.Last.PushesMerged != 3 || ss.Last.Edits != 3 {
		t.Fatalf("last update: merged=%d edits=%d, want 3 and 3", ss.Last.PushesMerged, ss.Last.Edits)
	}
}

// TestStreamBackpressure: the staleness bound (pending pushes) and queue
// depth (pending edits) both refuse pushes with ErrStreamBackpressure.
func TestStreamBackpressure(t *testing.T) {
	e, base, _ := streamFixture(t, Options{StreamStaleness: 2, StreamQueueDepth: 3})
	s, err := e.StreamOpen(base.Key)
	if err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	s.draining = true // hold rebuilds so pending work accumulates
	s.mu.Unlock()

	if _, err := s.Push(graph.Delta{Set: []graph.Edge{{U: 0, V: 1, W: 2}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Push(graph.Delta{Set: []graph.Edge{{U: 1, V: 2, W: 2}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Push(graph.Delta{Set: []graph.Edge{{U: 2, V: 3, W: 2}}}); !errors.Is(err, ErrStreamBackpressure) {
		t.Fatalf("staleness bound: err = %v, want ErrStreamBackpressure", err)
	}
	if ss := s.Stats(); ss.Backpressure != 1 {
		t.Fatalf("backpressure counter = %d, want 1", ss.Backpressure)
	}
	if e.Stats().StreamBackpressure != 1 {
		t.Fatal("engine backpressure counter not incremented")
	}

	// Queue depth: a fresh session with 2 pending edits refuses a 2-edit push.
	s2, err := e.StreamOpen(base.Key)
	if err != nil {
		t.Fatal(err)
	}
	s2.mu.Lock()
	s2.draining = true
	s2.mu.Unlock()
	if _, err := s2.Push(graph.Delta{Set: []graph.Edge{{U: 0, V: 1, W: 2}, {U: 1, V: 2, W: 2}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Push(graph.Delta{Set: []graph.Edge{{U: 2, V: 3, W: 2}, {U: 3, V: 4, W: 2}}}); !errors.Is(err, ErrStreamBackpressure) {
		t.Fatalf("queue depth: err = %v, want ErrStreamBackpressure", err)
	}
}

// TestStreamValidation: pushes are validated against current state plus
// pending edits, and a bad delta rejects atomically without corrupting
// the pending merge.
func TestStreamValidation(t *testing.T) {
	ctx := context.Background()
	e, base, _ := streamFixture(t, Options{})
	s, err := e.StreamOpen(base.Key)
	if err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()

	cases := []graph.Delta{
		{Set: []graph.Edge{{U: 0, V: 0, W: 1}}},       // self-loop
		{Set: []graph.Edge{{U: 0, V: 1 << 20, W: 1}}}, // out of range
		{Set: []graph.Edge{{U: 0, V: 1, W: -1}}},      // non-positive weight
		{Remove: [][2]int{{0, 99}}},                   // absent edge
	}
	for i, d := range cases {
		if _, err := s.Push(d); err == nil {
			t.Fatalf("case %d: bad delta accepted", i)
		}
	}

	// Removing a pending (not-yet-applied) addition is legal and cancels it.
	if _, err := s.Push(graph.Delta{Set: []graph.Edge{{U: 0, V: 99, W: 1}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Push(graph.Delta{Remove: [][2]int{{0, 99}}}); err != nil {
		t.Fatalf("removing a pending addition: %v", err)
	}
	// Removing it again must fail: it no longer exists in the merged view.
	if _, err := s.Push(graph.Delta{Remove: [][2]int{{0, 99}}}); err == nil {
		t.Fatal("double-remove of a pending addition accepted")
	}

	gen, err := s.Push(graph.Delta{Set: []graph.Edge{{U: 0, V: 1, W: 4}}})
	if err != nil {
		t.Fatal(err)
	}
	go s.drain()
	art, err := s.Wait(ctx, gen)
	if err != nil {
		t.Fatal(err)
	}
	got := art.Handle.BaseGraph()
	if _, ok := got.EdgeBetween(0, 99); ok {
		t.Fatal("cancelled addition reached the graph")
	}
	if i, ok := got.EdgeBetween(0, 1); !ok || got.Edges[i].W != 4 {
		t.Fatalf("edge (0,1) weight != 4")
	}
}

// TestStreamCloseAndLimit: closed sessions refuse pushes and leave the
// registry; the session cap and unknown base keys reject opens.
func TestStreamCloseAndLimit(t *testing.T) {
	e, base, _ := streamFixture(t, Options{StreamMaxSessions: 1})
	s, err := e.StreamOpen(base.Key)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.StreamOpen(base.Key); !errors.Is(err, ErrStreamLimit) {
		t.Fatalf("second open: err = %v, want ErrStreamLimit", err)
	}
	s.Close()
	if _, err := s.Push(graph.Delta{Set: []graph.Edge{{U: 0, V: 1, W: 2}}}); !errors.Is(err, ErrStreamClosed) {
		t.Fatalf("push after close: err = %v, want ErrStreamClosed", err)
	}
	if _, ok := e.StreamGet(s.ID()); ok {
		t.Fatal("closed session still registered")
	}
	if e.Stats().StreamSessions != 0 {
		t.Fatal("closed session still counted")
	}
	// The slot freed by Close is reusable.
	if _, err := e.StreamOpen(base.Key); err != nil {
		t.Fatalf("open after close: %v", err)
	}
	if _, err := e.StreamOpen("g9-9-0000000000000000"); !errors.Is(err, ErrStreamLimit) && !errors.Is(err, ErrUnknownKey) {
		t.Fatalf("open with bogus key: %v", err)
	}

	ed := New(Options{StreamMaxSessions: -1})
	if _, err := ed.StreamOpen("anything"); !errors.Is(err, ErrStreamLimit) {
		t.Fatalf("disabled streaming: err = %v, want ErrStreamLimit", err)
	}
}

// TestStreamChained: a chain of waited pushes tracks a reference graph
// exactly, and every rebuild takes the localized patched path.
func TestStreamChained(t *testing.T) {
	ctx := context.Background()
	e, base, g := streamFixture(t, Options{})
	s, err := e.StreamOpen(base.Key)
	if err != nil {
		t.Fatal(err)
	}

	chain := []graph.Delta{
		{Set: []graph.Edge{{U: 0, V: 1, W: 9}}},
		{Set: []graph.Edge{{U: 0, V: 41, W: 0.25}}},
		{Remove: [][2]int{{0, 41}}},
		{Set: []graph.Edge{{U: 0, V: 41, W: 0.5}}},
		{Set: []graph.Edge{{U: 0, V: 1, W: 3}, {U: 1, V: 2, W: 0.7}}},
	}
	want := g
	var art *Artifact
	for step, d := range chain {
		want, err = d.Apply(want)
		if err != nil {
			t.Fatalf("step %d: reference apply: %v", step, err)
		}
		gen, err := s.Push(d)
		if err != nil {
			t.Fatalf("step %d: push: %v", step, err)
		}
		art, err = s.Wait(ctx, gen)
		if err != nil {
			t.Fatalf("step %d: wait: %v", step, err)
		}
		got := art.Handle.BaseGraph()
		if got.M() != want.M() {
			t.Fatalf("step %d: %d edges, want %d", step, got.M(), want.M())
		}
		for _, ed := range want.Edges {
			if i, ok := got.EdgeBetween(ed.U, ed.V); !ok || got.Edges[i].W != ed.W {
				t.Fatalf("step %d: edge (%d,%d) want weight %g", step, ed.U, ed.V, ed.W)
			}
		}
		// Step 2 removes step 1's addition, returning to step 0's exact
		// topology — a whole-graph cache hit instead of a rebuild.
		ss := s.Stats()
		if step == 2 {
			if !ss.Last.Cached {
				t.Fatalf("step %d: returning to a seen topology should be a cache hit: %+v", step, ss.Last)
			}
		} else if ss.Last.Cached || !ss.Last.StitchLocalized || !ss.Last.LGPatched || !ss.Last.LPPatched {
			t.Fatalf("step %d: fast path incomplete: %+v", step, ss.Last)
		}
	}
	if ss := s.Stats(); ss.Updates < int64(len(chain)) && ss.Coalesced == 0 {
		t.Fatalf("accounting: %d updates, %d coalesced for %d pushes", ss.Updates, ss.Coalesced, ss.Pushes)
	}
}
