package engine

import (
	"context"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/sparsify"
)

// TestMethodOverrideInKey: a per-request method override builds a
// distinct artifact under a `-m<name>` key suffix; requests matching the
// engine default keep the historical keys and cache entries.
func TestMethodOverrideInKey(t *testing.T) {
	ctx := context.Background()
	g := gen.Grid2D(20, 20, 3)
	e := New(testOptions())

	def, _, err := e.Sparsify(ctx, g)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(def.Key, "-m") {
		t.Fatalf("default build key %q carries a method suffix", def.Key)
	}

	er := sparsify.ER
	erArt, hit, err := e.SparsifyWith(ctx, g, BuildOpts{Method: &er})
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("method override must not hit the default cache entry")
	}
	if erArt.Key == def.Key || !strings.HasSuffix(erArt.Key, "-mer") {
		t.Fatalf("ER artifact key = %q, want default key plus -mer suffix", erArt.Key)
	}
	if got := erArt.Handle.Config().Sparsify.Method; got != sparsify.ER {
		t.Fatalf("ER artifact built with method %v", got)
	}

	// Identical override: cache hit on the method-suffixed key.
	again, hit, err := e.SparsifyWith(ctx, g, BuildOpts{Method: &er})
	if err != nil {
		t.Fatal(err)
	}
	if !hit || again != erArt {
		t.Fatal("repeated ER request did not hit its cache entry")
	}

	// An explicit override equal to the engine default resolves to the
	// plain key — and therefore to the already-built artifact.
	tr := sparsify.TraceReduction
	trArt, hit, err := e.SparsifyWith(ctx, g, BuildOpts{Method: &tr})
	if err != nil {
		t.Fatal(err)
	}
	if !hit || trArt != def {
		t.Fatalf("explicit default-method request missed the default entry (key %q)", trArt.Key)
	}
}

// TestMethodOverrideSurvivesUpdate: an incremental rebuild of a
// method-overridden artifact inherits the method and lands under the
// updated graph's method-suffixed key.
func TestMethodOverrideSurvivesUpdate(t *testing.T) {
	ctx := context.Background()
	g := gen.Grid2D(20, 20, 4)
	e := New(testOptions())

	er := sparsify.ER
	base, _, err := e.SparsifyWith(ctx, g, BuildOpts{Method: &er})
	if err != nil {
		t.Fatal(err)
	}
	art, cached, err := e.Update(ctx, base.Key, graph.Delta{Set: []graph.Edge{{U: 0, V: 1, W: 4}}})
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("first update reported cached")
	}
	if !strings.HasSuffix(art.Key, "-mer") {
		t.Fatalf("updated artifact key = %q, want -mer suffix", art.Key)
	}
	if got := art.Handle.Config().Sparsify.Method; got != sparsify.ER {
		t.Fatalf("updated artifact built with method %v", got)
	}
}
