// Package engine is the serving layer on top of the sparsifier library: a
// bounded worker pool that runs sparsification jobs concurrently, an LRU
// store of built artifacts (sparsifier + prepared pencil, i.e. the
// sparsifier's Cholesky factorization), and batch fan-out helpers.
//
// The economics mirror effective-resistance sparsification serving: the
// sparsifier is expensive to build and cheap to apply, so the engine
// fingerprints each incoming graph, builds its artifact at most once
// (concurrent requests for the same graph coalesce onto one build), and
// answers subsequent Solve/Fiedler/CondNumber requests by pure
// factorization reuse. cmd/trsparsed exposes this over HTTP.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/graph"
	"repro/internal/precond"
	"repro/internal/shard"
	"repro/internal/sparsify"
)

// DefaultCacheSize is the artifact-store capacity when Options.CacheSize
// is unset.
const DefaultCacheSize = 64

// DefaultHardCapFactor scales Options.MaxVertices into the hard admission
// cap when Options.HardMaxVertices is unset: graphs between MaxVertices
// and HardCapFactor·MaxVertices are admitted through the sharded pipeline
// instead of being rejected.
const DefaultHardCapFactor = 8

// ErrInternal marks failures that are engine faults (recovered panics)
// rather than problems with the caller's input; servers should map it to
// a 5xx status instead of blaming the request.
var ErrInternal = errors.New("internal engine error")

// ErrUnknownKey is returned by Update when the base artifact key is not
// in the store (evicted or never built); servers map it to 404.
var ErrUnknownKey = errors.New("engine: unknown artifact key")

// Options configures an Engine. The zero value selects sensible defaults.
type Options struct {
	// Workers bounds the number of jobs (builds, solves, evaluations)
	// executing at once; default GOMAXPROCS.
	Workers int
	// CacheSize bounds resident artifacts (default DefaultCacheSize).
	CacheSize int
	// ClusterCacheSize bounds the per-cluster artifact store backing
	// incremental rebuilds (default DefaultClusterCacheSize). Cold
	// sharded builds populate it; Update calls reuse untouched clusters'
	// sparsifiers and Schwarz factors from it. Negative disables
	// cluster caching entirely.
	ClusterCacheSize int
	// ClusterCacheBytes bounds the cluster store's accounted artifact
	// footprint — edge lists plus Schwarz factors — in bytes (0 disables
	// the byte budget; entries then bound only by count). The byte budget
	// is the one that actually sizes memory: factors dominate, and their
	// size varies with cluster geometry, so a count bound alone can be
	// off by orders of magnitude.
	ClusterCacheBytes int64
	// Fleet lists worker base URLs (`trsparsed -worker` processes) for
	// the distributed shard fabric. When non-empty, every sharded build's
	// cluster constructions are dispatched to the fleet with
	// rendezvous-hashed placement, retries, hedging, and graceful
	// degradation to in-process execution; empty keeps all builds local.
	Fleet []string
	// FleetOpts tunes the fleet dispatcher (deadlines, retries, hedging;
	// zero values select fabric's defaults). Ignored when Fleet is empty.
	FleetOpts fabric.Options
	// RemoteFactors routes Schwarz per-cluster factorizations through the
	// fleet as well: the exact overlap-extended pencil block ships to the
	// worker already warm for the cluster and the validated factor comes
	// back bit-identical to a local build, with per-cluster fallback to
	// local factorization. Ignored when Fleet is empty.
	RemoteFactors bool
	// JobTimeout bounds one request's total wait — queueing plus work —
	// per job (0 disables). A timed-out build keeps running in the
	// background and still fills the cache; only the waiting request
	// gives up.
	JobTimeout time.Duration
	// Sparsify configures how artifacts are built (zero value = the
	// paper's parameters).
	Sparsify sparsify.Options
	// MaxVertices bounds the monolithic build path: graphs above this
	// vertex count are admitted through the sharded pipeline instead of
	// being built in one piece (they were rejected outright before the
	// sharded path existed). 0 disables the limit. Note the bound covers
	// per-cluster construction only — a sharded build still assembles and
	// factorizes the full stitched sparsifier's pencil once for the
	// solve handle, so deployments sizing memory strictly by MaxVertices
	// should set HardMaxVertices to taste (it defaults to 8x).
	MaxVertices int
	// HardMaxVertices is the absolute admission cap: graphs above it are
	// rejected with core.ErrTooLarge even for the sharded path. 0 derives
	// DefaultHardCapFactor·MaxVertices (or no cap when MaxVertices is
	// also 0). It bounds the one whole-graph cost a sharded build keeps:
	// the stitched pencil factorization.
	HardMaxVertices int
	// ShardThreshold routes graphs with more vertices through the
	// partition-parallel sharded pipeline even below MaxVertices
	// (0 shards only when MaxVertices forces it). See core.Config.
	ShardThreshold int
	// Shards is the default cluster count K for sharded builds (0 = auto
	// from the effective threshold).
	Shards int
	// Precond is the default preconditioner construction strategy for
	// built artifacts (precond.Auto picks Schwarz for sharded builds and
	// monolithic otherwise; see core.Config.Precond).
	Precond precond.Kind
	// ApplyWorkers bounds the per-apply goroutine fan-out of Schwarz
	// preconditioners built by this engine: same-color block corrections
	// are support-disjoint and run concurrently, bit-identical to the
	// sequential sweep (0 = GOMAXPROCS, negative forces sequential). It
	// has no effect on monolithic preconditioners. See
	// core.Config.ApplyWorkers.
	ApplyWorkers int
	// CoalesceWindow holds each solve-by-artifact request open for this
	// long so concurrent requests against the same artifact and tolerance
	// collect into one block solve (a single matrix sweep and
	// preconditioner apply per iteration serves every collected rhs).
	// 0 (the default) disables coalescing: each request solves
	// immediately. The window is a deliberate latency-for-throughput
	// trade — an isolated request pays the full window before its solve
	// starts.
	CoalesceWindow time.Duration
	// CoalesceMaxBatch caps how many requests one coalesced batch
	// collects before it executes early (default
	// DefaultCoalesceMaxBatch). Ignored when CoalesceWindow is 0.
	CoalesceMaxBatch int
	// StreamMaxSessions bounds concurrently open /v2/stream sessions
	// (default DefaultStreamMaxSessions; negative disables streaming).
	StreamMaxSessions int
	// StreamStaleness bounds how many pushed-but-unapplied updates a
	// stream session may hold before pushes are refused with
	// ErrStreamBackpressure — the staleness bound: the served artifact is
	// never more than this many accepted pushes behind the stream head
	// (default DefaultStreamStaleness).
	StreamStaleness int
	// StreamQueueDepth bounds the pending edge edits (set + remove
	// entries across queued pushes) per session, the companion
	// backpressure knob for few-but-huge deltas (default
	// DefaultStreamQueueDepth).
	StreamQueueDepth int
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.CacheSize <= 0 {
		o.CacheSize = DefaultCacheSize
	}
	return o
}

// Engine runs sparsification and solve jobs on a bounded pool and caches
// built artifacts. Safe for concurrent use.
type Engine struct {
	opts     Options
	sem      chan struct{}
	store    *Store
	clusters *ClusterStore  // nil when cluster caching is disabled
	fleet    *fabric.Remote // nil when no worker fleet is configured
	coal     *coalescer     // nil when request coalescing is disabled
	c        counters

	mu       sync.Mutex
	building map[string]*buildCall

	streamMu  sync.Mutex
	streams   map[string]*Stream
	streamSeq int64
}

// buildCall coalesces concurrent builds of the same fingerprint
// (singleflight): the first request starts the build, later ones wait on
// done.
type buildCall struct {
	done chan struct{}
	art  *Artifact
	err  error
}

// New creates an engine.
func New(opts Options) *Engine {
	o := opts.withDefaults()
	e := &Engine{
		opts:     o,
		sem:      make(chan struct{}, o.Workers),
		store:    NewStore(o.CacheSize),
		building: make(map[string]*buildCall),
		streams:  make(map[string]*Stream),
	}
	if o.ClusterCacheSize >= 0 {
		e.clusters = NewClusterStore(o.ClusterCacheSize, o.ClusterCacheBytes)
	}
	if len(o.Fleet) > 0 {
		e.fleet = fabric.NewRemote(o.Fleet, o.FleetOpts)
	}
	if o.CoalesceWindow > 0 {
		e.coal = newCoalescer(e, o.CoalesceWindow, o.CoalesceMaxBatch)
	}
	return e
}

// ClusterStore returns the per-cluster artifact store (nil when disabled
// via a negative Options.ClusterCacheSize).
func (e *Engine) ClusterStore() *ClusterStore { return e.clusters }

// Fleet returns the worker-fleet dispatcher (nil when Options.Fleet is
// empty and every build runs in-process).
func (e *Engine) Fleet() *fabric.Remote { return e.fleet }

// Options returns the engine's resolved configuration.
func (e *Engine) Options() Options { return e.opts }

// Stats returns a snapshot of cache and job telemetry.
func (e *Engine) Stats() Stats {
	s := e.c.snapshot()
	s.Evictions = e.store.Evictions()
	s.CacheLen = e.store.Len()
	s.CacheCap = e.store.Capacity()
	if e.clusters != nil {
		s.ClusterHits = e.clusters.Hits()
		s.ClusterMisses = e.clusters.Misses()
		s.ClusterEvictions = e.clusters.Evictions()
		s.ClusterCacheLen = e.clusters.Len()
		s.ClusterCacheCap = e.clusters.Capacity()
		s.ClusterCacheBytes = e.clusters.Bytes()
		s.ClusterCacheMaxBytes = e.clusters.MaxBytes()
	}
	if e.fleet != nil {
		s.Fleet = e.fleet.Stats()
	}
	e.streamMu.Lock()
	s.StreamSessions = len(e.streams)
	e.streamMu.Unlock()
	return s
}

// Lookup returns the cached artifact for a fingerprint key (as returned in
// Artifact.Key), without building anything. Like Sparsify, it counts toward
// the hit/miss stats — the key-based solve path is still a cache consult.
func (e *Engine) Lookup(key string) (*Artifact, bool) {
	art, ok := e.store.Get(key)
	if ok {
		e.c.hits.Add(1)
	} else {
		e.c.misses.Add(1)
	}
	return art, ok
}

// BuildOpts are per-request overrides of the engine's sharding defaults
// (the HTTP layer maps ?shards= and ?shard_threshold= onto them). Zero
// values inherit the engine configuration. Overrides participate in the
// artifact identity: the same graph sharded differently is a different
// artifact, so the store key and the build singleflight both incorporate
// the effective shard configuration.
type BuildOpts struct {
	ShardThreshold int
	Shards         int
	// Precond overrides the engine's preconditioner strategy for this
	// build (precond.Auto inherits; the HTTP layer maps ?precond= here).
	Precond precond.Kind
	// Method overrides the sparsification algorithm for this build (nil
	// inherits the engine's Sparsify.Method; the HTTP layer maps ?method=
	// here). Like the other overrides it joins the artifact identity: the
	// same graph built with trace reduction and with effective-resistance
	// sampling is two different sparsifiers.
	Method *sparsify.Method
}

// resolveBuild computes the effective core configuration, the store key,
// and the admission decision for one build request.
func (e *Engine) resolveBuild(g *graph.Graph, fp Fingerprint, bo BuildOpts) (core.Config, string, error) {
	threshold := bo.ShardThreshold
	if threshold <= 0 {
		threshold = e.opts.ShardThreshold
	}
	shards := bo.Shards
	if shards <= 0 {
		shards = e.opts.Shards
	}
	hard := e.opts.HardMaxVertices
	if hard <= 0 && e.opts.MaxVertices > 0 {
		hard = DefaultHardCapFactor * e.opts.MaxVertices
	}
	if hard > 0 && g.N > hard {
		// Report the effective values: hard may come from HardMaxVertices
		// directly rather than the DefaultHardCapFactor derivation.
		detail := ""
		if e.opts.MaxVertices > 0 && e.opts.MaxVertices < hard {
			detail = fmt.Sprintf(" (graphs between %d and %d are served via the sharded pipeline)",
				e.opts.MaxVertices, hard)
		}
		return core.Config{}, "", fmt.Errorf(
			"%w: graph has %d vertices, hard admission cap is %d%s",
			core.ErrTooLarge, g.N, hard, detail)
	}
	// A graph too large for one monolithic factorization job is admitted
	// through the sharded pipeline: clamp the threshold so no single
	// cluster build exceeds the per-job bound.
	if e.opts.MaxVertices > 0 && g.N > e.opts.MaxVertices {
		if threshold <= 0 || threshold > e.opts.MaxVertices {
			threshold = e.opts.MaxVertices
		}
	}
	kind := bo.Precond
	if kind == precond.Auto {
		kind = e.opts.Precond
	}
	method := e.opts.Sparsify.Method
	if bo.Method != nil {
		method = *bo.Method
	}
	cfg := core.Config{
		Sparsify:       e.opts.Sparsify,
		MaxVertices:    hard,
		ShardThreshold: threshold,
		Shards:         shards,
		Precond:        kind,
		// ApplyWorkers stays out of the artifact key: the fan-out is
		// bit-identical to the sequential sweep, so the same graph built
		// with a different worker bound is the same artifact.
		ApplyWorkers: e.opts.ApplyWorkers,
	}
	cfg.Sparsify.Method = method
	if e.clusters != nil {
		// Wire the shared cluster store into every build, so cold sharded
		// builds populate it and incremental rebuilds draw on it.
		cfg.Clusters = e.clusters
		cfg.Factors = e.clusters
	}
	if e.fleet != nil {
		// Every sharded build's clusters go through the fleet dispatcher;
		// it degrades to in-process execution on its own, so wiring it
		// unconditionally never makes a build fail that would have
		// succeeded locally.
		cfg.Dispatcher = e.fleet
		// Remote factor builds ride the same dispatcher (the Schwarz
		// builder falls back to local factorization per cluster), so the
		// flag is likewise safe to wire whenever it is on.
		cfg.RemoteFactors = e.opts.RemoteFactors
	}
	key := fp.Key()
	if threshold > 0 && g.N > threshold {
		// Shard configuration is part of the artifact identity; the plain
		// key stays reserved for monolithic builds so default traffic
		// keeps hitting the same cache entries as before. K is resolved
		// before it enters the key (and the config), so an auto-K request
		// and an explicit one resolving to the same K coalesce onto one
		// artifact instead of building the identical plan twice.
		resolved := shard.ResolveShards(g.N, e.opts.Workers,
			shard.Options{Shards: shards, Threshold: threshold})
		cfg.Shards = resolved
		key = fmt.Sprintf("%s-st%d-k%d", key, threshold, resolved)
	}
	if kind != precond.Auto {
		// An explicit strategy is part of the artifact identity: the same
		// graph solved through a Schwarz and a monolithic preconditioner
		// is two different factorizations. Auto stays keyless so default
		// traffic keeps hitting the same entries as before.
		key = fmt.Sprintf("%s-p%s", key, kind)
	}
	if method != e.opts.Sparsify.Method {
		// A non-default method is part of the artifact identity; requests
		// matching the engine default stay keyless so they keep hitting the
		// same entries as before the override existed.
		key = fmt.Sprintf("%s-m%s", key, method)
	}
	return cfg, key, nil
}

// Sparsify returns the artifact for g under the engine's default build
// configuration, building it on the pool if absent. The boolean reports
// whether the artifact came straight from the cache.
func (e *Engine) Sparsify(ctx context.Context, g *graph.Graph) (*Artifact, bool, error) {
	return e.SparsifyWith(ctx, g, BuildOpts{})
}

// SparsifyWith is Sparsify with per-request sharding overrides.
func (e *Engine) SparsifyWith(ctx context.Context, g *graph.Graph, bo BuildOpts) (*Artifact, bool, error) {
	fp := FingerprintGraph(g)
	cfg, key, err := e.resolveBuild(g, fp, bo)
	if err != nil {
		return nil, false, err
	}
	if art, ok := e.store.Get(key); ok {
		e.c.hits.Add(1)
		return art, true, nil
	}

	// A caller that is already gone must not launch a detached build:
	// repeated disconnect-and-resend of unique graphs would otherwise burn
	// CPU and churn the LRU for waiters that returned immediately. (Once a
	// build has started, mid-build cancellation deliberately lets it finish
	// and fill the cache — that work is already paid for.)
	if err := ctx.Err(); err != nil {
		e.noteCtx(ctx)
		return nil, false, err
	}

	e.mu.Lock()
	c, ok := e.building[key]
	if !ok {
		// Re-check the store under the lock: a concurrent build of this
		// graph may have added its artifact and cleared its building entry
		// between our Get miss above and acquiring e.mu, in which case
		// starting a second build would redo already-cached work. Only a
		// request that actually waits on a build counts as a miss — one
		// served here got the artifact without building and is a hit.
		if art, hit := e.store.Get(key); hit {
			e.mu.Unlock()
			e.c.hits.Add(1)
			return art, true, nil
		}
		c = &buildCall{done: make(chan struct{})}
		e.building[key] = c
		go e.build(fp, key, c, false, func(ctx context.Context) (*core.Sparsifier, error) {
			return core.NewSparsifier(ctx, g, cfg)
		})
	}
	e.mu.Unlock()
	e.c.misses.Add(1)

	ctx, cancel := e.jobCtx(ctx)
	defer cancel()
	select {
	case <-c.done:
		return c.art, false, c.err
	case <-ctx.Done():
		e.noteCtx(ctx)
		return nil, false, ctx.Err()
	}
}

// build runs one artifact construction on the pool: construct creates
// the same core.Sparsifier handle the public API hands out (a cold
// NewSparsifier, or an incremental UpdateSparsifier against a base
// artifact) and build wraps it with the fingerprint identity. It is
// detached from any single request's context: once started, the build
// completes and fills the cache even if every waiter timed out — the
// work is already paid for and the next request for this graph becomes a
// hit. Incremental builds land in their own latency histogram so fast
// delta rebuilds don't skew the cold-path percentiles.
func (e *Engine) build(fp Fingerprint, key string, c *buildCall, fromUpdate bool, construct func(context.Context) (*core.Sparsifier, error)) {
	enqueued := time.Now()
	e.sem <- struct{}{}
	e.c.jobs.Add(1)
	e.c.inFlight.Add(1)
	start := time.Now()
	// Resolved after construction: an Update request whose rebuild fell
	// back to a full build (monolithic base, rebalance replan, abandoned
	// plan) costs cold-build time and must land in the cold histogram and
	// counters, or the incremental percentiles stop describing delta
	// rebuilds.
	incremental := false
	defer func() {
		hist := &e.c.latency
		if incremental {
			hist = &e.c.incLatency
		}
		hist.observe(time.Since(enqueued))
		e.c.inFlight.Add(-1)
		<-e.sem
		e.mu.Lock()
		delete(e.building, key)
		e.mu.Unlock()
		close(c.done)
	}()

	// The build runs in a plain goroutine with no http.Server recovery
	// above it, so a panic on a degenerate input would kill the whole
	// process; surface it to waiters as a job error instead.
	defer func() {
		if p := recover(); p != nil {
			e.c.jobErrors.Add(1)
			c.err = fmt.Errorf("engine: building %s panicked: %v (%w)", key, p, ErrInternal)
		}
	}()

	// The build deliberately runs under context.Background(): detachment
	// from the waiters' contexts is the whole point (see above).
	h, err := construct(context.Background())
	if err != nil {
		e.c.jobErrors.Add(1)
		c.err = fmt.Errorf("engine: building %s: %w", key, err)
		return
	}
	// Drop construction scaffolding before publishing: the store's
	// capacity should bound factorizations, and the spanning tree inside
	// Result would otherwise pin the whole input graph per cached entry.
	h.Compact()
	e.c.builds.Add(1)
	if st := h.ShardStats(); fromUpdate && st != nil && st.Incremental {
		incremental = true
		e.c.incrementalBuilds.Add(1)
	}
	if st := h.ShardStats(); st != nil {
		if st.Abandoned {
			e.c.abandonedPlans.Add(1)
		} else {
			e.c.shardedBuilds.Add(1)
			e.c.shardsBuilt.Add(int64(st.Shards))
		}
		e.c.clustersReused.Add(int64(st.ClustersReused))
		e.c.clustersRemote.Add(int64(st.ClustersRemote))
	}
	if ps := h.PrecondStats(); ps != nil && ps.Kind == precond.Schwarz.String() {
		e.c.schwarzPreconds.Add(1)
		e.c.factorsRemote.Add(int64(ps.FactorsRemote))
	}
	c.art = &Artifact{
		Fingerprint: fp,
		Key:         key,
		Handle:      h,
		BuiltAt:     start,
		BuildTime:   time.Since(start),
	}
	e.store.Add(c.art)
}

// Update builds the artifact for "the base artifact's graph plus delta
// d", reusing the base's plan and the cluster store: untouched clusters'
// sparsifiers and Schwarz factors are adopted verbatim, the stitch is
// localized to the dirty clusters, and the pencil is patched in place
// when the delta stays inside the dirty region (the streaming-delta fast
// path; see core.UpdateSparsifierPatch). The new artifact is stored under
// the updated graph's own fingerprint key — replacing any whole-graph
// entry already cached under that key, so later plain Sparsify requests
// for the updated graph hit the incremental artifact. The boolean
// reports whether that key was already cached (in which case nothing was
// rebuilt). Returns ErrUnknownKey when baseKey is not resident.
func (e *Engine) Update(ctx context.Context, baseKey string, d graph.Delta) (*Artifact, bool, error) {
	base, ok := e.store.Get(baseKey)
	if !ok {
		return nil, false, fmt.Errorf("%w: %q (evicted or never built)", ErrUnknownKey, baseKey)
	}
	p, err := d.ApplyPatch(base.Handle.BaseGraph())
	if err != nil {
		return nil, false, err
	}
	return e.updateFrom(ctx, base, p)
}

// updateFrom is the shared incremental-build core behind Update and the
// stream sessions: resolve the updated graph's artifact identity, consult
// the store, and otherwise run one singleflighted incremental build from
// the base artifact and the graph patch.
func (e *Engine) updateFrom(ctx context.Context, base *Artifact, p *graph.Patch) (*Artifact, bool, error) {
	newG := p.G
	fp := FingerprintGraph(newG)
	// The updated artifact inherits the base's build configuration, so
	// its store key mirrors what a cold build of newG under the same
	// overrides would use — that is what lets /v2/sparsify traffic for
	// the updated graph hit it.
	bcfg := base.Handle.Config()
	_, key, err := e.resolveBuild(newG, fp, BuildOpts{
		ShardThreshold: bcfg.ShardThreshold,
		Shards:         bcfg.Shards,
		Precond:        bcfg.Precond,
		Method:         &bcfg.Sparsify.Method,
	})
	if err != nil {
		return nil, false, err
	}
	if art, ok := e.store.Get(key); ok {
		e.c.hits.Add(1)
		return art, true, nil
	}
	if err := ctx.Err(); err != nil {
		e.noteCtx(ctx)
		return nil, false, err
	}

	e.mu.Lock()
	c, ok := e.building[key]
	if !ok {
		if art, hit := e.store.Get(key); hit {
			e.mu.Unlock()
			e.c.hits.Add(1)
			return art, true, nil
		}
		c = &buildCall{done: make(chan struct{})}
		e.building[key] = c
		go e.build(fp, key, c, true, func(ctx context.Context) (*core.Sparsifier, error) {
			return core.UpdateSparsifierPatch(ctx, base.Handle, p)
		})
	}
	e.mu.Unlock()
	e.c.misses.Add(1)

	ctx, cancel := e.jobCtx(ctx)
	defer cancel()
	select {
	case <-c.done:
		return c.art, false, c.err
	case <-ctx.Done():
		e.noteCtx(ctx)
		return nil, false, ctx.Err()
	}
}

// SolveResult is the outcome of one preconditioned solve.
type SolveResult struct {
	X          []float64
	Iterations int
	RelRes     float64
	Converged  bool
	// CacheHit reports whether the artifact was served from the store
	// (no sparsification, no refactorization).
	CacheHit bool
	Artifact *Artifact
}

// Solve solves L_G x = b with PCG preconditioned by g's cached sparsifier
// factorization, building the artifact first if needed. tol ≤ 0 selects
// 1e-6.
func (e *Engine) Solve(ctx context.Context, g *graph.Graph, b []float64, tol float64) (*SolveResult, error) {
	return e.SolveWith(ctx, g, b, tol, BuildOpts{})
}

// SolveWith is Solve with per-request build overrides (sharding,
// preconditioner strategy) for the artifact construction.
func (e *Engine) SolveWith(ctx context.Context, g *graph.Graph, b []float64, tol float64, bo BuildOpts) (*SolveResult, error) {
	// Reject a mis-sized rhs before paying for sparsification and
	// factorization; SolveArtifact re-checks for the by-key path.
	if len(b) != g.N {
		return nil, fmt.Errorf("engine: rhs has length %d, graph has %d vertices (%w)",
			len(b), g.N, core.ErrDimension)
	}
	art, hit, err := e.SparsifyWith(ctx, g, bo)
	if err != nil {
		return nil, err
	}
	r, err := e.SolveArtifact(ctx, art, b, tol)
	if err != nil {
		return nil, err
	}
	r.CacheHit = hit
	return r, nil
}

// SolveArtifact solves against an already-obtained artifact (e.g. looked
// up by key), reusing its factorization. The caller's context is threaded
// into the PCG iterations, so a canceled request stops mid-solve instead
// of running to convergence for nobody. When Options.CoalesceWindow is
// set, the request may be held for up to the window and executed as one
// column of a shared block solve with other concurrent requests against
// the same artifact and tolerance.
func (e *Engine) SolveArtifact(ctx context.Context, art *Artifact, b []float64, tol float64) (*SolveResult, error) {
	if len(b) != art.Handle.N() {
		return nil, fmt.Errorf("engine: rhs has length %d, graph has %d vertices (%w)",
			len(b), art.Handle.N(), core.ErrDimension)
	}
	if e.coal != nil {
		return e.coal.solve(ctx, art, b, tol)
	}
	return runJob(e, ctx, func(jctx context.Context) (*SolveResult, error) {
		sol, err := art.Handle.SolveTol(jctx, b, tol)
		if err != nil {
			return nil, err
		}
		return &SolveResult{
			X:          sol.X,
			Iterations: sol.Iterations,
			RelRes:     sol.RelRes,
			Converged:  sol.Converged,
			Artifact:   art,
		}, nil
	})
}

// SolveBatchArtifact solves every right-hand side in bs against one
// artifact as a single block solve: one matrix sweep and one
// preconditioner apply per iteration serve the whole batch, with
// per-column convergence (see core.Sparsifier.SolveBatchTol). It
// occupies one worker slot regardless of batch width and bypasses the
// request coalescer — the caller already batched.
func (e *Engine) SolveBatchArtifact(ctx context.Context, art *Artifact, bs [][]float64, tol float64) ([]*SolveResult, error) {
	for i, b := range bs {
		if len(b) != art.Handle.N() {
			return nil, fmt.Errorf("engine: rhs %d has length %d, graph has %d vertices (%w)",
				i, len(b), art.Handle.N(), core.ErrDimension)
		}
	}
	sols, err := runJob(e, ctx, func(jctx context.Context) ([]*core.Solution, error) {
		e.c.solveBatches.Add(1)
		e.c.observeBatchSize(len(bs))
		return art.Handle.SolveBatchTol(jctx, bs, tol)
	})
	if err != nil {
		return nil, err
	}
	out := make([]*SolveResult, len(sols))
	for i, sol := range sols {
		out[i] = &SolveResult{
			X:          sol.X,
			Iterations: sol.Iterations,
			RelRes:     sol.RelRes,
			Converged:  sol.Converged,
			Artifact:   art,
		}
	}
	return out, nil
}

// CondNumber estimates κ(L_G, L_P) through g's cached artifact.
func (e *Engine) CondNumber(ctx context.Context, g *graph.Graph, seed int64) (float64, error) {
	art, _, err := e.Sparsify(ctx, g)
	if err != nil {
		return 0, err
	}
	return runJob(e, ctx, func(jctx context.Context) (float64, error) {
		return art.Handle.CondNumberWith(jctx, 0, seed)
	})
}

// Fiedler approximates g's Fiedler vector through its cached artifact.
func (e *Engine) Fiedler(ctx context.Context, g *graph.Graph, steps int, tol float64, seed int64) ([]float64, error) {
	art, _, err := e.Sparsify(ctx, g)
	if err != nil {
		return nil, err
	}
	return runJob(e, ctx, func(jctx context.Context) ([]float64, error) {
		return art.Handle.FiedlerWith(jctx, steps, tol, seed)
	})
}

// Partition computes g's spectral bipartition through its cached artifact
// (Fiedler vector split at the median; the paper's §4.3 application).
func (e *Engine) Partition(ctx context.Context, g *graph.Graph) ([]int, error) {
	art, _, err := e.Sparsify(ctx, g)
	if err != nil {
		return nil, err
	}
	return e.PartitionArtifact(ctx, art)
}

// PartitionArtifact computes the spectral bipartition against an
// already-obtained artifact (e.g. looked up by key).
func (e *Engine) PartitionArtifact(ctx context.Context, art *Artifact) ([]int, error) {
	return runJob(e, ctx, func(jctx context.Context) ([]int, error) {
		return art.Handle.Partition(jctx)
	})
}

// Evaluate runs the full Table-1 measurement pipeline for g on the pool.
// It deliberately bypasses the cache: Evaluate times sparsifier
// construction, so serving it a prebuilt artifact would be lying.
func (e *Engine) Evaluate(ctx context.Context, g *graph.Graph, eopts core.EvalOptions) (*core.Outcome, error) {
	return runJob(e, ctx, func(context.Context) (*core.Outcome, error) {
		// Evaluate times construction itself and is deliberately not
		// interruptible mid-measurement; the job context still bounds the
		// caller's wait.
		return core.Evaluate(g, e.opts.Sparsify, eopts)
	})
}

// SparsifyItem is one graph's result from SparsifyAll.
type SparsifyItem struct {
	Index    int
	Artifact *Artifact
	CacheHit bool
	Err      error
}

// SparsifyAll fans gs across the pool and returns per-item results in
// input order. Individual failures land in their item's Err; the batch
// itself always completes.
func (e *Engine) SparsifyAll(ctx context.Context, gs []*graph.Graph) []SparsifyItem {
	out := make([]SparsifyItem, len(gs))
	var wg sync.WaitGroup
	for i, g := range gs {
		wg.Add(1)
		go func(i int, g *graph.Graph) {
			defer wg.Done()
			art, hit, err := e.Sparsify(ctx, g)
			out[i] = SparsifyItem{Index: i, Artifact: art, CacheHit: hit, Err: err}
		}(i, g)
	}
	wg.Wait()
	return out
}

// EvalItem is one graph's result from EvaluateAll.
type EvalItem struct {
	Index   int
	Outcome *core.Outcome
	Err     error
}

// EvaluateAll runs the evaluation pipeline for every graph on the pool and
// returns per-item results in input order.
func (e *Engine) EvaluateAll(ctx context.Context, gs []*graph.Graph, eopts core.EvalOptions) []EvalItem {
	out := make([]EvalItem, len(gs))
	var wg sync.WaitGroup
	for i, g := range gs {
		wg.Add(1)
		go func(i int, g *graph.Graph) {
			defer wg.Done()
			o, err := e.Evaluate(ctx, g, eopts)
			out[i] = EvalItem{Index: i, Outcome: o, Err: err}
		}(i, g)
	}
	wg.Wait()
	return out
}

// jobCtx derives the context one request waits under: caller context plus
// the per-job timeout.
func (e *Engine) jobCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if e.opts.JobTimeout > 0 {
		return context.WithTimeout(ctx, e.opts.JobTimeout)
	}
	return context.WithCancel(ctx)
}

// noteCtx records why a wait ended early.
func (e *Engine) noteCtx(ctx context.Context) {
	if errors.Is(ctx.Err(), context.DeadlineExceeded) {
		e.c.timeouts.Add(1)
	}
}

// runJob executes do on the bounded pool: it waits for a worker slot
// (honoring cancellation and the per-job timeout), runs, and returns the
// result. do receives the derived job context — caller context plus the
// per-job timeout — so context-aware work (PCG, Lanczos) stops when
// either fires instead of burning its worker slot to completion. If the
// caller's wait ends while the job is running anyway (non-context-aware
// work, or the gap between polls), the call returns the context error and
// the job finishes in the background still holding its slot, so the pool
// stays bounded.
func runJob[T any](e *Engine, ctx context.Context, do func(context.Context) (T, error)) (T, error) {
	var zero T
	ctx, cancel := e.jobCtx(ctx)
	defer cancel()
	start := time.Now()
	select {
	case e.sem <- struct{}{}:
	case <-ctx.Done():
		e.noteCtx(ctx)
		return zero, ctx.Err()
	}
	e.c.jobs.Add(1)
	e.c.inFlight.Add(1)
	type result struct {
		v   T
		err error
	}
	ch := make(chan result, 1)
	go func() {
		// Errors (and recovered panics) are counted here rather than at
		// the receive site so jobs whose waiter already timed out still
		// show up in the stats.
		defer func() {
			if p := recover(); p != nil {
				e.c.jobErrors.Add(1)
				ch <- result{zero, fmt.Errorf("engine: job panicked: %v (%w)", p, ErrInternal)}
			}
			e.c.latency.observe(time.Since(start))
			e.c.inFlight.Add(-1)
			<-e.sem
		}()
		v, err := do(ctx)
		if err != nil {
			e.c.jobErrors.Add(1)
		}
		ch <- result{v, err}
	}()
	select {
	case r := <-ch:
		return r.v, r.err
	case <-ctx.Done():
		e.noteCtx(ctx)
		return zero, ctx.Err()
	}
}
