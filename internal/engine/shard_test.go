package engine

import (
	"context"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/precond"
)

// TestShardedAdmissionAboveMaxVertices: a graph above MaxVertices — which
// PR 2 rejected with ErrTooLarge — is now admitted through the sharded
// pipeline, and the artifact records its shard telemetry.
func TestShardedAdmissionAboveMaxVertices(t *testing.T) {
	g := gen.Grid2D(40, 40, 1) // 1600 vertices
	e := New(Options{MaxVertices: 500})

	art, hit, err := e.Sparsify(context.Background(), g)
	if err != nil {
		t.Fatalf("graph above MaxVertices rejected: %v", err)
	}
	if hit {
		t.Fatal("cold build reported as cache hit")
	}
	if !art.Handle.Sharded() {
		t.Fatal("oversized graph was built monolithically")
	}
	st := art.Handle.ShardStats()
	// threshold clamps to MaxVertices=500, so 1600 vertices need ≥ 4 clusters.
	if st.Shards < 4 {
		t.Fatalf("got %d shards, want ≥ 4 for 1600 vertices at threshold 500", st.Shards)
	}
	s := e.Stats()
	if s.ShardedBuilds != 1 || s.ShardsBuilt < 4 {
		t.Fatalf("stats: sharded_builds=%d shards_built=%d", s.ShardedBuilds, s.ShardsBuilt)
	}

	// And the artifact is fully usable: solve through it.
	b := make([]float64, g.N)
	b[0], b[g.N-1] = 1, -1
	r, err := e.SolveArtifact(context.Background(), art, b, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Converged {
		t.Fatal("solve through sharded artifact did not converge")
	}
}

// TestHardCapStillRejects: the sharded path has its own ceiling.
func TestHardCapStillRejects(t *testing.T) {
	g := gen.Grid2D(40, 40, 1) // 1600 vertices
	e := New(Options{MaxVertices: 100, HardMaxVertices: 1000})
	_, _, err := e.Sparsify(context.Background(), g)
	if !errors.Is(err, core.ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

// TestShardConfigInKey: the same graph built with different shard
// configurations yields distinct artifacts (distinct store keys), while
// repeated identical requests coalesce on one.
func TestShardConfigInKey(t *testing.T) {
	g := gen.Grid2D(30, 30, 2)
	e := New(Options{})
	ctx := context.Background()

	mono, _, err := e.Sparsify(ctx, g)
	if err != nil {
		t.Fatal(err)
	}
	sharded, hit, err := e.SparsifyWith(ctx, g, BuildOpts{ShardThreshold: 200, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("different shard config must not hit the monolithic cache entry")
	}
	if mono.Key == sharded.Key {
		t.Fatalf("monolithic and sharded artifacts share key %q", mono.Key)
	}
	if mono.Handle.Sharded() || !sharded.Handle.Sharded() {
		t.Fatalf("paths mixed up: mono sharded=%v, sharded sharded=%v",
			mono.Handle.Sharded(), sharded.Handle.Sharded())
	}
	// Same override again: cache hit on the sharded key.
	again, hit, err := e.SparsifyWith(ctx, g, BuildOpts{ShardThreshold: 200, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !hit || again != sharded {
		t.Fatal("identical sharded request did not hit the cache")
	}
	// Both remain addressable by key.
	if _, ok := e.Lookup(mono.Key); !ok {
		t.Fatal("monolithic artifact lost")
	}
	if _, ok := e.Lookup(sharded.Key); !ok {
		t.Fatal("sharded artifact lost")
	}
}

// TestLatencyPercentiles: after at least one job, the derived percentile
// fields are populated and ordered.
func TestLatencyPercentiles(t *testing.T) {
	g := gen.Grid2D(12, 12, 3)
	e := New(Options{})
	if _, _, err := e.Sparsify(context.Background(), g); err != nil {
		t.Fatal(err)
	}
	s := e.Stats()
	if s.P50LatencyMS <= 0 {
		t.Fatalf("p50 = %g, want > 0 after a completed job", s.P50LatencyMS)
	}
	if s.P50LatencyMS > s.P95LatencyMS || s.P95LatencyMS > s.P99LatencyMS {
		t.Fatalf("percentiles unordered: p50=%g p95=%g p99=%g",
			s.P50LatencyMS, s.P95LatencyMS, s.P99LatencyMS)
	}
}

// TestPrecondInKeyAndStats: an explicit preconditioner strategy is part
// of the artifact identity; Auto traffic keeps its historical keys. The
// engine counts Schwarz preconditioners as they are built.
func TestPrecondInKeyAndStats(t *testing.T) {
	g := gen.Grid2D(30, 30, 2)
	e := New(Options{})
	ctx := context.Background()

	auto, _, err := e.Sparsify(ctx, g)
	if err != nil {
		t.Fatal(err)
	}
	if ps := auto.Handle.PrecondStats(); ps == nil || ps.Kind != "monolithic" {
		t.Fatalf("auto monolithic build reports precond %+v", auto.Handle.PrecondStats())
	}
	sch, hit, err := e.SparsifyWith(ctx, g, BuildOpts{Precond: precond.Schwarz})
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("explicit schwarz request must not hit the auto entry")
	}
	if auto.Key == sch.Key {
		t.Fatalf("auto and schwarz artifacts share key %q", auto.Key)
	}
	ps := sch.Handle.PrecondStats()
	if ps == nil || ps.Kind != "schwarz" || ps.Clusters < 2 {
		t.Fatalf("schwarz build reports precond %+v", ps)
	}
	if s := e.Stats(); s.SchwarzPreconds != 1 {
		t.Fatalf("schwarz_preconds = %d, want 1", s.SchwarzPreconds)
	}
	// The Schwarz artifact solves.
	b := make([]float64, g.N)
	b[0], b[g.N-1] = 1, -1
	r, err := e.SolveArtifact(ctx, sch, b, 1e-6)
	if err != nil || !r.Converged {
		t.Fatalf("solve through schwarz artifact: converged=%v err=%v", r != nil && r.Converged, err)
	}
	// Identical explicit request: cache hit on the strategy-suffixed key.
	again, hit, err := e.SparsifyWith(ctx, g, BuildOpts{Precond: precond.Schwarz})
	if err != nil || !hit || again != sch {
		t.Fatalf("repeat schwarz request: hit=%v err=%v", hit, err)
	}
}

// TestShardedBuildGetsSchwarzAutomatically: above the shard threshold the
// handle both builds sharded and carries the Schwarz preconditioner —
// the plan is threaded through to the pencil without being re-derived.
func TestShardedBuildGetsSchwarzAutomatically(t *testing.T) {
	g := gen.Grid2D(40, 40, 1)
	e := New(Options{ShardThreshold: 400})
	art, _, err := e.Sparsify(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if !art.Handle.Sharded() {
		t.Fatal("build below threshold")
	}
	ps := art.Handle.PrecondStats()
	if ps == nil || ps.Kind != "schwarz" {
		t.Fatalf("sharded build precond = %+v, want schwarz", ps)
	}
	if ps.Clusters != art.Handle.ShardStats().Shards {
		t.Fatalf("precond clusters %d != plan shards %d", ps.Clusters, art.Handle.ShardStats().Shards)
	}
	if ps.CoarseSize != ps.Clusters {
		t.Fatalf("coarse size %d != clusters %d", ps.CoarseSize, ps.Clusters)
	}
	// Compact (already run by the engine) retains the plan assignment and
	// cluster keys — the incremental Update path maps deltas through them.
	if st := art.Handle.ShardStats(); st.Assign == nil || len(st.ClusterKeys) != st.Shards {
		t.Fatalf("published artifact lost incremental scaffolding: assign=%v keys=%d shards=%d",
			st.Assign != nil, len(st.ClusterKeys), st.Shards)
	}
	if s := e.Stats(); s.SchwarzPreconds != 1 || s.ShardedBuilds != 1 {
		t.Fatalf("stats: schwarz_preconds=%d sharded_builds=%d", s.SchwarzPreconds, s.ShardedBuilds)
	}
}
