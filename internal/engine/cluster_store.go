package engine

import (
	"container/list"
	"sync"
	"sync/atomic"

	"repro/internal/chol"
)

// DefaultClusterCacheSize is the cluster-store capacity when
// Options.ClusterCacheSize is unset. Sharded builds produce tens of
// clusters each, so the cluster store runs much deeper than the
// whole-graph artifact store.
const DefaultClusterCacheSize = 1024

// clusterEntry is one cluster's cached artifacts: the sparsifier edge
// set as global endpoint pairs (shard.ClusterCache) and, once the pencil
// has been built, the cluster's Schwarz factor with its extended index
// set (precond.FactorCache). Both halves share one key — the cluster
// fingerprint — and one LRU slot.
type clusterEntry struct {
	key       string
	edges     [][2]int
	factor    *chol.Factor
	factorIdx []int
	// bytes is the entry's accounted footprint (see entryBytes), kept
	// current by upsert so the store can enforce a byte budget without
	// rescanning.
	bytes int64
}

// clusterEntryOverhead approximates the fixed per-entry cost outside the
// payload slices: the entry struct, its list element, and the map slot.
const clusterEntryOverhead = 160

// entryBytes estimates one entry's resident footprint: the key string,
// 16 bytes per edge pair, 8 per factor index, and the factor's own
// accounting. An estimate is all eviction needs — the budget bounds
// growth, it is not a malloc ledger.
func entryBytes(e *clusterEntry) int64 {
	b := int64(clusterEntryOverhead) + int64(len(e.key)) +
		16*int64(len(e.edges)) + 8*int64(len(e.factorIdx))
	if e.factor != nil {
		b += e.factor.MemBytes()
	}
	return b
}

// ClusterStore is a mutex-guarded LRU of per-cluster artifacts keyed by
// cluster fingerprint (shard.ClusterKey). It implements both
// shard.ClusterCache and precond.FactorCache, so one store serves the
// sparsifier-reuse and factor-reuse halves of an incremental rebuild; it
// sits alongside the whole-graph Store, and entries outlive the
// whole-graph artifacts they were built for (two graphs sharing an
// untouched cluster share its entry).
type ClusterStore struct {
	mu       sync.Mutex
	capacity int
	maxBytes int64      // 0 = no byte budget
	bytes    int64      // accounted footprint of resident entries
	ll       *list.List // front = most recently used; values are *clusterEntry
	items    map[string]*list.Element

	hits    atomic.Int64
	misses  atomic.Int64
	evicted atomic.Int64
}

// NewClusterStore creates a store holding at most capacity cluster
// entries (capacity ≤ 0 selects DefaultClusterCacheSize) and at most
// maxBytes of accounted artifact footprint (0 disables the byte budget).
// Entry count bounds metadata churn; the byte budget is what actually
// bounds memory — a Schwarz factor is thousands of times the size of an
// edge list, so a store full of factors hits the byte ceiling long
// before the entry ceiling.
func NewClusterStore(capacity int, maxBytes int64) *ClusterStore {
	if capacity <= 0 {
		capacity = DefaultClusterCacheSize
	}
	if maxBytes < 0 {
		maxBytes = 0
	}
	return &ClusterStore{
		capacity: capacity,
		maxBytes: maxBytes,
		ll:       list.New(),
		items:    make(map[string]*list.Element, capacity),
	}
}

// touch returns the entry for key marked most recently used, or nil.
// Counted lookups go through get.
func (s *ClusterStore) get(key string, count bool) *clusterEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[key]
	if !ok {
		if count {
			s.misses.Add(1)
		}
		return nil
	}
	if count {
		s.hits.Add(1)
	}
	s.ll.MoveToFront(el)
	return el.Value.(*clusterEntry)
}

// upsert applies fn to the (possibly fresh) entry for key under the lock
// and evicts from the tail when over capacity.
func (s *ClusterStore) upsert(key string, fn func(*clusterEntry)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[key]
	if !ok {
		el = s.ll.PushFront(&clusterEntry{key: key})
		s.items[key] = el
	} else {
		s.ll.MoveToFront(el)
	}
	e := el.Value.(*clusterEntry)
	fn(e)
	s.bytes += entryBytes(e) - e.bytes
	e.bytes = entryBytes(e)
	// Evict from the tail while either budget is exceeded. The byte loop
	// always keeps the most recent entry resident: a single entry larger
	// than the whole budget (a huge cluster's factor) still caches — the
	// budget bounds accumulation, not admission — and the store can never
	// evict the artifact it was just asked to keep.
	for s.ll.Len() > s.capacity ||
		(s.maxBytes > 0 && s.bytes > s.maxBytes && s.ll.Len() > 1) {
		tail := s.ll.Back()
		te := tail.Value.(*clusterEntry)
		s.ll.Remove(tail)
		delete(s.items, te.key)
		s.bytes -= te.bytes
		s.evicted.Add(1)
	}
}

// GetCluster implements shard.ClusterCache.
func (s *ClusterStore) GetCluster(key string) ([][2]int, bool) {
	if e := s.get(key, true); e != nil && e.edges != nil {
		return e.edges, true
	}
	return nil, false
}

// AddCluster implements shard.ClusterCache.
func (s *ClusterStore) AddCluster(key string, edges [][2]int) {
	s.upsert(key, func(e *clusterEntry) { e.edges = edges })
}

// GetFactor implements precond.FactorCache. Factor lookups ride the same
// entries but are not counted as cluster hits/misses — the headline
// reuse metric is the sparsifier-rebuild one.
func (s *ClusterStore) GetFactor(key string) (*chol.Factor, []int, bool) {
	if e := s.get(key, false); e != nil && e.factor != nil {
		return e.factor, e.factorIdx, true
	}
	return nil, nil, false
}

// AddFactor implements precond.FactorCache.
func (s *ClusterStore) AddFactor(key string, f *chol.Factor, idx []int) {
	s.upsert(key, func(e *clusterEntry) { e.factor, e.factorIdx = f, idx })
}

// Len returns the number of cached cluster entries.
func (s *ClusterStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ll.Len()
}

// Capacity returns the configured maximum entry count.
func (s *ClusterStore) Capacity() int { return s.capacity }

// Bytes returns the accounted footprint of resident entries.
func (s *ClusterStore) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// MaxBytes returns the configured byte budget (0 = unbounded).
func (s *ClusterStore) MaxBytes() int64 { return s.maxBytes }

// Hits and Misses report counted sparsifier-edge lookups; Evictions the
// entries dropped by LRU pressure.
func (s *ClusterStore) Hits() int64      { return s.hits.Load() }
func (s *ClusterStore) Misses() int64    { return s.misses.Load() }
func (s *ClusterStore) Evictions() int64 { return s.evicted.Load() }
