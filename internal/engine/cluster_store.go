package engine

import (
	"container/list"
	"sync"
	"sync/atomic"

	"repro/internal/chol"
)

// DefaultClusterCacheSize is the cluster-store capacity when
// Options.ClusterCacheSize is unset. Sharded builds produce tens of
// clusters each, so the cluster store runs much deeper than the
// whole-graph artifact store.
const DefaultClusterCacheSize = 1024

// clusterEntry is one cluster's cached artifacts: the sparsifier edge
// set as global endpoint pairs (shard.ClusterCache) and, once the pencil
// has been built, the cluster's Schwarz factor with its extended index
// set (precond.FactorCache). Both halves share one key — the cluster
// fingerprint — and one LRU slot.
type clusterEntry struct {
	key       string
	edges     [][2]int
	factor    *chol.Factor
	factorIdx []int
}

// ClusterStore is a mutex-guarded LRU of per-cluster artifacts keyed by
// cluster fingerprint (shard.ClusterKey). It implements both
// shard.ClusterCache and precond.FactorCache, so one store serves the
// sparsifier-reuse and factor-reuse halves of an incremental rebuild; it
// sits alongside the whole-graph Store, and entries outlive the
// whole-graph artifacts they were built for (two graphs sharing an
// untouched cluster share its entry).
type ClusterStore struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used; values are *clusterEntry
	items    map[string]*list.Element

	hits    atomic.Int64
	misses  atomic.Int64
	evicted atomic.Int64
}

// NewClusterStore creates a store holding at most capacity cluster
// entries (capacity ≤ 0 selects DefaultClusterCacheSize).
func NewClusterStore(capacity int) *ClusterStore {
	if capacity <= 0 {
		capacity = DefaultClusterCacheSize
	}
	return &ClusterStore{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element, capacity),
	}
}

// touch returns the entry for key marked most recently used, or nil.
// Counted lookups go through get.
func (s *ClusterStore) get(key string, count bool) *clusterEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[key]
	if !ok {
		if count {
			s.misses.Add(1)
		}
		return nil
	}
	if count {
		s.hits.Add(1)
	}
	s.ll.MoveToFront(el)
	return el.Value.(*clusterEntry)
}

// upsert applies fn to the (possibly fresh) entry for key under the lock
// and evicts from the tail when over capacity.
func (s *ClusterStore) upsert(key string, fn func(*clusterEntry)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[key]
	if !ok {
		el = s.ll.PushFront(&clusterEntry{key: key})
		s.items[key] = el
	} else {
		s.ll.MoveToFront(el)
	}
	fn(el.Value.(*clusterEntry))
	for s.ll.Len() > s.capacity {
		tail := s.ll.Back()
		s.ll.Remove(tail)
		delete(s.items, tail.Value.(*clusterEntry).key)
		s.evicted.Add(1)
	}
}

// GetCluster implements shard.ClusterCache.
func (s *ClusterStore) GetCluster(key string) ([][2]int, bool) {
	if e := s.get(key, true); e != nil && e.edges != nil {
		return e.edges, true
	}
	return nil, false
}

// AddCluster implements shard.ClusterCache.
func (s *ClusterStore) AddCluster(key string, edges [][2]int) {
	s.upsert(key, func(e *clusterEntry) { e.edges = edges })
}

// GetFactor implements precond.FactorCache. Factor lookups ride the same
// entries but are not counted as cluster hits/misses — the headline
// reuse metric is the sparsifier-rebuild one.
func (s *ClusterStore) GetFactor(key string) (*chol.Factor, []int, bool) {
	if e := s.get(key, false); e != nil && e.factor != nil {
		return e.factor, e.factorIdx, true
	}
	return nil, nil, false
}

// AddFactor implements precond.FactorCache.
func (s *ClusterStore) AddFactor(key string, f *chol.Factor, idx []int) {
	s.upsert(key, func(e *clusterEntry) { e.factor, e.factorIdx = f, idx })
}

// Len returns the number of cached cluster entries.
func (s *ClusterStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ll.Len()
}

// Capacity returns the configured maximum.
func (s *ClusterStore) Capacity() int { return s.capacity }

// Hits and Misses report counted sparsifier-edge lookups; Evictions the
// entries dropped by LRU pressure.
func (s *ClusterStore) Hits() int64      { return s.hits.Load() }
func (s *ClusterStore) Misses() int64    { return s.misses.Load() }
func (s *ClusterStore) Evictions() int64 { return s.evicted.Load() }
