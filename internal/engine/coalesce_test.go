package engine

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/gen"
)

// coalesceFixture builds one artifact on an engine with the given
// coalescing window and returns both plus a set of random right-hand
// sides.
func coalesceFixture(t *testing.T, opts Options, nrhs int) (*Engine, *Artifact, [][]float64) {
	t.Helper()
	e := New(opts)
	g := gen.Grid2D(20, 20, 1)
	art, _, err := e.Sparsify(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	bs := make([][]float64, nrhs)
	for k := range bs {
		bs[k] = make([]float64, g.N)
		for i := range bs[k] {
			bs[k][i] = rng.NormFloat64()
		}
	}
	return e, art, bs
}

func TestCoalescedSolvesShareOneBatch(t *testing.T) {
	const reqs = 6
	e, art, bs := coalesceFixture(t, Options{Workers: 4, CoalesceWindow: 50 * time.Millisecond}, reqs)

	start := make(chan struct{})
	var wg sync.WaitGroup
	results := make([]*SolveResult, reqs)
	errs := make([]error, reqs)
	for k := 0; k < reqs; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			<-start
			results[k], errs[k] = e.SolveArtifact(context.Background(), art, bs[k], 1e-6)
		}(k)
	}
	close(start)
	wg.Wait()

	for k := 0; k < reqs; k++ {
		if errs[k] != nil {
			t.Fatalf("request %d: %v", k, errs[k])
		}
		if !results[k].Converged || results[k].RelRes > 1e-6 {
			t.Fatalf("request %d did not converge to tol: %+v", k, results[k])
		}
	}
	st := e.Stats()
	if st.SolveBatches < 1 {
		t.Fatalf("no batch executed: %+v", st)
	}
	if st.SolvesCoalesced < 1 {
		t.Fatalf("no request joined a batch (window never caught two together): %+v", st)
	}
	if st.BatchP50 < 1 {
		t.Fatalf("batch_p50 = %g, want >= 1", st.BatchP50)
	}
}

func TestCoalescingDisabledByDefault(t *testing.T) {
	const reqs = 4
	e, art, bs := coalesceFixture(t, Options{Workers: 4}, reqs)
	var wg sync.WaitGroup
	for k := 0; k < reqs; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			if _, err := e.SolveArtifact(context.Background(), art, bs[k], 0); err != nil {
				t.Error(err)
			}
		}(k)
	}
	wg.Wait()
	st := e.Stats()
	if st.SolvesCoalesced != 0 || st.SolveBatches != 0 {
		t.Fatalf("coalescing engaged without a window: %+v", st)
	}
}

// TestCoalesceSizeCapSealsEarly opens a window far longer than the test
// budget and relies on the size cap to seal the batch: two concurrent
// requests against a cap of 2 must execute immediately instead of
// waiting out the window.
func TestCoalesceSizeCapSealsEarly(t *testing.T) {
	e, art, bs := coalesceFixture(t, Options{
		Workers:          4,
		CoalesceWindow:   10 * time.Second,
		CoalesceMaxBatch: 2,
	}, 2)

	begin := time.Now()
	var wg sync.WaitGroup
	for k := 0; k < 2; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			if _, err := e.SolveArtifact(context.Background(), art, bs[k], 0); err != nil {
				t.Error(err)
			}
		}(k)
	}
	wg.Wait()
	if elapsed := time.Since(begin); elapsed > 5*time.Second {
		t.Fatalf("batch waited %v: the size cap did not seal it early", elapsed)
	}
	st := e.Stats()
	if st.SolveBatches != 1 || st.BatchP50 != 2 {
		t.Fatalf("expected one batch of width 2: %+v", st)
	}
}

// TestCoalesceAbandonedBatchNeverRuns gives the lone request in a batch
// a deadline shorter than the window: it must return the context error,
// and the withdrawn batch must never execute.
func TestCoalesceAbandonedBatchNeverRuns(t *testing.T) {
	e, art, bs := coalesceFixture(t, Options{Workers: 4, CoalesceWindow: 200 * time.Millisecond}, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := e.SolveArtifact(ctx, art, bs[0], 0); err == nil {
		t.Fatal("expected a context error")
	}
	// Wait past the window: a buggy coalescer would fire the timer and run
	// the abandoned batch now.
	time.Sleep(300 * time.Millisecond)
	if st := e.Stats(); st.SolveBatches != 0 {
		t.Fatalf("abandoned batch executed anyway: %+v", st)
	}
}

func TestSolveBatchArtifactMatchesScalarSolves(t *testing.T) {
	const nrhs = 5
	e, art, bs := coalesceFixture(t, Options{Workers: 4}, nrhs)
	results, err := e.SolveBatchArtifact(context.Background(), art, bs, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != nrhs {
		t.Fatalf("got %d results for %d rhs", len(results), nrhs)
	}
	for k, r := range results {
		if !r.Converged || r.RelRes > 1e-8 {
			t.Fatalf("column %d: %+v", k, r)
		}
		single, err := e.SolveArtifact(context.Background(), art, bs[k], 1e-8)
		if err != nil {
			t.Fatal(err)
		}
		var num, den float64
		for i := range r.X {
			d := r.X[i] - single.X[i]
			num += d * d
			den += single.X[i] * single.X[i]
		}
		if num > 1e-12*den {
			t.Fatalf("column %d: block and scalar solutions diverge", k)
		}
	}
	st := e.Stats()
	if st.SolveBatches != 1 {
		t.Fatalf("explicit batch not counted: %+v", st)
	}
	if st.SolvesCoalesced != 0 {
		t.Fatalf("explicit batch must not count as coalesced: %+v", st)
	}
}

func TestSolveBatchArtifactRejectsMisSizedColumn(t *testing.T) {
	e, art, bs := coalesceFixture(t, Options{Workers: 2}, 2)
	bs[1] = bs[1][:len(bs[1])-1]
	if _, err := e.SolveBatchArtifact(context.Background(), art, bs, 0); err == nil {
		t.Fatal("expected a dimension error")
	}
}
