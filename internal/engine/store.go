package engine

import (
	"container/list"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
)

// Artifact is one cached build: a core.Sparsifier handle — the same
// long-lived unit the public trsparse.New API hands out — plus its
// fingerprint identity and build telemetry. The handle carries the
// sparsifier subgraph and the prepared pencil (shift, L_G, L_P, Cholesky
// factorization), so a cache hit makes Solve/Fiedler/CondNumber requests
// pure factorization reuse with no sparsification and no refactorization.
// There is deliberately no parallel artifact representation: what the
// engine caches and what the library API returns are the same object.
//
// Artifacts are immutable after construction and safe to share across
// goroutines.
type Artifact struct {
	Fingerprint Fingerprint
	Key         string
	Handle      *core.Sparsifier
	BuiltAt     time.Time
	BuildTime   time.Duration
}

// SparsifierGraph returns the cached handle's sparsifier subgraph.
func (a *Artifact) SparsifierGraph() *graph.Graph { return a.Handle.SparsifierGraph() }

// Pencil returns the cached handle's prepared pencil.
func (a *Artifact) Pencil() *core.Pencil { return a.Handle.Pencil() }

// Store is a mutex-guarded LRU cache of Artifacts keyed by graph
// fingerprint. Capacity bounds resident factorizations (the dominant
// memory cost); least-recently-used artifacts are evicted on insert.
type Store struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used; values are *Artifact
	items    map[string]*list.Element
	evicted  int64
}

// NewStore creates a store holding at most capacity artifacts
// (capacity ≤ 0 selects DefaultCacheSize).
func NewStore(capacity int) *Store {
	if capacity <= 0 {
		capacity = DefaultCacheSize
	}
	return &Store{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element, capacity),
	}
}

// Get returns the artifact for key, marking it most recently used.
func (s *Store) Get(key string) (*Artifact, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[key]
	if !ok {
		return nil, false
	}
	s.ll.MoveToFront(el)
	return el.Value.(*Artifact), true
}

// Add inserts (or refreshes) an artifact, evicting from the LRU tail when
// over capacity.
func (s *Store) Add(a *Artifact) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[a.Key]; ok {
		el.Value = a
		s.ll.MoveToFront(el)
		return
	}
	s.items[a.Key] = s.ll.PushFront(a)
	for s.ll.Len() > s.capacity {
		tail := s.ll.Back()
		s.ll.Remove(tail)
		delete(s.items, tail.Value.(*Artifact).Key)
		s.evicted++
	}
}

// Remove drops the artifact for key if present.
func (s *Store) Remove(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[key]; ok {
		s.ll.Remove(el)
		delete(s.items, key)
	}
}

// Len returns the number of cached artifacts.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ll.Len()
}

// Capacity returns the configured maximum.
func (s *Store) Capacity() int { return s.capacity }

// Evictions returns the number of artifacts dropped by LRU pressure.
func (s *Store) Evictions() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.evicted
}

// Keys returns the cached keys from most to least recently used.
func (s *Store) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, s.ll.Len())
	for el := s.ll.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*Artifact).Key)
	}
	return out
}
