package engine

import (
	"fmt"
	"testing"
)

func testArtifact(i int) *Artifact {
	fp := Fingerprint{N: i, M: i, Hash: uint64(i)}
	return &Artifact{Fingerprint: fp, Key: fp.Key()}
}

func TestStoreLRUEviction(t *testing.T) {
	s := NewStore(2)
	a1, a2, a3 := testArtifact(1), testArtifact(2), testArtifact(3)
	s.Add(a1)
	s.Add(a2)
	if s.Len() != 2 {
		t.Fatalf("len = %d, want 2", s.Len())
	}
	s.Add(a3) // evicts a1 (least recently used)
	if _, ok := s.Get(a1.Key); ok {
		t.Fatal("a1 survived eviction")
	}
	if _, ok := s.Get(a2.Key); !ok {
		t.Fatal("a2 was evicted")
	}
	if _, ok := s.Get(a3.Key); !ok {
		t.Fatal("a3 missing")
	}
	if s.Evictions() != 1 {
		t.Fatalf("evictions = %d, want 1", s.Evictions())
	}
}

func TestStoreGetRefreshesRecency(t *testing.T) {
	s := NewStore(2)
	a1, a2, a3 := testArtifact(1), testArtifact(2), testArtifact(3)
	s.Add(a1)
	s.Add(a2)
	s.Get(a1.Key) // a1 becomes most recent; a2 is now the LRU tail
	s.Add(a3)
	if _, ok := s.Get(a1.Key); !ok {
		t.Fatal("recently-used a1 was evicted")
	}
	if _, ok := s.Get(a2.Key); ok {
		t.Fatal("a2 survived eviction despite being LRU")
	}
}

func TestStoreReAddMovesToFront(t *testing.T) {
	s := NewStore(2)
	a1, a2 := testArtifact(1), testArtifact(2)
	s.Add(a1)
	s.Add(a2)
	s.Add(a1) // refresh, no growth
	if s.Len() != 2 {
		t.Fatalf("re-add grew the store to %d", s.Len())
	}
	if got := s.Keys(); got[0] != a1.Key {
		t.Fatalf("front = %s, want %s", got[0], a1.Key)
	}
	s.Add(testArtifact(3)) // must evict a2, not a1
	if _, ok := s.Get(a2.Key); ok {
		t.Fatal("a2 survived eviction")
	}
}

func TestStoreRemove(t *testing.T) {
	s := NewStore(4)
	a := testArtifact(1)
	s.Add(a)
	s.Remove(a.Key)
	if _, ok := s.Get(a.Key); ok {
		t.Fatal("removed artifact still present")
	}
	s.Remove("missing") // no-op
	if s.Len() != 0 {
		t.Fatalf("len = %d, want 0", s.Len())
	}
}

func TestStoreConcurrentAccess(t *testing.T) {
	s := NewStore(8)
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				a := testArtifact(w*1000 + i%16)
				s.Add(a)
				s.Get(a.Key)
				if i%10 == 0 {
					s.Keys()
					s.Len()
				}
			}
		}(w)
	}
	for w := 0; w < 4; w++ {
		<-done
	}
	if s.Len() > 8 {
		t.Fatalf("store over capacity: %d", s.Len())
	}
	_ = fmt.Sprintf("%d evictions", s.Evictions())
}
