// Package tree builds and queries spanning trees of weighted graphs: the
// maximum-weight spanning tree, and the maximum effective-weight spanning
// tree (MEWST) of feGRASS [13] that Algorithm 2 uses as its low-stretch
// initial subgraph. A rooted representation (parent, depth, root
// resistance) supports batch effective-resistance queries through the
// offline LCA algorithm and the tree-path walks the truncated
// trace-reduction needs.
package tree

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/dsu"
	"repro/internal/graph"
	"repro/internal/lca"
)

// Tree is a rooted spanning tree of G.
type Tree struct {
	G       *graph.Graph
	EdgeIdx []int  // indices into G.Edges forming the tree (n−1 edges)
	InTree  []bool // per-G-edge membership flag

	Root       int
	Parent     []int     // Parent[Root] = −1
	ParentEdge []int     // G edge index to parent; −1 at the root
	Depth      []int     // hops from root
	RootRes    []float64 // Σ 1/w along the root path
}

// MaxWeight returns the maximum-weight spanning tree (Kruskal on
// descending weight). The graph must be connected.
func MaxWeight(g *graph.Graph) (*Tree, error) {
	key := make([]float64, g.M())
	for i, e := range g.Edges {
		key[i] = e.W
	}
	return fromKey(g, key)
}

// MEWST returns the maximum effective-weight spanning tree in the spirit of
// feGRASS [13]. The effective weight combines the edge weight with the
// weighted degrees of its endpoints so that edges in well-connected regions
// win ties:
//
//	effw(u,v) = w_uv · log(1 + max(dw(u), dw(v)))
//
// where dw is the weighted vertex degree. (The exact feGRASS formula is not
// reproduced verbatim; this variant preserves its intent — prefer heavy
// edges incident to heavy regions — and is documented in DESIGN.md §4.)
func MEWST(g *graph.Graph) (*Tree, error) {
	dw := make([]float64, g.N)
	for u := 0; u < g.N; u++ {
		dw[u] = g.WeightedDegree(u)
	}
	key := make([]float64, g.M())
	for i, e := range g.Edges {
		m := dw[e.U]
		if dw[e.V] > m {
			m = dw[e.V]
		}
		key[i] = e.W * math.Log1p(m)
	}
	return fromKey(g, key)
}

// fromKey runs Kruskal picking edges by descending key and roots the tree.
func fromKey(g *graph.Graph, key []float64) (*Tree, error) {
	idx := make([]int, g.M())
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if key[idx[a]] != key[idx[b]] {
			return key[idx[a]] > key[idx[b]]
		}
		return idx[a] < idx[b] // deterministic tie-break
	})
	d := dsu.New(g.N)
	treeEdges := make([]int, 0, g.N-1)
	inTree := make([]bool, g.M())
	for _, e := range idx {
		ed := g.Edges[e]
		if d.Union(ed.U, ed.V) {
			treeEdges = append(treeEdges, e)
			inTree[e] = true
			if len(treeEdges) == g.N-1 {
				break
			}
		}
	}
	if len(treeEdges) != g.N-1 && g.N > 0 {
		return nil, fmt.Errorf("tree: graph is disconnected (%d components)", d.Count())
	}
	t := &Tree{G: g, EdgeIdx: treeEdges, InTree: inTree}
	t.root(0)
	return t, nil
}

// root (re)builds the rooted arrays by BFS over tree edges from the given
// root vertex.
func (t *Tree) root(root int) {
	g := t.G
	n := g.N
	t.Root = root
	t.Parent = make([]int, n)
	t.ParentEdge = make([]int, n)
	t.Depth = make([]int, n)
	t.RootRes = make([]float64, n)
	for i := range t.Parent {
		t.Parent[i] = -2 // unvisited sentinel
		t.ParentEdge[i] = -1
	}
	t.Parent[root] = -1
	queue := make([]int, 0, n)
	queue = append(queue, root)
	for qi := 0; qi < len(queue); qi++ {
		u := queue[qi]
		for p := g.AdjStart[u]; p < g.AdjStart[u+1]; p++ {
			e := g.AdjEdge[p]
			if !t.InTree[e] {
				continue
			}
			v := g.AdjTarget[p]
			if t.Parent[v] != -2 {
				continue
			}
			t.Parent[v] = u
			t.ParentEdge[v] = e
			t.Depth[v] = t.Depth[u] + 1
			t.RootRes[v] = t.RootRes[u] + 1/g.Edges[e].W
			queue = append(queue, v)
		}
	}
}

// LCAs answers lowest-common-ancestor queries for the vertex pairs, using
// the offline Gabow–Tarjan algorithm (one linear pass for all queries).
func (t *Tree) LCAs(pairs [][2]int) []int {
	qs := make([]lca.Query, len(pairs))
	for i, pq := range pairs {
		qs[i] = lca.Query{U: pq[0], V: pq[1]}
	}
	return lca.Offline(lca.Tree{Parent: t.Parent, Root: t.Root}, qs)
}

// Resistance returns R_T(p,q) given the LCA of p and q:
// RootRes[p] + RootRes[q] − 2·RootRes[lca].
func (t *Tree) Resistance(p, q, lcaNode int) float64 {
	return t.RootRes[p] + t.RootRes[q] - 2*t.RootRes[lcaNode]
}

// Resistances batch-computes tree effective resistances for vertex pairs.
func (t *Tree) Resistances(pairs [][2]int) []float64 {
	ls := t.LCAs(pairs)
	rs := make([]float64, len(pairs))
	for i, pq := range pairs {
		rs[i] = t.Resistance(pq[0], pq[1], ls[i])
	}
	return rs
}

// PathUp walks from v toward the root for at most steps hops (or until
// stop is reached) and calls fn(node, parentEdge) for every edge crossed.
// It returns the last node reached.
func (t *Tree) PathUp(v, stop, steps int, fn func(child, edgeIdx int)) int {
	for s := 0; s < steps && v != stop && t.Parent[v] >= 0; s++ {
		fn(v, t.ParentEdge[v])
		v = t.Parent[v]
	}
	return v
}

// PathEdges returns the G-edge indices on the unique tree path p→q, given
// their LCA. The edges are ordered from p up to the LCA, then from the LCA
// down to q.
func (t *Tree) PathEdges(p, q, lcaNode int) []int {
	var up []int
	for v := p; v != lcaNode; v = t.Parent[v] {
		up = append(up, t.ParentEdge[v])
	}
	var down []int
	for v := q; v != lcaNode; v = t.Parent[v] {
		down = append(down, t.ParentEdge[v])
	}
	for i, j := 0, len(down)-1; i < j; i, j = i+1, j-1 {
		down[i], down[j] = down[j], down[i]
	}
	return append(up, down...)
}

// OffTreeEdges returns the indices of G edges not in the tree.
func (t *Tree) OffTreeEdges() []int {
	out := make([]int, 0, t.G.M()-len(t.EdgeIdx))
	for i := range t.G.Edges {
		if !t.InTree[i] {
			out = append(out, i)
		}
	}
	return out
}

// TotalStretch returns Σ_e w_e · R_T(e) over off-tree edges — the classic
// quality measure of a low-stretch spanning tree (lower is better).
func (t *Tree) TotalStretch() float64 {
	off := t.OffTreeEdges()
	pairs := make([][2]int, len(off))
	for i, e := range off {
		pairs[i] = [2]int{t.G.Edges[e].U, t.G.Edges[e].V}
	}
	rs := t.Resistances(pairs)
	var s float64
	for i, e := range off {
		s += t.G.Edges[e].W * rs[i]
	}
	return s
}
