package tree

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dense"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/lap"
)

func TestMaxWeightPicksHeavyEdges(t *testing.T) {
	// Triangle with weights 1, 2, 3: the MaxW tree keeps the 2 and 3 edges.
	g := graph.MustNew(3, []graph.Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 2}, {U: 0, V: 2, W: 3},
	})
	tr, err := MaxWeight(g)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, e := range tr.EdgeIdx {
		total += g.Edges[e].W
	}
	if total != 5 {
		t.Errorf("tree weight %g, want 5", total)
	}
}

func TestTreeHasNMinus1Edges(t *testing.T) {
	g := gen.RandomConnected(50, 80, 1)
	tr, err := MEWST(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.EdgeIdx) != g.N-1 {
		t.Fatalf("tree has %d edges, want %d", len(tr.EdgeIdx), g.N-1)
	}
	count := 0
	for _, in := range tr.InTree {
		if in {
			count++
		}
	}
	if count != g.N-1 {
		t.Errorf("InTree flags %d edges", count)
	}
}

func TestDisconnectedRejected(t *testing.T) {
	g := graph.MustNew(4, []graph.Edge{{U: 0, V: 1, W: 1}, {U: 2, V: 3, W: 1}})
	if _, err := MaxWeight(g); err == nil {
		t.Fatal("expected error for disconnected graph")
	}
}

func TestRootedStructureConsistent(t *testing.T) {
	g := gen.RandomConnected(60, 100, 2)
	tr, err := MEWST(g)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Parent[tr.Root] != -1 {
		t.Error("root has a parent")
	}
	for v := 0; v < g.N; v++ {
		if v == tr.Root {
			continue
		}
		p := tr.Parent[v]
		if p < 0 {
			t.Fatalf("vertex %d unrooted", v)
		}
		if tr.Depth[v] != tr.Depth[p]+1 {
			t.Fatalf("depth[%d] inconsistent", v)
		}
		e := g.Edges[tr.ParentEdge[v]]
		if !((e.U == v && e.V == p) || (e.V == v && e.U == p)) {
			t.Fatalf("ParentEdge[%d] does not connect to parent", v)
		}
		wantRes := tr.RootRes[p] + 1/e.W
		if math.Abs(tr.RootRes[v]-wantRes) > 1e-12 {
			t.Fatalf("RootRes[%d] inconsistent", v)
		}
	}
}

func TestResistanceOnPathGraph(t *testing.T) {
	// Path with weights w_i: R(0, k) = Σ 1/w_i.
	g := graph.MustNew(5, []graph.Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 2}, {U: 2, V: 3, W: 4}, {U: 3, V: 4, W: 8},
	})
	tr, err := MaxWeight(g)
	if err != nil {
		t.Fatal(err)
	}
	rs := tr.Resistances([][2]int{{0, 4}, {1, 3}, {2, 2}})
	want := []float64{1 + 0.5 + 0.25 + 0.125, 0.5 + 0.25, 0}
	for i := range want {
		if math.Abs(rs[i]-want[i]) > 1e-12 {
			t.Errorf("R[%d] = %g, want %g", i, rs[i], want[i])
		}
	}
}

func TestResistanceMatchesDenseLaplacian(t *testing.T) {
	// On the tree itself, R_T(p,q) = e_pqᵀ L_T⁺ e_pq. Use a tiny shift and
	// dense solves as the oracle.
	g := gen.RandomConnected(20, 0, 3) // a tree already
	tr, err := MaxWeight(g)
	if err != nil {
		t.Fatal(err)
	}
	shift := make([]float64, g.N)
	for i := range shift {
		shift[i] = 1e-9
	}
	ld := dense.FromRows(lap.Laplacian(g, shift).Dense())
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		p, q := rng.Intn(g.N), rng.Intn(g.N)
		if p == q {
			continue
		}
		e := make([]float64, g.N)
		e[p], e[q] = 1, -1
		x, err := dense.SolveSPD(ld, e)
		if err != nil {
			t.Fatal(err)
		}
		want := x[p] - x[q]
		got := tr.Resistances([][2]int{{p, q}})[0]
		if math.Abs(got-want) > 1e-5*(1+want) {
			t.Errorf("R(%d,%d) = %g, dense %g", p, q, got, want)
		}
	}
}

func TestPathEdgesConnectEndpoints(t *testing.T) {
	g := gen.RandomConnected(40, 60, 5)
	tr, err := MEWST(g)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 25; trial++ {
		p, q := rng.Intn(g.N), rng.Intn(g.N)
		l := tr.LCAs([][2]int{{p, q}})[0]
		path := tr.PathEdges(p, q, l)
		// Walk the path from p; it must end at q using each edge once.
		cur := p
		for _, e := range path {
			ed := g.Edges[e]
			switch cur {
			case ed.U:
				cur = ed.V
			case ed.V:
				cur = ed.U
			default:
				t.Fatalf("path edge %d does not touch current vertex %d", e, cur)
			}
		}
		if cur != q {
			t.Fatalf("path from %d ends at %d, want %d", p, cur, q)
		}
		// Resistance along the path equals the LCA-based resistance.
		var r float64
		for _, e := range path {
			r += 1 / g.Edges[e].W
		}
		if want := tr.Resistance(p, q, l); math.Abs(r-want) > 1e-12*(1+want) {
			t.Fatalf("path resistance %g ≠ %g", r, want)
		}
	}
}

func TestMEWSTStretchReasonable(t *testing.T) {
	// MEWST should produce total stretch no worse than a few times the
	// max-weight tree on a weighted grid (it is designed to be lower).
	g := gen.Grid2D(25, 25, 7)
	tw, err := MaxWeight(g)
	if err != nil {
		t.Fatal(err)
	}
	te, err := MEWST(g)
	if err != nil {
		t.Fatal(err)
	}
	sw, se := tw.TotalStretch(), te.TotalStretch()
	if se > 3*sw {
		t.Errorf("MEWST stretch %g ≫ MaxWeight stretch %g", se, sw)
	}
}

func TestOffTreeEdgesComplement(t *testing.T) {
	g := gen.RandomConnected(30, 45, 8)
	tr, err := MEWST(g)
	if err != nil {
		t.Fatal(err)
	}
	off := tr.OffTreeEdges()
	if len(off)+len(tr.EdgeIdx) != g.M() {
		t.Fatalf("off-tree %d + tree %d ≠ m %d", len(off), len(tr.EdgeIdx), g.M())
	}
	for _, e := range off {
		if tr.InTree[e] {
			t.Fatalf("edge %d flagged in-tree but listed off-tree", e)
		}
	}
}

func TestPathUpStopsAtRootOrStop(t *testing.T) {
	g := gen.Path(6) // path graph: tree is the path itself
	tr, err := MaxWeight(g)
	if err != nil {
		t.Fatal(err)
	}
	// Walk up 100 steps from a leaf: must stop at the root without panic.
	steps := 0
	end := tr.PathUp(5, -1, 100, func(child, e int) { steps++ })
	if end != tr.Root {
		t.Errorf("PathUp ended at %d, want root %d", end, tr.Root)
	}
	if steps != tr.Depth[5] {
		t.Errorf("PathUp crossed %d edges, want %d", steps, tr.Depth[5])
	}
}

func TestTriangleInequalityQuick(t *testing.T) {
	// Tree resistance is a metric: R(a,c) ≤ R(a,b) + R(b,c).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(30)
		g := gen.RandomConnected(n, n, seed)
		tr, err := MEWST(g)
		if err != nil {
			return false
		}
		for trial := 0; trial < 10; trial++ {
			a, b, c := rng.Intn(n), rng.Intn(n), rng.Intn(n)
			rs := tr.Resistances([][2]int{{a, c}, {a, b}, {b, c}})
			if rs[0] > rs[1]+rs[2]+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
