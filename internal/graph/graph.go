// Package graph provides the weighted undirected graph representation used
// throughout the sparsifier stack: an edge list plus CSR-style adjacency
// arrays, breadth-first search with a layer cap (the paper's β-layer
// neighborhoods), connectivity checks, and degree queries.
package graph

import (
	"fmt"
	"math"
	"sort"
)

// Edge is one weighted undirected edge. U < V is not required but builders
// normalize self-loop-free, deduplicated edges.
type Edge struct {
	U, V int
	W    float64
}

// Graph is a weighted undirected graph over vertices 0..N-1.
//
// Edges holds each undirected edge once. The adjacency structure indexes
// both directions: for vertex u, the incident half-edges are
// AdjTarget[AdjStart[u]:AdjStart[u+1]] with parallel AdjEdge giving the
// index into Edges.
type Graph struct {
	N     int
	Edges []Edge

	AdjStart  []int // length N+1
	AdjTarget []int // length 2*len(Edges)
	AdjEdge   []int // length 2*len(Edges); index into Edges
}

// dedupSortThreshold is the input size above which New switches from the
// map-based duplicate merge to the sort-based merge. Per-edge map inserts
// are an allocation hot spot when building million-edge graphs — and the
// sharded pipeline rebuilds a local graph per cluster, so every shard
// build used to pay it; sorting a flat slice touches no per-edge heap
// state. Below the threshold the map wins on constant factors and
// preserves first-occurrence edge order, which tests rely on.
const dedupSortThreshold = 4096

// New builds a graph from an edge list. Self loops are rejected; duplicate
// edges are merged by summing weights; non-positive weights are rejected.
// For inputs above dedupSortThreshold edges, the merged edge list is in
// sorted (U, V) order rather than first-occurrence order; callers must
// not rely on either ordering.
func New(n int, edges []Edge) (*Graph, error) {
	norm, err := normalize(n, edges)
	if err != nil {
		return nil, err
	}
	var merged []Edge
	if len(norm) > dedupSortThreshold {
		merged = mergeSorted(norm)
	} else {
		merged = mergeMap(norm)
	}
	g := &Graph{N: n, Edges: merged}
	g.buildAdjacency()
	return g, nil
}

// normalize validates every edge and returns a copy with U ≤ V.
func normalize(n int, edges []Edge) ([]Edge, error) {
	norm := make([]Edge, len(edges))
	for i, e := range edges {
		if e.U < 0 || e.U >= n || e.V < 0 || e.V >= n {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range for n=%d", e.U, e.V, n)
		}
		if e.U == e.V {
			return nil, fmt.Errorf("graph: self loop at vertex %d", e.U)
		}
		if e.W <= 0 || math.IsNaN(e.W) || math.IsInf(e.W, 0) {
			return nil, fmt.Errorf("graph: edge (%d,%d) has invalid weight %g", e.U, e.V, e.W)
		}
		if e.U > e.V {
			e.U, e.V = e.V, e.U
		}
		norm[i] = e
	}
	return norm, nil
}

// mergeMap deduplicates normalized edges with a hash map, preserving
// first-occurrence order.
func mergeMap(norm []Edge) []Edge {
	seen := make(map[[2]int]int, len(norm))
	merged := norm[:0]
	for _, e := range norm {
		key := [2]int{e.U, e.V}
		if idx, ok := seen[key]; ok {
			merged[idx].W += e.W
			continue
		}
		seen[key] = len(merged)
		merged = append(merged, e)
	}
	return merged
}

// mergeSorted deduplicates normalized edges by sorting on (U, V) and
// summing adjacent runs in place — no per-edge map allocations.
func mergeSorted(norm []Edge) []Edge {
	sort.Slice(norm, func(a, b int) bool {
		if norm[a].U != norm[b].U {
			return norm[a].U < norm[b].U
		}
		return norm[a].V < norm[b].V
	})
	merged := norm[:0]
	for _, e := range norm {
		if k := len(merged); k > 0 && merged[k-1].U == e.U && merged[k-1].V == e.V {
			merged[k-1].W += e.W
			continue
		}
		merged = append(merged, e)
	}
	return merged
}

// FromNormalized builds a graph from edges that are already valid,
// normalized (U < V), and free of duplicates — no validation, no merge,
// and the edge order is preserved exactly, so parallel arrays indexed by
// edge position stay aligned. Callers own the contract; the sharded
// pipeline uses it for cluster subgraphs whose edges are copied from an
// already-validated parent graph.
func FromNormalized(n int, edges []Edge) *Graph {
	g := &Graph{N: n, Edges: edges}
	g.buildAdjacency()
	return g
}

// MustNew is New but panics on error; for tests and generators whose inputs
// are valid by construction.
func MustNew(n int, edges []Edge) *Graph {
	g, err := New(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

func (g *Graph) buildAdjacency() {
	g.AdjStart = make([]int, g.N+1)
	for _, e := range g.Edges {
		g.AdjStart[e.U+1]++
		g.AdjStart[e.V+1]++
	}
	for i := 0; i < g.N; i++ {
		g.AdjStart[i+1] += g.AdjStart[i]
	}
	g.AdjTarget = make([]int, 2*len(g.Edges))
	g.AdjEdge = make([]int, 2*len(g.Edges))
	next := append([]int(nil), g.AdjStart[:g.N]...)
	for idx, e := range g.Edges {
		p := next[e.U]
		next[e.U]++
		g.AdjTarget[p] = e.V
		g.AdjEdge[p] = idx
		p = next[e.V]
		next[e.V]++
		g.AdjTarget[p] = e.U
		g.AdjEdge[p] = idx
	}
}

// M returns the number of undirected edges.
func (g *Graph) M() int { return len(g.Edges) }

// Degree returns the number of edges incident to u.
func (g *Graph) Degree(u int) int { return g.AdjStart[u+1] - g.AdjStart[u] }

// WeightedDegree returns the sum of weights of edges incident to u.
func (g *Graph) WeightedDegree(u int) float64 {
	var s float64
	for p := g.AdjStart[u]; p < g.AdjStart[u+1]; p++ {
		s += g.Edges[g.AdjEdge[p]].W
	}
	return s
}

// EdgeBetween resolves an endpoint pair to its edge index via the
// adjacency of u — O(deg u), no allocation; callers resolving many pairs
// against small neighborhoods beat building an O(M) edge map.
func (g *Graph) EdgeBetween(u, v int) (int, bool) {
	for p := g.AdjStart[u]; p < g.AdjStart[u+1]; p++ {
		if g.AdjTarget[p] == v {
			return g.AdjEdge[p], true
		}
	}
	return 0, false
}

// Neighbors calls fn(v, edgeIndex, w) for every half-edge (u, v).
func (g *Graph) Neighbors(u int, fn func(v, edgeIdx int, w float64)) {
	for p := g.AdjStart[u]; p < g.AdjStart[u+1]; p++ {
		e := g.AdjEdge[p]
		fn(g.AdjTarget[p], e, g.Edges[e].W)
	}
}

// Connected reports whether the graph is connected (true for N ≤ 1).
func (g *Graph) Connected() bool {
	if g.N <= 1 {
		return true
	}
	comp := g.Components()
	for _, c := range comp {
		if c != 0 {
			return false
		}
	}
	return true
}

// Components labels vertices with component ids (0-based, in discovery
// order) and returns the label slice.
func (g *Graph) Components() []int {
	comp := make([]int, g.N)
	for i := range comp {
		comp[i] = -1
	}
	queue := make([]int, 0, g.N)
	id := 0
	for s := 0; s < g.N; s++ {
		if comp[s] != -1 {
			continue
		}
		comp[s] = id
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for p := g.AdjStart[u]; p < g.AdjStart[u+1]; p++ {
				v := g.AdjTarget[p]
				if comp[v] == -1 {
					comp[v] = id
					queue = append(queue, v)
				}
			}
		}
		id++
	}
	return comp
}

// BFSVisitor receives vertices as a layered BFS discovers them.
// pred is the BFS predecessor (-1 for the source), layer the hop distance.
type BFSVisitor func(v, pred, layer int)

// BFSLayers runs breadth-first search from src, visiting vertices up to and
// including maxLayer hops away (maxLayer < 0 means unbounded). The visitor
// is called for every discovered vertex including the source.
//
// scratch must either be nil or a slice of length N primed to -1; when
// non-nil it is used as the visited-marker array and the caller must reset
// the touched entries (returned) back to -1 for reuse. This lets the
// sparsifier run millions of tiny BFS probes without reallocating.
func (g *Graph) BFSLayers(src, maxLayer int, scratch []int, visit BFSVisitor) (touched []int) {
	var dist []int
	if scratch != nil {
		dist = scratch
	} else {
		dist = make([]int, g.N)
		for i := range dist {
			dist[i] = -1
		}
	}
	dist[src] = 0
	touched = append(touched, src)
	visit(src, -1, 0)
	frontier := []int{src}
	for layer := 0; len(frontier) > 0 && (maxLayer < 0 || layer < maxLayer); layer++ {
		var next []int
		for _, u := range frontier {
			for p := g.AdjStart[u]; p < g.AdjStart[u+1]; p++ {
				v := g.AdjTarget[p]
				if dist[v] != -1 {
					continue
				}
				dist[v] = layer + 1
				touched = append(touched, v)
				visit(v, u, layer+1)
				next = append(next, v)
			}
		}
		frontier = next
	}
	return touched
}

// TotalWeight returns the sum of all edge weights.
func (g *Graph) TotalWeight() float64 {
	var s float64
	for _, e := range g.Edges {
		s += e.W
	}
	return s
}

// Subgraph returns a new graph over the same vertex set containing only the
// edges whose indices are listed in edgeIdx.
func (g *Graph) Subgraph(edgeIdx []int) *Graph {
	edges := make([]Edge, 0, len(edgeIdx))
	for _, idx := range edgeIdx {
		edges = append(edges, g.Edges[idx])
	}
	return MustNew(g.N, edges)
}
