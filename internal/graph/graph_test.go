package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func square() *Graph {
	// 0-1
	// |  |
	// 3-2   plus diagonal 0-2
	return MustNew(4, []Edge{
		{0, 1, 1}, {1, 2, 2}, {2, 3, 3}, {3, 0, 4}, {0, 2, 5},
	})
}

func TestNewRejectsBadEdges(t *testing.T) {
	if _, err := New(2, []Edge{{0, 0, 1}}); err == nil {
		t.Error("self loop accepted")
	}
	if _, err := New(2, []Edge{{0, 2, 1}}); err == nil {
		t.Error("out-of-range vertex accepted")
	}
	if _, err := New(2, []Edge{{0, 1, -1}}); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := New(2, []Edge{{0, 1, 0}}); err == nil {
		t.Error("zero weight accepted")
	}
}

func TestDuplicateEdgesMerged(t *testing.T) {
	g := MustNew(2, []Edge{{0, 1, 1}, {1, 0, 2.5}})
	if g.M() != 1 {
		t.Fatalf("M = %d, want 1 (duplicates merged)", g.M())
	}
	if g.Edges[0].W != 3.5 {
		t.Errorf("merged weight = %g, want 3.5", g.Edges[0].W)
	}
}

func TestDegreeAndWeightedDegree(t *testing.T) {
	g := square()
	if g.Degree(0) != 3 {
		t.Errorf("Degree(0) = %d, want 3", g.Degree(0))
	}
	if g.Degree(1) != 2 {
		t.Errorf("Degree(1) = %d, want 2", g.Degree(1))
	}
	if wd := g.WeightedDegree(0); wd != 1+4+5 {
		t.Errorf("WeightedDegree(0) = %g, want 10", wd)
	}
}

func TestNeighborsSeesEachIncidentEdgeOnce(t *testing.T) {
	g := square()
	count := 0
	sum := 0.0
	g.Neighbors(2, func(v, e int, w float64) {
		count++
		sum += w
	})
	if count != 3 {
		t.Errorf("vertex 2 has %d half-edges, want 3", count)
	}
	if sum != 2+3+5 {
		t.Errorf("incident weight sum = %g, want 10", sum)
	}
}

func TestConnectedAndComponents(t *testing.T) {
	g := square()
	if !g.Connected() {
		t.Error("square should be connected")
	}
	h := MustNew(4, []Edge{{0, 1, 1}, {2, 3, 1}})
	if h.Connected() {
		t.Error("two components reported connected")
	}
	comp := h.Components()
	if comp[0] != comp[1] || comp[2] != comp[3] || comp[0] == comp[2] {
		t.Errorf("components = %v", comp)
	}
}

func TestBFSLayersRespectsCap(t *testing.T) {
	// Path 0-1-2-3-4.
	g := MustNew(5, []Edge{{0, 1, 1}, {1, 2, 1}, {2, 3, 1}, {3, 4, 1}})
	var visited []int
	layers := map[int]int{}
	g.BFSLayers(0, 2, nil, func(v, pred, layer int) {
		visited = append(visited, v)
		layers[v] = layer
	})
	if len(visited) != 3 {
		t.Fatalf("visited %v, want exactly {0,1,2}", visited)
	}
	if layers[2] != 2 || layers[1] != 1 || layers[0] != 0 {
		t.Errorf("layers = %v", layers)
	}
}

func TestBFSLayersScratchReuse(t *testing.T) {
	g := square()
	scratch := make([]int, g.N)
	for i := range scratch {
		scratch[i] = -1
	}
	touched := g.BFSLayers(0, 1, scratch, func(v, pred, layer int) {})
	// Reset and run again from a different source; must not see stale marks.
	for _, v := range touched {
		scratch[v] = -1
	}
	var count int
	g.BFSLayers(3, 1, scratch, func(v, pred, layer int) { count++ })
	if count != 3 { // 3 plus neighbors 2 and 0
		t.Errorf("second BFS visited %d vertices, want 3", count)
	}
}

func TestBFSPredecessors(t *testing.T) {
	g := MustNew(3, []Edge{{0, 1, 1}, {1, 2, 1}})
	preds := map[int]int{}
	g.BFSLayers(0, -1, nil, func(v, pred, layer int) { preds[v] = pred })
	if preds[0] != -1 || preds[1] != 0 || preds[2] != 1 {
		t.Errorf("preds = %v", preds)
	}
}

func TestSubgraph(t *testing.T) {
	g := square()
	s := g.Subgraph([]int{0, 2}) // edges (0,1) and (2,3)
	if s.M() != 2 || s.N != 4 {
		t.Fatalf("subgraph has %d edges over %d vertices", s.M(), s.N)
	}
	if s.Connected() {
		t.Error("subgraph should be disconnected")
	}
}

func TestTotalWeight(t *testing.T) {
	if w := square().TotalWeight(); w != 15 {
		t.Errorf("TotalWeight = %g, want 15", w)
	}
}

// Property: adjacency structure is consistent — every edge appears exactly
// twice across all adjacency lists, once per endpoint.
func TestAdjacencyConsistencyQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		var edges []Edge
		for k := 0; k < 3*n; k++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			edges = append(edges, Edge{U: u, V: v, W: rng.Float64() + 0.1})
		}
		g, err := New(n, edges)
		if err != nil {
			return false
		}
		seen := make([]int, g.M())
		for u := 0; u < n; u++ {
			g.Neighbors(u, func(v, e int, w float64) {
				seen[e]++
				ed := g.Edges[e]
				if !(ed.U == u && ed.V == v) && !(ed.V == u && ed.U == v) {
					t.Fatalf("adjacency edge mismatch")
				}
			})
		}
		for _, c := range seen {
			if c != 2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestSortMergeMatchesMapMerge: above dedupSortThreshold New switches to
// the sort-based merge; the resulting graph must agree with the map-based
// path on the merged edge set and summed weights (order aside).
func TestSortMergeMatchesMapMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n := 300
	raw := make([]Edge, 0, dedupSortThreshold+512)
	for len(raw) < dedupSortThreshold+512 {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		raw = append(raw, Edge{U: u, V: v, W: 1 + rng.Float64()})
	}
	big, err := New(n, raw) // sort-based path
	if err != nil {
		t.Fatal(err)
	}
	norm, err := normalize(n, raw)
	if err != nil {
		t.Fatal(err)
	}
	want := mergeMap(norm) // map path on the same input
	if big.M() != len(want) {
		t.Fatalf("sort path merged to %d edges, map path to %d", big.M(), len(want))
	}
	wantW := make(map[[2]int]float64, len(want))
	for _, e := range want {
		wantW[[2]int{e.U, e.V}] = e.W
	}
	for _, e := range big.Edges {
		w, ok := wantW[[2]int{e.U, e.V}]
		if !ok {
			t.Fatalf("edge (%d,%d) missing from map-path result", e.U, e.V)
		}
		if diff := math.Abs(w - e.W); diff > 1e-12*math.Abs(w) {
			t.Fatalf("edge (%d,%d): sort path weight %g, map path %g", e.U, e.V, e.W, w)
		}
	}
	// Sorted output contract: normalized and strictly increasing (U, V).
	for i := 1; i < len(big.Edges); i++ {
		a, b := big.Edges[i-1], big.Edges[i]
		if a.U > b.U || (a.U == b.U && a.V >= b.V) {
			t.Fatalf("edges %d,%d out of order: (%d,%d) then (%d,%d)", i-1, i, a.U, a.V, b.U, b.V)
		}
	}
}

// TestSortMergeValidation: the large-input path rejects the same bad
// edges as the small one.
func TestSortMergeValidation(t *testing.T) {
	edges := make([]Edge, dedupSortThreshold+1)
	for i := range edges {
		edges[i] = Edge{U: 0, V: 1, W: 1}
	}
	edges[dedupSortThreshold] = Edge{U: 5, V: 5, W: 1}
	if _, err := New(6, edges); err == nil {
		t.Fatal("self loop accepted on the sort-merge path")
	}
}

// BenchmarkNewLargeDedup is the satellite's motivating measurement: the
// per-edge map insert the sort-based merge removes.
func BenchmarkNewLargeDedup(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	n := 100000
	edges := make([]Edge, 400000)
	for i := range edges {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			v = (u + 1) % n
		}
		edges[i] = Edge{U: u, V: v, W: 1 + rng.Float64()}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := New(n, edges); err != nil {
			b.Fatal(err)
		}
	}
}
