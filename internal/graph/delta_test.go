package graph

import (
	"math/rand"
	"sort"
	"testing"
)

// randomConnected builds a random connected graph: a spanning path plus
// extra random chords.
func randomConnected(t *testing.T, r *rand.Rand, n, extra int) *Graph {
	t.Helper()
	var edges []Edge
	for i := 1; i < n; i++ {
		edges = append(edges, Edge{U: i - 1, V: i, W: 1 + r.Float64()})
	}
	for k := 0; k < extra; k++ {
		u, v := r.Intn(n), r.Intn(n)
		if u == v {
			continue
		}
		edges = append(edges, Edge{U: u, V: v, W: 1 + r.Float64()})
	}
	return MustNew(n, edges)
}

// edgeSet canonicalizes a graph's edges for order-insensitive comparison.
func edgeSet(g *Graph) map[[2]int]float64 {
	m := make(map[[2]int]float64, len(g.Edges))
	for _, e := range g.Edges {
		m[[2]int{e.U, e.V}] = e.W
	}
	return m
}

func sameEdges(t *testing.T, a, b *Graph, label string) {
	t.Helper()
	if a.N != b.N {
		t.Fatalf("%s: N mismatch %d vs %d", label, a.N, b.N)
	}
	ea, eb := edgeSet(a), edgeSet(b)
	if len(ea) != len(eb) {
		t.Fatalf("%s: edge count mismatch %d vs %d", label, len(ea), len(eb))
	}
	for k, w := range ea {
		if eb[k] != w {
			t.Fatalf("%s: edge %v weight %g vs %g", label, k, w, eb[k])
		}
	}
}

// randomDelta builds a valid random delta against g: reweights, removals
// of non-bridge-critical edges, and new chords.
func randomDelta(r *rand.Rand, g *Graph) Delta {
	var d Delta
	removed := make(map[int]bool)
	for k := 0; k < 3; k++ {
		idx := r.Intn(len(g.Edges))
		e := g.Edges[idx]
		if !removed[idx] && r.Float64() < 0.5 {
			removed[idx] = true
			d.Remove = append(d.Remove, [2]int{e.U, e.V})
		}
	}
	for k := 0; k < 5; k++ {
		idx := r.Intn(len(g.Edges))
		if removed[idx] {
			continue
		}
		e := g.Edges[idx]
		d.Set = append(d.Set, Edge{U: e.U, V: e.V, W: 0.5 + r.Float64()})
	}
	for k := 0; k < 3; k++ {
		u, v := r.Intn(g.N), r.Intn(g.N)
		if u == v {
			continue
		}
		d.Set = append(d.Set, Edge{U: u, V: v, W: 0.5 + r.Float64()})
	}
	return d
}

func TestApplyPatchMatchesApplySemantics(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		g := randomConnected(t, r, 40, 30)
		d := randomDelta(r, g)
		p, err := d.ApplyPatch(g)
		if err != nil {
			t.Fatalf("trial %d: ApplyPatch: %v", trial, err)
		}
		// Reference: the pre-patch semantics, rebuilt through New.
		want := referenceApply(t, g, d)
		sameEdges(t, p.G, want, "patched vs reference")
		if got, _ := d.Apply(g); got != nil {
			sameEdges(t, got, want, "Apply vs reference")
		}
	}
}

// referenceApply reimplements the original Apply (full New rebuild) as
// the semantic oracle.
func referenceApply(t *testing.T, g *Graph, d Delta) *Graph {
	t.Helper()
	edges := append([]Edge(nil), g.Edges...)
	dropped := make([]bool, len(edges))
	for _, rm := range d.Remove {
		u, v := rm[0], rm[1]
		if u > v {
			u, v = v, u
		}
		e, ok := g.EdgeBetween(u, v)
		if !ok || dropped[e] {
			t.Fatalf("reference: bad remove (%d,%d)", u, v)
		}
		dropped[e] = true
	}
	at := make(map[[2]int]int)
	var added []Edge
	for _, e := range d.Set {
		u, v := e.U, e.V
		if u > v {
			u, v = v, u
		}
		if idx, ok := g.EdgeBetween(u, v); ok && !dropped[idx] {
			edges[idx].W = e.W
			continue
		}
		if prev, ok := at[[2]int{u, v}]; ok {
			added[prev].W = e.W
			continue
		}
		at[[2]int{u, v}] = len(added)
		added = append(added, Edge{U: u, V: v, W: e.W})
	}
	out := edges[:0:0]
	for i, e := range edges {
		if !dropped[i] {
			out = append(out, e)
		}
	}
	out = append(out, added...)
	ng, err := New(g.N, out)
	if err != nil {
		t.Fatalf("reference New: %v", err)
	}
	return ng
}

func TestApplyPatchReweightOnlySharesAdjacency(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	g := randomConnected(t, r, 30, 20)
	d := Delta{Set: []Edge{
		{U: g.Edges[0].U, V: g.Edges[0].V, W: g.Edges[0].W * 2},
		{U: g.Edges[5].V, V: g.Edges[5].U, W: 9.5}, // reversed endpoints
	}}
	p, err := d.ApplyPatch(g)
	if err != nil {
		t.Fatal(err)
	}
	if p.Structural() {
		t.Fatal("reweight-only delta classified structural")
	}
	if p.OldToNew != nil {
		t.Fatal("non-structural patch must have nil OldToNew")
	}
	if &p.G.AdjStart[0] != &g.AdjStart[0] {
		t.Error("reweight-only patch must share base adjacency")
	}
	if len(p.Reweighted) != 2 {
		t.Fatalf("Reweighted = %v, want 2 entries", p.Reweighted)
	}
	for _, idx := range p.Reweighted {
		if p.G.Edges[idx].U != g.Edges[idx].U || p.G.Edges[idx].V != g.Edges[idx].V {
			t.Errorf("reweighted index %d not aligned with base", idx)
		}
		if p.G.Edges[idx].W == g.Edges[idx].W {
			t.Errorf("reweighted index %d weight unchanged", idx)
		}
	}
	// Base graph untouched.
	if g.Edges[0].W == p.G.Edges[0].W {
		t.Error("base edge list mutated")
	}
	// Touched = the endpoints, sorted and deduplicated.
	want := []int{g.Edges[0].U, g.Edges[0].V, g.Edges[5].U, g.Edges[5].V}
	sort.Ints(want)
	if len(p.Touched) > len(want) {
		t.Errorf("Touched = %v has duplicates or extras (want subset of %v)", p.Touched, want)
	}
}

func TestApplyPatchNoOpReweightSkipped(t *testing.T) {
	g := MustNew(3, []Edge{{0, 1, 2}, {1, 2, 3}})
	d := Delta{Set: []Edge{{U: 0, V: 1, W: 2}}} // identical weight
	p, err := d.ApplyPatch(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Reweighted) != 0 || len(p.Touched) != 0 {
		t.Errorf("no-op reweight recorded: reweighted=%v touched=%v", p.Reweighted, p.Touched)
	}
}

func TestApplyPatchStructural(t *testing.T) {
	g := MustNew(5, []Edge{{0, 1, 1}, {1, 2, 2}, {2, 3, 3}, {3, 4, 4}, {0, 4, 5}})
	d := Delta{
		Set:    []Edge{{U: 1, V: 3, W: 7}, {U: 1, V: 2, W: 2.5}},
		Remove: [][2]int{{2, 3}},
	}
	p, err := d.ApplyPatch(g)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Structural() {
		t.Fatal("delta with add+remove not classified structural")
	}
	if len(p.OldToNew) != 5 {
		t.Fatalf("OldToNew = %v", p.OldToNew)
	}
	// Edge 2 (2,3) removed; survivors keep relative order.
	wantMap := []int{0, 1, -1, 2, 3}
	for i, w := range wantMap {
		if p.OldToNew[i] != w {
			t.Errorf("OldToNew[%d] = %d, want %d", i, p.OldToNew[i], w)
		}
	}
	if len(p.Removed) != 1 || p.Removed[0] != (Edge{2, 3, 3}) {
		t.Errorf("Removed = %v", p.Removed)
	}
	if len(p.Added) != 1 || p.G.Edges[p.Added[0]] != (Edge{1, 3, 7}) {
		t.Errorf("Added = %v (edge %v)", p.Added, p.G.Edges[p.Added[0]])
	}
	if len(p.Reweighted) != 1 || p.G.Edges[p.Reweighted[0]] != (Edge{1, 2, 2.5}) {
		t.Errorf("Reweighted = %v", p.Reweighted)
	}
	// The mapped reweighted index must point at the same endpoints.
	if p.G.M() != 5 {
		t.Errorf("M = %d, want 5", p.G.M())
	}
}

func TestApplyPatchResurrect(t *testing.T) {
	g := MustNew(3, []Edge{{0, 1, 1}, {1, 2, 2}, {0, 2, 3}})
	d := Delta{
		Remove: [][2]int{{0, 1}},
		Set:    []Edge{{U: 0, V: 1, W: 9}}, // resurrect with new weight
	}
	p, err := d.ApplyPatch(g)
	if err != nil {
		t.Fatal(err)
	}
	want := MustNew(3, []Edge{{0, 1, 9}, {1, 2, 2}, {0, 2, 3}})
	sameEdges(t, p.G, want, "resurrect")
	if len(p.Removed) != 1 || len(p.Added) != 1 {
		t.Errorf("resurrect must classify as remove+add: %v / %v", p.Removed, p.Added)
	}
}

func TestApplyPatchErrors(t *testing.T) {
	g := MustNew(3, []Edge{{0, 1, 1}, {1, 2, 2}})
	cases := []Delta{
		{Remove: [][2]int{{0, 2}}},         // absent edge
		{Remove: [][2]int{{0, 1}, {1, 0}}}, // double remove
		{Set: []Edge{{U: 0, V: 0, W: 1}}},  // self loop
		{Set: []Edge{{U: 0, V: 5, W: 1}}},  // out of range
		{Set: []Edge{{U: 0, V: 1, W: -1}}}, // bad weight
		{Remove: [][2]int{{-1, 1}}},        // out of range remove
	}
	for i, d := range cases {
		if _, err := d.ApplyPatch(g); err == nil {
			t.Errorf("case %d: expected error", i)
		}
		if _, err := d.Apply(g); err == nil {
			t.Errorf("case %d: Apply expected error", i)
		}
	}
}
