package graph

import (
	"fmt"
	"sort"
)

// Delta is an edge-level modification of a graph over a fixed vertex set:
// Set adds new edges or replaces the weight of existing ones, Remove
// deletes edges. It is the input of the incremental rebuild path — a
// serving workload whose graph drifts a few edges at a time applies a
// Delta instead of resubmitting the whole graph, so untouched clusters'
// sparsifiers and factors can be reused.
type Delta struct {
	// Set lists edges to add (when absent) or reweight (when present).
	// Endpoints are normalized like New's input; weights must be positive.
	Set []Edge
	// Remove lists edges to delete, as endpoint pairs. Removing an edge
	// that is not present is an error (it usually means the caller's view
	// of the base graph has drifted).
	Remove [][2]int
}

// Empty reports whether the delta modifies nothing.
func (d Delta) Empty() bool { return len(d.Set) == 0 && len(d.Remove) == 0 }

// Size returns the number of edge modifications the delta carries.
func (d Delta) Size() int { return len(d.Set) + len(d.Remove) }

// Apply builds the graph that results from applying d to g. The vertex
// set is unchanged; the result must still be validated for connectivity
// by the caller (removals can disconnect it). Set semantics are
// add-or-replace: setting an existing edge overwrites its weight rather
// than summing (the natural "the conductance changed" update).
func (d Delta) Apply(g *Graph) (*Graph, error) {
	p, err := d.ApplyPatch(g)
	if err != nil {
		return nil, err
	}
	return p.G, nil
}

// Patch is the outcome of Delta.ApplyPatch: the post-delta graph plus
// the classified edit script against the base edge list, in terms the
// Laplacian patcher consumes directly.
type Patch struct {
	// G is the post-delta graph. For a reweight-only delta it shares the
	// base graph's adjacency arrays (same edge order, same indices); only
	// the edge list is copied. Graphs are immutable by convention, so the
	// sharing is safe.
	G *Graph

	// Reweighted lists indices into G.Edges whose weight changed.
	Reweighted []int
	// Added lists indices into G.Edges of appended edges (always a
	// suffix of the edge list). Removed lists the dropped base edges
	// with their old weights — they have no index in G.
	Added   []int
	Removed []Edge

	// OldToNew maps base edge indices to indices in G.Edges (-1 for
	// removed edges); surviving edges keep their relative order. Nil for
	// non-structural patches, where indices are unchanged.
	OldToNew []int

	// Touched lists every vertex incident to a modified edge, deduplicated.
	Touched []int
}

// Structural reports whether the patch changed the edge set (additions
// or removals) rather than only edge weights. Non-structural patches
// preserve edge indices, which downstream consumers exploit for
// index-aligned state adoption.
func (p *Patch) Structural() bool { return len(p.Added) > 0 || len(p.Removed) > 0 }

// ApplyPatch is Apply returning the classified edit script alongside the
// result. For deltas that don't change the edge set it skips the full
// graph rebuild entirely: the base adjacency is shared and only the edge
// list is copied, making a k-edge reweight O(k·deg) instead of O(m).
// Structural deltas rebuild the adjacency once via FromNormalized —
// still without the validation/merge pass of New, which the base graph
// already guarantees.
func (d Delta) ApplyPatch(g *Graph) (*Patch, error) {
	if g == nil {
		return nil, fmt.Errorf("graph: delta applied to nil graph")
	}
	type key = [2]int
	norm := func(u, v int) (key, error) {
		if u < 0 || u >= g.N || v < 0 || v >= g.N {
			return key{}, fmt.Errorf("graph: delta endpoint (%d,%d) out of range for n=%d", u, v, g.N)
		}
		if u == v {
			return key{}, fmt.Errorf("graph: delta self loop at vertex %d", u)
		}
		if u > v {
			u, v = v, u
		}
		return key{u, v}, nil
	}
	p := &Patch{}
	touched := make(map[int]struct{}, 2*d.Size())
	touch := func(u, v int) {
		touched[u] = struct{}{}
		touched[v] = struct{}{}
	}

	// Removals first: Apply's semantics are remove-then-set regardless of
	// field order, so a Set of a removed pair is an addition (resurrect).
	edges := append([]Edge(nil), g.Edges...)
	var dropped []bool
	for _, r := range d.Remove {
		k, err := norm(r[0], r[1])
		if err != nil {
			return nil, err
		}
		e, ok := g.EdgeBetween(k[0], k[1])
		if !ok {
			return nil, fmt.Errorf("graph: delta removes absent edge (%d,%d)", r[0], r[1])
		}
		if dropped == nil {
			dropped = make([]bool, len(edges))
		}
		if dropped[e] {
			return nil, fmt.Errorf("graph: delta removes edge (%d,%d) twice", r[0], r[1])
		}
		dropped[e] = true
		p.Removed = append(p.Removed, g.Edges[e])
		touch(k[0], k[1])
	}

	at := make(map[key]int, len(d.Set))
	reseen := make(map[int]struct{}, len(d.Set))
	var added []Edge
	for _, e := range d.Set {
		k, err := norm(e.U, e.V)
		if err != nil {
			return nil, err
		}
		if e.W <= 0 {
			return nil, fmt.Errorf("graph: delta sets edge (%d,%d) to invalid weight %g", e.U, e.V, e.W)
		}
		if idx, ok := g.EdgeBetween(k[0], k[1]); ok && (dropped == nil || !dropped[idx]) {
			if edges[idx].W == e.W {
				continue // no-op reweight: keep the dirty set tight
			}
			edges[idx].W = e.W
			if _, dup := reseen[idx]; !dup {
				reseen[idx] = struct{}{}
				p.Reweighted = append(p.Reweighted, idx)
			}
			touch(k[0], k[1])
			continue
		}
		if prev, ok := at[k]; ok {
			added[prev].W = e.W // later Set of the same new edge wins
			continue
		}
		at[k] = len(added)
		added = append(added, Edge{U: k[0], V: k[1], W: e.W})
		touch(k[0], k[1])
	}

	p.Touched = make([]int, 0, len(touched))
	for v := range touched {
		p.Touched = append(p.Touched, v)
	}
	sort.Ints(p.Touched)

	if len(p.Removed) == 0 && len(added) == 0 {
		// Reweight-only: edge order (hence indices and adjacency) is
		// unchanged — share the base adjacency arrays.
		p.G = &Graph{
			N:         g.N,
			Edges:     edges,
			AdjStart:  g.AdjStart,
			AdjTarget: g.AdjTarget,
			AdjEdge:   g.AdjEdge,
		}
		return p, nil
	}

	out := make([]Edge, 0, len(edges)-len(p.Removed)+len(added))
	p.OldToNew = make([]int, len(edges))
	for i, e := range edges {
		if dropped != nil && dropped[i] {
			p.OldToNew[i] = -1
			continue
		}
		p.OldToNew[i] = len(out)
		out = append(out, e)
	}
	// Reweighted indices refer to the base list; remap into the new one.
	for i, idx := range p.Reweighted {
		p.Reweighted[i] = p.OldToNew[idx]
	}
	p.Added = make([]int, len(added))
	for i := range added {
		p.Added[i] = len(out) + i
	}
	out = append(out, added...)
	// Surviving base edges are normalized and deduplicated; added edges
	// were checked against both the base and each other — FromNormalized's
	// contract holds, so the O(m log m) validation/merge of New is skipped.
	p.G = FromNormalized(g.N, out)
	return p, nil
}
