package graph

import "fmt"

// Delta is an edge-level modification of a graph over a fixed vertex set:
// Set adds new edges or replaces the weight of existing ones, Remove
// deletes edges. It is the input of the incremental rebuild path — a
// serving workload whose graph drifts a few edges at a time applies a
// Delta instead of resubmitting the whole graph, so untouched clusters'
// sparsifiers and factors can be reused.
type Delta struct {
	// Set lists edges to add (when absent) or reweight (when present).
	// Endpoints are normalized like New's input; weights must be positive.
	Set []Edge
	// Remove lists edges to delete, as endpoint pairs. Removing an edge
	// that is not present is an error (it usually means the caller's view
	// of the base graph has drifted).
	Remove [][2]int
}

// Empty reports whether the delta modifies nothing.
func (d Delta) Empty() bool { return len(d.Set) == 0 && len(d.Remove) == 0 }

// Size returns the number of edge modifications the delta carries.
func (d Delta) Size() int { return len(d.Set) + len(d.Remove) }

// Apply builds the graph that results from applying d to g. The vertex
// set is unchanged; the result must still be validated for connectivity
// by the caller (removals can disconnect it). Set semantics are
// add-or-replace: setting an existing edge overwrites its weight rather
// than summing (the natural "the conductance changed" update).
func (d Delta) Apply(g *Graph) (*Graph, error) {
	if g == nil {
		return nil, fmt.Errorf("graph: delta applied to nil graph")
	}
	// Position of each surviving base edge in the output list; -1 = dropped.
	type key = [2]int
	norm := func(u, v int) (key, error) {
		if u < 0 || u >= g.N || v < 0 || v >= g.N {
			return key{}, fmt.Errorf("graph: delta endpoint (%d,%d) out of range for n=%d", u, v, g.N)
		}
		if u == v {
			return key{}, fmt.Errorf("graph: delta self loop at vertex %d", u)
		}
		if u > v {
			u, v = v, u
		}
		return key{u, v}, nil
	}
	at := make(map[key]int, len(d.Set)+len(d.Remove))
	edges := append([]Edge(nil), g.Edges...)
	dropped := make([]bool, len(edges))
	for _, r := range d.Remove {
		k, err := norm(r[0], r[1])
		if err != nil {
			return nil, err
		}
		e, ok := g.EdgeBetween(k[0], k[1])
		if !ok {
			return nil, fmt.Errorf("graph: delta removes absent edge (%d,%d)", r[0], r[1])
		}
		if dropped[e] {
			return nil, fmt.Errorf("graph: delta removes edge (%d,%d) twice", r[0], r[1])
		}
		dropped[e] = true
	}
	var added []Edge
	for _, e := range d.Set {
		k, err := norm(e.U, e.V)
		if err != nil {
			return nil, err
		}
		if e.W <= 0 {
			return nil, fmt.Errorf("graph: delta sets edge (%d,%d) to invalid weight %g", e.U, e.V, e.W)
		}
		if idx, ok := g.EdgeBetween(k[0], k[1]); ok && !dropped[idx] {
			edges[idx].W = e.W
			continue
		}
		if prev, ok := at[k]; ok {
			added[prev].W = e.W // later Set of the same new edge wins
			continue
		}
		at[k] = len(added)
		added = append(added, Edge{U: k[0], V: k[1], W: e.W})
	}
	out := edges[:0:0]
	for i, e := range edges {
		if !dropped[i] {
			out = append(out, e)
		}
	}
	out = append(out, added...)
	// The surviving base edges are normalized and deduplicated; added
	// edges were checked against both the base and each other. New (rather
	// than FromNormalized) is still used so a Set that resurrects a
	// removed edge merges cleanly and validation stays in one place.
	return New(g.N, out)
}
