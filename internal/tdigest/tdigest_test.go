package tdigest

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func exactQuantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	if lo >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := pos - float64(lo)
	return sorted[lo] + frac*(sorted[lo+1]-sorted[lo])
}

func TestQuantileAccuracy(t *testing.T) {
	distributions := map[string]func(r *rand.Rand) float64{
		"uniform": func(r *rand.Rand) float64 { return r.Float64() },
		"normal":  func(r *rand.Rand) float64 { return r.NormFloat64() },
		// Latency-shaped: lognormal bulk with a heavy tail — the case
		// fixed buckets get wrong.
		"lognormal": func(r *rand.Rand) float64 { return math.Exp(r.NormFloat64()) },
	}
	for name, gen := range distributions {
		r := rand.New(rand.NewSource(42))
		td := New(100)
		xs := make([]float64, 0, 50000)
		for i := 0; i < 50000; i++ {
			x := gen(r)
			td.Add(x)
			xs = append(xs, x)
		}
		sort.Float64s(xs)
		for _, q := range []float64{0.01, 0.1, 0.5, 0.9, 0.95, 0.99, 0.999} {
			got := td.Quantile(q)
			want := exactQuantile(xs, q)
			// Error bound stated in rank space: the estimate's rank in
			// the sorted sample must be within 1% of mass of q·n.
			rank := sort.SearchFloat64s(xs, got)
			rankErr := math.Abs(float64(rank)/float64(len(xs)) - q)
			if rankErr > 0.01 {
				t.Errorf("%s q=%g: got %g (want ~%g), rank error %.4f > 0.01",
					name, q, got, want, rankErr)
			}
		}
	}
}

func TestQuantileMonotone(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	td := New(100)
	for i := 0; i < 10000; i++ {
		td.Add(math.Exp(r.NormFloat64() * 2))
	}
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.001 {
		v := td.Quantile(q)
		if v < prev {
			t.Fatalf("quantile not monotone at q=%g: %g < %g", q, v, prev)
		}
		prev = v
	}
}

func TestEdgeCases(t *testing.T) {
	td := New(100)
	if got := td.Quantile(0.5); got != 0 {
		t.Errorf("empty digest: got %g, want 0", got)
	}
	if td.Count() != 0 {
		t.Errorf("empty digest count: got %d", td.Count())
	}

	td.Add(3.5)
	for _, q := range []float64{0, 0.5, 1} {
		if got := td.Quantile(q); got != 3.5 {
			t.Errorf("single point q=%g: got %g, want 3.5", q, got)
		}
	}
	if td.Count() != 1 {
		t.Errorf("count after one add: got %d", td.Count())
	}

	td.Add(math.NaN())
	td.Add(math.Inf(1))
	if td.Count() != 1 {
		t.Errorf("NaN/Inf must be ignored: count %d", td.Count())
	}

	td.Reset()
	if td.Count() != 0 || td.Quantile(0.5) != 0 {
		t.Errorf("reset did not empty the digest")
	}
}

func TestExtremesExact(t *testing.T) {
	td := New(50)
	for i := 1; i <= 100000; i++ {
		td.Add(float64(i))
	}
	if got := td.Quantile(0); got != 1 {
		t.Errorf("q=0: got %g, want 1", got)
	}
	if got := td.Quantile(1); got != 100000 {
		t.Errorf("q=1: got %g, want 100000", got)
	}
}

func TestBoundedMemory(t *testing.T) {
	td := New(100)
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 500000; i++ {
		td.Add(r.Float64())
	}
	td.flush()
	if n := len(td.centroids); n > 2*100+10 {
		t.Errorf("centroid count %d exceeds ~2×compression", n)
	}
}
