// Package tdigest implements the merging t-digest of Dunning & Ertl
// ("Computing extremely accurate quantiles using t-digests",
// arXiv:1902.04023): a fixed-memory sketch of a distribution whose
// quantile error is relative to q(1-q), so tail quantiles (p99 and
// beyond) stay accurate even when the bulk of the mass sits three
// orders of magnitude away — exactly the failure mode of fixed-bucket
// latency histograms, where every sub-bucket observation rounds to the
// same edge. The engine keeps one digest behind each histogram and
// reports microsecond-scale percentiles from it.
//
// The implementation is the merging variant: points accumulate in a
// small buffer and are merged into the sorted centroid list in one
// O(n log n) pass when the buffer fills, bounding both memory and
// amortized per-observation cost. The k1 (arcsine) scale function caps
// centroid count at ~2·compression. Digests are not safe for
// concurrent use; callers serialize access.
package tdigest

import (
	"math"
	"sort"
)

type centroid struct {
	mean   float64
	weight float64
}

// TDigest is a merging t-digest. The zero value is not usable; call New.
type TDigest struct {
	compression float64
	centroids   []centroid // sorted by mean
	buf         []float64  // unmerged observations
	count       float64    // merged weight (excludes buf)
	min, max    float64
}

// New returns an empty digest. Compression trades memory for accuracy;
// 100 keeps ~200 centroids and holds p99 within a fraction of a percent
// of mass, which is far below measurement noise for latencies.
func New(compression float64) *TDigest {
	if compression < 10 {
		compression = 10
	}
	return &TDigest{
		compression: compression,
		buf:         make([]float64, 0, 4*int(compression)),
		min:         math.Inf(1),
		max:         math.Inf(-1),
	}
}

// Add records one observation. NaN and ±Inf are ignored.
func (t *TDigest) Add(x float64) {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return
	}
	if x < t.min {
		t.min = x
	}
	if x > t.max {
		t.max = x
	}
	t.buf = append(t.buf, x)
	if len(t.buf) == cap(t.buf) {
		t.flush()
	}
}

// Count reports the number of observations recorded.
func (t *TDigest) Count() int64 {
	return int64(t.count) + int64(len(t.buf))
}

// k is the k1 scale function: k(q) = (δ/2π)·asin(2q−1). Its derivative
// blows up at q∈{0,1}, forcing singleton centroids at the tails.
func (t *TDigest) k(q float64) float64 {
	return t.compression / (2 * math.Pi) * math.Asin(2*q-1)
}

func (t *TDigest) flush() {
	if len(t.buf) == 0 {
		return
	}
	sort.Float64s(t.buf)
	total := t.count + float64(len(t.buf))

	// Two-pointer merge of the sorted buffer with the sorted centroid
	// list, greedily growing each output centroid while the scale
	// function allows (k(q_right) − k(q_left) ≤ 1).
	out := make([]centroid, 0, len(t.centroids)+1)
	bi, ci := 0, 0
	next := func() (centroid, bool) {
		switch {
		case bi < len(t.buf) && (ci >= len(t.centroids) || t.buf[bi] <= t.centroids[ci].mean):
			c := centroid{mean: t.buf[bi], weight: 1}
			bi++
			return c, true
		case ci < len(t.centroids):
			c := t.centroids[ci]
			ci++
			return c, true
		}
		return centroid{}, false
	}

	cur, ok := next()
	if !ok {
		return
	}
	qLeft := 0.0
	kLeft := t.k(qLeft)
	for {
		c, ok := next()
		if !ok {
			break
		}
		qRight := qLeft + (cur.weight+c.weight)/total
		if t.k(qRight)-kLeft <= 1 {
			// Absorb: weighted-mean update keeps the merge stable.
			cur.weight += c.weight
			cur.mean += c.weight / cur.weight * (c.mean - cur.mean)
			continue
		}
		out = append(out, cur)
		qLeft += cur.weight / total
		kLeft = t.k(qLeft)
		cur = c
	}
	out = append(out, cur)

	t.centroids = out
	t.count = total
	t.buf = t.buf[:0]
}

// Quantile returns an estimate of the q-th quantile (q in [0,1]).
// Returns 0 for an empty digest.
func (t *TDigest) Quantile(q float64) float64 {
	t.flush()
	if t.count == 0 {
		return 0
	}
	if q <= 0 {
		return t.min
	}
	if q >= 1 {
		return t.max
	}
	cs := t.centroids
	if len(cs) == 1 {
		return cs[0].mean
	}

	// Each centroid's mass is centered on its mean: centroid i spans
	// cumulative weight [cum − w/2, cum + w/2). Interpolate linearly
	// between adjacent midpoints, clamping the ends to min/max.
	target := q * t.count
	cum := 0.0
	for i, c := range cs {
		mid := cum + c.weight/2
		if target < mid {
			if i == 0 {
				// Below the first midpoint: interpolate from min.
				if c.weight <= 1 || mid == 0 {
					return t.min
				}
				frac := target / mid
				return t.min + frac*(c.mean-t.min)
			}
			prev := cs[i-1]
			prevMid := cum - prev.weight/2
			frac := (target - prevMid) / (mid - prevMid)
			return prev.mean + frac*(c.mean-prev.mean)
		}
		cum += c.weight
	}
	// Above the last midpoint: interpolate toward max.
	last := cs[len(cs)-1]
	lastMid := t.count - last.weight/2
	if t.count == lastMid {
		return t.max
	}
	frac := (target - lastMid) / (t.count - lastMid)
	return last.mean + frac*(t.max-last.mean)
}

// Reset empties the digest for reuse.
func (t *TDigest) Reset() {
	t.centroids = t.centroids[:0]
	t.buf = t.buf[:0]
	t.count = 0
	t.min = math.Inf(1)
	t.max = math.Inf(-1)
}
