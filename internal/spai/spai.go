// Package spai implements Algorithm 1 of the paper: a sparse approximate
// inverse Z̃ ≈ L⁻¹ of a sparse Cholesky factor L, computed column by column
// from j = n down to 1 using the recurrence (Proposition 2)
//
//	z_j = (1/L_jj) e_j + Σ_{i>j, L_ij≠0} (−L_ij/L_jj) z̃_i ,
//
// followed by threshold pruning: entries smaller than δ·max(z*_j) are
// dropped, except that columns with at most log₂(n) nonzeros are kept
// exactly. Because L is an M-matrix factor (Proposition 1: positive
// diagonal, nonpositive off-diagonals), every entry of Z = L⁻¹ is
// nonnegative, which makes the single-threshold pruning sound.
//
// The sparsifier uses Z̃ to evaluate e_ijᵀ L_S⁻¹ e_pq ≈
// (z̃_i − z̃_j)ᵀ (z̃_p − z̃_q) (paper eq. 16/20) with only sparse vector
// additions and dot products.
package spai

import (
	"math"
	"sort"

	"repro/internal/sparse"
)

// ApproxInv is the sparse lower-triangular approximation Z̃ ≈ L⁻¹ stored in
// CSC form. Indices live in the factor's permuted ordering.
type ApproxInv struct {
	N      int
	ColPtr []int
	RowIdx []int32
	Val    []float64
}

// NNZ returns the number of stored entries.
func (z *ApproxInv) NNZ() int { return len(z.RowIdx) }

// Col returns the row indices and values of column j (sorted by row).
func (z *ApproxInv) Col(j int) ([]int32, []float64) {
	lo, hi := z.ColPtr[j], z.ColPtr[j+1]
	return z.RowIdx[lo:hi], z.Val[lo:hi]
}

// Compute runs Algorithm 1 on the Cholesky factor l (lower triangular CSC,
// diagonal entry first in each column, as produced by internal/chol) with
// pruning threshold delta (the paper uses δ = 0.1).
func Compute(l *sparse.CSC, delta float64) *ApproxInv {
	n := l.Cols
	keepAll := int(math.Ceil(math.Log2(float64(n + 1))))
	if keepAll < 4 {
		keepAll = 4
	}
	cols := make([][]int32, n)
	vals := make([][]float64, n)
	acc := make([]float64, n)
	touched := make([]int32, 0, 64)

	for j := n - 1; j >= 0; j-- {
		p0 := l.ColPtr[j]
		dj := l.Val[p0] // L_jj > 0
		invD := 1 / dj
		// z*_j = (1/L_jj) e_j + Σ (−L_ij/L_jj) z̃_i.
		acc[j] += invD
		touched = append(touched, int32(j))
		for p := p0 + 1; p < l.ColPtr[j+1]; p++ {
			i := l.RowIdx[p]
			scale := -l.Val[p] * invD // −L_ij/L_jj ≥ 0 for M-matrix factors
			ci, cv := cols[i], vals[i]
			for k, r := range ci {
				if acc[r] == 0 {
					touched = append(touched, r)
				}
				acc[r] += scale * cv[k]
			}
		}
		// Find the maximum for threshold pruning.
		var maxV float64
		for _, r := range touched {
			if v := acc[r]; v > maxV {
				maxV = v
			}
		}
		thresh := 0.0
		if len(touched) > keepAll {
			thresh = delta * maxV
		}
		keepIdx := make([]int32, 0, len(touched))
		keepVal := make([]float64, 0, len(touched))
		for _, r := range touched {
			v := acc[r]
			acc[r] = 0
			// The diagonal entry is always kept: it anchors the effective
			// resistance estimate ‖z̃_p − z̃_q‖² of eq. (20).
			if (v >= thresh && v != 0) || int(r) == j {
				keepIdx = append(keepIdx, r)
				keepVal = append(keepVal, v)
			}
		}
		touched = touched[:0]
		// Sort by row for deterministic downstream iteration.
		sort.Sort(&colSorter{keepIdx, keepVal})
		cols[j] = keepIdx
		vals[j] = keepVal
	}

	z := &ApproxInv{N: n, ColPtr: make([]int, n+1)}
	total := 0
	for j := 0; j < n; j++ {
		total += len(cols[j])
	}
	z.RowIdx = make([]int32, 0, total)
	z.Val = make([]float64, 0, total)
	for j := 0; j < n; j++ {
		z.RowIdx = append(z.RowIdx, cols[j]...)
		z.Val = append(z.Val, vals[j]...)
		z.ColPtr[j+1] = len(z.RowIdx)
	}
	return z
}

type colSorter struct {
	idx []int32
	val []float64
}

func (s *colSorter) Len() int           { return len(s.idx) }
func (s *colSorter) Less(i, j int) bool { return s.idx[i] < s.idx[j] }
func (s *colSorter) Swap(i, j int) {
	s.idx[i], s.idx[j] = s.idx[j], s.idx[i]
	s.val[i], s.val[j] = s.val[j], s.val[i]
}

// ScatterDiff adds sign·(z̃_p − z̃_q) into the dense accumulator acc,
// appending every newly touched row to touched. Callers must zero the
// touched entries before reuse (see ClearScatter).
func (z *ApproxInv) ScatterDiff(p, q int, acc []float64, touched []int32) []int32 {
	idx, val := z.Col(p)
	for k, r := range idx {
		if acc[r] == 0 {
			touched = append(touched, r)
		}
		acc[r] += val[k]
	}
	idx, val = z.Col(q)
	for k, r := range idx {
		if acc[r] == 0 {
			touched = append(touched, r)
		}
		acc[r] -= val[k]
	}
	return touched
}

// ClearScatter zeroes the accumulator entries listed in touched.
func ClearScatter(acc []float64, touched []int32) {
	for _, r := range touched {
		acc[r] = 0
	}
}

// DotDiff returns (z̃_a − z̃_b)ᵀ s for a scattered dense vector s.
func (z *ApproxInv) DotDiff(a, b int, s []float64) float64 {
	var dot float64
	idx, val := z.Col(a)
	for k, r := range idx {
		dot += val[k] * s[r]
	}
	idx, val = z.Col(b)
	for k, r := range idx {
		dot -= val[k] * s[r]
	}
	return dot
}

// NormSq returns ‖s‖² restricted to the touched entries of a scattered
// vector; with s = z̃_p − z̃_q this approximates the effective resistance
// R_S(p,q) = e_pqᵀ L_S⁻¹ e_pq.
func NormSq(acc []float64, touched []int32) float64 {
	var s float64
	for _, r := range touched {
		s += acc[r] * acc[r]
	}
	return s
}

// Dense expands Z̃ for tests.
func (z *ApproxInv) Dense() [][]float64 {
	m := make([][]float64, z.N)
	for i := range m {
		m[i] = make([]float64, z.N)
	}
	for j := 0; j < z.N; j++ {
		idx, val := z.Col(j)
		for k, r := range idx {
			m[r][j] = val[k]
		}
	}
	return m
}
