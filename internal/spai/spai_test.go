package spai

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/chol"
	"repro/internal/gen"
	"repro/internal/lap"
	"repro/internal/order"
	"repro/internal/sparse"
)

func factorOf(n, extra int, seed int64) (*sparse.CSC, *chol.Factor) {
	g := gen.RandomConnected(n, extra, seed)
	shift := make([]float64, n)
	for i := range shift {
		shift[i] = 0.05
	}
	a := lap.Laplacian(g, shift)
	f, err := chol.New(a, chol.Options{Ordering: order.MinDegree})
	if err != nil {
		panic(err)
	}
	return a, f
}

// denseInvL computes L⁻¹ densely for comparison.
func denseInvL(l *sparse.CSC) [][]float64 {
	n := l.Cols
	ld := l.Dense()
	inv := make([][]float64, n)
	for j := range inv {
		inv[j] = make([]float64, n)
	}
	// Solve L x = e_j column by column (forward substitution).
	for j := 0; j < n; j++ {
		x := make([]float64, n)
		x[j] = 1
		for i := j; i < n; i++ {
			s := x[i]
			for k := j; k < i; k++ {
				s -= ld[i][k] * inv[k][j]
			}
			inv[i][j] = s / ld[i][i]
		}
	}
	return inv
}

func TestExactWhenDeltaZeroSmall(t *testing.T) {
	// With δ = 0 and n below the keep-all threshold, Z̃ = L⁻¹ exactly.
	_, f := factorOf(10, 6, 1)
	z := Compute(f.L, 0.0)
	want := denseInvL(f.L)
	got := z.Dense()
	for i := 0; i < 10; i++ {
		for j := 0; j < 10; j++ {
			if math.Abs(got[i][j]-want[i][j]) > 1e-10 {
				t.Fatalf("Z̃[%d][%d] = %g, want %g", i, j, got[i][j], want[i][j])
			}
		}
	}
}

func TestNonnegativityProposition1(t *testing.T) {
	// All entries of Z = L⁻¹ (and its approximation) are nonnegative.
	for seed := int64(0); seed < 5; seed++ {
		_, f := factorOf(30, 20, seed)
		z := Compute(f.L, 0.1)
		for _, v := range z.Val {
			if v < 0 {
				t.Fatalf("negative entry %g in Z̃", v)
			}
		}
	}
}

func TestLowerTriangular(t *testing.T) {
	_, f := factorOf(25, 15, 3)
	z := Compute(f.L, 0.1)
	for j := 0; j < z.N; j++ {
		idx, _ := z.Col(j)
		for _, r := range idx {
			if int(r) < j {
				t.Fatalf("entry above diagonal: row %d col %d", r, j)
			}
		}
	}
}

func TestColumnsSortedByRow(t *testing.T) {
	_, f := factorOf(40, 30, 4)
	z := Compute(f.L, 0.1)
	for j := 0; j < z.N; j++ {
		idx, _ := z.Col(j)
		for k := 1; k < len(idx); k++ {
			if idx[k-1] >= idx[k] {
				t.Fatalf("column %d rows not ascending", j)
			}
		}
	}
}

func TestPruningReducesNNZ(t *testing.T) {
	g := gen.Grid2D(20, 20, 5)
	shift := make([]float64, g.N)
	for i := range shift {
		shift[i] = 0.05
	}
	a := lap.Laplacian(g, shift)
	f, err := chol.New(a, chol.Options{})
	if err != nil {
		t.Fatal(err)
	}
	zTight := Compute(f.L, 0.3)
	zLoose := Compute(f.L, 0.01)
	if zTight.NNZ() >= zLoose.NNZ() {
		t.Errorf("δ=0.3 nnz %d should be < δ=0.01 nnz %d", zTight.NNZ(), zLoose.NNZ())
	}
	// The paper reports nnz(Z̃) ≈ n·log n at δ = 0.1.
	z := Compute(f.L, 0.1)
	n := float64(g.N)
	if float64(z.NNZ()) > 4*n*math.Log2(n) {
		t.Errorf("nnz(Z̃) = %d far above n·log n = %g", z.NNZ(), n*math.Log2(n))
	}
}

func TestApproximationQuality(t *testing.T) {
	// e_pqᵀ L_S⁻¹ e_pq computed with Z̃ should be within ~20%% of exact for
	// δ = 0.1 on a modest mesh (the resistance term of eq. 20).
	g := gen.Grid2D(12, 12, 6)
	n := g.N
	shift := make([]float64, n)
	for i := range shift {
		shift[i] = 0.05
	}
	a := lap.Laplacian(g, shift)
	f, err := chol.New(a, chol.Options{})
	if err != nil {
		t.Fatal(err)
	}
	z := Compute(f.L, 0.1)
	rng := rand.New(rand.NewSource(7))
	acc := make([]float64, n)
	var worst float64
	for trial := 0; trial < 40; trial++ {
		p := rng.Intn(n)
		q := rng.Intn(n)
		if p == q {
			continue
		}
		pp, qp := f.PermutedIndex(p), f.PermutedIndex(q)
		touched := z.ScatterDiff(pp, qp, acc, nil)
		approx := NormSq(acc, touched)
		ClearScatter(acc, touched)
		// Exact: e_pqᵀ A⁻¹ e_pq via the factor.
		e := make([]float64, n)
		e[p] = 1
		e[q] = -1
		x := f.Solve(e)
		exact := x[p] - x[q]
		rel := math.Abs(approx-exact) / exact
		if rel > worst {
			worst = rel
		}
	}
	if worst > 0.35 {
		t.Errorf("worst relative resistance error %g > 0.35", worst)
	}
}

func TestErrorBoundEq19(t *testing.T) {
	// Eq. (19): the column-wise propagation does not amplify errors, since
	// Σ_i |L_ij|/L_jj ≤ 1 for SDD matrices. Verify ‖z̃_j − z_j‖∞ stays
	// bounded by the largest pruning cut, with slack for accumulation.
	_, f := factorOf(40, 30, 8)
	delta := 0.05
	z := Compute(f.L, delta)
	want := denseInvL(f.L)
	got := z.Dense()
	for j := 0; j < z.N; j++ {
		var maxCol float64
		for i := j; i < z.N; i++ {
			if want[i][j] > maxCol {
				maxCol = want[i][j]
			}
		}
		for i := j; i < z.N; i++ {
			if d := math.Abs(got[i][j] - want[i][j]); d > 3*delta*maxCol+1e-12 {
				t.Fatalf("col %d entry %d: |Z̃−Z| = %g exceeds bound %g", j, i, d, 3*delta*maxCol)
			}
		}
	}
}

func TestScatterClearLeavesZero(t *testing.T) {
	_, f := factorOf(20, 10, 9)
	z := Compute(f.L, 0.1)
	acc := make([]float64, 20)
	touched := z.ScatterDiff(3, 11, acc, nil)
	ClearScatter(acc, touched)
	for i, v := range acc {
		if v != 0 {
			t.Fatalf("acc[%d] = %g after clear", i, v)
		}
	}
}

func TestDotDiffMatchesDense(t *testing.T) {
	_, f := factorOf(18, 12, 10)
	z := Compute(f.L, 0.0) // exact on this size
	d := z.Dense()
	acc := make([]float64, 18)
	touched := z.ScatterDiff(2, 9, acc, nil)
	got := z.DotDiff(4, 7, acc)
	var want float64
	for r := 0; r < 18; r++ {
		want += (d[r][4] - d[r][7]) * (d[r][2] - d[r][9])
	}
	ClearScatter(acc, touched)
	if math.Abs(got-want) > 1e-10 {
		t.Errorf("DotDiff = %g, want %g", got, want)
	}
}

func TestNNZScalesQuick(t *testing.T) {
	// Property: pruned Z̃ never exceeds the dense lower-triangle size and
	// always covers the diagonal.
	f := func(seed int64) bool {
		n := 5 + int(seed%41+41)%41
		_, fac := factorOf(n, n, seed)
		z := Compute(fac.L, 0.1)
		if z.NNZ() > n*(n+1)/2 {
			return false
		}
		for j := 0; j < n; j++ {
			idx, _ := z.Col(j)
			if len(idx) == 0 || int(idx[0]) != j {
				return false // diagonal must survive pruning (it is the max early on)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
