package fabric

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync/atomic"

	"repro/internal/shard"
)

// maxClusterBody caps worker request bodies — one cluster, not a whole
// graph, so half the serving layer's whole-graph cap is generous.
const maxClusterBody = 32 << 20

// Worker executes cluster builds on behalf of remote coordinators: the
// handler behind `trsparsed -worker`'s POST /v2/cluster. Builds run on a
// bounded semaphore (a worker serves one coordinator's fan-out plus
// hedged duplicates from others; unbounded concurrency would thrash),
// and results are cached by cluster fingerprint when a cache is
// configured — rendezvous placement keys on the same fingerprint, so a
// rebuild of a mostly-unchanged graph lands its unchanged clusters on
// the workers that already hold them.
type Worker struct {
	cache shard.ClusterCache // nil disables worker-side caching
	sem   chan struct{}

	served    atomic.Int64
	cacheHits atomic.Int64
	failures  atomic.Int64
}

// NewWorker creates a worker executing at most workers concurrent
// cluster builds (≤ 0 selects GOMAXPROCS) against the given cache (nil
// disables caching).
func NewWorker(cache shard.ClusterCache, workers int) *Worker {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Worker{cache: cache, sem: make(chan struct{}, workers)}
}

// WorkerStatsSnapshot is a worker's own telemetry (the coordinator keeps
// its view separately; see Remote.Stats).
type WorkerStatsSnapshot struct {
	Served    int64 `json:"clusters_served"`
	CacheHits int64 `json:"cluster_cache_hits"`
	Failures  int64 `json:"cluster_failures"`
}

// Stats snapshots the worker's counters.
func (w *Worker) Stats() WorkerStatsSnapshot {
	return WorkerStatsSnapshot{
		Served:    w.served.Load(),
		CacheHits: w.cacheHits.Load(),
		Failures:  w.failures.Load(),
	}
}

// ServeCluster is the POST /v2/cluster handler: decode one cluster
// payload, serve it from the local cluster cache on a fingerprint hit,
// otherwise build it (bounded by the worker semaphore, canceled when the
// coordinator gives up — a hedge loser stops burning the worker's CPU)
// and cache the result.
func (w *Worker) ServeCluster(rw http.ResponseWriter, r *http.Request) {
	var p ClusterPayload
	if err := json.NewDecoder(http.MaxBytesReader(rw, r.Body, maxClusterBody)).Decode(&p); err != nil {
		w.failures.Add(1)
		writeWorkerErr(rw, http.StatusBadRequest, "invalid_request", fmt.Errorf("decoding cluster payload: %w", err))
		return
	}
	req, err := p.clusterRequest()
	if err != nil {
		w.failures.Add(1)
		writeWorkerErr(rw, http.StatusBadRequest, "invalid_request", err)
		return
	}

	if w.cache != nil && p.Key != "" {
		if pairs, ok := w.cache.GetCluster(p.Key); ok {
			w.served.Add(1)
			w.cacheHits.Add(1)
			writeWorkerJSON(rw, http.StatusOK, ClusterResponse{Edges: pairs, Cached: true})
			return
		}
	}

	ctx := r.Context()
	select {
	case w.sem <- struct{}{}:
		defer func() { <-w.sem }()
	case <-ctx.Done():
		w.failures.Add(1)
		writeWorkerErr(rw, http.StatusServiceUnavailable, "canceled", ctx.Err())
		return
	}

	res, err := shard.BuildCluster(ctx, req)
	if err != nil {
		w.failures.Add(1)
		status, code := http.StatusUnprocessableEntity, "invalid_graph"
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			status, code = http.StatusServiceUnavailable, "canceled"
		}
		writeWorkerErr(rw, status, code, err)
		return
	}
	if w.cache != nil && p.Key != "" {
		w.cache.AddCluster(p.Key, res.Edges)
	}
	w.served.Add(1)
	writeWorkerJSON(rw, http.StatusOK, ClusterResponse{Edges: res.Edges, Stats: res.Stats})
}

func writeWorkerJSON(rw http.ResponseWriter, status int, v any) {
	buf, err := json.Marshal(v)
	if err != nil {
		status = http.StatusInternalServerError
		buf = []byte(`{"error":"unencodable response","code":"internal"}`)
	}
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(status)
	rw.Write(append(buf, '\n'))
}

func writeWorkerErr(rw http.ResponseWriter, status int, code string, err error) {
	writeWorkerJSON(rw, status, errorResponse{Error: err.Error(), Code: code})
}
