package fabric

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/chol"
	"repro/internal/shard"
)

// maxClusterBody caps worker request bodies — one cluster, not a whole
// graph, so half the serving layer's whole-graph cap is generous.
const maxClusterBody = 32 << 20

// DefaultPeerTimeout bounds one peer cache fetch. A fetch is a cache
// read on the peer — milliseconds — so a short deadline keeps a dead
// previous owner from stalling the build longer than the rebuild it
// would avoid.
const DefaultPeerTimeout = 2 * time.Second

// WorkerOptions tunes optional worker behaviour; the zero value matches
// NewWorker's.
type WorkerOptions struct {
	// PeerFetch enables the one-hop peer cache fetch: on a cache miss
	// for a dispatch that carries previous-owner metadata (the
	// coordinator observed a membership change that moved this key), the
	// worker tries one GET /v2/cluster/{key} against the previous owner
	// before building. One hop, one attempt; any failure falls through
	// to the normal build.
	PeerFetch bool
	// PeerTimeout bounds the fetch (0 selects DefaultPeerTimeout).
	PeerTimeout time.Duration
	// Client overrides the HTTP client used for peer fetches (tests).
	Client *http.Client
}

// Worker executes cluster builds on behalf of remote coordinators: the
// handler behind `trsparsed -worker`'s POST /v2/cluster. Builds run on a
// bounded semaphore (a worker serves one coordinator's fan-out plus
// hedged duplicates from others; unbounded concurrency would thrash),
// and results are cached by cluster fingerprint when a cache is
// configured — rendezvous placement keys on the same fingerprint, so a
// rebuild of a mostly-unchanged graph lands its unchanged clusters on
// the workers that already hold them. The same handler serves factor
// jobs (ClusterPayload.Factor set): a deterministic sparse Cholesky of
// the shipped block, returned serialized.
type Worker struct {
	cache shard.ClusterCache // nil disables worker-side caching
	opts  WorkerOptions
	sem   chan struct{}

	served       atomic.Int64
	cacheHits    atomic.Int64
	failures     atomic.Int64
	factorsBuilt atomic.Int64
	peerFetches  atomic.Int64
	peerHits     atomic.Int64
	peerServed   atomic.Int64
}

// NewWorker creates a worker executing at most workers concurrent
// cluster builds (≤ 0 selects GOMAXPROCS) against the given cache (nil
// disables caching).
func NewWorker(cache shard.ClusterCache, workers int) *Worker {
	return NewWorkerWith(cache, workers, WorkerOptions{})
}

// NewWorkerWith is NewWorker with explicit options.
func NewWorkerWith(cache shard.ClusterCache, workers int, opts WorkerOptions) *Worker {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if opts.PeerTimeout <= 0 {
		opts.PeerTimeout = DefaultPeerTimeout
	}
	if opts.Client == nil {
		opts.Client = &http.Client{}
	}
	return &Worker{cache: cache, opts: opts, sem: make(chan struct{}, workers)}
}

// WorkerStatsSnapshot is a worker's own telemetry (the coordinator keeps
// its view separately; see Remote.Stats).
type WorkerStatsSnapshot struct {
	Served    int64 `json:"clusters_served"`
	CacheHits int64 `json:"cluster_cache_hits"`
	Failures  int64 `json:"cluster_failures"`
	// FactorsBuilt counts factor jobs served (remote Schwarz blocks
	// factorized for a coordinator).
	FactorsBuilt int64 `json:"factors_built"`
	// PeerFetches counts peer cache fetches this worker attempted after
	// a membership change moved a key onto it; PeerHits the ones the
	// previous owner answered. PeerServed counts GET /v2/cluster/{key}
	// requests this worker answered from its cache for other workers.
	PeerFetches int64 `json:"peer_fetches"`
	PeerHits    int64 `json:"peer_hits"`
	PeerServed  int64 `json:"peer_served"`
}

// Stats snapshots the worker's counters.
func (w *Worker) Stats() WorkerStatsSnapshot {
	return WorkerStatsSnapshot{
		Served:       w.served.Load(),
		CacheHits:    w.cacheHits.Load(),
		Failures:     w.failures.Load(),
		FactorsBuilt: w.factorsBuilt.Load(),
		PeerFetches:  w.peerFetches.Load(),
		PeerHits:     w.peerHits.Load(),
		PeerServed:   w.peerServed.Load(),
	}
}

// ServeCluster is the POST /v2/cluster handler: decode one payload and
// serve it — a factor job through the factorization path, a cluster
// build from the local cache on a fingerprint hit, via a one-hop peer
// fetch when membership movement metadata is present, or by building it
// (bounded by the worker semaphore, canceled when the coordinator gives
// up — a hedge loser stops burning the worker's CPU) and caching the
// result.
func (w *Worker) ServeCluster(rw http.ResponseWriter, r *http.Request) {
	var p ClusterPayload
	if err := json.NewDecoder(http.MaxBytesReader(rw, r.Body, maxClusterBody)).Decode(&p); err != nil {
		w.failures.Add(1)
		writeWorkerErr(rw, http.StatusBadRequest, "invalid_request", fmt.Errorf("decoding cluster payload: %w", err))
		return
	}
	if p.Factor != nil {
		w.serveFactor(rw, r, &p)
		return
	}
	req, err := p.clusterRequest()
	if err != nil {
		w.failures.Add(1)
		writeWorkerErr(rw, http.StatusBadRequest, "invalid_request", err)
		return
	}

	if w.cache != nil && p.Key != "" {
		if pairs, ok := w.cache.GetCluster(p.Key); ok {
			w.served.Add(1)
			w.cacheHits.Add(1)
			writeWorkerJSON(rw, http.StatusOK, ClusterResponse{Edges: pairs, Cached: true})
			return
		}
	}

	ctx := r.Context()
	peerFetch := ""
	if w.opts.PeerFetch && w.cache != nil && p.Key != "" && p.PrevOwner != "" {
		if pairs, ok := w.peerFetch(ctx, &p, req); ok {
			w.cache.AddCluster(p.Key, pairs)
			w.served.Add(1)
			writeWorkerJSON(rw, http.StatusOK, ClusterResponse{Edges: pairs, Cached: true, PeerFetch: "hit"})
			return
		}
		peerFetch = "miss"
	}

	select {
	case w.sem <- struct{}{}:
		defer func() { <-w.sem }()
	case <-ctx.Done():
		w.failures.Add(1)
		writeWorkerErr(rw, http.StatusServiceUnavailable, "canceled", ctx.Err())
		return
	}

	res, err := shard.BuildCluster(ctx, req)
	if err != nil {
		w.failures.Add(1)
		status, code := http.StatusUnprocessableEntity, "invalid_graph"
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			status, code = http.StatusServiceUnavailable, "canceled"
		}
		writeWorkerErr(rw, status, code, err)
		return
	}
	if w.cache != nil && p.Key != "" {
		w.cache.AddCluster(p.Key, res.Edges)
	}
	w.served.Add(1)
	writeWorkerJSON(rw, http.StatusOK, ClusterResponse{Edges: res.Edges, Stats: res.Stats, PeerFetch: peerFetch})
}

// serveFactor handles a factorization job: reassemble the shipped block,
// run the deterministic sparse Cholesky under the worker semaphore, and
// return the serialized factor. Factors are not cached worker-side — the
// coordinator's FactorCache already deduplicates across rebuilds, and a
// block's values change whenever neighboring clusters' stitch decisions
// do, so the fingerprint alone cannot prove a cached factor current.
func (w *Worker) serveFactor(rw http.ResponseWriter, r *http.Request, p *ClusterPayload) {
	sub, err := p.Factor.csc()
	if err != nil {
		w.failures.Add(1)
		writeWorkerErr(rw, http.StatusBadRequest, "invalid_request", err)
		return
	}
	ctx := r.Context()
	select {
	case w.sem <- struct{}{}:
		defer func() { <-w.sem }()
	case <-ctx.Done():
		w.failures.Add(1)
		writeWorkerErr(rw, http.StatusServiceUnavailable, "canceled", ctx.Err())
		return
	}
	f, err := chol.New(sub, chol.Options{})
	if err != nil {
		w.failures.Add(1)
		status, code := http.StatusUnprocessableEntity, "not_spd"
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			status, code = http.StatusServiceUnavailable, "canceled"
		}
		writeWorkerErr(rw, status, code, err)
		return
	}
	w.factorsBuilt.Add(1)
	writeWorkerJSON(rw, http.StatusOK, ClusterResponse{Key: p.Key, Factor: wireFactorOf(f)})
}

// peerFetch tries the one-hop cache fetch against the previous owner the
// coordinator named. The fetched entry is validated as strictly as the
// coordinator validates a build result — Key echo plus every edge checked
// against this payload's own cluster — so a stale previous-owner epoch
// (or a confused peer) can cost one wasted round trip but can never
// inject a wrong-key entry into the cache.
func (w *Worker) peerFetch(ctx context.Context, p *ClusterPayload, req *shard.ClusterRequest) ([][2]int, bool) {
	w.peerFetches.Add(1)
	fctx, cancel := context.WithTimeout(ctx, w.opts.PeerTimeout)
	defer cancel()
	u := p.PrevOwner + "/v2/cluster/" + url.PathEscape(p.Key)
	hreq, err := http.NewRequestWithContext(fctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, false
	}
	resp, err := w.opts.Client.Do(hreq)
	if err != nil {
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, false
	}
	var cr ClusterResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxClusterBody)).Decode(&cr); err != nil {
		return nil, false
	}
	if cr.Key != p.Key {
		return nil, false
	}
	if err := validateResult(req, &cr, validPairs(req.Cluster)); err != nil {
		return nil, false
	}
	w.peerHits.Add(1)
	return cr.Edges, true
}

// ServeClusterGet is the GET /v2/cluster/{key} handler: the peer side of
// the fetch. It only reads the cache — it never builds and never fetches
// onward, so fetch chains and loops are impossible by construction (a
// worker asking itself just earns one 404).
func (w *Worker) ServeClusterGet(rw http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if key == "" || w.cache == nil {
		writeWorkerErr(rw, http.StatusNotFound, "not_found", errors.New("no cached cluster"))
		return
	}
	pairs, ok := w.cache.GetCluster(key)
	if !ok {
		writeWorkerErr(rw, http.StatusNotFound, "not_found", fmt.Errorf("cluster %s not cached", key))
		return
	}
	w.peerServed.Add(1)
	writeWorkerJSON(rw, http.StatusOK, ClusterResponse{Edges: pairs, Cached: true, Key: key})
}

func writeWorkerJSON(rw http.ResponseWriter, status int, v any) {
	buf, err := json.Marshal(v)
	if err != nil {
		status = http.StatusInternalServerError
		buf = []byte(`{"error":"unencodable response","code":"internal"}`)
	}
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(status)
	rw.Write(append(buf, '\n'))
}

func writeWorkerErr(rw http.ResponseWriter, status int, code string, err error) {
	writeWorkerJSON(rw, status, errorResponse{Error: err.Error(), Code: code})
}
