package fabric_test

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/gen"
	"repro/internal/shard"
	"repro/internal/sparsify"
)

// mapCache is a minimal shard.ClusterCache for worker-side caching tests.
type mapCache struct {
	mu sync.Mutex
	m  map[string][][2]int
}

func newMapCache() *mapCache { return &mapCache{m: make(map[string][][2]int)} }

func (c *mapCache) GetCluster(key string) ([][2]int, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.m[key]
	return p, ok
}

func (c *mapCache) AddCluster(key string, edges [][2]int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[key] = edges
}

// startWorker serves one fabric worker over httptest, optionally behind a
// middleware (nil = direct).
func startWorker(t *testing.T, cache shard.ClusterCache, wrap func(http.Handler) http.Handler) (*httptest.Server, *fabric.Worker) {
	t.Helper()
	w := fabric.NewWorker(cache, 2)
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v2/cluster", w.ServeCluster)
	var h http.Handler = mux
	if wrap != nil {
		h = wrap(mux)
	}
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	return ts, w
}

// clusterReq builds one real dispatcher request: the first cluster of a
// 2-way plan over a grid (large enough not to be a tiny-cluster shortcut).
func clusterReq(t *testing.T) *shard.ClusterRequest {
	t.Helper()
	g := gen.Grid2D(16, 16, 2)
	plan, err := shard.NewPlan(context.Background(), g, shard.Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	cl := &plan.Clusters[0]
	if cl.Local.M() <= 32 {
		t.Fatalf("test cluster has %d edges; want > tiny-cluster threshold", cl.Local.M())
	}
	return &shard.ClusterRequest{
		Index:   0,
		Key:     "test-cluster-key",
		Cluster: cl,
		Opts:    sparsify.Options{Workers: 1, Seed: 11},
	}
}

// wantResult is the in-process ground truth for a request.
func wantResult(t *testing.T, req *shard.ClusterRequest) *shard.ClusterResult {
	t.Helper()
	res, err := shard.BuildCluster(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestFleetBuildMatchesLocal is the fabric's core guarantee: a sharded
// build dispatched over a two-worker HTTP fleet is bit-for-bit the build
// the same configuration produces in-process — same sparsifier edges,
// same PCG iteration count — because per-cluster seeds and fingerprints
// travel with each request and float64 survives JSON exactly.
func TestFleetBuildMatchesLocal(t *testing.T) {
	g := gen.Grid2D(20, 20, 3)
	cfg := core.Config{
		ShardThreshold: 100,
		Shards:         4,
		Sparsify:       sparsify.Options{Seed: 5},
	}

	local, err := core.NewSparsifier(context.Background(), g, cfg)
	if err != nil {
		t.Fatal(err)
	}

	w1, _ := startWorker(t, newMapCache(), nil)
	w2, _ := startWorker(t, newMapCache(), nil)
	remote := fabric.NewRemote([]string{w1.URL, w2.URL}, fabric.Options{})
	fcfg := cfg
	fcfg.Dispatcher = remote
	fleet, err := core.NewSparsifier(context.Background(), g, fcfg)
	if err != nil {
		t.Fatal(err)
	}

	ls, fs := local.SparsifierGraph(), fleet.SparsifierGraph()
	if ls.M() != fs.M() {
		t.Fatalf("fleet sparsifier has %d edges, local %d", fs.M(), ls.M())
	}
	for i := range ls.Edges {
		if ls.Edges[i] != fs.Edges[i] {
			t.Fatalf("edge %d differs: local %+v, fleet %+v", i, ls.Edges[i], fs.Edges[i])
		}
	}
	st := fleet.ShardStats()
	if st == nil || st.ClustersRemote == 0 {
		t.Fatalf("fleet build reports no remote clusters: %+v", st)
	}
	if rs := remote.Stats(); rs.RemoteClusters != int64(st.ClustersRemote) || rs.FallbackLocal != 0 {
		t.Fatalf("dispatcher stats disagree: %+v vs build's %d remote", rs, st.ClustersRemote)
	}

	rng := rand.New(rand.NewSource(9))
	b := make([]float64, g.N)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	sl, err := local.Solve(context.Background(), b)
	if err != nil {
		t.Fatal(err)
	}
	sf, err := fleet.Solve(context.Background(), b)
	if err != nil {
		t.Fatal(err)
	}
	if sl.Iterations != sf.Iterations {
		t.Fatalf("PCG iterations differ: local %d, fleet %d", sl.Iterations, sf.Iterations)
	}
}

// TestRetryAfter5xx kills a worker's first response with a 500 and checks
// the dispatcher retries the attempt and still lands the correct result.
func TestRetryAfter5xx(t *testing.T) {
	var first atomic.Bool
	first.Store(true)
	ts, _ := startWorker(t, nil, func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if first.CompareAndSwap(true, false) {
				http.Error(w, "transient worker fault", http.StatusInternalServerError)
				return
			}
			next.ServeHTTP(w, r)
		})
	})
	remote := fabric.NewRemote([]string{ts.URL}, fabric.Options{Backoff: 1})

	req := clusterReq(t)
	want := wantResult(t, req)
	got, err := remote.Dispatch(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Remote || !reflect.DeepEqual(got.Edges, want.Edges) {
		t.Fatalf("retried dispatch returned wrong result (remote=%v, %d edges, want %d)",
			got.Remote, len(got.Edges), len(want.Edges))
	}
	st := remote.Stats()
	if len(st.Workers) != 1 || st.Workers[0].Failed != 1 || st.Workers[0].Retried != 1 {
		t.Fatalf("expected 1 failure + 1 retry on the worker, got %+v", st.Workers)
	}
	if st.Workers[0].LastError == "" {
		t.Fatal("worker health lost the failure detail")
	}
	if st.RemoteClusters != 1 || st.FallbackLocal != 0 {
		t.Fatalf("dispatch should have succeeded remotely: %+v", st)
	}
}

// TestFleetDownFallsBackToLocal points the dispatcher at a dead address
// and checks the build degrades to in-process execution — correct result,
// degradation counted.
func TestFleetDownFallsBackToLocal(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close() // connection refused from here on
	remote := fabric.NewRemote([]string{dead.URL}, fabric.Options{Retries: -1, Backoff: 1})

	req := clusterReq(t)
	want := wantResult(t, req)
	got, err := remote.Dispatch(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if got.Remote || !reflect.DeepEqual(got.Edges, want.Edges) {
		t.Fatalf("fallback result wrong (remote=%v)", got.Remote)
	}
	st := remote.Stats()
	if st.FallbackLocal != 1 || st.RemoteClusters != 0 {
		t.Fatalf("degradation not recorded: %+v", st)
	}
	if len(st.Workers) != 1 || st.Workers[0].Failed == 0 {
		t.Fatalf("dead worker not marked failed: %+v", st.Workers)
	}
}

// TestMalformedResultRejected serves a syntactically valid response whose
// edges are not the cluster's, and checks the dispatcher refuses to stitch
// it in, falling back to the correct local build instead.
func TestMalformedResultRejected(t *testing.T) {
	bogus := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		// Endpoint pair [0, 999999] exists in no cluster of the test graph.
		w.Write([]byte(`{"edges":[[0,999999]],"stats":{}}`))
	}))
	t.Cleanup(bogus.Close)
	remote := fabric.NewRemote([]string{bogus.URL}, fabric.Options{Retries: -1, Backoff: 1})

	req := clusterReq(t)
	want := wantResult(t, req)
	got, err := remote.Dispatch(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if got.Remote || !reflect.DeepEqual(got.Edges, want.Edges) {
		t.Fatal("malformed remote result was not replaced by the local build")
	}
	st := remote.Stats()
	if st.FallbackLocal != 1 || st.Workers[0].Failed != 1 {
		t.Fatalf("malformed result not counted as a failure: %+v", st)
	}
}

// TestWorkerCacheHit dispatches the same cluster twice against one worker
// and checks the second answer comes from the worker's cluster cache.
func TestWorkerCacheHit(t *testing.T) {
	ts, w := startWorker(t, newMapCache(), nil)
	remote := fabric.NewRemote([]string{ts.URL}, fabric.Options{})

	req := clusterReq(t)
	first, err := remote.Dispatch(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	second, err := remote.Dispatch(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first.Edges, second.Edges) {
		t.Fatal("cached dispatch returned different edges")
	}
	if st := w.Stats(); st.Served != 2 || st.CacheHits != 1 {
		t.Fatalf("worker stats = %+v, want served=2 cache_hits=1", st)
	}
}

// TestWorkerRejectsMalformedPayloads drives the worker handler directly
// with broken bodies and checks the structured 400s.
func TestWorkerRejectsMalformedPayloads(t *testing.T) {
	ts, _ := startWorker(t, nil, nil)
	for name, body := range map[string]string{
		"not json":        `{"key":`,
		"no vertices":     `{"key":"k","n":0,"vertices":[],"edges":[],"opts":{"method":0,"seed":1}}`,
		"vertex mismatch": `{"key":"k","n":3,"vertices":[0,1],"edges":[[0,1,1],[1,2,1]],"opts":{"method":0,"seed":1}}`,
		"float endpoint":  `{"key":"k","n":2,"vertices":[0,1],"edges":[[0,1.5,1]],"opts":{"method":0,"seed":1}}`,
	} {
		resp, err := http.Post(ts.URL+"/v2/cluster", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		var e struct {
			Error string `json:"error"`
			Code  string `json:"code"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
			t.Fatalf("%s: decoding error body: %v", name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest || e.Code != "invalid_request" {
			t.Fatalf("%s: status %d code %q, want 400 invalid_request", name, resp.StatusCode, e.Code)
		}
	}
}

// TestEmptyFleetDispatchesLocally checks the zero-worker Remote is a
// working dispatcher (configuration convenience: flipping the fleet off
// without changing call sites).
func TestEmptyFleetDispatchesLocally(t *testing.T) {
	remote := fabric.NewRemote(nil, fabric.Options{})
	req := clusterReq(t)
	want := wantResult(t, req)
	got, err := remote.Dispatch(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if got.Remote || !reflect.DeepEqual(got.Edges, want.Edges) {
		t.Fatal("empty-fleet dispatch did not run the local build")
	}
	if st := remote.Stats(); st.FallbackLocal != 1 {
		t.Fatalf("empty-fleet dispatch not counted as fallback: %+v", st)
	}
}
