package fabric_test

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/gen"
	"repro/internal/precond"
	"repro/internal/sparsify"
)

// Fault classes the proxy injects. Each models a distinct production
// failure: a straggling worker, a crashing handler, a dying TCP
// connection, a response cut off mid-body, and a worker returning
// payloads that parse but are wrong in a detectable way.
const (
	faultDelay    = "delay"
	fault5xx      = "5xx"
	faultReset    = "reset"
	faultTruncate = "truncate"
	faultCorrupt  = "corrupt"
	faultMixed    = "mixed" // per-request choice among the hard classes
)

// faultProxy sits between the Remote dispatcher and a real worker,
// injecting one fault class per request. Which requests are hit — and
// which corruption or mixed sub-class they get — derives from the seed
// and the request counter alone (splitmix64), so a failing run replays
// bit-identically from its seed.
type faultProxy struct {
	t       *testing.T
	backend http.Handler
	class   string
	rate    float64 // fraction of requests faulted; ≥1 = every request
	seed    uint64

	n        atomic.Uint64
	injected atomic.Int64
}

func newFaultProxy(t *testing.T, backend http.Handler, class string, rate float64, seed uint64) *faultProxy {
	return &faultProxy{t: t, backend: backend, class: class, rate: rate, seed: seed}
}

// mix is splitmix64: the per-request deterministic random source.
func (fp *faultProxy) mix(k, salt uint64) uint64 {
	x := fp.seed + (k+1)*0x9e3779b97f4a7c15 + salt*0xd1342543de82ef95
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func (fp *faultProxy) ServeHTTP(rw http.ResponseWriter, r *http.Request) {
	k := fp.n.Add(1) - 1
	// The first request through a proxy always faults; later ones fault
	// at rate. Rendezvous placement depends on the kernel-assigned
	// httptest ports, so how many requests each proxy sees varies run to
	// run — the floor keeps "every sub-rate proxy injected something"
	// true by construction, while the bit-identity assertions must hold
	// under any injection pattern anyway.
	if k > 0 && fp.rate < 1 && float64(fp.mix(k, 0)>>11)/float64(1<<53) >= fp.rate {
		fp.backend.ServeHTTP(rw, r)
		return
	}
	class := fp.class
	if class == faultMixed {
		class = []string{fault5xx, faultReset, faultTruncate, faultCorrupt}[fp.mix(k, 1)%4]
	}
	fp.injected.Add(1)
	switch class {
	case faultDelay:
		time.Sleep(20 * time.Millisecond)
		fp.backend.ServeHTTP(rw, r)
	case fault5xx:
		http.Error(rw, "injected worker crash", http.StatusInternalServerError)
	case faultReset:
		// Kill the TCP connection without an HTTP response: the client
		// sees a reset/EOF, not a status.
		conn, _, err := rw.(http.Hijacker).Hijack()
		if err != nil {
			fp.t.Errorf("hijack for reset: %v", err)
			return
		}
		conn.Close()
	case faultTruncate:
		// A full header promising the whole body, then half of it: the
		// decoder fails with an unexpected EOF mid-object.
		rec := httptest.NewRecorder()
		fp.backend.ServeHTTP(rec, r)
		body := rec.Body.Bytes()
		conn, bw, err := rw.(http.Hijacker).Hijack()
		if err != nil {
			fp.t.Errorf("hijack for truncate: %v", err)
			return
		}
		fmt.Fprintf(bw, "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: %d\r\n\r\n", len(body))
		bw.Write(body[:len(body)/2])
		bw.Flush()
		conn.Close()
	case faultCorrupt:
		rec := httptest.NewRecorder()
		fp.backend.ServeHTTP(rec, r)
		fp.corrupt(rw, rec, k)
	default:
		fp.t.Errorf("unknown fault class %q", class)
	}
}

// corrupt rewrites a successful worker response into one that parses (or
// deliberately doesn't) but must be rejected by the coordinator's
// validation. Every corruption here is *detectable by design* —
// structural damage, foreign or duplicated edges, a broken SPD witness.
// A value-level corruption that keeps the factor SPD is undetectable by
// construction and is out of scope: the fabric trusts its workers on
// values exactly as far as the FactorCache staleness contract already
// does (see precond.FactorCache).
func (fp *faultProxy) corrupt(rw http.ResponseWriter, rec *httptest.ResponseRecorder, k uint64) {
	if rec.Code != http.StatusOK {
		// Pass error responses through; there is nothing to corrupt.
		rw.WriteHeader(rec.Code)
		rw.Write(rec.Body.Bytes())
		return
	}
	var cr fabric.ClusterResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &cr); err != nil {
		fp.t.Errorf("decoding worker response to corrupt it: %v", err)
		return
	}
	rw.Header().Set("Content-Type", "application/json")
	if cr.Factor != nil {
		switch fp.mix(k, 2) % 4 {
		case 0: // nonpositive diagonal: the SPD witness fails
			cr.Factor.Val[0] = -cr.Factor.Val[0]
		case 1: // dimension lie: block-size check fails
			cr.Factor.N++
		case 2: // duplicate permutation entry: not a permutation
			if cr.Factor.N >= 2 {
				cr.Factor.Perm[0] = cr.Factor.Perm[1]
			} else {
				cr.Factor.Perm[0] = cr.Factor.N + 7
			}
		case 3: // garbage bytes: decode fails outright
			rw.Write([]byte(`{"factor":{"n":`))
			return
		}
	} else {
		switch fp.mix(k, 2) % 3 {
		case 0: // duplicated edge
			cr.Edges = append(cr.Edges, cr.Edges[0])
		case 1: // foreign endpoint
			cr.Edges[0] = [2]int{0, 1 << 30}
		case 2: // too few edges to span the cluster
			cr.Edges = cr.Edges[:1]
		}
	}
	buf, err := json.Marshal(&cr)
	if err != nil {
		fp.t.Errorf("re-encoding corrupted response: %v", err)
		return
	}
	rw.Write(buf)
}

// startFaultedWorker serves a real worker behind a fault proxy.
func startFaultedWorker(t *testing.T, class string, rate float64, seed uint64) (*httptest.Server, *faultProxy) {
	t.Helper()
	w := fabric.NewWorker(newMapCache(), 2)
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v2/cluster", w.ServeCluster)
	fp := newFaultProxy(t, mux, class, rate, seed)
	ts := httptest.NewServer(fp)
	t.Cleanup(ts.Close)
	return ts, fp
}

// faultCfg is the shared build configuration of the fault tests: big
// enough for several non-tiny clusters, small enough to build many times.
func faultCfg() core.Config {
	return core.Config{
		ShardThreshold: 100,
		Shards:         4,
		Sparsify:       sparsify.Options{Seed: 5},
	}
}

// buildAndSolve builds a sparsifier under cfg and solves one fixed
// right-hand side, returning the handle and the PCG iteration count.
func buildAndSolve(t *testing.T, cfg core.Config) (*core.Sparsifier, int) {
	t.Helper()
	g := gen.Grid2D(20, 20, 3)
	s, err := core.NewSparsifier(context.Background(), g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	b := make([]float64, g.N)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	res, err := s.Solve(context.Background(), b)
	if err != nil {
		t.Fatal(err)
	}
	return s, res.Iterations
}

// sameSparsifier asserts two handles hold bit-identical sparsifiers.
func sameSparsifier(t *testing.T, name string, want, got *core.Sparsifier) {
	t.Helper()
	ws, gs := want.SparsifierGraph(), got.SparsifierGraph()
	if ws.M() != gs.M() {
		t.Fatalf("%s: sparsifier has %d edges, want %d", name, gs.M(), ws.M())
	}
	for i := range ws.Edges {
		if ws.Edges[i] != gs.Edges[i] {
			t.Fatalf("%s: edge %d differs: %+v vs %+v", name, i, gs.Edges[i], ws.Edges[i])
		}
	}
}

// TestEveryFaultClassDegradesToLocal is the harness's core table: with a
// single worker that fails EVERY request in one specific way, every
// cluster dispatch must degrade to the in-process fallback and the build
// must come out bit-identical to a never-dispatched one — same edges,
// same PCG iteration count — with the degradation visible in Stats.
func TestEveryFaultClassDegradesToLocal(t *testing.T) {
	want, wantIters := buildAndSolve(t, faultCfg())

	for _, class := range []string{fault5xx, faultReset, faultTruncate, faultCorrupt} {
		t.Run(class, func(t *testing.T) {
			ts, fp := startFaultedWorker(t, class, 1, 42)
			remote := fabric.NewRemote([]string{ts.URL}, fabric.Options{
				Retries: -1,
				Backoff: time.Millisecond,
				Timeout: 10 * time.Second,
			})
			cfg := faultCfg()
			cfg.Dispatcher = remote
			got, gotIters := buildAndSolve(t, cfg)

			sameSparsifier(t, class, want, got)
			if gotIters != wantIters {
				t.Fatalf("PCG iterations differ under %s faults: %d vs %d", class, gotIters, wantIters)
			}
			st := remote.Stats()
			if st.RemoteClusters != 0 {
				t.Fatalf("%s: %d dispatches counted as remote successes", class, st.RemoteClusters)
			}
			if st.FallbackLocal == 0 {
				t.Fatalf("%s: degradation not recorded: %+v", class, st)
			}
			if fp.injected.Load() == 0 {
				t.Fatalf("%s: proxy injected nothing — the test exercised no fault", class)
			}
			if len(st.Workers) != 1 || st.Workers[0].Failed == 0 {
				t.Fatalf("%s: worker health shows no failures: %+v", class, st.Workers)
			}
		})
	}
}

// TestDelayFaultsStillServeRemotely: injected delays (below the attempt
// deadline) are the one fault class that must NOT degrade — the dispatch
// just takes longer, and the result is still served by the fleet.
func TestDelayFaultsStillServeRemotely(t *testing.T) {
	want, wantIters := buildAndSolve(t, faultCfg())

	ts, fp := startFaultedWorker(t, faultDelay, 1, 7)
	remote := fabric.NewRemote([]string{ts.URL}, fabric.Options{Timeout: 30 * time.Second})
	cfg := faultCfg()
	cfg.Dispatcher = remote
	got, gotIters := buildAndSolve(t, cfg)

	sameSparsifier(t, faultDelay, want, got)
	if gotIters != wantIters {
		t.Fatalf("PCG iterations differ under delays: %d vs %d", gotIters, wantIters)
	}
	st := remote.Stats()
	if st.RemoteClusters == 0 || st.FallbackLocal != 0 {
		t.Fatalf("delayed worker should still serve remotely: %+v", st)
	}
	if fp.injected.Load() == 0 {
		t.Fatal("proxy injected no delays")
	}
}

// TestSeededMixedFaultsStayBitIdentical is the property form: two workers
// behind seeded proxies that each fault a fraction of requests with a
// per-request mix of hard fault classes. Whatever the (deterministic)
// fault pattern does — retries landing on the second worker, hedges,
// full degradation — the build must stay bit-identical to the local one
// and every dispatch must be accounted either remote or fallback.
func TestSeededMixedFaultsStayBitIdentical(t *testing.T) {
	want, wantIters := buildAndSolve(t, faultCfg())

	for _, seed := range []uint64{1, 1337} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			w1, p1 := startFaultedWorker(t, faultMixed, 0.4, seed)
			w2, p2 := startFaultedWorker(t, faultMixed, 0.4, seed+100)
			remote := fabric.NewRemote([]string{w1.URL, w2.URL}, fabric.Options{
				Backoff: time.Millisecond,
				Timeout: 10 * time.Second,
			})
			cfg := faultCfg()
			cfg.Dispatcher = remote
			got, gotIters := buildAndSolve(t, cfg)

			sameSparsifier(t, "mixed", want, got)
			if gotIters != wantIters {
				t.Fatalf("PCG iterations differ under mixed faults: %d vs %d", gotIters, wantIters)
			}
			st := remote.Stats()
			shardStats := got.ShardStats()
			if shardStats == nil {
				t.Fatal("sharded build left no shard stats")
			}
			if int64(shardStats.ClustersRemote) != st.RemoteClusters {
				t.Fatalf("build counted %d remote clusters, dispatcher %d",
					shardStats.ClustersRemote, st.RemoteClusters)
			}
			if p1.injected.Load()+p2.injected.Load() == 0 {
				t.Fatal("seeded proxies injected nothing at rate 0.4")
			}
		})
	}
}

// TestRemoteFactorsMatchLocal pins the tentpole guarantee of remote
// factor builds: a Schwarz preconditioner whose per-cluster factors were
// built by the fleet is bit-identical to one factorized in-process —
// same sparsifier, same PCG iteration count — because the exact
// post-stitch pencil block travels to the worker and float64 survives
// JSON round-trips exactly.
func TestRemoteFactorsMatchLocal(t *testing.T) {
	base := faultCfg()
	base.Precond = precond.Schwarz
	want, wantIters := buildAndSolve(t, base)

	w1, _ := startWorker(t, newMapCache(), nil)
	w2, _ := startWorker(t, newMapCache(), nil)
	remote := fabric.NewRemote([]string{w1.URL, w2.URL}, fabric.Options{})
	cfg := base
	cfg.Dispatcher = remote
	cfg.RemoteFactors = true
	got, gotIters := buildAndSolve(t, cfg)

	sameSparsifier(t, "remote-factors", want, got)
	if gotIters != wantIters {
		t.Fatalf("PCG iterations differ with remote factors: %d vs %d", gotIters, wantIters)
	}
	ps := got.PrecondStats()
	if ps == nil || ps.FactorsRemote == 0 {
		t.Fatalf("no factors counted as remote: %+v", ps)
	}
	st := remote.Stats()
	if st.RemoteFactors == 0 || st.FactorMisses != 0 {
		t.Fatalf("dispatcher factor accounting wrong: %+v", st)
	}
	if int64(ps.FactorsRemote) != st.RemoteFactors {
		t.Fatalf("builder counted %d remote factors, dispatcher %d", ps.FactorsRemote, st.RemoteFactors)
	}
}

// TestCorruptFactorsFallBackLocally: every corrupted factor payload must
// be caught by validation (structure, dimension, SPD witness) and the
// Schwarz builder must fall back to factorizing the block in-process —
// ending in a bit-identical preconditioner, with the misses accounted.
func TestCorruptFactorsFallBackLocally(t *testing.T) {
	base := faultCfg()
	base.Precond = precond.Schwarz
	want, wantIters := buildAndSolve(t, base)

	// This wrapper corrupts only factor responses; cluster builds sail
	// through untouched, so the sparsifier itself is served remotely and
	// the fallback under test is precisely the factor path's.
	w := fabric.NewWorker(newMapCache(), 2)
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v2/cluster", w.ServeCluster)
	fp := newFaultProxy(t, mux, faultCorrupt, 1, 99)
	ts := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, r)
		var cr fabric.ClusterResponse
		if rec.Code == http.StatusOK && json.Unmarshal(rec.Body.Bytes(), &cr) == nil && cr.Factor != nil {
			fp.corrupt(rw, rec, fp.n.Add(1)-1)
			fp.injected.Add(1)
			return
		}
		rw.Header().Set("Content-Type", "application/json")
		rw.WriteHeader(rec.Code)
		rw.Write(rec.Body.Bytes())
	}))
	t.Cleanup(ts.Close)

	remote := fabric.NewRemote([]string{ts.URL}, fabric.Options{Retries: -1, Backoff: time.Millisecond})
	cfg := base
	cfg.Dispatcher = remote
	cfg.RemoteFactors = true
	got, gotIters := buildAndSolve(t, cfg)

	sameSparsifier(t, "corrupt-factors", want, got)
	if gotIters != wantIters {
		t.Fatalf("PCG iterations differ after factor fallback: %d vs %d", gotIters, wantIters)
	}
	ps := got.PrecondStats()
	if ps == nil || ps.FactorsRemote != 0 {
		t.Fatalf("corrupted factors were adopted: %+v", ps)
	}
	st := remote.Stats()
	if st.RemoteFactors != 0 || st.FactorMisses == 0 {
		t.Fatalf("factor degradation not accounted: %+v", st)
	}
	if fp.injected.Load() == 0 {
		t.Fatal("no factor payloads were corrupted — remote factor path never ran")
	}
}
