package fabric

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/shard"
	"repro/internal/sparsify"
)

// TestHedgeCancelsLoser makes whichever worker the rendezvous ranking
// picks as primary hang, and checks the hedge wins on the other worker
// while the straggler's request is canceled — and, critically, that the
// canceled loser is NOT counted as a worker failure (a hedge loss says
// nothing about the worker's health).
func TestHedgeCancelsLoser(t *testing.T) {
	g := gen.Grid2D(16, 16, 2)
	plan, err := shard.NewPlan(context.Background(), g, shard.Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	req := &shard.ClusterRequest{
		Key:     "hedge-test-key",
		Cluster: &plan.Clusters[0],
		Opts:    sparsify.Options{Workers: 1, Seed: 11},
	}
	want, err := shard.BuildCluster(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	slowHost := "" // set after ranking, read per request
	canceled := make(chan struct{}, 2)
	mkServer := func() *httptest.Server {
		w := NewWorker(nil, 2)
		mux := http.NewServeMux()
		mux.HandleFunc("POST /v2/cluster", w.ServeCluster)
		ts := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
			mu.Lock()
			slow := r.Host == slowHost
			mu.Unlock()
			if slow {
				// Drain the body first: the net/http server only watches
				// for client aborts once the request body is consumed, and
				// a canceled dispatch surfaces here as exactly that abort.
				io.Copy(io.Discard, r.Body)
				// Straggle until the dispatcher gives up on us.
				<-r.Context().Done()
				canceled <- struct{}{}
				http.Error(rw, "too slow", http.StatusServiceUnavailable)
				return
			}
			mux.ServeHTTP(rw, r)
		}))
		t.Cleanup(ts.Close)
		return ts
	}
	s1, s2 := mkServer(), mkServer()
	remote := NewRemote([]string{s1.URL, s2.URL}, Options{
		HedgeAfter: 20 * time.Millisecond,
		Retries:    -1,
		Timeout:    30 * time.Second,
	})

	ranked := remote.rank(req.Key)
	if len(ranked) != 2 {
		t.Fatalf("rank returned %d members, want 2", len(ranked))
	}
	primary, secondary := ranked[0], ranked[1]
	mu.Lock()
	slowHost = strings.TrimPrefix(primary.url, "http://")
	mu.Unlock()

	got, err := remote.Dispatch(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Remote || !reflect.DeepEqual(got.Edges, want.Edges) {
		t.Fatal("hedged dispatch returned the wrong result")
	}
	select {
	case <-canceled:
	case <-time.After(5 * time.Second):
		t.Fatal("straggler request was never canceled")
	}
	if n := secondary.hedged.Load(); n != 1 {
		t.Fatalf("secondary hedged count = %d, want 1", n)
	}
	// The loser lost a race, not its health: cancellation must not count
	// as a failure or push the worker toward its down threshold.
	if n := primary.failed.Load(); n != 0 {
		t.Fatalf("canceled straggler counted as %d failures, want 0", n)
	}
	// The loser's dispatch was wasted work and must say so: it was counted
	// into dispatched when the request went out, and without the
	// hedged_wasted column that late-canceled (or late-succeeding) attempt
	// would inflate the loser's useful-work count with no offsetting
	// signal. The winner's side stays clean.
	if n := primary.hedgedWasted.Load(); n != 1 {
		t.Fatalf("losing primary hedged_wasted = %d, want 1", n)
	}
	if n := secondary.hedgedWasted.Load(); n != 0 {
		t.Fatalf("winning hedge hedged_wasted = %d, want 0", n)
	}
	st := remote.Stats()
	for _, wh := range st.Workers {
		if !wh.Up {
			t.Fatalf("worker %s marked down after a hedge race: %+v", wh.URL, wh)
		}
		want := int64(0)
		if wh.URL == primary.url {
			want = 1
		}
		if wh.HedgedWasted != want {
			t.Fatalf("worker %s snapshot hedged_wasted = %d, want %d", wh.URL, wh.HedgedWasted, want)
		}
	}
	if st.RemoteClusters != 1 || st.FallbackLocal != 0 {
		t.Fatalf("hedged dispatch miscounted: %+v", st)
	}
}

// TestMembershipEpochs pins the epoch machinery the peer fetch rides on:
// the first observed up-set is epoch 1, an unchanged set never bumps,
// a change rotates the old set into the previous slot, and topOwner
// computes the rendezvous-first member of that retained set — the worker
// a moved key's entry actually lives on.
func TestMembershipEpochs(t *testing.T) {
	r := NewRemote([]string{"http://a:1", "http://b:1", "http://c:1"}, Options{})
	epoch, prev := r.noteMembership(r.rank("k"))
	if epoch != 1 || prev != nil {
		t.Fatalf("first observation: epoch=%d prev=%v, want 1/nil", epoch, prev)
	}
	if e2, _ := r.noteMembership(r.rank("another")); e2 != 1 {
		t.Fatalf("unchanged up-set bumped the epoch to %d", e2)
	}

	// Find a key c owns, then drop c: the key must move, and topOwner
	// over the previous up-set must name c.
	var moved string
	for _, k := range []string{"k0", "k1", "k2", "k3", "k4", "k5", "k6", "k7"} {
		if r.rank(k)[0].url == "http://c:1" {
			moved = k
			break
		}
	}
	if moved == "" {
		t.Skip("no probe key ranked c first (astronomically unlikely)")
	}
	r.SetWorkers([]string{"http://a:1", "http://b:1"})
	epoch, prev = r.noteMembership(r.rank(moved))
	if epoch != 2 {
		t.Fatalf("membership change did not bump the epoch: %d", epoch)
	}
	if got := topOwner(moved, prev); got != "http://c:1" {
		t.Fatalf("previous owner of moved key = %q, want the dropped worker", got)
	}
	if got := r.rank(moved)[0].url; got == "http://c:1" {
		t.Fatal("dropped worker still ranked first")
	}
}

// TestSetWorkersKeepsSurvivorStats checks a membership swap preserves the
// counters and health state of members whose URL survives — churn must
// not amnesia the operator's view of a long-lived worker.
func TestSetWorkersKeepsSurvivorStats(t *testing.T) {
	r := NewRemote([]string{"http://a:1", "http://b:1"}, Options{})
	r.members[0].dispatched.Add(7)
	r.members[0].failed.Add(2)
	survivor := r.members[0].url
	r.SetWorkers([]string{survivor, "http://d:1"})
	st := r.Stats()
	if len(st.Workers) != 2 {
		t.Fatalf("got %d workers, want 2", len(st.Workers))
	}
	for _, wh := range st.Workers {
		switch wh.URL {
		case survivor:
			if wh.Dispatched != 7 || wh.Failed != 2 {
				t.Fatalf("survivor lost its counters: %+v", wh)
			}
		case "http://d:1":
			if wh.Dispatched != 0 {
				t.Fatalf("new member born with counters: %+v", wh)
			}
		default:
			t.Fatalf("unexpected member %q", wh.URL)
		}
	}
}

// TestValidateResult covers the coordinator-side result validation that
// keeps a buggy or skewed worker from corrupting the stitched sparsifier.
func TestValidateResult(t *testing.T) {
	local := graph.MustNew(3, []graph.Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}, {U: 0, V: 2, W: 1},
	})
	cl := &shard.Cluster{Vertices: []int{10, 11, 12}, Local: local}
	req := &shard.ClusterRequest{Cluster: cl}
	valid := validPairs(cl)

	cases := []struct {
		name  string
		edges [][2]int
		ok    bool
	}{
		{"spanning subset", [][2]int{{10, 11}, {11, 12}}, true},
		{"all edges", [][2]int{{10, 11}, {11, 12}, {10, 12}}, true},
		{"reversed endpoints", [][2]int{{11, 10}, {12, 11}}, true},
		{"too few to span", [][2]int{{10, 11}}, false},
		{"foreign edge", [][2]int{{10, 11}, {10, 13}}, false},
		{"duplicate pair", [][2]int{{10, 11}, {11, 10}}, false},
		{"more than the cluster has", [][2]int{{10, 11}, {11, 12}, {10, 12}, {10, 11}}, false},
	}
	for _, tc := range cases {
		err := validateResult(req, &ClusterResponse{Edges: tc.edges}, valid)
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected rejection: %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: malformed result accepted", tc.name)
		}
	}
}

// TestRendezvousStability pins the placement property the worker caches
// depend on: the same key ranks the same worker first call after call,
// and most keys keep their primary when an unrelated worker joins.
func TestRendezvousStability(t *testing.T) {
	urls := []string{"http://a:1", "http://b:1", "http://c:1"}
	r := NewRemote(urls, Options{})
	keys := []string{"c0-4-0011aabbccdd0011", "c1-4-2233aabbccdd0011", "c2-4-4455aabbccdd0011", "k", "another-key"}
	for _, k := range keys {
		first := r.rank(k)[0].url
		for i := 0; i < 3; i++ {
			if got := r.rank(k)[0].url; got != first {
				t.Fatalf("key %q moved from %s to %s with no membership change", k, first, got)
			}
		}
	}
	// Adding a member must only ever steal keys for itself — no key may
	// move between surviving members (the rendezvous property).
	grown := NewRemote(append(urls, "http://d:1"), Options{})
	for _, k := range keys {
		before, after := r.rank(k)[0].url, grown.rank(k)[0].url
		if after != before && after != "http://d:1" {
			t.Fatalf("key %q moved from %s to %s when d joined", k, before, after)
		}
	}
}
