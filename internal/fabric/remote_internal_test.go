package fabric

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/shard"
	"repro/internal/sparsify"
)

// TestHedgeCancelsLoser makes whichever worker the rendezvous ranking
// picks as primary hang, and checks the hedge wins on the other worker
// while the straggler's request is canceled — and, critically, that the
// canceled loser is NOT counted as a worker failure (a hedge loss says
// nothing about the worker's health).
func TestHedgeCancelsLoser(t *testing.T) {
	g := gen.Grid2D(16, 16, 2)
	plan, err := shard.NewPlan(context.Background(), g, shard.Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	req := &shard.ClusterRequest{
		Key:     "hedge-test-key",
		Cluster: &plan.Clusters[0],
		Opts:    sparsify.Options{Workers: 1, Seed: 11},
	}
	want, err := shard.BuildCluster(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	slowHost := "" // set after ranking, read per request
	canceled := make(chan struct{}, 2)
	mkServer := func() *httptest.Server {
		w := NewWorker(nil, 2)
		mux := http.NewServeMux()
		mux.HandleFunc("POST /v2/cluster", w.ServeCluster)
		ts := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
			mu.Lock()
			slow := r.Host == slowHost
			mu.Unlock()
			if slow {
				// Drain the body first: the net/http server only watches
				// for client aborts once the request body is consumed, and
				// a canceled dispatch surfaces here as exactly that abort.
				io.Copy(io.Discard, r.Body)
				// Straggle until the dispatcher gives up on us.
				<-r.Context().Done()
				canceled <- struct{}{}
				http.Error(rw, "too slow", http.StatusServiceUnavailable)
				return
			}
			mux.ServeHTTP(rw, r)
		}))
		t.Cleanup(ts.Close)
		return ts
	}
	s1, s2 := mkServer(), mkServer()
	remote := NewRemote([]string{s1.URL, s2.URL}, Options{
		HedgeAfter: 20 * time.Millisecond,
		Retries:    -1,
		Timeout:    30 * time.Second,
	})

	ranked := remote.rank(req.Key)
	if len(ranked) != 2 {
		t.Fatalf("rank returned %d members, want 2", len(ranked))
	}
	primary, secondary := ranked[0], ranked[1]
	mu.Lock()
	slowHost = strings.TrimPrefix(primary.url, "http://")
	mu.Unlock()

	got, err := remote.Dispatch(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Remote || !reflect.DeepEqual(got.Edges, want.Edges) {
		t.Fatal("hedged dispatch returned the wrong result")
	}
	select {
	case <-canceled:
	case <-time.After(5 * time.Second):
		t.Fatal("straggler request was never canceled")
	}
	if n := secondary.hedged.Load(); n != 1 {
		t.Fatalf("secondary hedged count = %d, want 1", n)
	}
	// The loser lost a race, not its health: cancellation must not count
	// as a failure or push the worker toward its down threshold.
	if n := primary.failed.Load(); n != 0 {
		t.Fatalf("canceled straggler counted as %d failures, want 0", n)
	}
	st := remote.Stats()
	for _, wh := range st.Workers {
		if !wh.Up {
			t.Fatalf("worker %s marked down after a hedge race: %+v", wh.URL, wh)
		}
	}
	if st.RemoteClusters != 1 || st.FallbackLocal != 0 {
		t.Fatalf("hedged dispatch miscounted: %+v", st)
	}
}

// TestValidateResult covers the coordinator-side result validation that
// keeps a buggy or skewed worker from corrupting the stitched sparsifier.
func TestValidateResult(t *testing.T) {
	local := graph.MustNew(3, []graph.Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}, {U: 0, V: 2, W: 1},
	})
	cl := &shard.Cluster{Vertices: []int{10, 11, 12}, Local: local}
	req := &shard.ClusterRequest{Cluster: cl}
	valid := validPairs(cl)

	cases := []struct {
		name  string
		edges [][2]int
		ok    bool
	}{
		{"spanning subset", [][2]int{{10, 11}, {11, 12}}, true},
		{"all edges", [][2]int{{10, 11}, {11, 12}, {10, 12}}, true},
		{"reversed endpoints", [][2]int{{11, 10}, {12, 11}}, true},
		{"too few to span", [][2]int{{10, 11}}, false},
		{"foreign edge", [][2]int{{10, 11}, {10, 13}}, false},
		{"duplicate pair", [][2]int{{10, 11}, {11, 10}}, false},
		{"more than the cluster has", [][2]int{{10, 11}, {11, 12}, {10, 12}, {10, 11}}, false},
	}
	for _, tc := range cases {
		err := validateResult(req, &ClusterResponse{Edges: tc.edges}, valid)
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected rejection: %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: malformed result accepted", tc.name)
		}
	}
}

// TestRendezvousStability pins the placement property the worker caches
// depend on: the same key ranks the same worker first call after call,
// and most keys keep their primary when an unrelated worker joins.
func TestRendezvousStability(t *testing.T) {
	urls := []string{"http://a:1", "http://b:1", "http://c:1"}
	r := NewRemote(urls, Options{})
	keys := []string{"c0-4-0011aabbccdd0011", "c1-4-2233aabbccdd0011", "c2-4-4455aabbccdd0011", "k", "another-key"}
	for _, k := range keys {
		first := r.rank(k)[0].url
		for i := 0; i < 3; i++ {
			if got := r.rank(k)[0].url; got != first {
				t.Fatalf("key %q moved from %s to %s with no membership change", k, first, got)
			}
		}
	}
	// Adding a member must only ever steal keys for itself — no key may
	// move between surviving members (the rendezvous property).
	grown := NewRemote(append(urls, "http://d:1"), Options{})
	for _, k := range keys {
		before, after := r.rank(k)[0].url, grown.rank(k)[0].url
		if after != before && after != "http://d:1" {
			t.Fatalf("key %q moved from %s to %s when d joined", k, before, after)
		}
	}
}
