package fabric_test

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/shard"
)

// streamReqs fans one cluster out under distinct keys so completion
// order and per-key accounting are observable.
func streamReqs(t *testing.T, n int) []*shard.ClusterRequest {
	t.Helper()
	base := clusterReq(t)
	reqs := make([]*shard.ClusterRequest, n)
	for i := range reqs {
		r := *base
		r.Key = fmt.Sprintf("stream-key-%02d", i)
		reqs[i] = &r
	}
	return reqs
}

// TestDispatchStreamDeliversAll: every request produces exactly one
// Streamed outcome, each with correct edges, and the first/last-result
// telemetry is ordered and populated.
func TestDispatchStreamDeliversAll(t *testing.T) {
	want := wantResult(t, clusterReq(t))
	ts1, _ := startWorker(t, newMapCache(), nil)
	ts2, _ := startWorker(t, newMapCache(), nil)
	remote := fabric.NewRemote([]string{ts1.URL, ts2.URL}, fabric.Options{Retries: -1})

	reqs := streamReqs(t, 8)
	seen := make(map[string]bool)
	for s := range remote.DispatchStream(context.Background(), reqs, 3) {
		if s.Err != nil {
			t.Fatalf("key %s: %v", s.Req.Key, s.Err)
		}
		if seen[s.Req.Key] {
			t.Fatalf("key %s delivered twice", s.Req.Key)
		}
		seen[s.Req.Key] = true
		if !reflect.DeepEqual(s.Res.Edges, want.Edges) {
			t.Fatalf("key %s streamed wrong edges", s.Req.Key)
		}
	}
	if len(seen) != len(reqs) {
		t.Fatalf("stream delivered %d outcomes, want %d", len(seen), len(reqs))
	}
	st := remote.Stats()
	if st.RemoteClusters != int64(len(reqs)) {
		t.Fatalf("remote clusters = %d, want %d", st.RemoteClusters, len(reqs))
	}
	if st.StreamFirstResultMS <= 0 || st.StreamLastResultMS < st.StreamFirstResultMS {
		t.Fatalf("stream latency telemetry inconsistent: first=%v last=%v",
			st.StreamFirstResultMS, st.StreamLastResultMS)
	}
}

// TestDispatchStreamCancelMidStream cancels the coordinator while slow
// workers still hold most of the stream in flight, then asserts (a)
// every request still produces exactly one outcome — the in-flight ones
// with ctx.Err() — and (b) no producer goroutine outlives the drain.
func TestDispatchStreamCancelMidStream(t *testing.T) {
	var served atomic.Int64
	release := make(chan struct{})
	slow := func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
			if served.Add(1) > 1 {
				// Drain the body first: the net/http server only watches for
				// client aborts once the request body is consumed, and the
				// canceled dispatches must be able to kill these stalls.
				io.Copy(io.Discard, r.Body)
				select {
				case <-release:
				case <-r.Context().Done():
					return
				}
			}
			next.ServeHTTP(rw, r)
		})
	}
	ts, _ := startWorker(t, newMapCache(), slow)
	// Own the transport so the settle loop can retire idle keep-alive
	// conns — their read/write loops would otherwise read as leaks.
	tr := &http.Transport{}
	remote := fabric.NewRemote([]string{ts.URL}, fabric.Options{
		Retries: -1,
		Client:  &http.Client{Transport: tr},
	})
	defer close(release)

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	reqs := streamReqs(t, 8)
	ch := remote.DispatchStream(ctx, reqs, 2)

	// Take the one fast result, then cancel with the rest in flight.
	first := <-ch
	if first.Err != nil {
		t.Fatalf("first streamed result failed: %v", first.Err)
	}
	cancel()

	got := 1
	var canceled int
	for s := range ch {
		got++
		if s.Err != nil && ctx.Err() != nil {
			canceled++
		}
	}
	if got != len(reqs) {
		t.Fatalf("canceled stream delivered %d outcomes, want %d (one per request)", got, len(reqs))
	}
	if canceled == 0 {
		t.Fatal("cancellation produced no canceled outcomes")
	}

	// Leak check: producers and their HTTP machinery must wind down. The
	// settle loop tolerates net/http's own transient goroutines.
	deadline := time.Now().Add(5 * time.Second)
	for {
		tr.CloseIdleConnections()
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutine leak after canceled stream: %d before, %d after", before, n)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDispatchStreamEmpty: a zero-request stream closes immediately.
func TestDispatchStreamEmpty(t *testing.T) {
	remote := fabric.NewRemote(nil, fabric.Options{})
	select {
	case _, ok := <-remote.DispatchStream(context.Background(), nil, 4):
		if ok {
			t.Fatal("empty stream delivered an outcome")
		}
	case <-time.After(time.Second):
		t.Fatal("empty stream never closed")
	}
}
