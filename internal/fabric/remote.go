package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"slices"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/chol"
	"repro/internal/precond"
	"repro/internal/shard"
)

// Defaults for Options' zero values.
const (
	// DefaultTimeout bounds one remote attempt. Cluster builds are
	// seconds-scale at the default shard sizing, so a minute means
	// "this worker is not coming back", not "the cluster is large".
	DefaultTimeout = time.Minute
	// DefaultRetries is how many additional attempts (each on the next
	// worker in rendezvous order) follow a failed first dispatch.
	DefaultRetries = 2
	// DefaultBackoff is the base delay before a retry; it doubles per
	// attempt. Kept short: the retry lands on a different worker, so
	// this is pacing, not recovery waiting.
	DefaultBackoff = 50 * time.Millisecond
	// DefaultFailAfter is the consecutive-failure count that marks a
	// worker down; DefaultProbeAfter how long it stays skipped before
	// the next dispatch probes it again.
	DefaultFailAfter  = 3
	DefaultProbeAfter = 15 * time.Second
)

// Options tunes the Remote dispatcher. Zero values select the defaults
// above; HedgeAfter and Retries use the package convention "0 = default,
// negative = disabled".
type Options struct {
	// Timeout is the per-attempt deadline (primary and hedge share it:
	// the attempt as a whole is abandoned when it passes).
	Timeout time.Duration
	// Retries is the number of additional attempts after the first,
	// each against the next-ranked worker with exponential backoff
	// (0 = DefaultRetries, negative = no retries).
	Retries int
	// Backoff is the base retry delay, doubling per attempt.
	Backoff time.Duration
	// HedgeAfter launches a duplicate request against the next-ranked
	// worker when the primary has not answered within this delay; the
	// first result wins and the loser's request is canceled. 0 disables
	// hedging (stragglers then cost up to Timeout before the retry
	// path takes over).
	HedgeAfter time.Duration
	// FailAfter consecutive failures mark a worker down; it is skipped
	// by placement until ProbeAfter has passed.
	FailAfter  int
	ProbeAfter time.Duration
	// Client overrides the HTTP client (tests; custom transports).
	Client *http.Client
	// Fallback handles cluster builds the fleet could not: every worker
	// down, or retries exhausted. Defaults to Local — the build
	// completes in-process rather than failing, and the degradation is
	// visible in Stats.FallbackLocal.
	Fallback shard.Dispatcher
}

func (o Options) withDefaults() Options {
	if o.Timeout <= 0 {
		o.Timeout = DefaultTimeout
	}
	switch {
	case o.Retries == 0:
		o.Retries = DefaultRetries
	case o.Retries < 0:
		o.Retries = 0
	}
	if o.Backoff <= 0 {
		o.Backoff = DefaultBackoff
	}
	if o.HedgeAfter < 0 {
		o.HedgeAfter = 0
	}
	if o.FailAfter <= 0 {
		o.FailAfter = DefaultFailAfter
	}
	if o.ProbeAfter <= 0 {
		o.ProbeAfter = DefaultProbeAfter
	}
	if o.Client == nil {
		o.Client = &http.Client{}
	}
	if o.Fallback == nil {
		o.Fallback = Local{}
	}
	return o
}

// member is the coordinator's view of one fleet worker.
type member struct {
	url string

	dispatched   atomic.Int64
	retried      atomic.Int64
	hedged       atomic.Int64
	hedgedWasted atomic.Int64
	failed       atomic.Int64

	mu        sync.Mutex
	consec    int
	downUntil time.Time
	lastErr   string
	lastErrAt time.Time
}

func (m *member) up(now time.Time) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return !now.Before(m.downUntil) || m.downUntil.IsZero()
}

func (m *member) noteSuccess() {
	m.mu.Lock()
	m.consec = 0
	m.downUntil = time.Time{}
	m.mu.Unlock()
}

func (m *member) noteFailure(err error, failAfter int, probeAfter time.Duration) {
	m.failed.Add(1)
	m.mu.Lock()
	m.consec++
	if m.consec >= failAfter {
		m.downUntil = time.Now().Add(probeAfter)
	}
	m.lastErr = err.Error()
	m.lastErrAt = time.Now()
	m.mu.Unlock()
}

// Remote is the fleet-backed shard.Dispatcher: it ships cluster payloads
// to workers over HTTP/JSON with rendezvous-hashed placement on the
// cluster fingerprint, per-attempt deadlines, bounded retries with
// backoff, hedged dispatch for stragglers, and graceful degradation to
// the in-process fallback. It also implements shard.StreamDispatcher
// (results delivered in completion order while stragglers are in flight)
// and precond.FactorDispatcher (remote Schwarz factor builds over the
// same wire, placement, and retry machinery). Safe for concurrent use.
type Remote struct {
	opts Options

	memMu   sync.RWMutex
	members []*member

	// Membership epochs for the workers' peer cache fetch: every rank
	// snapshot of the up-set is compared against the previous one, and a
	// change bumps the epoch and retains the old up-set — the set the
	// previous owner of a moved key is computed from.
	epochMu sync.Mutex
	epoch   int64
	curUp   []string // sorted up-set of the current epoch
	prevUp  []string // sorted up-set of the previous epoch

	remoteOK      atomic.Int64
	fallbacks     atomic.Int64
	remoteFactors atomic.Int64
	factorMisses  atomic.Int64
	peerFetches   atomic.Int64
	peerHits      atomic.Int64
	latency       histogram

	// Stream telemetry: the most recent DispatchStream's first/last
	// result latencies, and the cumulative stitch time consumers report
	// as hidden inside the build window (NoteOverlapSaved).
	streamFirstNS atomic.Int64
	streamLastNS  atomic.Int64
	overlapNS     atomic.Int64
}

// NewRemote creates a dispatcher over the given worker base URLs
// (e.g. "http://10.0.0.7:8372"); trailing slashes are trimmed, empty
// entries dropped. An empty fleet is legal: every dispatch degrades to
// the fallback — convenient for configuration that flips the fleet on
// and off without changing call sites.
func NewRemote(urls []string, opts Options) *Remote {
	r := &Remote{opts: opts.withDefaults()}
	r.members = makeMembers(urls, nil)
	return r
}

// makeMembers normalizes worker URLs into member records, adopting an
// existing record (with its counters and health state) when the URL
// survives from old.
func makeMembers(urls []string, old []*member) []*member {
	prev := make(map[string]*member, len(old))
	for _, m := range old {
		prev[m.url] = m
	}
	var out []*member
	seen := make(map[string]bool, len(urls))
	for _, u := range urls {
		u = strings.TrimRight(strings.TrimSpace(u), "/")
		if u == "" || seen[u] {
			continue
		}
		seen[u] = true
		if m, ok := prev[u]; ok {
			out = append(out, m)
		} else {
			out = append(out, &member{url: u})
		}
	}
	return out
}

// SetWorkers replaces the fleet membership (join/leave events from an
// operator or a service-discovery loop). Members whose URL survives keep
// their counters and health state. The membership epoch bumps on the
// next dispatch that observes the changed up-set, which is what lets
// workers peer-fetch moved keys from their previous owner.
func (r *Remote) SetWorkers(urls []string) {
	r.memMu.Lock()
	r.members = makeMembers(urls, r.members)
	r.memMu.Unlock()
}

// Workers returns the configured worker URLs (diagnostics).
func (r *Remote) Workers() []string {
	r.memMu.RLock()
	defer r.memMu.RUnlock()
	out := make([]string, len(r.members))
	for i, m := range r.members {
		out[i] = m.url
	}
	return out
}

// Stats snapshots the fleet telemetry.
func (r *Remote) Stats() *Stats {
	now := time.Now()
	s := &Stats{
		RemoteClusters: r.remoteOK.Load(),
		FallbackLocal:  r.fallbacks.Load(),
		RemoteFactors:  r.remoteFactors.Load(),
		FactorMisses:   r.factorMisses.Load(),
		PeerFetches:    r.peerFetches.Load(),
		PeerHits:       r.peerHits.Load(),
	}
	r.epochMu.Lock()
	s.MembershipEpoch = r.epoch
	r.epochMu.Unlock()
	s.StreamFirstResultMS = float64(r.streamFirstNS.Load()) / float64(time.Millisecond)
	s.StreamLastResultMS = float64(r.streamLastNS.Load()) / float64(time.Millisecond)
	s.StreamOverlapSavedMS = float64(r.overlapNS.Load()) / float64(time.Millisecond)
	r.memMu.RLock()
	members := r.members
	r.memMu.RUnlock()
	for _, m := range members {
		m.mu.Lock()
		wh := WorkerHealth{
			URL:          m.url,
			Up:           m.downUntil.IsZero() || !now.Before(m.downUntil),
			Dispatched:   m.dispatched.Load(),
			Retried:      m.retried.Load(),
			Hedged:       m.hedged.Load(),
			HedgedWasted: m.hedgedWasted.Load(),
			Failed:       m.failed.Load(),
			LastError:    m.lastErr,
		}
		if !m.lastErrAt.IsZero() {
			wh.LastErrorUnixMS = m.lastErrAt.UnixMilli()
		}
		m.mu.Unlock()
		s.Workers = append(s.Workers, wh)
	}
	s.Latency, s.MeanLatencyMS, s.P50LatencyMS, s.P95LatencyMS, s.P99LatencyMS = r.latency.snapshot()
	return s
}

// fnv1a64 hashes a string with 64-bit FNV-1a (the repo's fingerprint
// idiom; no dependency on hash/fnv allocations).
func fnv1a64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	return h
}

// rank orders the currently-up workers by rendezvous (highest-random-
// weight) score for key: every coordinator ranks the same key the same
// way, so a cluster's build always lands on the same worker while it is
// up — that worker's cache keeps its hit rate across rebuilds — and
// re-ranks deterministically to the next worker when it goes down.
func (r *Remote) rank(key string) []*member {
	now := time.Now()
	type scored struct {
		m *member
		s uint64
	}
	r.memMu.RLock()
	members := r.members
	r.memMu.RUnlock()
	up := make([]scored, 0, len(members))
	for _, m := range members {
		if m.up(now) {
			up = append(up, scored{m, fnv1a64(key + "|" + m.url)})
		}
	}
	sort.Slice(up, func(a, b int) bool {
		if up[a].s != up[b].s {
			return up[a].s > up[b].s
		}
		return up[a].m.url < up[b].m.url // deterministic tie-break
	})
	out := make([]*member, len(up))
	for i, sc := range up {
		out[i] = sc.m
	}
	return out
}

// noteMembership records the up-set one dispatch observed. A changed set
// (worker joined, left, or crossed its down threshold) rotates the
// current set into the previous slot and bumps the epoch. Returns the
// epoch and the previous epoch's up-set.
func (r *Remote) noteMembership(ranked []*member) (int64, []string) {
	up := make([]string, len(ranked))
	for i, m := range ranked {
		up[i] = m.url
	}
	sort.Strings(up)
	r.epochMu.Lock()
	defer r.epochMu.Unlock()
	if !slices.Equal(up, r.curUp) {
		r.prevUp = r.curUp
		r.curUp = up
		r.epoch++
	}
	return r.epoch, r.prevUp
}

// topOwner returns the rendezvous-first URL for key among urls ("" for
// an empty set) — the same score and tie-break rank uses, so it names
// exactly the worker that owned key under that membership.
func topOwner(key string, urls []string) string {
	best, bs := "", uint64(0)
	for _, u := range urls {
		s := fnv1a64(key + "|" + u)
		if best == "" || s > bs || (s == bs && u < best) {
			best, bs = u, s
		}
	}
	return best
}

// Dispatch implements shard.Dispatcher: try the rendezvous-ranked
// workers with deadlines, hedging, and bounded backoff retries; degrade
// to the fallback when the fleet cannot answer.
func (r *Remote) Dispatch(ctx context.Context, req *shard.ClusterRequest) (*shard.ClusterResult, error) {
	ranked := r.rank(req.Key)
	if len(ranked) == 0 {
		r.fallbacks.Add(1)
		return r.opts.Fallback.Dispatch(ctx, req)
	}
	p := payloadOf(req)
	epoch, prevUp := r.noteMembership(ranked)
	p.Epoch = epoch
	if po := topOwner(req.Key, prevUp); po != "" && po != ranked[0].url {
		// Ownership moved across the membership change: tell the new
		// owner where the entry lived so it can try one peer fetch.
		p.PrevOwner = po
	}
	body, err := json.Marshal(p)
	if err != nil {
		// A cluster payload is plain ints and floats; failing to encode
		// one is a programming error, not a fleet problem.
		return nil, fmt.Errorf("fabric: encoding cluster %d payload: %v", req.Index, err)
	}
	valid := validPairs(req.Cluster)

	var lastErr error
	for a := 0; a <= r.opts.Retries; a++ {
		if a > 0 {
			d := r.opts.Backoff << (a - 1)
			select {
			case <-time.After(d):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		primary := ranked[a%len(ranked)]
		var hedge *member
		if h := ranked[(a+1)%len(ranked)]; h != primary {
			hedge = h
		}
		if a > 0 {
			primary.retried.Add(1)
		}
		res, err := raceAttempt(r, ctx, primary, hedge, func(actx context.Context, m *member) (*shard.ClusterResult, error) {
			return r.call(actx, m, req, body, valid)
		})
		if err == nil {
			r.remoteOK.Add(1)
			return res, nil
		}
		if ctx.Err() != nil {
			// The caller is gone; neither more retries nor the local
			// fallback can produce a result anyone wants.
			return nil, ctx.Err()
		}
		lastErr = err
	}
	// Retries exhausted: the build still completes — in-process — and
	// the degradation is counted for /v2/stats.
	r.fallbacks.Add(1)
	res, ferr := r.opts.Fallback.Dispatch(ctx, req)
	if ferr != nil {
		return nil, fmt.Errorf("fabric: fleet failed (%v) and local fallback failed: %w", lastErr, ferr)
	}
	return res, nil
}

// DispatchStream implements shard.StreamDispatcher: every request runs
// through the full Dispatch machinery (placement, retries, hedging,
// fallback) with at most limit in flight, and outcomes land on the
// returned channel in completion order. The channel is buffered to
// len(reqs), so producers never block on a slow consumer and a canceled
// stream drains without leaking goroutines: cancellation makes the
// remaining Dispatch calls return promptly with ctx.Err(), each still
// producing its Streamed.
func (r *Remote) DispatchStream(ctx context.Context, reqs []*shard.ClusterRequest, limit int) <-chan shard.Streamed {
	out := make(chan shard.Streamed, len(reqs))
	if len(reqs) == 0 {
		close(out)
		return out
	}
	if limit <= 0 {
		limit = runtime.GOMAXPROCS(0)
	}
	if limit > len(reqs) {
		limit = len(reqs)
	}
	start := time.Now()
	var firstOnce sync.Once
	var pos atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < limit; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(pos.Add(1)) - 1
				if i >= len(reqs) {
					return
				}
				res, err := r.Dispatch(ctx, reqs[i])
				firstOnce.Do(func() { r.streamFirstNS.Store(int64(time.Since(start))) })
				out <- shard.Streamed{Req: reqs[i], Res: res, Err: err}
			}
		}()
	}
	go func() {
		wg.Wait()
		r.streamLastNS.Store(int64(time.Since(start)))
		close(out)
	}()
	return out
}

// NoteOverlapSaved accumulates stitch time a streaming consumer measured
// as overlapped with in-flight cluster builds — work the barrier path
// would have serialized after the slowest cluster. shard.Run reports it
// per streamed build; Stats surfaces the running total.
func (r *Remote) NoteOverlapSaved(d time.Duration) {
	if d > 0 {
		r.overlapNS.Add(int64(d))
	}
}

// DispatchFactor implements precond.FactorDispatcher: ship a cluster's
// exact pencil block to its rendezvous-ranked worker (the one already
// warm with the cluster's build) and validate the returned factor —
// structure, dimensions, SPD witness — before handing it to the Schwarz
// builder. There is no local fallback here: the builder itself falls
// back to factorizing the block in-process on any error, so this only
// reports why the fleet could not answer.
func (r *Remote) DispatchFactor(ctx context.Context, req *precond.FactorRequest) (*chol.Factor, error) {
	ranked := r.rank(req.Key)
	if len(ranked) == 0 {
		r.factorMisses.Add(1)
		return nil, errors.New("fabric: no fleet workers up")
	}
	body, err := json.Marshal(&ClusterPayload{Key: req.Key, Factor: factorSpecOf(req.Sub)})
	if err != nil {
		r.factorMisses.Add(1)
		return nil, fmt.Errorf("fabric: encoding factor payload for cluster %d: %v", req.Cluster, err)
	}
	var lastErr error
	for a := 0; a <= r.opts.Retries; a++ {
		if a > 0 {
			d := r.opts.Backoff << (a - 1)
			select {
			case <-time.After(d):
			case <-ctx.Done():
				r.factorMisses.Add(1)
				return nil, ctx.Err()
			}
		}
		primary := ranked[a%len(ranked)]
		var hedge *member
		if h := ranked[(a+1)%len(ranked)]; h != primary {
			hedge = h
		}
		if a > 0 {
			primary.retried.Add(1)
		}
		f, err := raceAttempt(r, ctx, primary, hedge, func(actx context.Context, m *member) (*chol.Factor, error) {
			return r.callFactor(actx, m, req, body)
		})
		if err == nil {
			r.remoteFactors.Add(1)
			return f, nil
		}
		if ctx.Err() != nil {
			r.factorMisses.Add(1)
			return nil, ctx.Err()
		}
		lastErr = err
	}
	r.factorMisses.Add(1)
	return nil, lastErr
}

// raceAttempt runs one bounded try against primary, hedging to hedge
// when configured: first success wins and cancels the other request.
// When the race resolves with the loser still in flight, the loser's
// member gets a hedged_wasted mark — its work (and any late success that
// unwinds into the buffered channel) is discarded. A canceled loser is
// never a failure: losing a race says nothing about the worker's health.
func raceAttempt[T any](r *Remote, ctx context.Context, primary, hedge *member, do func(ctx context.Context, m *member) (T, error)) (T, error) {
	var zero T
	actx, cancel := context.WithTimeout(ctx, r.opts.Timeout)
	defer cancel()

	type outcome struct {
		m   *member
		res T
		err error
	}
	ch := make(chan outcome, 2)
	call := func(m *member, hedged bool) {
		m.dispatched.Add(1)
		if hedged {
			m.hedged.Add(1)
		}
		start := time.Now()
		res, err := do(actx, m)
		if err != nil {
			// A canceled request lost the hedge race (or the caller went
			// away) — that is not the worker's failure to note.
			if !errors.Is(err, context.Canceled) {
				m.noteFailure(err, r.opts.FailAfter, r.opts.ProbeAfter)
			}
			ch <- outcome{m, zero, err}
			return
		}
		m.noteSuccess()
		r.latency.observe(time.Since(start))
		ch <- outcome{m, res, nil}
	}

	go call(primary, false)
	inflight := 1
	var hedgeC <-chan time.Time
	if hedge != nil && r.opts.HedgeAfter > 0 {
		t := time.NewTimer(r.opts.HedgeAfter)
		defer t.Stop()
		hedgeC = t.C
	}
	var lastErr error
	for {
		select {
		case o := <-ch:
			inflight--
			if o.err == nil {
				if inflight > 0 {
					// The other request was dispatched (and counted into
					// its member's dispatched) but its outcome — even a
					// late success sitting in the buffered channel — is
					// wasted work.
					loser := hedge
					if o.m == hedge {
						loser = primary
					}
					loser.hedgedWasted.Add(1)
				}
				cancel() // first result wins; the loser's request dies with actx
				return o.res, nil
			}
			lastErr = o.err
			if inflight == 0 {
				return zero, lastErr
			}
			// The other request (hedge or primary) is still in flight;
			// it may yet win.
		case <-hedgeC:
			hedgeC = nil
			inflight++
			go call(hedge, true)
		case <-actx.Done():
			// Attempt deadline or caller cancellation. In-flight calls
			// unwind into the buffered channel; nothing leaks.
			return zero, actx.Err()
		}
	}
}

// exchange performs one POST /v2/cluster round trip with a worker and
// decodes the response envelope; result-shape validation is the
// caller's.
func (r *Remote) exchange(ctx context.Context, m *member, body []byte) (*ClusterResponse, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, m.url+"/v2/cluster", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("fabric: %s: %w", m.url, err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := r.opts.Client.Do(hreq)
	if err != nil {
		return nil, fmt.Errorf("fabric: %s: %w", m.url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		// Read a bounded snippet for the health record; a worker that
		// 5xxes tells the operator why through last_error.
		snippet, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return nil, fmt.Errorf("fabric: %s: status %d: %s", m.url, resp.StatusCode, bytes.TrimSpace(snippet))
	}
	var cr ClusterResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxClusterBody)).Decode(&cr); err != nil {
		return nil, fmt.Errorf("fabric: %s: decoding result: %w", m.url, err)
	}
	return &cr, nil
}

// call performs one cluster-build exchange with a worker and validates
// the result before it is allowed anywhere near the stitched sparsifier.
func (r *Remote) call(ctx context.Context, m *member, req *shard.ClusterRequest, body []byte, valid map[[2]int]bool) (*shard.ClusterResult, error) {
	cr, err := r.exchange(ctx, m, body)
	if err != nil {
		return nil, err
	}
	if err := validateResult(req, cr, valid); err != nil {
		return nil, fmt.Errorf("fabric: %s: malformed result: %w", m.url, err)
	}
	switch cr.PeerFetch {
	case "hit":
		r.peerFetches.Add(1)
		r.peerHits.Add(1)
	case "miss":
		r.peerFetches.Add(1)
	}
	return &shard.ClusterResult{Edges: cr.Edges, Stats: cr.Stats, Remote: true}, nil
}

// callFactor performs one factor-job exchange and validates the returned
// factor: present, structurally sound with a positive finite diagonal
// (chol.FromParts — the SPD witness), and of the block's exact dimension.
func (r *Remote) callFactor(ctx context.Context, m *member, req *precond.FactorRequest, body []byte) (*chol.Factor, error) {
	cr, err := r.exchange(ctx, m, body)
	if err != nil {
		return nil, err
	}
	if cr.Factor == nil {
		return nil, fmt.Errorf("fabric: %s: factor job returned no factor", m.url)
	}
	f, err := cr.Factor.factor()
	if err != nil {
		return nil, fmt.Errorf("fabric: %s: malformed factor: %w", m.url, err)
	}
	if f.N != len(req.Idx) {
		return nil, fmt.Errorf("fabric: %s: factor dimension %d, block has %d", m.url, f.N, len(req.Idx))
	}
	return f, nil
}

// validPairs builds the set of admissible global endpoint pairs for a
// cluster (normalized low/high): exactly the cluster's own edges mapped
// through the vertex map.
func validPairs(cl *shard.Cluster) map[[2]int]bool {
	set := make(map[[2]int]bool, cl.Local.M())
	for _, e := range cl.Local.Edges {
		set[normPair(cl.Vertices[e.U], cl.Vertices[e.V])] = true
	}
	return set
}

func normPair(u, v int) [2]int {
	if u > v {
		u, v = v, u
	}
	return [2]int{u, v}
}

// validateResult rejects malformed worker results before adoption: every
// returned pair must be one of the cluster's own edges, no pair may
// repeat, and the set must be large enough to span the cluster (a
// sparsifier of a connected n-vertex cluster has at least n−1 edges).
// Anything else is a worker bug or version skew and must not be stitched in;
// the dispatcher treats it like any other failure (retry, then degrade
// to a local build).
func validateResult(req *shard.ClusterRequest, cr *ClusterResponse, valid map[[2]int]bool) error {
	n := req.Cluster.Local.N
	if len(cr.Edges) < n-1 {
		return fmt.Errorf("%d edges cannot span %d vertices", len(cr.Edges), n)
	}
	if len(cr.Edges) > req.Cluster.Local.M() {
		return fmt.Errorf("%d edges exceed the cluster's %d", len(cr.Edges), req.Cluster.Local.M())
	}
	seen := make(map[[2]int]bool, len(cr.Edges))
	for _, p := range cr.Edges {
		np := normPair(p[0], p[1])
		if !valid[np] {
			return fmt.Errorf("edge [%d %d] is not a cluster edge", p[0], p[1])
		}
		if seen[np] {
			return fmt.Errorf("edge [%d %d] repeated", p[0], p[1])
		}
		seen[np] = true
	}
	return nil
}
