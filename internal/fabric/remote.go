package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/shard"
)

// Defaults for Options' zero values.
const (
	// DefaultTimeout bounds one remote attempt. Cluster builds are
	// seconds-scale at the default shard sizing, so a minute means
	// "this worker is not coming back", not "the cluster is large".
	DefaultTimeout = time.Minute
	// DefaultRetries is how many additional attempts (each on the next
	// worker in rendezvous order) follow a failed first dispatch.
	DefaultRetries = 2
	// DefaultBackoff is the base delay before a retry; it doubles per
	// attempt. Kept short: the retry lands on a different worker, so
	// this is pacing, not recovery waiting.
	DefaultBackoff = 50 * time.Millisecond
	// DefaultFailAfter is the consecutive-failure count that marks a
	// worker down; DefaultProbeAfter how long it stays skipped before
	// the next dispatch probes it again.
	DefaultFailAfter  = 3
	DefaultProbeAfter = 15 * time.Second
)

// Options tunes the Remote dispatcher. Zero values select the defaults
// above; HedgeAfter and Retries use the package convention "0 = default,
// negative = disabled".
type Options struct {
	// Timeout is the per-attempt deadline (primary and hedge share it:
	// the attempt as a whole is abandoned when it passes).
	Timeout time.Duration
	// Retries is the number of additional attempts after the first,
	// each against the next-ranked worker with exponential backoff
	// (0 = DefaultRetries, negative = no retries).
	Retries int
	// Backoff is the base retry delay, doubling per attempt.
	Backoff time.Duration
	// HedgeAfter launches a duplicate request against the next-ranked
	// worker when the primary has not answered within this delay; the
	// first result wins and the loser's request is canceled. 0 disables
	// hedging (stragglers then cost up to Timeout before the retry
	// path takes over).
	HedgeAfter time.Duration
	// FailAfter consecutive failures mark a worker down; it is skipped
	// by placement until ProbeAfter has passed.
	FailAfter  int
	ProbeAfter time.Duration
	// Client overrides the HTTP client (tests; custom transports).
	Client *http.Client
	// Fallback handles cluster builds the fleet could not: every worker
	// down, or retries exhausted. Defaults to Local — the build
	// completes in-process rather than failing, and the degradation is
	// visible in Stats.FallbackLocal.
	Fallback shard.Dispatcher
}

func (o Options) withDefaults() Options {
	if o.Timeout <= 0 {
		o.Timeout = DefaultTimeout
	}
	switch {
	case o.Retries == 0:
		o.Retries = DefaultRetries
	case o.Retries < 0:
		o.Retries = 0
	}
	if o.Backoff <= 0 {
		o.Backoff = DefaultBackoff
	}
	if o.HedgeAfter < 0 {
		o.HedgeAfter = 0
	}
	if o.FailAfter <= 0 {
		o.FailAfter = DefaultFailAfter
	}
	if o.ProbeAfter <= 0 {
		o.ProbeAfter = DefaultProbeAfter
	}
	if o.Client == nil {
		o.Client = &http.Client{}
	}
	if o.Fallback == nil {
		o.Fallback = Local{}
	}
	return o
}

// member is the coordinator's view of one fleet worker.
type member struct {
	url string

	dispatched atomic.Int64
	retried    atomic.Int64
	hedged     atomic.Int64
	failed     atomic.Int64

	mu        sync.Mutex
	consec    int
	downUntil time.Time
	lastErr   string
	lastErrAt time.Time
}

func (m *member) up(now time.Time) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return !now.Before(m.downUntil) || m.downUntil.IsZero()
}

func (m *member) noteSuccess() {
	m.mu.Lock()
	m.consec = 0
	m.downUntil = time.Time{}
	m.mu.Unlock()
}

func (m *member) noteFailure(err error, failAfter int, probeAfter time.Duration) {
	m.failed.Add(1)
	m.mu.Lock()
	m.consec++
	if m.consec >= failAfter {
		m.downUntil = time.Now().Add(probeAfter)
	}
	m.lastErr = err.Error()
	m.lastErrAt = time.Now()
	m.mu.Unlock()
}

// Remote is the fleet-backed shard.Dispatcher: it ships cluster payloads
// to workers over HTTP/JSON with rendezvous-hashed placement on the
// cluster fingerprint, per-attempt deadlines, bounded retries with
// backoff, hedged dispatch for stragglers, and graceful degradation to
// the in-process fallback. Safe for concurrent use.
type Remote struct {
	opts    Options
	members []*member

	remoteOK  atomic.Int64
	fallbacks atomic.Int64
	latency   histogram
}

// NewRemote creates a dispatcher over the given worker base URLs
// (e.g. "http://10.0.0.7:8372"); trailing slashes are trimmed, empty
// entries dropped. An empty fleet is legal: every dispatch degrades to
// the fallback — convenient for configuration that flips the fleet on
// and off without changing call sites.
func NewRemote(urls []string, opts Options) *Remote {
	r := &Remote{opts: opts.withDefaults()}
	for _, u := range urls {
		u = strings.TrimRight(strings.TrimSpace(u), "/")
		if u != "" {
			r.members = append(r.members, &member{url: u})
		}
	}
	return r
}

// Workers returns the configured worker URLs (diagnostics).
func (r *Remote) Workers() []string {
	out := make([]string, len(r.members))
	for i, m := range r.members {
		out[i] = m.url
	}
	return out
}

// Stats snapshots the fleet telemetry.
func (r *Remote) Stats() *Stats {
	now := time.Now()
	s := &Stats{
		RemoteClusters: r.remoteOK.Load(),
		FallbackLocal:  r.fallbacks.Load(),
	}
	for _, m := range r.members {
		m.mu.Lock()
		wh := WorkerHealth{
			URL:        m.url,
			Up:         m.downUntil.IsZero() || !now.Before(m.downUntil),
			Dispatched: m.dispatched.Load(),
			Retried:    m.retried.Load(),
			Hedged:     m.hedged.Load(),
			Failed:     m.failed.Load(),
			LastError:  m.lastErr,
		}
		if !m.lastErrAt.IsZero() {
			wh.LastErrorUnixMS = m.lastErrAt.UnixMilli()
		}
		m.mu.Unlock()
		s.Workers = append(s.Workers, wh)
	}
	s.Latency, s.MeanLatencyMS, s.P50LatencyMS, s.P95LatencyMS, s.P99LatencyMS = r.latency.snapshot()
	return s
}

// fnv1a64 hashes a string with 64-bit FNV-1a (the repo's fingerprint
// idiom; no dependency on hash/fnv allocations).
func fnv1a64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	return h
}

// rank orders the currently-up workers by rendezvous (highest-random-
// weight) score for key: every coordinator ranks the same key the same
// way, so a cluster's build always lands on the same worker while it is
// up — that worker's cache keeps its hit rate across rebuilds — and
// re-ranks deterministically to the next worker when it goes down.
func (r *Remote) rank(key string) []*member {
	now := time.Now()
	type scored struct {
		m *member
		s uint64
	}
	up := make([]scored, 0, len(r.members))
	for _, m := range r.members {
		if m.up(now) {
			up = append(up, scored{m, fnv1a64(key + "|" + m.url)})
		}
	}
	sort.Slice(up, func(a, b int) bool {
		if up[a].s != up[b].s {
			return up[a].s > up[b].s
		}
		return up[a].m.url < up[b].m.url // deterministic tie-break
	})
	out := make([]*member, len(up))
	for i, sc := range up {
		out[i] = sc.m
	}
	return out
}

// Dispatch implements shard.Dispatcher: try the rendezvous-ranked
// workers with deadlines, hedging, and bounded backoff retries; degrade
// to the fallback when the fleet cannot answer.
func (r *Remote) Dispatch(ctx context.Context, req *shard.ClusterRequest) (*shard.ClusterResult, error) {
	ranked := r.rank(req.Key)
	if len(ranked) == 0 {
		r.fallbacks.Add(1)
		return r.opts.Fallback.Dispatch(ctx, req)
	}
	body, err := json.Marshal(payloadOf(req))
	if err != nil {
		// A cluster payload is plain ints and floats; failing to encode
		// one is a programming error, not a fleet problem.
		return nil, fmt.Errorf("fabric: encoding cluster %d payload: %v", req.Index, err)
	}
	valid := validPairs(req.Cluster)

	var lastErr error
	for a := 0; a <= r.opts.Retries; a++ {
		if a > 0 {
			d := r.opts.Backoff << (a - 1)
			select {
			case <-time.After(d):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		primary := ranked[a%len(ranked)]
		var hedge *member
		if h := ranked[(a+1)%len(ranked)]; h != primary {
			hedge = h
		}
		if a > 0 {
			primary.retried.Add(1)
		}
		res, err := r.attempt(ctx, primary, hedge, req, body, valid)
		if err == nil {
			r.remoteOK.Add(1)
			return res, nil
		}
		if ctx.Err() != nil {
			// The caller is gone; neither more retries nor the local
			// fallback can produce a result anyone wants.
			return nil, ctx.Err()
		}
		lastErr = err
	}
	// Retries exhausted: the build still completes — in-process — and
	// the degradation is counted for /v2/stats.
	r.fallbacks.Add(1)
	res, ferr := r.opts.Fallback.Dispatch(ctx, req)
	if ferr != nil {
		return nil, fmt.Errorf("fabric: fleet failed (%v) and local fallback failed: %w", lastErr, ferr)
	}
	return res, nil
}

// attempt runs one bounded try against primary, hedging to hedge when
// configured: first success wins and cancels the other request.
func (r *Remote) attempt(ctx context.Context, primary, hedge *member, req *shard.ClusterRequest, body []byte, valid map[[2]int]bool) (*shard.ClusterResult, error) {
	actx, cancel := context.WithTimeout(ctx, r.opts.Timeout)
	defer cancel()

	type outcome struct {
		res *shard.ClusterResult
		err error
	}
	ch := make(chan outcome, 2)
	call := func(m *member, hedged bool) {
		m.dispatched.Add(1)
		if hedged {
			m.hedged.Add(1)
		}
		start := time.Now()
		res, err := r.call(actx, m, req, body, valid)
		if err != nil {
			// A canceled request lost the hedge race (or the caller went
			// away) — that is not the worker's failure to note.
			if !errors.Is(err, context.Canceled) {
				m.noteFailure(err, r.opts.FailAfter, r.opts.ProbeAfter)
			}
			ch <- outcome{nil, err}
			return
		}
		m.noteSuccess()
		r.latency.observe(time.Since(start))
		ch <- outcome{res, nil}
	}

	go call(primary, false)
	inflight := 1
	var hedgeC <-chan time.Time
	if hedge != nil && r.opts.HedgeAfter > 0 {
		t := time.NewTimer(r.opts.HedgeAfter)
		defer t.Stop()
		hedgeC = t.C
	}
	var lastErr error
	for {
		select {
		case o := <-ch:
			inflight--
			if o.err == nil {
				cancel() // first result wins; the loser's request dies with actx
				return o.res, nil
			}
			lastErr = o.err
			if inflight == 0 {
				return nil, lastErr
			}
			// The other request (hedge or primary) is still in flight;
			// it may yet win.
		case <-hedgeC:
			hedgeC = nil
			inflight++
			go call(hedge, true)
		case <-actx.Done():
			// Attempt deadline or caller cancellation. In-flight calls
			// unwind into the buffered channel; nothing leaks.
			return nil, actx.Err()
		}
	}
}

// call performs one HTTP exchange with a worker and validates the result
// before it is allowed anywhere near the stitched sparsifier.
func (r *Remote) call(ctx context.Context, m *member, req *shard.ClusterRequest, body []byte, valid map[[2]int]bool) (*shard.ClusterResult, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, m.url+"/v2/cluster", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("fabric: %s: %w", m.url, err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := r.opts.Client.Do(hreq)
	if err != nil {
		return nil, fmt.Errorf("fabric: %s: %w", m.url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		// Read a bounded snippet for the health record; a worker that
		// 5xxes tells the operator why through last_error.
		snippet, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return nil, fmt.Errorf("fabric: %s: status %d: %s", m.url, resp.StatusCode, bytes.TrimSpace(snippet))
	}
	var cr ClusterResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxClusterBody)).Decode(&cr); err != nil {
		return nil, fmt.Errorf("fabric: %s: decoding result: %w", m.url, err)
	}
	if err := validateResult(req, &cr, valid); err != nil {
		return nil, fmt.Errorf("fabric: %s: malformed result: %w", m.url, err)
	}
	return &shard.ClusterResult{Edges: cr.Edges, Stats: cr.Stats, Remote: true}, nil
}

// validPairs builds the set of admissible global endpoint pairs for a
// cluster (normalized low/high): exactly the cluster's own edges mapped
// through the vertex map.
func validPairs(cl *shard.Cluster) map[[2]int]bool {
	set := make(map[[2]int]bool, cl.Local.M())
	for _, e := range cl.Local.Edges {
		set[normPair(cl.Vertices[e.U], cl.Vertices[e.V])] = true
	}
	return set
}

func normPair(u, v int) [2]int {
	if u > v {
		u, v = v, u
	}
	return [2]int{u, v}
}

// validateResult rejects malformed worker results before adoption: every
// returned pair must be one of the cluster's own edges, no pair may
// repeat, and the set must be large enough to span the cluster (a
// sparsifier of a connected n-vertex cluster has at least n−1 edges).
// Anything else is a worker bug or version skew and must not be stitched in;
// the dispatcher treats it like any other failure (retry, then degrade
// to a local build).
func validateResult(req *shard.ClusterRequest, cr *ClusterResponse, valid map[[2]int]bool) error {
	n := req.Cluster.Local.N
	if len(cr.Edges) < n-1 {
		return fmt.Errorf("%d edges cannot span %d vertices", len(cr.Edges), n)
	}
	if len(cr.Edges) > req.Cluster.Local.M() {
		return fmt.Errorf("%d edges exceed the cluster's %d", len(cr.Edges), req.Cluster.Local.M())
	}
	seen := make(map[[2]int]bool, len(cr.Edges))
	for _, p := range cr.Edges {
		np := normPair(p[0], p[1])
		if !valid[np] {
			return fmt.Errorf("edge [%d %d] is not a cluster edge", p[0], p[1])
		}
		if seen[np] {
			return fmt.Errorf("edge [%d %d] repeated", p[0], p[1])
		}
		seen[np] = true
	}
	return nil
}
