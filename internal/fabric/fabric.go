// Package fabric is the distributed shard fabric: the dispatch layer
// that decides where each cluster of a sharded sparsification build
// executes. The shard pipeline (internal/shard) was shaped for exactly
// this seam — a cluster payload is a self-contained local graph plus a
// local→global vertex map, its result is an index-free set of endpoint
// pairs, and the per-cluster seed and fingerprint travel with the
// request — so a cluster build is location-independent by construction.
//
// Two shard.Dispatcher implementations live here:
//
//   - Local runs the build in-process (the pre-fabric behaviour,
//     factored behind the interface);
//   - Remote fans cluster payloads out to a worker fleet over HTTP/JSON
//     (POST /v2/cluster, the house idiom), with rendezvous-hashed
//     placement on the cluster fingerprint so each worker's local
//     cluster cache keeps its hit rate across rebuilds, per-attempt
//     deadlines, bounded retries with exponential backoff, hedged
//     dispatch for stragglers (first result wins, the loser's request
//     is canceled), and graceful degradation to Local when a worker —
//     or the whole fleet — is down or returns malformed results.
//
// Worker is the other end of the wire: the HTTP handler a
// `trsparsed -worker` process serves, executing cluster builds against
// its own cluster cache.
package fabric

import (
	"context"

	"repro/internal/shard"
)

// Local executes cluster builds in-process. It is the zero-dependency
// shard.Dispatcher the coordinator degrades to when the fleet cannot
// answer, and the implementation a fleet-less build uses (shard.Run with
// a nil Dispatcher short-circuits to the same code path).
type Local struct{}

// Dispatch implements shard.Dispatcher.
func (Local) Dispatch(ctx context.Context, req *shard.ClusterRequest) (*shard.ClusterResult, error) {
	return shard.BuildCluster(ctx, req)
}
