package fabric

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/shard"
	"repro/internal/sparsify"
)

// ClusterPayload is the POST /v2/cluster request body: one planned
// cluster as a self-contained unit of work. Vertices carries the
// local→global map (local vertex i is global Vertices[i]); Edges uses
// local endpoints. The fingerprint key is the worker-side cache key —
// two requests with equal keys are guaranteed to produce identical
// results, which is what makes worker caches safe across rebuilds and
// coordinators.
type ClusterPayload struct {
	// Key is the cluster fingerprint (shard.ClusterKey).
	Key string `json:"key"`
	// N is the local vertex count; Vertices the local→global map
	// (len N).
	N        int   `json:"n"`
	Vertices []int `json:"vertices"`
	// Edges are the cluster's local edges as [u, v, w] triples with
	// local endpoints.
	Edges [][3]float64 `json:"edges"`
	// Opts is the per-cluster construction configuration (seed already
	// derived coordinator-side; it is part of the fingerprint).
	Opts WireOptions `json:"opts"`
}

// WireOptions is the construction parameter block as it travels to a
// worker: every sparsify.Options field that enters the cluster
// fingerprint, nothing else. Workers always build single-threaded per
// request (parallelism lives at the request level).
type WireOptions struct {
	Method         int     `json:"method"`
	Alpha          float64 `json:"alpha,omitempty"`
	Rounds         int     `json:"rounds,omitempty"`
	Beta           int     `json:"beta,omitempty"`
	Delta          float64 `json:"delta,omitempty"`
	SimilarityHops int     `json:"similarity_hops,omitempty"`
	PowerSteps     int     `json:"power_steps,omitempty"`
	PowerVectors   int     `json:"power_vectors,omitempty"`
	ShiftRel       float64 `json:"shift_rel,omitempty"`
	Seed           int64   `json:"seed"`
}

// wireOptions flattens the per-cluster sparsify.Options for transport.
func wireOptions(o sparsify.Options) WireOptions {
	return WireOptions{
		Method:         int(o.Method),
		Alpha:          o.Alpha,
		Rounds:         o.Rounds,
		Beta:           o.Beta,
		Delta:          o.Delta,
		SimilarityHops: o.SimilarityHops,
		PowerSteps:     o.PowerSteps,
		PowerVectors:   o.PowerVectors,
		ShiftRel:       o.ShiftRel,
		Seed:           o.Seed,
	}
}

// sparsifyOptions is wireOptions' inverse, pinned to one worker thread.
func (wo WireOptions) sparsifyOptions() sparsify.Options {
	return sparsify.Options{
		Method:         sparsify.Method(wo.Method),
		Alpha:          wo.Alpha,
		Rounds:         wo.Rounds,
		Beta:           wo.Beta,
		Delta:          wo.Delta,
		SimilarityHops: wo.SimilarityHops,
		PowerSteps:     wo.PowerSteps,
		PowerVectors:   wo.PowerVectors,
		ShiftRel:       wo.ShiftRel,
		Seed:           wo.Seed,
		Workers:        1,
	}
}

// payloadOf encodes one dispatcher request as its wire payload.
func payloadOf(req *shard.ClusterRequest) *ClusterPayload {
	cl := req.Cluster
	edges := make([][3]float64, cl.Local.M())
	for i, e := range cl.Local.Edges {
		edges[i] = [3]float64{float64(e.U), float64(e.V), e.W}
	}
	return &ClusterPayload{
		Key:      req.Key,
		N:        cl.Local.N,
		Vertices: cl.Vertices,
		Edges:    edges,
		Opts:     wireOptions(req.Opts),
	}
}

// clusterRequest reconstructs the dispatcher request worker-side. It
// validates shape (vertex counts, endpoint ranges) but leaves graph
// semantics — connectivity, duplicate merging — to graph.New and the
// construction itself.
func (p *ClusterPayload) clusterRequest() (*shard.ClusterRequest, error) {
	if p.N < 1 {
		return nil, fmt.Errorf("cluster needs at least one vertex, got n=%d", p.N)
	}
	if len(p.Vertices) != p.N {
		return nil, fmt.Errorf("vertex map covers %d vertices, n=%d", len(p.Vertices), p.N)
	}
	if p.N > len(p.Edges)+1 {
		return nil, fmt.Errorf("n=%d cannot be connected by %d edges", p.N, len(p.Edges))
	}
	edges := make([]graph.Edge, len(p.Edges))
	for i, e := range p.Edges {
		if e[0] != math.Trunc(e[0]) || e[1] != math.Trunc(e[1]) {
			return nil, fmt.Errorf("edge %d has non-integer endpoints [%g, %g]", i, e[0], e[1])
		}
		edges[i] = graph.Edge{U: int(e[0]), V: int(e[1]), W: e[2]}
	}
	g, err := graph.New(p.N, edges)
	if err != nil {
		return nil, err
	}
	return &shard.ClusterRequest{
		Key:     p.Key,
		Cluster: &shard.Cluster{Vertices: p.Vertices, Local: g},
		Opts:    p.Opts.sparsifyOptions(),
	}, nil
}

// ClusterResponse is the POST /v2/cluster response body: the cluster's
// sparsifier as global endpoint pairs — the index-free representation
// the cluster caches store — plus construction stats (durations in
// nanoseconds). A reserved field carries the cluster's Schwarz factor in
// a future revision; today factors stay coordinator-side because they
// are built from the stitched global pencil (overlap rows cross cluster
// boundaries), which the worker never sees.
type ClusterResponse struct {
	Edges [][2]int       `json:"edges"`
	Stats sparsify.Stats `json:"stats"`
	// Cached reports the worker served the result from its local
	// cluster cache without rebuilding.
	Cached bool `json:"cached,omitempty"`
}

// errorResponse mirrors the serving layer's structured error shape.
type errorResponse struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}
