package fabric

import (
	"fmt"
	"math"

	"repro/internal/chol"
	"repro/internal/graph"
	"repro/internal/shard"
	"repro/internal/sparse"
	"repro/internal/sparsify"
)

// ClusterPayload is the POST /v2/cluster request body: one planned
// cluster as a self-contained unit of work. Vertices carries the
// local→global map (local vertex i is global Vertices[i]); Edges uses
// local endpoints. The fingerprint key is the worker-side cache key —
// two requests with equal keys are guaranteed to produce identical
// results, which is what makes worker caches safe across rebuilds and
// coordinators.
type ClusterPayload struct {
	// Key is the cluster fingerprint (shard.ClusterKey).
	Key string `json:"key"`
	// N is the local vertex count; Vertices the local→global map
	// (len N).
	N        int   `json:"n"`
	Vertices []int `json:"vertices"`
	// Edges are the cluster's local edges as [u, v, w] triples with
	// local endpoints.
	Edges [][3]float64 `json:"edges"`
	// Opts is the per-cluster construction configuration (seed already
	// derived coordinator-side; it is part of the fingerprint).
	Opts WireOptions `json:"opts"`
	// Epoch is the coordinator's membership epoch at dispatch time, and
	// PrevOwner the base URL of the worker that owned Key under the
	// previous epoch (set only when membership changed and ownership
	// moved). A peer-fetch-enabled worker that misses its cache uses them
	// to try one GET /v2/cluster/{key} against the previous owner before
	// rebuilding. Advisory metadata only: the fetching worker validates
	// the fetched entry against this payload's own cluster edges, so
	// stale epoch information can cost one wasted round trip but never
	// serve a wrong-key result.
	Epoch     int64  `json:"epoch,omitempty"`
	PrevOwner string `json:"prev_owner,omitempty"`
	// Factor, when non-nil, makes this a factorization job instead of a
	// cluster build: the worker runs the deterministic sparse Cholesky on
	// the shipped block and returns the serialized factor. Factor jobs
	// carry no cluster section (N = 0, no edges) — the block already
	// includes the overlap rows, which are assembled from the stitched
	// global pencil that only the coordinator holds.
	Factor *FactorSpec `json:"factor,omitempty"`
}

// FactorSpec is the SPD block of one remote factorization job: the
// cluster's overlap-extended principal submatrix of the stitched pencil,
// in full symmetric CSC storage. Values travel as JSON float64, which Go
// round-trips exactly (shortest-representation encoding), so the worker
// factorizes bit-for-bit the same matrix the coordinator would have.
type FactorSpec struct {
	N      int       `json:"n"`
	ColPtr []int     `json:"colptr"`
	RowIdx []int     `json:"rowidx"`
	Val    []float64 `json:"val"`
}

// factorSpecOf serializes a block for transport.
func factorSpecOf(a *sparse.CSC) *FactorSpec {
	return &FactorSpec{N: a.Cols, ColPtr: a.ColPtr, RowIdx: a.RowIdx, Val: a.Val}
}

// csc validates the spec's shape and reassembles the block. Symmetry and
// positive definiteness are not checked here; the factorization itself
// rejects non-SPD input (chol.ErrNotPD).
func (fs *FactorSpec) csc() (*sparse.CSC, error) {
	n := fs.N
	if n < 1 {
		return nil, fmt.Errorf("factor block dimension %d", n)
	}
	if len(fs.ColPtr) != n+1 || fs.ColPtr[0] != 0 {
		return nil, fmt.Errorf("factor block has %d column pointers for n=%d", len(fs.ColPtr), n)
	}
	nnz := fs.ColPtr[n]
	if len(fs.RowIdx) != nnz || len(fs.Val) != nnz {
		return nil, fmt.Errorf("factor block storage misaligned (%d pointers vs %d/%d entries)",
			nnz, len(fs.RowIdx), len(fs.Val))
	}
	for j := 0; j < n; j++ {
		if fs.ColPtr[j+1] < fs.ColPtr[j] {
			return nil, fmt.Errorf("factor block column %d has decreasing pointers", j)
		}
	}
	for _, i := range fs.RowIdx {
		if i < 0 || i >= n {
			return nil, fmt.Errorf("factor block row index %d outside n=%d", i, n)
		}
	}
	for _, v := range fs.Val {
		if math.IsInf(v, 0) || math.IsNaN(v) {
			return nil, fmt.Errorf("factor block has non-finite entry %g", v)
		}
	}
	return &sparse.CSC{Rows: n, Cols: n, ColPtr: fs.ColPtr, RowIdx: fs.RowIdx, Val: fs.Val}, nil
}

// WireFactor is a serialized chol.Factor: the lower-triangular factor L
// (diagonal first per column, chol.New's layout) plus the fill-reducing
// permutation. The inverse permutation is deliberately absent — the
// receiver recomputes it rather than trusting the wire.
type WireFactor struct {
	N      int       `json:"n"`
	Perm   []int     `json:"perm"`
	ColPtr []int     `json:"colptr"`
	RowIdx []int     `json:"rowidx"`
	Val    []float64 `json:"val"`
}

// wireFactorOf serializes a factor for transport.
func wireFactorOf(f *chol.Factor) *WireFactor {
	return &WireFactor{N: f.N, Perm: f.Perm, ColPtr: f.L.ColPtr, RowIdx: f.L.RowIdx, Val: f.L.Val}
}

// factor reassembles and validates the factor (chol.FromParts performs
// the full structural and SPD-witness validation).
func (wf *WireFactor) factor() (*chol.Factor, error) {
	l := &sparse.CSC{Rows: wf.N, Cols: wf.N, ColPtr: wf.ColPtr, RowIdx: wf.RowIdx, Val: wf.Val}
	return chol.FromParts(wf.N, l, wf.Perm)
}

// WireOptions is the construction parameter block as it travels to a
// worker: every sparsify.Options field that enters the cluster
// fingerprint, nothing else. Workers always build single-threaded per
// request (parallelism lives at the request level).
type WireOptions struct {
	Method         int     `json:"method"`
	Alpha          float64 `json:"alpha,omitempty"`
	Rounds         int     `json:"rounds,omitempty"`
	Beta           int     `json:"beta,omitempty"`
	Delta          float64 `json:"delta,omitempty"`
	SimilarityHops int     `json:"similarity_hops,omitempty"`
	PowerSteps     int     `json:"power_steps,omitempty"`
	PowerVectors   int     `json:"power_vectors,omitempty"`
	ShiftRel       float64 `json:"shift_rel,omitempty"`
	Seed           int64   `json:"seed"`
}

// wireOptions flattens the per-cluster sparsify.Options for transport.
func wireOptions(o sparsify.Options) WireOptions {
	return WireOptions{
		Method:         int(o.Method),
		Alpha:          o.Alpha,
		Rounds:         o.Rounds,
		Beta:           o.Beta,
		Delta:          o.Delta,
		SimilarityHops: o.SimilarityHops,
		PowerSteps:     o.PowerSteps,
		PowerVectors:   o.PowerVectors,
		ShiftRel:       o.ShiftRel,
		Seed:           o.Seed,
	}
}

// sparsifyOptions is wireOptions' inverse, pinned to one worker thread.
func (wo WireOptions) sparsifyOptions() sparsify.Options {
	return sparsify.Options{
		Method:         sparsify.Method(wo.Method),
		Alpha:          wo.Alpha,
		Rounds:         wo.Rounds,
		Beta:           wo.Beta,
		Delta:          wo.Delta,
		SimilarityHops: wo.SimilarityHops,
		PowerSteps:     wo.PowerSteps,
		PowerVectors:   wo.PowerVectors,
		ShiftRel:       wo.ShiftRel,
		Seed:           wo.Seed,
		Workers:        1,
	}
}

// payloadOf encodes one dispatcher request as its wire payload.
func payloadOf(req *shard.ClusterRequest) *ClusterPayload {
	cl := req.Cluster
	edges := make([][3]float64, cl.Local.M())
	for i, e := range cl.Local.Edges {
		edges[i] = [3]float64{float64(e.U), float64(e.V), e.W}
	}
	return &ClusterPayload{
		Key:      req.Key,
		N:        cl.Local.N,
		Vertices: cl.Vertices,
		Edges:    edges,
		Opts:     wireOptions(req.Opts),
	}
}

// clusterRequest reconstructs the dispatcher request worker-side. It
// validates shape (vertex counts, endpoint ranges) but leaves graph
// semantics — connectivity, duplicate merging — to graph.New and the
// construction itself.
func (p *ClusterPayload) clusterRequest() (*shard.ClusterRequest, error) {
	if p.N < 1 {
		return nil, fmt.Errorf("cluster needs at least one vertex, got n=%d", p.N)
	}
	if len(p.Vertices) != p.N {
		return nil, fmt.Errorf("vertex map covers %d vertices, n=%d", len(p.Vertices), p.N)
	}
	if p.N > len(p.Edges)+1 {
		return nil, fmt.Errorf("n=%d cannot be connected by %d edges", p.N, len(p.Edges))
	}
	edges := make([]graph.Edge, len(p.Edges))
	for i, e := range p.Edges {
		if e[0] != math.Trunc(e[0]) || e[1] != math.Trunc(e[1]) {
			return nil, fmt.Errorf("edge %d has non-integer endpoints [%g, %g]", i, e[0], e[1])
		}
		edges[i] = graph.Edge{U: int(e[0]), V: int(e[1]), W: e[2]}
	}
	g, err := graph.New(p.N, edges)
	if err != nil {
		return nil, err
	}
	return &shard.ClusterRequest{
		Key:     p.Key,
		Cluster: &shard.Cluster{Vertices: p.Vertices, Local: g},
		Opts:    p.Opts.sparsifyOptions(),
	}, nil
}

// ClusterResponse is the POST /v2/cluster response body: the cluster's
// sparsifier as global endpoint pairs — the index-free representation
// the cluster caches store — plus construction stats (durations in
// nanoseconds). Factor jobs (ClusterPayload.Factor set) return the
// serialized factor instead of edges. GET /v2/cluster/{key} peer fetches
// return the cached edges with Key echoed so the fetcher can verify it
// got the entry it asked for.
type ClusterResponse struct {
	Edges [][2]int       `json:"edges,omitempty"`
	Stats sparsify.Stats `json:"stats"`
	// Cached reports the worker served the result from its local
	// cluster cache without rebuilding.
	Cached bool `json:"cached,omitempty"`
	// Key echoes the request's cluster fingerprint on peer-fetch (GET)
	// responses.
	Key string `json:"key,omitempty"`
	// Factor is the serialized Cholesky factor of a factor job's block.
	Factor *WireFactor `json:"factor,omitempty"`
	// PeerFetch reports what the worker's one-hop peer fetch did for this
	// request: "hit" (the previous owner served the entry, no rebuild) or
	// "miss" (fetch attempted, fell through to a normal build). Empty
	// when no fetch was attempted. The coordinator folds these into its
	// fleet telemetry.
	PeerFetch string `json:"peer_fetch,omitempty"`
}

// errorResponse mirrors the serving layer's structured error shape.
type errorResponse struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}
