package fabric_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/shard"
)

// startPeerWorker serves a peer-fetch-enabled worker with both fabric
// routes (build POST and the peer-side cache GET).
func startPeerWorker(t *testing.T) (*httptest.Server, *fabric.Worker) {
	t.Helper()
	w := fabric.NewWorkerWith(newMapCache(), 2, fabric.WorkerOptions{PeerFetch: true})
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v2/cluster", w.ServeCluster)
	mux.HandleFunc("GET /v2/cluster/{key}", w.ServeClusterGet)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts, w
}

// freshBuilds derives the number of from-scratch cluster builds a worker
// performed: everything served that was neither a local cache hit nor a
// peer fetch hit.
func freshBuilds(s fabric.WorkerStatsSnapshot) int64 {
	return s.Served - s.CacheHits - s.PeerHits
}

// TestPeerFetchOnMembershipChurn is the churn property test: against a
// three-worker fleet with peer fetch on, a leave event may only degrade
// the cache hit-rate for the keys the departed worker owned (the
// rendezvous invariant — every other key keeps its owner and its cache
// entry), and those moved keys are served by one-hop fetches from the
// previous owner instead of rebuilds. A re-join moves them back onto the
// original worker's still-warm cache. Across the whole churn sequence,
// no cluster is ever built twice.
func TestPeerFetchOnMembershipChurn(t *testing.T) {
	base := clusterReq(t)
	want := wantResult(t, base)

	servers := make([]*httptest.Server, 3)
	workers := make([]*fabric.Worker, 3)
	urls := make([]string, 3)
	for i := range servers {
		servers[i], workers[i] = startPeerWorker(t)
		urls[i] = servers[i].URL
	}
	remote := fabric.NewRemote(urls, fabric.Options{Retries: -1, Backoff: time.Millisecond})

	const nKeys = 24
	reqs := make([]*shard.ClusterRequest, nKeys)
	for i := range reqs {
		r := *base
		r.Key = fmt.Sprintf("churn-key-%02d", i)
		reqs[i] = &r
	}
	dispatchAll := func() {
		t.Helper()
		for _, r := range reqs {
			got, err := remote.Dispatch(context.Background(), r)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got.Edges, want.Edges) {
				t.Fatalf("key %s returned wrong edges", r.Key)
			}
		}
	}
	snapshot := func() []fabric.WorkerStatsSnapshot {
		out := make([]fabric.WorkerStatsSnapshot, len(workers))
		for i, w := range workers {
			out[i] = w.Stats()
		}
		return out
	}

	// Round 1: cold fleet — every key builds exactly once, on its owner.
	dispatchAll()
	r1 := snapshot()
	var built int64
	for _, s := range r1 {
		built += freshBuilds(s)
		if s.PeerFetches != 0 {
			t.Fatalf("cold round attempted peer fetches: %+v", s)
		}
	}
	if built != nKeys {
		t.Fatalf("cold round built %d clusters, want %d", built, nKeys)
	}
	movedKeys := freshBuilds(r1[2]) // everything worker 2 owns will move

	// Leave: drop worker 2 (its server stays up — a planned drain, or a
	// coordinator-side removal, leaves the process running).
	remote.SetWorkers(urls[:2])
	dispatchAll()
	r2 := snapshot()
	for i := 0; i < 2; i++ {
		if n := freshBuilds(r2[i]) - freshBuilds(r1[i]); n != 0 {
			t.Fatalf("worker %d rebuilt %d clusters after churn; peer fetch should have served them", i, n)
		}
	}
	// Rendezvous invariant: surviving workers' own keys still hit their
	// caches; only the departed worker's keys needed the peer hop.
	var cacheHits, peerHits int64
	for i := 0; i < 2; i++ {
		cacheHits += r2[i].CacheHits - r1[i].CacheHits
		peerHits += r2[i].PeerHits - r1[i].PeerHits
	}
	if cacheHits != nKeys-movedKeys {
		t.Fatalf("unmoved keys: %d cache hits, want %d", cacheHits, nKeys-movedKeys)
	}
	if peerHits != movedKeys {
		t.Fatalf("moved keys: %d peer hits, want %d", peerHits, movedKeys)
	}
	if served := r2[2].PeerServed; served != movedKeys {
		t.Fatalf("previous owner served %d peer fetches, want %d", served, movedKeys)
	}
	st := remote.Stats()
	if st.PeerFetches != movedKeys || st.PeerHits != movedKeys {
		t.Fatalf("coordinator peer accounting: fetches=%d hits=%d, want %d each",
			st.PeerFetches, st.PeerHits, movedKeys)
	}
	if st.MembershipEpoch != 2 {
		t.Fatalf("membership epoch = %d after one change, want 2", st.MembershipEpoch)
	}

	// Re-join: the moved keys return to worker 2, whose cache is still
	// warm from round 1 — hits all around, no fetches, no builds.
	remote.SetWorkers(urls)
	dispatchAll()
	r3 := snapshot()
	for i := range workers {
		if n := freshBuilds(r3[i]) - freshBuilds(r2[i]); n != 0 {
			t.Fatalf("worker %d rebuilt %d clusters after re-join", i, n)
		}
		if n := r3[i].PeerFetches - r2[i].PeerFetches; n != 0 {
			t.Fatalf("worker %d peer-fetched %d keys after re-join; its cache holds them", i, n)
		}
	}
	if st := remote.Stats(); st.MembershipEpoch != 3 {
		t.Fatalf("membership epoch = %d after two changes, want 3", st.MembershipEpoch)
	}
}

// postPayload drives a worker's POST /v2/cluster directly with a crafted
// payload, returning the decoded response.
func postPayload(t *testing.T, url string, p *fabric.ClusterPayload) *fabric.ClusterResponse {
	t.Helper()
	body, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v2/cluster", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("worker answered %d", resp.StatusCode)
	}
	var cr fabric.ClusterResponse
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		t.Fatal(err)
	}
	return &cr
}

// payloadFor hand-builds the wire payload of a request with peer-fetch
// metadata attached.
func payloadFor(req *shard.ClusterRequest, epoch int64, prevOwner string) *fabric.ClusterPayload {
	cl := req.Cluster
	edges := make([][3]float64, cl.Local.M())
	for i, e := range cl.Local.Edges {
		edges[i] = [3]float64{float64(e.U), float64(e.V), e.W}
	}
	return &fabric.ClusterPayload{
		Key:       req.Key,
		N:         cl.Local.N,
		Vertices:  cl.Vertices,
		Edges:     edges,
		Opts:      fabric.WireOptions{Seed: req.Opts.Seed},
		Epoch:     epoch,
		PrevOwner: prevOwner,
	}
}

// TestStalePeerNeverServesWrongKey: the fetch validates what it receives
// against its own payload, so a previous owner that answers with the
// wrong entry — a stale or confused peer under a lagging epoch — can
// waste the round trip but can never plant a wrong-key result. Each
// variant must end in PeerFetch="miss", a correct local build, and zero
// peer hits.
func TestStalePeerNeverServesWrongKey(t *testing.T) {
	req := clusterReq(t)
	req.Opts.Workers = 1
	want := wantResult(t, req)

	foreign := [][2]int{{0, 1 << 30}}
	cases := []struct {
		name string
		resp fabric.ClusterResponse
	}{
		// A peer echoing a different key: the entry belongs to some other
		// cluster that happens to live under the fetched URL.
		{"wrong key echo", fabric.ClusterResponse{Edges: want.Edges, Cached: true, Key: "some-other-key"}},
		// The right key but edges of a different cluster: exactly what a
		// stale epoch pointing at a reassigned owner could produce.
		{"foreign edges", fabric.ClusterResponse{Edges: foreign, Cached: true, Key: req.Key}},
		// Spanning-size violation: too few edges to be this cluster's
		// sparsifier.
		{"truncated entry", fabric.ClusterResponse{Edges: want.Edges[:1], Cached: true, Key: req.Key}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			stale := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
				rw.Header().Set("Content-Type", "application/json")
				json.NewEncoder(rw).Encode(&tc.resp)
			}))
			t.Cleanup(stale.Close)

			ts, w := startPeerWorker(t)
			cr := postPayload(t, ts.URL, payloadFor(req, 2, stale.URL))
			if cr.PeerFetch != "miss" {
				t.Fatalf("peer_fetch = %q, want miss", cr.PeerFetch)
			}
			if !reflect.DeepEqual(cr.Edges, want.Edges) {
				t.Fatal("worker did not fall through to a correct local build")
			}
			if st := w.Stats(); st.PeerHits != 0 || st.PeerFetches != 1 {
				t.Fatalf("stale fetch accounting: %+v", st)
			}
		})
	}
}

// TestPeerFetchHitAdoptsEntry is the positive single-hop case: the
// previous owner holds the key, the new owner fetches it, validates it,
// adopts it into its own cache, and reports the hit upstream.
func TestPeerFetchHitAdoptsEntry(t *testing.T) {
	req := clusterReq(t)
	req.Opts.Workers = 1
	want := wantResult(t, req)

	prevTS, prev := startPeerWorker(t)
	// Warm the previous owner the normal way.
	if cr := postPayload(t, prevTS.URL, payloadFor(req, 1, "")); len(cr.Edges) == 0 {
		t.Fatal("warming build returned no edges")
	}

	ts, w := startPeerWorker(t)
	cr := postPayload(t, ts.URL, payloadFor(req, 2, prevTS.URL))
	if cr.PeerFetch != "hit" || !cr.Cached {
		t.Fatalf("peer_fetch=%q cached=%v, want a cached hit", cr.PeerFetch, cr.Cached)
	}
	if !reflect.DeepEqual(cr.Edges, want.Edges) {
		t.Fatal("peer-fetched entry has wrong edges")
	}
	if st := w.Stats(); st.PeerFetches != 1 || st.PeerHits != 1 || freshBuilds(st) != 0 {
		t.Fatalf("fetching worker stats: %+v", st)
	}
	if st := prev.Stats(); st.PeerServed != 1 {
		t.Fatalf("previous owner served %d peer fetches, want 1", st.PeerServed)
	}
	// The adopted entry is now local: the same dispatch again is a plain
	// cache hit with no second fetch.
	cr = postPayload(t, ts.URL, payloadFor(req, 2, prevTS.URL))
	if cr.PeerFetch != "" || !cr.Cached {
		t.Fatalf("second dispatch: peer_fetch=%q cached=%v, want local hit", cr.PeerFetch, cr.Cached)
	}
	if st := w.Stats(); st.PeerFetches != 1 {
		t.Fatalf("adopted entry re-fetched: %+v", st)
	}
}
