package fabric

import (
	"sync/atomic"
	"time"
)

// remoteBucketsMS are the upper bounds (milliseconds, inclusive) of the
// remote-dispatch latency histogram; the final implicit bucket is +Inf.
// Same shape as the engine's job histogram so operators read one format.
var remoteBucketsMS = [...]float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}

// histogram is a fixed-bucket latency histogram with atomic counters.
type histogram struct {
	counts [len(remoteBucketsMS) + 1]atomic.Int64
	sumNS  atomic.Int64
	n      atomic.Int64
}

func (h *histogram) observe(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	i := 0
	for i < len(remoteBucketsMS) && ms > remoteBucketsMS[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sumNS.Add(int64(d))
	h.n.Add(1)
}

// LatencyBucket is one histogram bucket in a stats snapshot (+Inf is
// rendered as -1 for JSON friendliness).
type LatencyBucket struct {
	LE    float64 `json:"le_ms"`
	Count int64   `json:"count"`
}

// percentile estimates the q-quantile (0 < q < 1) in milliseconds from
// bucket counts, interpolating linearly inside the containing bucket;
// +Inf observations clamp to the largest finite bound.
func percentile(counts []int64, q float64) float64 {
	var total int64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum int64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		prev := cum
		cum += c
		if float64(cum) < rank {
			continue
		}
		lo := 0.0
		if i > 0 {
			lo = remoteBucketsMS[i-1]
		}
		if i >= len(remoteBucketsMS) {
			return remoteBucketsMS[len(remoteBucketsMS)-1]
		}
		hi := remoteBucketsMS[i]
		frac := (rank - float64(prev)) / float64(c)
		return lo + frac*(hi-lo)
	}
	return remoteBucketsMS[len(remoteBucketsMS)-1]
}

func (h *histogram) snapshot() (buckets []LatencyBucket, mean, p50, p95, p99 float64) {
	counts := make([]int64, len(h.counts))
	for i := range h.counts {
		le := -1.0 // +Inf bucket
		if i < len(remoteBucketsMS) {
			le = remoteBucketsMS[i]
		}
		counts[i] = h.counts[i].Load()
		buckets = append(buckets, LatencyBucket{LE: le, Count: counts[i]})
	}
	if n := h.n.Load(); n > 0 {
		mean = float64(h.sumNS.Load()) / float64(n) / float64(time.Millisecond)
	}
	return buckets, mean, percentile(counts, 0.50), percentile(counts, 0.95), percentile(counts, 0.99)
}

// WorkerHealth is the coordinator's view of one fleet member.
type WorkerHealth struct {
	URL string `json:"url"`
	// Up is false while the worker sits in its failure cooldown
	// (FailAfter consecutive failures tripped; it will be probed again
	// after ProbeAfter).
	Up bool `json:"up"`
	// Dispatched counts requests sent to this worker (retries and
	// hedges included); Retried those that were retry attempts, Hedged
	// those that were hedges, Failed the ones that errored (transport,
	// non-2xx, or malformed results).
	Dispatched int64 `json:"dispatched"`
	Retried    int64 `json:"retried"`
	Hedged     int64 `json:"hedged"`
	// HedgedWasted counts races this worker lost after being dispatched:
	// the other side answered first and this worker's in-flight request
	// (even a late success) was discarded. Dispatched − HedgedWasted −
	// Failed is the worker's useful-work count; without this column the
	// loser's late success inflated Dispatched with no offsetting signal.
	HedgedWasted int64 `json:"hedged_wasted"`
	Failed       int64 `json:"failed"`
	// LastError describes the most recent failure (empty when the
	// worker has never failed); LastErrorUnixMS its wall-clock time.
	LastError       string `json:"last_error,omitempty"`
	LastErrorUnixMS int64  `json:"last_error_unix_ms,omitempty"`
}

// Stats is a point-in-time snapshot of the Remote dispatcher's fleet
// telemetry: per-worker health and counters, degradation totals, and the
// remote-dispatch latency distribution (successful calls only — a
// timeout would otherwise read as a fast bucket entry at cancel time).
type Stats struct {
	Workers []WorkerHealth `json:"workers"`
	// RemoteClusters counts cluster builds answered by the fleet;
	// FallbackLocal those that degraded to the in-process dispatcher
	// (fleet down, retries exhausted). FallbackLocal > 0 is the
	// operator's early-warning signal: the build still succeeded, but
	// capacity silently moved back onto the coordinator.
	RemoteClusters int64 `json:"remote_clusters"`
	FallbackLocal  int64 `json:"fallback_local"`
	// RemoteFactors counts Schwarz factor blocks the fleet factorized;
	// FactorMisses the factor dispatches that failed (fleet down, retries
	// exhausted, validation rejected the factor) and fell back to a local
	// factorization inside the Schwarz builder. Like FallbackLocal, a
	// nonzero FactorMisses means the build succeeded with capacity
	// silently back on the coordinator.
	RemoteFactors int64 `json:"remote_factors"`
	FactorMisses  int64 `json:"factor_misses"`
	// PeerFetches counts one-hop peer cache fetches workers reported
	// attempting after a membership change moved a key; PeerHits the ones
	// the previous owner served (no rebuild). MembershipEpoch is the
	// current epoch counter — it bumps on every observed change of the
	// up-set.
	PeerFetches     int64 `json:"peer_fetches"`
	PeerHits        int64 `json:"peer_hits"`
	MembershipEpoch int64 `json:"membership_epoch"`
	// StreamFirstResultMS / StreamLastResultMS are the most recent
	// streamed dispatch's first- and last-result latencies;
	// StreamOverlapSavedMS is the cumulative stitch time streamed builds
	// overlapped with in-flight cluster builds (work the barrier path
	// would have serialized after the slowest cluster).
	StreamFirstResultMS  float64 `json:"stream_first_result_ms"`
	StreamLastResultMS   float64 `json:"stream_last_result_ms"`
	StreamOverlapSavedMS float64 `json:"stream_overlap_saved_ms"`

	MeanLatencyMS float64         `json:"remote_mean_latency_ms"`
	P50LatencyMS  float64         `json:"remote_p50_latency_ms"`
	P95LatencyMS  float64         `json:"remote_p95_latency_ms"`
	P99LatencyMS  float64         `json:"remote_p99_latency_ms"`
	Latency       []LatencyBucket `json:"remote_latency_histogram"`
}
