// Package order provides fill-reducing orderings for sparse Cholesky
// factorization: reverse Cuthill–McKee (RCM), lazy minimum degree (MD), and
// BFS-separator nested dissection (ND). These stand in for the AMD ordering
// CHOLMOD uses in the paper's experimental setup.
//
// All orderings return a permutation perm with perm[newIdx] = oldIdx.
package order

import (
	"container/heap"
	"sort"
)

// Adjacency is the minimal graph view orderings need: vertex count and a
// neighbor iterator. internal/graph.Graph satisfies it via Adapter.
type Adjacency interface {
	Len() int
	Visit(u int, fn func(v int))
}

// Method selects an ordering algorithm.
type Method int

const (
	// Auto picks MinDegree for small or tree-like graphs and
	// NestedDissection for large mesh-like graphs. It is the zero value
	// deliberately: a zero Options in internal/chol must select a real
	// fill-reducing ordering, never the identity.
	Auto Method = iota
	// RCM is reverse Cuthill–McKee: cheap, bandwidth-reducing.
	RCM
	// MinDegree is a lazy minimum-degree ordering; excellent on
	// ultra-sparse (tree-like) graphs such as sparsifiers.
	MinDegree
	// NestedDissection recursively splits the graph with BFS-level
	// separators; the right choice for large meshes and grids.
	NestedDissection
	// Natural keeps the input order (identity permutation).
	Natural
)

func (m Method) String() string {
	switch m {
	case Natural:
		return "natural"
	case RCM:
		return "rcm"
	case MinDegree:
		return "mindeg"
	case NestedDissection:
		return "nd"
	case Auto:
		return "auto"
	}
	return "unknown"
}

// Compute returns the permutation for the requested method.
func Compute(a Adjacency, m Method) []int {
	switch m {
	case Natural:
		perm := make([]int, a.Len())
		for i := range perm {
			perm[i] = i
		}
		return perm
	case RCM:
		return ComputeRCM(a)
	case MinDegree:
		return ComputeMinDegree(a)
	case NestedDissection:
		return ComputeND(a)
	case Auto:
		n := a.Len()
		deg2 := 0
		for u := 0; u < n; u++ {
			a.Visit(u, func(int) { deg2++ })
		}
		avgDeg := 0.0
		if n > 0 {
			avgDeg = float64(deg2) / float64(n)
		}
		// Minimum degree shines on ultra-sparse (tree-like) graphs — the
		// sparsifier Laplacians — where elimination fronts stay tiny. On
		// mesh/grid-like graphs its lazy clique formation blows up, so
		// anything denser than ~2.6 average degree goes to nested
		// dissection once it is big enough to matter.
		if avgDeg <= 2.6 || n <= 2000 {
			return ComputeMinDegree(a)
		}
		return ComputeND(a)
	}
	panic("order: unknown method")
}

// ComputeRCM returns the reverse Cuthill–McKee ordering, processing each
// connected component from a pseudo-peripheral start vertex.
func ComputeRCM(a Adjacency) []int {
	n := a.Len()
	deg := degrees(a)
	visited := make([]bool, n)
	order := make([]int, 0, n)
	queue := make([]int, 0, n)
	var nbr []int
	for s := 0; s < n; s++ {
		if visited[s] {
			continue
		}
		start := pseudoPeripheral(a, s, deg)
		visited[start] = true
		queue = append(queue[:0], start)
		for qi := 0; qi < len(queue); qi++ {
			u := queue[qi]
			order = append(order, u)
			nbr = nbr[:0]
			a.Visit(u, func(v int) {
				if !visited[v] {
					visited[v] = true
					nbr = append(nbr, v)
				}
			})
			sort.Slice(nbr, func(x, y int) bool { return deg[nbr[x]] < deg[nbr[y]] })
			queue = append(queue, nbr...)
		}
	}
	// Reverse for RCM.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}

func degrees(a Adjacency) []int {
	deg := make([]int, a.Len())
	for u := range deg {
		a.Visit(u, func(int) { deg[u]++ })
	}
	return deg
}

// pseudoPeripheral finds an approximate peripheral vertex of s's component
// by repeated farthest-vertex BFS (at most 4 sweeps).
func pseudoPeripheral(a Adjacency, s int, deg []int) int {
	n := a.Len()
	dist := make([]int, n)
	cur := s
	bestEcc := -1
	for iter := 0; iter < 4; iter++ {
		for i := range dist {
			dist[i] = -1
		}
		dist[cur] = 0
		q := []int{cur}
		last := cur
		ecc := 0
		for qi := 0; qi < len(q); qi++ {
			u := q[qi]
			a.Visit(u, func(v int) {
				if dist[v] == -1 {
					dist[v] = dist[u] + 1
					if dist[v] > ecc || (dist[v] == ecc && deg[v] < deg[last]) {
						ecc = dist[v]
						last = v
					}
					q = append(q, v)
				}
			})
		}
		if ecc <= bestEcc {
			break
		}
		bestEcc = ecc
		cur = last
	}
	return cur
}

// --- minimum degree ---

type mdItem struct {
	deg, v int
}

type mdHeap []mdItem

func (h mdHeap) Len() int            { return len(h) }
func (h mdHeap) Less(i, j int) bool  { return h[i].deg < h[j].deg }
func (h mdHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *mdHeap) Push(x interface{}) { *h = append(*h, x.(mdItem)) }
func (h *mdHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// ComputeMinDegree returns a minimum-degree ordering using lazy degree
// updates: adjacency lists accumulate duplicates and eliminated vertices and
// are compacted when a vertex is popped. On tree-like graphs (the
// sparsifier Laplacians) this runs in near-linear time with near-zero fill.
func ComputeMinDegree(a Adjacency) []int {
	n := a.Len()
	adj := make([][]int32, n)
	for u := 0; u < n; u++ {
		a.Visit(u, func(v int) {
			adj[u] = append(adj[u], int32(v))
		})
	}
	eliminated := make([]bool, n)
	h := make(mdHeap, 0, n)
	for v := 0; v < n; v++ {
		h = append(h, mdItem{deg: len(adj[v]), v: v})
	}
	heap.Init(&h)
	perm := make([]int, 0, n)
	var scratch []int32
	compact := func(v int) []int32 {
		// Dedup and drop eliminated neighbors in place.
		lst := adj[v]
		sort.Slice(lst, func(i, j int) bool { return lst[i] < lst[j] })
		out := lst[:0]
		var prev int32 = -1
		for _, u := range lst {
			if u == prev || eliminated[u] || int(u) == v {
				continue
			}
			out = append(out, u)
			prev = u
		}
		adj[v] = out
		return out
	}
	for len(perm) < n {
		it := heap.Pop(&h).(mdItem)
		v := it.v
		if eliminated[v] {
			continue
		}
		nb := compact(v)
		if len(nb) > it.deg {
			// Stale (too small) key; reinsert with the true degree.
			heap.Push(&h, mdItem{deg: len(nb), v: v})
			continue
		}
		// Eliminate v: its alive neighbors form a clique.
		eliminated[v] = true
		perm = append(perm, v)
		scratch = append(scratch[:0], nb...)
		for _, u := range scratch {
			adj[u] = append(adj[u], scratch...)
			// Lazy: duplicates and u itself get filtered at compaction.
			heap.Push(&h, mdItem{deg: len(adj[u]), v: int(u)})
		}
		adj[v] = nil
	}
	return perm
}

// --- nested dissection ---

const ndLeafSize = 200

// ComputeND returns a nested-dissection ordering: the graph is recursively
// bisected by a middle BFS level rooted at a pseudo-peripheral vertex; parts
// are ordered first and the separator last. Leaves fall back to RCM-style
// local ordering.
func ComputeND(a Adjacency) []int {
	n := a.Len()
	perm := make([]int, 0, n)
	stamp := make([]int, n) // which subset a vertex currently belongs to
	for i := range stamp {
		stamp[i] = -1
	}
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	nd := &ndCtx{a: a, stamp: stamp, dist: make([]int, n), nextID: 0}
	// Process connected components independently.
	for _, comp := range nd.components(all, -1) {
		nd.dissect(comp, &perm)
	}
	return perm
}

type ndCtx struct {
	a      Adjacency
	stamp  []int // subset id per vertex; -1 = not in any active subset
	dist   []int
	nextID int
}

// components splits subset (whose vertices currently carry stamp id
// `owner`) into connected components, giving each a fresh stamp id.
func (nd *ndCtx) components(subset []int, owner int) [][]int {
	var comps [][]int
	for _, v := range subset {
		if nd.stamp[v] != owner {
			continue // already claimed by a new component
		}
		id := nd.nextID
		nd.nextID++
		comp := []int{v}
		nd.stamp[v] = id
		for qi := 0; qi < len(comp); qi++ {
			u := comp[qi]
			nd.a.Visit(u, func(w int) {
				if nd.stamp[w] == owner {
					nd.stamp[w] = id
					comp = append(comp, w)
				}
			})
		}
		comps = append(comps, comp)
	}
	return comps
}

func (nd *ndCtx) dissect(subset []int, perm *[]int) {
	if len(subset) <= ndLeafSize {
		nd.orderLeaf(subset, perm)
		return
	}
	owner := nd.stamp[subset[0]]
	// BFS from a pseudo-peripheral vertex of the subset.
	src := nd.peripheral(subset, owner)
	maxDist := 0
	for _, v := range subset {
		nd.dist[v] = -1
	}
	nd.dist[src] = 0
	q := make([]int, 0, len(subset))
	q = append(q, src)
	for qi := 0; qi < len(q); qi++ {
		u := q[qi]
		nd.a.Visit(u, func(w int) {
			if nd.stamp[w] == owner && nd.dist[w] == -1 {
				nd.dist[w] = nd.dist[u] + 1
				if nd.dist[w] > maxDist {
					maxDist = nd.dist[w]
				}
				q = append(q, w)
			}
		})
	}
	if maxDist < 2 {
		nd.orderLeaf(subset, perm)
		return
	}
	sepLevel := maxDist / 2
	var sep, rest []int
	for _, v := range subset {
		if nd.dist[v] == sepLevel {
			sep = append(sep, v)
		} else {
			rest = append(rest, v)
		}
	}
	if len(rest) == 0 {
		nd.orderLeaf(subset, perm)
		return
	}
	// Give separator vertices a dedicated stamp so component discovery in
	// `rest` cannot cross them.
	sepID := nd.nextID
	nd.nextID++
	for _, v := range sep {
		nd.stamp[v] = sepID
	}
	for _, comp := range nd.components(rest, owner) {
		nd.dissect(comp, perm)
	}
	nd.orderLeaf(sep, perm)
}

// orderLeaf appends subset in a BFS (Cuthill–McKee) local order. All
// vertices in subset carry the same stamp; disconnected subsets are handled
// by restarting the BFS from each unclaimed vertex.
func (nd *ndCtx) orderLeaf(subset []int, perm *[]int) {
	if len(subset) == 0 {
		return
	}
	owner := nd.stamp[subset[0]]
	done := nd.nextID
	nd.nextID++
	for _, s := range subset {
		if nd.stamp[s] != owner {
			continue // already ordered via an earlier BFS
		}
		nd.stamp[s] = done
		qStart := len(*perm)
		*perm = append(*perm, s)
		for qi := qStart; qi < len(*perm); qi++ {
			u := (*perm)[qi]
			nd.a.Visit(u, func(w int) {
				if nd.stamp[w] == owner {
					nd.stamp[w] = done
					*perm = append(*perm, w)
				}
			})
		}
	}
}

// peripheral returns a pseudo-peripheral vertex within the stamped subset.
func (nd *ndCtx) peripheral(subset []int, owner int) int {
	cur := subset[0]
	bestEcc := -1
	for iter := 0; iter < 3; iter++ {
		for _, v := range subset {
			nd.dist[v] = -1
		}
		nd.dist[cur] = 0
		q := []int{cur}
		last, ecc := cur, 0
		for qi := 0; qi < len(q); qi++ {
			u := q[qi]
			nd.a.Visit(u, func(w int) {
				if nd.stamp[w] == owner && nd.dist[w] == -1 {
					nd.dist[w] = nd.dist[u] + 1
					if nd.dist[w] > ecc {
						ecc = nd.dist[w]
						last = w
					}
					q = append(q, w)
				}
			})
		}
		if ecc <= bestEcc {
			break
		}
		bestEcc, cur = ecc, last
	}
	return cur
}

// Validate reports whether perm is a permutation of 0..n-1.
func Validate(perm []int, n int) bool {
	if len(perm) != n {
		return false
	}
	seen := make([]bool, n)
	for _, p := range perm {
		if p < 0 || p >= n || seen[p] {
			return false
		}
		seen[p] = true
	}
	return true
}
