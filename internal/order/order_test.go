package order

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// sliceAdj adapts an adjacency-list graph for tests.
type sliceAdj [][]int

func (s sliceAdj) Len() int { return len(s) }
func (s sliceAdj) Visit(u int, fn func(v int)) {
	for _, v := range s[u] {
		fn(v)
	}
}

func grid(nx, ny int) sliceAdj {
	adj := make(sliceAdj, nx*ny)
	id := func(x, y int) int { return y*nx + x }
	link := func(a, b int) {
		adj[a] = append(adj[a], b)
		adj[b] = append(adj[b], a)
	}
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			if x+1 < nx {
				link(id(x, y), id(x+1, y))
			}
			if y+1 < ny {
				link(id(x, y), id(x, y+1))
			}
		}
	}
	return adj
}

func path(n int) sliceAdj {
	adj := make(sliceAdj, n)
	for i := 0; i+1 < n; i++ {
		adj[i] = append(adj[i], i+1)
		adj[i+1] = append(adj[i+1], i)
	}
	return adj
}

func randomAdj(n int, m int, seed int64) sliceAdj {
	rng := rand.New(rand.NewSource(seed))
	adj := make(sliceAdj, n)
	for k := 0; k < m; k++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		adj[u] = append(adj[u], v)
		adj[v] = append(adj[v], u)
	}
	return adj
}

func TestAllMethodsProduceValidPermutations(t *testing.T) {
	g := grid(13, 17)
	for _, m := range []Method{Natural, RCM, MinDegree, NestedDissection, Auto} {
		perm := Compute(g, m)
		if !Validate(perm, g.Len()) {
			t.Errorf("%v: invalid permutation", m)
		}
	}
}

func TestValidPermutationsOnRandomGraphsQuick(t *testing.T) {
	f := func(seed int64) bool {
		n := 2 + int(seed%97+97)%97
		g := randomAdj(n, 3*n, seed)
		for _, m := range []Method{RCM, MinDegree, NestedDissection} {
			if !Validate(Compute(g, m), n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestMinDegreeEliminatesPathLeavesFirst(t *testing.T) {
	// On a path the minimum-degree order must start with an endpoint
	// (degree 1) and never pick an interior vertex while an endpoint-like
	// leaf exists; the resulting elimination has zero fill, which shows up
	// as every eliminated vertex having at most 2 alive neighbors. We just
	// check the first vertex is an endpoint.
	perm := ComputeMinDegree(path(50))
	if first := perm[0]; first != 0 && first != 49 {
		t.Errorf("first eliminated vertex %d is not a path endpoint", first)
	}
	if !Validate(perm, 50) {
		t.Error("invalid permutation")
	}
}

func TestRCMReducesGridBandwidth(t *testing.T) {
	nx, ny := 9, 30
	g := grid(nx, ny)
	perm := ComputeRCM(g)
	inv := make([]int, len(perm))
	for i, p := range perm {
		inv[p] = i
	}
	band := 0
	for u := 0; u < g.Len(); u++ {
		g.Visit(u, func(v int) {
			if d := inv[u] - inv[v]; d > band {
				band = d
			} else if -d > band {
				band = -d
			}
		})
	}
	// Natural ordering of a 9×30 grid has bandwidth ≥ 9 when numbered
	// row-major along the long side; RCM should stay near the short side.
	if band > 2*nx {
		t.Errorf("RCM bandwidth %d too large for %dx%d grid", band, nx, ny)
	}
}

func TestNDHandlesDisconnectedGraphs(t *testing.T) {
	adj := make(sliceAdj, 10) // two components: a path and isolated vertices
	for i := 0; i < 4; i++ {
		adj[i] = append(adj[i], i+1)
		adj[i+1] = append(adj[i+1], i)
	}
	perm := ComputeND(adj)
	if !Validate(perm, 10) {
		t.Errorf("ND on disconnected graph invalid: %v", perm)
	}
}

func TestNDSeparatorLast(t *testing.T) {
	// On a long path, ND should place some middle vertex last (separator
	// of the top-level split is ordered after both halves).
	n := 2000
	perm := ComputeND(path(n))
	if !Validate(perm, n) {
		t.Fatal("invalid permutation")
	}
	last := perm[n-1]
	if last < n/8 || last > 7*n/8 {
		t.Errorf("last-ordered vertex %d is not in the middle of the path", last)
	}
}

func TestAutoPicksSomethingValidForLargeGraph(t *testing.T) {
	g := grid(160, 160) // 25.6k vertices, mesh-like → ND path
	perm := Compute(g, Auto)
	if !Validate(perm, g.Len()) {
		t.Error("Auto ordering invalid on large grid")
	}
}

func TestEmptyGraph(t *testing.T) {
	g := sliceAdj{}
	for _, m := range []Method{Natural, RCM, MinDegree, NestedDissection} {
		if perm := Compute(g, m); len(perm) != 0 {
			t.Errorf("%v: expected empty permutation", m)
		}
	}
}

func TestSingleVertex(t *testing.T) {
	g := sliceAdj{nil}
	for _, m := range []Method{RCM, MinDegree, NestedDissection} {
		perm := Compute(g, m)
		if len(perm) != 1 || perm[0] != 0 {
			t.Errorf("%v: got %v", m, perm)
		}
	}
}

func TestValidateRejectsBadPerms(t *testing.T) {
	if Validate([]int{0, 0}, 2) {
		t.Error("duplicate accepted")
	}
	if Validate([]int{0, 2}, 2) {
		t.Error("out-of-range accepted")
	}
	if Validate([]int{0}, 2) {
		t.Error("short permutation accepted")
	}
}
