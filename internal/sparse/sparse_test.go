package sparse

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func buildTestMatrix() *CSC {
	// [ 4 -1  0]
	// [-1  4 -2]
	// [ 0 -2  5]
	t := NewTriplet(3, 3)
	t.Add(0, 0, 4)
	t.Add(0, 1, -1)
	t.Add(1, 0, -1)
	t.Add(1, 1, 4)
	t.Add(1, 2, -2)
	t.Add(2, 1, -2)
	t.Add(2, 2, 5)
	return t.ToCSC()
}

func TestTripletToCSCBasic(t *testing.T) {
	a := buildTestMatrix()
	if a.NNZ() != 7 {
		t.Fatalf("NNZ = %d, want 7", a.NNZ())
	}
	if got := a.At(0, 0); got != 4 {
		t.Errorf("At(0,0) = %g, want 4", got)
	}
	if got := a.At(2, 1); got != -2 {
		t.Errorf("At(2,1) = %g, want -2", got)
	}
	if got := a.At(0, 2); got != 0 {
		t.Errorf("At(0,2) = %g, want 0", got)
	}
}

func TestTripletDuplicatesSummed(t *testing.T) {
	tr := NewTriplet(2, 2)
	tr.Add(0, 0, 1)
	tr.Add(0, 0, 2.5)
	tr.Add(1, 0, -1)
	a := tr.ToCSC()
	if got := a.At(0, 0); got != 3.5 {
		t.Errorf("duplicate sum = %g, want 3.5", got)
	}
	if a.NNZ() != 2 {
		t.Errorf("NNZ = %d, want 2", a.NNZ())
	}
}

func TestTripletRowsSortedWithinColumns(t *testing.T) {
	tr := NewTriplet(5, 2)
	tr.Add(4, 0, 1)
	tr.Add(0, 0, 1)
	tr.Add(2, 0, 1)
	tr.Add(3, 1, 1)
	tr.Add(1, 1, 1)
	a := tr.ToCSC()
	for j := 0; j < a.Cols; j++ {
		for k := a.ColPtr[j] + 1; k < a.ColPtr[j+1]; k++ {
			if a.RowIdx[k-1] >= a.RowIdx[k] {
				t.Fatalf("column %d rows not strictly ascending: %v", j, a.RowIdx[a.ColPtr[j]:a.ColPtr[j+1]])
			}
		}
	}
}

func TestTripletOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range entry")
		}
	}()
	NewTriplet(2, 2).Add(2, 0, 1)
}

func TestMulVec(t *testing.T) {
	a := buildTestMatrix()
	x := []float64{1, 2, 3}
	y := make([]float64, 3)
	a.MulVec(x, y)
	want := []float64{4*1 - 1*2, -1*1 + 4*2 - 2*3, -2*2 + 5*3}
	for i := range want {
		if math.Abs(y[i]-want[i]) > 1e-14 {
			t.Errorf("y[%d] = %g, want %g", i, y[i], want[i])
		}
	}
}

func TestMulVecTMatchesTransposeMulVec(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tr := NewTriplet(6, 4)
	for k := 0; k < 12; k++ {
		tr.Add(rng.Intn(6), rng.Intn(4), rng.NormFloat64())
	}
	a := tr.ToCSC()
	at := a.Transpose()
	x := make([]float64, 6)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	y1 := make([]float64, 4)
	a.MulVecT(x, y1)
	y2 := make([]float64, 4)
	at.MulVec(x, y2)
	for i := range y1 {
		if math.Abs(y1[i]-y2[i]) > 1e-12 {
			t.Errorf("MulVecT mismatch at %d: %g vs %g", i, y1[i], y2[i])
		}
	}
}

func TestTransposeTwiceIsIdentity(t *testing.T) {
	a := buildTestMatrix()
	b := a.Transpose().Transpose()
	da, db := a.Dense(), b.Dense()
	for i := range da {
		for j := range da[i] {
			if da[i][j] != db[i][j] {
				t.Fatalf("(Aᵀ)ᵀ differs at (%d,%d)", i, j)
			}
		}
	}
}

func TestPermuteSym(t *testing.T) {
	a := buildTestMatrix()
	perm := []int{2, 0, 1} // new 0 ← old 2, etc.
	b := a.PermuteSym(perm)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if got, want := b.At(i, j), a.At(perm[i], perm[j]); got != want {
				t.Errorf("B(%d,%d) = %g, want A(%d,%d) = %g", i, j, got, perm[i], perm[j], want)
			}
		}
	}
}

func TestPermuteSymIdentity(t *testing.T) {
	a := buildTestMatrix()
	b := a.PermuteSym([]int{0, 1, 2})
	if !b.IsSymmetric(0) || b.At(1, 2) != a.At(1, 2) {
		t.Error("identity permutation changed the matrix")
	}
}

func TestLowerKeepsDiagonalAndBelow(t *testing.T) {
	a := buildTestMatrix()
	l := a.Lower()
	if l.At(0, 1) != 0 {
		t.Error("Lower kept an upper entry")
	}
	if l.At(1, 0) != -1 || l.At(1, 1) != 4 {
		t.Error("Lower dropped a lower/diagonal entry")
	}
}

func TestIsSymmetric(t *testing.T) {
	if !buildTestMatrix().IsSymmetric(0) {
		t.Error("symmetric matrix reported asymmetric")
	}
	tr := NewTriplet(2, 2)
	tr.Add(0, 1, 1)
	if tr.ToCSC().IsSymmetric(0) {
		t.Error("asymmetric matrix reported symmetric")
	}
}

func TestAddDiag(t *testing.T) {
	a := buildTestMatrix()
	b := a.AddDiag([]float64{1, 2, 3})
	if b.At(0, 0) != 5 || b.At(1, 1) != 6 || b.At(2, 2) != 8 {
		t.Errorf("AddDiag diagonal wrong: %g %g %g", b.At(0, 0), b.At(1, 1), b.At(2, 2))
	}
	if b.At(0, 1) != a.At(0, 1) {
		t.Error("AddDiag modified off-diagonal")
	}
}

func TestIdentity(t *testing.T) {
	i3 := Identity(3)
	x := []float64{3, -1, 7}
	y := make([]float64, 3)
	i3.MulVec(x, y)
	for k := range x {
		if y[k] != x[k] {
			t.Fatalf("I x ≠ x at %d", k)
		}
	}
}

func TestDiag(t *testing.T) {
	d := buildTestMatrix().Diag()
	want := []float64{4, 4, 5}
	for i := range want {
		if d[i] != want[i] {
			t.Errorf("Diag[%d] = %g, want %g", i, d[i], want[i])
		}
	}
}

// Property: for random sparse symmetric A and any permutation,
// PermuteSym preserves the multiset of entries and symmetry.
func TestPermuteSymPropertyQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		tr := NewTriplet(n, n)
		for k := 0; k < 3*n; k++ {
			i, j := rng.Intn(n), rng.Intn(n)
			v := rng.NormFloat64()
			tr.Add(i, j, v)
			if i != j {
				tr.Add(j, i, v)
			}
		}
		a := tr.ToCSC()
		perm := rng.Perm(n)
		b := a.PermuteSym(perm)
		if !b.IsSymmetric(1e-12) {
			return false
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if math.Abs(b.At(i, j)-a.At(perm[i], perm[j])) > 1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestMatrixMarketRoundTrip(t *testing.T) {
	a := buildTestMatrix()
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, a, true); err != nil {
		t.Fatal(err)
	}
	b, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if b.Rows != 3 || b.Cols != 3 {
		t.Fatalf("shape %dx%d, want 3x3", b.Rows, b.Cols)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if math.Abs(a.At(i, j)-b.At(i, j)) > 1e-15 {
				t.Errorf("round trip differs at (%d,%d): %g vs %g", i, j, a.At(i, j), b.At(i, j))
			}
		}
	}
}

func TestMatrixMarketGeneral(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real general
% a comment
3 2 3
1 1 1.5
3 2 -2
2 1 4
`
	a, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if a.Rows != 3 || a.Cols != 2 || a.NNZ() != 3 {
		t.Fatalf("got %dx%d nnz=%d", a.Rows, a.Cols, a.NNZ())
	}
	if a.At(0, 0) != 1.5 || a.At(2, 1) != -2 || a.At(1, 0) != 4 {
		t.Error("entries wrong after parse")
	}
}

func TestMatrixMarketPattern(t *testing.T) {
	in := "%%MatrixMarket matrix coordinate pattern symmetric\n2 2 2\n1 1\n2 1\n"
	a, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if a.At(0, 0) != 1 || a.At(1, 0) != 1 || a.At(0, 1) != 1 {
		t.Error("pattern symmetric expansion wrong")
	}
}

func TestMatrixMarketErrors(t *testing.T) {
	cases := []string{
		"not a header\n1 1 1\n",
		"%%MatrixMarket matrix array real general\n1 1\n",
		"%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 2\n",
		"%%MatrixMarket matrix coordinate real general\n2 2 1\n",                 // missing entry
		"%%MatrixMarket matrix coordinate real general\n-1 2 1\n1 1 1\n",         // negative dims
		"%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1\n",          // entry out of range
		"%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1\n",          // 1-based index underflow
		"%%MatrixMarket matrix coordinate real general\n9999 9999 1\n1 2 1\n",    // dims >> nnz
		"%%MatrixMarket matrix coordinate real symmetric\n3 2 2\n3 1 1\n1 1 1\n", // symmetric must be square
	}
	for i, in := range cases {
		if _, err := ReadMatrixMarket(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: expected parse error", i)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	a := buildTestMatrix()
	b := a.Clone()
	b.Val[0] = 99
	if a.Val[0] == 99 {
		t.Error("Clone shares value storage")
	}
}

func TestScale(t *testing.T) {
	a := buildTestMatrix()
	a.Scale(2)
	if a.At(0, 0) != 8 || a.At(1, 2) != -4 {
		t.Error("Scale wrong")
	}
}
