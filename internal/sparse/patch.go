package sparse

import "sort"

// This file holds the in-place patching primitives behind the streaming
// delta path: instead of reassembling a CSC matrix from triplets after a
// small edit (O(nnz log nnz)), callers locate and overwrite the touched
// entries (O(k log deg)), occasionally paying one O(nnz) merge pass when
// the sparsity pattern must grow.

// FindEntry returns the storage index of entry (i, j), or -1 if the
// position is not in the pattern. Binary search within column j.
func (a *CSC) FindEntry(i, j int) int {
	lo, hi := a.ColPtr[j], a.ColPtr[j+1]
	k := sort.SearchInts(a.RowIdx[lo:hi], i)
	if lo+k < hi && a.RowIdx[lo+k] == i {
		return lo + k
	}
	return -1
}

// CloneValues returns a copy of a that shares the (immutable) pattern
// arrays ColPtr/RowIdx and owns a fresh Val slice — the cheap clone for
// patches that only change values, which is the common streaming case.
func (a *CSC) CloneValues() *CSC {
	return &CSC{
		Rows:   a.Rows,
		Cols:   a.Cols,
		ColPtr: a.ColPtr,
		RowIdx: a.RowIdx,
		Val:    append([]float64(nil), a.Val...),
	}
}

// Entry is one (row, col, value) coordinate for InsertEntries.
type Entry struct {
	I, J int
	V    float64
}

// InsertEntries returns a new matrix equal to a with the given entries
// merged into the pattern in one O(nnz + k log k) pass. An entry whose
// position already exists overwrites the stored value instead of
// duplicating the slot. The receiver is not modified.
func (a *CSC) InsertEntries(entries []Entry) *CSC {
	if len(entries) == 0 {
		return a.CloneValues()
	}
	ins := append([]Entry(nil), entries...)
	sort.Slice(ins, func(x, y int) bool {
		if ins[x].J != ins[y].J {
			return ins[x].J < ins[y].J
		}
		return ins[x].I < ins[y].I
	})
	out := &CSC{
		Rows:   a.Rows,
		Cols:   a.Cols,
		ColPtr: make([]int, a.Cols+1),
		RowIdx: make([]int, 0, a.NNZ()+len(ins)),
		Val:    make([]float64, 0, a.NNZ()+len(ins)),
	}
	p := 0 // cursor into ins
	for j := 0; j < a.Cols; j++ {
		k := a.ColPtr[j]
		hi := a.ColPtr[j+1]
		for k < hi || (p < len(ins) && ins[p].J == j) {
			switch {
			case p >= len(ins) || ins[p].J != j || (k < hi && a.RowIdx[k] < ins[p].I):
				out.RowIdx = append(out.RowIdx, a.RowIdx[k])
				out.Val = append(out.Val, a.Val[k])
				k++
			case k < hi && a.RowIdx[k] == ins[p].I:
				// Position exists: overwrite, consume both.
				out.RowIdx = append(out.RowIdx, a.RowIdx[k])
				out.Val = append(out.Val, ins[p].V)
				k++
				p++
			default:
				out.RowIdx = append(out.RowIdx, ins[p].I)
				out.Val = append(out.Val, ins[p].V)
				p++
			}
		}
		out.ColPtr[j+1] = len(out.RowIdx)
	}
	return out
}

// DropZeros returns a copy of a without stored zero entries; diagonal
// positions are always kept (factorizations want a structurally
// nonsingular diagonal). Patched Laplacians accumulate stored zeros as
// edge removals blank out slots; callers compact once the dead fraction
// is worth the O(nnz) pass.
func (a *CSC) DropZeros() *CSC {
	out := &CSC{
		Rows:   a.Rows,
		Cols:   a.Cols,
		ColPtr: make([]int, a.Cols+1),
		RowIdx: make([]int, 0, a.NNZ()),
		Val:    make([]float64, 0, a.NNZ()),
	}
	for j := 0; j < a.Cols; j++ {
		for k := a.ColPtr[j]; k < a.ColPtr[j+1]; k++ {
			if a.Val[k] == 0 && a.RowIdx[k] != j {
				continue
			}
			out.RowIdx = append(out.RowIdx, a.RowIdx[k])
			out.Val = append(out.Val, a.Val[k])
		}
		out.ColPtr[j+1] = len(out.RowIdx)
	}
	return out
}
