package sparse

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadMatrixMarket parses a Matrix Market "coordinate real" matrix
// (general, symmetric, or skew-symmetric) from r. Symmetric inputs are
// expanded to full storage. Pattern matrices get value 1 per entry.
//
// This exists so the SuiteSparse matrices the paper evaluates on can be
// dropped in directly when available; the bench harness otherwise uses the
// synthetic generators in internal/gen. Because every caller loads
// graph-shaped matrices (full diagonal or connected adjacency, so
// nnz ≥ dim), headers declaring dimensions beyond nnz+1 are rejected as
// malformed rather than parsed — this deliberately trades spec generality
// (mostly-empty matrices) for not letting a tiny untrusted upload drive
// O(dim) allocations; see cmd/trsparsed.
func ReadMatrixMarket(r io.Reader) (*CSC, error) {
	br := bufio.NewReader(r)
	header, err := br.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("sparse: reading MatrixMarket header: %w", err)
	}
	fields := strings.Fields(strings.ToLower(header))
	if len(fields) < 5 || fields[0] != "%%matrixmarket" || fields[1] != "matrix" {
		return nil, fmt.Errorf("sparse: not a MatrixMarket matrix header: %q", strings.TrimSpace(header))
	}
	format, valType, symmetry := fields[2], fields[3], fields[4]
	if format != "coordinate" {
		return nil, fmt.Errorf("sparse: unsupported MatrixMarket format %q (only coordinate)", format)
	}
	pattern := valType == "pattern"
	if !pattern && valType != "real" && valType != "integer" {
		return nil, fmt.Errorf("sparse: unsupported MatrixMarket value type %q", valType)
	}
	symmetric := symmetry == "symmetric"
	skew := symmetry == "skew-symmetric"
	if !symmetric && !skew && symmetry != "general" {
		return nil, fmt.Errorf("sparse: unsupported MatrixMarket symmetry %q", symmetry)
	}

	// Skip comments, read size line.
	var rows, cols, nnz int
	for {
		line, err := br.ReadString('\n')
		if err != nil && line == "" {
			return nil, fmt.Errorf("sparse: unexpected EOF before MatrixMarket size line")
		}
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		if _, err := fmt.Sscan(line, &rows, &cols, &nnz); err != nil {
			return nil, fmt.Errorf("sparse: bad MatrixMarket size line %q: %w", line, err)
		}
		if rows < 0 || cols < 0 || nnz < 0 {
			return nil, fmt.Errorf("sparse: negative MatrixMarket dimensions %dx%d nnz=%d", rows, cols, nnz)
		}
		// Downstream conversion allocates O(rows+cols); every matrix this
		// reader exists for (SDD with full diagonal, adjacency of a
		// connected graph) has nnz ≥ dim, so a header declaring huge
		// dimensions against a few entries is malformed — reject it before
		// a tiny input can drive a giant allocation.
		if rows > nnz+1 || cols > nnz+1 {
			return nil, fmt.Errorf("sparse: MatrixMarket header declares %dx%d but only %d entries", rows, cols, nnz)
		}
		// The MM spec requires symmetric storage to be square; without
		// this the mirrored Add of an in-range (i,j) can be out of range.
		if (symmetric || skew) && rows != cols {
			return nil, fmt.Errorf("sparse: %s MatrixMarket matrix must be square, got %dx%d", symmetry, rows, cols)
		}
		break
	}

	t := NewTriplet(rows, cols)
	read := 0
	for read < nnz {
		line, err := br.ReadString('\n')
		if err != nil && line == "" {
			return nil, fmt.Errorf("sparse: unexpected EOF after %d of %d entries", read, nnz)
		}
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 2 {
			return nil, fmt.Errorf("sparse: bad MatrixMarket entry %q", line)
		}
		i, err := strconv.Atoi(f[0])
		if err != nil {
			return nil, fmt.Errorf("sparse: bad row index %q: %w", f[0], err)
		}
		j, err := strconv.Atoi(f[1])
		if err != nil {
			return nil, fmt.Errorf("sparse: bad column index %q: %w", f[1], err)
		}
		v := 1.0
		if !pattern {
			if len(f) < 3 {
				return nil, fmt.Errorf("sparse: missing value in entry %q", line)
			}
			v, err = strconv.ParseFloat(f[2], 64)
			if err != nil {
				return nil, fmt.Errorf("sparse: bad value %q: %w", f[2], err)
			}
		}
		i--
		j--
		if i < 0 || i >= rows || j < 0 || j >= cols {
			return nil, fmt.Errorf("sparse: MatrixMarket entry (%d,%d) out of declared range %dx%d", i+1, j+1, rows, cols)
		}
		t.Add(i, j, v)
		if i != j {
			if symmetric {
				t.Add(j, i, v)
			} else if skew {
				t.Add(j, i, -v)
			}
		}
		read++
	}
	return t.ToCSC(), nil
}

// WriteMatrixMarket writes A in "coordinate real general" form, or
// "coordinate real symmetric" (lower triangle only) when symmetric is true.
func WriteMatrixMarket(w io.Writer, a *CSC, symmetric bool) error {
	bw := bufio.NewWriter(w)
	kind := "general"
	if symmetric {
		kind = "symmetric"
	}
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate real %s\n", kind); err != nil {
		return err
	}
	nnz := 0
	for j := 0; j < a.Cols; j++ {
		for k := a.ColPtr[j]; k < a.ColPtr[j+1]; k++ {
			if symmetric && a.RowIdx[k] < j {
				continue
			}
			nnz++
		}
	}
	if _, err := fmt.Fprintf(bw, "%d %d %d\n", a.Rows, a.Cols, nnz); err != nil {
		return err
	}
	for j := 0; j < a.Cols; j++ {
		for k := a.ColPtr[j]; k < a.ColPtr[j+1]; k++ {
			i := a.RowIdx[k]
			if symmetric && i < j {
				continue
			}
			if _, err := fmt.Fprintf(bw, "%d %d %.17g\n", i+1, j+1, a.Val[k]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
