// Package sparse provides compressed sparse column (CSC) matrices, triplet
// (coordinate) assembly, and the small set of kernels the sparsifier stack
// needs: matrix–vector products, transposition, symmetric permutation,
// triangle extraction, and dense conversion for tests.
//
// All matrices are real (float64) and indices are 0-based. Column pointers
// follow the usual CSC convention: the nonzeros of column j occupy
// RowIdx[ColPtr[j]:ColPtr[j+1]] and Val[ColPtr[j]:ColPtr[j+1]], sorted by
// row index with no duplicates.
package sparse

import (
	"fmt"
	"sort"
)

// CSC is a sparse matrix in compressed sparse column form.
type CSC struct {
	Rows, Cols int
	ColPtr     []int // length Cols+1
	RowIdx     []int // length NNZ, sorted within each column
	Val        []float64
}

// NNZ returns the number of stored entries.
func (a *CSC) NNZ() int { return len(a.RowIdx) }

// Clone returns a deep copy of a.
func (a *CSC) Clone() *CSC {
	b := &CSC{
		Rows:   a.Rows,
		Cols:   a.Cols,
		ColPtr: append([]int(nil), a.ColPtr...),
		RowIdx: append([]int(nil), a.RowIdx...),
		Val:    append([]float64(nil), a.Val...),
	}
	return b
}

// At returns the entry at (i, j) using binary search within column j.
// It is intended for tests and debugging, not inner loops.
func (a *CSC) At(i, j int) float64 {
	lo, hi := a.ColPtr[j], a.ColPtr[j+1]
	k := sort.SearchInts(a.RowIdx[lo:hi], i)
	if lo+k < hi && a.RowIdx[lo+k] == i {
		return a.Val[lo+k]
	}
	return 0
}

// MulVec computes y = A x. y must have length Rows and x length Cols;
// y is overwritten.
func (a *CSC) MulVec(x, y []float64) {
	if len(x) != a.Cols || len(y) != a.Rows {
		panic(fmt.Sprintf("sparse: MulVec dimension mismatch: A is %dx%d, x %d, y %d",
			a.Rows, a.Cols, len(x), len(y)))
	}
	for i := range y {
		y[i] = 0
	}
	for j := 0; j < a.Cols; j++ {
		xj := x[j]
		if xj == 0 {
			continue
		}
		for k := a.ColPtr[j]; k < a.ColPtr[j+1]; k++ {
			y[a.RowIdx[k]] += a.Val[k] * xj
		}
	}
}

// MulPanel computes Y = A X for an interleaved Rows×s panel: entry (i, k)
// lives at index i*s+k, so one traversal of A serves all s columns — the
// bandwidth win behind the block-PCG solve path. x needs Cols·s entries
// and y Rows·s; y is overwritten. Per panel column the accumulation order
// matches MulVec exactly, except that MulVec's skip of zero x-entries is
// not taken (those terms add an exact 0 and only matter for the sign of a
// negative zero).
func (a *CSC) MulPanel(x, y []float64, s int) {
	if len(x) < a.Cols*s || len(y) < a.Rows*s {
		panic(fmt.Sprintf("sparse: MulPanel dimension mismatch: A is %dx%d, x %d, y %d, width %d",
			a.Rows, a.Cols, len(x), len(y), s))
	}
	y = y[:a.Rows*s]
	for i := range y {
		y[i] = 0
	}
	if s == 8 {
		a.mulPanel8(x, y)
		return
	}
	for j := 0; j < a.Cols; j++ {
		xj := x[j*s : j*s+s]
		for k := a.ColPtr[j]; k < a.ColPtr[j+1]; k++ {
			v := a.Val[k]
			ri := a.RowIdx[k] * s
			row := y[ri : ri+s]
			// Bounded row slice plus the xj hint let the compiler drop the
			// per-lane bounds checks in the hot loop.
			_ = xj[len(row)-1]
			for c := range row {
				row[c] += v * xj[c]
			}
		}
	}
}

// mulPanel8 is the width-8 MulPanel kernel: the source lanes for each
// column live in eight locals across the column's entries, so every
// stored entry costs eight fused multiply-adds with no per-lane bounds
// checks or reloads. Accumulation order per lane matches the generic
// loop exactly. y must already be zeroed.
func (a *CSC) mulPanel8(x, y []float64) {
	const s = 8
	for j := 0; j < a.Cols; j++ {
		xj := (*[s]float64)(x[j*s:])
		x0, x1, x2, x3 := xj[0], xj[1], xj[2], xj[3]
		x4, x5, x6, x7 := xj[4], xj[5], xj[6], xj[7]
		for k := a.ColPtr[j]; k < a.ColPtr[j+1]; k++ {
			v := a.Val[k]
			row := (*[s]float64)(y[a.RowIdx[k]*s:])
			row[0] += v * x0
			row[1] += v * x1
			row[2] += v * x2
			row[3] += v * x3
			row[4] += v * x4
			row[5] += v * x5
			row[6] += v * x6
			row[7] += v * x7
		}
	}
}

// MulVecT computes y = Aᵀ x. y must have length Cols and x length Rows.
func (a *CSC) MulVecT(x, y []float64) {
	if len(x) != a.Rows || len(y) != a.Cols {
		panic(fmt.Sprintf("sparse: MulVecT dimension mismatch: A is %dx%d, x %d, y %d",
			a.Rows, a.Cols, len(x), len(y)))
	}
	for j := 0; j < a.Cols; j++ {
		var s float64
		for k := a.ColPtr[j]; k < a.ColPtr[j+1]; k++ {
			s += a.Val[k] * x[a.RowIdx[k]]
		}
		y[j] = s
	}
}

// Transpose returns Aᵀ as a new matrix.
func (a *CSC) Transpose() *CSC {
	t := &CSC{
		Rows:   a.Cols,
		Cols:   a.Rows,
		ColPtr: make([]int, a.Rows+1),
		RowIdx: make([]int, a.NNZ()),
		Val:    make([]float64, a.NNZ()),
	}
	// Count entries per row of A (= column of Aᵀ).
	for _, i := range a.RowIdx {
		t.ColPtr[i+1]++
	}
	for i := 0; i < a.Rows; i++ {
		t.ColPtr[i+1] += t.ColPtr[i]
	}
	next := append([]int(nil), t.ColPtr[:a.Rows]...)
	for j := 0; j < a.Cols; j++ {
		for k := a.ColPtr[j]; k < a.ColPtr[j+1]; k++ {
			i := a.RowIdx[k]
			p := next[i]
			next[i]++
			t.RowIdx[p] = j
			t.Val[p] = a.Val[k]
		}
	}
	return t
}

// PermuteSym returns B = P A Pᵀ where A is square and perm maps new indices
// to old ones: B[inew, jnew] = A[perm[inew], perm[jnew]]. A should be
// structurally symmetric for the result to be meaningful as a reordering.
func (a *CSC) PermuteSym(perm []int) *CSC {
	n := a.Cols
	if a.Rows != n || len(perm) != n {
		panic("sparse: PermuteSym needs a square matrix and a permutation of matching size")
	}
	inv := make([]int, n)
	for newIdx, oldIdx := range perm {
		inv[oldIdx] = newIdx
	}
	t := NewTriplet(n, n)
	for j := 0; j < n; j++ {
		jn := inv[j]
		for k := a.ColPtr[j]; k < a.ColPtr[j+1]; k++ {
			t.Add(inv[a.RowIdx[k]], jn, a.Val[k])
		}
	}
	return t.ToCSC()
}

// Lower returns the lower triangle of A including the diagonal.
func (a *CSC) Lower() *CSC {
	t := NewTriplet(a.Rows, a.Cols)
	for j := 0; j < a.Cols; j++ {
		for k := a.ColPtr[j]; k < a.ColPtr[j+1]; k++ {
			if i := a.RowIdx[k]; i >= j {
				t.Add(i, j, a.Val[k])
			}
		}
	}
	return t.ToCSC()
}

// Diag returns a copy of the diagonal of A.
func (a *CSC) Diag() []float64 {
	n := a.Cols
	d := make([]float64, n)
	for j := 0; j < n; j++ {
		d[j] = a.At(j, j)
	}
	return d
}

// Dense expands A into a dense row-major matrix; for tests on small inputs.
func (a *CSC) Dense() [][]float64 {
	m := make([][]float64, a.Rows)
	for i := range m {
		m[i] = make([]float64, a.Cols)
	}
	for j := 0; j < a.Cols; j++ {
		for k := a.ColPtr[j]; k < a.ColPtr[j+1]; k++ {
			m[a.RowIdx[k]][j] = a.Val[k]
		}
	}
	return m
}

// IsSymmetric reports whether A equals Aᵀ up to tol in every entry.
func (a *CSC) IsSymmetric(tol float64) bool {
	if a.Rows != a.Cols {
		return false
	}
	t := a.Transpose()
	if t.NNZ() != a.NNZ() {
		return false
	}
	for j := 0; j < a.Cols; j++ {
		if a.ColPtr[j] != t.ColPtr[j] {
			return false
		}
		for k := a.ColPtr[j]; k < a.ColPtr[j+1]; k++ {
			if a.RowIdx[k] != t.RowIdx[k] {
				return false
			}
			d := a.Val[k] - t.Val[k]
			if d > tol || d < -tol {
				return false
			}
		}
	}
	return true
}

// AddDiag returns a copy of A with d[i] added to entry (i,i). Diagonal
// entries missing from A's pattern are created.
func (a *CSC) AddDiag(d []float64) *CSC {
	if a.Rows != a.Cols || len(d) != a.Cols {
		panic("sparse: AddDiag needs a square matrix and a diagonal of matching size")
	}
	t := NewTriplet(a.Rows, a.Cols)
	for j := 0; j < a.Cols; j++ {
		for k := a.ColPtr[j]; k < a.ColPtr[j+1]; k++ {
			t.Add(a.RowIdx[k], j, a.Val[k])
		}
		t.Add(j, j, d[j])
	}
	return t.ToCSC()
}

// Scale multiplies every stored entry by s, in place.
func (a *CSC) Scale(s float64) {
	for k := range a.Val {
		a.Val[k] *= s
	}
}

// Triplet accumulates (row, col, value) entries; duplicates are summed when
// converting to CSC.
type Triplet struct {
	Rows, Cols int
	I, J       []int
	V          []float64
}

// NewTriplet returns an empty triplet accumulator with the given shape.
func NewTriplet(rows, cols int) *Triplet {
	return &Triplet{Rows: rows, Cols: cols}
}

// Add appends one entry. Panics on out-of-range indices.
func (t *Triplet) Add(i, j int, v float64) {
	if i < 0 || i >= t.Rows || j < 0 || j >= t.Cols {
		panic(fmt.Sprintf("sparse: triplet entry (%d,%d) out of range for %dx%d", i, j, t.Rows, t.Cols))
	}
	t.I = append(t.I, i)
	t.J = append(t.J, j)
	t.V = append(t.V, v)
}

// NNZ returns the number of accumulated entries (before duplicate merging).
func (t *Triplet) NNZ() int { return len(t.I) }

// ToCSC converts the accumulated triplets to CSC form, summing duplicates
// and dropping explicit zeros that result from cancellation is NOT done
// (stored zeros are kept so patterns remain predictable).
func (t *Triplet) ToCSC() *CSC {
	nnz := len(t.I)
	a := &CSC{
		Rows:   t.Rows,
		Cols:   t.Cols,
		ColPtr: make([]int, t.Cols+1),
	}
	// Counting sort by column, then sort each column segment by row and merge.
	count := make([]int, t.Cols+1)
	for _, j := range t.J {
		count[j+1]++
	}
	for j := 0; j < t.Cols; j++ {
		count[j+1] += count[j]
	}
	rowIdx := make([]int, nnz)
	val := make([]float64, nnz)
	next := append([]int(nil), count[:t.Cols]...)
	for k := 0; k < nnz; k++ {
		j := t.J[k]
		p := next[j]
		next[j]++
		rowIdx[p] = t.I[k]
		val[p] = t.V[k]
	}
	outRow := rowIdx[:0]
	outVal := val[:0]
	type kv struct {
		i int
		v float64
	}
	var buf []kv
	pos := 0
	for j := 0; j < t.Cols; j++ {
		lo, hi := count[j], count[j+1]
		buf = buf[:0]
		for k := lo; k < hi; k++ {
			buf = append(buf, kv{rowIdx[k], val[k]})
		}
		sort.Slice(buf, func(x, y int) bool { return buf[x].i < buf[y].i })
		for k := 0; k < len(buf); {
			i := buf[k].i
			s := buf[k].v
			k++
			for k < len(buf) && buf[k].i == i {
				s += buf[k].v
				k++
			}
			outRow = append(outRow, i)
			outVal = append(outVal, s)
			pos++
		}
		a.ColPtr[j+1] = pos
	}
	a.RowIdx = append([]int(nil), outRow...)
	a.Val = append([]float64(nil), outVal...)
	return a
}

// Identity returns the n×n identity matrix.
func Identity(n int) *CSC {
	a := &CSC{
		Rows:   n,
		Cols:   n,
		ColPtr: make([]int, n+1),
		RowIdx: make([]int, n),
		Val:    make([]float64, n),
	}
	for i := 0; i < n; i++ {
		a.ColPtr[i+1] = i + 1
		a.RowIdx[i] = i
		a.Val[i] = 1
	}
	return a
}
