// Package resist estimates per-edge effective resistances at scale.
//
// The effective resistance of an edge e = (u, v) is
// R_eff(e) = (χ_u − χ_v)ᵀ L⁺ (χ_u − χ_v) — the energy of the unit
// current between its endpoints — and w_e·R_eff(e) is the edge's
// leverage score, the sampling weight of the Spielman–Srivastava
// spectral sparsifier (arXiv:0803.0929). Computing it exactly needs a
// pseudoinverse; the standard scalable route is the
// Johnson–Lindenstrauss sketch of the same paper: with Q a k×m random
// ±1/√k matrix and Z = Q W^{1/2} B L⁺,
//
//	R_eff(e) ≈ ‖Z(χ_u − χ_v)‖²   for k = O(log n / ε²),
//
// so k linear solves L zᵢ = (W^{1/2} B)ᵀ qᵢ against random sign vectors
// qᵢ replace n solves against every basis vector. Each sketch column is
// solved with the repository's own stack: PCG (internal/solver) under
// either a monolithic Cholesky of the regularized Laplacian or — when
// the caller supplies a cluster assignment, typically a shard plan —
// the two-level additive Schwarz preconditioner (internal/precond)
// built over those clusters. Sketch solves run concurrently on a
// bounded worker pool and are cancellable mid-sketch.
//
// Exact provides the dense-pseudoinverse reference for small graphs;
// the tests hold the sketch estimator to (1±ε) of it.
package resist

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"repro/internal/dense"
	"repro/internal/graph"
	"repro/internal/lap"
	"repro/internal/precond"
	"repro/internal/solver"
)

// DefaultEpsilon is the target relative accuracy of the sketch estimate
// when Options.Epsilon is unset. The sketch count scales as 1/ε², so
// the default is deliberately coarse: resistances feed importance
// sampling and candidate ranking, which tolerate constant-factor noise.
const DefaultEpsilon = 0.5

// Sketch-count clamps for the auto formula k = ceil(log₂(n+1)/ε²).
const (
	minSketches = 8
	maxSketches = 512
)

// Options configures Estimate. The zero value estimates with the
// default accuracy target on all cores, factorizing the regularized
// Laplacian monolithically.
type Options struct {
	// Sketches is the number k of random-projection columns. 0 derives
	// k from Epsilon: ceil(log₂(n+1)/ε²), clamped to [8, 512].
	Sketches int
	// Epsilon is the target relative accuracy when Sketches is unset
	// (default DefaultEpsilon). Smaller ε means more sketch solves.
	Epsilon float64
	// Tol is the PCG relative-residual tolerance per sketch solve
	// (default 1e-5). Sketching error dominates well before solver
	// error, so this can be much looser than a serving solve.
	Tol float64
	// MaxIter caps PCG iterations per sketch solve (default 10·n).
	MaxIter int
	// Workers bounds concurrent sketch solves (default GOMAXPROCS).
	// The result is bit-reproducible for a fixed (Seed, Sketches,
	// Workers) triple; changing Workers only reorders floating-point
	// accumulation.
	Workers int
	// Seed drives the random sign vectors.
	Seed int64
	// ShiftRel scales the shared diagonal regularization added to the
	// Laplacian before solving (default lap.DefaultShiftRel), the same
	// shift the sparsifier stack uses.
	ShiftRel float64
	// Assign, when non-nil, is a per-vertex cluster assignment — in
	// practice a shard plan — and selects the two-level Schwarz
	// preconditioner over those clusters for the sketch solves. Nil
	// factorizes the regularized Laplacian monolithically, which makes
	// every solve effectively direct; that is the right choice for
	// small graphs and per-cluster estimation, while large monolithic
	// graphs want a plan.
	Assign []int
	// Overlap overrides the Schwarz overlap layers (0 adaptive,
	// negative disables); ignored without Assign.
	Overlap int
	// ApplyWorkers bounds the Schwarz per-apply fan-out across same-color
	// blocks (0 auto-sizes, negative forces sequential); ignored without
	// Assign. The fan-out is bit-identical to the sequential sweep, so
	// this does not perturb the (Seed, Sketches, Workers) reproducibility
	// contract.
	ApplyWorkers int
	// CheckEvery is the PCG cancellation poll cadence
	// (default solver.DefaultCheckEvery).
	CheckEvery int
}

func (o Options) withDefaults(n int) Options {
	if o.Epsilon <= 0 {
		o.Epsilon = DefaultEpsilon
	}
	if o.Sketches <= 0 {
		k := int(math.Ceil(math.Log2(float64(n+1)) / (o.Epsilon * o.Epsilon)))
		if k < minSketches {
			k = minSketches
		}
		if k > maxSketches {
			k = maxSketches
		}
		o.Sketches = k
	}
	if o.Tol <= 0 {
		o.Tol = 1e-5
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.ShiftRel <= 0 {
		o.ShiftRel = lap.DefaultShiftRel
	}
	return o
}

// Result carries the estimated resistances and where the time went.
type Result struct {
	// R is the estimated effective resistance per edge, aligned with
	// g.Edges.
	R []float64
	// Sketches is the number of sketch columns actually solved.
	Sketches int
	// Iterations is the total PCG iteration count across all sketch
	// solves (0 when the monolithic factorization answers directly).
	Iterations int
	// Unconverged counts sketch solves that hit MaxIter before reaching
	// Tol; their best iterates still contribute to the estimate.
	Unconverged int
	// PrecondKind reports which preconditioner backed the solves
	// ("monolithic" or "schwarz").
	PrecondKind string

	FactorTime time.Duration // preconditioner construction
	SolveTime  time.Duration // sketch RHS assembly + PCG solves
	Total      time.Duration
}

// Estimate computes sketch-based effective resistances for every edge
// of g. It honors ctx between and inside sketch solves; cancellation
// returns the context error (wrapped) and a nil result.
func Estimate(ctx context.Context, g *graph.Graph, opts Options) (*Result, error) {
	if g == nil || g.N < 1 {
		return nil, fmt.Errorf("resist: empty graph")
	}
	o := opts.withDefaults(g.N)
	if o.Assign != nil && len(o.Assign) != g.N {
		return nil, fmt.Errorf("resist: assignment covers %d vertices, graph has %d", len(o.Assign), g.N)
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("resist: %w", err)
	}
	start := time.Now()

	lg := lap.Laplacian(g, lap.Shift(g, o.ShiftRel))
	var builder precond.Builder
	if o.Assign != nil {
		builder = precond.NewSchwarz(o.Assign, precond.SchwarzOptions{
			Workers:      o.Workers,
			Overlap:      o.Overlap,
			ApplyWorkers: o.ApplyWorkers,
		})
	} else {
		builder = precond.NewMonolithic()
	}
	t0 := time.Now()
	pre, _, err := builder.Build(lg)
	if err != nil {
		return nil, fmt.Errorf("resist: building preconditioner: %w", err)
	}
	res := &Result{
		Sketches:    o.Sketches,
		PrecondKind: builder.Kind(),
		FactorTime:  time.Since(t0),
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("resist: %w", err)
	}

	m := g.M()
	sqrtW := make([]float64, m)
	for i, e := range g.Edges {
		sqrtW[i] = math.Sqrt(e.W)
	}

	// Sketches are chunked statically across workers; each worker
	// accumulates into a private partial sum, and partials are merged in
	// worker order. Signs come from a per-sketch generator, so the
	// estimate is a pure function of (Seed, Sketches, Workers),
	// independent of scheduling.
	t0 = time.Now()
	workers := o.Workers
	if workers > o.Sketches {
		workers = o.Sketches
	}
	partials := make([][]float64, workers)
	iters := make([]int, workers)
	unconv := make([]int, workers)
	errs := make([]error, workers)
	chunk := (o.Sketches + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > o.Sketches {
			hi = o.Sketches
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			acc := make([]float64, m)
			y := make([]float64, g.N)
			z := make([]float64, g.N)
			partials[w] = acc
			for s := lo; s < hi; s++ {
				if err := ctx.Err(); err != nil {
					errs[w] = err
					return
				}
				// yᵢ = (W^{1/2} B)ᵀ qᵢ for a fresh sign vector qᵢ.
				rng := newSignSource(o.Seed, s)
				for i := range y {
					y[i] = 0
				}
				for e, ed := range g.Edges {
					v := sqrtW[e]
					if rng.next() {
						y[ed.U] += v
						y[ed.V] -= v
					} else {
						y[ed.U] -= v
						y[ed.V] += v
					}
				}
				for i := range z {
					z[i] = 0
				}
				r := solver.PCG(lg, y, z, pre, solver.Options{
					Tol: o.Tol, MaxIter: o.MaxIter, Ctx: ctx, CheckEvery: o.CheckEvery,
				})
				if r.Err != nil {
					errs[w] = r.Err
					return
				}
				iters[w] += r.Iterations
				if !r.Converged {
					unconv[w]++
				}
				for e, ed := range g.Edges {
					d := z[ed.U] - z[ed.V]
					acc[e] += d * d
				}
			}
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("resist: sketch solve: %w", err)
		}
	}

	r := make([]float64, m)
	inv := 1 / float64(o.Sketches)
	for _, acc := range partials {
		if acc == nil {
			continue
		}
		for e, v := range acc {
			r[e] += v
		}
	}
	for e := range r {
		r[e] *= inv
	}
	res.R = r
	for w := range iters {
		res.Iterations += iters[w]
		res.Unconverged += unconv[w]
	}
	res.SolveTime = time.Since(t0)
	res.Total = time.Since(start)
	return res, nil
}

// exactMaxVertices bounds Exact: the dense inverse is O(n³) time and
// O(n²) memory, a reference implementation for tests and examples, not
// a production path.
const exactMaxVertices = 4096

// Exact computes effective resistances by dense inversion of the
// regularized Laplacian: R(u,v) = L⁻¹[u,u] − 2·L⁻¹[u,v] + L⁻¹[v,v]
// under the same diagonal shift the sketch estimator uses (shiftRel ≤ 0
// selects the default), so the two agree up to sketching and solver
// error. It refuses graphs above 4096 vertices.
func Exact(g *graph.Graph, shiftRel float64) ([]float64, error) {
	if g == nil || g.N < 1 {
		return nil, fmt.Errorf("resist: empty graph")
	}
	if g.N > exactMaxVertices {
		return nil, fmt.Errorf("resist: exact resistance is dense O(n³); %d vertices exceeds the %d limit", g.N, exactMaxVertices)
	}
	if shiftRel <= 0 {
		shiftRel = lap.DefaultShiftRel
	}
	lg := lap.Laplacian(g, lap.Shift(g, shiftRel))
	d := dense.New(g.N, g.N)
	for j := 0; j < lg.Cols; j++ {
		for p := lg.ColPtr[j]; p < lg.ColPtr[j+1]; p++ {
			d.Set(lg.RowIdx[p], j, lg.Val[p])
		}
	}
	inv, err := dense.InvSPD(d)
	if err != nil {
		return nil, fmt.Errorf("resist: inverting regularized Laplacian: %w", err)
	}
	r := make([]float64, g.M())
	for i, e := range g.Edges {
		r[i] = inv.At(e.U, e.U) - 2*inv.At(e.U, e.V) + inv.At(e.V, e.V)
	}
	return r, nil
}

// signSource is a splitmix64 stream consumed one bit at a time: one
// 64-bit state step serves 64 edge signs, and the (seed, sketch) mix
// decorrelates sketches without any cross-sketch sequencing, which is
// what lets workers own whole sketches.
type signSource struct {
	state uint64
	bits  uint64
	nbits int
}

func newSignSource(seed int64, sketch int) *signSource {
	s := uint64(seed)*0x9e3779b97f4a7c15 + uint64(sketch)*0xbf58476d1ce4e5b9 + 0x94d049bb133111eb
	return &signSource{state: s}
}

func (s *signSource) next() bool {
	if s.nbits == 0 {
		s.state += 0x9e3779b97f4a7c15
		z := s.state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		s.bits = z ^ (z >> 31)
		s.nbits = 64
	}
	b := s.bits&1 == 1
	s.bits >>= 1
	s.nbits--
	return b
}
