package resist_test

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/resist"
)

func path(n int) *graph.Graph {
	edges := make([]graph.Edge, n-1)
	for i := range edges {
		edges[i] = graph.Edge{U: i, V: i + 1, W: 1 + 0.5*float64(i%3)}
	}
	return graph.MustNew(n, edges)
}

func cycle(n int) *graph.Graph {
	edges := make([]graph.Edge, n)
	for i := range edges {
		edges[i] = graph.Edge{U: i, V: (i + 1) % n, W: 1 + 0.25*float64(i%4)}
	}
	return graph.MustNew(n, edges)
}

func complete(n int) *graph.Graph {
	var edges []graph.Edge
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			edges = append(edges, graph.Edge{U: u, V: v, W: 1 + 0.1*float64((u+v)%5)})
		}
	}
	return graph.MustNew(n, edges)
}

// threeCommunities mirrors the shard tests' fixture: three dense grid
// communities joined by a few weak bridges.
func threeCommunities(side int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	var edges []graph.Edge
	n := 0
	offsets := make([]int, 3)
	for c := 0; c < 3; c++ {
		offsets[c] = n
		comm := gen.Grid2D(side, side, seed+int64(c))
		for _, e := range comm.Edges {
			edges = append(edges, graph.Edge{U: e.U + n, V: e.V + n, W: e.W})
		}
		n += comm.N
	}
	sz := side * side
	for c := 0; c < 3; c++ {
		a, b := offsets[c], offsets[(c+1)%3]
		for i := 0; i < 3; i++ {
			edges = append(edges, graph.Edge{
				U: a + rng.Intn(sz), V: b + rng.Intn(sz), W: 0.05 + 0.1*rng.Float64(),
			})
		}
	}
	return graph.MustNew(n, edges)
}

// communityAssign labels each vertex of threeCommunities(side) with its
// community index.
func communityAssign(side int) []int {
	sz := side * side
	assign := make([]int, 3*sz)
	for v := range assign {
		assign[v] = v / sz
	}
	return assign
}

// TestSketchWithinEpsilonOfExact is the estimator's core contract: on
// graphs small enough for the dense reference, every edge's sketched
// resistance lands within (1±0.5) of exact at a generous sketch count.
func TestSketchWithinEpsilonOfExact(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"path", path(32)},
		{"cycle", cycle(32)},
		{"complete8", complete(8)},
		{"communities", threeCommunities(6, 3)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			exact, err := resist.Exact(tc.g, 0)
			if err != nil {
				t.Fatal(err)
			}
			res, err := resist.Estimate(context.Background(), tc.g, resist.Options{
				Sketches: 320, Seed: 7,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Sketches != 320 {
				t.Fatalf("Sketches = %d, want 320", res.Sketches)
			}
			worst := 0.0
			for e := range exact {
				if exact[e] <= 0 {
					t.Fatalf("edge %d: exact resistance %g not positive", e, exact[e])
				}
				rel := math.Abs(res.R[e]-exact[e]) / exact[e]
				if rel > worst {
					worst = rel
				}
				if rel > 0.5 {
					t.Errorf("edge %d: sketch %g vs exact %g (rel dev %.3f > 0.5)",
						e, res.R[e], exact[e], rel)
				}
			}
			t.Logf("%s: %d edges, worst relative deviation %.3f", tc.name, len(exact), worst)
		})
	}
}

// TestSchwarzAssignAgreesWithMonolithic: the preconditioner choice only
// changes how the sketch systems are solved, not what they estimate — at
// a tight solver tolerance the two backends must agree far inside the
// sketching error.
func TestSchwarzAssignAgreesWithMonolithic(t *testing.T) {
	g := threeCommunities(6, 5)
	base := resist.Options{Sketches: 32, Seed: 11, Tol: 1e-10}

	mono, err := resist.Estimate(context.Background(), g, base)
	if err != nil {
		t.Fatal(err)
	}
	if mono.PrecondKind != "monolithic" {
		t.Fatalf("PrecondKind = %q, want monolithic", mono.PrecondKind)
	}

	sw := base
	sw.Assign = communityAssign(6)
	schwarz, err := resist.Estimate(context.Background(), g, sw)
	if err != nil {
		t.Fatal(err)
	}
	if schwarz.PrecondKind != "schwarz" {
		t.Fatalf("PrecondKind = %q, want schwarz", schwarz.PrecondKind)
	}
	if schwarz.Iterations == 0 {
		t.Error("Schwarz-backed solves reported zero PCG iterations")
	}
	for e := range mono.R {
		if d := math.Abs(mono.R[e] - schwarz.R[e]); d > 1e-6*(1+mono.R[e]) {
			t.Fatalf("edge %d: monolithic %g vs schwarz %g differ beyond solver tolerance", e, mono.R[e], schwarz.R[e])
		}
	}
}

// TestSeedDeterminism: the estimate is a pure function of (Seed,
// Sketches, Workers) — same inputs bit-identical, different seed
// actually different.
func TestSeedDeterminism(t *testing.T) {
	g := threeCommunities(5, 9)
	opts := resist.Options{Sketches: 24, Seed: 21, Workers: 4}
	a, err := resist.Estimate(context.Background(), g, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := resist.Estimate(context.Background(), g, opts)
	if err != nil {
		t.Fatal(err)
	}
	for e := range a.R {
		if a.R[e] != b.R[e] {
			t.Fatalf("edge %d: same seed gave %g then %g", e, a.R[e], b.R[e])
		}
	}
	opts.Seed = 22
	c, err := resist.Estimate(context.Background(), g, opts)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for e := range a.R {
		if a.R[e] != c.R[e] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical estimates")
	}
}

// TestAutoSketchCount: zero options derive a clamped sketch count and
// still produce finite resistances.
func TestAutoSketchCount(t *testing.T) {
	g := cycle(16)
	res, err := resist.Estimate(context.Background(), g, resist.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sketches < 8 {
		t.Errorf("auto sketch count %d below the minimum clamp", res.Sketches)
	}
	for e, r := range res.R {
		if math.IsNaN(r) || math.IsInf(r, 0) || r <= 0 {
			t.Fatalf("edge %d: degenerate resistance %g", e, r)
		}
	}
}

// TestCancellation: a canceled context aborts before any work, and a
// deadline expiring mid-estimation surfaces as a wrapped context error
// instead of running every remaining sketch for nobody.
func TestCancellation(t *testing.T) {
	g := gen.Grid2D(40, 40, 2)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := resist.Estimate(ctx, g, resist.Options{Sketches: 16}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled context: err = %v, want context.Canceled", err)
	}

	ctx, cancel = context.WithTimeout(context.Background(), 2*time.Millisecond)
	defer cancel()
	_, err := resist.Estimate(ctx, g, resist.Options{Sketches: 256, Tol: 1e-12, CheckEvery: 1})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("mid-sketch deadline: err = %v, want context.DeadlineExceeded", err)
	}
}

// TestExactGuards: the dense reference refuses graphs it cannot afford.
func TestExactGuards(t *testing.T) {
	if _, err := resist.Exact(path(4097), 0); err == nil {
		t.Error("Exact accepted a graph above its vertex limit")
	}
	if _, err := resist.Exact(nil, 0); err == nil {
		t.Error("Exact accepted a nil graph")
	}
}

// TestAssignLengthValidated: a mis-sized assignment is rejected up front.
func TestAssignLengthValidated(t *testing.T) {
	g := cycle(10)
	_, err := resist.Estimate(context.Background(), g, resist.Options{Assign: []int{0, 1}})
	if err == nil {
		t.Error("Estimate accepted an assignment shorter than the vertex set")
	}
}
