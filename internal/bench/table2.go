package bench

import (
	"context"
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/chol"
	"repro/internal/pg"
	"repro/internal/sparsify"
)

// PGCase names one power-grid benchmark analog with the paper's size.
type PGCase struct {
	Name   string
	PaperV float64
}

// PGCases mirrors the six Table 2 cases (IBM [14] and THU [18] analogs).
func PGCases() []PGCase {
	return []PGCase{
		{"ibmpg3t", 8.5e5},
		{"ibmpg4t", 9.5e5},
		{"ibmpg5t", 1.1e6},
		{"ibmpg6t", 1.7e6},
		{"thupg1t", 5.0e6},
		{"thupg2t", 9.0e6},
	}
}

// pgShrink divides the paper's node counts for the default scale, like
// gen.Table1Cases; power-grid cases shrink harder because the direct
// baseline factors the full grid 500 times… once, but solves 500 steps.
const pgShrink = 70.0

// SynthesizeCase builds the named case's grid at the given scale.
func SynthesizeCase(c PGCase, scale float64, seed int64, ground bool) (*pg.Grid, error) {
	if scale <= 0 {
		scale = 1
	}
	// Total nodes across layers ≈ 1.31 × bottom nodes (3 layers halving).
	target := c.PaperV / pgShrink * scale / 1.31
	side := int(math.Round(math.Sqrt(target)))
	if side < 10 {
		side = 10
	}
	return pg.Synthesize(pg.Config{NX: side, NY: side, Layers: 3, Seed: seed, GroundNet: ground})
}

// Table2Row mirrors one row of the paper's Table 2.
type Table2Row struct {
	Case string
	N    int
	// Direct fixed-step solver.
	DirectTtr time.Duration
	DirectMem int64
	// GRASS-preconditioned iterative solver.
	GRASSTs  time.Duration
	GRASSTtr time.Duration
	GRASSNa  float64
	// Proposed-preconditioned iterative solver.
	PropTs  time.Duration
	PropTtr time.Duration
	PropNa  float64
	PropMem int64
	// Speedups: Sp1 = direct/proposed, Sp2 = GRASS/proposed.
	Sp1, Sp2 float64
}

// Table2Options configures RunTable2.
type Table2Options struct {
	// Ctx, when non-nil, makes the run cancellable: it is checked before
	// every case, so an interrupted experiment stops at the next case
	// boundary and returns the context error.
	Ctx   context.Context
	Scale float64
	Cases []PGCase
	Seed  int64
	// Horizon defaults to the paper's 5 ns.
	Horizon float64
	// EdgeFrac is the recovered off-tree edge fraction (paper: 0.10).
	EdgeFrac float64
}

// RunTable2 regenerates Table 2: backward-Euler transient simulation of
// each power grid with (a) the fixed-step direct solver (step = smallest
// breakpoint gap), (b) PCG with a GRASS sparsifier preconditioner, and
// (c) PCG with the proposed sparsifier preconditioner, both with varied
// steps capped at 200 ps and rtol 1e-6.
func RunTable2(opts Table2Options, w io.Writer) ([]Table2Row, error) {
	w = tee(w)
	cases := opts.Cases
	if cases == nil {
		cases = PGCases()
	}
	horizon := opts.Horizon
	if horizon <= 0 {
		horizon = 5e-9
	}
	edgeFrac := opts.EdgeFrac
	if edgeFrac <= 0 {
		edgeFrac = 0.10
	}

	fmt.Fprintf(w, "Table 2: power grid transient simulation (time in seconds, Na = average PCG iterations)\n")
	fmt.Fprintf(w, "%-9s %8s | %8s %8s | %8s %8s %6s | %8s %8s %6s %8s | %5s %5s\n",
		"Case", "|V|", "D.Ttr", "D.Mem", "G.Ts", "G.Ttr", "G.Na", "P.Ts", "P.Ttr", "P.Na", "P.Mem", "Sp1", "Sp2")

	var rows []Table2Row
	var sp1Sum, sp2Sum float64
	for i, c := range cases {
		if err := ctxCheck(opts.Ctx); err != nil {
			return nil, err
		}
		grid, err := SynthesizeCase(c, opts.Scale, opts.Seed+int64(i), false)
		if err != nil {
			return rows, fmt.Errorf("bench: table 2 case %s: %w", c.Name, err)
		}
		row := Table2Row{Case: c.Name, N: grid.N}

		direct, err := pg.SimulateDirect(grid, pg.TransientOpts{Horizon: horizon})
		if err != nil {
			return rows, fmt.Errorf("bench: table 2 %s direct: %w", c.Name, err)
		}
		row.DirectTtr = direct.SimTime
		row.DirectMem = direct.MemBytes

		run := func(m sparsify.Method) (ts time.Duration, res *pg.TransientResult, err error) {
			sp, err := sparsify.Sparsify(grid.G, sparsify.Options{Method: m, Alpha: edgeFrac, Seed: opts.Seed})
			if err != nil {
				return 0, nil, err
			}
			pf, err := chol.New(grid.SparsifiedConductance(sp.Sparsifier), chol.Options{})
			if err != nil {
				return 0, nil, err
			}
			res, err = pg.SimulateIterative(grid, pf, pg.TransientOpts{Horizon: horizon})
			return sp.Stats.Total, res, err
		}
		gts, gres, err := run(sparsify.GRASS)
		if err != nil {
			return rows, fmt.Errorf("bench: table 2 %s GRASS: %w", c.Name, err)
		}
		pts, pres, err := run(sparsify.TraceReduction)
		if err != nil {
			return rows, fmt.Errorf("bench: table 2 %s proposed: %w", c.Name, err)
		}
		row.GRASSTs, row.GRASSTtr, row.GRASSNa = gts, gres.SimTime, gres.AvgIter
		row.PropTs, row.PropTtr, row.PropNa = pts, pres.SimTime, pres.AvgIter
		row.PropMem = pres.MemBytes
		row.Sp1 = float64(row.DirectTtr) / float64(row.PropTtr)
		row.Sp2 = float64(row.GRASSTtr) / float64(row.PropTtr)
		sp1Sum += row.Sp1
		sp2Sum += row.Sp2
		rows = append(rows, row)
		fmt.Fprintf(w, "%-9s %8d | %8s %8s | %8s %8s %6.1f | %8s %8s %6.1f %8s | %5.1f %5.1f\n",
			row.Case, row.N,
			fmtDur(row.DirectTtr), fmtBytes(row.DirectMem),
			fmtDur(row.GRASSTs), fmtDur(row.GRASSTtr), row.GRASSNa,
			fmtDur(row.PropTs), fmtDur(row.PropTtr), row.PropNa, fmtBytes(row.PropMem),
			row.Sp1, row.Sp2)
	}
	if len(rows) > 0 {
		fmt.Fprintf(w, "%-9s %8s   Average speedups: Sp1=%.1f Sp2=%.1f\n",
			"Average", "-", sp1Sum/float64(len(rows)), sp2Sum/float64(len(rows)))
	}
	return rows, nil
}
