package bench

import (
	"context"
	"fmt"
	"io"

	"repro/internal/chol"
	"repro/internal/pg"
	"repro/internal/sparsify"
)

// Fig1Series holds one net's waveform pair for Figure 1.
type Fig1Series struct {
	Net       string // "vdd" or "gnd"
	Node      int
	Direct    []pg.Sample
	Iterative []pg.Sample
	MaxDev    float64 // max |direct − iterative| (the paper reports <16 mV)
}

// Fig1Options configures RunFig1.
type Fig1Options struct {
	// Ctx, when non-nil, makes the run cancellable: it is checked before
	// each net simulation, so an interrupted experiment stops at the next case
	// boundary and returns the context error.
	Ctx     context.Context
	Scale   float64
	Seed    int64
	Horizon float64
}

// RunFig1 regenerates Figure 1: the transient waveform of the worst VDD
// node and the worst GND node of the ibmpg4t analog, simulated by the
// direct solver and the proposed iterative solver. CSV is written to w as
// (net, t_ns, v_direct, v_iterative) rows.
func RunFig1(opts Fig1Options, w io.Writer) ([]Fig1Series, error) {
	w = tee(w)
	horizon := opts.Horizon
	if horizon <= 0 {
		horizon = 5e-9
	}
	c := PGCases()[1] // ibmpg4t, as in the paper
	var out []Fig1Series
	fmt.Fprintln(w, "net,t_ns,v_direct,v_iterative")
	for _, ground := range []bool{false, true} {
		if err := ctxCheck(opts.Ctx); err != nil {
			return out, err
		}
		grid, err := SynthesizeCase(c, opts.Scale, opts.Seed, ground)
		if err != nil {
			return out, fmt.Errorf("bench: fig 1: %w", err)
		}
		// DC solve to find the most interesting node to plot.
		fdc, err := chol.New(grid.ConductanceMatrix(), chol.Options{})
		if err != nil {
			return out, err
		}
		u := make([]float64, grid.N)
		// Probe selection uses the first pulse peak so load effects show.
		grid.RHS(1.2e-9, u)
		probe := pg.WorstProbe(grid, fdc.Solve(u))

		direct, err := pg.SimulateDirect(grid, pg.TransientOpts{Horizon: horizon, Probes: []int{probe}})
		if err != nil {
			return out, fmt.Errorf("bench: fig 1 direct: %w", err)
		}
		sp, err := sparsify.Sparsify(grid.G, sparsify.Options{Seed: opts.Seed})
		if err != nil {
			return out, err
		}
		pf, err := chol.New(grid.SparsifiedConductance(sp.Sparsifier), chol.Options{})
		if err != nil {
			return out, err
		}
		iter, err := pg.SimulateIterative(grid, pf, pg.TransientOpts{Horizon: horizon, Probes: []int{probe}})
		if err != nil {
			return out, fmt.Errorf("bench: fig 1 iterative: %w", err)
		}
		net := "vdd"
		if ground {
			net = "gnd"
		}
		s := Fig1Series{
			Net: net, Node: probe,
			Direct:    direct.Probes[probe],
			Iterative: iter.Probes[probe],
			MaxDev:    pg.MaxAbsDiff(iter.Probes[probe], direct.Probes[probe]),
		}
		out = append(out, s)
		for _, smp := range s.Iterative {
			// Interpolate the dense direct waveform at the iterative times.
			vd := interpolate(s.Direct, smp.T)
			fmt.Fprintf(w, "%s,%.4f,%.6f,%.6f\n", net, smp.T*1e9, vd, smp.V)
		}
	}
	return out, nil
}

func interpolate(s []pg.Sample, t float64) float64 {
	if len(s) == 0 {
		return 0
	}
	j := 0
	for j+1 < len(s) && s[j+1].T <= t {
		j++
	}
	if j+1 >= len(s) || s[j+1].T == s[j].T {
		return s[j].V
	}
	frac := (t - s[j].T) / (s[j+1].T - s[j].T)
	return s[j].V + frac*(s[j+1].V-s[j].V)
}
