package bench

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/chol"
	"repro/internal/pg"
	"repro/internal/sparsify"
)

// Fig2Point is one point of the sparsity–runtime tradeoff curve.
type Fig2Point struct {
	Fraction float64 // proportion of off-tree edges recovered
	GRASSTtr time.Duration
	PropTtr  time.Duration
	GRASSNa  float64
	PropNa   float64
}

// Fig2Options configures RunFig2.
type Fig2Options struct {
	// Ctx, when non-nil, makes the run cancellable: it is checked before
	// every sweep point, so an interrupted experiment stops at the next case
	// boundary and returns the context error.
	Ctx       context.Context
	Scale     float64
	Seed      int64
	Horizon   float64
	Fractions []float64 // default 0.05, 0.075, …, 0.20 (the paper's sweep)
}

// RunFig2 regenerates Figure 2: transient runtime of the ibmpg4t analog as
// a function of the proportion of recovered off-tree edges, for the GRASS
// and proposed preconditioners. CSV rows: fraction, ttr_grass_s,
// ttr_proposed_s, na_grass, na_proposed.
func RunFig2(opts Fig2Options, w io.Writer) ([]Fig2Point, error) {
	w = tee(w)
	horizon := opts.Horizon
	if horizon <= 0 {
		horizon = 5e-9
	}
	fractions := opts.Fractions
	if fractions == nil {
		fractions = []float64{0.05, 0.075, 0.10, 0.125, 0.15, 0.175, 0.20}
	}
	grid, err := SynthesizeCase(PGCases()[1], opts.Scale, opts.Seed, false)
	if err != nil {
		return nil, fmt.Errorf("bench: fig 2: %w", err)
	}
	fmt.Fprintln(w, "fraction,ttr_grass_s,ttr_proposed_s,na_grass,na_proposed")
	var out []Fig2Point
	for _, frac := range fractions {
		if err := ctxCheck(opts.Ctx); err != nil {
			return nil, err
		}
		p := Fig2Point{Fraction: frac}
		for _, m := range []sparsify.Method{sparsify.GRASS, sparsify.TraceReduction} {
			sp, err := sparsify.Sparsify(grid.G, sparsify.Options{Method: m, Alpha: frac, Seed: opts.Seed})
			if err != nil {
				return out, err
			}
			pf, err := chol.New(grid.SparsifiedConductance(sp.Sparsifier), chol.Options{})
			if err != nil {
				return out, err
			}
			res, err := pg.SimulateIterative(grid, pf, pg.TransientOpts{Horizon: horizon})
			if err != nil {
				return out, fmt.Errorf("bench: fig 2 frac %g method %v: %w", frac, m, err)
			}
			if m == sparsify.GRASS {
				p.GRASSTtr, p.GRASSNa = res.SimTime, res.AvgIter
			} else {
				p.PropTtr, p.PropNa = res.SimTime, res.AvgIter
			}
		}
		out = append(out, p)
		fmt.Fprintf(w, "%.3f,%.4f,%.4f,%.1f,%.1f\n",
			p.Fraction, p.GRASSTtr.Seconds(), p.PropTtr.Seconds(), p.GRASSNa, p.PropNa)
	}
	return out, nil
}
