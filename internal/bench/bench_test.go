package bench

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/gen"
)

// Tiny scales keep the driver tests fast; the real runs happen through
// cmd/experiments and the root benchmarks.
const testScale = 0.12

func TestRunTable1SmokeAndShape(t *testing.T) {
	if testing.Short() {
		t.Skip("driver test")
	}
	var buf bytes.Buffer
	rows, err := RunTable1(Table1Options{
		Scale: testScale,
		Cases: gen.Table1Cases()[:3],
		Seed:  1,
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows, want 3", len(rows))
	}
	for _, r := range rows {
		if r.GRASS.Kappa <= 0 || r.Proposed.Kappa <= 0 {
			t.Errorf("%s: missing κ", r.Case)
		}
		if r.GRASS.Ni <= 0 || r.Proposed.Ni <= 0 {
			t.Errorf("%s: missing PCG iterations", r.Case)
		}
	}
	out := buf.String()
	if !strings.Contains(out, "ecology2") || !strings.Contains(out, "Average") {
		t.Error("formatted table missing expected rows")
	}
}

func TestRunTable2SmokeAndShape(t *testing.T) {
	if testing.Short() {
		t.Skip("driver test")
	}
	var buf bytes.Buffer
	rows, err := RunTable2(Table2Options{
		Scale: testScale,
		Cases: PGCases()[:2],
		Seed:  2,
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows, want 2", len(rows))
	}
	for _, r := range rows {
		if r.PropNa <= 0 || r.GRASSNa <= 0 {
			t.Errorf("%s: missing iteration counts", r.Case)
		}
		// The iterative memory advantage is the paper's central Table 2
		// claim and holds at any scale (sparsifier factor ≪ full factor).
		if r.PropMem >= r.DirectMem {
			t.Errorf("%s: proposed mem %d not below direct %d", r.Case, r.PropMem, r.DirectMem)
		}
	}
	if !strings.Contains(buf.String(), "ibmpg3t") {
		t.Error("formatted table missing case name")
	}
}

func TestRunFig1WaveformAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("driver test")
	}
	var buf bytes.Buffer
	series, err := RunFig1(Fig1Options{Scale: testScale, Seed: 3, Horizon: 3e-9}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("%d series, want 2 (vdd + gnd)", len(series))
	}
	for _, s := range series {
		if len(s.Direct) == 0 || len(s.Iterative) == 0 {
			t.Fatalf("%s: empty waveform", s.Net)
		}
		// The paper reports <16 mV deviation for ibmpg4t.
		if s.MaxDev > 0.016 {
			t.Errorf("%s: waveform deviation %g V exceeds 16 mV", s.Net, s.MaxDev)
		}
	}
	out := buf.String()
	if !strings.HasPrefix(out, "net,t_ns,v_direct,v_iterative") {
		t.Error("CSV header missing")
	}
	if !strings.Contains(out, "vdd,") || !strings.Contains(out, "gnd,") {
		t.Error("CSV missing nets")
	}
}

func TestRunFig2Tradeoff(t *testing.T) {
	if testing.Short() {
		t.Skip("driver test")
	}
	var buf bytes.Buffer
	pts, err := RunFig2(Fig2Options{
		Scale:     testScale,
		Seed:      4,
		Horizon:   3e-9,
		Fractions: []float64{0.05, 0.15},
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("%d points, want 2", len(pts))
	}
	// More recovered edges must not increase PCG work (Fig 2's shape).
	if pts[1].PropNa > pts[0].PropNa {
		t.Errorf("Na rose with density: %g → %g", pts[0].PropNa, pts[1].PropNa)
	}
	if !strings.Contains(buf.String(), "fraction,") {
		t.Error("CSV header missing")
	}
}

func TestRunTable3SmokeAndShape(t *testing.T) {
	if testing.Short() {
		t.Skip("driver test")
	}
	var buf bytes.Buffer
	rows, err := RunTable3(Table3Options{
		Scale: testScale,
		Cases: gen.Table3Cases()[:2],
		Seed:  5,
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows, want 2", len(rows))
	}
	for _, r := range rows {
		// RelErr should be tiny (the paper reports ~1e-3–5e-3).
		if r.PropRelErr > 0.05 {
			t.Errorf("%s: RelErr %g too large", r.Case, r.PropRelErr)
		}
		if r.PropMem >= r.DirectMem {
			t.Errorf("%s: no memory advantage", r.Case)
		}
		if r.PropNa <= 0 {
			t.Errorf("%s: missing Na", r.Case)
		}
	}
}
