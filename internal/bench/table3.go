package bench

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/chol"
	"repro/internal/eig"
	"repro/internal/gen"
	"repro/internal/lap"
	"repro/internal/partition"
	"repro/internal/solver"
	"repro/internal/sparsify"
)

// Table3Row mirrors one row of the paper's Table 3.
type Table3Row struct {
	Case string
	N    int
	// Direct solver.
	DirectT   time.Duration
	DirectMem int64
	// GRASS-preconditioned iterative solver.
	GRASSTi     time.Duration
	GRASSNa     float64
	GRASSRelErr float64
	// Proposed-preconditioned iterative solver.
	PropTi     time.Duration
	PropNa     float64
	PropRelErr float64
	PropMem    int64
	// Speedups: Sp1 = direct/proposed, Sp2 = GRASS/proposed.
	Sp1, Sp2 float64
}

// Table3Options configures RunTable3.
type Table3Options struct {
	// Ctx, when non-nil, makes the run cancellable: it is checked before
	// every case, so an interrupted experiment stops at the next case
	// boundary and returns the context error.
	Ctx   context.Context
	Scale float64
	Cases []gen.Case
	Seed  int64
	// Steps of inverse power iteration (paper: 5).
	Steps int
	// RTol is the PCG tolerance inside each inverse-power step.
	RTol float64
}

// RunTable3 regenerates Table 3: the Fiedler vector of each graph is
// computed by inverse power iteration, solving the inner systems with
// (a) the direct solver, (b) PCG + GRASS preconditioner, and (c) PCG +
// proposed preconditioner. RelErr is the fraction of vertices the
// spectral bipartition assigns differently from the direct-solver result.
func RunTable3(opts Table3Options, w io.Writer) ([]Table3Row, error) {
	w = tee(w)
	cases := opts.Cases
	if cases == nil {
		cases = gen.Table3Cases()
	}
	steps := opts.Steps
	if steps <= 0 {
		steps = 5
	}
	rtol := opts.RTol
	if rtol <= 0 {
		rtol = 1e-6
	}
	scale := opts.Scale
	if scale <= 0 {
		scale = 1
	}

	fmt.Fprintf(w, "Table 3: approximate Fiedler vector (time in seconds, Na = average PCG iterations)\n")
	fmt.Fprintf(w, "%-12s %8s | %8s %8s | %8s %6s %8s | %8s %6s %8s %8s | %5s %5s\n",
		"Case", "|V|", "T_D", "Mem", "T_I", "Na", "RelErr", "T_I", "Na", "RelErr", "Mem", "Sp1", "Sp2")

	var rows []Table3Row
	var sp1Sum, sp2Sum float64
	for i, c := range cases {
		if err := ctxCheck(opts.Ctx); err != nil {
			return nil, err
		}
		g := c.Build(scale, opts.Seed+int64(i))
		shift := lap.Shift(g, 0)
		lg := lap.Laplacian(g, shift)
		row := Table3Row{Case: c.Name, N: g.N}

		// Direct: factorization + inverse power iteration.
		t0 := time.Now()
		fd, err := chol.New(lg, chol.Options{})
		if err != nil {
			return rows, fmt.Errorf("bench: table 3 %s direct factor: %w", c.Name, err)
		}
		fvDirect := eig.Fiedler(g.N, steps, opts.Seed, func(dst, b []float64) { fd.SolveTo(dst, b) })
		row.DirectT = time.Since(t0)
		row.DirectMem = fd.MemBytes()
		partDirect := partition.Bipartition(fvDirect)

		run := func(m sparsify.Method) (ti time.Duration, na float64, relErr float64, mem int64, err error) {
			sp, err := sparsify.Sparsify(g, sparsify.Options{Method: m, Seed: opts.Seed})
			if err != nil {
				return 0, 0, 0, 0, err
			}
			t0 := time.Now()
			pf, err := chol.New(lap.Laplacian(sp.Sparsifier, shift), chol.Options{})
			if err != nil {
				return 0, 0, 0, 0, err
			}
			pre := solver.NewCholPrecond(pf)
			totalIters, solves := 0, 0
			// Warm start: across inverse-power steps the normalized RHS
			// converges to the Fiedler direction, so the solution is
			// ≈ (1/λ₂)·b; seeding PCG with the previous solve's scale
			// roughly halves Na (and matches the paper's reported range).
			prevScale := 0.0
			fv := eig.Fiedler(g.N, steps, opts.Seed, func(dst, b []float64) {
				for i := range dst {
					dst[i] = b[i] * prevScale
				}
				r := solver.PCG(lg, b, dst, pre, solver.Options{Tol: rtol, MaxIter: 20000})
				totalIters += r.Iterations
				solves++
				var s float64
				for i := range dst {
					s += dst[i] * b[i] // ⟨x, b⟩ with ‖b‖ = 1
				}
				prevScale = s
			})
			ti = time.Since(t0)
			if solves > 0 {
				na = float64(totalIters) / float64(solves)
			}
			relErr = partition.Disagreement(partition.Bipartition(fv), partDirect)
			return ti, na, relErr, pf.MemBytes(), nil
		}
		var gmem int64
		row.GRASSTi, row.GRASSNa, row.GRASSRelErr, gmem, err = run(sparsify.GRASS)
		if err != nil {
			return rows, fmt.Errorf("bench: table 3 %s GRASS: %w", c.Name, err)
		}
		_ = gmem // the paper omits the GRASS memory column (equal to proposed)
		row.PropTi, row.PropNa, row.PropRelErr, row.PropMem, err = run(sparsify.TraceReduction)
		if err != nil {
			return rows, fmt.Errorf("bench: table 3 %s proposed: %w", c.Name, err)
		}
		row.Sp1 = float64(row.DirectT) / float64(row.PropTi)
		row.Sp2 = float64(row.GRASSTi) / float64(row.PropTi)
		sp1Sum += row.Sp1
		sp2Sum += row.Sp2
		rows = append(rows, row)
		fmt.Fprintf(w, "%-12s %8d | %8s %8s | %8s %6.1f %8.1e | %8s %6.1f %8.1e %8s | %5.1f %5.1f\n",
			row.Case, row.N,
			fmtDur(row.DirectT), fmtBytes(row.DirectMem),
			fmtDur(row.GRASSTi), row.GRASSNa, row.GRASSRelErr,
			fmtDur(row.PropTi), row.PropNa, row.PropRelErr, fmtBytes(row.PropMem),
			row.Sp1, row.Sp2)
	}
	if len(rows) > 0 {
		fmt.Fprintf(w, "%-12s %8s   Average speedups: Sp1=%.1f Sp2=%.1f\n",
			"Average", "-", sp1Sum/float64(len(rows)), sp2Sum/float64(len(rows)))
	}
	return rows, nil
}
