package bench

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/sparsify"
)

// MethodStats is one method's half of a Table 1 row.
type MethodStats struct {
	Ts    time.Duration // sparsifier construction time
	Kappa float64       // relative condition number κ(L_G, L_P)
	Ni    int           // PCG iterations to rtol 1e-3
	Ti    time.Duration // PCG time
}

// Table1Row mirrors one row of the paper's Table 1.
type Table1Row struct {
	Case     string
	N, M     int
	GRASS    MethodStats
	Proposed MethodStats
	// Reduction ratios (GRASS / Proposed), the paper's last columns.
	KappaRatio, TiRatio float64
}

// Table1Options configures RunTable1.
type Table1Options struct {
	// Ctx, when non-nil, makes the run cancellable: it is checked before
	// every case, so an interrupted experiment stops at the next case
	// boundary and returns the context error.
	Ctx context.Context
	// Scale multiplies the default (downsized) case sizes; 1 by default.
	Scale float64
	// Cases overrides the case list (default gen.Table1Cases()).
	Cases []gen.Case
	Seed  int64
	// LanczosSteps for the κ estimate (default 80).
	LanczosSteps int
}

// RunTable1 regenerates Table 1: for every case, sparsify with GRASS and
// with the proposed algorithm at the paper's parameters (10%·|V| off-tree
// edges, five recovery rounds, PCG rtol 1e-3, random RHS), and report
// Ts / κ / Ni / Ti plus the reduction ratios.
func RunTable1(opts Table1Options, w io.Writer) ([]Table1Row, error) {
	w = tee(w)
	cases := opts.Cases
	if cases == nil {
		cases = gen.Table1Cases()
	}
	scale := opts.Scale
	if scale <= 0 {
		scale = 1
	}

	fmt.Fprintf(w, "Table 1: spectral graph sparsification (time in seconds, κ = relative condition number)\n")
	fmt.Fprintf(w, "%-12s %9s %9s | %8s %8s %5s %8s | %8s %8s %5s %8s | %6s %6s\n",
		"Case", "|V|", "|E|", "Ts", "kappa", "Ni", "Ti", "Ts", "kappa", "Ni", "Ti", "k-red", "Ti-red")
	fmt.Fprintf(w, "%-12s %9s %9s | %41s | %41s |\n", "", "", "", "GRASS", "Proposed")

	var rows []Table1Row
	var kSum, tSum float64
	for _, c := range cases {
		if err := ctxCheck(opts.Ctx); err != nil {
			return nil, err
		}
		g := c.Build(scale, opts.Seed+int64(len(rows)))
		row := Table1Row{Case: c.Name, N: g.N, M: g.M()}

		for _, m := range []sparsify.Method{sparsify.GRASS, sparsify.TraceReduction} {
			out, err := core.Evaluate(g,
				sparsify.Options{Method: m, Seed: opts.Seed},
				core.EvalOptions{PCGTol: 1e-3, LanczosSteps: opts.LanczosSteps, Seed: opts.Seed})
			if err != nil {
				return rows, fmt.Errorf("bench: table 1 case %s method %v: %w", c.Name, m, err)
			}
			ms := MethodStats{Ts: out.SparsifyTime, Kappa: out.Kappa, Ni: out.PCGIters, Ti: out.PCGTime}
			if m == sparsify.GRASS {
				row.GRASS = ms
			} else {
				row.Proposed = ms
			}
		}
		if row.Proposed.Kappa > 0 {
			row.KappaRatio = row.GRASS.Kappa / row.Proposed.Kappa
		}
		if row.Proposed.Ti > 0 {
			row.TiRatio = float64(row.GRASS.Ti) / float64(row.Proposed.Ti)
		}
		kSum += row.KappaRatio
		tSum += row.TiRatio
		rows = append(rows, row)
		fmt.Fprintf(w, "%-12s %9d %9d | %8s %8.3g %5d %8s | %8s %8.3g %5d %8s | %5.1fX %5.1fX\n",
			row.Case, row.N, row.M,
			fmtDur(row.GRASS.Ts), row.GRASS.Kappa, row.GRASS.Ni, fmtDur(row.GRASS.Ti),
			fmtDur(row.Proposed.Ts), row.Proposed.Kappa, row.Proposed.Ni, fmtDur(row.Proposed.Ti),
			row.KappaRatio, row.TiRatio)
	}
	if len(rows) > 0 {
		fmt.Fprintf(w, "%-12s %9s %9s | %41s | %41s | %5.1fX %5.1fX\n",
			"Average", "-", "-", "", "", kSum/float64(len(rows)), tSum/float64(len(rows)))
	}
	return rows, nil
}
