// Package bench contains the experiment drivers that regenerate every
// table and figure of the paper's evaluation (§4): Table 1 (sparsification
// quality), Table 2 (power-grid transient simulation), Table 3 (spectral
// partitioning / Fiedler vectors), Figure 1 (transient waveforms), and
// Figure 2 (sparsity–runtime tradeoff). Each driver prints rows in the
// paper's format and returns structured results so tests can assert the
// shape of the comparison.
//
// Absolute numbers differ from the paper (Go vs C++, synthetic vs
// SuiteSparse/IBM inputs, scaled-down default sizes — see DESIGN.md §4);
// the drivers exist to reproduce who wins, by roughly what factor, and
// where crossovers fall.
package bench

import (
	"context"
	"fmt"
	"io"
	"time"
)

// fmtDur renders a duration in seconds with three significant digits, the
// unit the paper's tables use.
func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.3g", d.Seconds())
}

// fmtBytes renders byte counts like the paper's Mem column.
func fmtBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fGB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%dB", b)
}

// tee avoids nil-writer checks at call sites.
func tee(w io.Writer) io.Writer {
	if w == nil {
		return io.Discard
	}
	return w
}

// ctxCheck polls an optional per-driver context at case boundaries.
func ctxCheck(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("bench: %w", err)
	}
	return nil
}
