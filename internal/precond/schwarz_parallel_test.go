package precond

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/lap"
	"repro/internal/sparse"
)

// White-box coverage of the parallel apply path: these tests force the
// work gate low so the goroutine fan-out engages even on fixtures small
// enough for -short and -race runs, then check the operator is
// bit-identical to the sequential sweep — the invariant the coloring
// argument promises (same-color blocks write disjoint z entries and
// never read one another's writes).

// threeCommunityLap builds the regularized Laplacian of three grid
// communities joined by weak bridges (the precond_test fixture, inlined
// here because white-box tests live in package precond), plus the
// by-community cluster assignment.
func threeCommunityLap(side int, seed int64) (*sparse.CSC, []int) {
	rng := rand.New(rand.NewSource(seed))
	var edges []graph.Edge
	n := 0
	offsets := make([]int, 3)
	for c := 0; c < 3; c++ {
		offsets[c] = n
		comm := gen.Grid2D(side, side, seed+int64(c))
		for _, e := range comm.Edges {
			edges = append(edges, graph.Edge{U: e.U + n, V: e.V + n, W: e.W})
		}
		n += comm.N
	}
	sz := side * side
	for c := 0; c < 3; c++ {
		a, b := offsets[c], offsets[(c+1)%3]
		for i := 0; i < 3; i++ {
			edges = append(edges, graph.Edge{
				U: a + rng.Intn(sz), V: b + rng.Intn(sz), W: 0.05 + 0.1*rng.Float64(),
			})
		}
	}
	g := graph.MustNew(n, edges)
	assign := make([]int, n)
	for i := range assign {
		c := i / sz
		if c > 2 {
			c = 2
		}
		assign[i] = c
	}
	return lap.Laplacian(g, lap.Shift(g, 0)), assign
}

// stripedAssign splits n vertices into k contiguous stripes.
func stripedAssign(n, k int) []int {
	assign := make([]int, n)
	for i := range assign {
		c := i * k / n
		if c >= k {
			c = k - 1
		}
		assign[i] = c
	}
	return assign
}

// buildPair builds the same Schwarz preconditioner twice: once forced
// sequential, once with the given apply fan-out. Builds are
// deterministic, so the two hold identical factors and the only
// difference is the apply schedule.
func buildPair(t *testing.T, a *sparse.CSC, assign []int, workers int) (seq, par *SchwarzPrecond) {
	t.Helper()
	build := func(applyWorkers int) *SchwarzPrecond {
		// Overlap 1 keeps the stripe-coupling graph sparse enough that the
		// greedy coloring leaves colors with several blocks — otherwise
		// wide overlap plus the random bridges can couple every pair of
		// stripes on a fixture this small and each color degenerates to a
		// single block, which would silently skip the parallel path.
		pre, _, err := NewSchwarz(assign, SchwarzOptions{ApplyWorkers: applyWorkers, Overlap: 1}).Build(a)
		if err != nil {
			t.Fatal(err)
		}
		return pre.(*SchwarzPrecond)
	}
	return build(-1), build(workers)
}

// forceParallelGate drops the work gate for the duration of the test so
// small fixtures take the goroutine path.
func forceParallelGate(t *testing.T) {
	t.Helper()
	old := parallelMinWork
	parallelMinWork = 1
	t.Cleanup(func() { parallelMinWork = old })
}

func assertParallelEligible(t *testing.T, p *SchwarzPrecond) {
	t.Helper()
	for _, color := range p.colors {
		if len(color) > 1 {
			return
		}
	}
	t.Fatal("fixture produced no color with 2+ blocks: the parallel path would never engage")
}

func TestSchwarzParallelApplyBitIdentical3Community(t *testing.T) {
	forceParallelGate(t)
	a, _ := threeCommunityLap(12, 5)
	// Stripes rather than communities: the three communities are all
	// pairwise bridge-coupled, so by-community clusters each get their
	// own color and nothing would run concurrently.
	seq, par := buildPair(t, a, stripedAssign(a.Cols, 12), 4)
	assertParallelEligible(t, par)

	rng := rand.New(rand.NewSource(17))
	r := make([]float64, a.Cols)
	zs := make([]float64, a.Cols)
	zp := make([]float64, a.Cols)
	for trial := 0; trial < 10; trial++ {
		for i := range r {
			r[i] = rng.NormFloat64()
		}
		seq.Apply(zs, r)
		par.Apply(zp, r)
		for i := range zs {
			if zs[i] != zp[i] {
				t.Fatalf("trial %d: parallel apply differs from sequential at %d: %g vs %g",
					trial, i, zp[i], zs[i])
			}
		}
	}
}

func TestSchwarzApplyPanelBitIdenticalToVectorApplies(t *testing.T) {
	forceParallelGate(t)
	a, _ := threeCommunityLap(12, 6)
	const s = 4
	n := a.Cols
	seq, par := buildPair(t, a, stripedAssign(n, 12), 4)
	assertParallelEligible(t, par)

	rng := rand.New(rand.NewSource(23))
	rp := make([]float64, n*s)
	for i := range rp {
		rp[i] = rng.NormFloat64()
	}
	zpanel := make([]float64, n*s)
	par.ApplyPanel(zpanel, rp, s)

	r := make([]float64, n)
	z := make([]float64, n)
	for k := 0; k < s; k++ {
		for i := 0; i < n; i++ {
			r[i] = rp[i*s+k]
		}
		seq.Apply(z, r)
		for i := 0; i < n; i++ {
			if zpanel[i*s+k] != z[i] {
				t.Fatalf("panel column %d differs from vector apply at %d: %g vs %g",
					k, i, zpanel[i*s+k], z[i])
			}
		}
	}
}

// TestSchwarzParallelApplyConcurrent drives many concurrent Apply and
// ApplyPanel calls through the goroutine fan-out — the race-job coverage
// for the pooled scratch and the coarse solve under concurrent applies.
func TestSchwarzParallelApplyConcurrent(t *testing.T) {
	forceParallelGate(t)
	a, _ := threeCommunityLap(10, 9)
	n := a.Cols
	seq, par := buildPair(t, a, stripedAssign(n, 10), 4)
	assertParallelEligible(t, par)

	rng := rand.New(rand.NewSource(31))
	r := make([]float64, n)
	for i := range r {
		r[i] = rng.NormFloat64()
	}
	want := make([]float64, n)
	seq.Apply(want, r)

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(panelWidth int) {
			defer wg.Done()
			z := make([]float64, n)
			for rep := 0; rep < 5; rep++ {
				if panelWidth > 1 {
					rp := make([]float64, n*panelWidth)
					zp := make([]float64, n*panelWidth)
					for i := 0; i < n; i++ {
						for k := 0; k < panelWidth; k++ {
							rp[i*panelWidth+k] = r[i]
						}
					}
					par.ApplyPanel(zp, rp, panelWidth)
					for i := 0; i < n; i++ {
						z[i] = zp[i*panelWidth]
					}
				} else {
					par.Apply(z, r)
				}
				for i := range z {
					if z[i] != want[i] {
						errs <- "concurrent apply diverged from sequential result"
						return
					}
				}
			}
		}(1 + gi%3)
	}
	wg.Wait()
	close(errs)
	if msg, ok := <-errs; ok {
		t.Fatal(msg)
	}
}

func TestSchwarzParallelGateRespectsSmallColors(t *testing.T) {
	// With the real gate value, a tiny plan must stay sequential: the
	// parallel path is an optimization for big colors, not a default tax.
	a, assign := threeCommunityLap(6, 3)
	pre, _, err := NewSchwarz(assign, SchwarzOptions{ApplyWorkers: 8}).Build(a)
	if err != nil {
		t.Fatal(err)
	}
	p := pre.(*SchwarzPrecond)
	for ci, color := range p.colors {
		if p.applyWorkers > 1 && len(color) > 1 && p.colorWork[ci] >= parallelMinWork {
			t.Fatalf("color %d (work %d) would fan out on a %d-vertex fixture", ci, p.colorWork[ci], a.Cols)
		}
	}
}
