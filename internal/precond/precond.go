// Package precond is the pluggable preconditioner-construction layer of
// the solve stack. A core.Pencil no longer factorizes the sparsifier
// Laplacian itself; it delegates to a Builder strategy, which turns the
// assembled SPD matrix L_P into a solver.Preconditioner plus build
// telemetry. Two strategies ship:
//
//   - Monolithic: one sparse Cholesky factorization of the whole matrix
//     (the original behaviour, still the default);
//   - Schwarz: a two-level additive-Schwarz preconditioner over the
//     sharded pipeline's clusters — one Cholesky factor per cluster's
//     principal submatrix, built concurrently, plus a coarse-grid
//     correction assembled from the cluster quotient of L_P (one small
//     dense Cholesky solve per application). Factorization cost stays
//     linear in cluster size at a bounded PCG-iteration penalty, which is
//     what makes sparsifying at scale pay off: the sharded build's
//     dominant remaining superlinear cost was the monolithic factorization
//     of the stitched sparsifier.
package precond

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/chol"
	"repro/internal/solver"
	"repro/internal/sparse"
)

// Kind selects the preconditioner construction strategy.
type Kind int

const (
	// Auto (the zero value) picks Schwarz when the sparsifier was built
	// through the sharded pipeline (the cluster structure is already paid
	// for) and Monolithic otherwise.
	Auto Kind = iota
	// Monolithic factorizes the whole matrix with one sparse Cholesky.
	Monolithic
	// Schwarz builds the two-level additive-Schwarz preconditioner over
	// per-cluster factors plus a coarse cut-coupling correction.
	Schwarz
)

// String returns the wire name of the kind (also used in engine store
// keys and the HTTP ?precond= parameter).
func (k Kind) String() string {
	switch k {
	case Monolithic:
		return "monolithic"
	case Schwarz:
		return "schwarz"
	default:
		return "auto"
	}
}

// ParseKind maps a wire name back to a Kind.
func ParseKind(s string) (Kind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "auto":
		return Auto, nil
	case "monolithic", "mono":
		return Monolithic, nil
	case "schwarz":
		return Schwarz, nil
	}
	return Auto, fmt.Errorf("precond: unknown kind %q (want auto, monolithic, or schwarz)", s)
}

// Stats is the build telemetry of one constructed preconditioner; handles
// expose it as PrecondStats and the HTTP service returns it alongside
// sparsify/solve responses.
type Stats struct {
	// Kind is the strategy that actually built the preconditioner
	// ("monolithic" or "schwarz" — Auto resolves before building).
	Kind string
	// Clusters is the number of per-cluster factors (0 for monolithic).
	Clusters int
	// CoarseSize is the dimension of the coarse-grid correction system
	// (0 when the coarse level is absent: monolithic, or a single
	// cluster).
	CoarseSize int
	// Colors is the number of Schwarz sweep colors (same-color clusters
	// are A-decoupled and apply together; 0 for monolithic).
	Colors int
	// FactorsReused counts per-cluster Schwarz factors adopted from the
	// factor cache instead of being refactorized (0 for monolithic or
	// cache-less builds).
	FactorsReused int
	// FactorsRemote counts per-cluster Schwarz factors built by a remote
	// fabric worker through the FactorDispatcher (0 for monolithic,
	// dispatcher-less, or fully-fallback builds). Clusters the dispatcher
	// could not serve — fleet down, validation rejected the returned
	// factor — fall back to a local factorization and are not counted.
	FactorsRemote int
	// FactorNNZ totals the nonzeros across all sparse factors (the one
	// monolithic factor, or every per-cluster factor).
	FactorNNZ int64
	// PerClusterNNZ lists each cluster factor's nonzeros (nil for
	// monolithic).
	PerClusterNNZ []int
	// MemBytes is the storage footprint of all factors plus the coarse
	// solve.
	MemBytes int64
	// BuildTime is how long Build took (submatrix extraction +
	// factorization, including the coarse assembly).
	BuildTime time.Duration
}

// Builder turns an assembled SPD matrix into a ready preconditioner.
// Implementations must produce preconditioners that are safe for
// concurrent Apply calls (see solver.Preconditioner).
type Builder interface {
	// Kind names the strategy ("monolithic", "schwarz").
	Kind() string
	// Build factorizes a and returns the preconditioner plus telemetry.
	Build(a *sparse.CSC) (solver.Preconditioner, *Stats, error)
}

// monolithicBuilder is the default strategy: one sparse Cholesky of the
// whole matrix, applied through solver.CholPrecond.
type monolithicBuilder struct{}

// NewMonolithic returns the default builder: a single sparse Cholesky
// factorization of the whole matrix.
func NewMonolithic() Builder { return monolithicBuilder{} }

func (monolithicBuilder) Kind() string { return Monolithic.String() }

func (monolithicBuilder) Build(a *sparse.CSC) (solver.Preconditioner, *Stats, error) {
	start := time.Now()
	f, err := chol.New(a, chol.Options{})
	if err != nil {
		return nil, nil, err
	}
	return solver.NewCholPrecond(f), &Stats{
		Kind:      Monolithic.String(),
		FactorNNZ: int64(f.NNZ()),
		MemBytes:  f.MemBytes(),
		BuildTime: time.Since(start),
	}, nil
}

// ErrBadAssignment is returned by the Schwarz builder when the cluster
// assignment does not cover the matrix.
var ErrBadAssignment = errors.New("precond: cluster assignment does not match matrix dimension")

// FactorRequest is one cluster's factorization job as the Schwarz
// builder hands it to a FactorDispatcher: the cluster's fingerprint (the
// remote placement key — the same key that routed the cluster's
// sparsifier build, so the factor job lands on the worker already warm
// for this cluster), its extended global index set, and the exact
// principal submatrix of the stitched pencil to factorize. Shipping the
// assembled block — overlap rows included — rather than asking the
// worker to re-derive it is what keeps remote factors bit-identical to
// local ones: the block depends on neighboring clusters' sparsifiers and
// stitch decisions, which only the coordinator knows.
type FactorRequest struct {
	// Key is the cluster fingerprint (shard.ClusterKey).
	Key string
	// Cluster is the cluster id (diagnostics only).
	Cluster int
	// Idx is the extended (sorted, global) index set; len(Idx) is the
	// block dimension.
	Idx []int
	// Sub is the principal submatrix A[Idx, Idx] of the pencil, in full
	// symmetric storage — exactly what chol.New would factorize locally.
	Sub *sparse.CSC
}

// FactorDispatcher executes cluster factorizations on behalf of the
// Schwarz builder. The fleet implementation (internal/fabric.Remote)
// ships the block to a worker and validates the returned factor
// (dimensions, SPD witness) before handing it back; any error makes the
// builder fall back to a local factorization of the same block, so a
// misbehaving dispatcher can cost time but never correctness.
// Implementations must be safe for concurrent use: the builder
// dispatches from its bounded factorization pool.
type FactorDispatcher interface {
	DispatchFactor(ctx context.Context, req *FactorRequest) (*chol.Factor, error)
}

// FactorCache stores per-cluster Cholesky factors keyed by cluster
// fingerprint, for reuse across rebuilds of the same graph family. A
// cached factor is adopted only when its extended index set matches the
// new build's exactly; its *values* may lag the new matrix slightly (the
// global shift, or stitch edges recovered near the boundary, can drift
// without changing the cluster fingerprint). That is sound: a stale SPD
// block inverse is still an SPD block inverse, so the symmetrized sweep
// stays an SPD preconditioner and PCG still converges to the true
// solution — at worst a few extra iterations, which the incremental
// quality gate bounds.
//
// Implementations must be safe for concurrent use: the Schwarz builder
// consults the cache from its factorization workers.
type FactorCache interface {
	// GetFactor returns the cached factor and its extended (sorted,
	// global) index set for key.
	GetFactor(key string) (*chol.Factor, []int, bool)
	// AddFactor stores a factor under key. Both arguments are owned by
	// the cache after the call (factors are immutable; idx is not
	// mutated by the builder afterwards).
	AddFactor(key string, f *chol.Factor, idx []int)
}
