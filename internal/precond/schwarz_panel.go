package precond

import (
	"sync"
	"sync/atomic"

	"repro/internal/dense"
)

// This file is the multi-RHS mirror of the Schwarz apply: every step of
// the palindromic sweep — coarse solve, per-block residual gather, local
// triangular solves, sweep residual — runs once over its data structures
// for all s panel columns, instead of s times. Per panel column the
// floating-point operations run in exactly the order the vector Apply
// runs them (SolvePanelNoAlloc and coarseSolvePanel preserve the scalar
// op order; MulPanel differs from MulVec only by not skipping exact-zero
// terms), so a panel apply is bit-identical to s vector applies on the
// same iterates. Panels are interleaved: entry (i, k) lives at i*s+k.

// getBuf draws a reusable zero-length-capable buffer from the panel pool
// and grows it to at least size entries. Contents are unspecified.
func (p *SchwarzPrecond) getBuf(size int) *[]float64 {
	b := p.panel.Get().(*[]float64)
	if cap(*b) < size {
		*b = make([]float64, size)
	}
	*b = (*b)[:size]
	return b
}

// ApplyPanel computes Z = M⁻¹ R for an interleaved n×s panel
// (solver.BlockPreconditioner). Safe for concurrent use, like Apply.
func (p *SchwarzPrecond) ApplyPanel(z, r []float64, s int) {
	if s == 1 {
		p.Apply(z, r)
		return
	}
	if p.coarseL == nil {
		for i := range z[:p.n*s] {
			z[i] = 0
		}
		p.colorPanel(z, r, 0, s)
		return
	}
	k := len(p.factors)
	buf := p.getBuf(2*p.n*s + k*s)
	t, u, rc := (*buf)[:p.n*s], (*buf)[p.n*s:2*p.n*s], (*buf)[2*p.n*s:]
	p.coarsePanel(z, r, rc, s, false)
	m := len(p.colors)
	for ci := 0; ci < m; ci++ {
		p.colorPanel(z, r, ci, s)
	}
	for ci := m - 2; ci >= 0; ci-- {
		p.colorPanel(z, r, ci, s)
	}
	p.a.MulPanel(z, u, s)
	for i := range t {
		t[i] = r[i] - u[i]
	}
	p.coarsePanel(z, t, rc, s, true)
	p.panel.Put(buf)
}

// coarsePanel is coarse for a panel: Z (+)= R₀ᵀ A₀⁻¹ R₀ R, with rc a
// k·s caller-provided panel.
func (p *SchwarzPrecond) coarsePanel(z, r, rc []float64, s int, add bool) {
	for i := range rc {
		rc[i] = 0
	}
	for i, c := range p.assign {
		dst, src := rc[c*s:c*s+s], r[i*s:i*s+s]
		for k := range dst {
			dst[k] += src[k]
		}
	}
	coarseSolvePanel(p.coarseL, rc, s)
	if add {
		for i, c := range p.assign {
			dst, src := z[i*s:i*s+s], rc[c*s:c*s+s]
			for k := range dst {
				dst[k] += src[k]
			}
		}
	} else {
		for i, c := range p.assign {
			copy(z[i*s:i*s+s], rc[c*s:c*s+s])
		}
	}
}

// coarseSolvePanel solves (L Lᵀ) X = B in place for a k·s panel, in the
// per-column op order of coarseSolve.
func coarseSolvePanel(l *dense.Matrix, x []float64, s int) {
	n := l.Rows
	for i := 0; i < n; i++ {
		xi := x[i*s : i*s+s]
		for j := 0; j < i; j++ {
			v := l.At(i, j)
			xj := x[j*s : j*s+s]
			for k := range xi {
				xi[k] -= v * xj[k]
			}
		}
		d := l.At(i, i)
		for k := range xi {
			xi[k] /= d
		}
	}
	for i := n - 1; i >= 0; i-- {
		xi := x[i*s : i*s+s]
		for j := i + 1; j < n; j++ {
			v := l.At(j, i)
			xj := x[j*s : j*s+s]
			for k := range xi {
				xi[k] -= v * xj[k]
			}
		}
		d := l.At(i, i)
		for k := range xi {
			xi[k] /= d
		}
	}
}

// colorPanel applies one color's block corrections to a panel, fanning
// blocks across the apply workers under the same decoupling invariant as
// the vector path (see color); the gate scales with panel width because
// each block now carries s columns of work.
func (p *SchwarzPrecond) colorPanel(z, r []float64, ci, s int) {
	color := p.colors[ci]
	if p.applyWorkers > 1 && len(color) > 1 && p.colorWork[ci]*s >= parallelMinWork {
		workers := p.applyWorkers
		if workers > len(color) {
			workers = len(color)
		}
		var pos atomic.Int64
		run := func() {
			buf := p.getBuf(3*p.maxLocal*s + s)
			for {
				i := int(pos.Add(1)) - 1
				if i >= len(color) {
					break
				}
				p.blockPanel(z, r, color[i], s, *buf)
			}
			p.panel.Put(buf)
		}
		var wg sync.WaitGroup
		for w := 1; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				run()
			}()
		}
		run()
		wg.Wait()
		return
	}
	buf := p.getBuf(3*p.maxLocal*s + s)
	for _, c := range color {
		p.blockPanel(z, r, c, s, *buf)
	}
	p.panel.Put(buf)
}

// blockPanel applies cluster c's correction to all s panel columns. buf
// carves into the local residual/solution/triangular panels plus one
// s-wide row-dot accumulator.
func (p *SchwarzPrecond) blockPanel(z, r []float64, c, s int, buf []float64) {
	a := p.a
	idx := p.clusters[c]
	ml := p.maxLocal
	rl, zl, yl, az := buf[:ml*s], buf[ml*s:2*ml*s], buf[2*ml*s:3*ml*s], buf[3*ml*s:3*ml*s+s]
	for j, i := range idx {
		for k := range az {
			az[k] = 0
		}
		for q := a.ColPtr[i]; q < a.ColPtr[i+1]; q++ {
			v := a.Val[q]
			zr := z[a.RowIdx[q]*s:]
			for k := range az {
				az[k] += v * zr[k]
			}
		}
		dst, src := rl[j*s:j*s+s], r[i*s:i*s+s]
		for k := range dst {
			dst[k] = src[k] - az[k]
		}
	}
	m := len(idx) * s
	p.factors[c].SolvePanelNoAlloc(zl[:m], rl[:m], yl[:m], s)
	for j, i := range idx {
		dst, src := z[i*s:i*s+s], zl[j*s:j*s+s]
		for k := range dst {
			dst[k] += src[k]
		}
	}
}
