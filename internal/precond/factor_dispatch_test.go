package precond_test

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"sync/atomic"
	"testing"

	"repro/internal/chol"
	"repro/internal/gen"
	"repro/internal/precond"
	"repro/internal/solver"
)

// fakeFactorDispatcher stands in for the fabric: it either factorizes
// the shipped block exactly as a well-behaved worker would (chol.New on
// the exact bytes it received), or fails every job.
type fakeFactorDispatcher struct {
	fail  bool
	calls atomic.Int64
}

func (d *fakeFactorDispatcher) DispatchFactor(ctx context.Context, req *precond.FactorRequest) (*chol.Factor, error) {
	d.calls.Add(1)
	if d.fail {
		return nil, errors.New("fleet unreachable")
	}
	return chol.New(req.Sub, chol.Options{})
}

func clusterKeys(k int) []string {
	keys := make([]string, k)
	for i := range keys {
		keys[i] = string(rune('a' + i))
	}
	return keys
}

// applyVec runs one preconditioner application on a fixed random vector.
func applyVec(p solver.Preconditioner, n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	r := make([]float64, n)
	for i := range r {
		r[i] = rng.NormFloat64()
	}
	z := make([]float64, n)
	p.Apply(z, r)
	return z
}

// TestSchwarzRemoteFactorsBitIdentical: a dispatcher that factorizes the
// shipped block must change nothing about the preconditioner — the apply
// agrees with the local build to the last bit — while the stats say the
// factors came from the fleet.
func TestSchwarzRemoteFactorsBitIdentical(t *testing.T) {
	g := gen.CircuitGrid(18, 18, 0.05, 3)
	a := laplacianOf(g)
	assign := stripes(g.N, 4)
	keys := clusterKeys(4)

	local, lst, err := precond.NewSchwarz(assign, precond.SchwarzOptions{Keys: keys}).Build(a)
	if err != nil {
		t.Fatal(err)
	}
	if lst.FactorsRemote != 0 {
		t.Fatalf("local build claims %d remote factors", lst.FactorsRemote)
	}

	d := &fakeFactorDispatcher{}
	remote, rst, err := precond.NewSchwarz(assign, precond.SchwarzOptions{Keys: keys, Factors: d}).Build(a)
	if err != nil {
		t.Fatal(err)
	}
	if rst.FactorsRemote != 4 || d.calls.Load() != 4 {
		t.Fatalf("remote factors = %d (dispatcher saw %d), want 4", rst.FactorsRemote, d.calls.Load())
	}
	zl, zr := applyVec(local, g.N, 7), applyVec(remote, g.N, 7)
	for i := range zl {
		if zl[i] != zr[i] {
			t.Fatalf("apply differs at %d: local %g, remote %g", i, zl[i], zr[i])
		}
	}
}

// TestSchwarzFactorDispatchFailureFallsBackLocal: an unreachable fleet
// costs the dispatch attempts, nothing else — every factor builds
// locally and the preconditioner is the bit-identical local one.
func TestSchwarzFactorDispatchFailureFallsBackLocal(t *testing.T) {
	g := gen.CircuitGrid(18, 18, 0.05, 3)
	a := laplacianOf(g)
	assign := stripes(g.N, 4)
	keys := clusterKeys(4)

	local, _, err := precond.NewSchwarz(assign, precond.SchwarzOptions{Keys: keys}).Build(a)
	if err != nil {
		t.Fatal(err)
	}
	d := &fakeFactorDispatcher{fail: true}
	fb, st, err := precond.NewSchwarz(assign, precond.SchwarzOptions{Keys: keys, Factors: d}).Build(a)
	if err != nil {
		t.Fatal(err)
	}
	if st.FactorsRemote != 0 {
		t.Fatalf("failing dispatcher credited with %d remote factors", st.FactorsRemote)
	}
	if d.calls.Load() != 4 {
		t.Fatalf("dispatcher attempted %d jobs, want 4 (one per cluster)", d.calls.Load())
	}
	zl, zf := applyVec(local, g.N, 7), applyVec(fb, g.N, 7)
	for i := range zl {
		if math.Abs(zl[i]-zf[i]) != 0 {
			t.Fatalf("fallback apply differs at %d: %g vs %g", i, zl[i], zf[i])
		}
	}
}

// TestSchwarzNoKeysNoDispatch: without cluster keys there is no remote
// placement identity, so the dispatcher must never be consulted.
func TestSchwarzNoKeysNoDispatch(t *testing.T) {
	g := gen.Grid2D(12, 12, 2)
	a := laplacianOf(g)
	d := &fakeFactorDispatcher{}
	_, st, err := precond.NewSchwarz(stripes(g.N, 3), precond.SchwarzOptions{Factors: d}).Build(a)
	if err != nil {
		t.Fatal(err)
	}
	if d.calls.Load() != 0 || st.FactorsRemote != 0 {
		t.Fatalf("keyless build dispatched %d factor jobs", d.calls.Load())
	}
}
