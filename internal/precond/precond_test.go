package precond_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/lap"
	"repro/internal/precond"
	"repro/internal/solver"
	"repro/internal/sparse"
	"repro/internal/sparsify"
)

// laplacianOf assembles the regularized Laplacian of g.
func laplacianOf(g *graph.Graph) *sparse.CSC {
	return lap.Laplacian(g, lap.Shift(g, 0))
}

// stripes assigns vertices to k contiguous equal stripes — a crude but
// compact clustering good enough for operator-level tests.
func stripes(n, k int) []int {
	assign := make([]int, n)
	for i := range assign {
		c := i * k / n
		if c >= k {
			c = k - 1
		}
		assign[i] = c
	}
	return assign
}

func TestParseKind(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want precond.Kind
		ok   bool
	}{
		{"", precond.Auto, true},
		{"auto", precond.Auto, true},
		{"monolithic", precond.Monolithic, true},
		{"mono", precond.Monolithic, true},
		{"Schwarz", precond.Schwarz, true},
		{"cholesky", precond.Auto, false},
	} {
		got, err := precond.ParseKind(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParseKind(%q) = %v, %v; want %v, ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
	}
	if precond.Schwarz.String() != "schwarz" || precond.Monolithic.String() != "monolithic" || precond.Auto.String() != "auto" {
		t.Errorf("kind names changed: %q %q %q", precond.Auto, precond.Monolithic, precond.Schwarz)
	}
}

// TestSchwarzSymmetricSPD: the Schwarz operator must be symmetric
// (xᵀM⁻¹y = yᵀM⁻¹x for random vectors) and positive definite
// (xᵀM⁻¹x > 0), or PCG through it is meaningless.
func TestSchwarzSymmetricSPD(t *testing.T) {
	g := gen.CircuitGrid(18, 18, 0.05, 3)
	a := laplacianOf(g)
	pre, st, err := precond.NewSchwarz(stripes(g.N, 4), precond.SchwarzOptions{}).Build(a)
	if err != nil {
		t.Fatal(err)
	}
	if st.Kind != "schwarz" || st.Clusters != 4 || st.CoarseSize != 4 {
		t.Fatalf("stats: kind=%q clusters=%d coarse=%d", st.Kind, st.Clusters, st.CoarseSize)
	}
	if st.FactorNNZ <= 0 || len(st.PerClusterNNZ) != 4 {
		t.Fatalf("stats: factor nnz %d, per-cluster %v", st.FactorNNZ, st.PerClusterNNZ)
	}

	rng := rand.New(rand.NewSource(7))
	x := make([]float64, g.N)
	y := make([]float64, g.N)
	zx := make([]float64, g.N)
	zy := make([]float64, g.N)
	for trial := 0; trial < 5; trial++ {
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		pre.Apply(zx, x)
		pre.Apply(zy, y)
		var xMy, yMx, xMx float64
		for i := range x {
			xMy += x[i] * zy[i]
			yMx += y[i] * zx[i]
			xMx += x[i] * zx[i]
		}
		if math.Abs(xMy-yMx) > 1e-9*(math.Abs(xMy)+math.Abs(yMx)+1) {
			t.Fatalf("trial %d: not symmetric: xᵀM⁻¹y=%g yᵀM⁻¹x=%g", trial, xMy, yMx)
		}
		if !(xMx > 0) {
			t.Fatalf("trial %d: not positive definite: xᵀM⁻¹x=%g", trial, xMx)
		}
	}
}

// TestSchwarzSingleClusterDegeneratesToMonolithic: with one cluster the
// extended block is the whole matrix and the coarse level is skipped, so
// the Schwarz apply must agree with the monolithic factorization exactly.
func TestSchwarzSingleClusterDegeneratesToMonolithic(t *testing.T) {
	g := gen.Grid2D(14, 14, 5)
	a := laplacianOf(g)
	mono, _, err := precond.NewMonolithic().Build(a)
	if err != nil {
		t.Fatal(err)
	}
	sch, st, err := precond.NewSchwarz(make([]int, g.N), precond.SchwarzOptions{}).Build(a)
	if err != nil {
		t.Fatal(err)
	}
	if st.Clusters != 1 || st.CoarseSize != 0 {
		t.Fatalf("stats: clusters=%d coarse=%d, want 1 cluster and no coarse level", st.Clusters, st.CoarseSize)
	}
	rng := rand.New(rand.NewSource(9))
	r := make([]float64, g.N)
	for i := range r {
		r[i] = rng.NormFloat64()
	}
	zm := make([]float64, g.N)
	zs := make([]float64, g.N)
	mono.Apply(zm, r)
	sch.Apply(zs, r)
	for i := range zm {
		if math.Abs(zm[i]-zs[i]) > 1e-12*(math.Abs(zm[i])+1) {
			t.Fatalf("apply differs at %d: monolithic %g, schwarz %g", i, zm[i], zs[i])
		}
	}
}

// TestSchwarzBadAssignment: dimension mismatches and gaps in the cluster
// ids must be rejected, not factored.
func TestSchwarzBadAssignment(t *testing.T) {
	g := gen.Grid2D(8, 8, 1)
	a := laplacianOf(g)
	if _, _, err := precond.NewSchwarz(make([]int, g.N-1), precond.SchwarzOptions{}).Build(a); err == nil {
		t.Fatal("short assignment accepted")
	}
	gap := make([]int, g.N)
	for i := range gap {
		gap[i] = 2 * (i % 2) // ids {0, 2}: cluster 1 empty
	}
	if _, _, err := precond.NewSchwarz(gap, precond.SchwarzOptions{}).Build(a); err == nil {
		t.Fatal("non-compact assignment accepted")
	}
	neg := make([]int, g.N)
	neg[3] = -1
	if _, _, err := precond.NewSchwarz(neg, precond.SchwarzOptions{}).Build(a); err == nil {
		t.Fatal("negative cluster id accepted")
	}
}

// threeCommunities mirrors the shard test fixture: three dense grid
// communities joined by weak bridges — the structure the Schwarz clusters
// are supposed to exploit.
func threeCommunities(side int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	var edges []graph.Edge
	n := 0
	offsets := make([]int, 3)
	for c := 0; c < 3; c++ {
		offsets[c] = n
		comm := gen.Grid2D(side, side, seed+int64(c))
		for _, e := range comm.Edges {
			edges = append(edges, graph.Edge{U: e.U + n, V: e.V + n, W: e.W})
		}
		n += comm.N
	}
	sz := side * side
	for c := 0; c < 3; c++ {
		a, b := offsets[c], offsets[(c+1)%3]
		for i := 0; i < 3; i++ {
			edges = append(edges, graph.Edge{
				U: a + rng.Intn(sz), V: b + rng.Intn(sz), W: 0.05 + 0.1*rng.Float64(),
			})
		}
	}
	return graph.MustNew(n, edges)
}

// TestSchwarzQualityWithin2x is the preconditioner-layer quality gate: on
// the 3-community graph, PCG through the Schwarz preconditioner of a
// sparsifier must converge within 2x the iterations of PCG through the
// monolithic factorization of the same sparsifier.
func TestSchwarzQualityWithin2x(t *testing.T) {
	g := threeCommunities(16, 11)
	res, err := sparsify.Sparsify(g, sparsify.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	shift := res.Shift
	lg := lap.Laplacian(g, shift)
	lp := lap.Laplacian(res.Sparsifier, shift)

	// Cluster by community — exactly what a sharded plan would produce.
	assign := make([]int, g.N)
	for i := range assign {
		assign[i] = i / (16 * 16)
	}

	mono, _, err := precond.NewMonolithic().Build(lp)
	if err != nil {
		t.Fatal(err)
	}
	sch, _, err := precond.NewSchwarz(assign, precond.SchwarzOptions{}).Build(lp)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(42))
	b := make([]float64, g.N)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	run := func(m solver.Preconditioner) solver.Result {
		x := make([]float64, g.N)
		return solver.PCG(lg, b, x, m, solver.Options{Tol: 1e-6})
	}
	rm := run(mono)
	rs := run(sch)
	if !rm.Converged || !rs.Converged {
		t.Fatalf("convergence: monolithic=%v schwarz=%v", rm.Converged, rs.Converged)
	}
	if rs.Iterations > 2*rm.Iterations {
		t.Fatalf("schwarz PCG took %d iterations, monolithic %d — over the 2x budget",
			rs.Iterations, rm.Iterations)
	}
	t.Logf("PCG iterations: monolithic=%d schwarz=%d", rm.Iterations, rs.Iterations)
}

// TestSchwarzParallelApplyBitIdentical600Grid is the full-size
// bit-identity gate: on the 600×600 grid Laplacian with 32 striped
// clusters the parallel work gate engages with the real thresholds (no
// test override), and the fanned-out apply must still be bit-identical
// to the sequential sweep.
func TestSchwarzParallelApplyBitIdentical600Grid(t *testing.T) {
	if testing.Short() {
		t.Skip("builds 32 cluster factors on a 360k-vertex grid")
	}
	g := gen.Grid2D(600, 600, 1)
	a := laplacianOf(g)
	assign := stripes(g.N, 32)
	// Overlap 4 keeps the factor build a few seconds; the parallel gate
	// only cares that each color carries tens of thousands of extended
	// vertices, which 32 stripes of 11k+ guarantee.
	build := func(applyWorkers int) solver.Preconditioner {
		pre, st, err := precond.NewSchwarz(assign, precond.SchwarzOptions{
			Overlap: 4, ApplyWorkers: applyWorkers,
		}).Build(a)
		if err != nil {
			t.Fatal(err)
		}
		if applyWorkers > 1 && st.Colors < 2 {
			t.Fatalf("striped grid colored into %d colors", st.Colors)
		}
		return pre
	}
	seq := build(-1)
	par := build(4)

	rng := rand.New(rand.NewSource(600))
	r := make([]float64, g.N)
	for i := range r {
		r[i] = rng.NormFloat64()
	}
	zs := make([]float64, g.N)
	zp := make([]float64, g.N)
	seq.Apply(zs, r)
	par.Apply(zp, r)
	for i := range zs {
		if zs[i] != zp[i] {
			t.Fatalf("parallel apply differs from sequential at %d: %g vs %g", i, zp[i], zs[i])
		}
	}
}
