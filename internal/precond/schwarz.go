package precond

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"slices"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/chol"
	"repro/internal/dense"
	"repro/internal/solver"
	"repro/internal/sparse"
)

// SchwarzOptions tunes the Schwarz builder.
type SchwarzOptions struct {
	// Overlap is how many structure layers each cluster is extended by
	// before its principal submatrix is factorized. Wider overlap buys
	// PCG convergence for a bounded duplication of boundary work. 0
	// (the default) adapts to the cluster geometry — about a quarter of
	// the mean cluster diameter √(n/K), clamped to [minOverlap,
	// maxOverlap] — because the Schwarz condition number scales like
	// 1 + H/δ (H the cluster diameter, δ the overlap width): a fixed δ
	// that works at one cluster size under-delivers at twice the size.
	// Negative disables overlap entirely.
	Overlap int
	// Workers bounds the concurrent per-cluster factorizations
	// (default GOMAXPROCS).
	Workers int
	// Keys, when non-empty, names each cluster (aligned with cluster
	// ids) for factor caching — normally the shard plan's cluster
	// fingerprints. Clusters with an empty key are never cached.
	Keys []string
	// Cache, when non-nil together with Keys, is consulted before each
	// cluster is factorized and populated afterward; see FactorCache for
	// the staleness contract.
	Cache FactorCache
	// Factors, when non-nil together with Keys, dispatches each cluster's
	// factorization (the exact extended principal submatrix travels in
	// the request) to a remote builder before falling back to the local
	// chol.New. Clusters with an empty key always factorize locally.
	Factors FactorDispatcher
	// Ctx bounds remote factor dispatches (nil = context.Background()).
	// Purely a transport deadline: a canceled dispatch falls back to the
	// local factorization, it does not fail the build.
	Ctx context.Context
	// ApplyWorkers bounds the goroutines that fan one Apply's same-color
	// block corrections out in parallel. Same-color blocks are
	// support-disjoint and A-decoupled by the coloring invariant, so the
	// parallel sweep is bit-identical to the sequential one. 0 (the
	// default) uses GOMAXPROCS; negative forces the sequential sweep.
	// Parallelism engages per color only when the color carries enough
	// blocks and work to amortize goroutine dispatch.
	ApplyWorkers int
}

// Overlap clamps for the adaptive default.
const (
	minOverlap = 4
	maxOverlap = 32
)

// resolveOverlap returns the effective extension depth for clusters
// averaging n/k vertices.
func (o SchwarzOptions) resolveOverlap(n, k int) int {
	switch {
	case o.Overlap > 0:
		return o.Overlap
	case o.Overlap < 0:
		return 0
	}
	h := int(math.Sqrt(float64(n) / float64(k)))
	ov := (h + 3) / 4
	if ov < minOverlap {
		ov = minOverlap
	}
	if ov > maxOverlap {
		ov = maxOverlap
	}
	return ov
}

func (o SchwarzOptions) withDefaults() SchwarzOptions {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	switch {
	case o.ApplyWorkers == 0:
		o.ApplyWorkers = runtime.GOMAXPROCS(0)
	case o.ApplyWorkers < 0:
		o.ApplyWorkers = 1
	}
	return o
}

// schwarzBuilder builds SchwarzPrecond instances for a fixed cluster
// assignment (normally the sharded pipeline's plan).
type schwarzBuilder struct {
	assign []int
	opts   SchwarzOptions
}

// NewSchwarz returns a builder for the two-level Schwarz preconditioner
// over the given cluster assignment (assign[v] = cluster id of vertex v;
// ids must be compact, 0..K-1 with every cluster nonempty). The sharded
// pipeline's Plan.Assign satisfies this by construction. The assignment
// is copied: the built preconditioner aggregates through it on every
// Apply for its whole lifetime, and aliasing a caller-visible slice
// (ShardStats.Assign) would let external mutation silently corrupt
// cached solves.
func NewSchwarz(assign []int, opts SchwarzOptions) Builder {
	return &schwarzBuilder{assign: append([]int(nil), assign...), opts: opts.withDefaults()}
}

func (b *schwarzBuilder) Kind() string { return Schwarz.String() }

// SchwarzPrecond is a symmetrized multiplicative two-level Schwarz
// preconditioner over per-cluster factors of the stitched sparsifier
// Laplacian A = L_P. Each cluster's vertex set is extended by a few
// overlap layers and the corresponding principal submatrix A_c is
// factored sparsely (concurrently, at build time). The clusters are then
// greedy-colored so that same-color blocks have no coupling entry in A —
// which makes each color's correction
//
//	z += Σ_{c ∈ color} R̃_cᵀ A_c⁻¹ R̃_c (r − A z)
//
// an exact A-orthogonal projection step — and one application runs the
// palindromic sweep
//
//	coarse, color₁, …, colorₘ, colorₘ, …, color₁, coarse
//
// recomputing the residual r − A z between steps. The coarse step solves
// the cluster-quotient system A₀ = R₀ A R₀ᵀ (R₀ aggregates per cluster:
// the cut-edge coupling between clusters plus the aggregated shift) with
// one small dense Cholesky solve; it carries the global error component
// no block can see. The multiplicative composition is what keeps the
// iteration penalty bounded: a plain additive sum over overlapping blocks
// double-counts every vertex by its coverage multiplicity, and that —
// not the overlap width — becomes its conditioning floor.
//
// The palindromic order makes the error propagation F*F for an
// A-contraction F, so the induced operator is symmetric positive definite
// and PCG applies. With a single cluster the block solve is exact and the
// operator degenerates to the monolithic factorization.
//
// Apply is safe for concurrent use: all scratch comes from a pool.
type SchwarzPrecond struct {
	n        int
	a        *sparse.CSC // the preconditioned matrix L_P (for sweep residuals)
	assign   []int       // base (non-overlapping) assignment, for the coarse level
	clusters [][]int     // per-cluster extended global index sets, sorted
	colors   [][]int     // cluster ids per color; same-color blocks are A-decoupled
	factors  []*chol.Factor
	coarseL  *dense.Matrix // dense Cholesky factor of A₀; nil when K < 2
	maxLocal int
	scratch  sync.Pool

	// applyWorkers bounds the per-color block fan-out; colorWork[ci] is
	// the total extended vertex count of color ci, the work estimate the
	// parallel gate consults.
	applyWorkers int
	colorWork    []int
	panel        sync.Pool // *[]float64 raw buffers for panel applies
}

type schwarzScratch struct {
	rl, zl, yl []float64 // local gather / solve / triangular scratch
	rc         []float64 // coarse residual and solution (in place)
	t, u       []float64 // sweep residual scratch
}

// parallelMinWork is the minimum extended-vertex count (× panel width)
// one color must carry before its block corrections fan out across
// goroutines; below it the dispatch overhead of even a handful of
// goroutines is comparable to the block solves themselves. A variable
// only so the bit-identity tests can force the parallel path on small
// fixtures; real callers tune ApplyWorkers, not this.
var parallelMinWork = 2048

// Apply computes z = M⁻¹ r.
func (p *SchwarzPrecond) Apply(z, r []float64) {
	s := p.scratch.Get().(*schwarzScratch)
	if p.coarseL == nil {
		// Single cluster: one exact block solve, nothing to compose.
		for i := range z {
			z[i] = 0
		}
		p.color(z, r, 0, s)
		p.scratch.Put(s)
		return
	}
	// z = C r, then the palindromic color sweep, then C again. The
	// backward pass starts at m−2: repeating the last color would be an
	// exact no-op (the projection just applied is idempotent and no
	// same-color block perturbs another), so skipping it keeps the
	// operator bit-identical while saving one color pass per apply.
	p.coarse(z, r, s, false)
	m := len(p.colors)
	for ci := 0; ci < m; ci++ {
		p.color(z, r, ci, s)
	}
	for ci := m - 2; ci >= 0; ci-- {
		p.color(z, r, ci, s)
	}
	p.residual(s.t, r, z, s.u)
	p.coarse(z, s.t, s, true)
	p.scratch.Put(s)
}

// NumClusters returns the number of per-cluster factors.
func (p *SchwarzPrecond) NumClusters() int { return len(p.factors) }

// ClusterFactor returns cluster c's extended (sorted, global) index set
// and Cholesky factor — the handle-level Update path seeds its factor
// cache from a base preconditioner through this. Both returns are shared,
// immutable state; callers must not mutate them.
func (p *SchwarzPrecond) ClusterFactor(c int) ([]int, *chol.Factor) {
	return p.clusters[c], p.factors[c]
}

// residual computes t = r − A z (u is scratch for A z).
func (p *SchwarzPrecond) residual(t, r, z, u []float64) {
	p.a.MulVec(z, u)
	for i := range t {
		t[i] = r[i] - u[i]
	}
}

// coarse applies the cluster-quotient correction: z (+)= R₀ᵀ A₀⁻¹ R₀ r.
func (p *SchwarzPrecond) coarse(z, r []float64, s *schwarzScratch, add bool) {
	rc := s.rc
	for c := range rc {
		rc[c] = 0
	}
	for i, c := range p.assign {
		rc[c] += r[i]
	}
	coarseSolve(p.coarseL, rc)
	if add {
		for i, c := range p.assign {
			z[i] += rc[c]
		}
	} else {
		for i, c := range p.assign {
			z[i] = rc[c]
		}
	}
}

// color applies one color's block corrections against the current
// iterate: z += Σ_c R̃_cᵀ A_c⁻¹ R̃_c (r − A z) for every cluster c in the
// color. The residual is evaluated only on each block's support, one
// symmetric row-dot per vertex (row i of A is column i), instead of a
// full matrix-vector product per color step — the supports of one full
// sweep sum to roughly the extended vertex count, a fraction of what
// len(colors) full products would cost. Same-color supports are disjoint
// and A-decoupled, so no same-color update changes another block's
// residual and the additions commute: the step is an exact A-orthogonal
// projection.
//
// The same invariant is what makes the parallel fan-out below exact, not
// merely approximate: block c writes z only at its own extended indices
// (disjoint from every same-color peer's), and the z entries its residual
// reads — rows with an A-entry into its support — belong to no same-color
// peer either, because such a coupling entry would have linked the two
// clusters during coloring. No location is read while another goroutine
// writes it and no location is written twice, so the parallel sweep is
// bit-identical to the sequential one, per color and per entry.
func (p *SchwarzPrecond) color(z, r []float64, ci int, s *schwarzScratch) {
	color := p.colors[ci]
	if p.applyWorkers > 1 && len(color) > 1 && p.colorWork[ci] >= parallelMinWork {
		p.colorParallel(z, r, color, s)
		return
	}
	for _, c := range color {
		p.block(z, r, c, s)
	}
}

// block applies one cluster's correction; see color for the invariants.
func (p *SchwarzPrecond) block(z, r []float64, c int, s *schwarzScratch) {
	a := p.a
	idx := p.clusters[c]
	rl, zl, yl := s.rl[:len(idx)], s.zl[:len(idx)], s.yl[:len(idx)]
	for j, i := range idx {
		var az float64
		for q := a.ColPtr[i]; q < a.ColPtr[i+1]; q++ {
			az += a.Val[q] * z[a.RowIdx[q]]
		}
		rl[j] = r[i] - az
	}
	p.factors[c].SolveToNoAlloc(zl, rl, yl)
	for j, i := range idx {
		z[i] += zl[j]
	}
}

// colorParallel fans one color's blocks across a bounded worker pool.
// The caller's scratch serves the inline worker; extra workers draw their
// own from the pool, so concurrent block solves never share scratch.
func (p *SchwarzPrecond) colorParallel(z, r []float64, color []int, s *schwarzScratch) {
	workers := p.applyWorkers
	if workers > len(color) {
		workers = len(color)
	}
	var pos atomic.Int64
	run := func(ws *schwarzScratch) {
		for {
			i := int(pos.Add(1)) - 1
			if i >= len(color) {
				return
			}
			p.block(z, r, color[i], ws)
		}
	}
	var wg sync.WaitGroup
	for w := 1; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ws := p.scratch.Get().(*schwarzScratch)
			run(ws)
			p.scratch.Put(ws)
		}()
	}
	run(s)
	wg.Wait()
}

// coarseSolve solves (L Lᵀ) x = b in place given the dense lower factor.
func coarseSolve(l *dense.Matrix, x []float64) {
	n := l.Rows
	for i := 0; i < n; i++ {
		s := x[i]
		for j := 0; j < i; j++ {
			s -= l.At(i, j) * x[j]
		}
		x[i] = s / l.At(i, i)
	}
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= l.At(j, i) * x[j]
		}
		x[i] = s / l.At(i, i)
	}
}

// Build extends and factorizes every cluster's principal submatrix
// concurrently on a bounded worker pool, colors the clusters, assembles
// the coarse quotient matrix, and wires the Apply.
func (b *schwarzBuilder) Build(a *sparse.CSC) (solver.Preconditioner, *Stats, error) {
	start := time.Now()
	n := a.Cols
	if len(b.assign) != n {
		return nil, nil, fmt.Errorf("%w: %d assignments for an %d×%d matrix",
			ErrBadAssignment, len(b.assign), a.Rows, a.Cols)
	}
	k := 0
	for v, c := range b.assign {
		if c < 0 {
			return nil, nil, fmt.Errorf("%w: vertex %d has cluster id %d", ErrBadAssignment, v, c)
		}
		if c+1 > k {
			k = c + 1
		}
	}
	base := make([][]int, k)
	for i, c := range b.assign {
		base[c] = append(base[c], i) // ascending i → sorted by construction
	}
	for c, idx := range base {
		if len(idx) == 0 {
			return nil, nil, fmt.Errorf("%w: cluster %d is empty (ids must be compact)", ErrBadAssignment, c)
		}
	}

	p := &SchwarzPrecond{
		n:            n,
		a:            a,
		assign:       b.assign,
		clusters:     make([][]int, k),
		factors:      make([]*chol.Factor, k),
		applyWorkers: b.opts.ApplyWorkers,
	}

	// Phase 1 (serial, cheap BFS over the structure): extend every
	// cluster by the overlap layers.
	overlap := b.opts.resolveOverlap(n, k)
	{
		local := make([]int, n) // global → mark scratch, all zero between uses
		for c := range base {
			p.clusters[c] = extend(a, base[c], overlap, local)
		}
	}
	p.colors = colorClusters(a, p.clusters, k)
	p.colorWork = make([]int, len(p.colors))
	for ci, color := range p.colors {
		for _, c := range color {
			p.colorWork[ci] += len(p.clusters[c])
		}
	}

	// Phase 2 (concurrent on the worker pool): extract each extended
	// cluster's principal submatrix and factorize it — or adopt a cached
	// factor when the cluster's fingerprint key hits and the cached
	// extended index set matches the freshly computed one exactly (a
	// changed overlap geometry means the factor solves the wrong block).
	nnz := make([]int, k)
	errs := make([]error, k)
	reused := make([]bool, k)
	remote := make([]bool, k)
	keyOf := func(c int) string {
		if c < len(b.opts.Keys) {
			return b.opts.Keys[c]
		}
		return ""
	}
	fctx := b.opts.Ctx
	if fctx == nil {
		fctx = context.Background()
	}
	workers := b.opts.Workers
	if workers > k {
		workers = k
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]int, n) // global → local+1; 0 = absent
			for c := range next {
				key := keyOf(c)
				if b.opts.Cache != nil && key != "" {
					if f, idx, ok := b.opts.Cache.GetFactor(key); ok && slices.Equal(idx, p.clusters[c]) {
						p.factors[c] = f
						nnz[c] = f.NNZ()
						reused[c] = true
						continue
					}
				}
				sub, err := principal(a, p.clusters[c], local)
				if err != nil {
					errs[c] = err
					continue
				}
				var f *chol.Factor
				if b.opts.Factors != nil && key != "" {
					// Remote factor build: ship the exact block; the
					// dispatcher validates dimensions and the SPD witness
					// on receipt. Any error — fleet down, corrupted
					// payload, dimension mismatch — degrades to the local
					// factorization of the same block below, so the build
					// cannot fail (or drift) because a worker misbehaved.
					rf, rerr := b.opts.Factors.DispatchFactor(fctx, &FactorRequest{
						Key: key, Cluster: c, Idx: p.clusters[c], Sub: sub,
					})
					if rerr == nil && rf != nil && rf.N == len(p.clusters[c]) {
						f = rf
						remote[c] = true
					}
				}
				if f == nil {
					f, err = chol.New(sub, chol.Options{})
					if err != nil {
						errs[c] = fmt.Errorf("precond: factorizing cluster %d (%d vertices): %w", c, len(p.clusters[c]), err)
						continue
					}
				}
				p.factors[c] = f
				nnz[c] = f.NNZ()
				if b.opts.Cache != nil && key != "" {
					b.opts.Cache.AddFactor(key, f, p.clusters[c])
				}
			}
		}()
	}
	for c := 0; c < k; c++ {
		next <- c
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}

	st := &Stats{Kind: Schwarz.String(), Clusters: k, Colors: len(p.colors), PerClusterNNZ: nnz}
	for c := range reused {
		if reused[c] {
			st.FactorsReused++
		}
		if remote[c] {
			st.FactorsRemote++
		}
	}
	for c := range p.factors {
		st.FactorNNZ += int64(nnz[c])
		st.MemBytes += p.factors[c].MemBytes()
		st.MemBytes += int64(len(p.clusters[c])) * 8
		if len(p.clusters[c]) > p.maxLocal {
			p.maxLocal = len(p.clusters[c])
		}
	}

	// Coarse level: A₀ = R₀ A R₀ᵀ over the base (non-overlapping)
	// assignment. The intra-cluster Laplacian part cancels under
	// piecewise-constant aggregation, leaving exactly the cut-edge
	// quotient coupling plus the aggregated diagonal shift — SPD as long
	// as the shift is positive, which the pencil guarantees. A single
	// cluster needs no coarse level: its block already solves exactly.
	if k >= 2 {
		a0 := dense.New(k, k)
		for j := 0; j < n; j++ {
			cj := b.assign[j]
			for q := a.ColPtr[j]; q < a.ColPtr[j+1]; q++ {
				ci := b.assign[a.RowIdx[q]]
				a0.Set(ci, cj, a0.At(ci, cj)+a.Val[q])
			}
		}
		l, err := dense.Cholesky(a0)
		if err != nil {
			return nil, nil, fmt.Errorf("precond: coarse %d×%d system: %w", k, k, err)
		}
		p.coarseL = l
		st.CoarseSize = k
		st.MemBytes += int64(k*k) * 8
	}

	p.scratch.New = func() any {
		s := &schwarzScratch{
			rl: make([]float64, p.maxLocal),
			zl: make([]float64, p.maxLocal),
			yl: make([]float64, p.maxLocal),
			rc: make([]float64, k),
		}
		if p.coarseL != nil {
			s.t = make([]float64, n)
			s.u = make([]float64, n)
		}
		return s
	}
	p.panel.New = func() any { return new([]float64) }
	st.BuildTime = time.Since(start)
	return p, st, nil
}

// colorClusters greedy-colors the clusters so that two clusters whose
// extended sets are coupled by any entry of A (including a shared vertex)
// never share a color. Within a color the block corrections then commute
// exactly — their subspaces are mutually A-orthogonal — which is what
// lets the sweep apply a whole color at once while staying multiplicative
// across colors.
func colorClusters(a *sparse.CSC, clusters [][]int, k int) [][]int {
	n := a.Cols
	// cover[i] lists the clusters whose extended set contains vertex i
	// (coverage multiplicity is small: bounded by the overlap geometry).
	cover := make([][]int32, n)
	for c, idx := range clusters {
		for _, i := range idx {
			cover[i] = append(cover[i], int32(c))
		}
	}
	adj := make([]map[int]struct{}, k)
	link := func(c, d int) {
		if c == d {
			return
		}
		if adj[c] == nil {
			adj[c] = make(map[int]struct{})
		}
		if adj[d] == nil {
			adj[d] = make(map[int]struct{})
		}
		adj[c][d] = struct{}{}
		adj[d][c] = struct{}{}
	}
	for j := 0; j < n; j++ {
		cj := cover[j]
		// Shared-vertex pairs.
		for x := 0; x < len(cj); x++ {
			for y := x + 1; y < len(cj); y++ {
				link(int(cj[x]), int(cj[y]))
			}
		}
		// Off-diagonal coupling pairs.
		for q := a.ColPtr[j]; q < a.ColPtr[j+1]; q++ {
			i := a.RowIdx[q]
			if i == j {
				continue
			}
			for _, c := range cover[i] {
				for _, d := range cj {
					link(int(c), int(d))
				}
			}
		}
	}
	colorOf := make([]int, k)
	used := make(map[int]bool)
	maxColor := 0
	for c := 0; c < k; c++ {
		for u := range used {
			delete(used, u)
		}
		for d := range adj[c] {
			if d < c {
				used[colorOf[d]] = true
			}
		}
		col := 0
		for used[col] {
			col++
		}
		colorOf[c] = col
		if col+1 > maxColor {
			maxColor = col + 1
		}
	}
	colors := make([][]int, maxColor)
	for c := 0; c < k; c++ {
		colors[colorOf[c]] = append(colors[colorOf[c]], c)
	}
	return colors
}

// extend grows the sorted vertex set idx by `layers` breadth-first sweeps
// over the matrix structure. local is an all-zero scratch of length n on
// entry and is restored to all-zero on return.
func extend(a *sparse.CSC, idx []int, layers int, local []int) []int {
	out := append([]int(nil), idx...)
	for _, i := range out {
		local[i] = 1
	}
	frontier := out
	for l := 0; l < layers; l++ {
		var next []int
		for _, j := range frontier {
			for q := a.ColPtr[j]; q < a.ColPtr[j+1]; q++ {
				i := a.RowIdx[q]
				if local[i] == 0 {
					local[i] = 1
					next = append(next, i)
				}
			}
		}
		if len(next) == 0 {
			break
		}
		out = append(out, next...)
		frontier = next
	}
	for _, i := range out {
		local[i] = 0
	}
	sort.Ints(out)
	return out
}

// principal extracts the principal submatrix A[idx, idx]. idx must be
// sorted; local is an all-zero scratch of length n on entry and is
// restored to all-zero on return.
func principal(a *sparse.CSC, idx []int, local []int) (*sparse.CSC, error) {
	for li, i := range idx {
		local[i] = li + 1
	}
	t := sparse.NewTriplet(len(idx), len(idx))
	for lj, j := range idx {
		for q := a.ColPtr[j]; q < a.ColPtr[j+1]; q++ {
			if li := local[a.RowIdx[q]]; li != 0 {
				t.Add(li-1, lj, a.Val[q])
			}
		}
	}
	for _, i := range idx {
		local[i] = 0
	}
	return t.ToCSC(), nil
}
