// Package pg is the power-grid substrate for the paper's §4.2 experiments.
// The IBM [14] and THU [18] benchmark netlists are not redistributable, so
// Synthesize builds structurally equivalent grids: multiple metal layers of
// orthogonal wires joined by vias, supply pads on the top layer, node
// capacitances drawn uniformly from 1–10 pF (the paper's recipe), and
// periodic-pulse current loads on the bottom layer whose breakpoints are
// aligned to a 10 ps lattice — reproducing the fixed-step limit the paper
// cites for the direct solver.
//
// Transient analysis follows eq. (21): backward Euler on
// (G + C/h) x(t+h) = (C/h) x(t) + u(t+h), with a fixed-step
// factor-once direct engine and a varied-step PCG engine whose
// preconditioner is built once during DC analysis.
package pg

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/graph"
	"repro/internal/sparse"
)

// Pulse is a periodic trapezoidal current waveform: zero until Delay, then
// every Period seconds it ramps to I0 over Rise, holds for High, and ramps
// back over Fall.
type Pulse struct {
	Delay, Rise, High, Fall, Period float64 // seconds
	I0                              float64 // amperes
}

// At evaluates the waveform at time t.
func (p Pulse) At(t float64) float64 {
	if t < p.Delay {
		return 0
	}
	u := math.Mod(t-p.Delay, p.Period)
	switch {
	case u < p.Rise:
		return p.I0 * u / p.Rise
	case u < p.Rise+p.High:
		return p.I0
	case u < p.Rise+p.High+p.Fall:
		return p.I0 * (1 - (u-p.Rise-p.High)/p.Fall)
	default:
		return 0
	}
}

// Breakpoints appends the waveform's corner times within [0, horizon] to
// dst: the instants where the slope changes, which bound the step size of
// accurate time integration.
func (p Pulse) Breakpoints(horizon float64, dst []float64) []float64 {
	tol := horizon * 1e-9 // absorb float accumulation across periods
	for start := p.Delay; start <= horizon+tol; start += p.Period {
		for _, c := range [4]float64{0, p.Rise, p.Rise + p.High, p.Rise + p.High + p.Fall} {
			if t := start + c; t <= horizon+tol {
				dst = append(dst, t)
			}
		}
	}
	return dst
}

// Source is a current load attached to a node.
type Source struct {
	Node int
	Wave Pulse
}

// Config parameterizes Synthesize.
type Config struct {
	// NX, NY size the bottom (finest) metal layer.
	NX, NY int
	// Layers is the number of metal layers (≥1); each upper layer halves
	// the pitch.
	Layers int
	// VDD is the supply voltage (0 for a ground net — see GroundNet).
	VDD float64
	// PadFrac is the fraction of top-layer nodes carrying a supply pad.
	PadFrac float64
	// PadG is the pad conductance to the ideal supply (S).
	PadG float64
	// WireG is the base wire conductance (S); ViaG the via conductance.
	WireG, ViaG float64
	// CapMin, CapMax bound the per-node capacitance (F). Paper: 1–10 pF.
	CapMin, CapMax float64
	// SourceFrac is the fraction of bottom-layer nodes drawing load
	// current; IMax bounds the pulse amplitude (A).
	SourceFrac float64
	IMax       float64
	// TimeAlign is the lattice all waveform corners snap to (paper: the
	// smallest breakpoint distance is 10 ps).
	TimeAlign float64
	// GroundNet flips the net polarity: pads tie to 0 V and the loads
	// inject (return) current instead of drawing it.
	GroundNet bool
	Seed      int64
}

// IBM-like defaults; callers override NX/NY/Seed.
func (c Config) withDefaults() Config {
	if c.NX == 0 {
		c.NX = 100
	}
	if c.NY == 0 {
		c.NY = 100
	}
	if c.Layers == 0 {
		c.Layers = 3
	}
	if c.VDD == 0 && !c.GroundNet {
		c.VDD = 1.8
	}
	if c.PadFrac == 0 {
		c.PadFrac = 0.05
	}
	if c.PadG == 0 {
		c.PadG = 50
	}
	if c.WireG == 0 {
		c.WireG = 1.0
	}
	if c.ViaG == 0 {
		c.ViaG = 5.0
	}
	if c.CapMin == 0 {
		c.CapMin = 1e-12
	}
	if c.CapMax == 0 {
		c.CapMax = 10e-12
	}
	if c.SourceFrac == 0 {
		c.SourceFrac = 0.10
	}
	if c.IMax == 0 {
		c.IMax = 5e-3
	}
	if c.TimeAlign == 0 {
		c.TimeAlign = 10e-12
	}
	return c
}

// Grid is a synthesized power-distribution net.
type Grid struct {
	Cfg      Config
	G        *graph.Graph // wire+via conductance network
	N        int
	PadNodes []int
	Cap      []float64 // per-node capacitance (F)
	Sources  []Source
}

// Synthesize builds a power grid from the configuration.
func Synthesize(cfg Config) (*Grid, error) {
	c := cfg.withDefaults()
	rng := rand.New(rand.NewSource(c.Seed))

	// Layer geometry: layer 0 is NX×NY; each upper layer halves each
	// dimension (minimum 2).
	type layer struct {
		nx, ny, offset int
	}
	layers := make([]layer, c.Layers)
	offset := 0
	nx, ny := c.NX, c.NY
	for l := 0; l < c.Layers; l++ {
		layers[l] = layer{nx: nx, ny: ny, offset: offset}
		offset += nx * ny
		nx = max2(nx/2, 2)
		ny = max2(ny/2, 2)
	}
	n := offset

	var edges []graph.Edge
	jit := func() float64 { return 0.5 + rng.Float64() } // ×[0.5, 1.5)
	for l, L := range layers {
		id := func(x, y int) int { return L.offset + y*L.nx + x }
		// Alternate preferred direction per layer, but keep both so each
		// layer is connected (real grids route H and V stripes; modeling
		// both keeps the graph simple and SDD).
		for y := 0; y < L.ny; y++ {
			for x := 0; x < L.nx; x++ {
				if x+1 < L.nx {
					edges = append(edges, graph.Edge{U: id(x, y), V: id(x+1, y), W: c.WireG * jit()})
				}
				if y+1 < L.ny {
					edges = append(edges, graph.Edge{U: id(x, y), V: id(x, y+1), W: c.WireG * jit()})
				}
			}
		}
		// Vias to the layer above at aligned coordinates.
		if l+1 < len(layers) {
			U := layers[l+1]
			uid := func(x, y int) int { return U.offset + y*U.nx + x }
			sx := float64(L.nx) / float64(U.nx)
			sy := float64(L.ny) / float64(U.ny)
			for uy := 0; uy < U.ny; uy++ {
				for ux := 0; ux < U.nx; ux++ {
					lx := min2(int(float64(ux)*sx), L.nx-1)
					ly := min2(int(float64(uy)*sy), L.ny-1)
					edges = append(edges, graph.Edge{U: id(lx, ly), V: uid(ux, uy), W: c.ViaG * jit()})
				}
			}
		}
	}
	g, err := graph.New(n, edges)
	if err != nil {
		return nil, fmt.Errorf("pg: building grid graph: %w", err)
	}
	if !g.Connected() {
		return nil, fmt.Errorf("pg: synthesized grid is disconnected")
	}

	grid := &Grid{Cfg: c, G: g, N: n}

	// Pads: random top-layer nodes.
	top := layers[len(layers)-1]
	topCount := top.nx * top.ny
	padCount := int(c.PadFrac * float64(topCount))
	if padCount < 1 {
		padCount = 1
	}
	padPerm := rng.Perm(topCount)
	for _, k := range padPerm[:padCount] {
		grid.PadNodes = append(grid.PadNodes, top.offset+k)
	}
	sort.Ints(grid.PadNodes)

	// Node capacitances.
	grid.Cap = make([]float64, n)
	for i := range grid.Cap {
		grid.Cap[i] = c.CapMin + rng.Float64()*(c.CapMax-c.CapMin)
	}

	// Current loads on the bottom layer. As in the IBM/THU benchmarks,
	// the sources share a small set of waveform *templates* (amplitudes
	// vary per source): the union of breakpoints stays sparse, which is
	// what makes varied-step integration profitable, while two templates
	// offset by exactly one TimeAlign pin the fixed-step limit at 10 ps.
	bottom := layers[0]
	bottomCount := bottom.nx * bottom.ny
	srcCount := int(c.SourceFrac * float64(bottomCount))
	if srcCount < 0 {
		srcCount = 0 // negative SourceFrac means "no loads"
	} else if srcCount > bottomCount {
		srcCount = bottomCount
	}
	align := func(t float64) float64 { return math.Round(t/c.TimeAlign) * c.TimeAlign }
	const numTemplates = 6
	templates := make([]Pulse, numTemplates)
	for i := range templates {
		period := align((2 + 2*rng.Float64()) * 1e-9)    // 2–4 ns
		rise := align((0.05 + 0.1*rng.Float64()) * 1e-9) // 50–150 ps
		if rise < c.TimeAlign {
			rise = c.TimeAlign
		}
		high := align((0.3 + 0.9*rng.Float64()) * 1e-9) // 0.3–1.2 ns
		delay := align(rng.Float64() * 1e-9)            // 0–1 ns
		templates[i] = Pulse{Delay: delay, Rise: rise, High: high, Fall: rise, Period: period}
	}
	if numTemplates >= 2 {
		// Pin the smallest breakpoint distance at exactly TimeAlign.
		templates[1] = templates[0]
		templates[1].Delay = templates[0].Delay + c.TimeAlign
	}
	srcPerm := rng.Perm(bottomCount)
	for _, k := range srcPerm[:srcCount] {
		wave := templates[rng.Intn(numTemplates)]
		wave.I0 = c.IMax * (0.2 + 0.8*rng.Float64())
		grid.Sources = append(grid.Sources, Source{Node: bottom.offset + k, Wave: wave})
	}
	return grid, nil
}

func max2(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min2(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// PadDiag returns the diagonal vector of pad conductances (zero elsewhere).
func (gr *Grid) PadDiag() []float64 {
	d := make([]float64, gr.N)
	for _, p := range gr.PadNodes {
		d[p] = gr.Cfg.PadG
	}
	return d
}

// ConductanceMatrix assembles G = L(wires) + diag(pads): the SDD system
// matrix of DC analysis.
func (gr *Grid) ConductanceMatrix() *sparse.CSC {
	return laplacianWithDiag(gr.G, gr.PadDiag())
}

// SparsifiedConductance assembles the preconditioner matrix from a
// sparsified wire network: L(P) + diag(pads).
func (gr *Grid) SparsifiedConductance(p *graph.Graph) *sparse.CSC {
	if p.N != gr.N {
		panic("pg: sparsifier vertex count mismatch")
	}
	return laplacianWithDiag(p, gr.PadDiag())
}

func laplacianWithDiag(g *graph.Graph, d []float64) *sparse.CSC {
	t := sparse.NewTriplet(g.N, g.N)
	for _, e := range g.Edges {
		t.Add(e.U, e.V, -e.W)
		t.Add(e.V, e.U, -e.W)
		t.Add(e.U, e.U, e.W)
		t.Add(e.V, e.V, e.W)
	}
	for i, v := range d {
		t.Add(i, i, v)
	}
	return t.ToCSC()
}

// RHS fills u(t): pad injections plus load currents (drawn for a VDD net,
// injected for a ground net).
func (gr *Grid) RHS(t float64, u []float64) {
	for i := range u {
		u[i] = 0
	}
	if !gr.Cfg.GroundNet {
		inj := gr.Cfg.PadG * gr.Cfg.VDD
		for _, p := range gr.PadNodes {
			u[p] = inj
		}
	}
	sign := -1.0
	if gr.Cfg.GroundNet {
		sign = 1.0
	}
	for _, s := range gr.Sources {
		u[s.Node] += sign * s.Wave.At(t)
	}
}

// Breakpoints returns the sorted, deduplicated union of all source corner
// times within (0, horizon], always ending with horizon itself.
func (gr *Grid) Breakpoints(horizon float64) []float64 {
	var bps []float64
	for _, s := range gr.Sources {
		bps = s.Wave.Breakpoints(horizon, bps)
	}
	sort.Float64s(bps)
	tol := gr.Cfg.TimeAlign / 2
	out := bps[:0]
	last := 0.0
	for _, t := range bps {
		if t <= tol || t-last <= tol {
			continue
		}
		out = append(out, t)
		last = t
	}
	if len(out) == 0 || horizon-out[len(out)-1] > tol {
		out = append(out, horizon)
	}
	return out
}

// MinBreakpointGap returns the smallest spacing of the breakpoint lattice —
// the step-size limit the paper cites for the fixed-step direct method.
func (gr *Grid) MinBreakpointGap(horizon float64) float64 {
	bps := gr.Breakpoints(horizon)
	if len(bps) < 2 {
		return horizon
	}
	minGap := bps[0]
	for i := 1; i < len(bps); i++ {
		if g := bps[i] - bps[i-1]; g < minGap {
			minGap = g
		}
	}
	if minGap < gr.Cfg.TimeAlign {
		minGap = gr.Cfg.TimeAlign
	}
	return minGap
}
