package pg

import (
	"fmt"
	"math"
	"time"

	"repro/internal/chol"
	"repro/internal/solver"
	"repro/internal/sparse"
)

// TransientOpts configures a transient run.
type TransientOpts struct {
	// Horizon is the simulated interval end (paper: 5 ns).
	Horizon float64
	// FixedStep is the direct engine's step (paper: 10 ps, the smallest
	// breakpoint distance); ≤0 derives it from the breakpoint lattice.
	FixedStep float64
	// MaxStep caps the iterative engine's varied step (paper: 200 ps).
	MaxStep float64
	// RTol is the PCG relative tolerance (paper: 1e-6).
	RTol float64
	// Probes lists nodes whose waveforms are recorded.
	Probes []int
}

func (o TransientOpts) withDefaults() TransientOpts {
	if o.Horizon == 0 {
		o.Horizon = 5e-9
	}
	if o.MaxStep == 0 {
		o.MaxStep = 200e-12
	}
	if o.RTol == 0 {
		o.RTol = 1e-6
	}
	return o
}

// Sample is one probed waveform point.
type Sample struct {
	T, V float64
}

// TransientResult reports a transient run.
type TransientResult struct {
	Steps     int
	TotalIter int     // PCG iterations summed over steps (0 for direct)
	AvgIter   float64 // the paper's N_a
	FactorNNZ int
	MemBytes  int64
	SimTime   time.Duration // the paper's T_tr (excludes grid synthesis)
	Final     []float64
	Probes    map[int][]Sample
}

func (r *TransientResult) recordProbes(t float64, x []float64, probes []int) {
	for _, p := range probes {
		r.Probes[p] = append(r.Probes[p], Sample{T: t, V: x[p]})
	}
}

// SimulateDirect runs fixed-step backward-Euler transient analysis with a
// direct sparse solver: one factorization of (G + C/h), then two triangular
// solves per step (the strategy of [19] the paper compares against).
func SimulateDirect(gr *Grid, opts TransientOpts) (*TransientResult, error) {
	o := opts.withDefaults()
	h := o.FixedStep
	if h <= 0 {
		h = gr.MinBreakpointGap(o.Horizon)
	}
	start := time.Now()

	a0 := gr.ConductanceMatrix()
	capOverH := make([]float64, gr.N)
	for i, c := range gr.Cap {
		capOverH[i] = c / h
	}
	ah := a0.AddDiag(capOverH)
	f, err := chol.New(ah, chol.Options{})
	if err != nil {
		return nil, fmt.Errorf("pg: factorizing transient matrix: %w", err)
	}
	// DC operating point: G x0 = u(0).
	fdc, err := chol.New(a0, chol.Options{})
	if err != nil {
		return nil, fmt.Errorf("pg: factorizing DC matrix: %w", err)
	}
	u := make([]float64, gr.N)
	gr.RHS(0, u)
	x := fdc.Solve(u)

	res := &TransientResult{
		FactorNNZ: f.NNZ(),
		MemBytes:  f.MemBytes() + fdc.MemBytes(),
		Final:     x,
		Probes:    map[int][]Sample{},
	}
	res.recordProbes(0, x, o.Probes)

	b := make([]float64, gr.N)
	y := make([]float64, gr.N)
	steps := int(math.Ceil(o.Horizon/h - 1e-9))
	for s := 1; s <= steps; s++ {
		t := float64(s) * h
		gr.RHS(t, u)
		for i := range b {
			b[i] = capOverH[i]*x[i] + u[i]
		}
		f.SolveToNoAlloc(x, b, y)
		res.Steps++
		res.recordProbes(t, x, o.Probes)
	}
	res.Final = x
	res.SimTime = time.Since(start)
	return res, nil
}

// SimulateDirectVaried runs the direct solver on the *varied-step*
// schedule the iterative engine uses, factorizing (G + C/h) anew for every
// distinct step size (factors are cached per h, which is already generous
// to the method). The paper asserts this regime is "extremely
// time-consuming due to the expensive matrix factorizations performed
// whenever the time step changes" without measuring it; this engine makes
// the claim testable.
func SimulateDirectVaried(gr *Grid, opts TransientOpts) (*TransientResult, error) {
	o := opts.withDefaults()
	start := time.Now()

	a0 := gr.ConductanceMatrix()
	fdc, err := chol.New(a0, chol.Options{})
	if err != nil {
		return nil, fmt.Errorf("pg: factorizing DC matrix: %w", err)
	}
	u := make([]float64, gr.N)
	gr.RHS(0, u)
	x := fdc.Solve(u)

	res := &TransientResult{
		FactorNNZ: fdc.NNZ(),
		MemBytes:  fdc.MemBytes(),
		Probes:    map[int][]Sample{},
	}
	res.recordProbes(0, x, o.Probes)

	factors := map[int64]*chol.Factor{}
	scaled := make([]float64, gr.N)
	factorFor := func(h float64) (*chol.Factor, error) {
		key := int64(math.Round(h * 1e15))
		if f, ok := factors[key]; ok {
			return f, nil
		}
		for i, c := range gr.Cap {
			scaled[i] = c / h
		}
		f, err := chol.New(a0.AddDiag(scaled), chol.Options{})
		if err != nil {
			return nil, err
		}
		factors[key] = f
		res.MemBytes += f.MemBytes()
		return f, nil
	}

	bps := gr.Breakpoints(o.Horizon)
	b := make([]float64, gr.N)
	y := make([]float64, gr.N)
	t := 0.0
	bi := 0
	for t < o.Horizon-1e-18 {
		next := t + o.MaxStep
		for bi < len(bps) && bps[bi] <= t+1e-18 {
			bi++
		}
		if bi < len(bps) && bps[bi] < next {
			next = bps[bi]
		}
		if next > o.Horizon {
			next = o.Horizon
		}
		h := next - t
		f, err := factorFor(h)
		if err != nil {
			return nil, fmt.Errorf("pg: refactorizing for h=%.3g: %w", h, err)
		}
		gr.RHS(next, u)
		for i := range b {
			b[i] = gr.Cap[i]/h*x[i] + u[i]
		}
		f.SolveToNoAlloc(x, b, y)
		res.Steps++
		t = next
		res.recordProbes(t, x, o.Probes)
	}
	res.Final = x
	res.SimTime = time.Since(start)
	return res, nil
}

// SimulateIterative runs varied-step backward-Euler transient analysis with
// PCG: steps advance to the next waveform breakpoint but never more than
// MaxStep, and every solve is preconditioned by the factor built once
// during DC analysis (typically of a sparsified conductance matrix).
//
// precond is the Cholesky factorization of the preconditioner matrix
// (e.g. chol.New of Grid.SparsifiedConductance(sparsifier)); pass a factor
// of the full conductance matrix to get an exact-preconditioner reference.
func SimulateIterative(gr *Grid, precond *chol.Factor, opts TransientOpts) (*TransientResult, error) {
	o := opts.withDefaults()
	if precond == nil {
		return nil, fmt.Errorf("pg: SimulateIterative requires a preconditioner factor")
	}
	start := time.Now()

	a0 := gr.ConductanceMatrix()
	pre := solver.NewCholPrecond(precond)

	// DC operating point via PCG with the same preconditioner.
	u := make([]float64, gr.N)
	gr.RHS(0, u)
	x := make([]float64, gr.N)
	dc := solver.PCG(a0, u, x, pre, solver.Options{Tol: o.RTol, MaxIter: 20000})
	if !dc.Converged {
		return nil, fmt.Errorf("pg: DC PCG failed to converge (res %.3g)", dc.RelRes)
	}

	res := &TransientResult{
		FactorNNZ: precond.NNZ(),
		MemBytes:  precond.MemBytes(),
		Probes:    map[int][]Sample{},
	}
	res.recordProbes(0, x, o.Probes)

	// Cache (G + C/h) per distinct step size; the breakpoint lattice keeps
	// the set of distinct h values small.
	ahCache := map[int64]*sparse.CSC{}
	scaled := make([]float64, gr.N)
	matFor := func(h float64) *sparse.CSC {
		key := int64(math.Round(h * 1e15)) // femtosecond resolution
		if m, ok := ahCache[key]; ok {
			return m
		}
		for i, c := range gr.Cap {
			scaled[i] = c / h
		}
		m := a0.AddDiag(scaled)
		ahCache[key] = m
		return m
	}

	bps := gr.Breakpoints(o.Horizon)
	b := make([]float64, gr.N)
	t := 0.0
	bi := 0
	for t < o.Horizon-1e-18 {
		next := t + o.MaxStep
		for bi < len(bps) && bps[bi] <= t+1e-18 {
			bi++
		}
		if bi < len(bps) && bps[bi] < next {
			next = bps[bi]
		}
		if next > o.Horizon {
			next = o.Horizon
		}
		h := next - t
		ah := matFor(h)
		gr.RHS(next, u)
		for i := range b {
			b[i] = gr.Cap[i]/h*x[i] + u[i]
		}
		// Warm start from the previous time point (x already holds it).
		r := solver.PCG(ah, b, x, pre, solver.Options{Tol: o.RTol, MaxIter: 20000})
		if !r.Converged {
			return nil, fmt.Errorf("pg: PCG failed at t=%.3gs (res %.3g)", next, r.RelRes)
		}
		res.Steps++
		res.TotalIter += r.Iterations
		t = next
		res.recordProbes(t, x, o.Probes)
	}
	if res.Steps > 0 {
		res.AvgIter = float64(res.TotalIter) / float64(res.Steps)
	}
	res.Final = x
	res.SimTime = time.Since(start)
	return res, nil
}

// WorstProbe returns the node with the largest DC IR drop (VDD net) or the
// largest ground bounce (ground net): the natural node to plot in Fig. 1.
func WorstProbe(gr *Grid, x []float64) int {
	worst := 0
	for i, v := range x {
		if gr.Cfg.GroundNet {
			if v > x[worst] {
				worst = i
			}
		} else if v < x[worst] {
			worst = i
		}
	}
	return worst
}

// MaxAbsDiff returns the maximum pointwise |a−b| between two waveforms
// sampled at identical times is NOT required: it compares by linear
// interpolation of b onto a's sample times (the direct and iterative
// engines use different step grids).
func MaxAbsDiff(a, b []Sample) float64 {
	var worst float64
	j := 0
	for _, s := range a {
		for j+1 < len(b) && b[j+1].T <= s.T {
			j++
		}
		var v float64
		if j+1 < len(b) && b[j+1].T > b[j].T {
			frac := (s.T - b[j].T) / (b[j+1].T - b[j].T)
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
			v = b[j].V + frac*(b[j+1].V-b[j].V)
		} else {
			v = b[j].V
		}
		if d := math.Abs(s.V - v); d > worst {
			worst = d
		}
	}
	return worst
}
