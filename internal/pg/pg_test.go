package pg

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/chol"
	"repro/internal/sparsify"
)

func smallGrid(t *testing.T, seed int64, ground bool) *Grid {
	t.Helper()
	gr, err := Synthesize(Config{NX: 20, NY: 20, Layers: 2, Seed: seed, GroundNet: ground})
	if err != nil {
		t.Fatal(err)
	}
	return gr
}

func TestPulseShape(t *testing.T) {
	p := Pulse{Delay: 1e-9, Rise: 0.1e-9, High: 0.5e-9, Fall: 0.1e-9, Period: 2e-9, I0: 3e-3}
	cases := []struct {
		t    float64
		want float64
	}{
		{0, 0},
		{0.9e-9, 0},
		{1e-9, 0},
		{1.05e-9, 1.5e-3}, // mid-rise
		{1.1e-9, 3e-3},    // top
		{1.4e-9, 3e-3},
		{1.65e-9, 1.5e-3}, // mid-fall
		{1.8e-9, 0},
		{3.1e-9, 3e-3}, // second period top
	}
	for _, c := range cases {
		if got := p.At(c.t); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("At(%g) = %g, want %g", c.t, got, c.want)
		}
	}
}

func TestPulseBreakpoints(t *testing.T) {
	p := Pulse{Delay: 0.5e-9, Rise: 0.1e-9, High: 0.2e-9, Fall: 0.1e-9, Period: 1e-9, I0: 1e-3}
	bps := p.Breakpoints(1.6e-9, nil)
	want := []float64{0.5e-9, 0.6e-9, 0.8e-9, 0.9e-9, 1.5e-9, 1.6e-9}
	if len(bps) != len(want) {
		t.Fatalf("breakpoints %v, want %v", bps, want)
	}
	for i := range want {
		if math.Abs(bps[i]-want[i]) > 1e-15 {
			t.Errorf("bp[%d] = %g, want %g", i, bps[i], want[i])
		}
	}
}

func TestSynthesizeStructure(t *testing.T) {
	gr := smallGrid(t, 1, false)
	if !gr.G.Connected() {
		t.Fatal("grid disconnected")
	}
	if len(gr.PadNodes) == 0 {
		t.Fatal("no pads")
	}
	if len(gr.Sources) == 0 {
		t.Fatal("no sources")
	}
	for _, c := range gr.Cap {
		if c < 1e-12-1e-18 || c > 10e-12+1e-18 {
			t.Fatalf("capacitance %g outside 1–10 pF", c)
		}
	}
	// Sources sit on the bottom layer.
	for _, s := range gr.Sources {
		if s.Node >= 20*20 {
			t.Fatalf("source node %d above bottom layer", s.Node)
		}
	}
	// Pads sit on the top layer.
	for _, p := range gr.PadNodes {
		if p < 20*20 {
			t.Fatalf("pad node %d on bottom layer", p)
		}
	}
}

func TestBreakpointsAligned(t *testing.T) {
	gr := smallGrid(t, 2, false)
	align := gr.Cfg.TimeAlign
	for _, bp := range gr.Breakpoints(5e-9) {
		ratio := bp / align
		if math.Abs(ratio-math.Round(ratio)) > 1e-6 {
			t.Fatalf("breakpoint %g not aligned to %g", bp, align)
		}
	}
	if gap := gr.MinBreakpointGap(5e-9); gap < align-1e-18 {
		t.Errorf("min gap %g below alignment %g", gap, align)
	}
}

func TestDCOperatingPointNearVDD(t *testing.T) {
	gr := smallGrid(t, 3, false)
	a := gr.ConductanceMatrix()
	f, err := chol.New(a, chol.Options{})
	if err != nil {
		t.Fatal(err)
	}
	u := make([]float64, gr.N)
	gr.RHS(0, u)
	x := f.Solve(u)
	for i, v := range x {
		if v > gr.Cfg.VDD+1e-9 {
			t.Fatalf("node %d above VDD: %g", i, v)
		}
		if v < 0.5*gr.Cfg.VDD {
			t.Fatalf("node %d implausibly low at DC: %g", i, v)
		}
	}
}

func TestDirectTransientRuns(t *testing.T) {
	gr := smallGrid(t, 4, false)
	probe := 5
	res, err := SimulateDirect(gr, TransientOpts{Horizon: 1e-9, FixedStep: 50e-12, Probes: []int{probe}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 20 {
		t.Errorf("steps = %d, want 20", res.Steps)
	}
	if len(res.Probes[probe]) != 21 {
		t.Errorf("probe samples = %d, want 21", len(res.Probes[probe]))
	}
	for _, s := range res.Probes[probe] {
		if s.V > gr.Cfg.VDD+1e-9 || s.V < 0 {
			t.Fatalf("implausible probe voltage %g", s.V)
		}
	}
}

func TestIterativeMatchesDirect(t *testing.T) {
	// The paper's Fig. 1 claim: direct and iterative waveforms agree to
	// within 16 mV. At our scale, with rtol 1e-6 and the same backward
	// Euler grid-capped steps, they should agree to a few mV.
	gr := smallGrid(t, 5, false)
	probe := WorstProbeDC(t, gr)
	direct, err := SimulateDirect(gr, TransientOpts{Horizon: 2e-9, FixedStep: 10e-12, Probes: []int{probe}})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := sparsify.Sparsify(gr.G, sparsify.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	pm := gr.SparsifiedConductance(sp.Sparsifier)
	pf, err := chol.New(pm, chol.Options{})
	if err != nil {
		t.Fatal(err)
	}
	iter, err := SimulateIterative(gr, pf, TransientOpts{Horizon: 2e-9, Probes: []int{probe}})
	if err != nil {
		t.Fatal(err)
	}
	if d := MaxAbsDiff(iter.Probes[probe], direct.Probes[probe]); d > 0.016 {
		t.Errorf("waveform deviation %g V exceeds 16 mV", d)
	}
	if iter.AvgIter <= 0 {
		t.Error("no PCG iterations recorded")
	}
	if iter.Steps >= direct.Steps {
		t.Errorf("varied-step engine took %d steps, direct %d — varied should be far fewer", iter.Steps, direct.Steps)
	}
}

// WorstProbeDC computes the DC worst node for tests.
func WorstProbeDC(t *testing.T, gr *Grid) int {
	t.Helper()
	f, err := chol.New(gr.ConductanceMatrix(), chol.Options{})
	if err != nil {
		t.Fatal(err)
	}
	u := make([]float64, gr.N)
	gr.RHS(0, u)
	return WorstProbe(gr, f.Solve(u))
}

func TestDirectVariedPaysForRefactorization(t *testing.T) {
	// The paper's §4.2 claim: with varied steps, the direct solver spends
	// its time refactorizing, so the iterative solver wins that regime by
	// a wide margin. Compare on identical step schedules.
	gr := smallGrid(t, 21, false)
	dv, err := SimulateDirectVaried(gr, TransientOpts{Horizon: 3e-9})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := sparsify.Sparsify(gr.G, sparsify.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	pf, err := chol.New(gr.SparsifiedConductance(sp.Sparsifier), chol.Options{})
	if err != nil {
		t.Fatal(err)
	}
	it, err := SimulateIterative(gr, pf, TransientOpts{Horizon: 3e-9})
	if err != nil {
		t.Fatal(err)
	}
	if dv.Steps != it.Steps {
		t.Fatalf("step schedules differ: direct-varied %d, iterative %d", dv.Steps, it.Steps)
	}
	// Same answer…
	var maxd float64
	for i := range dv.Final {
		if d := math.Abs(dv.Final[i] - it.Final[i]); d > maxd {
			maxd = d
		}
	}
	if maxd > 0.016 {
		t.Errorf("final states differ by %g V", maxd)
	}
	// …but the refactorizing direct engine must carry far more factor
	// memory (one factor per distinct h) than the single-preconditioner
	// iterative engine.
	if dv.MemBytes < 3*it.MemBytes {
		t.Errorf("direct-varied memory %d not clearly above iterative %d", dv.MemBytes, it.MemBytes)
	}
	t.Logf("direct-varied: %v (%d factors worth %s); iterative: %v",
		dv.SimTime, dv.Steps, fmtB(dv.MemBytes), it.SimTime)
}

func fmtB(b int64) string { return fmt.Sprintf("%.1fMB", float64(b)/(1<<20)) }

func TestGroundNetBounce(t *testing.T) {
	gr := smallGrid(t, 6, true)
	res, err := SimulateDirect(gr, TransientOpts{Horizon: 2e-9, FixedStep: 20e-12})
	if err != nil {
		t.Fatal(err)
	}
	// Ground net: all node voltages must hover near 0, bouncing upward.
	for i, v := range res.Final {
		if v < -0.01 || v > 0.5 {
			t.Fatalf("ground node %d at %g V", i, v)
		}
	}
}

func TestSparsifiedPreconditionerFewerNNZ(t *testing.T) {
	gr := smallGrid(t, 7, false)
	full, err := chol.New(gr.ConductanceMatrix(), chol.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := sparsify.Sparsify(gr.G, sparsify.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	pf, err := chol.New(gr.SparsifiedConductance(sp.Sparsifier), chol.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if pf.NNZ() >= full.NNZ() {
		t.Errorf("sparsifier factor nnz %d not below full %d", pf.NNZ(), full.NNZ())
	}
}

func TestEnergyDissipation(t *testing.T) {
	// With zero sources the DC solution is exactly VDD everywhere and the
	// transient must stay there (stability of backward Euler).
	gr, err := Synthesize(Config{NX: 10, NY: 10, Layers: 2, Seed: 8, SourceFrac: -1})
	if err != nil {
		t.Fatal(err)
	}
	gr.Sources = nil
	res, err := SimulateDirect(gr, TransientOpts{Horizon: 1e-9, FixedStep: 100e-12})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res.Final {
		if math.Abs(v-gr.Cfg.VDD) > 1e-9 {
			t.Fatalf("node %d drifted to %g without loads", i, v)
		}
	}
}

func TestMaxAbsDiffInterpolation(t *testing.T) {
	a := []Sample{{0, 0}, {1, 1}, {2, 0}}
	b := []Sample{{0, 0}, {2, 2}} // linear 0→2
	// At t=1 b interpolates to 1 (matches), at t=2 b=2 vs a=0 → diff 2.
	if d := MaxAbsDiff(a, b); math.Abs(d-2) > 1e-12 {
		t.Errorf("MaxAbsDiff = %g, want 2", d)
	}
}
