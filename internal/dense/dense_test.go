package dense

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randSPD(n int, rng *rand.Rand) *Matrix {
	// A = Bᵀ B + n·I is SPD.
	b := New(n, n)
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	a := b.Transpose().Mul(b)
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+float64(n))
	}
	return a
}

func maxAbsDiff(a, b *Matrix) float64 {
	var m float64
	for i := range a.Data {
		if d := math.Abs(a.Data[i] - b.Data[i]); d > m {
			m = d
		}
	}
	return m
}

func TestCholeskyReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(8)
		a := randSPD(n, rng)
		l, err := Cholesky(a)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if d := maxAbsDiff(l.Mul(l.Transpose()), a); d > 1e-9 {
			t.Errorf("trial %d: ‖LLᵀ − A‖∞ = %g", trial, d)
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, −1
	if _, err := Cholesky(a); err == nil {
		t.Fatal("expected ErrNotPD for indefinite matrix")
	}
}

func TestSolveSPD(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randSPD(6, rng)
	want := make([]float64, 6)
	for i := range want {
		want[i] = rng.NormFloat64()
	}
	b := a.MulVec(want)
	got, err := SolveSPD(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-8 {
			t.Errorf("x[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestInvSPD(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randSPD(5, rng)
	inv, err := InvSPD(a)
	if err != nil {
		t.Fatal(err)
	}
	prod := a.Mul(inv)
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(prod.At(i, j)-want) > 1e-8 {
				t.Fatalf("A·A⁻¹ not identity at (%d,%d): %g", i, j, prod.At(i, j))
			}
		}
	}
}

func TestJacobiEigDiagonal(t *testing.T) {
	a := FromRows([][]float64{{3, 0, 0}, {0, -1, 0}, {0, 0, 2}})
	w, _, err := JacobiEig(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{-1, 2, 3}
	for i := range want {
		if math.Abs(w[i]-want[i]) > 1e-12 {
			t.Errorf("w[%d] = %g, want %g", i, w[i], want[i])
		}
	}
}

func TestJacobiEigKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 1 and 3.
	w, v, err := JacobiEig(FromRows([][]float64{{2, 1}, {1, 2}}))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w[0]-1) > 1e-12 || math.Abs(w[1]-3) > 1e-12 {
		t.Fatalf("eigenvalues %v, want [1 3]", w)
	}
	// Check A v = w v for the top eigenpair.
	a := FromRows([][]float64{{2, 1}, {1, 2}})
	x := []float64{v.At(0, 1), v.At(1, 1)}
	ax := a.MulVec(x)
	for i := range x {
		if math.Abs(ax[i]-3*x[i]) > 1e-10 {
			t.Errorf("A v ≠ 3 v at %d", i)
		}
	}
}

func TestJacobiEigOrthogonalEigenvectors(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randSPD(7, rng)
	w, v, err := JacobiEig(a)
	if err != nil {
		t.Fatal(err)
	}
	// VᵀV = I.
	vtv := v.Transpose().Mul(v)
	for i := 0; i < 7; i++ {
		for j := 0; j < 7; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(vtv.At(i, j)-want) > 1e-8 {
				t.Fatalf("VᵀV not identity at (%d,%d)", i, j)
			}
		}
	}
	// Trace equals eigenvalue sum.
	var ws float64
	for _, x := range w {
		ws += x
	}
	if math.Abs(ws-a.Trace()) > 1e-8 {
		t.Errorf("Σλ = %g, trace = %g", ws, a.Trace())
	}
}

func TestTraceProductAgainstDefinition(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := randSPD(5, rng)
	g := randSPD(5, rng)
	got, err := TraceProduct(s, g)
	if err != nil {
		t.Fatal(err)
	}
	inv, _ := InvSPD(s)
	want := inv.Mul(g).Trace()
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("TraceProduct = %g, want %g", got, want)
	}
}

func TestGenEigMaxSameMatrixIsOne(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := randSPD(6, rng)
	lam, err := GenEigMax(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lam-1) > 1e-8 {
		t.Errorf("λmax(A,A) = %g, want 1", lam)
	}
}

func TestGenEigAllBoundsTrace(t *testing.T) {
	// Paper eq. (5): λmax(S⁻¹G) ≤ Tr(S⁻¹G) for SPD pencils with
	// nonnegative eigenvalues.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		n := 3 + rng.Intn(5)
		s := randSPD(n, rng)
		g := randSPD(n, rng)
		w, err := GenEigAll(g, s)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := TraceProduct(s, g)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, x := range w {
			if x < 0 {
				t.Fatalf("negative generalized eigenvalue %g for SPD pencil", x)
			}
			sum += x
		}
		if math.Abs(sum-tr) > 1e-6*(1+math.Abs(tr)) {
			t.Errorf("Σλ = %g, Tr(S⁻¹G) = %g", sum, tr)
		}
		if w[n-1] > tr+1e-9 {
			t.Errorf("λmax = %g exceeds trace %g", w[n-1], tr)
		}
	}
}

func TestSolveLowerUpper(t *testing.T) {
	l := FromRows([][]float64{{2, 0}, {1, 3}})
	y := SolveLower(l, []float64{4, 7})
	if math.Abs(y[0]-2) > 1e-15 || math.Abs(y[1]-5.0/3) > 1e-15 {
		t.Errorf("SolveLower = %v", y)
	}
	x := SolveUpperT(l, []float64{2, 3})
	// Lᵀ x = [2,3]: 2x0 + x1 = 2; 3x1 = 3 → x1 = 1, x0 = 0.5.
	if math.Abs(x[1]-1) > 1e-15 || math.Abs(x[0]-0.5) > 1e-15 {
		t.Errorf("SolveUpperT = %v", x)
	}
}

func TestQuickCholeskySolveInverts(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		a := randSPD(n, rng)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		b := a.MulVec(x)
		got, err := SolveSPD(a, b)
		if err != nil {
			return false
		}
		for i := range x {
			if math.Abs(got[i]-x[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
