// Package dense provides small dense linear-algebra reference kernels used
// by tests and by the experiment harness on small cases: Cholesky
// factorization, triangular solves, inversion, a cyclic Jacobi symmetric
// eigensolver, and exact trace / relative-condition-number computations for
// Laplacian pencils. Nothing here is tuned for speed; it exists to verify
// the sparse production code.
package dense

import (
	"errors"
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols, row-major
}

// New returns a zeroed Rows×Cols matrix.
func New(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices (copied).
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return New(0, 0)
	}
	m := New(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic("dense: ragged rows")
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	return &Matrix{Rows: m.Rows, Cols: m.Cols, Data: append([]float64(nil), m.Data...)}
}

// Mul returns m × b.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("dense: Mul shape mismatch %dx%d × %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	c := New(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < b.Cols; j++ {
				c.Data[i*c.Cols+j] += a * b.At(k, j)
			}
		}
	}
	return c
}

// MulVec returns m × x.
func (m *Matrix) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic("dense: MulVec shape mismatch")
	}
	y := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		var s float64
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}

// Transpose returns mᵀ.
func (m *Matrix) Transpose() *Matrix {
	t := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Trace returns the sum of diagonal entries of a square matrix.
func (m *Matrix) Trace() float64 {
	if m.Rows != m.Cols {
		panic("dense: Trace of non-square matrix")
	}
	var s float64
	for i := 0; i < m.Rows; i++ {
		s += m.At(i, i)
	}
	return s
}

// ErrNotPD is returned by Cholesky when the matrix is not positive definite.
var ErrNotPD = errors.New("dense: matrix is not positive definite")

// Cholesky computes the lower-triangular L with A = L Lᵀ. A must be
// symmetric positive definite; only the lower triangle of A is referenced.
func Cholesky(a *Matrix) (*Matrix, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("dense: Cholesky of non-square %dx%d matrix", a.Rows, a.Cols)
	}
	n := a.Rows
	l := New(n, n)
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		for k := 0; k < j; k++ {
			ljk := l.At(j, k)
			d -= ljk * ljk
		}
		if d <= 0 {
			return nil, ErrNotPD
		}
		d = math.Sqrt(d)
		l.Set(j, j, d)
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, s/d)
		}
	}
	return l, nil
}

// SolveLower solves L y = b for lower-triangular L.
func SolveLower(l *Matrix, b []float64) []float64 {
	n := l.Rows
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for j := 0; j < i; j++ {
			s -= l.At(i, j) * y[j]
		}
		y[i] = s / l.At(i, i)
	}
	return y
}

// SolveUpperT solves Lᵀ x = y given lower-triangular L.
func SolveUpperT(l *Matrix, y []float64) []float64 {
	n := l.Rows
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < n; j++ {
			s -= l.At(j, i) * x[j]
		}
		x[i] = s / l.At(i, i)
	}
	return x
}

// SolveSPD solves A x = b for symmetric positive definite A via Cholesky.
func SolveSPD(a *Matrix, b []float64) ([]float64, error) {
	l, err := Cholesky(a)
	if err != nil {
		return nil, err
	}
	return SolveUpperT(l, SolveLower(l, b)), nil
}

// InvSPD returns A⁻¹ for symmetric positive definite A.
func InvSPD(a *Matrix) (*Matrix, error) {
	l, err := Cholesky(a)
	if err != nil {
		return nil, err
	}
	n := a.Rows
	inv := New(n, n)
	e := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		x := SolveUpperT(l, SolveLower(l, e))
		for i := 0; i < n; i++ {
			inv.Set(i, j, x[i])
		}
	}
	return inv, nil
}

// JacobiEig computes all eigenvalues (ascending) and eigenvectors of a
// symmetric matrix by the cyclic Jacobi rotation method. The returned
// eigenvector matrix V has eigenvectors as columns: A V = V diag(w).
func JacobiEig(a *Matrix) (w []float64, v *Matrix, err error) {
	if a.Rows != a.Cols {
		return nil, nil, fmt.Errorf("dense: JacobiEig of non-square matrix")
	}
	n := a.Rows
	m := a.Clone()
	v = New(n, n)
	for i := 0; i < n; i++ {
		v.Set(i, i, 1)
	}
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += m.At(i, j) * m.At(i, j)
			}
		}
		if off < 1e-24*float64(n*n) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := m.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app, aqq := m.At(p, p), m.At(q, q)
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				for k := 0; k < n; k++ {
					akp, akq := m.At(k, p), m.At(k, q)
					m.Set(k, p, c*akp-s*akq)
					m.Set(k, q, s*akp+c*akq)
				}
				for k := 0; k < n; k++ {
					apk, aqk := m.At(p, k), m.At(q, k)
					m.Set(p, k, c*apk-s*aqk)
					m.Set(q, k, s*apk+c*aqk)
				}
				for k := 0; k < n; k++ {
					vkp, vkq := v.At(k, p), v.At(k, q)
					v.Set(k, p, c*vkp-s*vkq)
					v.Set(k, q, s*vkp+c*vkq)
				}
			}
		}
	}
	w = make([]float64, n)
	for i := 0; i < n; i++ {
		w[i] = m.At(i, i)
	}
	// Sort ascending, permuting eigenvector columns to match.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 1; i < n; i++ { // insertion sort keeps it simple and stable
		for j := i; j > 0 && w[idx[j]] < w[idx[j-1]]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	ws := make([]float64, n)
	vs := New(n, n)
	for k, id := range idx {
		ws[k] = w[id]
		for i := 0; i < n; i++ {
			vs.Set(i, k, v.At(i, id))
		}
	}
	return ws, vs, nil
}

// TraceProduct returns Tr(S⁻¹ G) exactly, for SPD S.
func TraceProduct(s, g *Matrix) (float64, error) {
	inv, err := InvSPD(s)
	if err != nil {
		return 0, err
	}
	return inv.Mul(g).Trace(), nil
}

// GenEigMax returns the largest generalized eigenvalue λmax of the pencil
// G x = λ S x with SPD S, computed exactly via S = LLᵀ and the symmetric
// standard problem L⁻¹ G L⁻ᵀ.
func GenEigMax(g, s *Matrix) (float64, error) {
	w, err := GenEigAll(g, s)
	if err != nil {
		return 0, err
	}
	return w[len(w)-1], nil
}

// GenEigAll returns all generalized eigenvalues (ascending) of G x = λ S x.
func GenEigAll(g, s *Matrix) ([]float64, error) {
	l, err := Cholesky(s)
	if err != nil {
		return nil, err
	}
	n := g.Rows
	// B = L⁻¹ G L⁻ᵀ: solve column by column.
	b := New(n, n)
	col := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			col[i] = 0
		}
		col[j] = 1
		ej := SolveUpperT(l, col) // L⁻ᵀ e_j
		gc := g.MulVec(ej)
		x := SolveLower(l, gc)
		for i := 0; i < n; i++ {
			b.Set(i, j, x[i])
		}
	}
	// Symmetrize against round-off before Jacobi.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			m := 0.5 * (b.At(i, j) + b.At(j, i))
			b.Set(i, j, m)
			b.Set(j, i, m)
		}
	}
	w, _, err := JacobiEig(b)
	return w, err
}
