package gen

import (
	"sort"
	"testing"
)

func TestBarabasiAlbertStructure(t *testing.T) {
	g := BarabasiAlbert(500, 3, 1)
	if g.N != 500 {
		t.Fatalf("N = %d", g.N)
	}
	if !g.Connected() {
		t.Fatal("BA graph disconnected")
	}
	// Preferential attachment must produce a heavy tail: the max degree
	// should far exceed the median.
	degs := make([]int, g.N)
	for v := 0; v < g.N; v++ {
		degs[v] = g.Degree(v)
	}
	sort.Ints(degs)
	median := degs[g.N/2]
	max := degs[g.N-1]
	if max < 4*median {
		t.Errorf("degree tail too light: max %d, median %d", max, median)
	}
}

func TestWattsStrogatzStructure(t *testing.T) {
	g := WattsStrogatz(400, 6, 0.1, 2)
	if !g.Connected() {
		t.Fatal("WS graph disconnected")
	}
	avg := 2 * float64(g.M()) / float64(g.N)
	// Ring (1) + k/2 lattice edges per vertex → average degree ≈ 2 + k.
	if avg < 5 || avg > 10 {
		t.Errorf("average degree %g outside small-world range", avg)
	}
}

func TestWattsStrogatzNoRewire(t *testing.T) {
	// p = 0: a pure lattice; every edge spans at most k/2 ring positions.
	n, k := 100, 4
	g := WattsStrogatz(n, k, 0, 3)
	for _, e := range g.Edges {
		d := e.U - e.V
		if d < 0 {
			d = -d
		}
		if d > n-d {
			d = n - d // ring distance
		}
		if d > k/2 {
			t.Fatalf("edge (%d,%d) spans %d > k/2 without rewiring", e.U, e.V, d)
		}
	}
}
