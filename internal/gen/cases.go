package gen

import (
	"fmt"
	"math"

	"repro/internal/graph"
)

// Case describes one named benchmark graph mirroring a Table-1/Table-3 case
// from the paper, with the paper's original size recorded for the
// EXPERIMENTS.md comparison and a scaled default size that keeps the whole
// suite runnable in minutes.
type Case struct {
	Name   string
	Kind   string  // "grid", "tri", "circuit"
	PaperV float64 // |V| in the paper
	PaperE float64 // |E| in the paper
	// Build generates the graph at the given scale: scale 1 reproduces the
	// default (downsized) vertex count; larger scales approach paper size.
	Build func(scale float64, seed int64) *graph.Graph
}

// defaultShrink divides the paper's |V| to obtain the default size.
const defaultShrink = 70.0

func gridCase(name string, paperV, paperE float64) Case {
	return Case{
		Name: name, Kind: "grid", PaperV: paperV, PaperE: paperE,
		Build: func(scale float64, seed int64) *graph.Graph {
			side := sideFor(paperV, scale)
			return Grid2D(side, side, seed)
		},
	}
}

func triCase(name string, paperV, paperE float64) Case {
	return Case{
		Name: name, Kind: "tri", PaperV: paperV, PaperE: paperE,
		Build: func(scale float64, seed int64) *graph.Graph {
			side := sideFor(paperV, scale)
			return Tri2D(side, side, seed)
		},
	}
}

func circuitCase(name string, paperV, paperE float64) Case {
	return Case{
		Name: name, Kind: "circuit", PaperV: paperV, PaperE: paperE,
		Build: func(scale float64, seed int64) *graph.Graph {
			side := sideFor(paperV, scale)
			return CircuitGrid(side, side, 0.08, seed)
		},
	}
}

func sideFor(paperV, scale float64) int {
	if scale <= 0 {
		scale = 1
	}
	n := paperV / defaultShrink * scale
	side := int(math.Round(math.Sqrt(n)))
	if side < 8 {
		side = 8
	}
	return side
}

// Table1Cases mirrors the ten graphs of Table 1, in paper order.
func Table1Cases() []Case {
	return []Case{
		gridCase("ecology2", 1.0e6, 2.0e6),
		triCase("thermal2", 1.2e6, 3.7e6),
		triCase("parabolic", 0.5e6, 1.6e6),
		triCase("tmt_sym", 0.7e6, 2.2e6),
		circuitCase("G3_circuit", 1.6e6, 3.0e6),
		triCase("NACA0015", 1.0e6, 3.1e6),
		triCase("M6", 3.5e6, 1.1e7),
		triCase("333SP", 3.7e6, 1.1e7),
		triCase("AS365", 3.8e6, 1.1e7),
		triCase("NLR", 4.2e6, 1.2e7),
	}
}

// Table3Cases mirrors the five graphs of Table 3 (a subset of Table 1).
func Table3Cases() []Case {
	all := Table1Cases()
	return all[:5]
}

// ByName returns the named case from Table 1.
func ByName(name string) (Case, error) {
	for _, c := range Table1Cases() {
		if c.Name == name {
			return c, nil
		}
	}
	return Case{}, fmt.Errorf("gen: unknown case %q", name)
}
