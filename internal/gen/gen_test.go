package gen

import (
	"math"
	"testing"
)

func TestGrid2DStructure(t *testing.T) {
	g := Grid2D(5, 7, 1)
	if g.N != 35 {
		t.Fatalf("N = %d, want 35", g.N)
	}
	// 5-point grid edge count: (nx−1)·ny + nx·(ny−1).
	want := 4*7 + 5*6
	if g.M() != want {
		t.Errorf("M = %d, want %d", g.M(), want)
	}
	if !g.Connected() {
		t.Error("grid disconnected")
	}
}

func TestTri2DEdgeRatio(t *testing.T) {
	g := Tri2D(40, 40, 2)
	ratio := float64(g.M()) / float64(g.N)
	// FE triangulations have |E|/|V| ≈ 3 (the paper's mesh cases).
	if ratio < 2.5 || ratio > 3.1 {
		t.Errorf("|E|/|V| = %g, want ≈3", ratio)
	}
	if !g.Connected() {
		t.Error("mesh disconnected")
	}
}

func TestGrid3D(t *testing.T) {
	g := Grid3D(4, 5, 6, 3)
	if g.N != 120 {
		t.Fatalf("N = %d", g.N)
	}
	if !g.Connected() {
		t.Error("3D grid disconnected")
	}
	want := 3*5*6 + 4*4*6 + 4*5*5
	if g.M() != want {
		t.Errorf("M = %d, want %d", g.M(), want)
	}
}

func TestCircuitGridDegree(t *testing.T) {
	g := CircuitGrid(50, 50, 0.08, 4)
	if !g.Connected() {
		t.Fatal("circuit grid disconnected")
	}
	avg := 2 * float64(g.M()) / float64(g.N)
	// Between a grid (≈4) and slightly above with shortcuts.
	if avg < 3.5 || avg > 4.5 {
		t.Errorf("average degree %g outside circuit-like range", avg)
	}
}

func TestRandomGeometricConnected(t *testing.T) {
	g := RandomGeometric(500, 0.08, 5)
	if !g.Connected() {
		t.Error("RGG with fallback path disconnected")
	}
	if g.N != 500 {
		t.Errorf("N = %d", g.N)
	}
}

func TestPathAndComplete(t *testing.T) {
	p := Path(10)
	if p.M() != 9 || !p.Connected() {
		t.Error("path malformed")
	}
	k := Complete(6)
	if k.M() != 15 {
		t.Errorf("K6 has %d edges", k.M())
	}
}

func TestRandomConnected(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g := RandomConnected(30, 20, seed)
		if !g.Connected() {
			t.Fatalf("seed %d: disconnected", seed)
		}
		for _, e := range g.Edges {
			if e.W <= 0 {
				t.Fatalf("nonpositive weight")
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := Tri2D(20, 20, 42)
	b := Tri2D(20, 20, 42)
	if a.M() != b.M() {
		t.Fatal("same seed, different edge counts")
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatal("same seed, different edges")
		}
	}
	c := Tri2D(20, 20, 43)
	same := a.M() == c.M()
	if same {
		for i := range a.Edges {
			if a.Edges[i] != c.Edges[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical graphs")
	}
}

func TestTable1CasesRegistry(t *testing.T) {
	cases := Table1Cases()
	if len(cases) != 10 {
		t.Fatalf("%d cases, want 10", len(cases))
	}
	names := map[string]bool{}
	for _, c := range cases {
		if names[c.Name] {
			t.Errorf("duplicate case %s", c.Name)
		}
		names[c.Name] = true
		g := c.Build(0.3, 1) // small scale for the test
		if !g.Connected() {
			t.Errorf("%s: disconnected", c.Name)
		}
		// Scaled size should track paper size proportionally.
		wantN := c.PaperV / defaultShrink * 0.3
		if math.Abs(float64(g.N)-wantN) > 0.3*wantN {
			t.Errorf("%s: n=%d, want ≈%g", c.Name, g.N, wantN)
		}
	}
	if !names["ecology2"] || !names["NLR"] {
		t.Error("expected paper case names")
	}
}

func TestTable3CasesSubset(t *testing.T) {
	t3 := Table3Cases()
	if len(t3) != 5 {
		t.Fatalf("%d cases, want 5", len(t3))
	}
	if t3[0].Name != "ecology2" || t3[4].Name != "G3_circuit" {
		t.Error("Table 3 should be the first five Table 1 cases")
	}
}

func TestByName(t *testing.T) {
	c, err := ByName("tmt_sym")
	if err != nil || c.Name != "tmt_sym" {
		t.Errorf("ByName failed: %v", err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown case accepted")
	}
}

func TestScaleGrowsGraphs(t *testing.T) {
	c, err := ByName("ecology2")
	if err != nil {
		t.Fatal(err)
	}
	small := c.Build(0.5, 1)
	big := c.Build(2, 1)
	if big.N <= small.N {
		t.Errorf("scale 2 (%d) not larger than scale 0.5 (%d)", big.N, small.N)
	}
}
