package gen

import (
	"math/rand"

	"repro/internal/graph"
)

// BarabasiAlbert generates a scale-free graph by preferential attachment:
// each new vertex attaches m edges to existing vertices with probability
// proportional to their degree. The paper claims validation on "various
// kinds of graphs"; heavy-tailed degree distributions stress the
// sparsifier differently from meshes (hubs make spanning trees star-like).
func BarabasiAlbert(n, m int, seed int64) *graph.Graph {
	if m < 1 {
		m = 1
	}
	rng := rand.New(rand.NewSource(seed))
	var edges []graph.Edge
	// Repeated-endpoint list: sampling uniformly from it is sampling
	// proportional to degree.
	targets := make([]int, 0, 2*n*m)
	// Seed clique of m+1 vertices.
	for i := 0; i <= m && i < n; i++ {
		for j := 0; j < i; j++ {
			edges = append(edges, graph.Edge{U: j, V: i, W: 0.5 + rng.Float64()})
			targets = append(targets, i, j)
		}
	}
	for v := m + 1; v < n; v++ {
		chosen := map[int]bool{}
		for len(chosen) < m {
			u := targets[rng.Intn(len(targets))]
			if u != v {
				chosen[u] = true
			}
		}
		for u := range chosen {
			edges = append(edges, graph.Edge{U: u, V: v, W: 0.5 + rng.Float64()})
			targets = append(targets, u, v)
		}
	}
	return graph.MustNew(n, edges)
}

// WattsStrogatz generates a small-world graph: a ring lattice where each
// vertex connects to its k nearest neighbors, with each edge rewired to a
// random endpoint with probability p. Long-range rewired edges are exactly
// the spectrally critical edges sparsifiers must find.
func WattsStrogatz(n, k int, p float64, seed int64) *graph.Graph {
	if k < 2 {
		k = 2
	}
	rng := rand.New(rand.NewSource(seed))
	var edges []graph.Edge
	for v := 0; v < n; v++ {
		for d := 1; d <= k/2; d++ {
			u := (v + d) % n
			if rng.Float64() < p {
				// Rewire to a uniform random endpoint (avoid self loops).
				for tries := 0; tries < 8; tries++ {
					cand := rng.Intn(n)
					if cand != v {
						u = cand
						break
					}
				}
			}
			if u != v {
				edges = append(edges, graph.Edge{U: v, V: u, W: 0.5 + rng.Float64()})
			}
		}
	}
	// The base ring keeps the graph connected even under heavy rewiring.
	for v := 0; v < n; v++ {
		edges = append(edges, graph.Edge{U: v, V: (v + 1) % n, W: 0.25})
	}
	return graph.MustNew(n, edges)
}
