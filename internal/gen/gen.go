// Package gen synthesizes the benchmark graphs the evaluation runs on.
// The paper uses SuiteSparse matrices (ecology2, thermal2, …, NLR); those
// originals are not redistributable here, so each case is replaced by a
// synthetic generator of the same topology class and |E|/|V| ratio
// (DESIGN.md §4.1): 5-point grids for grid-like cases, structured
// triangulations with jittered weights for the FE meshes, and a
// grid-with-shortcuts model for the circuit case. Matrix Market input is
// supported separately (internal/sparse) for running on the real matrices.
package gen

import (
	"math"
	"math/rand"

	"repro/internal/graph"
)

// jitter returns a multiplicative weight jitter exp(U(−a, a)); FE matrices
// have smoothly varying coefficients, which this mimics.
func jitter(rng *rand.Rand, a float64) float64 {
	return math.Exp((2*rng.Float64() - 1) * a)
}

// Grid2D builds an nx×ny 5-point grid with weights jittered around 1.
func Grid2D(nx, ny int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	id := func(x, y int) int { return y*nx + x }
	edges := make([]graph.Edge, 0, 2*nx*ny)
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			if x+1 < nx {
				edges = append(edges, graph.Edge{U: id(x, y), V: id(x+1, y), W: jitter(rng, 0.5)})
			}
			if y+1 < ny {
				edges = append(edges, graph.Edge{U: id(x, y), V: id(x, y+1), W: jitter(rng, 0.5)})
			}
		}
	}
	return graph.MustNew(nx*ny, edges)
}

// Tri2D builds a structured triangulation: an nx×ny grid with one diagonal
// per cell, giving |E| ≈ 3|V| like the paper's 2D finite-element meshes.
// Diagonal orientation alternates pseudo-randomly so the mesh is not
// globally biased.
func Tri2D(nx, ny int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	id := func(x, y int) int { return y*nx + x }
	edges := make([]graph.Edge, 0, 3*nx*ny)
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			if x+1 < nx {
				edges = append(edges, graph.Edge{U: id(x, y), V: id(x+1, y), W: jitter(rng, 1)})
			}
			if y+1 < ny {
				edges = append(edges, graph.Edge{U: id(x, y), V: id(x, y+1), W: jitter(rng, 1)})
			}
			if x+1 < nx && y+1 < ny {
				if rng.Intn(2) == 0 {
					edges = append(edges, graph.Edge{U: id(x, y), V: id(x+1, y+1), W: jitter(rng, 1)})
				} else {
					edges = append(edges, graph.Edge{U: id(x+1, y), V: id(x, y+1), W: jitter(rng, 1)})
				}
			}
		}
	}
	return graph.MustNew(nx*ny, edges)
}

// Grid3D builds an nx×ny×nz 7-point grid.
func Grid3D(nx, ny, nz int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	id := func(x, y, z int) int { return (z*ny+y)*nx + x }
	var edges []graph.Edge
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				if x+1 < nx {
					edges = append(edges, graph.Edge{U: id(x, y, z), V: id(x+1, y, z), W: jitter(rng, 0.5)})
				}
				if y+1 < ny {
					edges = append(edges, graph.Edge{U: id(x, y, z), V: id(x, y+1, z), W: jitter(rng, 0.5)})
				}
				if z+1 < nz {
					edges = append(edges, graph.Edge{U: id(x, y, z), V: id(x, y, z+1), W: jitter(rng, 0.5)})
				}
			}
		}
	}
	return graph.MustNew(nx*ny*nz, edges)
}

// CircuitGrid builds a grid plus a fraction of random short-range shortcut
// edges, mimicking circuit matrices such as G3_circuit whose average degree
// (~3.8) sits between a grid and a mesh.
func CircuitGrid(nx, ny int, extraFrac float64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	base := Grid2D(nx, ny, seed+1)
	edges := append([]graph.Edge(nil), base.Edges...)
	id := func(x, y int) int { return y*nx + x }
	extra := int(extraFrac * float64(nx*ny))
	for k := 0; k < extra; k++ {
		x := rng.Intn(nx)
		y := rng.Intn(ny)
		dx := rng.Intn(7) - 3
		dy := rng.Intn(7) - 3
		x2, y2 := x+dx, y+dy
		if x2 < 0 || x2 >= nx || y2 < 0 || y2 >= ny || (dx == 0 && dy == 0) {
			continue
		}
		u, v := id(x, y), id(x2, y2)
		if u == v {
			continue
		}
		edges = append(edges, graph.Edge{U: u, V: v, W: 0.1 * jitter(rng, 1)})
	}
	return graph.MustNew(nx*ny, edges)
}

// RandomGeometric builds a connected random geometric graph: n points in
// the unit square, edges between pairs within the given radius (weight
// 1/distance), plus a grid-path fallback to guarantee connectivity.
func RandomGeometric(n int, radius float64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = rng.Float64()
		ys[i] = rng.Float64()
	}
	// Cell binning to avoid O(n²).
	cells := int(math.Ceil(1 / radius))
	if cells < 1 {
		cells = 1
	}
	bin := make(map[[2]int][]int)
	for i := 0; i < n; i++ {
		c := [2]int{int(xs[i] * float64(cells)), int(ys[i] * float64(cells))}
		bin[c] = append(bin[c], i)
	}
	var edges []graph.Edge
	for i := 0; i < n; i++ {
		cx, cy := int(xs[i]*float64(cells)), int(ys[i]*float64(cells))
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				for _, j := range bin[[2]int{cx + dx, cy + dy}] {
					if j <= i {
						continue
					}
					d := math.Hypot(xs[i]-xs[j], ys[i]-ys[j])
					if d < radius && d > 0 {
						edges = append(edges, graph.Edge{U: i, V: j, W: 1 / d})
					}
				}
			}
		}
	}
	// Connectivity fallback: chain consecutive points (they are random, so
	// this adds a Hamiltonian path of modest weight).
	for i := 0; i+1 < n; i++ {
		edges = append(edges, graph.Edge{U: i, V: i + 1, W: 0.5})
	}
	return graph.MustNew(n, edges)
}

// Path builds a path graph with unit weights; handy in tests.
func Path(n int) *graph.Graph {
	edges := make([]graph.Edge, 0, n-1)
	for i := 0; i+1 < n; i++ {
		edges = append(edges, graph.Edge{U: i, V: i + 1, W: 1})
	}
	return graph.MustNew(n, edges)
}

// Complete builds the complete graph K_n with unit weights.
func Complete(n int) *graph.Graph {
	var edges []graph.Edge
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, graph.Edge{U: i, V: j, W: 1})
		}
	}
	return graph.MustNew(n, edges)
}

// RandomConnected builds a random connected graph for property tests:
// a random spanning tree plus extra random edges with weights in (0.1, 10).
func RandomConnected(n, extraEdges int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	var edges []graph.Edge
	for v := 1; v < n; v++ {
		u := rng.Intn(v)
		edges = append(edges, graph.Edge{U: u, V: v, W: 0.1 + 9.9*rng.Float64()})
	}
	for k := 0; k < extraEdges; k++ {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u == v {
			continue
		}
		edges = append(edges, graph.Edge{U: u, V: v, W: 0.1 + 9.9*rng.Float64()})
	}
	return graph.MustNew(n, edges)
}
