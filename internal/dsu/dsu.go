// Package dsu implements a disjoint-set union (union-find) structure with
// union by rank and path compression, used by Kruskal spanning trees and the
// Gabow–Tarjan offline LCA algorithm.
package dsu

// DSU is a union-find over elements 0..n-1.
type DSU struct {
	parent []int
	rank   []byte
	count  int // number of disjoint sets
}

// New returns a DSU with every element in its own singleton set.
func New(n int) *DSU {
	d := &DSU{parent: make([]int, n), rank: make([]byte, n), count: n}
	for i := range d.parent {
		d.parent[i] = i
	}
	return d
}

// Find returns the representative of x's set, compressing the path.
func (d *DSU) Find(x int) int {
	root := x
	for d.parent[root] != root {
		root = d.parent[root]
	}
	for d.parent[x] != root {
		d.parent[x], x = root, d.parent[x]
	}
	return root
}

// Union merges the sets containing x and y; reports whether a merge
// happened (false when they were already in the same set).
func (d *DSU) Union(x, y int) bool {
	rx, ry := d.Find(x), d.Find(y)
	if rx == ry {
		return false
	}
	if d.rank[rx] < d.rank[ry] {
		rx, ry = ry, rx
	}
	d.parent[ry] = rx
	if d.rank[rx] == d.rank[ry] {
		d.rank[rx]++
	}
	d.count--
	return true
}

// Same reports whether x and y are in the same set.
func (d *DSU) Same(x, y int) bool { return d.Find(x) == d.Find(y) }

// Count returns the current number of disjoint sets.
func (d *DSU) Count() int { return d.count }

// Len returns the number of elements.
func (d *DSU) Len() int { return len(d.parent) }
