package dsu

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSingletons(t *testing.T) {
	d := New(5)
	if d.Count() != 5 {
		t.Fatalf("Count = %d, want 5", d.Count())
	}
	for i := 0; i < 5; i++ {
		if d.Find(i) != i {
			t.Errorf("Find(%d) = %d before unions", i, d.Find(i))
		}
	}
}

func TestUnionMerges(t *testing.T) {
	d := New(4)
	if !d.Union(0, 1) {
		t.Error("first union returned false")
	}
	if d.Union(1, 0) {
		t.Error("repeated union returned true")
	}
	if !d.Same(0, 1) {
		t.Error("0 and 1 not in same set after union")
	}
	if d.Same(0, 2) {
		t.Error("0 and 2 wrongly in same set")
	}
	if d.Count() != 3 {
		t.Errorf("Count = %d, want 3", d.Count())
	}
}

func TestTransitivity(t *testing.T) {
	d := New(6)
	d.Union(0, 1)
	d.Union(2, 3)
	d.Union(1, 2)
	if !d.Same(0, 3) {
		t.Error("transitivity broken")
	}
	if d.Same(0, 4) {
		t.Error("unrelated elements merged")
	}
}

func TestCountMatchesDistinctRoots(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(50)
		d := New(n)
		for k := 0; k < n; k++ {
			d.Union(rng.Intn(n), rng.Intn(n))
		}
		roots := map[int]bool{}
		for i := 0; i < n; i++ {
			roots[d.Find(i)] = true
		}
		return len(roots) == d.Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestFindIsIdempotentRepresentative(t *testing.T) {
	d := New(10)
	for i := 0; i < 9; i++ {
		d.Union(i, i+1)
	}
	r := d.Find(0)
	for i := 0; i < 10; i++ {
		if d.Find(i) != r {
			t.Fatalf("element %d has root %d, want %d", i, d.Find(i), r)
		}
	}
	if d.Count() != 1 {
		t.Errorf("Count = %d, want 1", d.Count())
	}
	if d.Len() != 10 {
		t.Errorf("Len = %d, want 10", d.Len())
	}
}
