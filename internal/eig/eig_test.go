package eig

import (
	"math"
	"testing"

	"repro/internal/chol"
	"repro/internal/dense"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/lap"
	"repro/internal/tree"
)

func TestCondNumberSameMatrixIsOne(t *testing.T) {
	g := gen.RandomConnected(40, 60, 1)
	shift := lap.Shift(g, 1e-6)
	l := lap.Laplacian(g, shift)
	f, err := chol.New(l, chol.Options{})
	if err != nil {
		t.Fatal(err)
	}
	kappa := CondNumber(l, f, GenMaxOptions{Steps: 40, Seed: 2})
	if math.Abs(kappa-1) > 1e-6 {
		t.Errorf("κ(G,G) = %g, want 1", kappa)
	}
}

func TestCondNumberMatchesDense(t *testing.T) {
	g := gen.RandomConnected(30, 45, 3)
	shift := lap.Shift(g, 1e-6)
	lg := lap.Laplacian(g, shift)
	tr, err := tree.MEWST(g)
	if err != nil {
		t.Fatal(err)
	}
	ls := lap.Laplacian(g.Subgraph(tr.EdgeIdx), shift)
	f, err := chol.New(ls, chol.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := CondNumber(lg, f, GenMaxOptions{Steps: 30, Seed: 4})
	want, err := dense.GenEigMax(dense.FromRows(lg.Dense()), dense.FromRows(ls.Dense()))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 0.02*want {
		t.Errorf("Lanczos κ = %g, dense κ = %g", got, want)
	}
}

func TestCondNumberAtLeastOneForSubgraphs(t *testing.T) {
	// For S ⊆ G with shared shift, λmin = 1 so κ ≥ 1 always.
	for seed := int64(0); seed < 5; seed++ {
		g := gen.RandomConnected(25, 35, seed)
		shift := lap.Shift(g, 1e-6)
		lg := lap.Laplacian(g, shift)
		tr, err := tree.MEWST(g)
		if err != nil {
			t.Fatal(err)
		}
		ls := lap.Laplacian(g.Subgraph(tr.EdgeIdx), shift)
		f, err := chol.New(ls, chol.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if kappa := CondNumber(lg, f, GenMaxOptions{Steps: 25, Seed: seed}); kappa < 1-1e-9 {
			t.Errorf("seed %d: κ = %g < 1", seed, kappa)
		}
	}
}

func TestPowerCondAgreesWithLanczos(t *testing.T) {
	g := gen.Grid2D(12, 12, 5)
	shift := lap.Shift(g, 1e-6)
	lg := lap.Laplacian(g, shift)
	tr, err := tree.MEWST(g)
	if err != nil {
		t.Fatal(err)
	}
	ls := lap.Laplacian(g.Subgraph(tr.EdgeIdx), shift)
	f, err := chol.New(ls, chol.Options{})
	if err != nil {
		t.Fatal(err)
	}
	lan := CondNumber(lg, f, GenMaxOptions{Steps: 60, Seed: 6})
	pow := PowerCond(lg, ls, f, 300, 6)
	// Power iteration is a lower bound that should land within ~15%.
	if pow > lan*1.01 || pow < 0.8*lan {
		t.Errorf("power %g vs lanczos %g disagree", pow, lan)
	}
}

func TestTridiagMaxKnown(t *testing.T) {
	// [[2,1],[1,2]] → λmax = 3.
	if got := TridiagMax([]float64{2, 2}, []float64{1}); math.Abs(got-3) > 1e-9 {
		t.Errorf("TridiagMax = %g, want 3", got)
	}
	// Diagonal only.
	if got := TridiagMax([]float64{5, -1, 2}, []float64{0, 0}); math.Abs(got-5) > 1e-9 {
		t.Errorf("TridiagMax = %g, want 5", got)
	}
	// 1x1.
	if got := TridiagMax([]float64{7}, nil); math.Abs(got-7) > 1e-9 {
		t.Errorf("TridiagMax = %g, want 7", got)
	}
}

func TestTridiagMaxAgainstJacobi(t *testing.T) {
	alpha := []float64{1, 2, 3, 4, 5}
	beta := []float64{0.5, 0.25, 1.5, 0.1}
	n := len(alpha)
	m := dense.New(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, alpha[i])
		if i+1 < n {
			m.Set(i, i+1, beta[i])
			m.Set(i+1, i, beta[i])
		}
	}
	w, _, err := dense.JacobiEig(m)
	if err != nil {
		t.Fatal(err)
	}
	if got := TridiagMax(alpha, beta); math.Abs(got-w[n-1]) > 1e-8 {
		t.Errorf("TridiagMax = %g, Jacobi λmax = %g", got, w[n-1])
	}
}

func TestFiedlerMatchesDenseEigenvector(t *testing.T) {
	// On a small graph the inverse-power Fiedler vector must align with the
	// dense second eigenvector (up to sign).
	g := gen.Grid2D(6, 4, 7)
	shift := lap.Shift(g, 1e-8)
	l := lap.Laplacian(g, shift)
	f, err := chol.New(l, chol.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fv := Fiedler(g.N, 30, 8, func(dst, b []float64) { f.SolveTo(dst, b) })

	w, v, err := dense.JacobiEig(dense.FromRows(lap.Laplacian(g, nil).Dense()))
	if err != nil {
		t.Fatal(err)
	}
	_ = w
	want := make([]float64, g.N)
	for i := 0; i < g.N; i++ {
		want[i] = v.At(i, 1) // second-smallest eigenvalue's eigenvector
	}
	var d float64
	for i := range fv {
		d += fv[i] * want[i]
	}
	if math.Abs(math.Abs(d)-1) > 1e-3 {
		t.Errorf("|⟨fiedler, dense⟩| = %g, want 1", math.Abs(d))
	}
}

func TestFiedlerOrthogonalToOnes(t *testing.T) {
	g := gen.RandomConnected(50, 70, 9)
	shift := lap.Shift(g, 1e-8)
	l := lap.Laplacian(g, shift)
	f, err := chol.New(l, chol.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fv := Fiedler(g.N, 5, 10, func(dst, b []float64) { f.SolveTo(dst, b) })
	var s, norm float64
	for _, v := range fv {
		s += v
		norm += v * v
	}
	if math.Abs(s) > 1e-8 {
		t.Errorf("Σ fiedler = %g, want 0", s)
	}
	if math.Abs(norm-1) > 1e-10 {
		t.Errorf("‖fiedler‖² = %g, want 1", norm)
	}
}

func TestFiedlerSeparatesDumbbell(t *testing.T) {
	// Two cliques joined by one weak edge: the Fiedler vector must have
	// opposite signs on the two cliques.
	var edges []graph.Edge
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			edges = append(edges, graph.Edge{U: i, V: j, W: 1})
			edges = append(edges, graph.Edge{U: 5 + i, V: 5 + j, W: 1})
		}
	}
	edges = append(edges, graph.Edge{U: 0, V: 5, W: 0.01})
	g := graph.MustNew(10, edges)
	shift := lap.Shift(g, 1e-8)
	l := lap.Laplacian(g, shift)
	f, err := chol.New(l, chol.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fv := Fiedler(g.N, 20, 11, func(dst, b []float64) { f.SolveTo(dst, b) })
	for i := 1; i < 5; i++ {
		if fv[i]*fv[0] < 0 {
			t.Errorf("clique A not sign-consistent: fv[%d]=%g fv[0]=%g", i, fv[i], fv[0])
		}
		if fv[5+i]*fv[5] < 0 {
			t.Errorf("clique B not sign-consistent")
		}
	}
	if fv[0]*fv[5] > 0 {
		t.Error("cliques on same side of the cut")
	}
}
