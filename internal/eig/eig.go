// Package eig provides the eigenvalue machinery the evaluation needs:
// an estimate of the relative condition number κ(L_G, L_S) =
// λmax(L_S⁻¹ L_G) via generalized Lanczos (the paper's κ column in
// Table 1), and inverse power iteration for the Fiedler vector used in
// spectral partitioning (Table 3). Because both Laplacians carry the same
// diagonal regularization and S ⊆ G, λmin of the pencil is exactly 1, so
// κ equals λmax (paper footnote 1).
package eig

import (
	"context"
	"math"
	"math/rand"

	"repro/internal/chol"
	"repro/internal/sparse"
)

// GenMaxOptions configures CondNumber.
type GenMaxOptions struct {
	Steps int   // Lanczos steps (default 80, capped at n)
	Seed  int64 // RNG seed for the start vector
}

// CondNumber estimates κ(L_G, L_S) = λmax(L_S⁻¹ L_G) given L_G and a
// Cholesky factorization of L_S. It runs Lanczos on the symmetric operator
// C = L⁻¹ P L_G Pᵀ L⁻ᵀ (P the factor's fill-reducing permutation), whose
// spectrum equals that of L_S⁻¹ L_G, and returns the largest eigenvalue of
// the resulting tridiagonal matrix.
func CondNumber(lg *sparse.CSC, fs *chol.Factor, opts GenMaxOptions) float64 {
	k, _ := CondNumberCtx(context.Background(), lg, fs, opts)
	return k
}

// CondNumberCtx is CondNumber with cancellation: the context is polled
// before every Lanczos step (each step costs two triangular solves plus a
// matrix-vector product, so per-step polling bounds cancellation latency by
// one step). On cancellation it returns the context error and zero.
func CondNumberCtx(ctx context.Context, lg *sparse.CSC, fs *chol.Factor, opts GenMaxOptions) (float64, error) {
	n := lg.Cols
	steps := opts.Steps
	if steps <= 0 {
		steps = 80
	}
	if steps > n {
		steps = n
	}
	rng := rand.New(rand.NewSource(opts.Seed + 1))

	v := make([]float64, n) // current Lanczos vector (permuted space)
	vPrev := make([]float64, n)
	w := make([]float64, n)
	tmpO := make([]float64, n) // original-order scratch
	tmpO2 := make([]float64, n)

	for i := range v {
		v[i] = rng.NormFloat64()
	}
	normalize(v)

	applyC := func(dst, src []float64) {
		// dst = L⁻¹ P L_G Pᵀ L⁻ᵀ src  (all in permuted space)
		copy(dst, src)
		fs.LTSolve(dst) // dst = L⁻ᵀ src
		for newIdx, oldIdx := range fs.Perm {
			tmpO[oldIdx] = dst[newIdx]
		}
		lg.MulVec(tmpO, tmpO2)
		for newIdx, oldIdx := range fs.Perm {
			dst[newIdx] = tmpO2[oldIdx]
		}
		fs.LSolve(dst)
	}

	alpha := make([]float64, 0, steps)
	beta := make([]float64, 0, steps) // beta[k] couples step k and k+1
	var betaPrev float64
	for k := 0; k < steps; k++ {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		applyC(w, v)
		if betaPrev != 0 {
			for i := range w {
				w[i] -= betaPrev * vPrev[i]
			}
		}
		a := dot(w, v)
		alpha = append(alpha, a)
		for i := range w {
			w[i] -= a * v[i]
		}
		b := math.Sqrt(dot(w, w))
		if b < 1e-13 {
			break
		}
		beta = append(beta, b)
		betaPrev = b
		vPrev, v, w = v, w, vPrev
		for i := range v {
			v[i] /= b
		}
	}
	if len(beta) >= len(alpha) && len(beta) > 0 {
		beta = beta[:len(alpha)-1]
	}
	return TridiagMax(alpha, beta), nil
}

// CondNumberApply estimates λmax(M⁻¹ L_G) for an SPD preconditioner M
// given only its application z = M⁻¹ r (no factorization access).
func CondNumberApply(lg *sparse.CSC, apply func(z, r []float64), opts GenMaxOptions) float64 {
	k, _ := CondNumberApplyCtx(context.Background(), lg, apply, opts)
	return k
}

// CondNumberApplyCtx is the Apply-only counterpart of CondNumberCtx: it
// runs the preconditioned Lanczos recurrence on the pencil (L_G, M) in the
// M-inner product, tracking each Lanczos vector zⱼ together with its dual
// rⱼ = M zⱼ, so only products with L_G and applications of M⁻¹ are needed
// (M itself is never multiplied). The tridiagonal matrix it builds has the
// spectrum of M⁻¹ L_G; its largest eigenvalue is the effective condition
// number of the M-preconditioned system when λmin = 1 (which holds for the
// pencil constructions in this library: the preconditioner dominates a
// subgraph of G under the shared shift). The context is polled before
// every step.
//
// The apply callback may be internally concurrent — the Schwarz
// preconditioner fans its same-color block corrections across a worker
// pool with pooled scratch — as long as it has written all of z before
// returning. Lanczos only needs that sequential contract, and the
// Schwarz fan-out is bit-identical to its sequential sweep, so estimates
// stay deterministic.
func CondNumberApplyCtx(ctx context.Context, lg *sparse.CSC, apply func(z, r []float64), opts GenMaxOptions) (float64, error) {
	n := lg.Cols
	steps := opts.Steps
	if steps <= 0 {
		steps = 80
	}
	if steps > n {
		steps = n
	}
	rng := rand.New(rand.NewSource(opts.Seed + 1))

	r := make([]float64, n) // rⱼ = M zⱼ (dual of the current Lanczos vector)
	z := make([]float64, n) // zⱼ, M-orthonormal across steps
	rPrev := make([]float64, n)
	w := make([]float64, n)
	zNext := make([]float64, n)

	for i := range r {
		r[i] = rng.NormFloat64()
	}
	apply(z, r)
	b0 := math.Sqrt(dot(r, z)) // ‖z‖_M via rᵀz = zᵀMz
	if !(b0 > 0) {
		return 0, nil
	}
	for i := range r {
		r[i] /= b0
		z[i] /= b0
	}

	alpha := make([]float64, 0, steps)
	beta := make([]float64, 0, steps)
	var betaPrev float64
	for k := 0; k < steps; k++ {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		lg.MulVec(z, w) // w = L_G zⱼ, living in the dual (r) space
		if betaPrev != 0 {
			for i := range w {
				w[i] -= betaPrev * rPrev[i]
			}
		}
		a := dot(w, z) // = zⱼᵀ L_G zⱼ (the β rPrev term is M-orthogonal to zⱼ)
		alpha = append(alpha, a)
		for i := range w {
			w[i] -= a * r[i]
		}
		apply(zNext, w)
		b := math.Sqrt(dot(w, zNext)) // ‖w‖_{M⁻¹} ≥ 0 for SPD M
		if !(b > 1e-13) {
			break
		}
		beta = append(beta, b)
		betaPrev = b
		// Rotate: rPrev ← rⱼ, (r, z) ← (w, zNext)/b.
		rPrev, r, w = r, w, rPrev
		z, zNext = zNext, z
		for i := range r {
			r[i] /= b
			z[i] /= b
		}
	}
	if len(beta) >= len(alpha) && len(beta) > 0 {
		beta = beta[:len(alpha)-1]
	}
	return TridiagMax(alpha, beta), nil
}

// TridiagMax returns the largest eigenvalue of the symmetric tridiagonal
// matrix with diagonal alpha and off-diagonal beta (len(beta) =
// len(alpha)−1), by bisection on the Sturm sequence count.
func TridiagMax(alpha, beta []float64) float64 {
	n := len(alpha)
	if n == 0 {
		return 0
	}
	// Gershgorin bounds.
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := 0; i < n; i++ {
		r := 0.0
		if i > 0 {
			r += math.Abs(beta[i-1])
		}
		if i < n-1 {
			r += math.Abs(beta[i])
		}
		if alpha[i]-r < lo {
			lo = alpha[i] - r
		}
		if alpha[i]+r > hi {
			hi = alpha[i] + r
		}
	}
	for iter := 0; iter < 200 && hi-lo > 1e-12*(1+math.Abs(hi)); iter++ {
		mid := 0.5 * (lo + hi)
		if countBelow(alpha, beta, mid) < n {
			lo = mid
		} else {
			hi = mid
		}
	}
	return 0.5 * (lo + hi)
}

// countBelow returns the number of eigenvalues of the tridiagonal matrix
// strictly less than x (Sturm sequence).
func countBelow(alpha, beta []float64, x float64) int {
	count := 0
	d := 1.0
	for i := range alpha {
		var b2 float64
		if i > 0 {
			b2 = beta[i-1] * beta[i-1]
		}
		if d == 0 {
			d = 1e-300
		}
		d = alpha[i] - x - b2/d
		if d < 0 {
			count++
		}
	}
	return count
}

// PowerCond estimates κ via straightforward power iteration with the
// Rayleigh quotient (xᵀ L_G x)/(xᵀ L_S x); slower to converge than Lanczos
// but useful as an independent cross-check in tests.
func PowerCond(lg, ls *sparse.CSC, fs *chol.Factor, steps int, seed int64) float64 {
	n := lg.Cols
	rng := rand.New(rand.NewSource(seed + 7))
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	normalize(x)
	for k := 0; k < steps; k++ {
		lg.MulVec(x, y)
		fs.SolveTo(x, y)
		normalize(x)
	}
	lg.MulVec(x, y)
	num := dot(x, y)
	ls.MulVec(x, y)
	den := dot(x, y)
	return num / den
}

// Fiedler computes an approximation to the Fiedler vector (eigenvector of
// the second-smallest Laplacian eigenvalue) by `steps` rounds of inverse
// power iteration, deflating the constant vector. solve must apply an
// (approximate) inverse of the regularized Laplacian; iterations counts
// reported by the solver can be accumulated by the caller via the closure.
func Fiedler(n, steps int, seed int64, solve func(dst, b []float64)) []float64 {
	x, _ := FiedlerCtx(context.Background(), n, steps, seed, solve)
	return x
}

// FiedlerCtx is Fiedler with cancellation: the context is polled before
// every inverse-power step (each step is one full inner solve). The inner
// solver should additionally honor the same context for sub-step
// cancellation latency. On cancellation it returns the context error and a
// nil vector.
func FiedlerCtx(ctx context.Context, n, steps int, seed int64, solve func(dst, b []float64)) ([]float64, error) {
	rng := rand.New(rand.NewSource(seed + 13))
	x := make([]float64, n)
	b := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	deflate(x)
	normalize(x)
	for k := 0; k < steps; k++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		copy(b, x)
		solve(x, b)
		deflate(x)
		normalize(x)
	}
	// A cancellation that landed during the final solve left x holding a
	// partial iterate; without this check it would be returned as a valid
	// vector with a nil error.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return x, nil
}

// deflate removes the component along the all-ones vector.
func deflate(x []float64) {
	var mean float64
	for _, v := range x {
		mean += v
	}
	mean /= float64(len(x))
	for i := range x {
		x[i] -= mean
	}
}

func dot(a, b []float64) float64 {
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

func normalize(x []float64) {
	n := math.Sqrt(dot(x, x))
	if n == 0 {
		return
	}
	for i := range x {
		x[i] /= n
	}
}
