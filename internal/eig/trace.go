package eig

import (
	"context"
	"math/rand"

	"repro/internal/chol"
	"repro/internal/sparse"
)

// TraceEst estimates Tr(L_S⁻¹ L_G) — the quantity the paper's sparsifier
// greedily reduces (eq. 5) — with the Hutchinson stochastic estimator:
// for Rademacher probe vectors z, E[zᵀ L_S⁻¹ L_G z] equals the trace.
// probes controls the sample count (≈30 gives a few percent accuracy);
// fs is the Cholesky factorization of L_S.
//
// The estimator lets callers watch the trace fall round by round during
// densification without dense inverses, and is cross-checked against the
// exact dense trace in tests.
func TraceEst(lg *sparse.CSC, fs *chol.Factor, probes int, seed int64) float64 {
	t, _ := TraceEstCtx(context.Background(), lg, fs, probes, seed)
	return t
}

// TraceEstCtx is TraceEst with cancellation: the context is polled before
// every probe (each probe costs one matrix-vector product and one
// factorized solve). On cancellation it returns the context error and zero.
func TraceEstCtx(ctx context.Context, lg *sparse.CSC, fs *chol.Factor, probes int, seed int64) (float64, error) {
	return TraceEstApplyCtx(ctx, lg, func(x, y []float64) { fs.SolveTo(x, y) }, probes, seed)
}

// TraceEstApplyCtx is the Apply-only counterpart of TraceEstCtx: it
// estimates Tr(M⁻¹ L_G) for any SPD operator M given just the application
// x = M⁻¹ y. Probe vectors and accumulation are identical to the factored
// path, so the two agree exactly when apply wraps the same factorization.
// An internally concurrent apply (the Schwarz fan-out with its pooled
// scratch) is fine: each probe only requires x to be fully written on
// return, and the fan-out is bit-identical to the sequential sweep.
func TraceEstApplyCtx(ctx context.Context, lg *sparse.CSC, apply func(x, y []float64), probes int, seed int64) (float64, error) {
	n := lg.Cols
	if probes <= 0 {
		probes = 30
	}
	rng := rand.New(rand.NewSource(seed + 97))
	z := make([]float64, n)
	y := make([]float64, n)
	x := make([]float64, n)
	var sum float64
	for p := 0; p < probes; p++ {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		for i := range z {
			if rng.Intn(2) == 0 {
				z[i] = 1
			} else {
				z[i] = -1
			}
		}
		lg.MulVec(z, y) // y = L_G z
		apply(x, y)     // x = M⁻¹ L_G z
		for i := range z {
			sum += z[i] * x[i]
		}
	}
	return sum / float64(probes), nil
}
