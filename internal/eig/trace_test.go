package eig

import (
	"math"
	"testing"

	"repro/internal/chol"
	"repro/internal/dense"
	"repro/internal/gen"
	"repro/internal/lap"
	"repro/internal/tree"
)

func TestTraceEstMatchesDense(t *testing.T) {
	g := gen.RandomConnected(40, 60, 1)
	shift := lap.Shift(g, 1e-6)
	lg := lap.Laplacian(g, shift)
	tr, err := tree.MEWST(g)
	if err != nil {
		t.Fatal(err)
	}
	ls := lap.Laplacian(g.Subgraph(tr.EdgeIdx), shift)
	f, err := chol.New(ls, chol.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := dense.TraceProduct(dense.FromRows(ls.Dense()), dense.FromRows(lg.Dense()))
	if err != nil {
		t.Fatal(err)
	}
	got := TraceEst(lg, f, 400, 2)
	if math.Abs(got-want) > 0.1*want {
		t.Errorf("Hutchinson trace %g, dense %g", got, want)
	}
}

func TestTraceEstSelfIsN(t *testing.T) {
	// Tr(L⁻¹ L) = n exactly; Hutchinson with any probes is exact here
	// because zᵀ I z = n for every Rademacher z.
	g := gen.Grid2D(8, 8, 3)
	shift := lap.Shift(g, 1e-6)
	l := lap.Laplacian(g, shift)
	f, err := chol.New(l, chol.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := TraceEst(l, f, 5, 4)
	if math.Abs(got-float64(g.N)) > 1e-6*float64(g.N) {
		t.Errorf("Tr(L⁻¹L) estimate %g, want %d", got, g.N)
	}
}

func TestTraceDecreasesWithDensification(t *testing.T) {
	// The paper's core monotonicity: recovering edges reduces the trace.
	g := gen.Grid2D(20, 20, 5)
	shift := lap.Shift(g, 1e-6)
	lg := lap.Laplacian(g, shift)
	tr, err := tree.MEWST(g)
	if err != nil {
		t.Fatal(err)
	}
	inSub := append([]bool(nil), tr.InTree...)
	traceOf := func() float64 {
		idx := make([]int, 0)
		for i, in := range inSub {
			if in {
				idx = append(idx, i)
			}
		}
		ls := lap.Laplacian(g.Subgraph(idx), shift)
		f, err := chol.New(ls, chol.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return TraceEst(lg, f, 200, 6)
	}
	prev := traceOf()
	added := 0
	for e := range g.Edges {
		if inSub[e] {
			continue
		}
		inSub[e] = true
		added++
		if added%20 == 0 {
			cur := traceOf()
			// Allow small estimator noise; the trend must be downward.
			if cur > prev*1.02 {
				t.Fatalf("trace rose from %g to %g after adding edges", prev, cur)
			}
			prev = cur
		}
		if added >= 80 {
			break
		}
	}
}
