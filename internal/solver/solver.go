// Package solver provides the preconditioned conjugate gradient (PCG)
// method with pluggable preconditioners (sparse Cholesky of a sparsifier
// Laplacian, Jacobi, identity), plus a direct-solver facade. These are the
// two equation-solving regimes the paper's evaluation compares (Tables 1–3).
package solver

import (
	"context"
	"fmt"
	"math"
	"sync"

	"repro/internal/chol"
	"repro/internal/sparse"
)

// Preconditioner applies z = M⁻¹ r. Implementations handed to long-lived
// holders (core.Pencil, the serving engine's cached artifacts) must be
// safe for concurrent Apply calls: a batch solve fans PCG across
// goroutines against one shared preconditioner.
type Preconditioner interface {
	Apply(z, r []float64)
}

// Factored is implemented by preconditioners that are backed by a single
// sparse Cholesky factorization of the preconditioning matrix. Callers
// that have exact-factor algorithms available (the similarity-transform
// Lanczos in internal/eig) type-assert against it and fall back to
// Apply-only algorithms otherwise.
type Factored interface {
	Preconditioner
	Factor() *chol.Factor
}

// Identity is the no-op preconditioner (plain CG).
type Identity struct{}

// Apply copies r into z.
func (Identity) Apply(z, r []float64) { copy(z, r) }

// Jacobi is diagonal scaling: z = r / diag(A).
type Jacobi struct{ InvDiag []float64 }

// NewJacobi builds a Jacobi preconditioner from A's diagonal.
func NewJacobi(a *sparse.CSC) *Jacobi {
	d := a.Diag()
	for i, v := range d {
		if v != 0 {
			d[i] = 1 / v
		} else {
			d[i] = 1
		}
	}
	return &Jacobi{InvDiag: d}
}

// Apply multiplies entrywise by the inverse diagonal.
func (j *Jacobi) Apply(z, r []float64) {
	for i := range z {
		z[i] = r[i] * j.InvDiag[i]
	}
}

// CholPrecond applies a sparse Cholesky factorization (typically of the
// sparsifier Laplacian) as the preconditioner. Scratch space is pooled,
// so one CholPrecond may serve concurrent Apply calls.
type CholPrecond struct {
	F       *chol.Factor
	scratch sync.Pool
}

// NewCholPrecond wraps a factor.
func NewCholPrecond(f *chol.Factor) *CholPrecond {
	c := &CholPrecond{F: f}
	c.scratch.New = func() any {
		y := make([]float64, f.N)
		return &y
	}
	return c
}

// Apply solves (L Lᵀ) z = r through the factor.
func (c *CholPrecond) Apply(z, r []float64) {
	y := c.scratch.Get().(*[]float64)
	c.F.SolveToNoAlloc(z, r, *y)
	c.scratch.Put(y)
}

// Factor returns the underlying factorization (Factored).
func (c *CholPrecond) Factor() *chol.Factor { return c.F }

// Result reports the outcome of an iterative solve.
type Result struct {
	Iterations int
	Converged  bool
	RelRes     float64 // final ‖b − A x‖ / ‖b‖
	// Err is non-nil when the solve stopped early because Options.Ctx was
	// canceled or its deadline passed; Converged is false in that case.
	Err error
}

// DefaultCheckEvery is how many PCG iterations run between context polls
// when Options.CheckEvery is unset.
const DefaultCheckEvery = 32

// Options configures PCG.
type Options struct {
	Tol     float64 // relative residual tolerance (default 1e-6)
	MaxIter int     // default 10·n
	// Ctx, when non-nil, makes the iteration cancellable: it is polled
	// every CheckEvery iterations and on entry, and a cancellation stops
	// the solve with Result.Err set to the context error. x holds the
	// best iterate so far.
	Ctx context.Context
	// CheckEvery is the context poll cadence in iterations (default
	// DefaultCheckEvery). Polling costs one atomic load per check, so the
	// default keeps overhead unmeasurable even on tiny systems.
	CheckEvery int
}

// PCG solves A x = b for SPD A starting from the contents of x
// (zero-initialize for a cold start). It overwrites x and returns
// convergence information.
func PCG(a *sparse.CSC, b, x []float64, m Preconditioner, opts Options) Result {
	n := a.Cols
	if len(b) != n || len(x) != n {
		panic(fmt.Sprintf("solver: PCG dimension mismatch n=%d len(b)=%d len(x)=%d", n, len(b), len(x)))
	}
	tol := opts.Tol
	if tol <= 0 {
		tol = 1e-6
	}
	maxIter := opts.MaxIter
	if maxIter <= 0 {
		maxIter = 10 * n
	}
	if m == nil {
		m = Identity{}
	}
	checkEvery := opts.CheckEvery
	if checkEvery <= 0 {
		checkEvery = DefaultCheckEvery
	}
	if opts.Ctx != nil {
		if err := opts.Ctx.Err(); err != nil {
			return Result{Err: err}
		}
	}
	r := make([]float64, n)
	z := make([]float64, n)
	p := make([]float64, n)
	q := make([]float64, n)

	a.MulVec(x, r)
	for i := range r {
		r[i] = b[i] - r[i]
	}
	bnorm := norm2(b)
	if bnorm == 0 {
		for i := range x {
			x[i] = 0
		}
		return Result{Converged: true}
	}
	rnorm := norm2(r)
	if rnorm/bnorm <= tol {
		return Result{Converged: true, RelRes: rnorm / bnorm}
	}
	m.Apply(z, r)
	copy(p, z)
	rz := dot(r, z)
	for it := 1; it <= maxIter; it++ {
		if opts.Ctx != nil && it%checkEvery == 0 {
			if err := opts.Ctx.Err(); err != nil {
				return Result{Iterations: it - 1, RelRes: rnorm / bnorm, Err: err}
			}
		}
		a.MulVec(p, q)
		pq := dot(p, q)
		if pq <= 0 || math.IsNaN(pq) {
			return Result{Iterations: it, Converged: false, RelRes: rnorm / bnorm}
		}
		alpha := rz / pq
		for i := range x {
			x[i] += alpha * p[i]
			r[i] -= alpha * q[i]
		}
		rnorm = norm2(r)
		if rnorm/bnorm <= tol {
			return Result{Iterations: it, Converged: true, RelRes: rnorm / bnorm}
		}
		m.Apply(z, r)
		rzNew := dot(r, z)
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	return Result{Iterations: maxIter, Converged: false, RelRes: rnorm / bnorm}
}

func dot(a, b []float64) float64 {
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

func norm2(a []float64) float64 {
	return math.Sqrt(dot(a, a))
}

// Direct is the direct-solver facade: ordering + factorization + solves,
// the stand-in for CHOLMOD in Tables 2 and 3.
type Direct struct {
	F *chol.Factor
}

// NewDirect factorizes a with an automatically chosen fill-reducing
// ordering.
func NewDirect(a *sparse.CSC) (*Direct, error) {
	f, err := chol.New(a, chol.Options{})
	if err != nil {
		return nil, err
	}
	return &Direct{F: f}, nil
}

// Solve returns x with A x = b.
func (d *Direct) Solve(b []float64) []float64 { return d.F.Solve(b) }

// MemBytes reports factor storage.
func (d *Direct) MemBytes() int64 { return d.F.MemBytes() }
