package solver_test

import (
	"math/rand"
	"testing"

	"repro/internal/chol"
	"repro/internal/gen"
	"repro/internal/lap"
	"repro/internal/solver"
	"repro/internal/sparsify"
)

// TestSparsifierBeatsIC0 pits the two practical preconditioning styles
// against each other on a mesh: IC(0) on the full Laplacian (classic, no
// fill) versus the complete factorization of a trace-reduction sparsifier
// (the paper's approach). The sparsifier must need fewer PCG iterations —
// that asymmetry is the reason spectral sparsification exists.
func TestSparsifierBeatsIC0(t *testing.T) {
	g := gen.Grid2D(60, 60, 11)
	shift := lap.Shift(g, 0)
	a := lap.Laplacian(g, shift)

	ic, err := chol.NewIncomplete(a)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := sparsify.Sparsify(g, sparsify.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	pf, err := chol.New(lap.Laplacian(sp.Sparsifier, shift), chol.Options{})
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(12))
	b := make([]float64, g.N)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x1 := make([]float64, g.N)
	icRes := solver.PCG(a, b, x1, solver.NewCholPrecond(ic), solver.Options{Tol: 1e-8, MaxIter: 5000})
	x2 := make([]float64, g.N)
	spRes := solver.PCG(a, b, x2, solver.NewCholPrecond(pf), solver.Options{Tol: 1e-8, MaxIter: 5000})

	if !icRes.Converged || !spRes.Converged {
		t.Fatalf("convergence failure: ic=%+v sp=%+v", icRes, spRes)
	}
	t.Logf("IC(0): %d iterations; sparsifier: %d iterations", icRes.Iterations, spRes.Iterations)
	if spRes.Iterations >= icRes.Iterations {
		t.Errorf("sparsifier PCG (%d) not beating IC(0) (%d) on a 60x60 grid",
			spRes.Iterations, icRes.Iterations)
	}
}

// TestIC0BeatsJacobi sanity-checks the preconditioner hierarchy:
// IC(0) < Jacobi < identity in iteration count on a mesh.
func TestIC0BeatsJacobi(t *testing.T) {
	g := gen.Grid2D(40, 40, 13)
	a := lap.Laplacian(g, lap.Shift(g, 0))
	ic, err := chol.NewIncomplete(a)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(14))
	b := make([]float64, g.N)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	run := func(m solver.Preconditioner) int {
		x := make([]float64, g.N)
		r := solver.PCG(a, b, x, m, solver.Options{Tol: 1e-8, MaxIter: 8000})
		if !r.Converged {
			t.Fatalf("did not converge with %T", m)
		}
		return r.Iterations
	}
	icIt := run(solver.NewCholPrecond(ic))
	jacIt := run(solver.NewJacobi(a))
	idIt := run(solver.Identity{})
	t.Logf("identity %d, Jacobi %d, IC(0) %d", idIt, jacIt, icIt)
	if !(icIt < jacIt && jacIt <= idIt) {
		t.Errorf("preconditioner hierarchy violated: id=%d jac=%d ic=%d", idIt, jacIt, icIt)
	}
}
