package solver

import (
	"fmt"
	"math"

	"repro/internal/sparse"
)

// BlockPreconditioner is implemented by preconditioners that can apply
// M⁻¹ to a whole interleaved n×s panel in one pass over their own
// structure (triangular factors, block sweep), instead of s independent
// Apply calls. Entry (i, k) of a panel lives at index i*s+k. PCGBlock
// type-asserts against this and falls back to per-column Apply otherwise,
// so implementing it is a pure bandwidth optimization, never a
// correctness requirement.
type BlockPreconditioner interface {
	Preconditioner
	// ApplyPanel computes Z = M⁻¹ R column by column for an interleaved
	// panel of width s; z and r have length n·s exactly.
	ApplyPanel(z, r []float64, s int)
}

// ApplyPanel copies the panel through (plain block CG).
func (Identity) ApplyPanel(z, r []float64, s int) { copy(z, r) }

// ApplyPanel scales every panel row by the inverse diagonal.
func (j *Jacobi) ApplyPanel(z, r []float64, s int) {
	for i, d := range j.InvDiag {
		zi, ri := z[i*s:i*s+s], r[i*s:i*s+s]
		for k := range zi {
			zi[k] = ri[k] * d
		}
	}
}

// ApplyPanel solves (L Lᵀ) Z = R through the factor with one traversal of
// L per triangular sweep shared by all s columns. The pooled scratch
// buffer is grown to panel size on demand and kept, so steady-state panel
// applies allocate nothing.
func (c *CholPrecond) ApplyPanel(z, r []float64, s int) {
	if s == 1 {
		c.Apply(z, r)
		return
	}
	y := c.scratch.Get().(*[]float64)
	if cap(*y) < c.F.N*s {
		*y = make([]float64, c.F.N*s)
	}
	c.F.SolvePanelNoAlloc(z, r, (*y)[:c.F.N*s], s)
	c.scratch.Put(y)
}

// applyPanelOf routes a panel apply to ApplyPanel when the preconditioner
// supports it and otherwise gathers/scatters each column through the
// scalar Apply, using the caller's two n-vector scratch slices.
func applyPanelOf(m Preconditioner, z, r []float64, n, s int, zc, rc []float64) {
	if s == 1 {
		m.Apply(z, r)
		return
	}
	if bp, ok := m.(BlockPreconditioner); ok {
		bp.ApplyPanel(z, r, s)
		return
	}
	for k := 0; k < s; k++ {
		for i := 0; i < n; i++ {
			rc[i] = r[i*s+k]
		}
		m.Apply(zc, rc)
		for i := 0; i < n; i++ {
			z[i*s+k] = zc[i]
		}
	}
}

// dotLanes accumulates the s per-column dot products of two interleaved
// panels into out[:s]. Per column the accumulation order is identical to
// the scalar dot.
func dotLanes(a, b []float64, s int, out []float64) {
	out = out[:s]
	for k := range out {
		out[k] = 0
	}
	for i := 0; i+s <= len(a); i += s {
		ai, bi := a[i:i+s], b[i:i+s]
		_ = bi[len(ai)-1]
		_ = out[len(ai)-1]
		for k := range ai {
			out[k] += ai[k] * bi[k]
		}
	}
}

// PCGBlock solves A X = B for a block of right-hand sides with one PCG
// iteration space shared across the block: each iteration runs a single
// matrix–panel product and a single preconditioner panel apply for all
// still-active columns, which is where multi-RHS throughput comes from —
// the matrix and factor traversals (the memory-bound part of PCG) are
// paid once per iteration instead of once per column. Each column keeps
// its own α, β, r·z, and residual recurrences, exactly the scalar PCG
// recurrences, so per-column results match PCG up to the harmless
// floating-point reassociation documented on MulPanel (in practice:
// identical iteration counts ±1 at equal tolerances).
//
// Columns converge independently: a converged (or broken-down) column is
// deflated — its solution is scattered into xs and the panels are
// repacked to the surviving width — so a batch mixing easy and hard
// right-hand sides stops paying for the easy ones early.
//
// bs and xs are parallel slices of n-vectors (xs entries are overwritten,
// zero-initialize for cold starts). A single column degenerates to the
// scalar PCG. Cancellation via opts.Ctx stops the whole block, with each
// unfinished column's Result.Err set and xs holding best iterates.
func PCGBlock(a *sparse.CSC, bs, xs [][]float64, m Preconditioner, opts Options) []Result {
	n := a.Cols
	if len(xs) != len(bs) {
		panic(fmt.Sprintf("solver: PCGBlock has %d rhs but %d solution vectors", len(bs), len(xs)))
	}
	for k := range bs {
		if len(bs[k]) != n || len(xs[k]) != n {
			panic(fmt.Sprintf("solver: PCGBlock dimension mismatch n=%d len(bs[%d])=%d len(xs[%d])=%d",
				n, k, len(bs[k]), k, len(xs[k])))
		}
	}
	switch len(bs) {
	case 0:
		return nil
	case 1:
		return []Result{PCG(a, bs[0], xs[0], m, opts)}
	}
	tol := opts.Tol
	if tol <= 0 {
		tol = 1e-6
	}
	maxIter := opts.MaxIter
	if maxIter <= 0 {
		maxIter = 10 * n
	}
	if m == nil {
		m = Identity{}
	}
	checkEvery := opts.CheckEvery
	if checkEvery <= 0 {
		checkEvery = DefaultCheckEvery
	}
	s0 := len(bs)
	results := make([]Result, s0)
	if opts.Ctx != nil {
		if err := opts.Ctx.Err(); err != nil {
			for k := range results {
				results[k] = Result{Err: err}
			}
			return results
		}
	}

	// Interleaved panels at full width; the active width w shrinks as
	// columns deflate and every panel is repacked to the surviving lanes.
	xp := make([]float64, n*s0)
	rp := make([]float64, n*s0)
	pp := make([]float64, n*s0)
	zp := make([]float64, n*s0)
	qp := make([]float64, n*s0)
	zc := make([]float64, n) // per-column fallback scratch for applyPanelOf
	rc := make([]float64, n)
	cols := make([]int, s0) // active lane → original column
	bnorm := make([]float64, s0)
	rnorm := make([]float64, s0)
	rz := make([]float64, s0)
	lane := make([]float64, s0) // per-lane dot/α/β scratch
	done := make([]bool, s0)

	w := s0
	for k := 0; k < s0; k++ {
		cols[k] = k
		bnorm[k] = norm2(bs[k])
		for i := 0; i < n; i++ {
			xp[i*s0+k] = xs[k][i]
		}
	}
	a.MulPanel(xp, qp, w)
	for k := 0; k < w; k++ {
		b := bs[k]
		for i := 0; i < n; i++ {
			rp[i*w+k] = b[i] - qp[i*w+k]
		}
	}
	dotLanes(rp[:n*w], rp[:n*w], w, lane)
	for k := 0; k < w; k++ {
		rnorm[k] = math.Sqrt(lane[k])
		switch {
		case bnorm[k] == 0:
			for i := range xs[k] {
				xs[k][i] = 0
			}
			results[k] = Result{Converged: true}
			done[k] = true
		case rnorm[k]/bnorm[k] <= tol:
			scatterLane(xs[k], xp, k, w, n)
			results[k] = Result{Converged: true, RelRes: rnorm[k] / bnorm[k]}
			done[k] = true
		}
	}
	w = deflate(n, w, done, cols, bnorm, rnorm, rz, xp, rp, pp)
	if w == 0 {
		return results
	}

	applyPanelOf(m, zp[:n*w], rp[:n*w], n, w, zc, rc)
	copy(pp[:n*w], zp[:n*w])
	dotLanes(rp[:n*w], zp[:n*w], w, rz)

	for it := 1; it <= maxIter; it++ {
		if opts.Ctx != nil && it%checkEvery == 0 {
			if err := opts.Ctx.Err(); err != nil {
				for k := 0; k < w; k++ {
					scatterLane(xs[cols[k]], xp, k, w, n)
					results[cols[k]] = Result{Iterations: it - 1, RelRes: rnorm[k] / bnorm[k], Err: err}
				}
				return results
			}
		}
		a.MulPanel(pp, qp, w)
		dotLanes(pp[:n*w], qp[:n*w], w, lane)
		finished := false
		broke := false
		for k := 0; k < w; k++ {
			pq := lane[k]
			if pq <= 0 || math.IsNaN(pq) {
				scatterLane(xs[cols[k]], xp, k, w, n)
				results[cols[k]] = Result{Iterations: it, Converged: false, RelRes: rnorm[k] / bnorm[k]}
				done[k] = true
				finished = true
				broke = true
				lane[k] = 0
				continue
			}
			lane[k] = rz[k] / pq // α
		}
		if broke {
			// Rare breakdown path: skip the frozen lanes explicitly so a
			// NaN in their q column cannot leak into the update.
			for i := 0; i < n; i++ {
				base := i * w
				for k := 0; k < w; k++ {
					if done[k] {
						continue
					}
					xp[base+k] += lane[k] * pp[base+k]
					rp[base+k] -= lane[k] * qp[base+k]
				}
			}
		} else {
			// Common path: no lane finished between the α loop and here
			// (converged lanes were deflated last iteration), so the update
			// is branch-free and the bounded row slices drop the per-lane
			// bounds checks.
			al := lane[:w]
			for i := 0; i < n; i++ {
				base := i * w
				xpi, rpi := xp[base:base+w], rp[base:base+w]
				ppi, qpi := pp[base:base+w], qp[base:base+w]
				_ = ppi[len(xpi)-1]
				_ = qpi[len(xpi)-1]
				_ = al[len(xpi)-1]
				for k := range xpi {
					xpi[k] += al[k] * ppi[k]
					rpi[k] -= al[k] * qpi[k]
				}
			}
		}
		dotLanes(rp[:n*w], rp[:n*w], w, lane)
		for k := 0; k < w; k++ {
			if done[k] {
				continue
			}
			rnorm[k] = math.Sqrt(lane[k])
			if rnorm[k]/bnorm[k] <= tol {
				scatterLane(xs[cols[k]], xp, k, w, n)
				results[cols[k]] = Result{Iterations: it, Converged: true, RelRes: rnorm[k] / bnorm[k]}
				done[k] = true
				finished = true
			}
		}
		if finished {
			w = deflate(n, w, done, cols, bnorm, rnorm, rz, xp, rp, pp)
			if w == 0 {
				return results
			}
		}
		applyPanelOf(m, zp[:n*w], rp[:n*w], n, w, zc, rc)
		dotLanes(rp[:n*w], zp[:n*w], w, lane)
		for k := 0; k < w; k++ {
			beta := lane[k] / rz[k]
			rz[k] = lane[k]
			lane[k] = beta
		}
		bl := lane[:w]
		for i := 0; i < n; i++ {
			base := i * w
			ppi, zpi := pp[base:base+w], zp[base:base+w]
			_ = zpi[len(ppi)-1]
			_ = bl[len(ppi)-1]
			for k := range ppi {
				ppi[k] = zpi[k] + bl[k]*ppi[k]
			}
		}
	}
	for k := 0; k < w; k++ {
		scatterLane(xs[cols[k]], xp, k, w, n)
		results[cols[k]] = Result{Iterations: maxIter, Converged: false, RelRes: rnorm[k] / bnorm[k]}
	}
	return results
}

// scatterLane copies lane k of an interleaved n×w panel into dst.
func scatterLane(dst, panel []float64, k, w, n int) {
	for i := 0; i < n; i++ {
		dst[i] = panel[i*w+k]
	}
}

// deflate drops finished lanes: the persistent panels (x, r, p) are
// repacked in place from stride w to the surviving stride, and the
// per-lane bookkeeping slices are compacted to match. Repacking forward
// is safe because every write lands at an index ≤ the index it reads
// from. Returns the new width and resets done[:new width].
func deflate(n, w int, done []bool, cols []int, bnorm, rnorm, rz []float64, panels ...[]float64) int {
	nw := 0
	for k := 0; k < w; k++ {
		if done[k] {
			continue
		}
		if nw != k {
			cols[nw] = cols[k]
			bnorm[nw] = bnorm[k]
			rnorm[nw] = rnorm[k]
			rz[nw] = rz[k]
		}
		nw++
	}
	if nw == w {
		return w
	}
	for _, v := range panels {
		// Row-outer, lane-inner: the read cursor i*w+k then advances
		// strictly monotonically and never falls behind the write cursor
		// i*nw+t, so the in-place compaction cannot clobber unread lanes.
		for i := 0; i < n; i++ {
			t := 0
			for k := 0; k < w; k++ {
				if done[k] {
					continue
				}
				v[i*nw+t] = v[i*w+k]
				t++
			}
		}
	}
	for k := 0; k < nw; k++ {
		done[k] = false
	}
	return nw
}
