package solver

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/chol"
	"repro/internal/gen"
	"repro/internal/lap"
	"repro/internal/sparse"
)

func testSystem(n, extra int, seed int64) (*sparse.CSC, []float64, []float64) {
	g := gen.RandomConnected(n, extra, seed)
	shift := make([]float64, n)
	for i := range shift {
		shift[i] = 0.05
	}
	a := lap.Laplacian(g, shift)
	rng := rand.New(rand.NewSource(seed + 1))
	want := make([]float64, n)
	for i := range want {
		want[i] = rng.NormFloat64()
	}
	b := make([]float64, n)
	a.MulVec(want, b)
	return a, b, want
}

func relErr(got, want []float64) float64 {
	var num, den float64
	for i := range got {
		num += (got[i] - want[i]) * (got[i] - want[i])
		den += want[i] * want[i]
	}
	return math.Sqrt(num / den)
}

func TestPCGConvergesIdentityPrecond(t *testing.T) {
	a, b, want := testSystem(50, 80, 1)
	x := make([]float64, 50)
	res := PCG(a, b, x, Identity{}, Options{Tol: 1e-10})
	if !res.Converged {
		t.Fatalf("CG did not converge: %+v", res)
	}
	if e := relErr(x, want); e > 1e-7 {
		t.Errorf("solution error %g", e)
	}
}

func TestPCGConvergesJacobi(t *testing.T) {
	a, b, want := testSystem(60, 90, 2)
	x := make([]float64, 60)
	res := PCG(a, b, x, NewJacobi(a), Options{Tol: 1e-10})
	if !res.Converged {
		t.Fatalf("Jacobi-PCG did not converge: %+v", res)
	}
	if e := relErr(x, want); e > 1e-7 {
		t.Errorf("solution error %g", e)
	}
}

func TestPCGWithExactPreconditionerConvergesInstantly(t *testing.T) {
	a, b, want := testSystem(40, 60, 3)
	f, err := chol.New(a, chol.Options{})
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 40)
	res := PCG(a, b, x, NewCholPrecond(f), Options{Tol: 1e-10})
	if !res.Converged || res.Iterations > 3 {
		t.Fatalf("exact preconditioner took %d iterations", res.Iterations)
	}
	if e := relErr(x, want); e > 1e-7 {
		t.Errorf("solution error %g", e)
	}
}

func TestPreconditionerReducesIterations(t *testing.T) {
	// 2D grid: CG iteration count grows with condition number; Jacobi or a
	// sparsifier preconditioner must cut it.
	g := gen.Grid2D(30, 30, 4)
	shift := lap.Shift(g, 1e-6)
	a := lap.Laplacian(g, shift)
	rng := rand.New(rand.NewSource(5))
	b := make([]float64, g.N)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x1 := make([]float64, g.N)
	plain := PCG(a, b, x1, Identity{}, Options{Tol: 1e-8, MaxIter: 5000})
	f, err := chol.New(a, chol.Options{})
	if err != nil {
		t.Fatal(err)
	}
	x2 := make([]float64, g.N)
	pre := PCG(a, b, x2, NewCholPrecond(f), Options{Tol: 1e-8, MaxIter: 5000})
	if !plain.Converged || !pre.Converged {
		t.Fatalf("convergence failure: plain=%+v pre=%+v", plain, pre)
	}
	if pre.Iterations >= plain.Iterations {
		t.Errorf("preconditioned %d ≥ plain %d iterations", pre.Iterations, plain.Iterations)
	}
}

func TestPCGZeroRHS(t *testing.T) {
	a, _, _ := testSystem(10, 10, 6)
	b := make([]float64, 10)
	x := make([]float64, 10)
	x[3] = 5 // nonzero start must be wiped
	res := PCG(a, b, x, Identity{}, Options{})
	if !res.Converged {
		t.Fatal("zero RHS should converge immediately")
	}
	for i, v := range x {
		if v != 0 {
			t.Fatalf("x[%d] = %g, want 0", i, v)
		}
	}
}

func TestPCGWarmStart(t *testing.T) {
	a, b, want := testSystem(30, 40, 7)
	// Start from the exact solution: should converge in 0 iterations.
	x := append([]float64(nil), want...)
	res := PCG(a, b, x, Identity{}, Options{Tol: 1e-8})
	if !res.Converged || res.Iterations != 0 {
		t.Errorf("warm start took %d iterations", res.Iterations)
	}
}

func TestPCGRespectsMaxIter(t *testing.T) {
	g := gen.Grid2D(25, 25, 8)
	a := lap.Laplacian(g, lap.Shift(g, 1e-9))
	b := make([]float64, g.N)
	rng := rand.New(rand.NewSource(9))
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x := make([]float64, g.N)
	res := PCG(a, b, x, Identity{}, Options{Tol: 1e-14, MaxIter: 3})
	if res.Converged || res.Iterations != 3 {
		t.Errorf("expected early stop at 3 iterations, got %+v", res)
	}
}

func TestDirectFacade(t *testing.T) {
	a, b, want := testSystem(35, 50, 10)
	d, err := NewDirect(a)
	if err != nil {
		t.Fatal(err)
	}
	x := d.Solve(b)
	if e := relErr(x, want); e > 1e-8 {
		t.Errorf("direct solve error %g", e)
	}
	if d.MemBytes() <= 0 {
		t.Error("MemBytes not positive")
	}
}

func TestJacobiHandlesZeroDiagonal(t *testing.T) {
	tr := sparse.NewTriplet(2, 2)
	tr.Add(0, 0, 2)
	// (1,1) left structurally zero.
	a := tr.ToCSC()
	j := NewJacobi(a)
	z := make([]float64, 2)
	j.Apply(z, []float64{4, 3})
	if z[0] != 2 || z[1] != 3 {
		t.Errorf("Jacobi apply = %v", z)
	}
}
