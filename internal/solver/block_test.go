package solver

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/chol"
)

func TestPCGBlockMatchesScalarPerColumn(t *testing.T) {
	const n, s = 120, 5
	a, _, _ := testSystem(n, 200, 9)
	rng := rand.New(rand.NewSource(10))
	bs := make([][]float64, s)
	for k := range bs {
		bs[k] = make([]float64, n)
		for i := range bs[k] {
			bs[k][i] = rng.NormFloat64()
		}
	}
	f, err := chol.New(a, chol.Options{})
	if err != nil {
		t.Fatal(err)
	}
	precs := map[string]Preconditioner{
		"identity": Identity{},
		"jacobi":   NewJacobi(a),
		"chol":     NewCholPrecond(f),
	}
	for name, m := range precs {
		xs := make([][]float64, s)
		for k := range xs {
			xs[k] = make([]float64, n)
		}
		opts := Options{Tol: 1e-8}
		rs := PCGBlock(a, bs, xs, m, opts)
		for k := 0; k < s; k++ {
			x := make([]float64, n)
			r := PCG(a, bs[k], x, m, opts)
			if !rs[k].Converged || !r.Converged {
				t.Fatalf("%s col %d: block converged=%v scalar converged=%v", name, k, rs[k].Converged, r.Converged)
			}
			if d := rs[k].Iterations - r.Iterations; d < -1 || d > 1 {
				t.Errorf("%s col %d: block took %d iterations, scalar %d", name, k, rs[k].Iterations, r.Iterations)
			}
			if e := relErr(xs[k], x); e > 1e-6 {
				t.Errorf("%s col %d: block and scalar solutions differ by %g", name, k, e)
			}
			if rs[k].RelRes > opts.Tol {
				t.Errorf("%s col %d: block relres %g above tol", name, k, rs[k].RelRes)
			}
		}
	}
}

func TestPCGBlockDeflationMixedDifficulty(t *testing.T) {
	// One trivially easy column (b itself, solved near-instantly by the
	// exact factor at loose tolerance mixed with hard random columns at a
	// tight one would deflate; here mix a zero column with random ones so
	// per-column convergence bookkeeping and deflation repacking both
	// exercise: the zero column must come back as converged x=0 with 0
	// iterations while the others still solve to tolerance.
	const n, s = 80, 4
	a, _, _ := testSystem(n, 120, 21)
	rng := rand.New(rand.NewSource(22))
	bs := make([][]float64, s)
	for k := range bs {
		bs[k] = make([]float64, n)
		if k == 1 {
			continue // zero rhs
		}
		for i := range bs[k] {
			bs[k][i] = rng.NormFloat64()
		}
	}
	xs := make([][]float64, s)
	for k := range xs {
		xs[k] = make([]float64, n)
	}
	xs[1][0] = 123 // dirty start: the zero column must still return x = 0
	rs := PCGBlock(a, bs, xs, NewJacobi(a), Options{Tol: 1e-8})
	for k := 0; k < s; k++ {
		if !rs[k].Converged {
			t.Fatalf("col %d did not converge: %+v", k, rs[k])
		}
	}
	if rs[1].Iterations != 0 {
		t.Errorf("zero column took %d iterations", rs[1].Iterations)
	}
	for i := range xs[1] {
		if xs[1][i] != 0 {
			t.Fatalf("zero column solution nonzero at %d: %g", i, xs[1][i])
		}
	}
	for _, k := range []int{0, 2, 3} {
		x := make([]float64, n)
		r := PCG(a, bs[k], x, NewJacobi(a), Options{Tol: 1e-8})
		if d := rs[k].Iterations - r.Iterations; d < -1 || d > 1 {
			t.Errorf("col %d: block %d iterations vs scalar %d", k, rs[k].Iterations, r.Iterations)
		}
		if e := relErr(xs[k], x); e > 1e-6 {
			t.Errorf("col %d: solutions differ by %g", k, e)
		}
	}
}

func TestPCGBlockSingleColumnDegeneratesToScalar(t *testing.T) {
	const n = 60
	a, b, _ := testSystem(n, 90, 31)
	xs := [][]float64{make([]float64, n)}
	rs := PCGBlock(a, [][]float64{b}, xs, NewJacobi(a), Options{Tol: 1e-9})
	x := make([]float64, n)
	r := PCG(a, b, x, NewJacobi(a), Options{Tol: 1e-9})
	if rs[0] != r {
		t.Fatalf("single-column block result %+v differs from scalar %+v", rs[0], r)
	}
	for i := range x {
		if xs[0][i] != x[i] {
			t.Fatalf("single-column block solution differs at %d", i)
		}
	}
}

func TestPCGBlockCancellation(t *testing.T) {
	const n, s = 200, 3
	a, _, _ := testSystem(n, 300, 41)
	rng := rand.New(rand.NewSource(42))
	bs := make([][]float64, s)
	for k := range bs {
		bs[k] = make([]float64, n)
		for i := range bs[k] {
			bs[k][i] = rng.NormFloat64()
		}
	}
	xs := make([][]float64, s)
	for k := range xs {
		xs[k] = make([]float64, n)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rs := PCGBlock(a, bs, xs, Identity{}, Options{Tol: 1e-12, Ctx: ctx, CheckEvery: 1})
	for k, r := range rs {
		if r.Err == nil {
			t.Fatalf("col %d: expected context error", k)
		}
		if r.Converged {
			t.Fatalf("col %d: converged despite cancellation", k)
		}
	}
}

func TestDotLanesMatchesScalarDot(t *testing.T) {
	const n, s = 37, 6
	rng := rand.New(rand.NewSource(5))
	a := make([]float64, n*s)
	b := make([]float64, n*s)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64()
	}
	out := make([]float64, s)
	dotLanes(a, b, s, out)
	for k := 0; k < s; k++ {
		var want float64
		for i := 0; i < n; i++ {
			want += a[i*s+k] * b[i*s+k]
		}
		if math.Abs(out[k]-want) > 1e-12 {
			t.Fatalf("lane %d: %g vs %g", k, out[k], want)
		}
	}
}
