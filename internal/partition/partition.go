// Package partition implements spectral graph bipartitioning via the
// Fiedler vector (paper §4.3): vertices are split at the median Fiedler
// component, and partitions produced by different solvers are compared by
// the disagreement ratio the paper calls RelErr.
package partition

import "sort"

// Bipartition assigns each vertex 0 or 1 by splitting the Fiedler vector
// at its median, producing a balanced spectral cut.
func Bipartition(fiedler []float64) []int {
	n := len(fiedler)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return fiedler[idx[a]] < fiedler[idx[b]] })
	part := make([]int, n)
	for rank, v := range idx {
		if rank >= n/2 {
			part[v] = 1
		}
	}
	return part
}

// Disagreement returns the fraction of vertices assigned differently in a
// and b, minimized over the global label flip (a bipartition is only
// defined up to swapping sides). This is the paper's RelErr.
func Disagreement(a, b []int) float64 {
	if len(a) != len(b) {
		panic("partition: length mismatch")
	}
	if len(a) == 0 {
		return 0
	}
	diff := 0
	for i := range a {
		if a[i] != b[i] {
			diff++
		}
	}
	n := len(a)
	if n-diff < diff {
		diff = n - diff
	}
	return float64(diff) / float64(n)
}

// CutWeight returns the total weight of edges crossing the partition,
// given the edge list accessor (callback-style to avoid a graph import).
func CutWeight(part []int, forEachEdge func(fn func(u, v int, w float64))) float64 {
	var s float64
	forEachEdge(func(u, v int, w float64) {
		if part[u] != part[v] {
			s += w
		}
	})
	return s
}
