package partition

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBipartitionBalanced(t *testing.T) {
	f := []float64{-3, -1, 0.5, 2, 7, -0.2}
	p := Bipartition(f)
	ones := 0
	for _, v := range p {
		ones += v
	}
	if ones != 3 {
		t.Errorf("partition imbalance: %d ones of 6", ones)
	}
	// The three largest Fiedler values (2, 7, 0.5) land on side 1.
	if p[4] != 1 || p[3] != 1 || p[2] != 1 {
		t.Errorf("largest components not on side 1: %v", p)
	}
	if p[0] != 0 || p[1] != 0 {
		t.Errorf("smallest components not on side 0: %v", p)
	}
}

func TestDisagreementIdentityAndFlip(t *testing.T) {
	a := []int{0, 0, 1, 1, 0}
	if d := Disagreement(a, a); d != 0 {
		t.Errorf("self disagreement %g", d)
	}
	b := []int{1, 1, 0, 0, 1} // full flip — same bipartition
	if d := Disagreement(a, b); d != 0 {
		t.Errorf("flip disagreement %g, want 0", d)
	}
	c := []int{0, 0, 1, 1, 1} // one vertex moved
	if d := Disagreement(a, c); d != 0.2 {
		t.Errorf("one-off disagreement %g, want 0.2", d)
	}
}

func TestDisagreementSymmetricQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		a := make([]int, n)
		b := make([]int, n)
		for i := range a {
			a[i] = rng.Intn(2)
			b[i] = rng.Intn(2)
		}
		d1 := Disagreement(a, b)
		d2 := Disagreement(b, a)
		return d1 == d2 && d1 >= 0 && d1 <= 0.5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCutWeight(t *testing.T) {
	// Triangle 0-1-2 with part {0} vs {1,2}: edges (0,1) and (0,2) cross.
	part := []int{0, 1, 1}
	edges := [][3]float64{{0, 1, 2}, {1, 2, 5}, {0, 2, 3}}
	got := CutWeight(part, func(fn func(u, v int, w float64)) {
		for _, e := range edges {
			fn(int(e[0]), int(e[1]), e[2])
		}
	})
	if got != 5 {
		t.Errorf("cut weight %g, want 5", got)
	}
}
