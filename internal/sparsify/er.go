package sparsify

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"repro/internal/graph"
	"repro/internal/resist"
)

// erDefaultSketchScale and the clamps below size the sketch count when
// Options.ERSketches is unset: k = 1.5·log₂(n+1)·(0.5/ε)², clamped to
// [8, 64]. That is deliberately fewer sketches than a (1±ε) pointwise
// guarantee needs — importance sampling only consumes the *relative*
// magnitudes of the leverage scores, and constant-factor noise in the
// sampling distribution is absorbed by the reweighting — so the default
// buys speed; callers wanting estimator-grade resistances set
// ERSketches (or EREpsilon) explicitly.
const (
	erDefaultSketchScale = 1.5
	erMinSketches        = 8
	erMaxSketches        = 64
)

// erSolveTol is the PCG tolerance for sampling-grade sketch solves;
// sketching error dominates far above it.
const erSolveTol = 1e-4

// erMaxMultiplier caps the importance-sampling weight multiplier
// c/(q·p): sampled edges are never admitted above their original
// weight. The unbiased multiplier (≈ #cand/q for typical leverage) is
// actively harmful in the q ≪ n·log n regime this method runs in: the
// spanning tree is already kept at full weight, so inflating a sparse
// random complement to make E[L_P] match L_G plants high-eigenvalue
// outliers instead of closing the gap. Measured on PCG iterations,
// quality degrades monotonically as the cap loosens — three-community
// fixture: cap 1 → 38 iters, 2 → 46, 4 → 59, unclamped ~8 → 74+
// (trace reduction: 36); 600×600 grid: cap 1 → 151, 2 → 190,
// unclamped ~10 → 417 (trace: 48). Keeping sampled edges at original
// weight is both the best measured point and the defensible limit: the
// sparsifier is then a plain subgraph of G, so L_P ⪯ L_G and the
// preconditioned spectrum is one-sided.
const erMaxMultiplier = 1.0

// erSketchCount resolves the sketch count for sampling-grade estimates.
func erSketchCount(n int, o Options) int {
	if o.ERSketches > 0 {
		return o.ERSketches
	}
	eps := o.EREpsilon
	if eps <= 0 {
		eps = resist.DefaultEpsilon
	}
	scale := (resist.DefaultEpsilon / eps) * (resist.DefaultEpsilon / eps)
	k := int(math.Ceil(erDefaultSketchScale * math.Log2(float64(n+1)) * scale))
	if k < erMinSketches {
		k = erMinSketches
	}
	if k > erMaxSketches {
		k = erMaxSketches
	}
	return k
}

// erEstimate runs the sketch estimator with the options' ER settings,
// recording time and solve telemetry into st.
func erEstimate(ctx context.Context, g *graph.Graph, o Options, st *Stats) (*resist.Result, error) {
	t0 := time.Now()
	est, err := resist.Estimate(ctx, g, resist.Options{
		Sketches: erSketchCount(g.N, o),
		Epsilon:  o.EREpsilon,
		Tol:      erSolveTol,
		Workers:  o.Workers,
		Seed:     o.Seed,
		ShiftRel: o.ShiftRel,
		Assign:   o.erAssign,
	})
	if err != nil {
		return nil, err
	}
	st.ERTime += time.Since(t0)
	st.ERSketches += est.Sketches
	st.ERIterations += est.Iterations
	return est, nil
}

// runER is Spielman–Srivastava effective-resistance sampling: estimate
// R_eff per edge with JL sketches, then draw q = budget systematic
// samples from the off-tree edges with probability proportional to the
// leverage score w·R_eff, admitting each sampled edge at weight
// w·min(c/(q·p), erMaxMultiplier) (c its hit count). The spanning tree
// is always kept at original weight, so the connectivity sentinels of
// the rest of the stack hold unconditionally; the sampled complement
// concentrates on the highest-leverage off-tree edges, which is what
// makes the sparsifier a preconditioner.
func runER(ctx context.Context, g *graph.Graph, res *Result, budget int, o Options) error {
	est, err := erEstimate(ctx, g, o, &res.Stats)
	if err != nil {
		return fmt.Errorf("sparsify: er: %w", err)
	}
	res.Stats.Rounds = 1

	cand := offSubgraphEdges(g, res.InSub)
	if budget <= 0 || len(cand) == 0 {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("sparsify: er: %w", err)
	}

	// Cumulative leverage-score masses over the candidate pool.
	cum := make([]float64, len(cand))
	total := 0.0
	for i, e := range cand {
		s := g.Edges[e].W * est.R[e]
		if s < 0 || math.IsNaN(s) {
			s = 0
		}
		total += s
		cum[i] = total
	}
	if total <= 0 {
		// Degenerate pool (all sketched resistances zero); keep the
		// tree-only sparsifier rather than sampling uniformly from
		// noise.
		return nil
	}

	// Systematic sampling: q strides through the cumulative mass from a
	// single random offset. Each candidate's inclusion probability is
	// still exactly proportional to its leverage score, but the draws
	// are maximally spread over the pool instead of iid — on mesh-like
	// graphs (candidates laid out in index order) that yields a
	// spatially even complement without the Poisson clumps and gaps of
	// independent draws, which measurably strengthens the
	// preconditioner for the same edge budget.
	q := budget
	rng := rand.New(rand.NewSource(o.Seed*1_000_003 + 0x5eed))
	offset := rng.Float64()
	stride := total / float64(q)
	counts := make(map[int]int, q)
	for t := 0; t < q; t++ {
		x := (float64(t) + offset) * stride
		i := sort.SearchFloat64s(cum, x)
		if i >= len(cand) {
			i = len(cand) - 1
		}
		counts[i]++
	}

	res.Reweight = make([]float64, g.M())
	added := 0
	for i, c := range counts {
		e := cand[i]
		mass := cum[i]
		if i > 0 {
			mass -= cum[i-1]
		}
		p := mass / total
		if p <= 0 {
			continue
		}
		mult := float64(c) / (float64(q) * p)
		if mult > erMaxMultiplier {
			mult = erMaxMultiplier
		}
		res.InSub[e] = true
		res.Reweight[e] = g.Edges[e].W * mult
		added++
	}
	res.Stats.EdgesAdded = added
	return nil
}

// erPrefilter keeps the `keep` candidates with the highest sketched
// leverage scores w·R_eff (ties broken by edge index for determinism),
// in candidate order. It is the ERRanking hook inside the
// trace-reduction densification rounds: eq. (20) scoring is the
// dominant cost of a round, and leverage scores are a cheap, spectrally
// meaningful predictor of which candidates can matter.
func erPrefilter(g *graph.Graph, cand []int, r []float64, keep int) []int {
	if keep >= len(cand) {
		return cand
	}
	order := make([]int, len(cand))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		sa := g.Edges[cand[order[a]]].W * r[cand[order[a]]]
		sb := g.Edges[cand[order[b]]].W * r[cand[order[b]]]
		if sa != sb {
			return sa > sb
		}
		return cand[order[a]] < cand[order[b]]
	})
	sel := order[:keep]
	sort.Ints(sel)
	out := make([]int, keep)
	for i, oi := range sel {
		out[i] = cand[oi]
	}
	return out
}
