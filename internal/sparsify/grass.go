package sparsify

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/chol"
	"repro/internal/graph"
	"repro/internal/lap"
	"repro/internal/tree"
)

// runGRASS reimplements the GRASS baseline [8]: spectral criticality by
// t-step power iteration h_t = (L_S⁻¹ L_G)ᵗ h_0 (eq. 2), edge score
// w_pq (h_tᵀ e_pq)² (eq. 3) summed over several random probe vectors, with
// the same iterative densification and per-round edge quota as the
// proposed method (matching the paper's experimental setup).
//
// Redundancy control: published GRASS includes its own similarity-aware
// edge filtering [7], reproduced here as the endpoint-ball excluder. The
// stronger feGRASS path-corridor exclusion is reserved for the proposed
// method (the paper credits that combination as contribution 3); use
// Options.WithGRASSExclusion for the hybrid in ablation studies.
func runGRASS(ctx context.Context, g *graph.Graph, st *tree.Tree, res *Result, budget int, o Options) error {
	perRound := budget / o.Rounds
	if perRound == 0 {
		perRound = budget
	}
	excl := newBallExcluder(g, st, o.SimilarityHops)
	if o.grassExclusion {
		excl = newExcluder(g, st, o.SimilarityHops)
	}
	rng := rand.New(rand.NewSource(o.Seed + 101))
	lg := lap.Laplacian(g, res.Shift)

	for iter := 1; iter <= o.Rounds && res.Stats.EdgesAdded < budget; iter++ {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("sparsify: GRASS round %d: %w", iter, err)
		}
		quota := perRound
		if remaining := budget - res.Stats.EdgesAdded; iter == o.Rounds || quota > remaining {
			quota = remaining
		}
		t0 := time.Now()
		ls := lap.Laplacian(subgraphView(g, res.InSub), res.Shift)
		f, err := chol.New(ls, chol.Options{})
		if err != nil {
			return fmt.Errorf("sparsify: GRASS round %d factorization: %w", iter, err)
		}
		res.Stats.FactorTime += time.Since(t0)

		t0 = time.Now()
		// Dominant generalized eigenvector estimates via power iteration.
		hs := make([][]float64, o.PowerVectors)
		y := make([]float64, g.N)
		for v := range hs {
			h := make([]float64, g.N)
			for i := range h {
				h[i] = rng.NormFloat64()
			}
			for t := 0; t < o.PowerSteps; t++ {
				lg.MulVec(h, y)
				f.SolveTo(h, y)
				normalizeVec(h)
			}
			hs[v] = h
		}
		cand := offSubgraphEdges(g, res.InSub)
		scores := make([]float64, len(cand))
		for i, e := range cand {
			if i%cancelCheckStride == 0 {
				if err := ctx.Err(); err != nil {
					return fmt.Errorf("sparsify: GRASS round %d: %w", iter, err)
				}
			}
			ed := g.Edges[e]
			var s float64
			for _, h := range hs {
				d := h[ed.U] - h[ed.V]
				s += d * d
			}
			scores[i] = ed.W * s
		}
		res.Stats.ScoreTime += time.Since(t0)

		added := selectEdges(g, res, excl, cand, scores, quota)
		res.Stats.EdgesAdded += added
		res.Stats.Rounds = iter
		if added == 0 {
			break
		}
	}
	return nil
}

func normalizeVec(x []float64) {
	var s float64
	for _, v := range x {
		s += v * v
	}
	s = math.Sqrt(s)
	if s == 0 {
		return
	}
	for i := range x {
		x[i] /= s
	}
}
