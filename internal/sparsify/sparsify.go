// Package sparsify implements the paper's contribution: graph spectral
// sparsification via approximate trace reduction (Algorithm 2), together
// with the two baselines the evaluation compares against — GRASS [8]
// (spectral perturbation analysis) and feGRASS [13] (tree effective
// resistance).
//
// The driver follows Algorithm 2: extract a low-stretch spanning tree
// (MEWST), score every off-tree edge with the *truncated trace reduction*
// (eq. 15, exact on trees via offline LCA and BFS voltage propagation), then
// run N_r−1 densification rounds in which the current subgraph's Laplacian
// is factorized, a sparse approximate inverse of the Cholesky factor is
// built (Algorithm 1), and off-subgraph edges are re-scored with eq. (20).
// After each selection, edges spectrally similar to a recovered edge are
// excluded for the rest of the round (strategy of [13]).
package sparsify

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/chol"
	"repro/internal/graph"
	"repro/internal/lap"
	"repro/internal/resist"
	"repro/internal/spai"
	"repro/internal/tree"
)

// Method selects the spectral criticality metric.
type Method int

const (
	// TraceReduction is the paper's metric (Algorithm 2).
	TraceReduction Method = iota
	// GRASS is the spectral-perturbation baseline of [8].
	GRASS
	// FeGRASS is the tree effective-resistance baseline of [13]
	// (single-round, no densification).
	FeGRASS
	// ER is Spielman–Srivastava effective-resistance sampling
	// (arXiv:0803.0929): estimate R_eff per edge with JL sketches
	// solved through the PCG stack (internal/resist), then
	// importance-sample off-tree edges proportional to w·R_eff with
	// weight reweighting, always keeping the spanning tree. A
	// single-round quality-vs-speed dial against trace reduction.
	ER
)

func (m Method) String() string {
	switch m {
	case TraceReduction:
		return "trace-reduction"
	case GRASS:
		return "grass"
	case FeGRASS:
		return "fegrass"
	case ER:
		return "er"
	}
	return "unknown"
}

// ParseMethod resolves a user-facing method name — as accepted by the
// CLI flags and the /v2 `method=` query parameter — to a Method.
func ParseMethod(s string) (Method, error) {
	switch s {
	case "trace", "trace-reduction":
		return TraceReduction, nil
	case "grass":
		return GRASS, nil
	case "fegrass":
		return FeGRASS, nil
	case "er", "effective-resistance":
		return ER, nil
	}
	return 0, fmt.Errorf("sparsify: unknown method %q (want trace, grass, fegrass, or er)", s)
}

// Options configures Sparsify. Zero values select the paper's defaults.
type Options struct {
	Method Method

	// Alpha is the fraction of |V| off-tree edges to recover (paper: 0.10).
	Alpha float64
	// Rounds is the number of densification iterations N_r (paper: 5).
	Rounds int
	// Beta is the BFS truncation depth β of eq. (12) (paper: 5).
	Beta int
	// Delta is the SPAI pruning threshold δ of Algorithm 1 (paper: 0.1).
	Delta float64
	// SimilarityHops is the BFS radius γ used to mark edges spectrally
	// similar to a recovered edge for exclusion; 0 keeps the default (2),
	// negative disables exclusion entirely.
	SimilarityHops int
	// PowerSteps is the number t of power-iteration steps for GRASS
	// (default 2); PowerVectors the number of random probe vectors
	// (default 3).
	PowerSteps   int
	PowerVectors int
	// ShiftRel scales the shared diagonal regularization (default
	// lap.DefaultShiftRel).
	ShiftRel float64
	// Workers bounds scoring parallelism (default GOMAXPROCS).
	Workers int
	// Seed drives every random choice, making runs reproducible.
	Seed int64

	// ERSketches is the JL sketch count for the ER method and for
	// ERRanking (0 derives it from EREpsilon and the graph size; see
	// internal/resist). More sketches sharpen the resistance estimates
	// at one extra linear solve each.
	ERSketches int
	// EREpsilon is the target relative accuracy of the sketched
	// resistances (default resist.DefaultEpsilon = 0.5). Only
	// consulted when ERSketches is unset.
	EREpsilon float64
	// ERRanking, with the TraceReduction method, prefilters each
	// densification round's candidate pool to the edges with the
	// highest sketched leverage scores w·R_eff before the expensive
	// eq. (20) scoring — the ER subsystem reused as a ranking stage, a
	// speed dial that trades a few sketch solves for a much smaller
	// scoring pool.
	ERRanking bool

	// grassExclusion lets ablation studies hand the GRASS baseline the
	// feGRASS similarity exclusion the published algorithm lacks
	// (see WithGRASSExclusion).
	grassExclusion bool

	// erAssign is a per-vertex cluster assignment handed down by the
	// handle layer so the ER sketch solves run under the two-level
	// Schwarz preconditioner instead of a monolithic factorization of
	// L_G (see WithERAssign). It never enters cluster fingerprints:
	// the assignment changes how the sketch systems are solved, not
	// what they estimate.
	erAssign []int
}

// WithERAssign returns a copy of o whose ER sketch solves use the
// two-level Schwarz preconditioner over the given per-vertex cluster
// assignment — in practice a shard plan computed by the caller. The
// core layer sets it for large monolithic ER (and ERRanking) builds;
// per-cluster builds leave it nil and factorize the small local
// Laplacian directly.
func (o Options) WithERAssign(assign []int) Options {
	o.erAssign = assign
	return o
}

// WithGRASSExclusion returns a copy of o in which the GRASS baseline also
// uses the similarity exclusion; used by the ablation benchmarks.
func (o Options) WithGRASSExclusion() Options {
	o.grassExclusion = true
	return o
}

func (o Options) withDefaults() Options {
	if o.Alpha <= 0 {
		o.Alpha = 0.10
		if o.Method == ER {
			// Sampled edges carry capped importance weights and land
			// wherever the leverage mass puts them, so each one buys
			// less preconditioning than a trace-chosen edge; sampling
			// is also orders of magnitude cheaper than eq. (20)
			// scoring. MethodER therefore defaults to twice the edge
			// budget — the dial trades a denser sparsifier for a much
			// faster build (see TUNING.md for measured points).
			o.Alpha = 0.20
		}
	}
	if o.Rounds <= 0 {
		o.Rounds = 5
	}
	if o.Beta <= 0 {
		o.Beta = 5
	}
	if o.Delta <= 0 {
		o.Delta = 0.1
	}
	if o.SimilarityHops == 0 {
		o.SimilarityHops = 2
	}
	if o.PowerSteps <= 0 {
		o.PowerSteps = 2
	}
	if o.PowerVectors <= 0 {
		o.PowerVectors = 3
	}
	if o.ShiftRel <= 0 {
		o.ShiftRel = lap.DefaultShiftRel
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.EREpsilon <= 0 {
		o.EREpsilon = resist.DefaultEpsilon
	}
	return o
}

// Stats captures where sparsification time went and what happened.
type Stats struct {
	TreeTime   time.Duration
	ScoreTime  time.Duration
	FactorTime time.Duration
	Total      time.Duration
	Rounds     int
	EdgesAdded int
	SPAINnz    []int // Z̃ nonzeros per general round (diagnostic)

	// ERTime is the time spent in sketch-based effective-resistance
	// estimation (the ER method, or ERRanking under trace reduction);
	// ERSketches and ERIterations record how many sketch columns were
	// solved and the PCG iterations they cost.
	ERTime       time.Duration
	ERSketches   int
	ERIterations int
}

// Result is a computed sparsifier.
type Result struct {
	// Sparsifier is the subgraph P over the same vertex set.
	Sparsifier *graph.Graph
	// EdgeIdx lists the G edge indices included in P (tree + recovered).
	EdgeIdx []int
	// InSub flags each G edge's membership in P.
	InSub []bool
	// Tree is the initial spanning tree.
	Tree *tree.Tree
	// Shift is the shared diagonal regularization used during
	// construction; reuse it when building the (L_G, L_P) pencil.
	Shift []float64
	// Reweight, when non-nil, is a per-G-edge weight override (aligned
	// with g.Edges; 0 keeps the original weight). The ER method sets it
	// for importance-sampled edges — a sampled edge carries weight
	// w·c/(q·p) so the sparsifier's Laplacian stays an unbiased
	// estimate of L_G — and Sparsifier is assembled with these weights.
	// Tree and recovered cut edges keep their original weights.
	Reweight []float64
	Stats    Stats
	// Shards is per-shard telemetry when the result came out of the
	// partition-parallel sharded pipeline (internal/shard); nil for a
	// monolithic build.
	Shards *ShardStats
}

// Sparsify runs the configured sparsification algorithm on g.
// The graph must be connected.
func Sparsify(g *graph.Graph, opts Options) (*Result, error) {
	return SparsifyContext(context.Background(), g, opts)
}

// SparsifyContext is Sparsify with cancellation: ctx is polled before the
// spanning tree extraction, at every densification round boundary, and
// every few hundred candidates inside the parallel scoring loops, so a
// canceled context abandons construction promptly instead of finishing a
// multi-second build nobody is waiting for. On cancellation it returns the
// context error (wrapped) and a nil result.
func SparsifyContext(ctx context.Context, g *graph.Graph, opts Options) (*Result, error) {
	o := opts.withDefaults()
	start := time.Now()

	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("sparsify: %w", err)
	}

	t0 := time.Now()
	st, err := tree.MEWST(g)
	if err != nil {
		return nil, fmt.Errorf("sparsify: %w", err)
	}
	treeTime := time.Since(t0)

	budget := int(o.Alpha * float64(g.N))
	if budget > g.M()-len(st.EdgeIdx) {
		budget = g.M() - len(st.EdgeIdx)
	}

	res := &Result{
		Tree:  st,
		InSub: append([]bool(nil), st.InTree...),
		Shift: lap.Shift(g, o.ShiftRel),
	}
	res.Stats.TreeTime = treeTime

	switch o.Method {
	case TraceReduction:
		err = runTraceReduction(ctx, g, st, res, budget, o)
	case GRASS:
		err = runGRASS(ctx, g, st, res, budget, o)
	case FeGRASS:
		err = runFeGRASS(ctx, g, st, res, budget, o)
	case ER:
		err = runER(ctx, g, res, budget, o)
	default:
		err = fmt.Errorf("sparsify: unknown method %d", o.Method)
	}
	if err != nil {
		return nil, err
	}

	res.EdgeIdx = res.EdgeIdx[:0]
	for i, in := range res.InSub {
		if in {
			res.EdgeIdx = append(res.EdgeIdx, i)
		}
	}
	res.Sparsifier = WeightedSubgraph(g, res.EdgeIdx, res.Reweight)
	res.Stats.Total = time.Since(start)
	return res, nil
}

// WeightedSubgraph builds the subgraph over g's vertex set containing
// the listed edges, honoring per-edge weight overrides (nil or zero
// entries keep the original weight). With no overrides it is exactly
// g.Subgraph; the ER method and the sharded stitch use it to assemble
// reweighted sparsifiers.
func WeightedSubgraph(g *graph.Graph, edgeIdx []int, reweight []float64) *graph.Graph {
	if reweight == nil {
		return g.Subgraph(edgeIdx)
	}
	edges := make([]graph.Edge, len(edgeIdx))
	for i, e := range edgeIdx {
		ed := g.Edges[e]
		if w := reweight[e]; w > 0 {
			ed.W = w
		}
		edges[i] = ed
	}
	// g.Edges is already normalized (U < V, deduplicated), so the copy
	// qualifies for the validation-free constructor and edge order is
	// preserved exactly.
	return graph.FromNormalized(g.N, edges)
}

// erRankKeepFactor and erRankKeepMin bound the ERRanking prefilter:
// each densification round scores only the top keep = max(8·quota,
// 1024) candidates by sketched leverage score instead of the whole
// off-subgraph pool.
const (
	erRankKeepFactor = 8
	erRankKeepMin    = 1024
)

// runTraceReduction is Algorithm 2.
func runTraceReduction(ctx context.Context, g *graph.Graph, st *tree.Tree, res *Result, budget int, o Options) error {
	perRound := budget / o.Rounds
	if perRound == 0 {
		perRound = budget
	}
	excl := newExcluder(g, st, o.SimilarityHops)

	// With ERRanking, sketch the leverage scores once up front; the
	// densification rounds use them to shrink the eq. (20) scoring pool.
	var erScores *resist.Result
	if o.ERRanking {
		var err error
		erScores, err = erEstimate(ctx, g, o, &res.Stats)
		if err != nil {
			return fmt.Errorf("sparsify: er ranking: %w", err)
		}
	}

	// Round 1: exact truncated trace reduction on the tree (eq. 15).
	t0 := time.Now()
	cand := offSubgraphEdges(g, res.InSub)
	scores, err := scoreTreePhase(ctx, g, st, cand, o)
	if err != nil {
		return fmt.Errorf("sparsify: %w", err)
	}
	res.Stats.ScoreTime += time.Since(t0)
	added := selectEdges(g, res, excl, cand, scores, perRound)
	res.Stats.EdgesAdded += added
	res.Stats.Rounds = 1

	// Rounds 2..N_r: general subgraph via Cholesky + SPAI (eq. 20).
	for iter := 2; iter <= o.Rounds && res.Stats.EdgesAdded < budget; iter++ {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("sparsify: round %d: %w", iter, err)
		}
		remaining := budget - res.Stats.EdgesAdded
		quota := perRound
		if iter == o.Rounds || quota > remaining {
			quota = remaining
		}
		t0 = time.Now()
		ls := lap.Laplacian(subgraphView(g, res.InSub), res.Shift)
		f, err := chol.New(ls, chol.Options{})
		if err != nil {
			return fmt.Errorf("sparsify: factorizing round-%d subgraph: %w", iter, err)
		}
		z := spai.Compute(f.L, o.Delta)
		res.Stats.FactorTime += time.Since(t0)
		res.Stats.SPAINnz = append(res.Stats.SPAINnz, z.NNZ())

		t0 = time.Now()
		cand = offSubgraphEdges(g, res.InSub)
		if erScores != nil {
			keep := erRankKeepFactor * quota
			if keep < erRankKeepMin {
				keep = erRankKeepMin
			}
			cand = erPrefilter(g, cand, erScores.R, keep)
		}
		scores, err = scoreGeneralPhase(ctx, g, res.InSub, f, z, cand, o)
		if err != nil {
			return fmt.Errorf("sparsify: round %d: %w", iter, err)
		}
		res.Stats.ScoreTime += time.Since(t0)
		added = selectEdges(g, res, excl, cand, scores, quota)
		res.Stats.EdgesAdded += added
		res.Stats.Rounds = iter
		if added == 0 {
			break
		}
	}
	return nil
}

// offSubgraphEdges lists G edge indices currently outside the subgraph.
func offSubgraphEdges(g *graph.Graph, inSub []bool) []int {
	out := make([]int, 0, g.M())
	for i := range g.Edges {
		if !inSub[i] {
			out = append(out, i)
		}
	}
	return out
}

// subgraphView builds the subgraph over the same vertex set containing the
// flagged edges.
func subgraphView(g *graph.Graph, inSub []bool) *graph.Graph {
	idx := make([]int, 0)
	for i, in := range inSub {
		if in {
			idx = append(idx, i)
		}
	}
	return g.Subgraph(idx)
}

// selectEdges adds up to quota candidate edges in descending score order,
// skipping excluded (spectrally similar) ones and marking the neighborhoods
// of every recovered edge. Returns the number of edges added.
func selectEdges(g *graph.Graph, res *Result, excl *excluder, cand []int, scores []float64, quota int) int {
	order := make([]int, len(cand))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if scores[order[a]] != scores[order[b]] {
			return scores[order[a]] > scores[order[b]]
		}
		return cand[order[a]] < cand[order[b]]
	})
	excl.beginRound(res.InSub)
	added := 0
	for _, oi := range order {
		if added >= quota {
			break
		}
		e := cand[oi]
		if scores[oi] <= 0 {
			break
		}
		ed := g.Edges[e]
		if excl.isExcluded(ed.U, ed.V) {
			continue
		}
		res.InSub[e] = true
		added++
		excl.markSimilar(ed.U, ed.V)
	}
	// Exclusion can saturate on dense graphs (every candidate's endpoints
	// end up inside serviced corridors). The edge budget is a contract —
	// Table 1 compares methods at identical sparsifier sizes — so top up
	// from the skipped candidates in score order.
	if added < quota {
		for _, oi := range order {
			if added >= quota {
				break
			}
			e := cand[oi]
			if scores[oi] <= 0 {
				break
			}
			if !res.InSub[e] {
				res.InSub[e] = true
				added++
			}
		}
	}
	return added
}

// cancelCheckStride is how many loop iterations run between context polls
// inside the parallel scoring loops; it bounds cancellation latency by a
// few hundred candidate scorings per worker.
const cancelCheckStride = 256

// parallelFor runs fn(i) for i in [0, n) across the configured workers,
// polling ctx every cancelCheckStride iterations per worker. Each worker
// receives a distinct worker id for scratch-space ownership. It returns the
// context error if the loop was abandoned early (some fn calls skipped).
func parallelFor(ctx context.Context, n, workers int, fn func(worker, i int)) error {
	if workers <= 1 || n < 64 {
		for i := 0; i < n; i++ {
			if i%cancelCheckStride == 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			fn(0, i)
		}
		return nil
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(worker, lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				if (i-lo)%cancelCheckStride == 0 && ctx.Err() != nil {
					return
				}
				fn(worker, i)
			}
		}(w, lo, hi)
	}
	wg.Wait()
	return ctx.Err()
}
