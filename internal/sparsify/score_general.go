package sparsify

import (
	"context"

	"repro/internal/chol"
	"repro/internal/graph"
	"repro/internal/spai"
)

// scoreGeneralPhase computes the approximate truncated trace reduction
// (eq. 20) of every candidate off-subgraph edge with respect to a general
// subgraph S, using the sparse approximate inverse Z̃ ≈ L⁻¹ of S's Cholesky
// factor: e_ijᵀ L_S⁻¹ e_pq ≈ (z̃_i − z̃_j)ᵀ (z̃_p − z̃_q) and
// R_S(p,q) ≈ ‖z̃_p − z̃_q‖².
func scoreGeneralPhase(ctx context.Context, g *graph.Graph, inSub []bool, f *chol.Factor, z *spai.ApproxInv,
	cand []int, o Options) ([]float64, error) {

	scores := make([]float64, len(cand))
	scratches := make([]*genScratch, o.Workers)
	for w := range scratches {
		scratches[w] = newGenScratch(g.N, g.M())
	}
	err := parallelFor(ctx, len(cand), o.Workers, func(worker, i int) {
		sc := scratches[worker]
		e := cand[i]
		ed := g.Edges[e]
		scores[i] = sc.score(g, inSub, f, z, ed.U, ed.V, ed.W, o.Beta)
	})
	if err != nil {
		return nil, err
	}
	return scores, nil
}

// genScratch is per-worker reusable state for general-phase scoring.
type genScratch struct {
	cur            int32
	stampP, stampQ []int32
	edgeStamp      []int32
	acc            []float64
	touched        []int32
	nodesP         []int32
	frontier, next []int32
}

func newGenScratch(n, m int) *genScratch {
	return &genScratch{
		stampP:    make([]int32, n),
		stampQ:    make([]int32, n),
		edgeStamp: make([]int32, m),
		acc:       make([]float64, n),
	}
}

func (sc *genScratch) score(g *graph.Graph, inSub []bool, f *chol.Factor, z *spai.ApproxInv,
	p, q int, w float64, beta int) float64 {

	sc.cur++
	// Scatter z̃_p − z̃_q (permuted indices) into the dense accumulator.
	pp, qp := f.PermutedIndex(p), f.PermutedIndex(q)
	sc.touched = z.ScatterDiff(pp, qp, sc.acc, sc.touched[:0])
	r := spai.NormSq(sc.acc, sc.touched)

	// β-layer BFS in the current subgraph from both endpoints.
	sc.nodesP = sc.nodesP[:0]
	sc.bfs(g, inSub, p, beta, sc.stampP, &sc.nodesP)
	sc.bfs(g, inSub, q, beta, sc.stampQ, nil)

	// Σ over graph edges between the two neighborhoods (eq. 20).
	var sum float64
	for _, i32 := range sc.nodesP {
		i := int(i32)
		ip := f.PermutedIndex(i)
		for ap := g.AdjStart[i]; ap < g.AdjStart[i+1]; ap++ {
			j := g.AdjTarget[ap]
			if sc.stampQ[j] != sc.cur {
				continue
			}
			e := g.AdjEdge[ap]
			if sc.edgeStamp[e] == sc.cur {
				continue
			}
			sc.edgeStamp[e] = sc.cur
			d := z.DotDiff(ip, f.PermutedIndex(j), sc.acc)
			sum += g.Edges[e].W * d * d
		}
	}
	spai.ClearScatter(sc.acc, sc.touched)
	return w * sum / (1 + w*r)
}

// bfs explores the subgraph (edges with inSub set) from src for at most
// beta layers, stamping visited vertices and optionally collecting them.
func (sc *genScratch) bfs(g *graph.Graph, inSub []bool, src, beta int, stamp []int32, nodes *[]int32) {
	cur := sc.cur
	stamp[src] = cur
	if nodes != nil {
		*nodes = append(*nodes, int32(src))
	}
	sc.frontier = append(sc.frontier[:0], int32(src))
	for layer := 0; layer < beta && len(sc.frontier) > 0; layer++ {
		sc.next = sc.next[:0]
		for _, u32 := range sc.frontier {
			u := int(u32)
			for ap := g.AdjStart[u]; ap < g.AdjStart[u+1]; ap++ {
				if !inSub[g.AdjEdge[ap]] {
					continue
				}
				v := g.AdjTarget[ap]
				if stamp[v] == cur {
					continue
				}
				stamp[v] = cur
				if nodes != nil {
					*nodes = append(*nodes, int32(v))
				}
				sc.next = append(sc.next, int32(v))
			}
		}
		sc.frontier, sc.next = sc.next, sc.frontier
	}
}
