package sparsify

import (
	"context"
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/tree"
)

func TestSparsifyTrivialGraphs(t *testing.T) {
	// Single edge: the tree is the whole graph; nothing to recover.
	g := graph.MustNew(2, []graph.Edge{{U: 0, V: 1, W: 1}})
	res, err := Sparsify(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.EdgeIdx) != 1 || res.Stats.EdgesAdded != 0 {
		t.Errorf("edges=%d added=%d", len(res.EdgeIdx), res.Stats.EdgesAdded)
	}

	// Triangle: one off-tree edge, tiny budget.
	tri := graph.MustNew(3, []graph.Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}, {U: 0, V: 2, W: 1},
	})
	res, err = Sparsify(tri, Options{Alpha: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.EdgeIdx) < 2 {
		t.Error("triangle sparsifier lost tree edges")
	}
}

func TestSparsifyTreeInputIsIdentity(t *testing.T) {
	// A graph that already is a tree has no off-tree edges; the sparsifier
	// must be the graph itself for every method.
	g := gen.RandomConnected(40, 0, 3)
	for _, m := range []Method{TraceReduction, GRASS, FeGRASS} {
		res, err := Sparsify(g, Options{Method: m, Seed: 1})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if len(res.EdgeIdx) != g.M() {
			t.Errorf("%v: %d edges, want %d", m, len(res.EdgeIdx), g.M())
		}
	}
}

func TestSparsifyCompleteGraph(t *testing.T) {
	// Dense input: still must produce tree + α·n edges and stay connected.
	g := gen.Complete(40)
	res, err := Sparsify(g, Options{Alpha: 0.2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := 39 + 8
	if len(res.EdgeIdx) != want {
		t.Errorf("%d edges, want %d", len(res.EdgeIdx), want)
	}
	if !res.Sparsifier.Connected() {
		t.Error("disconnected")
	}
}

func TestSparsifyHugeAlphaTakesEverything(t *testing.T) {
	g := gen.RandomConnected(30, 60, 4)
	res, err := Sparsify(g, Options{Alpha: 100, Seed: 1, SimilarityHops: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.EdgeIdx) != g.M() {
		t.Errorf("α≫1 should recover all edges: %d of %d", len(res.EdgeIdx), g.M())
	}
}

func TestSparsifyExtremeWeightContrast(t *testing.T) {
	// Weights spanning 12 orders of magnitude must not break the scoring
	// (no NaN/Inf scores, factorization stays PD).
	edges := []graph.Edge{}
	n := 50
	for i := 0; i+1 < n; i++ {
		w := 1e-6
		if i%2 == 0 {
			w = 1e6
		}
		edges = append(edges, graph.Edge{U: i, V: i + 1, W: w})
	}
	for i := 0; i+10 < n; i += 5 {
		edges = append(edges, graph.Edge{U: i, V: i + 10, W: 1})
	}
	g := graph.MustNew(n, edges)
	res, err := Sparsify(g, Options{Alpha: 0.1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Sparsifier.Connected() {
		t.Error("disconnected under extreme contrast")
	}
}

func TestScoresAreFinite(t *testing.T) {
	g := gen.Tri2D(15, 15, 6)
	st := mustTree(t, g)
	o := Options{Workers: 2}.withDefaults()
	scores := mustScore(scoreTreePhase(context.Background(), g, st, st.OffTreeEdges(), o))
	for i, s := range scores {
		if math.IsNaN(s) || math.IsInf(s, 0) || s < 0 {
			t.Fatalf("score[%d] = %g", i, s)
		}
	}
}

func TestGRASSExclusionAblation(t *testing.T) {
	// The hybrid (GRASS metric + corridor exclusion) must be roughly as
	// good as plain GRASS on a mesh — the ablation DESIGN.md calls out.
	// Kept small: the oracle is a dense inverse.
	g := gen.Tri2D(14, 14, 7)
	plain, err := Sparsify(g, Options{Method: GRASS, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	hybrid, err := Sparsify(g, Options{Method: GRASS, Seed: 3}.WithGRASSExclusion())
	if err != nil {
		t.Fatal(err)
	}
	shift := tinyShift(g.N)
	trPlain, err := ExactTrace(g, plain.InSub, shift)
	if err != nil {
		t.Fatal(err)
	}
	trHybrid, err := ExactTrace(g, hybrid.InSub, shift)
	if err != nil {
		t.Fatal(err)
	}
	// Allow 15% slack; the hybrid should not be substantially worse.
	if trHybrid > 1.15*trPlain {
		t.Errorf("hybrid trace %g much worse than plain %g", trHybrid, trPlain)
	}
}

func TestWorkersDoNotChangeScores(t *testing.T) {
	g := gen.Tri2D(20, 20, 8)
	st := mustTree(t, g)
	cand := st.OffTreeEdges()
	o1 := Options{Workers: 1}.withDefaults()
	o8 := Options{Workers: 8}.withDefaults()
	s1 := mustScore(scoreTreePhase(context.Background(), g, st, cand, o1))
	s8 := mustScore(scoreTreePhase(context.Background(), g, st, cand, o8))
	for i := range s1 {
		if s1[i] != s8[i] {
			t.Fatalf("score[%d] differs across worker counts: %g vs %g", i, s1[i], s8[i])
		}
	}
}

func mustTree(t *testing.T, g *graph.Graph) *tree.Tree {
	t.Helper()
	st, err := tree.MEWST(g)
	if err != nil {
		t.Fatal(err)
	}
	return st
}
