package sparsify

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/chol"
	"repro/internal/dense"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/lap"
	"repro/internal/spai"
	"repro/internal/tree"
)

// tinyShift returns a near-zero shared shift for oracle comparisons.
func tinyShift(n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = 1e-8
	}
	return s
}

// exactTrRedFormula evaluates eq. (11) densely:
// w Σ_(i,j)∈E w_ij (e_ijᵀ L_S⁻¹ e_pq)² / (1 + w R_S(p,q)).
func exactTrRedFormula(t *testing.T, g *graph.Graph, inSub []bool, edgeIdx int, shift []float64) float64 {
	t.Helper()
	idx := make([]int, 0)
	for i, in := range inSub {
		if in {
			idx = append(idx, i)
		}
	}
	ls := dense.FromRows(lap.Laplacian(g.Subgraph(idx), shift).Dense())
	inv, err := dense.InvSPD(ls)
	if err != nil {
		t.Fatal(err)
	}
	ed := g.Edges[edgeIdx]
	p, q := ed.U, ed.V
	col := func(a, b int) []float64 {
		x := make([]float64, g.N)
		for r := 0; r < g.N; r++ {
			x[r] = inv.At(r, a) - inv.At(r, b)
		}
		return x
	}
	zpq := col(p, q)
	var sum float64
	for _, e := range g.Edges {
		d := zpq[e.U] - zpq[e.V]
		sum += e.W * d * d
	}
	r := zpq[p] - zpq[q]
	return ed.W * sum / (1 + ed.W*r)
}

// TestShermanMorrisonIdentity validates the paper's derivation (8)–(11):
// the closed-form trace reduction equals the actual trace difference.
func TestShermanMorrisonIdentity(t *testing.T) {
	g := gen.RandomConnected(12, 14, 1)
	st, err := tree.MEWST(g)
	if err != nil {
		t.Fatal(err)
	}
	shift := tinyShift(g.N)
	inSub := append([]bool(nil), st.InTree...)
	for _, e := range st.OffTreeEdges() {
		formula := exactTrRedFormula(t, g, inSub, e, shift)
		diff, err := ExactTraceReduction(g, inSub, e, shift)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(formula-diff) > 1e-4*(1+math.Abs(diff)) {
			t.Errorf("edge %d: formula %g vs trace diff %g", e, formula, diff)
		}
	}
}

// TestTreePhaseExactWithLargeBeta: with β ≥ diameter the truncated sum is
// the full sum and the tree-phase BFS voltages are exact, so the score must
// match eq. (11) computed densely.
func TestTreePhaseExactWithLargeBeta(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		g := gen.RandomConnected(15, 12, seed)
		st, err := tree.MEWST(g)
		if err != nil {
			t.Fatal(err)
		}
		inSub := append([]bool(nil), st.InTree...)
		shift := tinyShift(g.N)
		cand := st.OffTreeEdges()
		o := Options{Beta: 100, Workers: 1}.withDefaults()
		o.Beta = 100
		scores := mustScore(scoreTreePhase(context.Background(), g, st, cand, o))
		for i, e := range cand {
			want := exactTrRedFormula(t, g, inSub, e, shift)
			if math.Abs(scores[i]-want) > 1e-3*(1+want) {
				t.Errorf("seed %d edge %d: tree-phase %g, dense %g", seed, e, scores[i], want)
			}
		}
	}
}

// TestTreePhaseTruncationUnderestimates: truncation drops nonnegative terms,
// so tTrRed(β small) ≤ tTrRed(β large).
func TestTreePhaseTruncationMonotoneInBeta(t *testing.T) {
	g := gen.Grid2D(8, 8, 3)
	st, err := tree.MEWST(g)
	if err != nil {
		t.Fatal(err)
	}
	cand := st.OffTreeEdges()
	o := Options{Workers: 1}.withDefaults()
	o.Beta = 2
	s2 := mustScore(scoreTreePhase(context.Background(), g, st, cand, o))
	o.Beta = 50
	s50 := mustScore(scoreTreePhase(context.Background(), g, st, cand, o))
	for i := range cand {
		if s2[i] > s50[i]+1e-9 {
			t.Errorf("edge %d: truncated score %g exceeds full %g", cand[i], s2[i], s50[i])
		}
	}
}

// TestGeneralPhaseMatchesExactOnTree: with δ = 0 (exact inverse factor) and
// large β, the SPAI-based score on the tree subgraph must agree with the
// dense eq. (11) (up to the diagonal shift).
func TestGeneralPhaseMatchesExactOnTree(t *testing.T) {
	g := gen.RandomConnected(14, 10, 5)
	st, err := tree.MEWST(g)
	if err != nil {
		t.Fatal(err)
	}
	inSub := append([]bool(nil), st.InTree...)
	shift := make([]float64, g.N)
	for i := range shift {
		shift[i] = 1e-6
	}
	ls := lap.Laplacian(g.Subgraph(st.EdgeIdx), shift)
	f, err := chol.New(ls, chol.Options{})
	if err != nil {
		t.Fatal(err)
	}
	z := spai.Compute(f.L, 0)
	cand := offSubgraphEdges(g, inSub)
	o := Options{Workers: 1}.withDefaults()
	o.Beta = 100
	scores := mustScore(scoreGeneralPhase(context.Background(), g, inSub, f, z, cand, o))
	for i, e := range cand {
		want := exactTrRedFormula(t, g, inSub, e, shift)
		if math.Abs(scores[i]-want) > 1e-3*(1+want) {
			t.Errorf("edge %d: general-phase %g, dense %g", e, scores[i], want)
		}
	}
}

// TestGeneralPhaseOnDensifiedSubgraph: same check after a round of edges
// has been added (S is no longer a tree).
func TestGeneralPhaseOnDensifiedSubgraph(t *testing.T) {
	g := gen.RandomConnected(16, 20, 7)
	st, err := tree.MEWST(g)
	if err != nil {
		t.Fatal(err)
	}
	inSub := append([]bool(nil), st.InTree...)
	// Add three off-tree edges to make S a general subgraph.
	added := 0
	for e := range g.Edges {
		if !inSub[e] && added < 3 {
			inSub[e] = true
			added++
		}
	}
	shift := make([]float64, g.N)
	for i := range shift {
		shift[i] = 1e-6
	}
	ls := lap.Laplacian(subgraphView(g, inSub), shift)
	f, err := chol.New(ls, chol.Options{})
	if err != nil {
		t.Fatal(err)
	}
	z := spai.Compute(f.L, 0)
	cand := offSubgraphEdges(g, inSub)
	o := Options{Workers: 1}.withDefaults()
	o.Beta = 100
	scores := mustScore(scoreGeneralPhase(context.Background(), g, inSub, f, z, cand, o))
	for i, e := range cand {
		want := exactTrRedFormula(t, g, inSub, e, shift)
		if math.Abs(scores[i]-want) > 5e-3*(1+want) {
			t.Errorf("edge %d: general-phase %g, dense %g", e, scores[i], want)
		}
	}
}

// TestTraceMonotoneUnderRecovery: recovering any off-subgraph edge cannot
// increase Tr(L_S⁻¹ L_G) (eq. 10: the reduction term is nonnegative).
func TestTraceMonotoneUnderRecoveryQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(8)
		g := gen.RandomConnected(n, n, seed)
		st, err := tree.MEWST(g)
		if err != nil {
			return false
		}
		off := st.OffTreeEdges()
		if len(off) == 0 {
			return true
		}
		inSub := append([]bool(nil), st.InTree...)
		shift := tinyShift(n)
		red, err := ExactTraceReduction(g, inSub, off[rng.Intn(len(off))], shift)
		if err != nil {
			return false
		}
		return red > -1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestSparsifyBasicInvariants(t *testing.T) {
	g := gen.Grid2D(20, 20, 9)
	res, err := Sparsify(g, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Sparsifier.Connected() {
		t.Error("sparsifier disconnected")
	}
	wantEdges := g.N - 1 + int(0.10*float64(g.N))
	if got := len(res.EdgeIdx); got != wantEdges {
		t.Errorf("sparsifier has %d edges, want %d", got, wantEdges)
	}
	// Every sparsifier edge must be a G edge with identical weight.
	for _, e := range res.EdgeIdx {
		if e < 0 || e >= g.M() {
			t.Fatalf("edge index %d out of range", e)
		}
	}
	if res.Stats.EdgesAdded != int(0.10*float64(g.N)) {
		t.Errorf("EdgesAdded = %d", res.Stats.EdgesAdded)
	}
	if res.Stats.Rounds != 5 {
		t.Errorf("Rounds = %d, want 5", res.Stats.Rounds)
	}
}

func TestSparsifyAllMethodsRun(t *testing.T) {
	g := gen.Tri2D(15, 15, 10)
	for _, m := range []Method{TraceReduction, GRASS, FeGRASS} {
		res, err := Sparsify(g, Options{Method: m, Seed: 2})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if !res.Sparsifier.Connected() {
			t.Errorf("%v: sparsifier disconnected", m)
		}
		if len(res.EdgeIdx) <= g.N-1 {
			t.Errorf("%v: no edges recovered", m)
		}
	}
}

// TestSparsifierImprovesTrace: the densified sparsifier must have a smaller
// exact Tr(L_P⁻¹ L_G) than the bare spanning tree.
func TestSparsifierImprovesTrace(t *testing.T) {
	g := gen.Grid2D(9, 9, 11)
	res, err := Sparsify(g, Options{Alpha: 0.15, Rounds: 3, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	shift := tinyShift(g.N)
	trTree, err := ExactTrace(g, res.Tree.InTree, shift)
	if err != nil {
		t.Fatal(err)
	}
	trSp, err := ExactTrace(g, res.InSub, shift)
	if err != nil {
		t.Fatal(err)
	}
	if trSp >= trTree {
		t.Errorf("sparsifier trace %g not below tree trace %g", trSp, trTree)
	}
}

// TestTraceReductionBeatsRandomSelection: picking edges by trace reduction
// must lower the exact trace at least as well as a random pick of the same
// budget (averaged over a few seeds, with slack).
func TestTraceReductionBeatsRandomSelection(t *testing.T) {
	g := gen.Grid2D(8, 8, 12)
	shift := tinyShift(g.N)
	res, err := Sparsify(g, Options{Alpha: 0.12, Rounds: 2, Seed: 4, SimilarityHops: -1})
	if err != nil {
		t.Fatal(err)
	}
	trAlg, err := ExactTrace(g, res.InSub, shift)
	if err != nil {
		t.Fatal(err)
	}
	budget := res.Stats.EdgesAdded
	var trRandSum float64
	const trials = 5
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) + 40))
		inSub := append([]bool(nil), res.Tree.InTree...)
		off := res.Tree.OffTreeEdges()
		rng.Shuffle(len(off), func(i, j int) { off[i], off[j] = off[j], off[i] })
		for _, e := range off[:budget] {
			inSub[e] = true
		}
		trRand, err := ExactTrace(g, inSub, shift)
		if err != nil {
			t.Fatal(err)
		}
		trRandSum += trRand
	}
	if trAlg > trRandSum/trials {
		t.Errorf("algorithm trace %g worse than random average %g", trAlg, trRandSum/trials)
	}
}

func TestExcluderMarksTreePathAndFringe(t *testing.T) {
	g := gen.Path(10) // path 0-1-…-9; tree = the path itself
	st, err := tree.MaxWeight(g)
	if err != nil {
		t.Fatal(err)
	}
	inSub := make([]bool, g.M())
	for i := range inSub {
		inSub[i] = true
	}
	x := newExcluder(g, st, 1)
	x.beginRound(inSub)
	x.markSimilar(3, 6)
	// Tree path 3-4-5-6 plus 1-hop fringe: 2..7 marked.
	if !x.isExcluded(4, 5) {
		t.Error("edge on serviced path not excluded")
	}
	if !x.isExcluded(2, 7) {
		t.Error("edge within fringe not excluded")
	}
	if x.isExcluded(0, 1) {
		t.Error("edge far from path excluded")
	}
	if x.isExcluded(1, 5) {
		t.Error("edge with one unmarked endpoint excluded")
	}
	// New round resets marks.
	x.beginRound(inSub)
	if x.isExcluded(4, 5) {
		t.Error("marks survived round reset")
	}
}

func TestExcluderDisabled(t *testing.T) {
	g := gen.Path(6)
	st, err := tree.MaxWeight(g)
	if err != nil {
		t.Fatal(err)
	}
	inSub := make([]bool, g.M())
	x := newExcluder(g, st, -1)
	x.beginRound(inSub)
	x.markSimilar(2, 3)
	if x.isExcluded(2, 3) {
		t.Error("disabled excluder excluded an edge")
	}
}

func TestSimilarityExclusionSpreadsEdges(t *testing.T) {
	// With exclusion on, the selected off-tree edges should touch more
	// distinct vertices than with exclusion off (they cannot pile up).
	g := gen.Grid2D(16, 16, 13)
	with, err := Sparsify(g, Options{Seed: 5, SimilarityHops: 2, Rounds: 1, Alpha: 0.08})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Sparsify(g, Options{Seed: 5, SimilarityHops: -1, Rounds: 1, Alpha: 0.08})
	if err != nil {
		t.Fatal(err)
	}
	distinct := func(r *Result) int {
		seen := map[int]bool{}
		for _, e := range r.EdgeIdx {
			if !r.Tree.InTree[e] {
				seen[g.Edges[e].U] = true
				seen[g.Edges[e].V] = true
			}
		}
		return len(seen)
	}
	if distinct(with) < distinct(without) {
		t.Errorf("exclusion did not spread endpoints: %d < %d", distinct(with), distinct(without))
	}
}

func TestSparsifyDisconnectedGraphFails(t *testing.T) {
	g := graph.MustNew(4, []graph.Edge{{U: 0, V: 1, W: 1}, {U: 2, V: 3, W: 1}})
	if _, err := Sparsify(g, Options{}); err == nil {
		t.Fatal("expected error on disconnected graph")
	}
}

func TestSparsifyDeterministicForFixedSeed(t *testing.T) {
	g := gen.Tri2D(12, 12, 14)
	a, err := Sparsify(g, Options{Seed: 9, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Sparsify(g, Options{Seed: 9, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.EdgeIdx) != len(b.EdgeIdx) {
		t.Fatalf("different sparsifier sizes: %d vs %d", len(a.EdgeIdx), len(b.EdgeIdx))
	}
	for i := range a.EdgeIdx {
		if a.EdgeIdx[i] != b.EdgeIdx[i] {
			t.Fatalf("edge sets differ at %d (parallel vs serial)", i)
		}
	}
}

func TestBudgetCappedByAvailableEdges(t *testing.T) {
	// A graph that is almost a tree: budget larger than off-tree edges.
	g := gen.RandomConnected(30, 3, 15)
	res, err := Sparsify(g, Options{Alpha: 0.5, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.EdgeIdx) > g.M() {
		t.Error("recovered more edges than exist")
	}
	if res.Stats.EdgesAdded > g.M()-(g.N-1) {
		t.Error("added more than off-tree count")
	}
}

func TestGRASSScoresFavorHighResistanceEdges(t *testing.T) {
	// On a path-plus-shortcut graph, the shortcut across the whole path is
	// spectrally critical; both GRASS and trace reduction must rank it
	// above a shortcut between adjacent-ish nodes.
	n := 40
	edges := make([]graph.Edge, 0, n+1)
	for i := 0; i+1 < n; i++ {
		edges = append(edges, graph.Edge{U: i, V: i + 1, W: 10}) // heavy tree path
	}
	long := len(edges)
	edges = append(edges, graph.Edge{U: 0, V: n - 1, W: 1})
	short := len(edges)
	edges = append(edges, graph.Edge{U: 5, V: 7, W: 1})
	g := graph.MustNew(n, edges)
	st, err := tree.MEWST(g)
	if err != nil {
		t.Fatal(err)
	}
	if st.InTree[long] || st.InTree[short] {
		t.Skip("tree picked a shortcut; topology assumption violated")
	}
	o := Options{Workers: 1}.withDefaults()
	scores := mustScore(scoreTreePhase(context.Background(), g, st, []int{long, short}, o))
	if scores[0] <= scores[1] {
		t.Errorf("long-range edge score %g not above local edge %g", scores[0], scores[1])
	}
}

// mustScore unwraps a scoring-phase (scores, error) pair in tests whose
// contexts are never canceled.
func mustScore(scores []float64, err error) []float64 {
	if err != nil {
		panic(err)
	}
	return scores
}
