package sparsify

import (
	"context"

	"repro/internal/graph"
	"repro/internal/tree"
)

// scoreTreePhase computes the truncated trace reduction (eq. 15) of every
// candidate off-tree edge with respect to the spanning tree. Effective
// resistances come from one offline-LCA pass; per-edge voltages are
// propagated by β-layer BFS over the tree using eqs. (13)–(14), which is
// exact because the unit p→q current flows only along the unique tree path.
func scoreTreePhase(ctx context.Context, g *graph.Graph, st *tree.Tree, cand []int, o Options) ([]float64, error) {
	pairs := make([][2]int, len(cand))
	for i, e := range cand {
		pairs[i] = [2]int{g.Edges[e].U, g.Edges[e].V}
	}
	lcas := st.LCAs(pairs)

	scores := make([]float64, len(cand))
	scratches := make([]*treeScratch, o.Workers)
	for w := range scratches {
		scratches[w] = newTreeScratch(g.N, g.M())
	}
	err := parallelFor(ctx, len(cand), o.Workers, func(worker, i int) {
		sc := scratches[worker]
		e := cand[i]
		ed := g.Edges[e]
		l := lcas[i]
		r := st.Resistance(ed.U, ed.V, l)
		sum := sc.truncatedSum(g, st, ed.U, ed.V, l, o.Beta)
		scores[i] = ed.W * sum / (1 + ed.W*r)
	})
	if err != nil {
		return nil, err
	}
	return scores, nil
}

// treeScratch is per-worker reusable state for tree-phase scoring.
type treeScratch struct {
	cur                    int32
	stampP, stampQ         []int32
	vP, vQ                 []float64
	pathStampP, pathStampQ []int32
	pathNextP, pathNextQ   []int32
	pathResP, pathResQ     []float64
	edgeStamp              []int32
	nodesP                 []int32
	frontier, next         []int32
	pbuf, qbuf             []int32
}

func newTreeScratch(n, m int) *treeScratch {
	return &treeScratch{
		stampP: make([]int32, n), stampQ: make([]int32, n),
		vP: make([]float64, n), vQ: make([]float64, n),
		pathStampP: make([]int32, n), pathStampQ: make([]int32, n),
		pathNextP: make([]int32, n), pathNextQ: make([]int32, n),
		pathResP: make([]float64, n), pathResQ: make([]float64, n),
		edgeStamp: make([]int32, m),
	}
}

// truncatedSum evaluates the Σ w_ij (v(i) − v(j))² part of eq. (15) for one
// off-tree edge (p, q) with LCA l.
func (sc *treeScratch) truncatedSum(g *graph.Graph, st *tree.Tree, p, q, l, beta int) float64 {
	sc.cur++
	cur := sc.cur

	// Collect the tree paths p→l and q→l.
	sc.pbuf = sc.pbuf[:0]
	for v := p; v != l; v = st.Parent[v] {
		sc.pbuf = append(sc.pbuf, int32(v))
	}
	sc.pbuf = append(sc.pbuf, int32(l))
	sc.qbuf = sc.qbuf[:0]
	for v := q; v != l; v = st.Parent[v] {
		sc.qbuf = append(sc.qbuf, int32(v))
	}
	sc.qbuf = append(sc.qbuf, int32(l))
	dp, dq := len(sc.pbuf)-1, len(sc.qbuf)-1
	pathLen := dp + dq // edges on the p→q path

	r := st.Resistance(p, q, l)

	// Record the first β path steps leaving p (toward q) and leaving q
	// (toward p); the BFS voltage rule consults these.
	record := func(aSide []int32, bSide []int32, da, db int,
		pathStamp, pathNext []int32, pathRes []float64) {
		steps := beta
		if steps > pathLen {
			steps = pathLen
		}
		for t := 0; t < steps; t++ {
			var node, nxt int32
			var edge int
			if t < da {
				node = aSide[t]
				nxt = aSide[t+1]
				edge = st.ParentEdge[node]
			} else {
				j := t - da
				node = bSide[db-j]
				nxt = bSide[db-j-1]
				edge = st.ParentEdge[nxt]
			}
			pathStamp[node] = cur
			pathNext[node] = nxt
			pathRes[node] = 1 / g.Edges[edge].W
		}
	}
	record(sc.pbuf, sc.qbuf, dp, dq, sc.pathStampP, sc.pathNextP, sc.pathResP)
	record(sc.qbuf, sc.pbuf, dq, dp, sc.pathStampQ, sc.pathNextQ, sc.pathResQ)

	// β-layer BFS from p with decreasing voltages (eq. 13): v(p) = R_T(p,q).
	sc.nodesP = sc.nodesP[:0]
	sc.bfsVoltages(g, st, p, beta, r, -1, sc.stampP, sc.vP, sc.pathStampP, sc.pathNextP, sc.pathResP, &sc.nodesP)
	// β-layer BFS from q with increasing voltages (eq. 14): v(q) = 0.
	sc.bfsVoltages(g, st, q, beta, 0, +1, sc.stampQ, sc.vQ, sc.pathStampQ, sc.pathNextQ, sc.pathResQ, nil)

	// Σ over graph edges between the two neighborhoods.
	var sum float64
	for _, i32 := range sc.nodesP {
		i := int(i32)
		vi := sc.vP[i]
		for ap := g.AdjStart[i]; ap < g.AdjStart[i+1]; ap++ {
			j := g.AdjTarget[ap]
			if sc.stampQ[j] != cur {
				continue
			}
			e := g.AdjEdge[ap]
			if sc.edgeStamp[e] == cur {
				continue
			}
			sc.edgeStamp[e] = cur
			d := vi - sc.vQ[j]
			sum += g.Edges[e].W * d * d
		}
	}
	return sum
}

// bfsVoltages explores the tree from src for at most beta layers, assigning
// voltages: crossing a recorded path edge adds sign·(edge resistance),
// any other tree edge copies the predecessor's voltage.
func (sc *treeScratch) bfsVoltages(g *graph.Graph, st *tree.Tree, src, beta int,
	v0 float64, sign float64, stamp []int32, volt []float64,
	pathStamp, pathNext []int32, pathRes []float64, nodes *[]int32) {

	cur := sc.cur
	stamp[src] = cur
	volt[src] = v0
	if nodes != nil {
		*nodes = append(*nodes, int32(src))
	}
	sc.frontier = append(sc.frontier[:0], int32(src))
	for layer := 0; layer < beta && len(sc.frontier) > 0; layer++ {
		sc.next = sc.next[:0]
		for _, u32 := range sc.frontier {
			u := int(u32)
			vu := volt[u]
			onPath := pathStamp[u] == cur
			for ap := g.AdjStart[u]; ap < g.AdjStart[u+1]; ap++ {
				e := g.AdjEdge[ap]
				if !st.InTree[e] {
					continue
				}
				i := g.AdjTarget[ap]
				if stamp[i] == cur {
					continue
				}
				stamp[i] = cur
				if onPath && pathNext[u] == int32(i) {
					volt[i] = vu + sign*pathRes[u]
				} else {
					volt[i] = vu
				}
				if nodes != nil {
					*nodes = append(*nodes, int32(i))
				}
				sc.next = append(sc.next, int32(i))
			}
		}
		sc.frontier, sc.next = sc.next, sc.frontier
	}
}
