package sparsify

import (
	"fmt"

	"repro/internal/dense"
	"repro/internal/graph"
	"repro/internal/lap"
)

// ExactTraceReduction computes, by dense linear algebra, the exact trace
// reduction of recovering off-subgraph edge edgeIdx into the subgraph whose
// edges are flagged by inSub:
//
//	Tr(L_S⁻¹ L_G) − Tr(L_S'⁻¹ L_G) ,  S' = S ∪ {edge} ,
//
// with the shared diagonal shift applied to both Laplacians. It is the
// test oracle for eq. (11) and the truncated/approximate variants; only
// suitable for small graphs.
func ExactTraceReduction(g *graph.Graph, inSub []bool, edgeIdx int, shift []float64) (float64, error) {
	if inSub[edgeIdx] {
		return 0, fmt.Errorf("sparsify: edge %d already in subgraph", edgeIdx)
	}
	lg := dense.FromRows(lap.Laplacian(g, shift).Dense())

	before, err := traceOf(g, inSub, lg, shift, -1)
	if err != nil {
		return 0, err
	}
	after, err := traceOf(g, inSub, lg, shift, edgeIdx)
	if err != nil {
		return 0, err
	}
	return before - after, nil
}

// ExactTrace returns Tr(L_S⁻¹ L_G) for the flagged subgraph, densely.
func ExactTrace(g *graph.Graph, inSub []bool, shift []float64) (float64, error) {
	lg := dense.FromRows(lap.Laplacian(g, shift).Dense())
	return traceOf(g, inSub, lg, shift, -1)
}

func traceOf(g *graph.Graph, inSub []bool, lg *dense.Matrix, shift []float64, extraEdge int) (float64, error) {
	idx := make([]int, 0, g.M())
	for i, in := range inSub {
		if in || i == extraEdge {
			idx = append(idx, i)
		}
	}
	ls := dense.FromRows(lap.Laplacian(g.Subgraph(idx), shift).Dense())
	return dense.TraceProduct(ls, lg)
}
