package sparsify

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// TestSparsifyVariousGraphKinds backs the paper's "validated with various
// kinds of graphs" claim: the algorithm must produce connected sparsifiers
// with the full edge budget on scale-free, small-world, geometric, and 3D
// topologies — not just meshes.
func TestSparsifyVariousGraphKinds(t *testing.T) {
	for _, tc := range []struct {
		name  string
		build func() *graph.Graph
	}{
		{"barabasi-albert", func() *graph.Graph { return gen.BarabasiAlbert(800, 3, 1) }},
		{"watts-strogatz", func() *graph.Graph { return gen.WattsStrogatz(800, 6, 0.2, 2) }},
		{"geometric", func() *graph.Graph { return gen.RandomGeometric(800, 0.06, 3) }},
		{"grid3d", func() *graph.Graph { return gen.Grid3D(10, 10, 8, 4) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g := tc.build()
			for _, m := range []Method{TraceReduction, GRASS, FeGRASS} {
				res, err := Sparsify(g, Options{Method: m, Seed: 5})
				if err != nil {
					t.Fatalf("%v: %v", m, err)
				}
				if !res.Sparsifier.Connected() {
					t.Errorf("%v: sparsifier disconnected", m)
				}
				budget := int(0.10 * float64(g.N))
				if avail := g.M() - (g.N - 1); budget > avail {
					budget = avail
				}
				if res.Stats.EdgesAdded != budget {
					t.Errorf("%v: added %d edges, want %d", m, res.Stats.EdgesAdded, budget)
				}
			}
		})
	}
}

// TestSparsifierHelpsOnNonMeshTopologies checks the quality claim beyond
// meshes: on small-world and scale-free graphs the densified sparsifier
// must still clearly improve on the bare spanning tree.
func TestSparsifierHelpsOnNonMeshTopologies(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"watts-strogatz", gen.WattsStrogatz(600, 6, 0.2, 7)},
		{"barabasi-albert", gen.BarabasiAlbert(600, 3, 8)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			res, err := Sparsify(tc.g, Options{Seed: 9})
			if err != nil {
				t.Fatal(err)
			}
			shift := tinyShift(tc.g.N)
			trTree, err := ExactTrace(tc.g, res.Tree.InTree, shift)
			if err != nil {
				t.Fatal(err)
			}
			trSp, err := ExactTrace(tc.g, res.InSub, shift)
			if err != nil {
				t.Fatal(err)
			}
			if trSp >= trTree {
				t.Errorf("sparsifier trace %g not below tree %g", trSp, trTree)
			}
		})
	}
}
