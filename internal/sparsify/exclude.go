package sparsify

import (
	"repro/internal/graph"
	"repro/internal/tree"
)

// excluder implements the spectrally-similar-edge exclusion strategy of
// feGRASS [13]. A recovered off-subgraph edge (p,q) fixes the spectral
// deficiency along its spanning-tree path p→q; another candidate edge whose
// endpoints both lie on (or within SimilarityHops subgraph hops of) an
// already-serviced path would largely fix the same deficiency, so it is
// skipped for the rest of the selection round.
//
// Trace-reduction scores are globally concentrated — the top-scored edges
// of one round tend to bridge the *same* worst deficiency — so without this
// exclusion, batch selection wastes most of a round's quota on redundant
// edges (observable as a 2–3× worse relative condition number).
type excluder struct {
	g        *graph.Graph
	t        *tree.Tree
	hops     int
	corridor bool // mark the whole tree path (feGRASS [13]) vs endpoint balls only ([7])
	mark     []int32
	stamp    int32
	inSub    []bool
	queue    []int32
	next     []int32
}

// newExcluder builds the feGRASS-style path-corridor excluder.
func newExcluder(g *graph.Graph, t *tree.Tree, hops int) *excluder {
	return &excluder{g: g, t: t, hops: hops, corridor: true, mark: make([]int32, g.N)}
}

// newBallExcluder builds the weaker endpoint-ball filter in the spirit of
// GRASS's similarity-aware edge filtering [7]: only the γ-hop balls around
// the recovered edge's endpoints are marked, not its whole tree path.
func newBallExcluder(g *graph.Graph, t *tree.Tree, hops int) *excluder {
	return &excluder{g: g, t: t, hops: hops, corridor: false, mark: make([]int32, g.N)}
}

// beginRound resets marks and records the subgraph used for fringe BFS.
func (x *excluder) beginRound(inSub []bool) {
	x.stamp++
	x.inSub = inSub
}

// isExcluded reports whether both endpoints fall inside already-serviced
// corridors.
func (x *excluder) isExcluded(u, v int) bool {
	if x.hops < 0 {
		return false
	}
	return x.mark[u] == x.stamp && x.mark[v] == x.stamp
}

// markSimilar marks every vertex on the tree path p→q plus a
// SimilarityHops-layer fringe around the path (BFS over the current
// subgraph, multi-source from all path vertices).
func (x *excluder) markSimilar(p, q int) {
	if x.hops < 0 {
		return
	}
	x.queue = x.queue[:0]
	push := func(v int) {
		if x.mark[v] != x.stamp {
			x.mark[v] = x.stamp
			x.queue = append(x.queue, int32(v))
		}
	}
	if x.corridor {
		// Walk both endpoints up to their LCA using depths; mark the corridor.
		a, b := p, q
		for x.t.Depth[a] > x.t.Depth[b] {
			push(a)
			a = x.t.Parent[a]
		}
		for x.t.Depth[b] > x.t.Depth[a] {
			push(b)
			b = x.t.Parent[b]
		}
		for a != b {
			push(a)
			push(b)
			a = x.t.Parent[a]
			b = x.t.Parent[b]
		}
		push(a) // the LCA itself
	} else {
		push(p)
		push(q)
	}

	// Fringe: expand hops layers over the current subgraph.
	g := x.g
	for layer := 0; layer < x.hops && len(x.queue) > 0; layer++ {
		x.next = x.next[:0]
		for _, u32 := range x.queue {
			u := int(u32)
			for ap := g.AdjStart[u]; ap < g.AdjStart[u+1]; ap++ {
				if !x.inSub[g.AdjEdge[ap]] {
					continue
				}
				v := g.AdjTarget[ap]
				if x.mark[v] == x.stamp {
					continue
				}
				x.mark[v] = x.stamp
				x.next = append(x.next, int32(v))
			}
		}
		x.queue, x.next = x.next, x.queue
	}
}
