package sparsify

import (
	"context"
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

func unitPath(n int) *graph.Graph {
	edges := make([]graph.Edge, n-1)
	for i := range edges {
		edges[i] = graph.Edge{U: i, V: i + 1, W: 1}
	}
	return graph.MustNew(n, edges)
}

func TestERSparsifyInvariants(t *testing.T) {
	g := gen.Grid2D(20, 20, 9)
	res, err := Sparsify(g, Options{Method: ER, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Sparsifier.Connected() {
		t.Error("ER sparsifier disconnected")
	}
	if res.Sparsifier.N != g.N {
		t.Errorf("sparsifier spans %d vertices, want %d", res.Sparsifier.N, g.N)
	}
	// Sampling with replacement: at most budget distinct edges beyond the
	// tree, and more than the bare tree unless the pool was degenerate.
	budget := int(0.20 * float64(g.N))
	got := len(res.EdgeIdx)
	if got <= g.N-1 || got > g.N-1+budget {
		t.Errorf("sparsifier has %d edges, want in (n-1, n-1+%d]", got, budget)
	}
	if res.Stats.Rounds != 1 {
		t.Errorf("Rounds = %d, want 1 (single sampling pass)", res.Stats.Rounds)
	}
	if res.Stats.ERSketches == 0 || res.Stats.ERTime == 0 {
		t.Errorf("ER telemetry missing: sketches=%d time=%v", res.Stats.ERSketches, res.Stats.ERTime)
	}
	if res.Reweight == nil {
		t.Fatal("ER result carries no reweight vector")
	}

	// The spanning tree is kept verbatim; sampled edges carry the
	// importance weight w·c/(q·p), clamped to erMaxMultiplier·w.
	for e, in := range res.Tree.InTree {
		if !in {
			continue
		}
		if !res.InSub[e] {
			t.Fatalf("tree edge %d missing from the sparsifier", e)
		}
		if res.Reweight[e] != 0 {
			t.Errorf("tree edge %d reweighted to %g, want original weight", e, res.Reweight[e])
		}
	}
	for e, w := range res.Reweight {
		if w == 0 {
			continue
		}
		if !res.InSub[e] {
			t.Errorf("edge %d has reweight %g but is not in the sparsifier", e, w)
		}
		orig := g.Edges[e].W
		if w <= 0 || math.IsNaN(w) || w > orig*erMaxMultiplier*(1+1e-12) {
			t.Errorf("edge %d reweight %g outside (0, %g·w]", e, w, erMaxMultiplier)
		}
	}

	// The materialized sparsifier graph must reflect the overrides: total
	// weight equals Σ tree + Σ reweighted.
	want := 0.0
	for _, e := range res.EdgeIdx {
		if w := res.Reweight[e]; w > 0 {
			want += w
		} else {
			want += g.Edges[e].W
		}
	}
	have := 0.0
	for _, ed := range res.Sparsifier.Edges {
		have += ed.W
	}
	if math.Abs(want-have) > 1e-9*want {
		t.Errorf("sparsifier total weight %g, want %g", have, want)
	}
}

func TestERDeterministicForFixedSeed(t *testing.T) {
	g := gen.Tri2D(14, 14, 4)
	a, err := Sparsify(g, Options{Method: ER, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Sparsify(g, Options{Method: ER, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.EdgeIdx) != len(b.EdgeIdx) {
		t.Fatalf("edge counts differ: %d vs %d", len(a.EdgeIdx), len(b.EdgeIdx))
	}
	for i := range a.EdgeIdx {
		if a.EdgeIdx[i] != b.EdgeIdx[i] {
			t.Fatalf("edge %d differs: %d vs %d", i, a.EdgeIdx[i], b.EdgeIdx[i])
		}
	}
	for e := range a.Reweight {
		if a.Reweight[e] != b.Reweight[e] {
			t.Fatalf("reweight %d differs: %g vs %g", e, a.Reweight[e], b.Reweight[e])
		}
	}
}

// TestERWithAssign: a caller-supplied cluster assignment routes the
// sketch solves through the Schwarz preconditioner without changing the
// contract.
func TestERWithAssign(t *testing.T) {
	g := gen.Grid2D(16, 16, 7)
	assign := make([]int, g.N)
	for v := range assign {
		if v >= g.N/2 {
			assign[v] = 1
		}
	}
	res, err := SparsifyContext(context.Background(), g,
		Options{Method: ER, Seed: 3}.WithERAssign(assign))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Sparsifier.Connected() {
		t.Error("ER sparsifier with Schwarz assignment disconnected")
	}
	if res.Stats.ERIterations == 0 {
		t.Error("Schwarz-backed sketch solves reported zero PCG iterations")
	}
}

// TestERRankingPrefiltersTraceReduction: WithERRanking pays one sketch
// estimation and still produces a full-quality trace-reduction result.
func TestERRankingPrefiltersTraceReduction(t *testing.T) {
	g := gen.Grid2D(20, 20, 5)
	res, err := Sparsify(g, Options{Method: TraceReduction, ERRanking: true, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Sparsifier.Connected() {
		t.Error("ERRanking sparsifier disconnected")
	}
	if res.Stats.ERSketches == 0 {
		t.Error("ERRanking did not run the sketch estimator")
	}
	wantEdges := g.N - 1 + int(0.10*float64(g.N))
	if got := len(res.EdgeIdx); got != wantEdges {
		t.Errorf("sparsifier has %d edges, want %d", got, wantEdges)
	}
	if res.Reweight != nil {
		t.Error("trace reduction must not reweight edges")
	}
}

func TestParseMethod(t *testing.T) {
	cases := map[string]Method{
		"trace":                TraceReduction,
		"trace-reduction":      TraceReduction,
		"grass":                GRASS,
		"fegrass":              FeGRASS,
		"er":                   ER,
		"effective-resistance": ER,
	}
	for s, want := range cases {
		got, err := ParseMethod(s)
		if err != nil || got != want {
			t.Errorf("ParseMethod(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseMethod("banana"); err == nil {
		t.Error("ParseMethod accepted an unknown method")
	}
}

func TestERPrefilterKeepsTopLeverage(t *testing.T) {
	g := unitPath(40)
	r := make([]float64, g.M())
	for e := range r {
		r[e] = float64(e) // leverage strictly increasing in index
	}
	cand := []int{3, 10, 4, 25, 7}
	got := erPrefilter(g, cand, r, 2)
	// Unit weights, so the two highest-leverage candidates are edges 25
	// and 10; output preserves candidate (slice) order.
	if len(got) != 2 {
		t.Fatalf("kept %d candidates, want 2", len(got))
	}
	if got[0] != 10 || got[1] != 25 {
		t.Errorf("kept %v, want [10 25]", got)
	}
	// keep >= len(cand) is the identity.
	if out := erPrefilter(g, cand, r, 10); len(out) != len(cand) {
		t.Errorf("oversized keep truncated the pool to %d", len(out))
	}
}
