package sparsify

import (
	"context"
	"fmt"
	"time"

	"repro/internal/chol"
	"repro/internal/graph"
	"repro/internal/lap"
	"repro/internal/spai"
)

// ShardStats records what the partition-parallel sharded pipeline
// (internal/shard) did to produce a Result. It lives here, on the Result,
// so the handle layer and the serving engine can report per-shard
// telemetry without importing the shard package (which itself imports
// this one).
type ShardStats struct {
	// Shards is the number of clusters actually sparsified (after
	// disconnected planned clusters were split into components).
	Shards int
	// FallbackSplits counts recursive bisections that fell back from the
	// Fiedler split to the BFS ordering (slow or degenerate convergence).
	FallbackSplits int
	// CutEdges is the number of input edges crossing clusters.
	CutEdges int
	// CutRetained is how many cut edges the stitch kept as the
	// inter-cluster spanning structure (connectivity).
	CutRetained int
	// CutRecovered is how many further cut edges the global recovery
	// round re-admitted by truncated trace-reduction score.
	CutRecovered int

	PlanTime   time.Duration // partitioning (Fiedler/BFS bisection)
	BuildTime  time.Duration // per-cluster sparsification (wall clock)
	StitchTime time.Duration // forest + global recovery round

	// Abandoned reports that the expander guard rejected the plan at
	// plan time — the cut fraction exceeded the configured ceiling, so
	// the build fell back to the monolithic path instead of paying the
	// stitch for nothing. When set, the remaining fields describe the
	// abandoned plan (so operators can see why), not a sharded build.
	Abandoned bool
	// CutFraction is the planned cut-edge share of the input edges —
	// the quantity the expander guard thresholds.
	CutFraction float64

	// Assign is the plan's per-vertex cluster assignment, threaded
	// through so the pencil can build the additive-Schwarz
	// preconditioner over the same clusters — and retained for the
	// handle's lifetime (it survives Compact) so an incremental Update
	// can map a delta's edges onto dirty clusters without replanning.
	// Nil when the plan was abandoned.
	Assign []int
	// ClusterKeys holds each cluster's fingerprint (shard.ClusterKey),
	// aligned with cluster ids. The pencil uses them to key per-cluster
	// Schwarz factors in the cluster cache; they survive Compact.
	ClusterKeys []string

	// Incremental reports the result came from a delta rebuild that
	// reused a prior plan; ClustersReused counts clusters whose cached
	// sparsifier was adopted verbatim instead of re-running Algorithm 2
	// (cold builds can also reuse when the cluster cache is shared).
	Incremental    bool
	ClustersReused int
	// ClustersRemote counts clusters whose sparsifier came back from a
	// remote fabric worker; the difference to Shards (minus reused and
	// tiny clusters) ran in-process — including remote dispatches that
	// degraded to the local fallback.
	ClustersRemote int

	PerShard []ShardBuild
}

// ShardBuild is one cluster's build telemetry.
type ShardBuild struct {
	Vertices        int
	Edges           int
	SparsifierEdges int
	Time            time.Duration
	// Reused reports the cluster's sparsifier came from the cluster
	// cache (fingerprint hit) instead of a fresh Algorithm-2 run.
	Reused bool
	// Remote reports the cluster was built by a remote fabric worker.
	Remote bool
}

// RecoverOffSubgraph runs one general densification round (eq. 20) of
// Algorithm 2 against an arbitrary subgraph: it factorizes the current
// subgraph's regularized Laplacian, builds the sparse approximate inverse
// of the Cholesky factor (Algorithm 1), scores the candidate off-subgraph
// edges by approximate truncated trace reduction, and admits up to quota
// of them in descending score order (with the endpoint-ball similarity
// exclusion — there is no global spanning tree here, so the feGRASS path
// corridor does not apply). inSub is updated in place; the return value is
// the number of edges admitted.
//
// This is the stitching hook of the sharded pipeline: after per-cluster
// sparsifiers and the inter-cluster spanning forest are in place, the
// remaining cut edges are re-scored against the stitched subgraph in one
// global recovery round.
func RecoverOffSubgraph(ctx context.Context, g *graph.Graph, inSub []bool, cand []int, quota int, opts Options) (int, error) {
	if quota <= 0 || len(cand) == 0 {
		return 0, nil
	}
	o := opts.withDefaults()
	if err := ctx.Err(); err != nil {
		return 0, fmt.Errorf("sparsify: recovery round: %w", err)
	}

	shift := lap.Shift(g, o.ShiftRel)
	ls := lap.Laplacian(subgraphView(g, inSub), shift)
	f, err := chol.New(ls, chol.Options{})
	if err != nil {
		return 0, fmt.Errorf("sparsify: factorizing stitched subgraph: %w", err)
	}
	z := spai.Compute(f.L, o.Delta)

	scores, err := scoreGeneralPhase(ctx, g, inSub, f, z, cand, o)
	if err != nil {
		return 0, fmt.Errorf("sparsify: recovery round: %w", err)
	}
	res := &Result{InSub: inSub}
	excl := newBallExcluder(g, nil, o.SimilarityHops)
	return selectEdges(g, res, excl, cand, scores, quota), nil
}
