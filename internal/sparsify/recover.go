package sparsify

import (
	"context"
	"fmt"
	"time"

	"repro/internal/chol"
	"repro/internal/graph"
	"repro/internal/lap"
	"repro/internal/spai"
)

// ShardStats records what the partition-parallel sharded pipeline
// (internal/shard) did to produce a Result. It lives here, on the Result,
// so the handle layer and the serving engine can report per-shard
// telemetry without importing the shard package (which itself imports
// this one).
type ShardStats struct {
	// Shards is the number of clusters actually sparsified (after
	// disconnected planned clusters were split into components).
	Shards int
	// FallbackSplits counts recursive bisections that fell back from the
	// Fiedler split to the BFS ordering (slow or degenerate convergence).
	FallbackSplits int
	// CutEdges is the number of input edges crossing clusters.
	CutEdges int
	// CutRetained is how many cut edges the stitch kept as the
	// inter-cluster spanning structure (connectivity).
	CutRetained int
	// CutRecovered is how many further cut edges the global recovery
	// round re-admitted by truncated trace-reduction score.
	CutRecovered int

	PlanTime   time.Duration // partitioning (Fiedler/BFS bisection)
	BuildTime  time.Duration // per-cluster sparsification (wall clock)
	StitchTime time.Duration // forest + global recovery round

	// Abandoned reports that the expander guard rejected the plan at
	// plan time — the cut fraction exceeded the configured ceiling, so
	// the build fell back to the monolithic path instead of paying the
	// stitch for nothing. When set, the remaining fields describe the
	// abandoned plan (so operators can see why), not a sharded build.
	Abandoned bool
	// CutFraction is the planned cut-edge share of the input edges —
	// the quantity the expander guard thresholds.
	CutFraction float64

	// Assign is the plan's per-vertex cluster assignment, threaded
	// through so the pencil can build the additive-Schwarz
	// preconditioner over the same clusters — and retained for the
	// handle's lifetime (it survives Compact) so an incremental Update
	// can map a delta's edges onto dirty clusters without replanning.
	// Nil when the plan was abandoned.
	Assign []int
	// ClusterKeys holds each cluster's fingerprint (shard.ClusterKey),
	// aligned with cluster ids. The pencil uses them to key per-cluster
	// Schwarz factors in the cluster cache; they survive Compact.
	ClusterKeys []string

	// Incremental reports the result came from a delta rebuild that
	// reused a prior plan; ClustersReused counts clusters whose cached
	// sparsifier was adopted verbatim instead of re-running Algorithm 2
	// (cold builds can also reuse when the cluster cache is shared).
	Incremental    bool
	ClustersReused int
	// StitchLocalized reports the stitch ran in localized mode: the
	// cut-edge forest and recovery round were restricted to cut edges
	// incident to dirty clusters, with the base build's stitch decisions
	// adopted verbatim on clean-clean cut edges (CutAdopted of them).
	// DirtyClusters is how many clusters the delta touched. CutRepaired
	// counts clean-clean cut edges the connectivity-repair sweep admitted
	// WITHOUT base membership — the one localized-stitch escape from the
	// dirty region, so a non-zero value disables dirty-region pencil
	// patching upstream.
	StitchLocalized bool
	CutAdopted      int
	CutRepaired     int
	DirtyClusters   int
	// ClustersRemote counts clusters whose sparsifier came back from a
	// remote fabric worker; the difference to Shards (minus reused and
	// tiny clusters) ran in-process — including remote dispatches that
	// degraded to the local fallback.
	ClustersRemote int

	// Streamed reports the build drained dispatcher results over a
	// stream, overlapping the stitch's cut-forest accumulation with the
	// in-flight cluster builds; StreamOverlapSaved is the stitch time
	// hidden inside the build window that way (the barrier path would
	// have serialized it after the slowest cluster).
	Streamed           bool
	StreamOverlapSaved time.Duration

	PerShard []ShardBuild
}

// ShardBuild is one cluster's build telemetry.
type ShardBuild struct {
	Vertices        int
	Edges           int
	SparsifierEdges int
	Time            time.Duration
	// Reused reports the cluster's sparsifier came from the cluster
	// cache (fingerprint hit) instead of a fresh Algorithm-2 run.
	Reused bool
	// Remote reports the cluster was built by a remote fabric worker.
	Remote bool
}

// RecoverOffSubgraph runs one general densification round (eq. 20) of
// Algorithm 2 against an arbitrary subgraph: it factorizes the current
// subgraph's regularized Laplacian, builds the sparse approximate inverse
// of the Cholesky factor (Algorithm 1), scores the candidate off-subgraph
// edges by approximate truncated trace reduction, and admits up to quota
// of them in descending score order (with the endpoint-ball similarity
// exclusion — there is no global spanning tree here, so the feGRASS path
// corridor does not apply). inSub is updated in place; the return value is
// the number of edges admitted.
//
// This is the stitching hook of the sharded pipeline: after per-cluster
// sparsifiers and the inter-cluster spanning forest are in place, the
// remaining cut edges are re-scored against the stitched subgraph in one
// global recovery round.
func RecoverOffSubgraph(ctx context.Context, g *graph.Graph, inSub []bool, cand []int, quota int, opts Options) (int, error) {
	if quota <= 0 || len(cand) == 0 {
		return 0, nil
	}
	o := opts.withDefaults()
	if err := ctx.Err(); err != nil {
		return 0, fmt.Errorf("sparsify: recovery round: %w", err)
	}

	shift := lap.Shift(g, o.ShiftRel)
	ls := lap.Laplacian(subgraphView(g, inSub), shift)
	f, err := chol.New(ls, chol.Options{})
	if err != nil {
		return 0, fmt.Errorf("sparsify: factorizing stitched subgraph: %w", err)
	}
	z := spai.Compute(f.L, o.Delta)

	scores, err := scoreGeneralPhase(ctx, g, inSub, f, z, cand, o)
	if err != nil {
		return 0, fmt.Errorf("sparsify: recovery round: %w", err)
	}
	res := &Result{InSub: inSub}
	excl := newBallExcluder(g, nil, o.SimilarityHops)
	return selectEdges(g, res, excl, cand, scores, quota), nil
}

// RecoverOffSubgraphRegion is RecoverOffSubgraph restricted to the
// subgraph induced on a vertex region: the factorization, SPAI, scoring
// balls, and similarity exclusion all see only the region's edges, so
// the cost is O(region) instead of O(n) — the localized stitch's
// recovery round, where the region is the dirty clusters plus the
// endpoints of their cut edges. cand must list edges with both
// endpoints inside region; admitted edges are marked in inSub (indexed
// by g's edge ids) exactly as the global variant would.
//
// The scoring is an approximation of the global round twice over: the
// trace-reduction scores are computed against the region's stitched
// subgraph rather than the whole graph's, and the regularization shift
// is derived from the region. Both effects are confined to *which*
// dirty-region cut edges are re-admitted — clean-region decisions are
// adopted from the base build and never revisited.
func RecoverOffSubgraphRegion(ctx context.Context, g *graph.Graph, inSub []bool, region []int, cand []int, quota int, opts Options) (int, error) {
	if quota <= 0 || len(cand) == 0 {
		return 0, nil
	}

	localID := make([]int, g.N)
	for i := range localID {
		localID[i] = -1
	}
	for li, v := range region {
		localID[v] = li
	}

	// Extract the induced subgraph, keeping the local→global edge map so
	// admissions can be written back. Scanning each region vertex's
	// adjacency and keeping only the (lower local id → higher) direction
	// emits every induced edge once, already normalized for
	// FromNormalized.
	var edges []graph.Edge
	var globalEdge []int
	for li, v := range region {
		for p := g.AdjStart[v]; p < g.AdjStart[v+1]; p++ {
			lu := localID[g.AdjTarget[p]]
			if lu <= li { // outside the region (-1) or already emitted
				continue
			}
			e := g.AdjEdge[p]
			edges = append(edges, graph.Edge{U: li, V: lu, W: g.Edges[e].W})
			globalEdge = append(globalEdge, e)
		}
	}
	lg := graph.FromNormalized(len(region), edges)

	localInSub := make([]bool, len(edges))
	localOf := make(map[int]int, len(edges))
	for j, ge := range globalEdge {
		localInSub[j] = inSub[ge]
		localOf[ge] = j
	}
	localCand := make([]int, len(cand))
	for k, ge := range cand {
		lc, ok := localOf[ge]
		if !ok {
			return 0, fmt.Errorf("sparsify: region recovery candidate %d has an endpoint outside the region", ge)
		}
		localCand[k] = lc
	}

	n, err := RecoverOffSubgraph(ctx, lg, localInSub, localCand, quota, opts)
	if err != nil {
		return 0, err
	}
	// Candidates are off-subgraph by contract, so a set localInSub slot
	// means the round admitted that edge.
	for k, lc := range localCand {
		if localInSub[lc] {
			inSub[cand[k]] = true
		}
	}
	return n, nil
}
