package sparsify

import (
	"context"
	"fmt"
	"time"

	"repro/internal/graph"
	"repro/internal/tree"
)

// runFeGRASS implements the feGRASS baseline [13]: spectral criticality by
// tree effective resistance — edge score w_pq · R_T(p,q) (eq. 4), computed
// for all off-tree edges in one offline-LCA pass. feGRASS is single-shot
// (no densification): the whole edge budget is selected at once, with the
// similarity exclusion applied during selection.
func runFeGRASS(ctx context.Context, g *graph.Graph, st *tree.Tree, res *Result, budget int, o Options) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("sparsify: feGRASS: %w", err)
	}
	t0 := time.Now()
	cand := offSubgraphEdges(g, res.InSub)
	pairs := make([][2]int, len(cand))
	for i, e := range cand {
		pairs[i] = [2]int{g.Edges[e].U, g.Edges[e].V}
	}
	rs := st.Resistances(pairs)
	scores := make([]float64, len(cand))
	for i, e := range cand {
		if i%cancelCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("sparsify: feGRASS: %w", err)
			}
		}
		scores[i] = g.Edges[e].W * rs[i]
	}
	res.Stats.ScoreTime += time.Since(t0)

	if err := ctx.Err(); err != nil {
		return fmt.Errorf("sparsify: feGRASS: %w", err)
	}
	excl := newExcluder(g, st, o.SimilarityHops)
	added := selectEdges(g, res, excl, cand, scores, budget)
	res.Stats.EdgesAdded += added
	res.Stats.Rounds = 1
	return nil
}
