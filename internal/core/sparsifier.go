package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/precond"
	"repro/internal/shard"
	"repro/internal/solver"
	"repro/internal/sparsify"
)

// Config is the resolved configuration of a Sparsifier handle. The public
// package builds one from functional options; the serving engine builds
// one from its own flags. The zero value selects the paper's construction
// parameters and library defaults for every measurement.
type Config struct {
	// Sparsify configures how the sparsifier subgraph is constructed
	// (method, α, rounds, β, δ, similarity hops, workers, seed).
	Sparsify sparsify.Options

	// Prebuilt, when non-nil, skips construction entirely and uses this
	// subgraph as the sparsifier. It must span the same vertex set as the
	// input graph and be connected. The handle computes the shared
	// regularization shift itself, so pencil and sparsifier stay
	// consistent — the fix for the v1 free functions, which silently
	// dropped Result.Shift.
	Prebuilt *graph.Graph

	// Tol is the PCG relative residual tolerance for Solve (default 1e-6).
	Tol float64
	// MaxIter caps PCG iterations per solve (default 10·n).
	MaxIter int
	// LanczosSteps controls the CondNumber estimate (default 80).
	LanczosSteps int
	// TraceProbes is the Hutchinson sample count for TraceProxy
	// (default 30).
	TraceProbes int
	// FiedlerSteps is the number of inverse-power rounds for Fiedler
	// (default 10); FiedlerTol the inner PCG tolerance (default Tol).
	FiedlerSteps int
	FiedlerTol   float64

	// MaxVertices rejects graphs with more vertices at admission
	// (ErrTooLarge); 0 disables the limit. Serving deployments use it to
	// bound per-request memory.
	MaxVertices int
	// ShardThreshold routes graphs with more vertices through the
	// partition-parallel sharded pipeline (internal/shard): the graph is
	// recursively bipartitioned into balanced clusters, each cluster is
	// sparsified concurrently, and the pieces are stitched with a cut-edge
	// spanning forest plus one global trace-reduction recovery round.
	// 0 disables sharding (every graph builds monolithically). Ignored
	// when Prebuilt is set.
	ShardThreshold int
	// Shards is the cluster count K for the sharded pipeline (0 derives
	// K from ShardThreshold: ceil(N/ShardThreshold)).
	Shards int
	// Precond selects the preconditioner construction strategy for the
	// pencil. precond.Auto (the zero value) picks Schwarz when the
	// sparsifier was built through the sharded pipeline — the cluster
	// structure is already paid for, and a monolithic factorization of
	// the stitched sparsifier would be the one remaining superlinear
	// cost — and the monolithic Cholesky otherwise. precond.Schwarz on a
	// monolithic build plans clusters on the sparsifier subgraph first.
	Precond precond.Kind
	// Overlap overrides the Schwarz preconditioner's overlap layers
	// (0 keeps the adaptive default ≈ √(N/K)/4; negative disables
	// overlap). Ignored by the monolithic strategy.
	Overlap int
	// ApplyWorkers bounds the Schwarz preconditioner's per-apply
	// parallelism: within each sweep color the block corrections are
	// independent and fan out across this many goroutines, bit-identical
	// to the sequential sweep. 0 uses GOMAXPROCS; negative forces the
	// sequential sweep. Ignored by the monolithic strategy (a single
	// triangular solve has no blocks to fan out).
	ApplyWorkers int
	// Rebalance is the incremental rebuild's balance-guard factor: an
	// Update whose delta grew any retained cluster past Rebalance × its
	// fair edge share (M/K), or past Rebalance × its own base-build size,
	// replans from scratch instead of reusing the stale plan. 0 selects
	// shard.DefaultRebalanceFactor; negative disables the guard.
	Rebalance float64
	// CheckEvery is the cancellation poll cadence in PCG iterations
	// (default solver.DefaultCheckEvery).
	CheckEvery int

	// Dispatcher, when non-nil, decides where each cluster of a sharded
	// build executes: the fabric's Remote dispatcher ships cluster
	// payloads to a worker fleet (degrading to in-process execution when
	// the fleet cannot answer), while nil keeps every cluster build
	// in-process. It only matters for builds routed through the sharded
	// pipeline; monolithic builds never consult it.
	Dispatcher shard.Dispatcher

	// Clusters and Factors are optional shared artifact caches for the
	// sharded pipeline: per-cluster sparsifier edge sets keyed by cluster
	// fingerprint, and per-cluster Schwarz factors under the same keys.
	// The serving engine wires both to its cluster store so cold builds
	// populate it and Update calls reuse it; handle-level Updates work
	// without them (the base handle seeds a private cache) but populate
	// them when present.
	Clusters shard.ClusterCache
	Factors  precond.FactorCache

	// RemoteFactors, when true and Dispatcher also implements
	// precond.FactorDispatcher, routes Schwarz per-cluster factorizations
	// through the fleet: each cluster's exact overlap-extended pencil
	// block ships to the worker already warm for that cluster, and the
	// validated factor comes back bit-identical to a local build.
	// Failures fall back to local factorization inside the builder.
	RemoteFactors bool
}

// erPlanVertices is the graph size above which the ER method routes
// through the sharded pipeline even without a configured
// ShardThreshold (and above which ERRanking solves its sketch systems
// under a planned Schwarz preconditioner): effective-resistance
// estimation is the one construction path that solves systems in L_G
// itself, and a monolithic factorization of L_G stops being cheap well
// before the rest of the stack notices graph size. The value doubles
// as the cluster-size target for those ER builds; 4096 is measured,
// not asymptotic — on the 600×600 grid it builds ~4.7× faster than
// 16384-vertex clusters (3.2s vs 15.5s: Cholesky fill on a cluster's
// full local Laplacian grows superlinearly) while halving it again
// buys nothing (per-cluster orchestration overhead dominates below
// this size).
const erPlanVertices = 4096

// withDefaults fills measurement defaults (construction defaults are
// resolved inside sparsify).
func (c Config) withDefaults() Config {
	if c.Tol <= 0 {
		c.Tol = 1e-6
	}
	if c.LanczosSteps <= 0 {
		c.LanczosSteps = 80
	}
	if c.TraceProbes <= 0 {
		c.TraceProbes = 30
	}
	if c.FiedlerSteps <= 0 {
		c.FiedlerSteps = 10
	}
	if c.FiedlerTol <= 0 {
		c.FiedlerTol = c.Tol
	}
	if c.CheckEvery <= 0 {
		c.CheckEvery = solver.DefaultCheckEvery
	}
	return c
}

// Sparsifier is a long-lived handle over one (graph, sparsifier) pair: the
// sparsifier subgraph plus the prepared pencil (shared shift, assembled
// Laplacians, Cholesky factorization), built once by NewSparsifier and
// reused across every subsequent measurement. This is the unit the paper's
// economics call for — construction is expensive, application is cheap —
// and the unit the serving engine caches.
//
// A Sparsifier is immutable after construction (Compact, for the owner
// only, is the one exception — see its doc) and safe for concurrent use;
// every method takes a context.Context that is threaded down into the
// PCG iterations and Lanczos sweeps, so slow measurements are cancellable
// end to end.
type Sparsifier struct {
	cfg Config
	n   int

	res *sparsify.Result // nil when built from Config.Prebuilt
	sub *graph.Graph     // the sparsifier subgraph
	pen *Pencil

	// Streaming-delta fast-path state: how the handle's pencil was
	// derived (nil on cold builds) and the stored-zero debt its patched
	// matrices carry into the next Update (removals leave dead CSC slots
	// behind until compaction).
	upd              *UpdateStats
	lgZeros, lpZeros int

	buildTime time.Duration
}

// NewSparsifier validates g, constructs (or adopts) the sparsifier, and
// prepares the pencil. Construction honors ctx: cancellation mid-build
// abandons the remaining recovery rounds and returns ErrCanceled.
func NewSparsifier(ctx context.Context, g *graph.Graph, cfg Config) (*Sparsifier, error) {
	cfg = cfg.withDefaults()
	if g == nil {
		return nil, fmt.Errorf("core: nil graph")
	}
	if g.N < 1 {
		return nil, fmt.Errorf("core: graph has no vertices")
	}
	if cfg.MaxVertices > 0 && g.N > cfg.MaxVertices {
		return nil, fmt.Errorf("%w: graph has %d vertices, limit is %d", ErrTooLarge, g.N, cfg.MaxVertices)
	}
	if !g.Connected() {
		return nil, fmt.Errorf("%w: graph with %d vertices and %d edges has %d components",
			ErrDisconnected, g.N, g.M(), componentCount(g))
	}
	if err := ctx.Err(); err != nil {
		return nil, wrapCanceled(fmt.Errorf("core: building sparsifier: %w", err))
	}

	start := time.Now()
	s := &Sparsifier{cfg: cfg, n: g.N}
	var shift []float64
	if p := cfg.Prebuilt; p != nil {
		if p.N != g.N {
			return nil, fmt.Errorf("%w: sparsifier has %d vertices, graph has %d", ErrDimension, p.N, g.N)
		}
		if !p.Connected() {
			return nil, fmt.Errorf("%w: prebuilt sparsifier with %d edges has %d components over %d vertices",
				ErrDisconnected, p.M(), componentCount(p), p.N)
		}
		s.sub = p
		// No Result to carry a shift from; NewPencil computes the same
		// default the construction path would have used.
	} else {
		var res *sparsify.Result
		var err error
		switch {
		case cfg.ShardThreshold > 0 && g.N > cfg.ShardThreshold:
			res, err = shard.Sparsify(ctx, g, shard.Options{
				Shards:     cfg.Shards,
				Threshold:  cfg.ShardThreshold,
				Sparsify:   cfg.Sparsify,
				Cache:      cfg.Clusters,
				Dispatcher: cfg.Dispatcher,
			})
		case cfg.Sparsify.Method == sparsify.ER && g.N > erPlanVertices:
			// ER needs linear solves in L_G — the one method whose
			// construction cost has a superlinear monolithic term — so
			// above this size it always goes through the sharded
			// pipeline: per-cluster estimates solve against small local
			// factors, and the plan is exactly the Schwarz structure
			// the tentpole solves reuse. Sharding here is the method's
			// own scaling decision, not the operator's (who may have
			// left ShardThreshold unset for trace-reduction workloads).
			res, err = shard.Sparsify(ctx, g, shard.Options{
				Shards:    cfg.Shards,
				Threshold: erPlanVertices,
				Sparsify:  cfg.Sparsify,
			})
		default:
			so := cfg.Sparsify
			if so.ERRanking && so.Method == sparsify.TraceReduction && g.N > erPlanVertices {
				// Ranking only needs the sketch estimates, not a
				// sharded build; plan clusters so the sketch systems
				// solve under Schwarz instead of factorizing L_G.
				plan, perr := shard.NewPlan(ctx, g, shard.Options{
					Shards:    cfg.Shards,
					Threshold: erPlanVertices,
					Sparsify:  so,
				})
				if perr != nil {
					return nil, wrapCanceled(perr)
				}
				so = so.WithERAssign(plan.Assign)
			}
			res, err = sparsify.SparsifyContext(ctx, g, so)
		}
		if err != nil {
			return nil, wrapCanceled(err)
		}
		s.res = res
		s.sub = res.Sparsifier
		// Carry the construction shift into the pencil so λmin of the
		// pencil is exactly 1 under the same regularization the
		// sparsifier was scored with.
		shift = res.Shift
	}

	builder, err := s.precondBuilder(ctx, cfg)
	if err != nil {
		return nil, err
	}
	pen, err := NewPencilWith(g, s.sub, shift, builder)
	if err != nil {
		return nil, err
	}
	s.pen = pen
	s.buildTime = time.Since(start)
	return s, nil
}

// precondBuilder resolves the configured preconditioner strategy into a
// concrete builder. Auto picks Schwarz exactly when a sharded build left
// its cluster assignment behind (an abandoned plan — the expander guard —
// leaves none); an explicit Schwarz request on a monolithic or prebuilt
// handle plans clusters on the sparsifier subgraph first, which is cheap:
// the subgraph is tree-plus-α sparse.
func (s *Sparsifier) precondBuilder(ctx context.Context, cfg Config) (precond.Builder, error) {
	var assign []int
	var keys []string
	if s.res != nil && s.res.Shards != nil {
		assign = s.res.Shards.Assign
		keys = s.res.Shards.ClusterKeys
	}
	kind := cfg.Precond
	if kind == precond.Auto {
		if assign != nil {
			kind = precond.Schwarz
		} else {
			kind = precond.Monolithic
		}
	}
	if kind != precond.Schwarz {
		return precond.NewMonolithic(), nil
	}
	if assign == nil {
		plan, err := shard.NewPlan(ctx, s.sub, shard.Options{
			Shards:    cfg.Shards,
			Threshold: cfg.ShardThreshold,
			Sparsify:  cfg.Sparsify,
		})
		if err != nil {
			return nil, wrapCanceled(err)
		}
		assign = plan.Assign
	}
	var fd precond.FactorDispatcher
	if cfg.RemoteFactors {
		fd, _ = cfg.Dispatcher.(precond.FactorDispatcher)
	}
	return precond.NewSchwarz(assign, precond.SchwarzOptions{
		Workers:      cfg.Sparsify.Workers,
		Overlap:      cfg.Overlap,
		Keys:         keys,
		Cache:        cfg.Factors,
		ApplyWorkers: cfg.ApplyWorkers,
		Factors:      fd,
		Ctx:          ctx,
	}), nil
}

// componentCount returns the number of connected components.
func componentCount(g *graph.Graph) int {
	max := -1
	for _, c := range g.Components() {
		if c > max {
			max = c
		}
	}
	return max + 1
}

// Solution is the outcome of one preconditioned solve.
type Solution struct {
	X          []float64
	Iterations int
	RelRes     float64
	Converged  bool
}

// Solve solves L_G x = b with PCG preconditioned by the sparsifier's
// Cholesky factorization, to the configured tolerance. The context is
// polled every CheckEvery iterations; cancellation returns ErrCanceled.
func (s *Sparsifier) Solve(ctx context.Context, b []float64) (*Solution, error) {
	return s.SolveTol(ctx, b, s.cfg.Tol)
}

// SolveTol is Solve with a per-call tolerance override (tol ≤ 0 selects
// the configured default).
func (s *Sparsifier) SolveTol(ctx context.Context, b []float64, tol float64) (*Solution, error) {
	if len(b) != s.n {
		return nil, fmt.Errorf("%w: rhs has length %d, graph has %d vertices", ErrDimension, len(b), s.n)
	}
	if tol <= 0 {
		tol = s.cfg.Tol
	}
	x := make([]float64, s.n)
	r, err := s.pen.SolveCtx(ctx, b, x, solver.Options{
		Tol: tol, MaxIter: s.cfg.MaxIter, CheckEvery: s.cfg.CheckEvery,
	})
	if err != nil {
		return nil, err
	}
	return &Solution{X: x, Iterations: r.Iterations, RelRes: r.RelRes, Converged: r.Converged}, nil
}

// maxPanelCols caps how many right-hand sides one block-PCG panel
// carries. Wider panels amortize the per-iteration matrix and factor
// traversals over more columns, but cost five panels of working memory
// and couple the iteration count of every column in the chunk to its
// slowest member (deflation recovers most, not all, of that); past ~16
// columns the traversals are already a small fraction of each iteration
// and the extra width buys nothing.
const maxPanelCols = 16

// SolveBatch solves one system per right-hand side against the same
// factorization with block PCG: every column in a chunk of up to
// maxPanelCols shares each iteration's matrix–panel product and
// preconditioner panel apply — the memory-bound traversals that dominate
// a scalar solve — while keeping its own scalar recurrences, converging
// and deflating independently. Chunks fan out across the configured
// construction workers. Results are in input order; the first error
// (dimension mismatch or cancellation) aborts the batch.
func (s *Sparsifier) SolveBatch(ctx context.Context, bs [][]float64) ([]*Solution, error) {
	return s.SolveBatchTol(ctx, bs, 0)
}

// SolveBatchTol is SolveBatch with a per-call tolerance override (tol ≤ 0
// selects the configured default). Every column in the batch solves to
// the same tolerance; callers mixing tolerances (the engine's request
// coalescer) group by tolerance first.
func (s *Sparsifier) SolveBatchTol(ctx context.Context, bs [][]float64, tol float64) ([]*Solution, error) {
	for i, b := range bs {
		if len(b) != s.n {
			return nil, fmt.Errorf("%w: rhs %d has length %d, graph has %d vertices", ErrDimension, i, len(b), s.n)
		}
	}
	if tol <= 0 {
		tol = s.cfg.Tol
	}
	out := make([]*Solution, len(bs))
	switch len(bs) {
	case 0:
		return out, nil
	case 1:
		// A single right-hand side gains nothing from panels: the scalar
		// loop avoids the interleaving copies entirely.
		sol, err := s.SolveTol(ctx, bs[0], tol)
		if err != nil {
			return nil, err
		}
		out[0] = sol
		return out, nil
	}
	nchunks := (len(bs) + maxPanelCols - 1) / maxPanelCols
	errs := make([]error, nchunks)
	workers := s.cfg.Sparsify.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > nchunks {
		workers = nchunks
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ci := range next {
				lo := ci * maxPanelCols
				hi := lo + maxPanelCols
				if hi > len(bs) {
					hi = len(bs)
				}
				xs := make([][]float64, hi-lo)
				for k := range xs {
					xs[k] = make([]float64, s.n)
				}
				rs, err := s.pen.SolveBlockCtx(ctx, bs[lo:hi], xs, solver.Options{
					Tol: tol, MaxIter: s.cfg.MaxIter, CheckEvery: s.cfg.CheckEvery,
				})
				if err != nil {
					errs[ci] = err
					continue
				}
				for k, r := range rs {
					out[lo+k] = &Solution{X: xs[k], Iterations: r.Iterations, RelRes: r.RelRes, Converged: r.Converged}
				}
			}
		}()
	}
	for ci := 0; ci < nchunks; ci++ {
		next <- ci
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// CondNumber estimates the largest generalized eigenvalue of the
// preconditioned pencil by Lanczos with the configured step count and
// seed: exactly κ(L_G, L_P) — the paper's quality metric — when the
// handle carries the monolithic factorization, and the effective
// condition number λmax(M⁻¹ L_G) PCG actually sees (Schwarz
// decomposition penalty included) when it carries the sharded Schwarz
// preconditioner (the Auto default for sharded builds). Force
// precond.Monolithic to measure the paper's κ on a sharded build.
func (s *Sparsifier) CondNumber(ctx context.Context) (float64, error) {
	return s.CondNumberWith(ctx, s.cfg.LanczosSteps, s.cfg.Sparsify.Seed)
}

// CondNumberWith is CondNumber with explicit Lanczos steps (≤ 0 for the
// default) and seed, for callers issuing repeated estimates with varied
// randomness against one handle.
func (s *Sparsifier) CondNumberWith(ctx context.Context, steps int, seed int64) (float64, error) {
	return s.pen.CondNumberCtx(ctx, steps, seed)
}

// TraceProxy estimates the trace of the preconditioned operator with a
// Hutchinson estimator using the configured probe count and seed:
// Tr(L_P⁻¹ L_G) — the paper's condition-number proxy (eq. 5) — under the
// monolithic strategy, and Tr(M⁻¹ L_G) for the effective preconditioner
// M under Schwarz (the Auto default for sharded builds; see CondNumber).
func (s *Sparsifier) TraceProxy(ctx context.Context) (float64, error) {
	return s.TraceProxyWith(ctx, s.cfg.TraceProbes, s.cfg.Sparsify.Seed)
}

// TraceProxyWith is TraceProxy with explicit probe count (≤ 0 for the
// default) and seed.
func (s *Sparsifier) TraceProxyWith(ctx context.Context, probes int, seed int64) (float64, error) {
	return s.pen.TraceEstCtx(ctx, probes, seed)
}

// Fiedler approximates the Fiedler vector of the graph by inverse power
// iteration with the configured steps, inner tolerance, and seed.
func (s *Sparsifier) Fiedler(ctx context.Context) ([]float64, error) {
	return s.FiedlerWith(ctx, s.cfg.FiedlerSteps, s.cfg.FiedlerTol, s.cfg.Sparsify.Seed)
}

// FiedlerWith is Fiedler with explicit step count, inner PCG tolerance,
// and seed.
func (s *Sparsifier) FiedlerWith(ctx context.Context, steps int, tol float64, seed int64) ([]float64, error) {
	return s.pen.FiedlerCtx(ctx, steps, tol, seed)
}

// Partition computes a balanced spectral bipartition: the Fiedler vector
// split at its median (the paper's §4.3 application). part[v] is 0 or 1.
func (s *Sparsifier) Partition(ctx context.Context) ([]int, error) {
	fv, err := s.Fiedler(ctx)
	if err != nil {
		return nil, err
	}
	return partition.Bipartition(fv), nil
}

// Compact releases construction scaffolding the serving path never reads —
// the spanning tree (whose rooted representation retains the full input
// graph) and the per-edge membership flags — keeping the sparsifier
// subgraph, shift, edge list, and timing stats. A long-lived cache of
// handles should bound factorizations, not dead scaffolding; the engine
// calls this before publishing an artifact. After Compact, Result().Tree
// and Result().InSub are nil.
//
// Compact is the one exception to the handle's immutability: it must be
// called by the handle's single owner BEFORE the handle is shared with
// other goroutines (as the engine does, pre-publication). Calling it on a
// handle already visible elsewhere races with concurrent Result() readers.
func (s *Sparsifier) Compact() {
	if s.res != nil {
		s.res.Tree = nil
		s.res.InSub = nil
		// The per-vertex cluster assignment and the cluster fingerprint
		// keys deliberately survive Compact: they are what lets Update map
		// a later edge delta onto dirty clusters and reuse the rest — N
		// ints plus K short strings buys skipping most of a rebuild.
	}
}

// N returns the vertex count of the underlying graphs.
func (s *Sparsifier) N() int { return s.n }

// SparsifierGraph returns the sparsifier subgraph P.
func (s *Sparsifier) SparsifierGraph() *graph.Graph { return s.sub }

// Result returns the construction result (spanning tree, per-edge
// membership, timing stats); nil when the handle was built from a prebuilt
// subgraph.
func (s *Sparsifier) Result() *sparsify.Result { return s.res }

// ShardStats returns the per-shard build telemetry when the handle was
// constructed through the sharded pipeline (Config.ShardThreshold
// exceeded); nil for monolithic or prebuilt handles. The stats survive
// Compact.
func (s *Sparsifier) ShardStats() *sparsify.ShardStats {
	if s.res == nil {
		return nil
	}
	return s.res.Shards
}

// Sharded reports whether the handle was actually built through the
// sharded pipeline. It is false when the expander guard abandoned the
// plan and built monolithically — ShardStats still records that decision.
func (s *Sparsifier) Sharded() bool {
	st := s.ShardStats()
	return st != nil && !st.Abandoned
}

// Pencil returns the prepared pencil for callers needing the raw
// factorization (e.g. custom measurement loops).
func (s *Sparsifier) Pencil() *Pencil { return s.pen }

// Shift returns the shared diagonal regularization both Laplacians carry.
func (s *Sparsifier) Shift() []float64 { return s.pen.Shift }

// Config returns the handle's resolved configuration.
func (s *Sparsifier) Config() Config { return s.cfg }

// BuildTime reports how long construction (sparsification + factorization)
// took.
func (s *Sparsifier) BuildTime() time.Duration { return s.buildTime }

// UpdateStats reports how the streaming-delta fast path served the Update
// that produced this handle: whether the stitch ran localized and whether
// the pencil was patched in place instead of reassembled. Nil for handles
// built cold (New / NewSparsifier).
func (s *Sparsifier) UpdateStats() *UpdateStats { return s.upd }

// PrecondStats reports how the pencil's preconditioner was built: the
// strategy, per-cluster factor nonzeros, coarse system size, and build
// time. Never nil.
func (s *Sparsifier) PrecondStats() *precond.Stats { return s.pen.PreStats }

// FactorNNZ reports the total nonzeros across the preconditioner's
// Cholesky factors (one monolithic factor, or every Schwarz cluster
// factor).
func (s *Sparsifier) FactorNNZ() int { return int(s.pen.PreStats.FactorNNZ) }

// MemBytes reports the preconditioner's storage footprint.
func (s *Sparsifier) MemBytes() int64 { return s.pen.PreStats.MemBytes }
