package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/chol"
	"repro/internal/graph"
	"repro/internal/lap"
	"repro/internal/precond"
	"repro/internal/shard"
	"repro/internal/sparse"
	"repro/internal/sparsify"
)

// BaseGraph reconstructs the handle's input graph G from the assembled
// pencil. The pencil deliberately does not retain the edge list (a cache
// of handles should not pin every input graph), but L_G determines it
// exactly: every off-diagonal entry is −w of one edge, and the shift
// lives only on the diagonal — so the reconstruction is lossless,
// including weights, at O(nnz) cost and no extra resident memory.
func (s *Sparsifier) BaseGraph() *graph.Graph {
	lg := s.pen.LG
	edges := make([]graph.Edge, 0, (lg.NNZ()-lg.Cols)/2)
	for j := 0; j < lg.Cols; j++ {
		for q := lg.ColPtr[j]; q < lg.ColPtr[j+1]; q++ {
			i := lg.RowIdx[q]
			if i < j && lg.Val[q] < 0 {
				edges = append(edges, graph.Edge{U: i, V: j, W: -lg.Val[q]})
			}
		}
	}
	// Emitted column-major with i < j: normalized, deduplicated, valid by
	// construction of the Laplacian.
	return graph.FromNormalized(lg.Cols, edges)
}

// UpdateStats describes how much of an Update the streaming-delta fast
// path served: whether the stitch ran localized to the dirty region and
// which pencil sides were patched in place instead of reassembled from
// triplets. Retrieve it from the updated handle via
// Sparsifier.UpdateStats (nil on cold-built handles).
type UpdateStats struct {
	// Localized reports the stitch was restricted to cut edges incident
	// to dirty clusters, adopting the base build's decisions elsewhere.
	Localized bool
	// LGPatched / LPPatched report the regularized Laplacians were
	// derived by in-place CSC patching (lap.Patch) of the base pencil
	// rather than full triplet assembly.
	LGPatched bool
	LPPatched bool
	// PatchTime is the time spent deriving the patched pencil matrices
	// (script construction plus in-place edits); AssembleTime is the
	// time spent on whichever sides fell back to cold assembly.
	PatchTime    time.Duration
	AssembleTime time.Duration
	// StoredZeros counts dead off-diagonal slots the patched matrices
	// carry (edge removals leave stored zeros behind until compaction);
	// Compacted reports DropZeros ran during this update.
	StoredZeros int
	Compacted   bool
}

// Update builds a new handle for the graph that results from applying
// delta d to this handle's input graph, reusing as much of this handle's
// work as the delta allows. The receiver is unchanged (handles stay
// immutable); the returned handle carries the same configuration.
//
// For a handle built through the sharded pipeline the rebuild is
// incremental AND localized: the retained plan assignment maps the delta
// onto dirty clusters, clean clusters' sparsifier edges and Schwarz
// factors are adopted verbatim (ShardStats.ClustersReused /
// PrecondStats.FactorsReused report how many), the stitch re-decides only
// cut edges incident to dirty clusters (ShardStats.StitchLocalized), and
// the pencil's Laplacians are patched in place instead of reassembled
// (UpdateStats). Monolithic and prebuilt handles fall back to a full
// rebuild — still a correct Update, with nothing reused.
func (s *Sparsifier) Update(ctx context.Context, d graph.Delta) (*Sparsifier, error) {
	p, err := d.ApplyPatch(s.BaseGraph())
	if err != nil {
		return nil, fmt.Errorf("core: applying delta: %w", err)
	}
	return UpdateSparsifierPatch(ctx, s, p)
}

// UpdateSparsifier builds a handle for newG incrementally against base:
// the explicit-graph form of Sparsifier.Update, for callers that already
// materialized the updated graph. Without a graph.Patch there is no dirty
// set, so the stitch and pencil assembly run globally — per-cluster reuse
// still applies, but none of the localized fast path does. Callers that
// hold the delta should prefer UpdateSparsifierPatch. newG must keep
// base's vertex set for the plan to be reusable; a different vertex count
// falls back to a full build.
func UpdateSparsifier(ctx context.Context, base *Sparsifier, newG *graph.Graph) (*Sparsifier, error) {
	return updateSparsifier(ctx, base, newG, nil)
}

// UpdateSparsifierPatch builds a handle for the patched graph p.G
// incrementally against base — the streaming-delta fast path. The patch's
// touched-vertex set localizes the stitch to dirty clusters, and when the
// localized stitch stays inside the dirty region the pencil's Laplacians
// are derived by in-place CSC patching at O(dirty) cost instead of two
// O(n + m) triplet assemblies. Any precondition failure degrades to the
// plain incremental (then full) rebuild — the result is always a correct
// handle for p.G.
func UpdateSparsifierPatch(ctx context.Context, base *Sparsifier, p *graph.Patch) (*Sparsifier, error) {
	if p == nil || p.G == nil {
		return nil, fmt.Errorf("core: update from nil patch")
	}
	return updateSparsifier(ctx, base, p.G, p)
}

func updateSparsifier(ctx context.Context, base *Sparsifier, newG *graph.Graph, p *graph.Patch) (*Sparsifier, error) {
	if base == nil {
		return nil, fmt.Errorf("core: update of nil handle")
	}
	cfg := base.cfg
	st := base.ShardStats()
	if st == nil || st.Abandoned || st.Assign == nil || newG == nil || newG.N != base.n {
		// Nothing reusable (monolithic, prebuilt, abandoned plan, or a
		// changed vertex set): a full rebuild is the correct Update.
		return NewSparsifier(ctx, newG, cfg)
	}
	if cfg.MaxVertices > 0 && newG.N > cfg.MaxVertices {
		return nil, fmt.Errorf("%w: graph has %d vertices, limit is %d", ErrTooLarge, newG.N, cfg.MaxVertices)
	}
	// A reweight-only patch cannot change connectivity (ApplyPatch
	// validates positive weights), so the O(n + m) BFS check is skipped —
	// part of keeping the ≤1%-delta cost O(dirty).
	if (p == nil || p.Structural()) && !newG.Connected() {
		return nil, fmt.Errorf("%w: updated graph with %d vertices and %d edges has %d components",
			ErrDisconnected, newG.N, newG.M(), componentCount(newG))
	}
	if err := ctx.Err(); err != nil {
		return nil, wrapCanceled(fmt.Errorf("core: updating sparsifier: %w", err))
	}

	start := time.Now()
	// Seed a cache from the base handle's own artifacts, chained over the
	// shared caches (if any), so Update reuses the base's work even with
	// no engine behind it — and an engine-evicted cluster entry is
	// re-served from the handle that still holds it.
	hc := seedHandleCache(base, cfg.Clusters, cfg.Factors)
	var baseEdges []int
	for _, sb := range st.PerShard {
		baseEdges = append(baseEdges, sb.Edges)
	}
	res, err := shard.SparsifyIncremental(ctx, newG, st.Assign, shard.Options{
		Shards:           cfg.Shards,
		Threshold:        cfg.ShardThreshold,
		RebalanceFactor:  cfg.Rebalance,
		BaseClusterEdges: baseEdges,
		Sparsify:         cfg.Sparsify,
		Cache:            hc,
		Dispatcher:       cfg.Dispatcher,
		Localize:         localizeFromBase(base, p),
	})
	if err != nil {
		return nil, wrapCanceled(err)
	}
	out := &Sparsifier{cfg: cfg, n: newG.N, res: res, sub: res.Sparsifier}
	pcfg := cfg
	pcfg.Factors = hc
	builder, err := out.precondBuilder(ctx, pcfg)
	if err != nil {
		return nil, err
	}
	pen, upd, lgZeros, lpZeros, err := updatedPencil(base, newG, p, res, builder)
	if err != nil {
		return nil, err
	}
	out.pen = pen
	out.upd = upd
	out.lgZeros, out.lpZeros = lgZeros, lpZeros
	out.buildTime = time.Since(start)
	return out, nil
}

// localizeFromBase assembles the Localize handoff the dirty-region stitch
// consumes. The base sparsifier graph provides the endpoint-membership
// oracle; for non-structural patches the base sparsifier edges are
// resolved to new-graph indices once (robust to edge-order differences
// between the graph the base was built from and the patched graph) so
// clean clusters adopt by index without hashing or cache lookups.
// Returns nil — plain incremental rebuild — when no patch is available.
func localizeFromBase(base *Sparsifier, p *graph.Patch) *shard.Localize {
	if p == nil || base.sub == nil {
		return nil
	}
	sub := base.sub
	loc := &shard.Localize{
		DirtyVertices: p.Touched,
		BaseSub: func(u, v int) bool {
			_, ok := sub.EdgeBetween(u, v)
			return ok
		},
	}
	st := base.ShardStats()
	if !p.Structural() && len(st.ClusterKeys) == st.Shards {
		idx := make([]int, len(sub.Edges))
		for i, e := range sub.Edges {
			ei, ok := p.G.EdgeBetween(e.U, e.V)
			if !ok {
				// A base sparsifier edge missing from a reweight-only
				// patch means the handoff's premises are broken; fall back
				// to membership-only localization.
				return loc
			}
			idx[i] = ei
		}
		loc.IndexAligned = true
		loc.BaseEdgeIdx = idx
		loc.BaseKeys = st.ClusterKeys
	}
	return loc
}

// storedZeroCompactionDiv triggers DropZeros compaction of a patched
// Laplacian once stored-zero slots exceed nnz divided by this: removals
// leave dead slots behind, and letting them pile up past ~12% taxes every
// subsequent matvec.
const storedZeroCompactionDiv = 8

// updatedPencil produces the new handle's pencil. When the localized
// stitch proved the delta stayed inside the dirty region, both Laplacians
// are derived by in-place CSC patching of the base pencil under the base
// shift — O(dirty) instead of O(n + m) — with per-side fallback to cold
// assembly on any script mismatch. Otherwise this is NewPencilWith.
//
// The patched pencil keeps the BASE shift: lap.Shift is a global constant
// (rel × mean weighted degree), so a delta nudges it everywhere and
// re-deriving it would force a full-diagonal rewrite. The drift is
// bounded by the delta's share of total weight — the same stale-values
// argument that lets Schwarz factors be reused — and resets to exact on
// the next cold rebuild or replan.
func updatedPencil(base *Sparsifier, newG *graph.Graph, p *graph.Patch, res *sparsify.Result, builder precond.Builder) (*Pencil, *UpdateStats, int, int, error) {
	st := res.Shards
	upd := &UpdateStats{Localized: st != nil && st.StitchLocalized}
	patchable := p != nil && base.pen != nil &&
		st != nil && st.Incremental && st.StitchLocalized && !st.Abandoned &&
		st.CutRepaired == 0 && res.Reweight == nil
	if !patchable {
		t := time.Now()
		pen, err := NewPencilWith(newG, res.Sparsifier, res.Shift, builder)
		if err != nil {
			return nil, nil, 0, 0, err
		}
		upd.AssembleTime = time.Since(t)
		return pen, upd, 0, 0, nil
	}

	shift := base.pen.Shift
	lgZeros, lpZeros := base.lgZeros, base.lpZeros

	t := time.Now()
	lg, dz, err := lap.Patch(base.pen.LG, newG, shift, lap.Script{
		Reweighted: p.Reweighted, Added: p.Added, Removed: p.Removed,
	})
	if err == nil {
		upd.LGPatched = true
		lgZeros += dz
	} else {
		// The base matrix does not match the script (should be
		// unreachable); cold assembly is always correct.
		a := time.Now()
		lg = lap.Laplacian(newG, shift)
		upd.AssembleTime += time.Since(a)
		lgZeros = 0
	}

	newSub := res.Sparsifier
	sc, ok := subPatchScript(base.sub, newSub, st.Assign, p.Touched)
	var lp *sparse.CSC
	if ok {
		lp, dz, err = lap.Patch(base.pen.LP, newSub, shift, sc)
	}
	if ok && err == nil {
		upd.LPPatched = true
		lpZeros += dz
	} else {
		a := time.Now()
		lp = lap.Laplacian(newSub, shift)
		upd.AssembleTime += time.Since(a)
		lpZeros = 0
	}

	if lgZeros*storedZeroCompactionDiv > lg.NNZ() {
		lg = lg.DropZeros()
		lgZeros = 0
		upd.Compacted = true
	}
	if lpZeros*storedZeroCompactionDiv > lp.NNZ() {
		lp = lp.DropZeros()
		lpZeros = 0
		upd.Compacted = true
	}
	upd.PatchTime = time.Since(t) - upd.AssembleTime
	upd.StoredZeros = lgZeros + lpZeros

	pen, err := newPencilFromParts(newG.N, shift, lg, lp, builder)
	if err != nil {
		return nil, nil, 0, 0, err
	}
	return pen, upd, lgZeros, lpZeros, nil
}

// subPatchScript diffs the base sparsifier subgraph against the new one,
// restricted to edges incident to dirty clusters — the only place a
// localized rebuild with zero repairs can differ. Map keys are normalized
// (U < V) endpoint pairs; indices in the returned script refer to
// newSub.Edges as lap.Patch requires. Returns ok=false when the dirty
// restriction cannot be trusted (missing assignment), sending the caller
// to cold assembly.
func subPatchScript(baseSub, newSub *graph.Graph, assign []int, touched []int) (lap.Script, bool) {
	if baseSub == nil || len(assign) != newSub.N {
		return lap.Script{}, false
	}
	dirty := make(map[int]bool)
	for _, v := range touched {
		if v >= 0 && v < len(assign) {
			dirty[assign[v]] = true
		}
	}
	incident := func(e graph.Edge) bool {
		return dirty[assign[e.U]] || dirty[assign[e.V]]
	}
	old := make(map[[2]int]float64)
	for _, e := range baseSub.Edges {
		if incident(e) {
			old[[2]int{e.U, e.V}] = e.W
		}
	}
	var sc lap.Script
	for i, e := range newSub.Edges {
		if !incident(e) {
			continue
		}
		w, was := old[[2]int{e.U, e.V}]
		switch {
		case !was:
			sc.Added = append(sc.Added, i)
		case w != e.W:
			sc.Reweighted = append(sc.Reweighted, i)
		}
		delete(old, [2]int{e.U, e.V})
	}
	for k, w := range old {
		sc.Removed = append(sc.Removed, graph.Edge{U: k[0], V: k[1], W: w})
	}
	return sc, true
}

// factorEntry is one cached Schwarz factor plus the extended index set it
// was built over.
type factorEntry struct {
	idx []int
	f   *chol.Factor
}

// handleCache backs an Update with the base handle's per-cluster
// artifacts: cluster sparsifier edge sets recovered from the stitched
// subgraph (intra-cluster edges partition exactly into the per-cluster
// results) and Schwarz factors lifted from the base preconditioner. Reads
// check the seeded maps first and fall through to the shared caches;
// writes go to both, so the engine's store learns the rebuilt clusters.
type handleCache struct {
	mu       sync.Mutex
	clusters map[string][][2]int
	factors  map[string]factorEntry
	extC     shard.ClusterCache
	extF     precond.FactorCache
}

func seedHandleCache(base *Sparsifier, extC shard.ClusterCache, extF precond.FactorCache) *handleCache {
	hc := &handleCache{
		clusters: make(map[string][][2]int),
		factors:  make(map[string]factorEntry),
		extC:     extC,
		extF:     extF,
	}
	st := base.ShardStats()
	keys := st.ClusterKeys
	if len(keys) != st.Shards {
		return hc // keys unavailable (older artifact); chain-only cache
	}
	assign := st.Assign
	byCluster := make([][][2]int, st.Shards)
	for _, e := range base.sub.Edges {
		if c := assign[e.U]; c == assign[e.V] {
			byCluster[c] = append(byCluster[c], [2]int{e.U, e.V})
		}
	}
	for c, pairs := range byCluster {
		hc.clusters[keys[c]] = pairs
	}
	if sp, ok := base.pen.Pre.(*precond.SchwarzPrecond); ok && sp.NumClusters() == st.Shards {
		for c := 0; c < st.Shards; c++ {
			idx, f := sp.ClusterFactor(c)
			if f != nil {
				hc.factors[keys[c]] = factorEntry{idx: idx, f: f}
			}
		}
	}
	return hc
}

// Reads consult the shared cache first — its hit/miss accounting is the
// operator-visible reuse signal — and fall back to the handle-seeded
// maps, which also cover entries the shared LRU has since evicted.
func (h *handleCache) GetCluster(key string) ([][2]int, bool) {
	if h.extC != nil {
		if pairs, ok := h.extC.GetCluster(key); ok {
			return pairs, true
		}
	}
	h.mu.Lock()
	pairs, ok := h.clusters[key]
	h.mu.Unlock()
	return pairs, ok
}

func (h *handleCache) AddCluster(key string, edges [][2]int) {
	h.mu.Lock()
	h.clusters[key] = edges
	h.mu.Unlock()
	if h.extC != nil {
		h.extC.AddCluster(key, edges)
	}
}

func (h *handleCache) GetFactor(key string) (*chol.Factor, []int, bool) {
	if h.extF != nil {
		if f, idx, ok := h.extF.GetFactor(key); ok {
			return f, idx, true
		}
	}
	h.mu.Lock()
	e, ok := h.factors[key]
	h.mu.Unlock()
	if ok {
		return e.f, e.idx, true
	}
	return nil, nil, false
}

func (h *handleCache) AddFactor(key string, f *chol.Factor, idx []int) {
	h.mu.Lock()
	h.factors[key] = factorEntry{idx: idx, f: f}
	h.mu.Unlock()
	if h.extF != nil {
		h.extF.AddFactor(key, f, idx)
	}
}
