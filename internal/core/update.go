package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/chol"
	"repro/internal/graph"
	"repro/internal/precond"
	"repro/internal/shard"
)

// BaseGraph reconstructs the handle's input graph G from the assembled
// pencil. The pencil deliberately does not retain the edge list (a cache
// of handles should not pin every input graph), but L_G determines it
// exactly: every off-diagonal entry is −w of one edge, and the shift
// lives only on the diagonal — so the reconstruction is lossless,
// including weights, at O(nnz) cost and no extra resident memory.
func (s *Sparsifier) BaseGraph() *graph.Graph {
	lg := s.pen.LG
	edges := make([]graph.Edge, 0, (lg.NNZ()-lg.Cols)/2)
	for j := 0; j < lg.Cols; j++ {
		for q := lg.ColPtr[j]; q < lg.ColPtr[j+1]; q++ {
			i := lg.RowIdx[q]
			if i < j && lg.Val[q] < 0 {
				edges = append(edges, graph.Edge{U: i, V: j, W: -lg.Val[q]})
			}
		}
	}
	// Emitted column-major with i < j: normalized, deduplicated, valid by
	// construction of the Laplacian.
	return graph.FromNormalized(lg.Cols, edges)
}

// Update builds a new handle for the graph that results from applying
// delta d to this handle's input graph, reusing as much of this handle's
// work as the delta allows. The receiver is unchanged (handles stay
// immutable); the returned handle carries the same configuration.
//
// For a handle built through the sharded pipeline the rebuild is
// incremental: the retained plan assignment maps the delta onto dirty
// clusters, clean clusters' sparsifier edges and Schwarz factors are
// adopted verbatim (ShardStats.ClustersReused / PrecondStats.FactorsReused
// report how many), and only the dirty clusters, the stitch, and the
// coarse solve are redone. Monolithic and prebuilt handles fall back to a
// full rebuild — still a correct Update, with nothing reused.
func (s *Sparsifier) Update(ctx context.Context, d graph.Delta) (*Sparsifier, error) {
	newG, err := d.Apply(s.BaseGraph())
	if err != nil {
		return nil, fmt.Errorf("core: applying delta: %w", err)
	}
	return UpdateSparsifier(ctx, s, newG)
}

// UpdateSparsifier builds a handle for newG incrementally against base:
// the explicit-graph form of Sparsifier.Update, for callers (the serving
// engine) that already materialized the updated graph. newG must keep
// base's vertex set for the plan to be reusable; a different vertex count
// falls back to a full build.
func UpdateSparsifier(ctx context.Context, base *Sparsifier, newG *graph.Graph) (*Sparsifier, error) {
	if base == nil {
		return nil, fmt.Errorf("core: update of nil handle")
	}
	cfg := base.cfg
	st := base.ShardStats()
	if st == nil || st.Abandoned || st.Assign == nil || newG == nil || newG.N != base.n {
		// Nothing reusable (monolithic, prebuilt, abandoned plan, or a
		// changed vertex set): a full rebuild is the correct Update.
		return NewSparsifier(ctx, newG, cfg)
	}
	if cfg.MaxVertices > 0 && newG.N > cfg.MaxVertices {
		return nil, fmt.Errorf("%w: graph has %d vertices, limit is %d", ErrTooLarge, newG.N, cfg.MaxVertices)
	}
	if !newG.Connected() {
		return nil, fmt.Errorf("%w: updated graph with %d vertices and %d edges has %d components",
			ErrDisconnected, newG.N, newG.M(), componentCount(newG))
	}
	if err := ctx.Err(); err != nil {
		return nil, wrapCanceled(fmt.Errorf("core: updating sparsifier: %w", err))
	}

	start := time.Now()
	// Seed a cache from the base handle's own artifacts, chained over the
	// shared caches (if any), so Update reuses the base's work even with
	// no engine behind it — and an engine-evicted cluster entry is
	// re-served from the handle that still holds it.
	hc := seedHandleCache(base, cfg.Clusters, cfg.Factors)
	var baseEdges []int
	for _, sb := range st.PerShard {
		baseEdges = append(baseEdges, sb.Edges)
	}
	res, err := shard.SparsifyIncremental(ctx, newG, st.Assign, shard.Options{
		Shards:           cfg.Shards,
		Threshold:        cfg.ShardThreshold,
		RebalanceFactor:  cfg.Rebalance,
		BaseClusterEdges: baseEdges,
		Sparsify:         cfg.Sparsify,
		Cache:            hc,
		Dispatcher:       cfg.Dispatcher,
	})
	if err != nil {
		return nil, wrapCanceled(err)
	}
	out := &Sparsifier{cfg: cfg, n: newG.N, res: res, sub: res.Sparsifier}
	pcfg := cfg
	pcfg.Factors = hc
	builder, err := out.precondBuilder(ctx, pcfg)
	if err != nil {
		return nil, err
	}
	pen, err := NewPencilWith(newG, out.sub, res.Shift, builder)
	if err != nil {
		return nil, err
	}
	out.pen = pen
	out.buildTime = time.Since(start)
	return out, nil
}

// factorEntry is one cached Schwarz factor plus the extended index set it
// was built over.
type factorEntry struct {
	idx []int
	f   *chol.Factor
}

// handleCache backs an Update with the base handle's per-cluster
// artifacts: cluster sparsifier edge sets recovered from the stitched
// subgraph (intra-cluster edges partition exactly into the per-cluster
// results) and Schwarz factors lifted from the base preconditioner. Reads
// check the seeded maps first and fall through to the shared caches;
// writes go to both, so the engine's store learns the rebuilt clusters.
type handleCache struct {
	mu       sync.Mutex
	clusters map[string][][2]int
	factors  map[string]factorEntry
	extC     shard.ClusterCache
	extF     precond.FactorCache
}

func seedHandleCache(base *Sparsifier, extC shard.ClusterCache, extF precond.FactorCache) *handleCache {
	hc := &handleCache{
		clusters: make(map[string][][2]int),
		factors:  make(map[string]factorEntry),
		extC:     extC,
		extF:     extF,
	}
	st := base.ShardStats()
	keys := st.ClusterKeys
	if len(keys) != st.Shards {
		return hc // keys unavailable (older artifact); chain-only cache
	}
	assign := st.Assign
	byCluster := make([][][2]int, st.Shards)
	for _, e := range base.sub.Edges {
		if c := assign[e.U]; c == assign[e.V] {
			byCluster[c] = append(byCluster[c], [2]int{e.U, e.V})
		}
	}
	for c, pairs := range byCluster {
		hc.clusters[keys[c]] = pairs
	}
	if sp, ok := base.pen.Pre.(*precond.SchwarzPrecond); ok && sp.NumClusters() == st.Shards {
		for c := 0; c < st.Shards; c++ {
			idx, f := sp.ClusterFactor(c)
			if f != nil {
				hc.factors[keys[c]] = factorEntry{idx: idx, f: f}
			}
		}
	}
	return hc
}

// Reads consult the shared cache first — its hit/miss accounting is the
// operator-visible reuse signal — and fall back to the handle-seeded
// maps, which also cover entries the shared LRU has since evicted.
func (h *handleCache) GetCluster(key string) ([][2]int, bool) {
	if h.extC != nil {
		if pairs, ok := h.extC.GetCluster(key); ok {
			return pairs, true
		}
	}
	h.mu.Lock()
	pairs, ok := h.clusters[key]
	h.mu.Unlock()
	return pairs, ok
}

func (h *handleCache) AddCluster(key string, edges [][2]int) {
	h.mu.Lock()
	h.clusters[key] = edges
	h.mu.Unlock()
	if h.extC != nil {
		h.extC.AddCluster(key, edges)
	}
}

func (h *handleCache) GetFactor(key string) (*chol.Factor, []int, bool) {
	if h.extF != nil {
		if f, idx, ok := h.extF.GetFactor(key); ok {
			return f, idx, true
		}
	}
	h.mu.Lock()
	e, ok := h.factors[key]
	h.mu.Unlock()
	if ok {
		return e.f, e.idx, true
	}
	return nil, nil, false
}

func (h *handleCache) AddFactor(key string, f *chol.Factor, idx []int) {
	h.mu.Lock()
	h.factors[key] = factorEntry{idx: idx, f: f}
	h.mu.Unlock()
	if h.extF != nil {
		h.extF.AddFactor(key, f, idx)
	}
}
