package core

import (
	"context"
	"errors"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/sparsify"
)

// TestBaseGraphRoundTrip: the input graph must be recoverable from the
// assembled pencil exactly — same vertex count, same edge set, same
// weights — since Update reconstructs it instead of pinning the edge
// list in every cached handle.
func TestBaseGraphRoundTrip(t *testing.T) {
	g := gen.CircuitGrid(18, 18, 0.05, 9)
	s, err := NewSparsifier(context.Background(), g, Config{Sparsify: sparsify.Options{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	back := s.BaseGraph()
	if back.N != g.N || back.M() != g.M() {
		t.Fatalf("round trip: %d vertices / %d edges, want %d / %d", back.N, back.M(), g.N, g.M())
	}
	want := make(map[[2]int]float64, g.M())
	for _, e := range g.Edges {
		want[[2]int{e.U, e.V}] = e.W
	}
	for _, e := range back.Edges {
		w, ok := want[[2]int{e.U, e.V}]
		if !ok {
			t.Fatalf("reconstructed edge (%d,%d) not in input", e.U, e.V)
		}
		if w != e.W {
			t.Fatalf("edge (%d,%d) weight %g, want %g (must be bit-exact)", e.U, e.V, e.W, w)
		}
	}
}

// TestUpdateMonolithicFallsBack: Update on a monolithic handle is a full
// rebuild — correct, nothing reused — and still honors validation.
func TestUpdateMonolithicFallsBack(t *testing.T) {
	ctx := context.Background()
	g := gen.Grid2D(12, 12, 1)
	s, err := NewSparsifier(ctx, g, Config{Sparsify: sparsify.Options{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	up, err := s.Update(ctx, graph.Delta{Set: []graph.Edge{{U: 0, V: g.N - 1, W: 2}}})
	if err != nil {
		t.Fatal(err)
	}
	if up.ShardStats() != nil {
		t.Fatal("monolithic update claims shard telemetry")
	}
	if up.BaseGraph().M() != g.M()+1 {
		t.Fatalf("updated graph has %d edges, want %d", up.BaseGraph().M(), g.M()+1)
	}
	// The original handle must be untouched.
	if s.BaseGraph().M() != g.M() {
		t.Fatal("update mutated the base handle")
	}
}

// TestUpdateRejectsBadDeltas: invalid deltas surface as errors, and a
// delta that disconnects the graph is refused with ErrDisconnected.
func TestUpdateRejectsBadDeltas(t *testing.T) {
	ctx := context.Background()
	// A path graph: removing any edge disconnects it.
	edges := []graph.Edge{}
	n := 64
	for i := 0; i+1 < n; i++ {
		edges = append(edges, graph.Edge{U: i, V: i + 1, W: 1})
	}
	g := graph.MustNew(n, edges)
	s, err := NewSparsifier(ctx, g, Config{Sparsify: sparsify.Options{Seed: 1}, ShardThreshold: 16})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Update(ctx, graph.Delta{Remove: [][2]int{{5, 6}}}); !errors.Is(err, ErrDisconnected) {
		t.Fatalf("disconnecting delta: err = %v, want ErrDisconnected", err)
	}
	if _, err := s.Update(ctx, graph.Delta{Remove: [][2]int{{0, 63}}}); err == nil {
		t.Fatal("removing an absent edge must fail")
	}
	if _, err := s.Update(ctx, graph.Delta{Set: []graph.Edge{{U: 0, V: 1, W: -1}}}); err == nil {
		t.Fatal("non-positive weight must fail")
	}
	if _, err := s.Update(ctx, graph.Delta{Set: []graph.Edge{{U: 0, V: n + 4, W: 1}}}); err == nil {
		t.Fatal("out-of-range endpoint must fail")
	}
}
