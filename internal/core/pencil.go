package core

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/chol"
	"repro/internal/eig"
	"repro/internal/graph"
	"repro/internal/lap"
	"repro/internal/solver"
	"repro/internal/sparse"
)

// Pencil is a prepared regularized Laplacian pencil (L_G, L_P): the shared
// diagonal shift, both assembled Laplacians, and the Cholesky factorization
// of the sparsifier side. Every measurement the library exposes — PCG
// solves, condition-number and trace estimates, Fiedler vectors — consumes
// exactly this bundle, so preparing it once and reusing it is the unit of
// caching for the serving engine: repeated solves against the same
// (graph, sparsifier) pair skip both Laplacian assembly and refactorization.
//
// A Pencil is immutable after construction and safe for concurrent use:
// every method allocates its own scratch vectors. It deliberately does not
// retain the input graphs: once the Laplacians are assembled they are the
// working representation, and a long-lived cache of pencils (the serving
// engine's store) should not pin a redundant copy of every edge list.
type Pencil struct {
	N int // vertex count of the underlying graphs

	Shift  []float64    // shared diagonal regularization (λmin of pencil = 1)
	LG, LP *sparse.CSC  // regularized Laplacians of G and P
	Factor *chol.Factor // Cholesky factorization of LP
}

// NewPencil assembles and factorizes the pencil for graph g preconditioned
// by sparsifier p. shift is the shared regularization diagonal; pass nil to
// compute the default lap.Shift(g, 0). When the sparsifier came out of
// Sparsify, pass its Result.Shift so the pencil matches construction.
func NewPencil(g, p *graph.Graph, shift []float64) (*Pencil, error) {
	if g == nil || p == nil {
		return nil, fmt.Errorf("core: pencil needs both a graph and a sparsifier")
	}
	if p.N != g.N {
		return nil, fmt.Errorf("core: sparsifier has %d vertices, graph has %d", p.N, g.N)
	}
	if shift == nil {
		shift = lap.Shift(g, 0)
	}
	pen := &Pencil{
		N:     g.N,
		Shift: shift,
		LG:    lap.Laplacian(g, shift),
		LP:    lap.Laplacian(p, shift),
	}
	f, err := chol.New(pen.LP, chol.Options{})
	if err != nil {
		if errors.Is(err, chol.ErrNotPD) {
			err = fmt.Errorf("%w: %w", ErrNotSPD, err)
		}
		return nil, fmt.Errorf("core: factorizing sparsifier: %w", err)
	}
	pen.Factor = f
	return pen, nil
}

// Solve runs PCG on L_G x = b preconditioned by the factored sparsifier,
// starting from x (zero-initialize for a cold start; b and x have length N).
func (p *Pencil) Solve(b, x []float64, opts solver.Options) solver.Result {
	return solver.PCG(p.LG, b, x, solver.NewCholPrecond(p.Factor), opts)
}

// SolveCtx is Solve with cancellation: ctx is polled every few PCG
// iterations (opts.CheckEvery, default solver.DefaultCheckEvery) and a
// cancellation returns the wrapped ErrCanceled with x holding the best
// iterate so far.
func (p *Pencil) SolveCtx(ctx context.Context, b, x []float64, opts solver.Options) (solver.Result, error) {
	opts.Ctx = ctx
	r := p.Solve(b, x, opts)
	return r, wrapCanceled(r.Err)
}

// CondNumberCtx is CondNumber with cancellation, polled per Lanczos step.
func (p *Pencil) CondNumberCtx(ctx context.Context, steps int, seed int64) (float64, error) {
	k, err := eig.CondNumberCtx(ctx, p.LG, p.Factor, eig.GenMaxOptions{Steps: steps, Seed: seed})
	return k, wrapCanceled(err)
}

// TraceEstCtx is TraceEst with cancellation, polled per Hutchinson probe.
func (p *Pencil) TraceEstCtx(ctx context.Context, probes int, seed int64) (float64, error) {
	t, err := eig.TraceEstCtx(ctx, p.LG, p.Factor, probes, seed)
	return t, wrapCanceled(err)
}

// FiedlerCtx is Fiedler with cancellation: ctx is polled per inverse-power
// step and inside each inner PCG solve.
func (p *Pencil) FiedlerCtx(ctx context.Context, steps int, tol float64, seed int64) ([]float64, error) {
	pre := solver.NewCholPrecond(p.Factor)
	// Warm start each solve from the previous one's scale: the normalized
	// RHS converges to the Fiedler direction, so x ≈ (1/λ₂)·b.
	prevScale := 0.0
	v, err := eig.FiedlerCtx(ctx, p.N, steps, seed, func(dst, b []float64) {
		for i := range dst {
			dst[i] = b[i] * prevScale
		}
		solver.PCG(p.LG, b, dst, pre, solver.Options{Tol: tol, Ctx: ctx})
		var s float64
		for i := range dst {
			s += dst[i] * b[i]
		}
		prevScale = s
	})
	return v, wrapCanceled(err)
}

// CondNumber estimates κ(L_G, L_P) = λmax(L_P⁻¹ L_G) by generalized
// Lanczos. steps ≤ 0 selects the default (80).
func (p *Pencil) CondNumber(steps int, seed int64) float64 {
	return eig.CondNumber(p.LG, p.Factor, eig.GenMaxOptions{Steps: steps, Seed: seed})
}

// TraceEst estimates Tr(L_P⁻¹ L_G) with a Hutchinson stochastic estimator;
// probes ≤ 0 selects the default (30).
func (p *Pencil) TraceEst(probes int, seed int64) float64 {
	return eig.TraceEst(p.LG, p.Factor, probes, seed)
}

// Fiedler approximates the Fiedler vector of G by `steps` rounds of inverse
// power iteration, each inner system solved by PCG through this pencil.
func (p *Pencil) Fiedler(steps int, tol float64, seed int64) []float64 {
	v, _ := p.FiedlerCtx(context.Background(), steps, tol, seed)
	return v
}
