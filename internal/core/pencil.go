package core

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/chol"
	"repro/internal/eig"
	"repro/internal/graph"
	"repro/internal/lap"
	"repro/internal/precond"
	"repro/internal/solver"
	"repro/internal/sparse"
)

// Pencil is a prepared regularized Laplacian pencil (L_G, L_P): the shared
// diagonal shift, both assembled Laplacians, and a ready preconditioner
// for the sparsifier side built by a pluggable precond.Builder strategy —
// one monolithic Cholesky factorization by default, or the sharded
// additive-Schwarz preconditioner over per-cluster factors. Every
// measurement the library exposes — PCG solves, condition-number and trace
// estimates, Fiedler vectors — consumes exactly this bundle, so preparing
// it once and reusing it is the unit of caching for the serving engine:
// repeated solves against the same (graph, sparsifier) pair skip both
// Laplacian assembly and refactorization.
//
// A Pencil is immutable after construction and safe for concurrent use:
// methods allocate their own vectors and the preconditioner pools its
// scratch. It deliberately does not retain the input graphs: once the
// Laplacians are assembled they are the working representation, and a
// long-lived cache of pencils (the serving engine's store) should not pin
// a redundant copy of every edge list.
type Pencil struct {
	N int // vertex count of the underlying graphs

	Shift  []float64   // shared diagonal regularization (λmin of pencil = 1)
	LG, LP *sparse.CSC // regularized Laplacians of G and P

	// Pre is the preconditioner for L_P produced by the builder; PreStats
	// records how it was built. Callers that held the former Factor field
	// use the Factor method instead (nil for non-monolithic strategies).
	Pre      solver.Preconditioner
	PreStats *precond.Stats
}

// NewPencil assembles the pencil for graph g preconditioned by sparsifier
// p and factorizes it monolithically (the default strategy). shift is the
// shared regularization diagonal; pass nil to compute the default
// lap.Shift(g, 0). When the sparsifier came out of Sparsify, pass its
// Result.Shift so the pencil matches construction.
func NewPencil(g, p *graph.Graph, shift []float64) (*Pencil, error) {
	return NewPencilWith(g, p, shift, nil)
}

// NewPencilWith is NewPencil with an explicit preconditioner construction
// strategy (nil selects the monolithic default).
func NewPencilWith(g, p *graph.Graph, shift []float64, builder precond.Builder) (*Pencil, error) {
	if g == nil || p == nil {
		return nil, fmt.Errorf("core: pencil needs both a graph and a sparsifier")
	}
	if p.N != g.N {
		return nil, fmt.Errorf("core: sparsifier has %d vertices, graph has %d", p.N, g.N)
	}
	if shift == nil {
		shift = lap.Shift(g, 0)
	}
	if builder == nil {
		builder = precond.NewMonolithic()
	}
	return newPencilFromParts(g.N, shift, lap.Laplacian(g, shift), lap.Laplacian(p, shift), builder)
}

// newPencilFromParts wraps pre-assembled Laplacians into a Pencil and
// builds the preconditioner — the seam the streaming-delta fast path
// uses to hand in patched matrices instead of paying two full triplet
// assemblies per update. builder must be non-nil here; NewPencilWith
// resolves the default.
func newPencilFromParts(n int, shift []float64, lg, lp *sparse.CSC, builder precond.Builder) (*Pencil, error) {
	pen := &Pencil{
		N:     n,
		Shift: shift,
		LG:    lg,
		LP:    lp,
	}
	pre, st, err := builder.Build(pen.LP)
	if err != nil {
		switch {
		case errors.Is(err, chol.ErrNotPD):
			err = fmt.Errorf("%w: %w", ErrNotSPD, err)
		case errors.Is(err, precond.ErrBadAssignment):
			// A malformed cluster assignment is a caller-side sizing bug,
			// not a numerically bad matrix.
			err = fmt.Errorf("%w: %w", ErrDimension, err)
		}
		return nil, fmt.Errorf("core: building %s preconditioner for sparsifier: %w", builder.Kind(), err)
	}
	pen.Pre = pre
	pen.PreStats = st
	return pen, nil
}

// Factor returns the single sparse Cholesky factorization backing the
// preconditioner when the monolithic strategy built it, and nil otherwise
// (a Schwarz preconditioner holds one factor per cluster, not one global
// one). It replaces the former public Factor field; see MIGRATION.md.
func (p *Pencil) Factor() *chol.Factor {
	if f, ok := p.Pre.(solver.Factored); ok {
		return f.Factor()
	}
	return nil
}

// Solve runs PCG on L_G x = b preconditioned by the built sparsifier
// preconditioner, starting from x (zero-initialize for a cold start; b and
// x have length N).
func (p *Pencil) Solve(b, x []float64, opts solver.Options) solver.Result {
	return solver.PCG(p.LG, b, x, p.Pre, opts)
}

// SolveCtx is Solve with cancellation: ctx is polled every few PCG
// iterations (opts.CheckEvery, default solver.DefaultCheckEvery) and a
// cancellation returns the wrapped ErrCanceled with x holding the best
// iterate so far.
func (p *Pencil) SolveCtx(ctx context.Context, b, x []float64, opts solver.Options) (solver.Result, error) {
	opts.Ctx = ctx
	r := p.Solve(b, x, opts)
	return r, wrapCanceled(r.Err)
}

// SolveBlockCtx runs the multi-RHS block PCG on L_G X = B: all columns
// share each iteration's matrix–panel product and preconditioner panel
// apply (solver.PCGBlock), with per-column convergence and deflation.
// bs and xs are parallel slices of N-vectors; per-column results come
// back in order. Cancellation stops the whole block and returns the
// wrapped ErrCanceled alongside the partial results, with each xs entry
// holding that column's best iterate.
func (p *Pencil) SolveBlockCtx(ctx context.Context, bs, xs [][]float64, opts solver.Options) ([]solver.Result, error) {
	opts.Ctx = ctx
	rs := solver.PCGBlock(p.LG, bs, xs, p.Pre, opts)
	for _, r := range rs {
		if r.Err != nil {
			return rs, wrapCanceled(r.Err)
		}
	}
	return rs, nil
}

// CondNumberCtx is CondNumber with cancellation, polled per Lanczos step.
func (p *Pencil) CondNumberCtx(ctx context.Context, steps int, seed int64) (float64, error) {
	o := eig.GenMaxOptions{Steps: steps, Seed: seed}
	var k float64
	var err error
	if f := p.Factor(); f != nil {
		// Exact-factor path: similarity-transform Lanczos through the
		// triangular factors, bitwise-identical to the pre-refactor
		// behaviour.
		k, err = eig.CondNumberCtx(ctx, p.LG, f, o)
	} else {
		k, err = eig.CondNumberApplyCtx(ctx, p.LG, p.Pre.Apply, o)
	}
	return k, wrapCanceled(err)
}

// TraceEstCtx is TraceEst with cancellation, polled per Hutchinson probe.
func (p *Pencil) TraceEstCtx(ctx context.Context, probes int, seed int64) (float64, error) {
	t, err := eig.TraceEstApplyCtx(ctx, p.LG, p.Pre.Apply, probes, seed)
	return t, wrapCanceled(err)
}

// FiedlerCtx is Fiedler with cancellation: ctx is polled per inverse-power
// step and inside each inner PCG solve.
func (p *Pencil) FiedlerCtx(ctx context.Context, steps int, tol float64, seed int64) ([]float64, error) {
	// Warm start each solve from the previous one's scale: the normalized
	// RHS converges to the Fiedler direction, so x ≈ (1/λ₂)·b.
	prevScale := 0.0
	v, err := eig.FiedlerCtx(ctx, p.N, steps, seed, func(dst, b []float64) {
		for i := range dst {
			dst[i] = b[i] * prevScale
		}
		solver.PCG(p.LG, b, dst, p.Pre, solver.Options{Tol: tol, Ctx: ctx})
		var s float64
		for i := range dst {
			s += dst[i] * b[i]
		}
		prevScale = s
	})
	return v, wrapCanceled(err)
}

// CondNumber estimates the largest generalized eigenvalue of the
// preconditioned pencil by Lanczos: λmax(L_P⁻¹ L_G) under the monolithic
// strategy (exactly κ(L_G, L_P), the paper's quality metric), and
// λmax(M⁻¹ L_G) — the effective condition number PCG actually sees,
// including the Schwarz decomposition penalty — for Apply-only
// preconditioners. steps ≤ 0 selects the default (80).
func (p *Pencil) CondNumber(steps int, seed int64) float64 {
	k, _ := p.CondNumberCtx(context.Background(), steps, seed)
	return k
}

// TraceEst estimates Tr(M⁻¹ L_G) — Tr(L_P⁻¹ L_G) under the monolithic
// strategy — with a Hutchinson stochastic estimator; probes ≤ 0 selects
// the default (30).
func (p *Pencil) TraceEst(probes int, seed int64) float64 {
	t, _ := p.TraceEstCtx(context.Background(), probes, seed)
	return t
}

// Fiedler approximates the Fiedler vector of G by `steps` rounds of inverse
// power iteration, each inner system solved by PCG through this pencil.
func (p *Pencil) Fiedler(steps int, tol float64, seed int64) []float64 {
	v, _ := p.FiedlerCtx(context.Background(), steps, tol, seed)
	return v
}
