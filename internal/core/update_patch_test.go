package core

import (
	"context"
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/lap"
	"repro/internal/sparse"
	"repro/internal/sparsify"
)

func shardedFixture(t *testing.T) (*graph.Graph, *Sparsifier) {
	t.Helper()
	g := gen.CircuitGrid(24, 24, 0.05, 9)
	cfg := Config{Sparsify: sparsify.Options{Seed: 1}, ShardThreshold: 128, Shards: 4}
	s, err := NewSparsifier(context.Background(), g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.ShardStats() == nil || s.ShardStats().Abandoned {
		t.Fatal("fixture did not build sharded; retune")
	}
	return g, s
}

// matchCSC compares a patched CSC matrix against a cold-assembled
// reference: identical stored structure modulo stored zeros (the patched
// pattern may carry dead slots), off-diagonals bit-exact, diagonals to a
// relative ULP budget (patching recomputes touched diagonals in adjacency
// order; cold assembly sums the same terms in triplet order).
func matchCSC(t *testing.T, tag string, got, want *sparse.CSC) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s: dims %dx%d, want %dx%d", tag, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for j := 0; j < want.Cols; j++ {
		for q := want.ColPtr[j]; q < want.ColPtr[j+1]; q++ {
			i := want.RowIdx[q]
			k := got.FindEntry(i, j)
			if k < 0 {
				t.Fatalf("%s: entry (%d,%d) missing from patched matrix", tag, i, j)
			}
			gv, wv := got.Val[k], want.Val[q]
			if i != j {
				if gv != wv {
					t.Fatalf("%s: off-diagonal (%d,%d) = %g, want %g bit-exact", tag, i, j, gv, wv)
				}
				continue
			}
			if rel := math.Abs(gv-wv) / math.Max(math.Abs(wv), 1); rel > 1e-12 {
				t.Fatalf("%s: diagonal %d = %g, want %g (rel %g)", tag, i, gv, wv, rel)
			}
		}
	}
	// Any extra stored entry in the patched matrix must be a dead slot.
	for j := 0; j < got.Cols; j++ {
		for q := got.ColPtr[j]; q < got.ColPtr[j+1]; q++ {
			i := got.RowIdx[q]
			if want.FindEntry(i, j) < 0 && got.Val[q] != 0 {
				t.Fatalf("%s: patched matrix has nonzero (%d,%d)=%g absent from reference", tag, i, j, got.Val[q])
			}
		}
	}
}

// TestUpdatePatchedPencilMatchesCold: a reweight-only delta must take the
// full fast path — localized stitch, both Laplacians patched in place —
// and the patched matrices must equal cold assembly of the updated
// graphs under the same (retained) shift.
func TestUpdatePatchedPencilMatchesCold(t *testing.T) {
	ctx := context.Background()
	g, s := shardedFixture(t)

	var d graph.Delta
	for _, e := range g.Edges {
		if e.U < 40 && e.V < 40 && len(d.Set) < 6 {
			d.Set = append(d.Set, graph.Edge{U: e.U, V: e.V, W: e.W * 1.3})
		}
	}
	up, err := s.Update(ctx, d)
	if err != nil {
		t.Fatal(err)
	}
	st := up.UpdateStats()
	if st == nil {
		t.Fatal("updated handle has no UpdateStats")
	}
	if !st.Localized || !st.LGPatched || !st.LPPatched {
		t.Fatalf("fast path incomplete: Localized=%v LGPatched=%v LPPatched=%v",
			st.Localized, st.LGPatched, st.LPPatched)
	}
	if !up.ShardStats().StitchLocalized {
		t.Fatal("shard stats do not report a localized stitch")
	}
	matchCSC(t, "LG", up.pen.LG, lap.Laplacian(up.BaseGraph(), up.pen.Shift))
	matchCSC(t, "LP", up.pen.LP, lap.Laplacian(up.sub, up.pen.Shift))
	// The retained shift is the base handle's, by design.
	for i, v := range up.pen.Shift {
		if v != s.pen.Shift[i] {
			t.Fatalf("patched pencil shift[%d] = %g, want base %g", i, v, s.pen.Shift[i])
		}
	}
}

// TestUpdateChainedEquivalence drives a chain of deltas — reweights,
// an addition, a removal, a resurrection — through Update and checks at
// every step that (1) the maintained graph equals a from-scratch
// d.Apply, (2) the pencil matches cold assembly under the retained
// shift, and (3) solves through the updated handle agree with a cold
// handle built on the same graph.
func TestUpdateChainedEquivalence(t *testing.T) {
	ctx := context.Background()
	g, s := shardedFixture(t)

	e0 := g.Edges[0]
	chain := []graph.Delta{
		{Set: []graph.Edge{{U: e0.U, V: e0.V, W: e0.W * 2}}},
		{Set: []graph.Edge{{U: 0, V: 50, W: 0.8}}}, // addition
		{Remove: [][2]int{{0, 50}}},                // removal of the addition
		{Set: []graph.Edge{{U: 0, V: 50, W: 0.5}}}, // resurrection at a new weight
		{Set: []graph.Edge{{U: e0.U, V: e0.V, W: e0.W * 2.5}, {U: 2, V: 3, W: 1.1}}},
	}

	cur := s
	wantG := g
	for step, d := range chain {
		var err error
		wantG, err = d.Apply(wantG)
		if err != nil {
			t.Fatalf("step %d: reference apply: %v", step, err)
		}
		cur, err = cur.Update(ctx, d)
		if err != nil {
			t.Fatalf("step %d: update: %v", step, err)
		}
		back := cur.BaseGraph()
		if back.M() != wantG.M() {
			t.Fatalf("step %d: graph has %d edges, want %d", step, back.M(), wantG.M())
		}
		want := make(map[[2]int]float64, wantG.M())
		for _, e := range wantG.Edges {
			want[[2]int{e.U, e.V}] = e.W
		}
		for _, e := range back.Edges {
			if want[[2]int{e.U, e.V}] != e.W {
				t.Fatalf("step %d: edge (%d,%d) weight %g, want %g", step, e.U, e.V, e.W, want[[2]int{e.U, e.V}])
			}
		}
		matchCSC(t, "LG", cur.pen.LG, lap.Laplacian(back, cur.pen.Shift))
		matchCSC(t, "LP", cur.pen.LP, lap.Laplacian(cur.sub, cur.pen.Shift))

		// Solve equivalence against a cold handle on the same graph.
		cold, err := NewSparsifier(ctx, wantG, s.cfg)
		if err != nil {
			t.Fatalf("step %d: cold build: %v", step, err)
		}
		b := make([]float64, wantG.N)
		b[0], b[wantG.N-1] = 1, -1
		su, err := cur.SolveTol(ctx, b, 1e-9)
		if err != nil {
			t.Fatalf("step %d: updated solve: %v", step, err)
		}
		sc, err := cold.SolveTol(ctx, b, 1e-9)
		if err != nil {
			t.Fatalf("step %d: cold solve: %v", step, err)
		}
		var num, den float64
		for i := range su.X {
			num += (su.X[i] - sc.X[i]) * (su.X[i] - sc.X[i])
			den += sc.X[i] * sc.X[i]
		}
		if rel := math.Sqrt(num / den); rel > 1e-6 {
			t.Fatalf("step %d: solutions diverge, rel %g", step, rel)
		}
	}
}

// TestUpdateChainReuseMonotone: a chain of deltas confined to one corner
// keeps dirtying the same clusters, so cluster reuse must never collapse
// — every step reuses at least the clean majority.
func TestUpdateChainReuseMonotone(t *testing.T) {
	ctx := context.Background()
	g, s := shardedFixture(t)

	var corner []graph.Edge
	for _, e := range g.Edges {
		if e.U < 30 && e.V < 30 && len(corner) < 4 {
			corner = append(corner, e)
		}
	}
	cur := s
	for step := 0; step < 5; step++ {
		var d graph.Delta
		for _, e := range corner {
			d.Set = append(d.Set, graph.Edge{U: e.U, V: e.V, W: e.W * (1 + 0.1*float64(step+1))})
		}
		var err error
		cur, err = cur.Update(ctx, d)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		st := cur.ShardStats()
		if !st.Incremental || !st.StitchLocalized {
			t.Fatalf("step %d: Incremental=%v StitchLocalized=%v", step, st.Incremental, st.StitchLocalized)
		}
		if want := st.Shards - st.DirtyClusters; st.ClustersReused < want {
			t.Fatalf("step %d: ClustersReused = %d, want ≥ %d (clean clusters)", step, st.ClustersReused, want)
		}
		if up := cur.UpdateStats(); up == nil || !up.LGPatched || !up.LPPatched {
			t.Fatalf("step %d: pencil not patched on a reweight-only chain (%+v)", step, up)
		}
	}
}

// TestUpdateStoredZeroCompaction: repeated remove/add churn accumulates
// stored zeros in the patched Laplacians; the compaction guard must fire
// before they exceed the threshold share, and the matrices stay correct
// throughout.
func TestUpdateStoredZeroCompaction(t *testing.T) {
	ctx := context.Background()
	_, s := shardedFixture(t)

	cur := s
	compacted := false
	for step := 0; step < 60; step++ {
		// Alternate adding and removing a batch of chords in one corner.
		var d graph.Delta
		base := 2 * step
		if step%2 == 0 {
			for k := 0; k < 8; k++ {
				d.Set = append(d.Set, graph.Edge{U: k, V: 25 + k + base%7, W: 0.3})
			}
		} else {
			for k := 0; k < 8; k++ {
				d.Remove = append(d.Remove, [2]int{k, 25 + k + (base-2)%7})
			}
		}
		var err error
		cur, err = cur.Update(ctx, d)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if up := cur.UpdateStats(); up != nil {
			if up.Compacted {
				compacted = true
			}
			nnz := cur.pen.LG.NNZ() + cur.pen.LP.NNZ()
			if up.StoredZeros*storedZeroCompactionDiv > 2*nnz {
				t.Fatalf("step %d: stored zeros %d ran away past the compaction bound (nnz %d)", step, up.StoredZeros, nnz)
			}
		}
	}
	if !compacted {
		t.Log("compaction never triggered in 60 steps (allowed: dead slots are being reused)")
	}
	matchCSC(t, "LG", cur.pen.LG, lap.Laplacian(cur.BaseGraph(), cur.pen.Shift))
}
