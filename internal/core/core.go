// Package core orchestrates the full evaluation pipeline the paper's
// Table 1 reports for a single graph and method: run the sparsification
// algorithm, assemble the regularized Laplacian pencil (L_G, L_P),
// factorize the sparsifier, estimate the relative condition number
// κ(L_G, L_P), and solve a random right-hand side with PCG using the
// sparsifier preconditioner.
package core

import (
	"math/rand"
	"time"

	"repro/internal/chol"
	"repro/internal/graph"
	"repro/internal/solver"
	"repro/internal/sparse"
	"repro/internal/sparsify"
)

// EvalOptions controls the post-sparsification measurements.
type EvalOptions struct {
	// PCGTol is the relative residual tolerance (Table 1 uses 1e-3).
	PCGTol float64
	// PCGMaxIter caps PCG iterations (default 2000).
	PCGMaxIter int
	// LanczosSteps controls the κ estimate (default 80).
	LanczosSteps int
	// SkipKappa skips the condition-number estimate (it costs a few dozen
	// solves; power users measuring only PCG behaviour can disable it).
	SkipKappa bool
	// Seed drives the random right-hand side and Lanczos start vector.
	Seed int64
}

// Outcome aggregates everything Table 1 reports for one (graph, method).
type Outcome struct {
	Method sparsify.Method
	N, M   int
	// Sparsifier facts.
	SparsifierEdges int
	SparsifyTime    time.Duration // the paper's Ts
	// Quality.
	Kappa float64 // the paper's κ — estimated λmax(L_P⁻¹ L_G)
	// PCG behaviour on a random RHS.
	PCGIters int           // the paper's Ni
	PCGTime  time.Duration // the paper's Ti
	PCGRes   float64
	// Preconditioner cost.
	FactorNNZ int
	MemBytes  int64

	Result *sparsify.Result
	LG     *sparse.CSC
	Factor *chol.Factor
}

// Evaluate runs sparsification and the Table-1 measurements on g.
func Evaluate(g *graph.Graph, sopts sparsify.Options, eopts EvalOptions) (*Outcome, error) {
	if eopts.PCGTol <= 0 {
		eopts.PCGTol = 1e-3
	}
	if eopts.PCGMaxIter <= 0 {
		eopts.PCGMaxIter = 2000
	}
	if eopts.LanczosSteps <= 0 {
		eopts.LanczosSteps = 80
	}

	res, err := sparsify.Sparsify(g, sopts)
	if err != nil {
		return nil, err
	}
	out := &Outcome{
		Method:          sopts.Method,
		N:               g.N,
		M:               g.M(),
		SparsifierEdges: len(res.EdgeIdx),
		SparsifyTime:    res.Stats.Total,
		Result:          res,
	}

	pen, err := NewPencil(g, res.Sparsifier, res.Shift)
	if err != nil {
		return nil, err
	}
	out.LG = pen.LG
	out.Factor = pen.Factor() // Evaluate builds monolithically, so the factor exists
	out.FactorNNZ = int(pen.PreStats.FactorNNZ)
	out.MemBytes = pen.PreStats.MemBytes

	if !eopts.SkipKappa {
		out.Kappa = pen.CondNumber(eopts.LanczosSteps, eopts.Seed)
	}

	// PCG with a random RHS (paper: random RHS, rtol 1e-3).
	rng := rand.New(rand.NewSource(eopts.Seed + 31))
	b := make([]float64, g.N)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x := make([]float64, g.N)
	t0 := time.Now()
	r := pen.Solve(b, x, solver.Options{
		Tol: eopts.PCGTol, MaxIter: eopts.PCGMaxIter,
	})
	out.PCGTime = time.Since(t0)
	out.PCGIters = r.Iterations
	out.PCGRes = r.RelRes
	return out, nil
}
