package core

import (
	"context"
	"errors"
	"fmt"
)

// Sentinel errors for the handle-based API. Callers match them with
// errors.Is; every returned error wraps one of these (or is a plain
// validation error) together with graph context (vertex/edge counts,
// expected vs actual dimensions).
var (
	// ErrDisconnected reports a graph (or prebuilt sparsifier) that is not
	// connected; spectral sparsification needs a spanning subgraph.
	ErrDisconnected = errors.New("graph is disconnected")
	// ErrNotSPD reports that the regularized sparsifier Laplacian was not
	// positive definite, so Cholesky factorization failed.
	ErrNotSPD = errors.New("matrix is not positive definite")
	// ErrCanceled reports that the operation stopped early because the
	// caller's context was canceled or its deadline passed. The underlying
	// context error stays in the chain, so errors.Is(err, context.Canceled)
	// and errors.Is(err, context.DeadlineExceeded) keep working too.
	ErrCanceled = errors.New("operation canceled")
	// ErrTooLarge reports a graph exceeding the configured MaxVertices
	// admission limit.
	ErrTooLarge = errors.New("graph exceeds configured size limit")
	// ErrDimension reports mismatched dimensions: a right-hand side of the
	// wrong length, or a prebuilt sparsifier over a different vertex set.
	ErrDimension = errors.New("dimension mismatch")
)

// wrapCanceled folds a context error into the ErrCanceled chain; non-context
// errors pass through unchanged.
func wrapCanceled(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("%w: %w", ErrCanceled, err)
	}
	return err
}
