package core

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/sparsify"
)

// TestHeadlineClaim verifies the paper's central result at reduced scale:
// on mesh-like graphs, the trace-reduction sparsifier achieves a
// substantially lower relative condition number and fewer PCG iterations
// than the GRASS baseline at the same edge budget, with sparsification time
// in the same ballpark.
func TestHeadlineClaim(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	for _, tc := range []struct {
		name string
	}{{"grid"}, {"tri"}} {
		t.Run(tc.name, func(t *testing.T) {
			// Method differences grow with graph size; below ~5k vertices
			// the two methods often tie, so test at ≥8k.
			g := gen.Grid2D(100, 100, 1)
			if tc.name == "tri" {
				g = gen.Tri2D(90, 90, 2)
			}
			prop, err := Evaluate(g, sparsify.Options{Method: sparsify.TraceReduction, Seed: 1}, EvalOptions{Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			grass, err := Evaluate(g, sparsify.Options{Method: sparsify.GRASS, Seed: 1}, EvalOptions{Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("proposed: κ=%.1f Ni=%d Ts=%v; GRASS: κ=%.1f Ni=%d Ts=%v",
				prop.Kappa, prop.PCGIters, prop.SparsifyTime,
				grass.Kappa, grass.PCGIters, grass.SparsifyTime)
			// The paper reports 2.6× average κ reduction; assert a
			// conservative 1.3× so seed noise cannot flake the suite.
			if prop.Kappa*1.3 > grass.Kappa {
				t.Errorf("proposed κ=%.1f not clearly below GRASS κ=%.1f", prop.Kappa, grass.Kappa)
			}
			if prop.PCGIters > grass.PCGIters {
				t.Errorf("proposed Ni=%d above GRASS Ni=%d", prop.PCGIters, grass.PCGIters)
			}
			if !prop.Result.Sparsifier.Connected() {
				t.Error("sparsifier disconnected")
			}
		})
	}
}

func TestEvaluateOutcomeFields(t *testing.T) {
	g := gen.Grid2D(30, 30, 3)
	out, err := Evaluate(g, sparsify.Options{Seed: 2}, EvalOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if out.N != g.N || out.M != g.M() {
		t.Error("graph facts wrong")
	}
	if out.SparsifierEdges != g.N-1+int(0.1*float64(g.N)) {
		t.Errorf("sparsifier edges = %d", out.SparsifierEdges)
	}
	if out.Kappa < 1 {
		t.Errorf("κ = %g < 1", out.Kappa)
	}
	if out.PCGIters <= 0 || out.PCGRes > 1e-3 {
		t.Errorf("PCG did not converge: iters=%d res=%g", out.PCGIters, out.PCGRes)
	}
	if out.FactorNNZ <= 0 || out.MemBytes <= 0 {
		t.Error("factor accounting missing")
	}
}

func TestEvaluateSkipKappa(t *testing.T) {
	g := gen.Grid2D(15, 15, 4)
	out, err := Evaluate(g, sparsify.Options{Seed: 3}, EvalOptions{Seed: 3, SkipKappa: true})
	if err != nil {
		t.Fatal(err)
	}
	if out.Kappa != 0 {
		t.Errorf("κ computed despite SkipKappa: %g", out.Kappa)
	}
	if out.PCGIters == 0 {
		t.Error("PCG skipped unexpectedly")
	}
}
