package shard_test

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/shard"
	"repro/internal/sparsify"
)

// threeCommunities builds a graph with three dense grid communities
// joined by a few weak bridges — the natural best case for a 3-way
// partition plan and the worst case for naive stitching (all spectral
// deficiency concentrates on the bridges).
func threeCommunities(side int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	var edges []graph.Edge
	n := 0
	offsets := make([]int, 3)
	for c := 0; c < 3; c++ {
		offsets[c] = n
		comm := gen.Grid2D(side, side, seed+int64(c))
		for _, e := range comm.Edges {
			edges = append(edges, graph.Edge{U: e.U + n, V: e.V + n, W: e.W})
		}
		n += comm.N
	}
	sz := side * side
	// Three bridges between consecutive communities (0-1, 1-2, 2-0).
	for c := 0; c < 3; c++ {
		a, b := offsets[c], offsets[(c+1)%3]
		for i := 0; i < 3; i++ {
			edges = append(edges, graph.Edge{
				U: a + rng.Intn(sz), V: b + rng.Intn(sz), W: 0.05 + 0.1*rng.Float64(),
			})
		}
	}
	return graph.MustNew(n, edges)
}

func TestPlanBalancedConnectedClusters(t *testing.T) {
	g := gen.Grid2D(40, 40, 3)
	plan, err := shard.NewPlan(context.Background(), g, shard.Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if plan.K < 4 {
		t.Fatalf("K = %d, want ≥ 4 (planned %d)", plan.K, plan.Planned)
	}
	total := 0
	for i, cl := range plan.Clusters {
		if !cl.Local.Connected() {
			t.Fatalf("cluster %d (%d vertices) is disconnected", i, cl.Local.N)
		}
		total += cl.Local.N
		for li, v := range cl.Vertices {
			if plan.Assign[v] != i {
				t.Fatalf("vertex %d (local %d) assigned to %d, listed in cluster %d", v, li, plan.Assign[v], i)
			}
		}
	}
	if total != g.N {
		t.Fatalf("clusters cover %d vertices, graph has %d", total, g.N)
	}
	// Balance: with K planned clusters of a uniform grid, no cluster
	// should hold more than ~2x its fair share.
	fair := g.N / plan.Planned
	for i, cl := range plan.Clusters {
		if cl.Local.N > 2*fair+8 {
			t.Errorf("cluster %d has %d vertices, fair share is %d", i, cl.Local.N, fair)
		}
	}
	// Cut edges: both endpoint assignments must differ, and intra+cut
	// must cover every edge exactly once.
	intra := 0
	for _, cl := range plan.Clusters {
		intra += cl.Local.M()
	}
	if intra+len(plan.CutEdges) != g.M() {
		t.Fatalf("intra %d + cut %d != m %d", intra, len(plan.CutEdges), g.M())
	}
	for _, e := range plan.CutEdges {
		ed := g.Edges[e]
		if plan.Assign[ed.U] == plan.Assign[ed.V] {
			t.Fatalf("cut edge %d is intra-cluster", e)
		}
	}
}

func TestShardedSparsifierConnectedAndSized(t *testing.T) {
	g := gen.CircuitGrid(48, 48, 0.05, 7)
	res, err := shard.Sparsify(context.Background(), g, shard.Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Sparsifier.Connected() {
		t.Fatal("stitched sparsifier is disconnected")
	}
	if res.Shards == nil {
		t.Fatal("sharded result has no shard stats")
	}
	st := res.Shards
	if st.Shards < 4 || len(st.PerShard) != st.Shards {
		t.Fatalf("shard stats: K=%d per-shard=%d", st.Shards, len(st.PerShard))
	}
	if st.CutRetained < st.Shards-1 {
		t.Fatalf("retained %d cut edges, need at least K-1=%d for connectivity", st.CutRetained, st.Shards-1)
	}
	// Size contract: tree-ish plus the α budget; must stay well below
	// the input edge count and above the spanning-tree floor.
	if m := res.Sparsifier.M(); m < g.N-1 || m > g.N-1+int(0.25*float64(g.N)) {
		t.Fatalf("sparsifier has %d edges (n=%d, m=%d)", m, g.N, g.M())
	}
	if got := len(res.EdgeIdx); got != res.Sparsifier.M() {
		t.Fatalf("EdgeIdx %d != sparsifier edges %d", got, res.Sparsifier.M())
	}
}

func TestShardedDeterministic(t *testing.T) {
	g := gen.Grid2D(32, 32, 5)
	a, err := shard.Sparsify(context.Background(), g, shard.Options{Shards: 3, Sparsify: sparsify.Options{Seed: 9, Workers: 4}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := shard.Sparsify(context.Background(), g, shard.Options{Shards: 3, Sparsify: sparsify.Options{Seed: 9, Workers: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.EdgeIdx) != len(b.EdgeIdx) {
		t.Fatalf("runs disagree on size: %d vs %d", len(a.EdgeIdx), len(b.EdgeIdx))
	}
	for i := range a.EdgeIdx {
		if a.EdgeIdx[i] != b.EdgeIdx[i] {
			t.Fatalf("runs disagree at edge %d: %d vs %d", i, a.EdgeIdx[i], b.EdgeIdx[i])
		}
	}
}

// TestGlobalRecoveryRound forces the non-trivial stitch path: two
// communities joined by a cut far denser than the recovery quota, so the
// pipeline must factorize the stitched subgraph and rank the remaining
// cut edges by truncated trace reduction instead of admitting them all.
func TestGlobalRecoveryRound(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := gen.Grid2D(20, 20, 1)
	var edges []graph.Edge
	edges = append(edges, a.Edges...)
	b := gen.Grid2D(20, 20, 2)
	for _, e := range b.Edges {
		edges = append(edges, graph.Edge{U: e.U + a.N, V: e.V + a.N, W: e.W})
	}
	// A dense cut concentrated on a small boundary set: 300 cross edges
	// over 20×20 endpoint pairs, so the vertex-level cut forest can
	// retain at most ~40 of them and the rest must be ranked by the
	// recovery round.
	seen := map[[2]int]bool{}
	for len(seen) < 300 {
		u, v := rng.Intn(20), a.N+rng.Intn(20)
		if !seen[[2]int{u, v}] {
			seen[[2]int{u, v}] = true
			edges = append(edges, graph.Edge{U: u, V: v, W: 0.2 + rng.Float64()})
		}
	}
	g := graph.MustNew(a.N+b.N, edges)

	res, err := shard.Sparsify(context.Background(), g, shard.Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Shards
	if st.CutRetained+st.CutRecovered >= st.CutEdges {
		t.Fatalf("dense cut fully admitted (cut=%d retained=%d recovered=%d): recovery round not exercised",
			st.CutEdges, st.CutRetained, st.CutRecovered)
	}
	if st.CutRecovered == 0 {
		t.Fatalf("recovery round admitted nothing (cut=%d retained=%d)", st.CutEdges, st.CutRetained)
	}
	if !res.Sparsifier.Connected() {
		t.Fatal("stitched sparsifier is disconnected")
	}
}

// TestShardedQualityWithin2x is the PR's quality gate: on a 3-community
// graph, PCG through the stitched sharded sparsifier must converge within
// 2x the iterations of the monolithic sparsifier.
func TestShardedQualityWithin2x(t *testing.T) {
	ctx := context.Background()
	g := threeCommunities(16, 11)

	mono, err := core.NewSparsifier(ctx, g, core.Config{
		Sparsify: sparsify.Options{Seed: 1},
		Tol:      1e-6,
	})
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := core.NewSparsifier(ctx, g, core.Config{
		Sparsify:       sparsify.Options{Seed: 1},
		Tol:            1e-6,
		ShardThreshold: g.N / 4, // force the sharded path
		Shards:         3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sharded.Sharded() || sharded.ShardStats() == nil {
		t.Fatal("handle did not take the sharded path")
	}
	if mono.Sharded() {
		t.Fatal("monolithic handle claims to be sharded")
	}

	rng := rand.New(rand.NewSource(42))
	b := make([]float64, g.N)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	ms, err := mono.Solve(ctx, b)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := sharded.Solve(ctx, b)
	if err != nil {
		t.Fatal(err)
	}
	if !ms.Converged || !ss.Converged {
		t.Fatalf("convergence: mono=%v sharded=%v", ms.Converged, ss.Converged)
	}
	if ss.Iterations > 2*ms.Iterations {
		t.Fatalf("sharded PCG took %d iterations, monolithic %d — over the 2x budget",
			ss.Iterations, ms.Iterations)
	}
	t.Logf("PCG iterations: monolithic=%d sharded=%d (K=%d, cut=%d retained=%d recovered=%d)",
		ms.Iterations, ss.Iterations, sharded.ShardStats().Shards,
		sharded.ShardStats().CutEdges, sharded.ShardStats().CutRetained, sharded.ShardStats().CutRecovered)
}

// TestParallelPlanMatchesSequential: the concurrent recursive bisection
// must produce exactly the plan the sequential one does — cluster ids are
// canonicalized by vertex order after the recursion, so worker scheduling
// cannot leak into the partition.
func TestParallelPlanMatchesSequential(t *testing.T) {
	g := gen.CircuitGrid(50, 50, 0.05, 13)
	seq, err := shard.NewPlan(context.Background(), g, shard.Options{
		Shards: 6, Sparsify: sparsify.Options{Workers: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	par, err := shard.NewPlan(context.Background(), g, shard.Options{
		Shards: 6, Sparsify: sparsify.Options{Workers: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	if seq.K != par.K || seq.Planned != par.Planned || seq.FallbackSplits != par.FallbackSplits {
		t.Fatalf("plans disagree: K %d vs %d, planned %d vs %d, fallbacks %d vs %d",
			seq.K, par.K, seq.Planned, par.Planned, seq.FallbackSplits, par.FallbackSplits)
	}
	for v := range seq.Assign {
		if seq.Assign[v] != par.Assign[v] {
			t.Fatalf("vertex %d assigned to %d sequentially, %d in parallel", v, seq.Assign[v], par.Assign[v])
		}
	}
	if len(seq.CutEdges) != len(par.CutEdges) {
		t.Fatalf("cut sizes disagree: %d vs %d", len(seq.CutEdges), len(par.CutEdges))
	}
}

// TestExpanderGuardAbandonsPlan: on a complete graph every bisection cuts
// a constant fraction of all edges; the guard must detect the hopeless
// plan and fall back to the monolithic path, recording the decision.
func TestExpanderGuardAbandonsPlan(t *testing.T) {
	const n = 64
	var edges []graph.Edge
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			edges = append(edges, graph.Edge{U: u, V: v, W: 1})
		}
	}
	g := graph.MustNew(n, edges)

	res, err := shard.Sparsify(context.Background(), g, shard.Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Shards
	if st == nil {
		t.Fatal("abandoned plan left no shard stats")
	}
	if !st.Abandoned {
		t.Fatalf("guard did not fire: cut fraction %.2f over %d planned clusters", st.CutFraction, st.Shards)
	}
	if st.CutFraction <= shard.DefaultMaxCutFraction {
		t.Fatalf("abandoned at cut fraction %.2f, below the %.2f ceiling", st.CutFraction, shard.DefaultMaxCutFraction)
	}
	if st.Assign != nil {
		t.Fatal("abandoned plan must not thread an assignment to the pencil")
	}
	if !res.Sparsifier.Connected() {
		t.Fatal("fallback monolithic sparsifier is disconnected")
	}
	// Disabling the guard forces the stitch through.
	forced, err := shard.Sparsify(context.Background(), g, shard.Options{Shards: 4, MaxCutFraction: -1})
	if err != nil {
		t.Fatal(err)
	}
	if forced.Shards.Abandoned {
		t.Fatal("guard fired although disabled")
	}
}
