package shard

import (
	"fmt"
	"math"
	"slices"

	"repro/internal/sparsify"
)

// ClusterCache is the per-cluster artifact store consulted and populated
// by Run when Options.Cache is set. Keys are cluster fingerprints
// (ClusterKey); values are the cluster's sparsifier edges as global
// endpoint pairs, which stay valid across rebuilds of the surrounding
// graph because the vertex set is fixed while edge *indices* are not.
// The serving engine backs this with a shared LRU so delta rebuilds (and
// identical resubmissions) reuse untouched clusters' work; the
// handle-level Update path seeds a throwaway cache from the base handle.
//
// Implementations must be safe for concurrent use: Run consults the
// cache from its cluster workers.
type ClusterCache interface {
	// GetCluster returns the cached sparsifier endpoint pairs for key.
	GetCluster(key string) ([][2]int, bool)
	// AddCluster stores the sparsifier endpoint pairs for key. The slice
	// is owned by the cache after the call.
	AddCluster(key string, edges [][2]int)
}

// FNV-1a parameters (64-bit), matching the engine's graph fingerprint.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// ClusterKey fingerprints one planned cluster: the sorted local edge set
// (as global endpoint pairs and weight bits, order-independent via the
// same sort-then-chain scheme as the engine's graph fingerprint), the
// per-cluster seed, and every construction option that influences the
// cluster's sparsifier. Two clusters with equal keys produce identical
// sparsifier edge sets, so a cached result can be adopted verbatim; any
// weight change, membership change, seed change, or config change yields
// a different key and a rebuild.
func ClusterKey(cl *Cluster, seed int64, o sparsify.Options) string {
	hs := make([]uint64, len(cl.Local.Edges))
	for i, e := range cl.Local.Edges {
		h := uint64(fnvOffset)
		h = (h ^ uint64(cl.Vertices[e.U])) * fnvPrime
		h = (h ^ uint64(cl.Vertices[e.V])) * fnvPrime
		h = (h ^ math.Float64bits(e.W)) * fnvPrime
		hs[i] = h
	}
	slices.Sort(hs)
	h := uint64(fnvOffset)
	h = (h ^ uint64(cl.Local.N)) * fnvPrime
	h = (h ^ uint64(cl.Local.M())) * fnvPrime
	for _, eh := range hs {
		h = (h ^ eh) * fnvPrime
	}
	h = (h ^ uint64(seed)) * fnvPrime
	h = (h ^ uint64(o.Method)) * fnvPrime
	h = (h ^ math.Float64bits(o.Alpha)) * fnvPrime
	h = (h ^ uint64(o.Rounds)) * fnvPrime
	h = (h ^ uint64(o.Beta)) * fnvPrime
	h = (h ^ math.Float64bits(o.Delta)) * fnvPrime
	h = (h ^ uint64(o.SimilarityHops)) * fnvPrime
	h = (h ^ uint64(o.PowerSteps)) * fnvPrime
	h = (h ^ uint64(o.PowerVectors)) * fnvPrime
	h = (h ^ math.Float64bits(o.ShiftRel)) * fnvPrime
	h = (h ^ uint64(o.ERSketches)) * fnvPrime
	h = (h ^ math.Float64bits(o.EREpsilon)) * fnvPrime
	if o.ERRanking {
		h = (h ^ 1) * fnvPrime
	}
	return fmt.Sprintf("c%d-%d-%016x", cl.Local.N, cl.Local.M(), h)
}

// clusterSeed is the per-cluster seed derivation Run applies: decorrelate
// cluster randomness while keeping the whole build reproducible from the
// caller's seed. It is part of the cluster identity (the seed enters the
// fingerprint), so a cluster whose plan index shifts simply misses the
// cache instead of silently reusing a differently-seeded result.
func clusterSeed(base int64, ci int) int64 { return base + int64(ci)*1_000_003 }
