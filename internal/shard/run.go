package shard

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/dsu"
	"repro/internal/graph"
	"repro/internal/lap"
	"repro/internal/sparsify"
)

// tinyClusterEdges is the local edge count below which a cluster is kept
// whole instead of sparsified: on a handful of edges the spanning tree IS
// most of the graph and the scoring machinery costs more than it removes.
const tinyClusterEdges = 32

// DefaultMaxCutFraction is the expander-guard ceiling when
// Options.MaxCutFraction is unset: a plan whose cut edges exceed this
// share of the input is abandoned in favour of a monolithic build.
const DefaultMaxCutFraction = 0.5

// Sparsify plans and runs the sharded pipeline in one call — the
// large-graph counterpart of sparsify.SparsifyContext, returning the same
// Result shape (with Result.Shards telemetry attached).
//
// An expander guard runs between the two phases: on graphs with no good
// cuts (random geometric at high radius, social-style expanders) the
// recursive bisection produces a plan whose cut-edge set rivals the graph
// itself, and the stitch — a global recovery round over the cut — would
// cost more than the per-cluster parallelism saves while degrading
// quality. When the planned cut fraction exceeds Options.MaxCutFraction,
// the build falls back to the monolithic path; the decision (and the
// offending fraction) is recorded in Result.Shards with Abandoned set.
func Sparsify(ctx context.Context, g *graph.Graph, opts Options) (*sparsify.Result, error) {
	plan, err := NewPlan(ctx, g, opts)
	if err != nil {
		return nil, err
	}
	maxCut := opts.MaxCutFraction
	if maxCut == 0 {
		maxCut = DefaultMaxCutFraction
	}
	cutFrac := cutFractionOf(g, plan)
	if maxCut > 0 && cutFrac > maxCut {
		so := opts.Sparsify
		if so.Method == sparsify.ER || so.ERRanking {
			// The plan is already paid for; even an abandoned
			// (high-cut) partition makes a better sketch-solve
			// preconditioner than factorizing L_G whole.
			so = so.WithERAssign(plan.Assign)
		}
		res, err := sparsify.SparsifyContext(ctx, g, so)
		if err != nil {
			return nil, err
		}
		res.Shards = &sparsify.ShardStats{
			Shards:         plan.K,
			FallbackSplits: plan.FallbackSplits,
			CutEdges:       len(plan.CutEdges),
			CutFraction:    cutFrac,
			Abandoned:      true,
			PlanTime:       plan.PlanTime,
		}
		return res, nil
	}
	return Run(ctx, g, plan, opts)
}

// Run sparsifies every cluster of the plan concurrently on a bounded
// worker pool and stitches the results:
//
//  1. every intra-cluster sparsifier edge survives;
//  2. a maximum-weight spanning forest of the cut edges is retained, so
//     the stitched subgraph is connected (each per-cluster sparsifier is
//     connected, and the forest connects the cluster quotient graph);
//  3. the remaining cut edges are re-scored with the truncated
//     trace-reduction metric (eq. 20) against the stitched subgraph in
//     one global recovery round, and the best are re-admitted.
func Run(ctx context.Context, g *graph.Graph, plan *Plan, opts Options) (*sparsify.Result, error) {
	if plan == nil || plan.K < 1 {
		return nil, fmt.Errorf("shard: empty plan")
	}
	o := opts.Sparsify
	workers := o.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > plan.K {
		workers = plan.K
	}

	buildStart := time.Now()
	inSub := make([]bool, g.M())
	perShard := make([]sparsify.ShardBuild, plan.K)
	phases := make([]sparsify.Stats, plan.K)
	errs := make([]error, plan.K)
	keys := make([]string, plan.K)

	// ER clusters return importance-reweighted edges, which the
	// index-free endpoint-pair representation of the cluster cache and
	// the fabric protocol cannot carry — so ER builds every cluster
	// locally and fresh, and collects the weight overrides here.
	// Clusters write only their own edge indices, so the concurrent
	// stores never collide.
	erMode := o.Method == sparsify.ER
	var reweight []float64
	if erMode {
		reweight = make([]float64, g.M())
	}

	// Localized delta rebuild: map the delta's touched vertices onto
	// dirty clusters, and (for index-aligned reweight-only deltas)
	// precompute each clean cluster's verbatim adoption list — those
	// clusters then skip fingerprinting, cache lookups, and endpoint
	// resolution entirely.
	loc := opts.Localize
	if erMode || (loc != nil && loc.BaseSub == nil) {
		loc = nil
	}
	var dirtyCluster []bool
	var adoptIdx [][]int
	if loc != nil {
		dirtyCluster = loc.dirtyClusters(plan)
		adoptIdx = loc.adoptByIndex(g, plan, dirtyCluster)
	}

	// A streaming dispatcher unlocks the overlapped build: results drain
	// in completion order while the stitch's cut-forest accumulation runs
	// concurrently, instead of idling at the collection barrier below.
	// ER builds are excluded for the same reason they skip dispatch, and
	// localized rebuilds keep the barrier (their stitch reads base-build
	// membership that adoption is still writing).
	if sd, ok := opts.Dispatcher.(StreamDispatcher); ok && !erMode && loc == nil {
		return runStreamed(ctx, g, plan, opts, sd, o, workers, buildStart, inSub, perShard, phases, errs, keys)
	}

	// Each worker owns the clusters it pulls; the per-cluster option set
	// pins Workers to 1 so parallelism lives at the cluster level only
	// (nested scoring pools would oversubscribe and thrash scratch space).
	// Non-tiny clusters go through the Dispatcher when one is configured
	// — the fabric's seam: the request is self-contained and the result
	// is index-free, so the build can run on another machine.
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ci := range next {
				cl := &plan.Clusters[ci]
				if adoptIdx != nil && !dirtyCluster[ci] {
					// Index-aligned adoption: the delta was reweight-only
					// and this cluster is clean, so its local edges,
					// seed, and fingerprint are provably unchanged — keep
					// the base key and mark the base sparsifier edges by
					// index, no hashing or resolution.
					keys[ci] = loc.BaseKeys[ci]
					for _, ge := range adoptIdx[ci] {
						inSub[ge] = true
					}
					perShard[ci] = sparsify.ShardBuild{
						Vertices:        len(cl.Vertices),
						Edges:           cl.LocalEdges(),
						SparsifierEdges: len(adoptIdx[ci]),
						Reused:          true,
					}
					continue
				}
				seed := clusterSeed(o.Seed, ci)
				keys[ci] = ClusterKey(cl, seed, o)
				if opts.Cache != nil && !erMode {
					if pairs, ok := opts.Cache.GetCluster(keys[ci]); ok && adoptCluster(g, cl, pairs, inSub, &perShard[ci]) {
						continue
					}
				}
				perShard[ci].Vertices = cl.Local.N
				perShard[ci].Edges = cl.Local.M()
				if cl.Local.M() <= tinyClusterEdges {
					// On a handful of edges the spanning tree IS most of
					// the graph; keep the cluster whole locally — an RPC
					// would cost more than the build.
					start := time.Now()
					for _, ge := range cl.GlobalEdge {
						inSub[ge] = true
					}
					perShard[ci].SparsifierEdges = cl.Local.M()
					perShard[ci].Time = time.Since(start)
					continue
				}
				start := time.Now()
				co := o
				co.Workers = 1
				// Decorrelate per-cluster randomness while keeping the
				// whole build reproducible from the caller's seed.
				co.Seed = seed
				req := &ClusterRequest{Index: ci, Key: keys[ci], Cluster: cl, Opts: co}
				var cres *ClusterResult
				if opts.Dispatcher != nil && !erMode {
					cres, errs[ci] = opts.Dispatcher.Dispatch(ctx, req)
				} else {
					cres, errs[ci] = BuildCluster(ctx, req)
				}
				if errs[ci] != nil {
					continue
				}
				if !adoptWeighted(g, cres, inSub, reweight) {
					// A dispatcher-validated result should make this
					// unreachable; failing loudly beats silently stitching
					// a hole into the sparsifier.
					errs[ci] = fmt.Errorf("shard: cluster %d: dispatched result contains edges not in the graph", ci)
					continue
				}
				phases[ci] = cres.Stats
				perShard[ci].SparsifierEdges = len(cres.Edges)
				perShard[ci].Remote = cres.Remote
				perShard[ci].Time = time.Since(start)
				if opts.Cache != nil && !erMode {
					opts.Cache.AddCluster(keys[ci], cres.Edges)
				}
			}
		}()
	}
	for ci := range plan.Clusters {
		next <- ci
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	buildTime := time.Since(buildStart)

	// Stitch. The cut edges' spanning structure first: a maximum-weight
	// spanning forest of the cut-edge graph over the *vertices* (by
	// descending weight, the same preference MEWST applies inside a
	// cluster). This is deliberately denser than a forest over the
	// cluster quotient: a long seam between two clusters keeps roughly
	// one crossing per boundary component — the crossing density a global
	// spanning tree would have had — instead of a single bridge carrying
	// the whole seam's current. Every skipped cut edge has both endpoints
	// already connected through retained cut edges, and each cluster's
	// sparsifier is internally connected, so the stitched subgraph is
	// connected.
	stitchStart := time.Now()
	var retained, recovered, adopted, repaired, dirtyCount int
	if loc != nil {
		// Localized stitch: clean-clean cut edges adopt the base
		// decision, only the dirty neighborhood is re-decided, and the
		// recovery round factorizes the dirty region instead of the
		// whole stitched subgraph (see localize.go).
		var err error
		retained, recovered, adopted, repaired, err = stitchLocalized(ctx, g, plan, inSub, dirtyCluster, loc, o)
		if err != nil {
			return nil, err
		}
		for _, isDirty := range dirtyCluster {
			if isDirty {
				dirtyCount++
			}
		}
	} else {
		var remaining []int
		retained, remaining = cutForest(g, plan, inSub)
		var err error
		recovered, err = recoverCut(ctx, g, plan, inSub, remaining, o)
		if err != nil {
			return nil, err
		}
	}
	stitchTime := time.Since(stitchStart)

	st := &sparsify.ShardStats{
		CutRetained:     retained,
		CutRecovered:    recovered,
		StitchLocalized: loc != nil,
		CutAdopted:      adopted,
		CutRepaired:     repaired,
		DirtyClusters:   dirtyCount,
		BuildTime:       buildTime,
		StitchTime:      stitchTime,
	}
	return finishRun(g, plan, o, inSub, reweight, perShard, phases, keys, st), nil
}

// runStreamed is Run's overlapped build path: the clusters that need a
// fresh build are collected by a sequential pre-pass (cache adoption and
// tiny-cluster shortcuts resolve inline, exactly as the pooled path
// decides them), every pending request goes through the dispatcher's
// stream, and the stitch's cut-forest accumulation runs concurrently
// with the drain. The concurrency is sound by construction: cut edges
// cross clusters, cluster sparsifier edges do not, so the forest
// goroutine and the drain loop write disjoint inSub elements. The
// recovery round — which reads all of inSub — waits for both.
func runStreamed(ctx context.Context, g *graph.Graph, plan *Plan, opts Options, sd StreamDispatcher, o sparsify.Options, workers int, buildStart time.Time, inSub []bool, perShard []sparsify.ShardBuild, phases []sparsify.Stats, errs []error, keys []string) (*sparsify.Result, error) {
	var reqs []*ClusterRequest
	for ci := range plan.Clusters {
		cl := &plan.Clusters[ci]
		seed := clusterSeed(o.Seed, ci)
		keys[ci] = ClusterKey(cl, seed, o)
		if opts.Cache != nil {
			if pairs, ok := opts.Cache.GetCluster(keys[ci]); ok && adoptCluster(g, cl, pairs, inSub, &perShard[ci]) {
				continue
			}
		}
		perShard[ci].Vertices = cl.Local.N
		perShard[ci].Edges = cl.Local.M()
		if cl.Local.M() <= tinyClusterEdges {
			start := time.Now()
			for _, ge := range cl.GlobalEdge {
				inSub[ge] = true
			}
			perShard[ci].SparsifierEdges = cl.Local.M()
			perShard[ci].Time = time.Since(start)
			continue
		}
		co := o
		co.Workers = 1
		co.Seed = seed
		reqs = append(reqs, &ClusterRequest{Index: ci, Key: keys[ci], Cluster: cl, Opts: co})
	}

	streamStart := time.Now()
	type forestOut struct {
		retained  int
		remaining []int
		elapsed   time.Duration
		done      time.Time
	}
	forestCh := make(chan forestOut, 1)
	go func() {
		fs := time.Now()
		ret, rem := cutForest(g, plan, inSub)
		forestCh <- forestOut{ret, rem, time.Since(fs), time.Now()}
	}()

	for s := range sd.DispatchStream(ctx, reqs, workers) {
		ci := s.Req.Index
		if s.Err != nil {
			errs[ci] = s.Err
			continue
		}
		if !adoptWeighted(g, s.Res, inSub, nil) {
			errs[ci] = fmt.Errorf("shard: cluster %d: dispatched result contains edges not in the graph", ci)
			continue
		}
		phases[ci] = s.Res.Stats
		perShard[ci].SparsifierEdges = len(s.Res.Edges)
		perShard[ci].Remote = s.Res.Remote
		// Results land in completion order, so the per-cluster wall clock
		// is not observable here; Time records completion latency from
		// stream start instead.
		perShard[ci].Time = time.Since(streamStart)
		if opts.Cache != nil {
			opts.Cache.AddCluster(keys[ci], s.Res.Edges)
		}
	}
	drainDone := time.Now()
	fo := <-forestCh
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	buildTime := time.Since(buildStart)

	// Overlap saved: the slice of forest work that ran while builds were
	// still in flight — what the barrier path would have serialized.
	end := fo.done
	if drainDone.Before(end) {
		end = drainDone
	}
	var overlapSaved time.Duration
	if d := end.Sub(streamStart); d > 0 {
		overlapSaved = d
	}
	if obs, ok := opts.Dispatcher.(OverlapObserver); ok {
		obs.NoteOverlapSaved(overlapSaved)
	}

	recStart := time.Now()
	recovered, err := recoverCut(ctx, g, plan, inSub, fo.remaining, o)
	if err != nil {
		return nil, err
	}

	st := &sparsify.ShardStats{
		CutRetained:        fo.retained,
		CutRecovered:       recovered,
		BuildTime:          buildTime,
		StitchTime:         fo.elapsed + time.Since(recStart),
		Streamed:           true,
		StreamOverlapSaved: overlapSaved,
	}
	return finishRun(g, plan, o, inSub, nil, perShard, phases, keys, st), nil
}

// finishRun fills the plan-derived and aggregate ShardStats fields and
// assembles the sparsify.Result both build paths share.
func finishRun(g *graph.Graph, plan *Plan, o sparsify.Options, inSub []bool, reweight []float64, perShard []sparsify.ShardBuild, phases []sparsify.Stats, keys []string, st *sparsify.ShardStats) *sparsify.Result {
	for i := range perShard {
		if perShard[i].Reused {
			st.ClustersReused++
		}
		if perShard[i].Remote {
			st.ClustersRemote++
		}
	}
	st.Shards = plan.K
	st.FallbackSplits = plan.FallbackSplits
	st.CutEdges = len(plan.CutEdges)
	st.CutFraction = cutFractionOf(g, plan)
	st.PlanTime = plan.PlanTime
	st.Assign = plan.Assign
	st.ClusterKeys = keys
	st.PerShard = perShard

	res := &sparsify.Result{
		InSub:  inSub,
		Shift:  lap.Shift(g, o.ShiftRel),
		Shards: st,
	}
	res.Reweight = reweight
	for e, in := range inSub {
		if in {
			res.EdgeIdx = append(res.EdgeIdx, e)
		}
	}
	res.Sparsifier = sparsify.WeightedSubgraph(g, res.EdgeIdx, res.Reweight)
	res.Stats.Total = plan.PlanTime + st.BuildTime + st.StitchTime
	res.Stats.EdgesAdded = len(res.EdgeIdx) - (g.N - 1)
	// Phase times aggregate CPU across clusters (they exceed the wall
	// clock when clusters built concurrently); Rounds reports the deepest
	// cluster's densification depth.
	for _, ph := range phases {
		res.Stats.TreeTime += ph.TreeTime
		res.Stats.ScoreTime += ph.ScoreTime
		res.Stats.FactorTime += ph.FactorTime
		if ph.Rounds > res.Stats.Rounds {
			res.Stats.Rounds = ph.Rounds
		}
	}
	if res.Stats.Rounds == 0 {
		res.Stats.Rounds = 1
	}
	return res
}

// cutForest retains a maximum-weight spanning forest of the cut edges
// over the vertices (by descending weight, the same preference MEWST
// applies inside a cluster), marking retained edges into inSub and
// returning the rest for the recovery round.
func cutForest(g *graph.Graph, plan *Plan, inSub []bool) (retained int, remaining []int) {
	cut := append([]int(nil), plan.CutEdges...)
	sortCutByWeight(g, cut)
	d := dsu.New(g.N)
	remaining = make([]int, 0, len(cut))
	for _, e := range cut {
		ed := g.Edges[e]
		if d.Union(ed.U, ed.V) {
			inSub[e] = true
			retained++
		} else {
			remaining = append(remaining, e)
		}
	}
	return retained, remaining
}

// recoverCut is the global recovery round over the remaining cut edges.
// The quota keeps the stitched size comparable to a monolithic build:
// the per-cluster runs already spent ≈ α·Σn_c = α·N, so the boundary
// gets the same α fraction of its own candidate pool (at least one edge
// per planned bridge, so thin cuts still get reinforced). When the pool
// fits the quota anyway, every edge is admitted without scoring —
// factorizing the whole stitched subgraph to rank a pool that fits
// would be the single most expensive no-op in the pipeline (grid-like
// graphs land here: the cut forest already retained almost every seam
// edge).
func recoverCut(ctx context.Context, g *graph.Graph, plan *Plan, inSub []bool, remaining []int, o sparsify.Options) (int, error) {
	alpha := o.Alpha
	if alpha <= 0 {
		alpha = 0.10
	}
	quota := int(alpha * float64(len(plan.CutEdges)))
	if quota < plan.K {
		quota = plan.K
	}
	if len(remaining) <= quota {
		for _, e := range remaining {
			inSub[e] = true
		}
		return len(remaining), nil
	}
	return sparsify.RecoverOffSubgraph(ctx, g, inSub, remaining, quota, o)
}

// cutFractionOf returns the plan's cut-edge share of the input edges.
func cutFractionOf(g *graph.Graph, plan *Plan) float64 {
	if g.M() == 0 {
		return 0
	}
	return float64(len(plan.CutEdges)) / float64(g.M())
}

// adoptCluster marks a cached cluster sparsifier (global endpoint pairs)
// into the membership slice. A pair that no longer resolves to an edge
// aborts the adoption before anything is marked (the fingerprint match
// should make that impossible; the caller falls back to a fresh build).
func adoptCluster(g *graph.Graph, cl *Cluster, pairs [][2]int, inSub []bool, sb *sparsify.ShardBuild) bool {
	if !adoptPairs(g, pairs, inSub) {
		return false
	}
	sb.Vertices = cl.Local.N
	sb.Edges = cl.Local.M()
	sb.SparsifierEdges = len(pairs)
	sb.Reused = true
	return true
}

// adoptWeighted is adoptPairs plus the weight overrides a fresh ER
// cluster build carries: after the all-or-nothing membership marking,
// positive per-edge weights are recorded into the global reweight
// slice (when the caller is collecting one).
func adoptWeighted(g *graph.Graph, cres *ClusterResult, inSub []bool, reweight []float64) bool {
	if !adoptPairs(g, cres.Edges, inSub) {
		return false
	}
	if cres.Weights == nil || reweight == nil {
		return true
	}
	for i, p := range cres.Edges {
		if w := cres.Weights[i]; w > 0 {
			e, _ := g.EdgeBetween(p[0], p[1])
			reweight[e] = w
		}
	}
	return true
}

// adoptPairs resolves global endpoint pairs to edge indices and marks
// them into the membership slice, all-or-nothing: a pair that does not
// resolve aborts before anything is marked. Each cluster's pairs touch
// only its own edge indices, so concurrent workers never write the same
// element.
func adoptPairs(g *graph.Graph, pairs [][2]int, inSub []bool) bool {
	idx := make([]int, len(pairs))
	for i, p := range pairs {
		e, ok := g.EdgeBetween(p[0], p[1])
		if !ok {
			return false
		}
		idx[i] = e
	}
	for _, e := range idx {
		inSub[e] = true
	}
	return true
}
