// Package shard is the partition-parallel sparsification pipeline for
// large graphs. The paper's trace-reduction sparsifier (Algorithm 2) is
// inherently local — β-layer BFS scoring (eq. 12) and γ-hop similarity
// exclusion — so edge importance is dominated by a small neighborhood
// (the same locality argument behind feGRASS's tree-resistance scoring
// [13] and effective-resistance sampling). The pipeline exploits that:
//
//   - Plan recursively bipartitions the graph into K balanced clusters
//     using the spectral (Fiedler) split of §4.3, falling back to a BFS
//     ordering when the spectral solve converges slowly or degenerates;
//   - Run sparsifies every cluster independently on a bounded worker
//     pool, then stitches: each intra-cluster sparsifier edge survives, a
//     maximum-weight spanning forest of the cut edges restores
//     connectivity across clusters, and the remaining cut edges are
//     re-scored with the truncated trace-reduction metric against the
//     stitched subgraph in one global recovery round
//     (sparsify.RecoverOffSubgraph).
//
// The result is a sparsify.Result indistinguishable from a monolithic
// build downstream (same pencil/factorization machinery), with per-shard
// telemetry attached as Result.Shards.
package shard

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/chol"
	"repro/internal/dsu"
	"repro/internal/eig"
	"repro/internal/graph"
	"repro/internal/lap"
	"repro/internal/solver"
	"repro/internal/sparsify"
	"repro/internal/tree"
)

// Options configures the sharded pipeline.
type Options struct {
	// Shards is the number of clusters K to plan (before disconnected
	// clusters are split into components). ≤ 0 derives K from Threshold
	// (ceil(N/Threshold)), or from the worker count when Threshold is
	// also unset.
	Shards int
	// Threshold is the target maximum cluster size used to derive K when
	// Shards is unset. It is typically the same vertex count above which
	// the caller routes graphs into this pipeline.
	Threshold int
	// FiedlerSteps is the number of inverse-power rounds per spectral
	// bisection (default 4; planning needs an ordering, not an
	// eigenvector, so a handful of rounds suffices).
	FiedlerSteps int
	// MaxCutFraction is the expander guard's ceiling on the planned
	// cut-edge share of the input edges: a plan cutting more than this
	// fraction is abandoned by Sparsify in favour of a monolithic build
	// (the stitch would cost more than the parallelism saves). 0 selects
	// DefaultMaxCutFraction; negative disables the guard.
	MaxCutFraction float64
	// RebalanceFactor is the incremental path's balance guard: a delta
	// that grows any retained cluster past RebalanceFactor × (M/K) local
	// edges forces a fresh plan instead of reusing the stale one (the
	// whole point of sharding is bounded per-cluster work). 0 selects
	// DefaultRebalanceFactor; negative disables the guard.
	RebalanceFactor float64
	// BaseClusterEdges, set by the incremental path, is each retained
	// cluster's local edge count at base-build time (aligned with cluster
	// ids). The rebalance guard compares growth against it — the M/K fair
	// share alone is unreachable when K ≤ RebalanceFactor, since no
	// cluster can exceed K× the average.
	BaseClusterEdges []int
	// Cache, when non-nil, is consulted before each cluster is sparsified
	// and populated afterward: a cluster whose fingerprint (ClusterKey)
	// hits adopts the cached sparsifier edges verbatim instead of
	// re-running Algorithm 2. This is what makes delta rebuilds cheap —
	// only dirty clusters miss.
	Cache ClusterCache
	// Dispatcher, when non-nil, executes each non-tiny, cache-missing
	// cluster build (internal/fabric: in-process, or fanned out to a
	// remote worker fleet). Nil builds every cluster in-process — the
	// behaviour predating the fabric.
	Dispatcher Dispatcher
	// Localize, set by the incremental path for delta rebuilds, carries
	// the base build's state so the stitch can adopt clean-region
	// decisions verbatim and confine the forest sweep and recovery round
	// to cut edges near dirty clusters. Nil redoes the full stitch (the
	// behaviour predating the streaming fast path). Ignored by ER builds
	// (their importance reweights are not adoptable by membership alone)
	// and dropped by the guards that abandon the retained plan.
	Localize *Localize
	// Sparsify configures the per-cluster construction and the global
	// recovery round (zero value = the paper's parameters). Workers also
	// bounds the cluster-level pool.
	Sparsify sparsify.Options
}

// fiedlerMinVertices is the cluster size below which planning skips the
// spectral split entirely: factorizing a tree Laplacian and running
// inverse power iteration on a few dozen vertices costs more than the
// split quality buys.
const fiedlerMinVertices = 128

// fiedlerMaxVertices is the size above which planning goes straight to
// the BFS double-sweep ordering: tree-preconditioned inverse power
// iteration converges slowly on huge badly-conditioned pieces, and a
// plan that costs as much as the sparsification it enables is pointless.
// The top levels of a large recursion therefore split geometrically
// (layered BFS across the diameter) and the spectral split takes over
// once the pieces are mid-sized.
const fiedlerMaxVertices = 8000

// fiedlerPCGMaxIter caps each inner PCG solve of the planning Fiedler
// iteration. Planning needs a vertex ordering, not a converged
// eigenvector; a capped solve that returns its best iterate keeps the
// plan O(cheap) on badly conditioned clusters, and a split that suffers
// from it merely costs a few more cut edges at stitch time.
const fiedlerPCGMaxIter = 40

// ResolveShards returns the cluster count K the pipeline will target for
// a graph with n vertices under o (before component splitting and
// fragment repair adjust it). The serving engine uses it so that an
// auto-K request and an explicit request resolving to the same K share
// one artifact identity.
func ResolveShards(n, workers int, o Options) int { return o.resolveShards(n, workers) }

// resolveShards returns the cluster count K for a graph with n vertices.
func (o Options) resolveShards(n, workers int) int {
	k := o.Shards
	if k <= 0 {
		switch {
		case o.Threshold > 0:
			k = (n + o.Threshold - 1) / o.Threshold
		default:
			k = workers
		}
		if k < 2 {
			k = 2
		}
	}
	// Each cluster should be worth sparsifying on its own; below ~8
	// vertices per cluster the stitch dominates and the plan is noise.
	if max := n / 8; k > max {
		k = max
	}
	if k < 1 {
		k = 1
	}
	return k
}

// Cluster is one planned partition cell: its global vertex set and the
// induced local subgraph (local vertex i is global Vertices[i]; local
// edge j is global edge GlobalEdge[j]). On a lazily materialized plan
// (PlanFromAssignReweight) clean clusters carry only the vertex list
// and the edge count — Local and GlobalEdge stay nil, since the
// index-adoption path never reads them.
type Cluster struct {
	Vertices   []int
	Local      *graph.Graph
	GlobalEdge []int
	// EdgeCount mirrors Local.M() for clusters whose local subgraph was
	// not materialized; read it through LocalEdges.
	EdgeCount int
}

// LocalEdges returns the cluster's intra-cluster edge count whether or
// not the local subgraph was materialized.
func (c *Cluster) LocalEdges() int {
	if c.Local != nil {
		return c.Local.M()
	}
	return c.EdgeCount
}

// Plan is a K-way partition of a graph: per-vertex cluster assignment,
// the induced cluster subgraphs (each connected by construction), and
// the cut-edge set.
type Plan struct {
	K        int // len(Clusters), after component splitting
	Planned  int // the K the bisection targeted
	Assign   []int
	Clusters []Cluster
	// CutEdges lists indices into the input graph's edge list whose
	// endpoints lie in different clusters.
	CutEdges []int
	// FallbackSplits counts bisections that used the BFS ordering
	// instead of the Fiedler split.
	FallbackSplits int
	PlanTime       time.Duration
}

// NewPlan partitions g into (about) k balanced, connected clusters by
// recursive spectral bisection. k ≤ 0 resolves per Options.resolveShards.
// Planned clusters that come out disconnected (a median split of a
// Fiedler ordering does not preserve connectivity) are split into their
// components, so K can exceed the planned k slightly; every returned
// cluster is connected, which the per-cluster sparsifier requires.
//
// Sibling bisections of the recursion are independent and run
// concurrently on the same bounded worker pool Run uses
// (Options.Sparsify.Workers); the resulting plan is identical to a
// sequential one — cluster numbering is canonicalized by vertex order
// after the recursion, so scheduling cannot leak into the partition.
func NewPlan(ctx context.Context, g *graph.Graph, opts Options) (*Plan, error) {
	if g == nil || g.N < 1 {
		return nil, fmt.Errorf("shard: nil or empty graph")
	}
	workers := opts.Sparsify.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	k := opts.resolveShards(g.N, workers)
	start := time.Now()

	p := &Plan{Planned: k, Assign: make([]int, g.N)}
	pl := newPlanner(g, opts, p, workers)
	all := make([]int, g.N)
	for i := range all {
		all[i] = i
	}
	if err := pl.split(ctx, all, k); err != nil {
		return nil, err
	}
	p.FallbackSplits = int(pl.fallbacks.Load())
	if err := p.componentize(g, true); err != nil {
		return nil, err
	}
	p.PlanTime = time.Since(start)
	return p, nil
}

// planner carries the recursion state of NewPlan. Sibling subtrees may run
// on different goroutines (bounded by sem), so the global→local scratch
// arrays are pooled, cluster ids come from an atomic counter, and the
// fallback count is atomic; Assign writes are per-vertex disjoint across
// subtrees by construction.
type planner struct {
	g         *graph.Graph
	opts      Options
	plan      *Plan
	sem       chan struct{} // spare worker slots (capacity workers-1)
	nextID    atomic.Int64
	fallbacks atomic.Int64
	scratch   sync.Pool // *[]int, len g.N, all -1 between uses
}

func newPlanner(g *graph.Graph, opts Options, p *Plan, workers int) *planner {
	if workers < 1 {
		workers = 1
	}
	pl := &planner{g: g, opts: opts, plan: p, sem: make(chan struct{}, workers-1)}
	pl.scratch.New = func() any {
		s := make([]int, g.N)
		for i := range s {
			s[i] = -1
		}
		return &s
	}
	return pl
}

// split assigns the vertices in verts to `parts` cluster ids by recursive
// bisection, offloading the left subtree to a pooled goroutine when a
// worker slot is free and recursing inline otherwise.
func (pl *planner) split(ctx context.Context, verts []int, parts int) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("shard: planning: %w", err)
	}
	if parts <= 1 || len(verts) <= 1 {
		id := int(pl.nextID.Add(1)) - 1
		for _, v := range verts {
			pl.plan.Assign[v] = id
		}
		return nil
	}
	order := pl.splitOrder(ctx, verts)
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("shard: planning: %w", err)
	}
	p1 := parts / 2
	// Proportional cut point keeps cluster sizes balanced when parts is
	// odd (e.g. 3 parts → 1/3 : 2/3 at this level).
	cut := len(order) * p1 / parts
	if cut < 1 {
		cut = 1
	}
	if cut >= len(order) {
		cut = len(order) - 1
	}
	left, right := order[:cut], order[cut:]
	select {
	case pl.sem <- struct{}{}:
		var wg sync.WaitGroup
		var lerr error
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-pl.sem }()
			lerr = pl.split(ctx, left, p1)
		}()
		rerr := pl.split(ctx, right, parts-p1)
		wg.Wait()
		if lerr != nil {
			return lerr
		}
		return rerr
	default:
		if err := pl.split(ctx, left, p1); err != nil {
			return err
		}
		return pl.split(ctx, right, parts-p1)
	}
}

// splitOrder returns verts reordered so that a prefix/suffix cut yields a
// good bisection: by Fiedler value of the induced subgraph when the
// spectral solve succeeds, by layered BFS from an extremal vertex
// otherwise (which also groups disconnected components contiguously).
func (pl *planner) splitOrder(ctx context.Context, verts []int) []int {
	local, _ := pl.induced(verts)
	if local.N >= fiedlerMinVertices && local.Connected() {
		if local.N > fiedlerMaxVertices {
			// Deliberate geometric split: counted with the fallbacks so
			// telemetry shows how much of the plan was non-spectral.
			pl.fallbacks.Add(1)
			return bfsOrder(local, verts)
		}
		if order, ok := fiedlerOrder(ctx, local, verts, pl.opts); ok {
			return order
		}
		pl.fallbacks.Add(1)
	}
	return bfsOrder(local, verts)
}

// induced builds the subgraph of pl.g induced by verts, with local vertex
// ids following the order of verts. The second return maps local edge
// index → global edge index.
func (pl *planner) induced(verts []int) (*graph.Graph, []int) {
	g := pl.g
	sp := pl.scratch.Get().(*[]int)
	localID := *sp
	for i, v := range verts {
		localID[v] = i
	}
	var edges []graph.Edge
	var globalEdge []int
	for i, v := range verts {
		for p := g.AdjStart[v]; p < g.AdjStart[v+1]; p++ {
			u := g.AdjTarget[p]
			lu := localID[u]
			if lu < 0 || lu <= i {
				continue // outside the set, or counted from the other side
			}
			e := g.AdjEdge[p]
			edges = append(edges, graph.Edge{U: i, V: lu, W: g.Edges[e].W})
			globalEdge = append(globalEdge, e)
		}
	}
	for _, v := range verts {
		localID[v] = -1
	}
	pl.scratch.Put(sp)
	// The emitted edges are valid, normalized (i < lu), and deduplicated
	// by construction; FromNormalized also preserves their order exactly,
	// which keeps globalEdge[j] aligned with Local.Edges[j] — callers map
	// local sparsifier edge indices back through it.
	lg := graph.FromNormalized(len(verts), edges)
	return lg, globalEdge
}

// fiedlerOrder computes the Fiedler vector of the connected local graph
// with a spanning-tree-preconditioned inverse power iteration and returns
// the global vertex ids sorted by Fiedler value. ok is false when the
// solve fails or the vector degenerates (no usable spread), in which case
// the caller falls back to the BFS ordering.
func fiedlerOrder(ctx context.Context, local *graph.Graph, verts []int, opts Options) ([]int, bool) {
	steps := opts.FiedlerSteps
	if steps <= 0 {
		steps = 4
	}
	st, err := tree.MEWST(local)
	if err != nil {
		return nil, false
	}
	shift := lap.Shift(local, opts.Sparsify.ShiftRel)
	lt := lap.Laplacian(local.Subgraph(st.EdgeIdx), shift)
	f, err := chol.New(lt, chol.Options{})
	if err != nil {
		return nil, false
	}
	lg := lap.Laplacian(local, shift)
	pre := solver.NewCholPrecond(f)
	fv, err := eig.FiedlerCtx(ctx, local.N, steps, opts.Sparsify.Seed+int64(local.N), func(dst, b []float64) {
		for i := range dst {
			dst[i] = 0
		}
		solver.PCG(lg, b, dst, pre, solver.Options{Tol: 1e-3, MaxIter: fiedlerPCGMaxIter, Ctx: ctx})
	})
	if err != nil || len(fv) != local.N {
		return nil, false
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range fv {
		if math.IsNaN(v) {
			return nil, false
		}
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if !(hi > lo) {
		return nil, false // degenerate: every component equal, no ordering
	}
	order := make([]int, len(verts))
	idx := argsort(fv)
	for i, li := range idx {
		order[i] = verts[li]
	}
	return order, true
}

// bfsOrder returns the global vertex ids of the local graph in layered
// BFS discovery order from an extremal vertex (the far end of a BFS
// double sweep), restarted per component so components stay contiguous.
func bfsOrder(local *graph.Graph, verts []int) []int {
	// First sweep from local vertex 0 finds a far vertex; second sweep
	// from there yields the bisection ordering (a classic diameter
	// heuristic: cutting at the median of that ordering separates the
	// graph roughly across its long axis).
	far := 0
	seen := make([]int, local.N)
	for i := range seen {
		seen[i] = -1
	}
	local.BFSLayers(0, -1, seen, func(v, _, _ int) { far = v })

	order := make([]int, 0, len(verts))
	seen2 := make([]int, local.N)
	for i := range seen2 {
		seen2[i] = -1
	}
	visit := func(v, _, _ int) { order = append(order, verts[v]) }
	local.BFSLayers(far, -1, seen2, visit)
	for s := 0; s < local.N; s++ { // remaining components, if any
		if seen2[s] == -1 {
			local.BFSLayers(s, -1, seen2, visit)
		}
	}
	return order
}

// argsort returns indices that sort vals ascending (stable on ties).
func argsort(vals []float64) []int {
	idx := make([]int, len(vals))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if vals[idx[a]] != vals[idx[b]] {
			return vals[idx[a]] < vals[idx[b]]
		}
		return idx[a] < idx[b] // deterministic tie-break
	})
	return idx
}

// componentize replaces every planned cluster by its connected
// components, optionally merges small fragments back into their
// strongest neighboring cluster, and rebuilds Assign, Clusters, and
// CutEdges. Per-cluster sparsification requires connected inputs; a
// spectral (or BFS) median cut does not guarantee that, and without the
// repair pass a noisy ordering splinters the plan into far more clusters
// than planned (tiny fragments inflate the cut and starve the
// per-cluster economics). PlanFromAssign passes repair=false: its input
// was already repaired once, and re-running the merge under a different
// Planned-derived threshold would reshuffle cluster ids — and with them
// every per-cluster seed and fingerprint — on an unchanged assignment.
func (p *Plan) componentize(g *graph.Graph, repair bool) error {
	if p.Planned < 1 {
		return fmt.Errorf("shard: empty plan")
	}
	// Gather planned clusters' vertex lists.
	byID := make([][]int, 0, p.Planned)
	idOf := make(map[int]int, p.Planned)
	for v, id := range p.Assign {
		j, ok := idOf[id]
		if !ok {
			j = len(byID)
			idOf[id] = j
			byID = append(byID, nil)
		}
		byID[j] = append(byID[j], v)
	}

	pl := newPlanner(g, Options{}, p, 1)
	final := 0
	for _, verts := range byID {
		local, _ := pl.induced(verts)
		comp := local.Components()
		base := final
		maxC := 0
		for li, c := range comp {
			if c > maxC {
				maxC = c
			}
			p.Assign[verts[li]] = base + c
		}
		final = base + maxC + 1
	}

	if repair {
		final = p.repairFragments(g, final)
	}
	p.K = final

	// Rebuild cluster vertex lists under the final assignment, then the
	// induced local graphs and the cut-edge set.
	vertsOf := make([][]int, p.K)
	for v, id := range p.Assign {
		vertsOf[id] = append(vertsOf[id], v)
	}
	p.Clusters = make([]Cluster, p.K)
	for i, verts := range vertsOf {
		local, globalEdge := pl.induced(verts)
		p.Clusters[i] = Cluster{Vertices: verts, Local: local, GlobalEdge: globalEdge}
	}
	p.CutEdges = p.CutEdges[:0]
	for e, ed := range g.Edges {
		if p.Assign[ed.U] != p.Assign[ed.V] {
			p.CutEdges = append(p.CutEdges, e)
		}
	}
	return nil
}

// repairFragments merges clusters far below their fair share (< 1/4 of
// N/planned) into the neighboring cluster they share the most edge weight
// with, repeating until no fragment has a neighbor (a merged cluster
// stays connected: the fragment attaches through the very edges that made
// that neighbor the strongest). It rewrites Assign to compact ids and
// returns the new cluster count.
func (p *Plan) repairFragments(g *graph.Graph, k int) int {
	d := dsu.New(k)
	fair := len(p.Assign) / p.Planned
	small := fair / 4
	if small < 1 {
		small = 1
	}
	for pass := 0; pass < 16; pass++ {
		sizes := make([]int, k)
		for _, id := range p.Assign {
			sizes[d.Find(id)]++
		}
		// Per-fragment boundary weight toward each neighboring cluster;
		// the heaviest shared boundary wins the merge.
		wTo := make(map[int]map[int]float64)
		for _, ed := range g.Edges {
			a, b := d.Find(p.Assign[ed.U]), d.Find(p.Assign[ed.V])
			if a == b {
				continue
			}
			for _, pair := range [2][2]int{{a, b}, {b, a}} {
				from, to := pair[0], pair[1]
				if sizes[from] > small {
					continue
				}
				m := wTo[from]
				if m == nil {
					m = make(map[int]float64)
					wTo[from] = m
				}
				m[to] += ed.W
			}
		}
		if len(wTo) == 0 {
			break
		}
		// Deterministic merge order: ascending fragment id, best neighbor
		// by weight with id tie-break (map iteration order must not leak
		// into the plan).
		merged := false
		for from := 0; from < k; from++ {
			m := wTo[from]
			if m == nil || d.Find(from) != from {
				continue // not a fragment, or already absorbed this pass
			}
			bestTo, bestW := -1, 0.0
			for to, w := range m {
				if bestTo == -1 || w > bestW || (w == bestW && to < bestTo) {
					bestTo, bestW = to, w
				}
			}
			if bestTo >= 0 && d.Union(from, bestTo) {
				merged = true
			}
		}
		if !merged {
			break
		}
	}
	// Compact ids.
	remap := make([]int, k)
	for i := range remap {
		remap[i] = -1
	}
	next := 0
	for v, id := range p.Assign {
		r := d.Find(id)
		if remap[r] == -1 {
			remap[r] = next
			next++
		}
		p.Assign[v] = remap[r]
	}
	return next
}
