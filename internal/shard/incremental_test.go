package shard_test

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/shard"
	"repro/internal/sparsify"
)

// TestClusterKeyStability: the cluster fingerprint must be a function of
// the cluster's content, not of the input edge order — a resubmitted
// graph whose edge list arrived permuted must hit the cache — while any
// weight change, seed change, or config change must miss.
func TestClusterKeyStability(t *testing.T) {
	g := threeCommunities(10, 7)
	plan, err := shard.NewPlan(context.Background(), g, shard.Options{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}

	// The same graph from a shuffled edge list, re-planned from the
	// retained assignment: every cluster fingerprint must match.
	rng := rand.New(rand.NewSource(3))
	shuffled := append([]graph.Edge(nil), g.Edges...)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	g2 := graph.MustNew(g.N, shuffled)
	plan2, err := shard.PlanFromAssign(g2, plan.Assign)
	if err != nil {
		t.Fatal(err)
	}
	if plan2.K != plan.K {
		t.Fatalf("replanned K = %d, want %d", plan2.K, plan.K)
	}
	opts := sparsify.Options{Seed: 1}
	for ci := range plan.Clusters {
		k1 := shard.ClusterKey(&plan.Clusters[ci], 1, opts)
		k2 := shard.ClusterKey(&plan2.Clusters[ci], 1, opts)
		if k1 != k2 {
			t.Fatalf("cluster %d fingerprint changed under edge permutation:\n  %s\n  %s", ci, k1, k2)
		}
	}

	// A single weight change must change exactly that cluster's key.
	var target graph.Edge
	targetCluster := -1
	for _, e := range g.Edges {
		if plan.Assign[e.U] == plan.Assign[e.V] {
			target, targetCluster = e, plan.Assign[e.U]
			break
		}
	}
	if targetCluster < 0 {
		t.Fatal("no intra-cluster edge found")
	}
	g3, err := graph.Delta{Set: []graph.Edge{{U: target.U, V: target.V, W: target.W * 2}}}.Apply(g)
	if err != nil {
		t.Fatal(err)
	}
	plan3, err := shard.PlanFromAssign(g3, plan.Assign)
	if err != nil {
		t.Fatal(err)
	}
	for ci := range plan.Clusters {
		k1 := shard.ClusterKey(&plan.Clusters[ci], 1, opts)
		k3 := shard.ClusterKey(&plan3.Clusters[ci], 1, opts)
		if ci == targetCluster && k1 == k3 {
			t.Fatalf("cluster %d fingerprint unchanged after weight change", ci)
		}
		if ci != targetCluster && k1 != k3 {
			t.Fatalf("untouched cluster %d fingerprint changed: %s vs %s", ci, k1, k3)
		}
	}

	// Seed and config sensitivity.
	cl := &plan.Clusters[0]
	if shard.ClusterKey(cl, 1, opts) == shard.ClusterKey(cl, 2, opts) {
		t.Fatal("fingerprint ignores the seed")
	}
	if shard.ClusterKey(cl, 1, opts) == shard.ClusterKey(cl, 1, sparsify.Options{Seed: 1, Alpha: 0.2}) {
		t.Fatal("fingerprint ignores the config")
	}
}

// TestPlanFromAssignIsIdentity: replanning from a retained assignment of
// an unchanged graph must preserve cluster ids exactly (they drive the
// per-cluster seeds, and therefore the fingerprints).
func TestPlanFromAssignIsIdentity(t *testing.T) {
	g := threeCommunities(12, 5)
	plan, err := shard.NewPlan(context.Background(), g, shard.Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	again, err := shard.PlanFromAssign(g, plan.Assign)
	if err != nil {
		t.Fatal(err)
	}
	if again.K != plan.K {
		t.Fatalf("K = %d, want %d", again.K, plan.K)
	}
	for v := range plan.Assign {
		if plan.Assign[v] != again.Assign[v] {
			t.Fatalf("vertex %d reassigned %d → %d", v, plan.Assign[v], again.Assign[v])
		}
	}
	if len(again.CutEdges) != len(plan.CutEdges) {
		t.Fatalf("cut edges %d, want %d", len(again.CutEdges), len(plan.CutEdges))
	}
}

// TestIncrementalEquivalenceGate: after a small delta, the incremental
// rebuild must (a) reuse every untouched cluster, and (b) solve within
// 1.2× the PCG iterations of a cold sharded build of the same updated
// graph — the acceptance bound on the staleness the reuse tolerates.
func TestIncrementalEquivalenceGate(t *testing.T) {
	ctx := context.Background()
	g := threeCommunities(16, 11)
	cfg := core.Config{
		Sparsify:       sparsify.Options{Seed: 1},
		Tol:            1e-6,
		ShardThreshold: g.N / 4,
		Shards:         3,
	}
	base, err := core.NewSparsifier(ctx, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !base.Sharded() {
		t.Fatal("base did not take the sharded path")
	}

	// Reweight a handful of edges inside one community.
	var d graph.Delta
	assign := base.ShardStats().Assign
	dirty := -1
	for _, e := range g.Edges {
		if assign[e.U] == assign[e.V] && (dirty == -1 || assign[e.U] == dirty) {
			dirty = assign[e.U]
			d.Set = append(d.Set, graph.Edge{U: e.U, V: e.V, W: e.W * 1.5})
			if len(d.Set) == 5 {
				break
			}
		}
	}
	inc, err := base.Update(ctx, d)
	if err != nil {
		t.Fatal(err)
	}
	st := inc.ShardStats()
	if st == nil || !st.Incremental {
		t.Fatalf("update did not take the incremental path: %+v", st)
	}
	if st.ClustersReused == 0 || st.ClustersReused < st.Shards-1 {
		t.Fatalf("reused %d of %d clusters, want all but the dirty one", st.ClustersReused, st.Shards)
	}

	newG, err := d.Apply(g)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := core.NewSparsifier(ctx, newG, cfg)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(42))
	b := make([]float64, g.N)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	cs, err := cold.Solve(ctx, b)
	if err != nil {
		t.Fatal(err)
	}
	is, err := inc.Solve(ctx, b)
	if err != nil {
		t.Fatal(err)
	}
	if !cs.Converged || !is.Converged {
		t.Fatalf("convergence: cold=%v incremental=%v", cs.Converged, is.Converged)
	}
	if float64(is.Iterations) > 1.2*float64(cs.Iterations) {
		t.Fatalf("incremental PCG took %d iterations, cold sharded %d — over the 1.2x gate",
			is.Iterations, cs.Iterations)
	}
	t.Logf("PCG iterations: cold=%d incremental=%d (reused %d/%d clusters, %d factors)",
		cs.Iterations, is.Iterations, st.ClustersReused, st.Shards, inc.PrecondStats().FactorsReused)
}

// TestIncrementalRemovalAndAddition: structural deltas (edge removed,
// edge added) flow through the incremental path and still produce a
// connected, solvable sparsifier.
func TestIncrementalStructuralDelta(t *testing.T) {
	ctx := context.Background()
	g := threeCommunities(12, 3)
	cfg := core.Config{
		Sparsify:       sparsify.Options{Seed: 1},
		Tol:            1e-6,
		ShardThreshold: g.N / 4,
		Shards:         3,
	}
	base, err := core.NewSparsifier(ctx, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	assign := base.ShardStats().Assign
	// Remove one intra-cluster edge that cannot disconnect its community
	// (grid interiors are 2-connected) and add a fresh shortcut.
	var rm graph.Edge
	for _, e := range g.Edges {
		if assign[e.U] == assign[e.V] {
			rm = e
			break
		}
	}
	d := graph.Delta{
		Remove: [][2]int{{rm.U, rm.V}},
		Set:    []graph.Edge{{U: 0, V: g.N - 1, W: 0.5}},
	}
	inc, err := base.Update(ctx, d)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, g.N)
	b[0], b[g.N-1] = 1, -1
	sol, err := inc.Solve(ctx, b)
	if err != nil || !sol.Converged {
		t.Fatalf("solve through updated handle: converged=%v err=%v", sol != nil && sol.Converged, err)
	}
	if inc.N() != g.N {
		t.Fatalf("updated handle has %d vertices, want %d", inc.N(), g.N)
	}
}

// TestRebalanceGuardForcesReplan: a delta that piles enough new edges
// into one retained cluster to dwarf its base-build size must abandon
// the stale plan for a fresh build — and the result must NOT be marked
// Incremental (operators read that flag as "a prior plan was reused").
// The guard compares against the cluster's own base size because the
// M/K fair-share bound alone is unreachable at small K.
func TestRebalanceGuardForcesReplan(t *testing.T) {
	ctx := context.Background()
	g := threeCommunities(12, 3)
	cfg := core.Config{
		Sparsify:       sparsify.Options{Seed: 1},
		Tol:            1e-6,
		ShardThreshold: g.N / 4,
		Shards:         3,
	}
	base, err := core.NewSparsifier(ctx, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	assign := base.ShardStats().Assign

	// Densify one community far past 4x its base edge count: add every
	// absent pair among its first 80 vertices (~3160 edges vs ~260 base).
	var cl0 []int
	for v, c := range assign {
		if c == assign[0] {
			cl0 = append(cl0, v)
			if len(cl0) == 80 {
				break
			}
		}
	}
	var d graph.Delta
	for i := 0; i < len(cl0); i++ {
		for j := i + 1; j < len(cl0); j++ {
			if _, ok := g.EdgeBetween(cl0[i], cl0[j]); !ok {
				d.Set = append(d.Set, graph.Edge{U: cl0[i], V: cl0[j], W: 1})
			}
		}
	}
	up, err := base.Update(ctx, d)
	if err != nil {
		t.Fatal(err)
	}
	st := up.ShardStats()
	if st == nil {
		t.Fatal("replan lost shard telemetry")
	}
	if st.Incremental {
		t.Fatalf("rebalance replan still marked Incremental (reused %d/%d)", st.ClustersReused, st.Shards)
	}
	// And a solve through the replanned handle works.
	b := make([]float64, g.N)
	b[0], b[g.N-1] = 1, -1
	if sol, err := up.Solve(ctx, b); err != nil || !sol.Converged {
		t.Fatalf("solve after replan: converged=%v err=%v", sol != nil && sol.Converged, err)
	}
}
