package shard

import (
	"context"
	"fmt"
	"time"

	"repro/internal/graph"
	"repro/internal/sparsify"
)

// DefaultRebalanceFactor is the incremental balance guard's ceiling when
// Options.RebalanceFactor is unset: a retained cluster holding more than
// this multiple of its fair edge share (M/K) forces a fresh plan.
const DefaultRebalanceFactor = 4.0

// PlanFromAssign rebuilds a Plan for g from a retained per-vertex cluster
// assignment — the incremental path's replacement for the recursive
// bisection. Clusters that a delta disconnected are split into their
// components (exactly the repair a fresh plan gets), so every returned
// cluster is connected; on an assignment whose clusters are all still
// connected the rebuild is the identity and cluster ids — and therefore
// per-cluster seeds and fingerprints — are preserved.
func PlanFromAssign(g *graph.Graph, assign []int) (*Plan, error) {
	if g == nil || g.N < 1 {
		return nil, fmt.Errorf("shard: nil or empty graph")
	}
	if len(assign) != g.N {
		return nil, fmt.Errorf("shard: assignment covers %d vertices, graph has %d", len(assign), g.N)
	}
	maxID := -1
	for v, id := range assign {
		if id < 0 {
			return nil, fmt.Errorf("shard: vertex %d has negative cluster id %d", v, id)
		}
		if id > maxID {
			maxID = id
		}
	}
	start := time.Now()
	p := &Plan{Planned: maxID + 1, Assign: append([]int(nil), assign...)}
	// repair=false: the retained assignment already went through fragment
	// repair at plan time; re-merging under this plan's (different)
	// Planned-derived threshold could absorb a still-connected, unchanged
	// cluster and shift every later cluster's id, seed, and fingerprint —
	// silently collapsing reuse. Fragments a delta genuinely disconnects
	// simply become their own (possibly tiny) clusters instead.
	if err := p.componentize(g, false); err != nil {
		return nil, err
	}
	p.PlanTime = time.Since(start)
	return p, nil
}

// PlanFromAssignReweight is the lazy counterpart of PlanFromAssign for
// reweight-only deltas: edge weights cannot change connectivity, so the
// per-cluster component re-check is provably the identity and is
// skipped, and local subgraphs are extracted only for clusters holding
// a dirty vertex — clean clusters carry just their vertex list and edge
// count (Cluster.LocalEdges), which is everything the index-adoption
// path reads. This turns the per-update plan cost from O(n + m) graph
// extraction into one counting pass.
//
// The caller owns the reweight-only guarantee (shard has no delta to
// check it against); a structural delta must go through PlanFromAssign.
func PlanFromAssignReweight(g *graph.Graph, assign, dirtyVertices []int) (*Plan, error) {
	if g == nil || g.N < 1 {
		return nil, fmt.Errorf("shard: nil or empty graph")
	}
	if len(assign) != g.N {
		return nil, fmt.Errorf("shard: assignment covers %d vertices, graph has %d", len(assign), g.N)
	}
	maxID := -1
	for v, id := range assign {
		if id < 0 {
			return nil, fmt.Errorf("shard: vertex %d has negative cluster id %d", v, id)
		}
		if id > maxID {
			maxID = id
		}
	}
	start := time.Now()
	p := &Plan{K: maxID + 1, Planned: maxID + 1, Assign: append([]int(nil), assign...)}
	vertsOf := make([][]int, p.K)
	for v, id := range p.Assign {
		vertsOf[id] = append(vertsOf[id], v)
	}
	counts := make([]int, p.K)
	for e := range g.Edges {
		ed := &g.Edges[e]
		if cu := p.Assign[ed.U]; cu == p.Assign[ed.V] {
			counts[cu]++
		} else {
			p.CutEdges = append(p.CutEdges, e)
		}
	}
	dirty := make([]bool, p.K)
	for _, v := range dirtyVertices {
		if v >= 0 && v < len(p.Assign) {
			dirty[p.Assign[v]] = true
		}
	}
	pl := newPlanner(g, Options{}, p, 1)
	p.Clusters = make([]Cluster, p.K)
	for i, verts := range vertsOf {
		c := Cluster{Vertices: verts, EdgeCount: counts[i]}
		if dirty[i] {
			c.Local, c.GlobalEdge = pl.induced(verts)
		}
		p.Clusters[i] = c
	}
	p.PlanTime = time.Since(start)
	return p, nil
}

// SparsifyIncremental is the delta-rebuild counterpart of Sparsify: it
// reuses a retained plan assignment instead of replanning, so clusters a
// delta did not touch keep their fingerprints and hit Options.Cache —
// only dirty clusters re-run Algorithm 2; the stitch (cut forest +
// global recovery round) is always redone against the new graph.
//
// Two guards protect the reuse from going stale:
//
//   - rebalance: a delta that grew any retained cluster past
//     RebalanceFactor × (M/K) local edges abandons the stale plan for a
//     fresh Sparsify (bounded per-cluster work is the point of sharding);
//   - expander: the same MaxCutFraction ceiling as Sparsify, re-checked
//     against the new graph's cut, falling back to a monolithic build.
//
// The result's ShardStats carries Incremental plus the ClustersReused
// count, so callers can report how much of the rebuild was avoided.
func SparsifyIncremental(ctx context.Context, g *graph.Graph, assign []int, opts Options) (*sparsify.Result, error) {
	plan, err := planForIncremental(g, assign, opts)
	if err != nil {
		return nil, err
	}

	rf := opts.RebalanceFactor
	if rf == 0 {
		rf = DefaultRebalanceFactor
	}
	if rf > 0 && plan.K > 1 {
		fair := float64(g.M()) / float64(plan.K)
		for ci := range plan.Clusters {
			m := float64(plan.Clusters[ci].LocalEdges())
			grown := m > rf*fair
			// The fair-share bound alone cannot trip when K ≤ rf (no
			// cluster can hold more than K× the average), so also compare
			// against the cluster's own base-build size when the caller
			// provided it; the tiny floor keeps noise on near-empty
			// clusters from forcing replans.
			if !grown && ci < len(opts.BaseClusterEdges) && opts.BaseClusterEdges[ci] > tinyClusterEdges {
				grown = m > rf*float64(opts.BaseClusterEdges[ci])
			}
			if grown {
				// Fresh plan, full build: deliberately NOT marked
				// Incremental — callers and operators read that flag as
				// "a prior plan was reused", and a rebalance replan pays
				// cold-build cost. The localized-stitch state is tied to
				// the retained plan being abandoned here; a fresh plan's
				// cut set has no base decisions to adopt.
				opts.Localize = nil
				return Sparsify(ctx, g, opts)
			}
		}
	}

	maxCut := opts.MaxCutFraction
	if maxCut == 0 {
		maxCut = DefaultMaxCutFraction
	}
	cutFrac := cutFractionOf(g, plan)
	if maxCut > 0 && cutFrac > maxCut {
		so := opts.Sparsify
		if so.Method == sparsify.ER || so.ERRanking {
			so = so.WithERAssign(plan.Assign)
		}
		res, err := sparsify.SparsifyContext(ctx, g, so)
		if err != nil {
			return nil, err
		}
		// Abandoned into a monolithic build: nothing of the prior plan was
		// reused, so Incremental stays false (see above).
		res.Shards = &sparsify.ShardStats{
			Shards:         plan.K,
			FallbackSplits: plan.FallbackSplits,
			CutEdges:       len(plan.CutEdges),
			CutFraction:    cutFrac,
			Abandoned:      true,
			PlanTime:       plan.PlanTime,
		}
		return res, nil
	}

	res, err := Run(ctx, g, plan, opts)
	if err != nil {
		return nil, err
	}
	res.Shards.Incremental = true
	return res, nil
}

// planForIncremental picks the plan reconstruction: the lazy
// reweight-only variant when the localize handoff proves index adoption
// will engage in Run (so clean clusters' local subgraphs are provably
// never read), the full PlanFromAssign otherwise. The conditions mirror
// Run's own gating (Localize.adoptByIndex plus the ER carve-out)
// exactly — if any of them fails, Run would route clean clusters
// through fingerprinting, which needs materialized local graphs.
func planForIncremental(g *graph.Graph, assign []int, opts Options) (*Plan, error) {
	loc := opts.Localize
	if loc != nil && loc.IndexAligned && loc.BaseSub != nil &&
		len(loc.BaseEdgeIdx) > 0 && opts.Sparsify.Method != sparsify.ER {
		aligned := true
		for _, ei := range loc.BaseEdgeIdx {
			if ei < 0 || ei >= g.M() {
				aligned = false
				break
			}
		}
		if aligned {
			p, err := PlanFromAssignReweight(g, assign, loc.DirtyVertices)
			if err != nil {
				return nil, err
			}
			if len(loc.BaseKeys) == p.K {
				return p, nil
			}
			// Key misalignment: adoption will not engage, so the lazy
			// plan's unmaterialized clean clusters would be read. Rebuild
			// fully instead.
		}
	}
	return PlanFromAssign(g, assign)
}
