package shard_test

import (
	"context"
	"testing"

	"repro/internal/graph"
	"repro/internal/shard"
	"repro/internal/sparsify"
)

// baseSubFunc builds the endpoint-membership oracle a Localize carries:
// whether the undirected edge (u, v) was in the base sparsifier.
func baseSubFunc(g *graph.Graph, res *sparsify.Result) func(u, v int) bool {
	in := make(map[[2]int]bool, len(res.EdgeIdx))
	for _, ei := range res.EdgeIdx {
		ed := g.Edges[ei]
		u, v := ed.U, ed.V
		if u > v {
			u, v = v, u
		}
		in[[2]int{u, v}] = true
	}
	return func(u, v int) bool {
		if u > v {
			u, v = v, u
		}
		return in[[2]int{u, v}]
	}
}

// localizeFromBase assembles the Localize handoff exactly the way the
// core fast path does: endpoint membership always, index adoption only
// for non-structural patches.
func localizeFromBase(g *graph.Graph, res *sparsify.Result, p *graph.Patch) *shard.Localize {
	loc := &shard.Localize{
		DirtyVertices: p.Touched,
		BaseSub:       baseSubFunc(g, res),
	}
	if !p.Structural() {
		loc.IndexAligned = true
		loc.BaseEdgeIdx = res.EdgeIdx
		loc.BaseKeys = res.Shards.ClusterKeys
	}
	return loc
}

// cleanCutCompat checks the acceptance contract: every cut edge of the
// incremental plan whose endpoint clusters are both clean must have
// exactly the base build's membership. Returns the number of clean-clean
// cut edges checked.
func cleanCutCompat(t *testing.T, g *graph.Graph, res *sparsify.Result, baseSub func(u, v int) bool, dirtyVerts []int) int {
	t.Helper()
	assign := res.Shards.Assign
	dirty := make([]bool, res.Shards.Shards)
	for _, v := range dirtyVerts {
		dirty[assign[v]] = true
	}
	checked := 0
	for ei, ed := range g.Edges {
		if assign[ed.U] == assign[ed.V] || dirty[assign[ed.U]] || dirty[assign[ed.V]] {
			continue
		}
		checked++
		if res.InSub[ei] != baseSub(ed.U, ed.V) {
			t.Errorf("clean-clean cut edge %d (%d-%d): localized membership %v, base %v",
				ei, ed.U, ed.V, res.InSub[ei], baseSub(ed.U, ed.V))
		}
	}
	return checked
}

func TestLocalizedStitchReweightBitCompat(t *testing.T) {
	g := threeCommunities(14, 11)
	ctx := context.Background()
	opts := shard.Options{Shards: 3, Sparsify: sparsify.Options{Seed: 5}}
	base, err := shard.Sparsify(ctx, g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if base.Shards.Abandoned {
		t.Fatal("base build abandoned its plan; fixture needs retuning")
	}

	// Reweight a handful of edges inside community 0 only (vertices
	// 0..195): a non-structural, index-aligned delta.
	var d graph.Delta
	bumped := 0
	for _, ed := range g.Edges {
		if ed.U < 14*14 && ed.V < 14*14 && bumped < 8 {
			d.Set = append(d.Set, graph.Edge{U: ed.U, V: ed.V, W: ed.W * 1.5})
			bumped++
		}
	}
	p, err := d.ApplyPatch(g)
	if err != nil {
		t.Fatal(err)
	}
	if p.Structural() {
		t.Fatal("reweight-only delta came back structural")
	}

	loc := localizeFromBase(g, base, p)
	iopts := opts
	iopts.Localize = loc
	res, err := shard.SparsifyIncremental(ctx, p.G, base.Shards.Assign, iopts)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Shards
	if !st.Incremental || !st.StitchLocalized {
		t.Fatalf("Incremental=%v StitchLocalized=%v, want both true", st.Incremental, st.StitchLocalized)
	}
	if st.DirtyClusters < 1 || st.DirtyClusters >= st.Shards {
		t.Fatalf("DirtyClusters = %d with %d shards; delta is confined to one community", st.DirtyClusters, st.Shards)
	}
	// Every clean cluster must be adopted by index (Reused without a
	// cache configured proves the index path ran).
	if want := st.Shards - st.DirtyClusters; st.ClustersReused != want {
		t.Fatalf("ClustersReused = %d, want %d (clean clusters adopted by index)", st.ClustersReused, want)
	}
	if checked := cleanCutCompat(t, p.G, res, loc.BaseSub, p.Touched); checked == 0 {
		t.Fatal("no clean-clean cut edges checked; fixture needs retuning")
	}
	if st.CutAdopted == 0 {
		t.Fatal("CutAdopted = 0: no clean-clean stitch decisions were adopted")
	}
	if !res.Sparsifier.Connected() {
		t.Fatal("localized sparsifier is disconnected")
	}
	// Index adoption means every clean cluster's intra-cluster sparsifier
	// edges match the base exactly — not just the cut seams.
	dirty := make([]bool, st.Shards)
	for _, v := range p.Touched {
		dirty[st.Assign[v]] = true
	}
	for ei, ed := range p.G.Edges {
		cu, cv := st.Assign[ed.U], st.Assign[ed.V]
		if cu != cv || dirty[cu] {
			continue
		}
		if res.InSub[ei] != base.InSub[ei] {
			t.Fatalf("clean intra-cluster edge %d: localized membership %v, base %v", ei, res.InSub[ei], base.InSub[ei])
		}
	}
}

func TestLocalizedStitchStructuralDelta(t *testing.T) {
	g := threeCommunities(14, 11)
	ctx := context.Background()
	opts := shard.Options{Shards: 3, Sparsify: sparsify.Options{Seed: 5}}
	base, err := shard.Sparsify(ctx, g, opts)
	if err != nil {
		t.Fatal(err)
	}

	// Structural delta confined to community 0: remove one interior
	// edge, add a chord. Community 0 is a grid, so removing one interior
	// edge keeps it connected.
	var rm graph.Edge
	for _, ed := range g.Edges {
		if ed.U < 14*14 && ed.V < 14*14 && ed.U > 20 {
			rm = ed
			break
		}
	}
	d := graph.Delta{
		Remove: [][2]int{{rm.U, rm.V}},
		Set:    []graph.Edge{{U: 3, V: 14*14 - 5, W: 0.7}}, // new chord inside community 0
	}
	p, err := d.ApplyPatch(g)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Structural() {
		t.Fatal("remove+add delta came back non-structural")
	}

	loc := localizeFromBase(g, base, p)
	if loc.IndexAligned {
		t.Fatal("structural delta must not promise index alignment")
	}
	iopts := opts
	iopts.Localize = loc
	res, err := shard.SparsifyIncremental(ctx, p.G, base.Shards.Assign, iopts)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Shards
	if !st.Incremental || !st.StitchLocalized {
		t.Fatalf("Incremental=%v StitchLocalized=%v, want both true", st.Incremental, st.StitchLocalized)
	}
	if checked := cleanCutCompat(t, p.G, res, loc.BaseSub, p.Touched); checked == 0 {
		t.Fatal("no clean-clean cut edges checked; fixture needs retuning")
	}
	if !res.Sparsifier.Connected() {
		t.Fatal("localized sparsifier is disconnected after structural delta")
	}
}

func TestLocalizedStitchCutEdgeRemoval(t *testing.T) {
	// Remove a bridge the base stitch retained — the forest must be
	// re-decided and the result stay connected (repair sweep territory).
	g := threeCommunities(14, 11)
	ctx := context.Background()
	opts := shard.Options{Shards: 3, Sparsify: sparsify.Options{Seed: 5}}
	base, err := shard.Sparsify(ctx, g, opts)
	if err != nil {
		t.Fatal(err)
	}
	assign := base.Shards.Assign
	// Find a retained cut edge.
	cut := -1
	for _, ei := range base.EdgeIdx {
		ed := g.Edges[ei]
		if assign[ed.U] != assign[ed.V] {
			cut = ei
			break
		}
	}
	if cut < 0 {
		t.Fatal("base sparsifier retained no cut edges")
	}
	d := graph.Delta{Remove: [][2]int{{g.Edges[cut].U, g.Edges[cut].V}}}
	p, err := d.ApplyPatch(g)
	if err != nil {
		t.Fatal(err)
	}
	loc := localizeFromBase(g, base, p)
	iopts := opts
	iopts.Localize = loc
	res, err := shard.SparsifyIncremental(ctx, p.G, assign, iopts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Shards.StitchLocalized {
		t.Fatal("stitch did not run localized")
	}
	if !res.Sparsifier.Connected() {
		t.Fatal("sparsifier disconnected after removing a retained cut edge")
	}
}

func TestLocalizedStitchCutEdgeReweight(t *testing.T) {
	// Reweighting a cut edge dirties both endpoint clusters; the dirty
	// sweep must re-decide that seam while clean seams stay bit-compatible.
	g := threeCommunities(14, 11)
	ctx := context.Background()
	opts := shard.Options{Shards: 3, Sparsify: sparsify.Options{Seed: 5}}
	base, err := shard.Sparsify(ctx, g, opts)
	if err != nil {
		t.Fatal(err)
	}
	assign := base.Shards.Assign
	cut := -1
	for ei, ed := range g.Edges {
		if assign[ed.U] != assign[ed.V] {
			cut = ei
			break
		}
	}
	if cut < 0 {
		t.Fatal("no cut edges in fixture")
	}
	d := graph.Delta{Set: []graph.Edge{{U: g.Edges[cut].U, V: g.Edges[cut].V, W: g.Edges[cut].W * 3}}}
	p, err := d.ApplyPatch(g)
	if err != nil {
		t.Fatal(err)
	}
	loc := localizeFromBase(g, base, p)
	iopts := opts
	iopts.Localize = loc
	res, err := shard.SparsifyIncremental(ctx, p.G, assign, iopts)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Shards
	if !st.StitchLocalized {
		t.Fatal("stitch did not run localized")
	}
	// Both endpoint clusters are dirty; with 3 shards at most one is clean,
	// so index adoption (still legal: delta is non-structural) covers it.
	if st.DirtyClusters < 2 {
		t.Fatalf("DirtyClusters = %d, want ≥ 2 (cut edge dirties both sides)", st.DirtyClusters)
	}
	if !res.Sparsifier.Connected() {
		t.Fatal("sparsifier disconnected after cut reweight")
	}
	// A tripled-weight cut edge must be in the new sparsifier: it heads
	// the dirty sweep's weight order.
	if !res.InSub[cut] {
		t.Error("reweighted (tripled) cut edge was not retained by the dirty sweep")
	}
}

// TestPlanFromAssignReweightLazy: the lazy reweight-only plan agrees
// with the full PlanFromAssign on everything it materializes — same
// cluster count, vertex lists, edge counts, and cut-edge set — while
// extracting local subgraphs only for dirty clusters.
func TestPlanFromAssignReweightLazy(t *testing.T) {
	g := threeCommunities(14, 11)
	ctx := context.Background()
	base, err := shard.Sparsify(ctx, g, shard.Options{Shards: 3, Sparsify: sparsify.Options{Seed: 5}})
	if err != nil {
		t.Fatal(err)
	}
	assign := base.Shards.Assign
	dirtyVerts := []int{0, 1, 2}

	full, err := shard.PlanFromAssign(g, assign)
	if err != nil {
		t.Fatal(err)
	}
	lazy, err := shard.PlanFromAssignReweight(g, assign, dirtyVerts)
	if err != nil {
		t.Fatal(err)
	}
	if lazy.K != full.K {
		t.Fatalf("lazy K = %d, full K = %d", lazy.K, full.K)
	}
	if len(lazy.CutEdges) != len(full.CutEdges) {
		t.Fatalf("lazy cut %d edges, full cut %d", len(lazy.CutEdges), len(full.CutEdges))
	}
	for i := range full.CutEdges {
		if lazy.CutEdges[i] != full.CutEdges[i] {
			t.Fatalf("cut edge %d: lazy %d, full %d", i, lazy.CutEdges[i], full.CutEdges[i])
		}
	}
	dirty := make([]bool, lazy.K)
	for _, v := range dirtyVerts {
		dirty[assign[v]] = true
	}
	sawClean := false
	for ci := range full.Clusters {
		fc, lc := &full.Clusters[ci], &lazy.Clusters[ci]
		if len(lc.Vertices) != len(fc.Vertices) {
			t.Fatalf("cluster %d: lazy %d vertices, full %d", ci, len(lc.Vertices), len(fc.Vertices))
		}
		if lc.LocalEdges() != fc.Local.M() {
			t.Fatalf("cluster %d: lazy %d edges, full %d", ci, lc.LocalEdges(), fc.Local.M())
		}
		if dirty[ci] {
			if lc.Local == nil {
				t.Fatalf("dirty cluster %d not materialized", ci)
			}
			if lc.Local.M() != fc.Local.M() || lc.Local.N != fc.Local.N {
				t.Fatalf("dirty cluster %d: lazy %d/%d, full %d/%d",
					ci, lc.Local.N, lc.Local.M(), fc.Local.N, fc.Local.M())
			}
		} else {
			sawClean = true
			if lc.Local != nil {
				t.Fatalf("clean cluster %d was materialized", ci)
			}
		}
	}
	if !sawClean {
		t.Fatal("no clean clusters; fixture needs retuning")
	}
}
