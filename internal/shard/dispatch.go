package shard

import (
	"context"
	"fmt"
	"time"

	"repro/internal/sparsify"
)

// ClusterRequest is one cluster's unit of work as Run hands it to a
// Dispatcher: the planned cluster (self-contained local graph plus the
// local→global vertex map), its fingerprint, and the fully resolved
// per-cluster construction options (Workers pinned to 1, the per-cluster
// seed already derived). Everything a worker needs to reproduce the
// cluster's sparsifier bit-for-bit travels in this struct — the request
// is location-independent by design.
type ClusterRequest struct {
	// Index is the cluster's id in the plan (diagnostics only; it does
	// not enter the result).
	Index int
	// Key is the cluster fingerprint (ClusterKey): the placement key for
	// remote dispatch and the cache key on whichever machine builds it.
	Key     string
	Cluster *Cluster
	// Opts is the per-cluster construction configuration. Run derives it
	// from the pipeline options exactly as the in-process path always
	// has: Workers = 1 (parallelism lives at the cluster level), Seed =
	// the per-cluster seed that is part of the fingerprint.
	Opts sparsify.Options
}

// ClusterResult is the index-free outcome of one cluster build: the
// sparsifier edges as global endpoint pairs — the same representation the
// cluster cache stores, valid against any rebuild of the surrounding
// graph — plus the construction phase stats.
type ClusterResult struct {
	Edges [][2]int
	// Weights, when non-nil, carries a per-edge weight override aligned
	// with Edges (0 keeps the original weight). The ER method's
	// importance reweighting travels here; methods that keep original
	// weights leave it nil, which is why the cluster cache and the
	// fabric protocol — both built on the index-free endpoint-pair
	// representation — stay weight-free (Run keeps ER clusters off
	// both paths).
	Weights []float64
	Stats   sparsify.Stats
	// Remote reports the result came from a remote fabric worker rather
	// than an in-process build (including a remote dispatcher's local
	// fallback, which reports false).
	Remote bool
}

// Dispatcher executes cluster builds on behalf of Run. The in-process
// implementation (internal/fabric.Local) wraps BuildCluster; the fleet
// implementation (internal/fabric.Remote) ships the request to a worker
// over HTTP/JSON and degrades to the local path when the fleet cannot
// answer. Implementations must be safe for concurrent use: Run dispatches
// from its bounded worker pool.
type Dispatcher interface {
	Dispatch(ctx context.Context, req *ClusterRequest) (*ClusterResult, error)
}

// Streamed is one cluster outcome as it lands on a DispatchStream
// channel: the originating request plus either its result or the error
// that ended it (after the dispatcher's own retries and fallback).
// Exactly one of Res and Err is set.
type Streamed struct {
	Req *ClusterRequest
	Res *ClusterResult
	Err error
}

// StreamDispatcher is the optional streaming extension of Dispatcher:
// DispatchStream executes every request with at most limit in flight
// (limit ≤ 0 selects the dispatcher's own default) and delivers outcomes
// over the returned channel in completion order — not request order — so
// the consumer can start folding results in while stragglers (and their
// hedges) are still running. The channel is closed after every request
// has produced exactly one Streamed, including when ctx is canceled
// (remaining requests then drain with Err = ctx.Err()); the consumer
// must drain it to completion.
//
// Run uses this interface when the configured Dispatcher implements it,
// overlapping the stitch's cut-forest accumulation with the in-flight
// cluster builds instead of idling at a collection barrier.
type StreamDispatcher interface {
	Dispatcher
	DispatchStream(ctx context.Context, reqs []*ClusterRequest, limit int) <-chan Streamed
}

// OverlapObserver is the optional telemetry seam of a streaming
// dispatcher: after a streamed build, Run reports how much stitch time
// ran overlapped with the in-flight cluster builds (fabric.Remote folds
// it into its fleet stats).
type OverlapObserver interface {
	NoteOverlapSaved(d time.Duration)
}

// BuildCluster executes one cluster request in-process: run the
// configured sparsification algorithm on the cluster's local graph and
// return the surviving edges as global endpoint pairs. It is the body of
// Run's former worker loop, factored out so the local Dispatcher, the
// remote fallback path, and the fabric worker's HTTP handler all execute
// the identical construction.
func BuildCluster(ctx context.Context, req *ClusterRequest) (*ClusterResult, error) {
	cl := req.Cluster
	res, err := sparsify.SparsifyContext(ctx, cl.Local, req.Opts)
	if err != nil {
		return nil, fmt.Errorf("shard: cluster %d (%d vertices): %w", req.Index, cl.Local.N, err)
	}
	pairs := make([][2]int, len(res.EdgeIdx))
	for i, le := range res.EdgeIdx {
		e := cl.Local.Edges[le]
		pairs[i] = [2]int{cl.Vertices[e.U], cl.Vertices[e.V]}
	}
	cres := &ClusterResult{Edges: pairs, Stats: res.Stats}
	if res.Reweight != nil {
		ws := make([]float64, len(res.EdgeIdx))
		for i, le := range res.EdgeIdx {
			ws[i] = res.Reweight[le]
		}
		cres.Weights = ws
	}
	return cres, nil
}
