package shard_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/shard"
	"repro/internal/sparsify"
)

// scrambleStream is an in-process StreamDispatcher that deliberately
// delivers results out of request order (later requests finish first),
// exercising the completion-order drain of the streamed Run path with no
// network in the loop. It also records the overlap telemetry callback.
type scrambleStream struct {
	mu           sync.Mutex
	streamed     int
	overlapCalls int
	fail         error // when set, the last request errors
}

func (s *scrambleStream) Dispatch(ctx context.Context, req *shard.ClusterRequest) (*shard.ClusterResult, error) {
	return shard.BuildCluster(ctx, req)
}

func (s *scrambleStream) DispatchStream(ctx context.Context, reqs []*shard.ClusterRequest, limit int) <-chan shard.Streamed {
	s.mu.Lock()
	s.streamed += len(reqs)
	s.mu.Unlock()
	out := make(chan shard.Streamed, len(reqs))
	var wg sync.WaitGroup
	for i, r := range reqs {
		wg.Add(1)
		go func(i int, r *shard.ClusterRequest) {
			defer wg.Done()
			// Earlier requests straggle so completion order inverts.
			time.Sleep(time.Duration(len(reqs)-i) * 2 * time.Millisecond)
			if s.fail != nil && i == len(reqs)-1 {
				out <- shard.Streamed{Req: r, Err: s.fail}
				return
			}
			res, err := shard.BuildCluster(ctx, r)
			out <- shard.Streamed{Req: r, Res: res, Err: err}
		}(i, r)
	}
	go func() { wg.Wait(); close(out) }()
	return out
}

func (s *scrambleStream) NoteOverlapSaved(d time.Duration) {
	if d < 0 {
		panic("negative overlap")
	}
	s.mu.Lock()
	s.overlapCalls++
	s.mu.Unlock()
}

// TestStreamedRunMatchesPooled: the streamed path must produce the
// bit-identical sparsifier of the pooled in-process path — completion
// order, overlapped stitching, and the dispatcher seam change the
// schedule, never the result.
func TestStreamedRunMatchesPooled(t *testing.T) {
	g := gen.Grid2D(32, 32, 5)
	o := shard.Options{Shards: 3, Sparsify: sparsify.Options{Seed: 9, Workers: 4}}

	pooled, err := shard.Sparsify(context.Background(), g, o)
	if err != nil {
		t.Fatal(err)
	}
	if pooled.Shards.Streamed {
		t.Fatal("pooled run reported itself streamed")
	}

	sd := &scrambleStream{}
	so := o
	so.Dispatcher = sd
	streamed, err := shard.Sparsify(context.Background(), g, so)
	if err != nil {
		t.Fatal(err)
	}
	if !streamed.Shards.Streamed {
		t.Fatal("stream dispatcher configured but the run did not stream")
	}
	if sd.streamed == 0 {
		t.Fatal("no requests went through DispatchStream")
	}
	if sd.overlapCalls != 1 {
		t.Fatalf("overlap telemetry reported %d times, want 1", sd.overlapCalls)
	}
	if len(pooled.EdgeIdx) != len(streamed.EdgeIdx) {
		t.Fatalf("paths disagree on size: %d vs %d", len(pooled.EdgeIdx), len(streamed.EdgeIdx))
	}
	for i := range pooled.EdgeIdx {
		if pooled.EdgeIdx[i] != streamed.EdgeIdx[i] {
			t.Fatalf("paths disagree at edge %d: %d vs %d", i, pooled.EdgeIdx[i], streamed.EdgeIdx[i])
		}
	}
}

// TestStreamedRunPropagatesErrors: a cluster that fails mid-stream must
// fail the build after the stream drains — not hang, not half-stitch.
func TestStreamedRunPropagatesErrors(t *testing.T) {
	g := gen.Grid2D(32, 32, 5)
	boom := errors.New("worker exploded")
	o := shard.Options{Shards: 3, Dispatcher: &scrambleStream{fail: boom}, Sparsify: sparsify.Options{Seed: 9}}
	if _, err := shard.Sparsify(context.Background(), g, o); !errors.Is(err, boom) {
		t.Fatalf("streamed failure surfaced as %v, want the dispatch error", err)
	}
}
