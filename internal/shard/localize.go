package shard

import (
	"context"
	"sort"

	"repro/internal/dsu"
	"repro/internal/graph"
	"repro/internal/sparsify"
)

// Localize carries the base build's state into a delta rebuild so Run
// can restrict work to the dirty neighborhood. Without it the stitch is
// O(cut): every cut edge is re-sorted into a fresh spanning forest and
// the recovery round factorizes the full stitched subgraph — the
// dominant cost of a small delta once clusters hit the cache. With it,
// clean-clean cut edges adopt the base build's stitch decision verbatim
// and only cut edges incident to dirty clusters are re-decided, with
// the recovery round confined to the dirty region
// (sparsify.RecoverOffSubgraphRegion).
type Localize struct {
	// DirtyVertices lists every vertex incident to a delta-modified edge
	// (graph.Patch.Touched). A cluster containing one is dirty; all
	// others are clean and their base state is adopted.
	DirtyVertices []int
	// BaseSub reports whether the undirected edge (u, v) was in the base
	// sparsifier — the stitch decision to adopt on clean-clean cut
	// edges. Must be non-nil; membership by endpoints keeps the contract
	// valid across cluster-id shifts (a structural delta can split dirty
	// clusters, renumbering everything after them).
	BaseSub func(u, v int) bool

	// IndexAligned, set by the caller only for non-structural
	// (reweight-only) deltas, promises that BaseEdgeIdx holds valid
	// indices into the NEW graph identifying the base sparsifier's
	// edges (the core path resolves the base edges by endpoints once,
	// so the promise is robust to edge-order differences between the
	// graph the base was built from and the patched graph) and that
	// BaseKeys (the base ClusterKeys, aligned with cluster ids, which a
	// non-structural delta provably preserves) are current. Then clean
	// clusters adopt their sparsifier edges by index — no fingerprint
	// hashing, no cache lookup, no per-edge EdgeBetween resolution in
	// the worker loop.
	IndexAligned bool
	BaseEdgeIdx  []int
	BaseKeys     []string
}

// dirtyClusters maps DirtyVertices through the plan's assignment.
func (loc *Localize) dirtyClusters(plan *Plan) []bool {
	dirty := make([]bool, plan.K)
	for _, v := range loc.DirtyVertices {
		if v >= 0 && v < len(plan.Assign) {
			dirty[plan.Assign[v]] = true
		}
	}
	return dirty
}

// adoptByIndex precomputes, per clean cluster, the base sparsifier edges
// to adopt verbatim (intra-cluster edges only; cut edges are the
// stitch's business). Returns nil — disabling index adoption, not the
// localized stitch — when the promised alignment does not hold.
func (loc *Localize) adoptByIndex(g *graph.Graph, plan *Plan, dirty []bool) [][]int {
	if !loc.IndexAligned || len(loc.BaseKeys) != plan.K || len(loc.BaseEdgeIdx) == 0 {
		return nil
	}
	adopt := make([][]int, plan.K)
	for _, ei := range loc.BaseEdgeIdx {
		if ei < 0 || ei >= g.M() {
			return nil
		}
		ed := g.Edges[ei]
		cu, cv := plan.Assign[ed.U], plan.Assign[ed.V]
		if cu == cv && !dirty[cu] {
			adopt[cu] = append(adopt[cu], ei)
		}
	}
	return adopt
}

// sortCutByWeight orders cut-edge indices by descending weight with the
// index tie-break — the forest preference shared with the full stitch.
func sortCutByWeight(g *graph.Graph, cut []int) {
	sort.Slice(cut, func(a, b int) bool {
		if g.Edges[cut[a]].W != g.Edges[cut[b]].W {
			return g.Edges[cut[a]].W > g.Edges[cut[b]].W
		}
		return cut[a] < cut[b]
	})
}

// stitchLocalized is the dirty-region stitch:
//
//  1. clean-clean cut edges (neither endpoint cluster dirty) adopt the
//     base build's decision verbatim — the delta cannot have touched
//     them, so the base forest/recovery choice is still the right one;
//  2. cut edges incident to a dirty cluster are re-decided from
//     scratch: max-weight forest sweep over just those edges, then a
//     recovery round confined to the dirty region;
//  3. a repair sweep over all cut edges restores connectivity in the
//     rare case the delta removed a seam the base forest depended on
//     (DSU component count tells us exactly when).
//
// The clean-region result is bit-compatible with a full stitch of the
// base build by construction: membership of every clean-clean cut edge
// equals the base sparsifier's — except for the `repaired` edges the
// connectivity sweep admits, which the caller must treat as an escape
// from the dirty region (a pencil patch restricted to dirty-incident
// edges would miss them).
func stitchLocalized(ctx context.Context, g *graph.Graph, plan *Plan, inSub []bool, dirty []bool, loc *Localize, o sparsify.Options) (retained, recovered, adopted, repaired int, err error) {
	// Two union-find structures with different jobs. forest mirrors the
	// full stitch exactly: a vertex-level forest built from cut edges
	// only, so a long dirty seam keeps roughly one crossing per boundary
	// component — the same retention density the base build got — rather
	// than collapsing to a single bridge. conn additionally pre-unions
	// each cluster's vertices (every cluster sparsifier is internally
	// connected) and is consulted only for the whole-graph connectivity
	// repair below.
	forest := dsu.New(g.N)
	conn := dsu.New(g.N)
	for ci := range plan.Clusters {
		vs := plan.Clusters[ci].Vertices
		for i := 1; i < len(vs); i++ {
			conn.Union(vs[0], vs[i])
		}
	}

	dirtyCut := make([]int, 0, 64)
	for _, e := range plan.CutEdges {
		ed := g.Edges[e]
		if dirty[plan.Assign[ed.U]] || dirty[plan.Assign[ed.V]] {
			dirtyCut = append(dirtyCut, e)
			continue
		}
		if loc.BaseSub(ed.U, ed.V) {
			inSub[e] = true
			forest.Union(ed.U, ed.V)
			conn.Union(ed.U, ed.V)
			adopted++
		}
	}

	// Fresh forest sweep over the dirty cut only, against the adopted
	// clean structure.
	sortCutByWeight(g, dirtyCut)
	remaining := make([]int, 0, len(dirtyCut))
	for _, e := range dirtyCut {
		ed := g.Edges[e]
		if forest.Union(ed.U, ed.V) {
			inSub[e] = true
			conn.Union(ed.U, ed.V)
			retained++
		} else {
			remaining = append(remaining, e)
		}
	}

	// Connectivity repair: the adopted clean structure plus the fresh
	// dirty forest can leave the cluster quotient disconnected when the
	// delta removed an edge the base stitch leaned on and the replacement
	// seam is clean-clean (so neither sweep above considered it). The
	// input graph is connected (checked upstream), so a weight-ordered
	// sweep over all cut edges closes every gap. This is the one case
	// where a clean-clean cut edge can enter without base membership —
	// connectivity outranks bit-compatibility.
	if conn.Count() > 1 {
		all := append([]int(nil), plan.CutEdges...)
		sortCutByWeight(g, all)
		for _, e := range all {
			ed := g.Edges[e]
			if conn.Union(ed.U, ed.V) && !inSub[e] {
				inSub[e] = true
				retained++
				repaired++
			}
		}
	}

	// Recovery round over the remaining dirty cut edges, budgeted like
	// the full stitch but against the dirty pool: the clean boundary
	// already received its α share at base-build time.
	alpha := o.Alpha
	if alpha <= 0 {
		alpha = 0.10
	}
	quota := int(alpha * float64(len(dirtyCut)))
	dirtyCount := 0
	for _, isDirty := range dirty {
		if isDirty {
			dirtyCount++
		}
	}
	if quota < dirtyCount {
		quota = dirtyCount
	}
	if quota < 1 {
		quota = 1
	}
	if len(remaining) <= quota {
		for _, e := range remaining {
			inSub[e] = true
		}
		recovered = len(remaining)
		return retained, recovered, adopted, repaired, nil
	}

	// Region = dirty clusters' vertices plus the clean endpoints of
	// dirty cut edges, so every candidate has both endpoints inside.
	inRegion := make([]bool, g.N)
	var region []int
	for ci, isDirty := range dirty {
		if !isDirty {
			continue
		}
		for _, v := range plan.Clusters[ci].Vertices {
			inRegion[v] = true
			region = append(region, v)
		}
	}
	for _, e := range dirtyCut {
		for _, v := range [2]int{g.Edges[e].U, g.Edges[e].V} {
			if !inRegion[v] {
				inRegion[v] = true
				region = append(region, v)
			}
		}
	}
	recovered, err = sparsify.RecoverOffSubgraphRegion(ctx, g, inSub, region, remaining, quota, o)
	return retained, recovered, adopted, repaired, err
}
