package shard_test

import (
	"context"
	"sync"
	"testing"

	"repro/internal/shard"
	"repro/internal/sparsify"
)

// recordingCache counts cluster-cache traffic so tests can assert which
// build paths consult and populate it.
type recordingCache struct {
	mu   sync.Mutex
	m    map[string][][2]int
	adds int
}

func newRecordingCache() *recordingCache {
	return &recordingCache{m: make(map[string][][2]int)}
}

func (c *recordingCache) GetCluster(key string) ([][2]int, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.m[key]
	return e, ok
}

func (c *recordingCache) AddCluster(key string, edges [][2]int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[key] = edges
	c.adds++
}

func TestShardedERConnectedAndDeterministic(t *testing.T) {
	g := threeCommunities(10, 3)
	opts := func(workers int) shard.Options {
		return shard.Options{
			Shards:   3,
			Sparsify: sparsify.Options{Method: sparsify.ER, Seed: 9, Workers: workers},
		}
	}
	a, err := shard.Sparsify(context.Background(), g, opts(4))
	if err != nil {
		t.Fatal(err)
	}
	if !a.Sparsifier.Connected() {
		t.Fatal("sharded ER sparsifier is disconnected")
	}
	if a.Reweight == nil {
		t.Fatal("sharded ER result carries no reweight vector")
	}
	reweighted := 0
	for e, w := range a.Reweight {
		if w > 0 {
			reweighted++
			if !a.InSub[e] {
				t.Fatalf("edge %d reweighted but not in the sparsifier", e)
			}
		}
	}
	if reweighted == 0 {
		t.Error("no edge carries an importance-sampling weight")
	}
	if got := len(a.EdgeIdx); got != a.Sparsifier.M() {
		t.Fatalf("EdgeIdx %d != sparsifier edges %d", got, a.Sparsifier.M())
	}

	b, err := shard.Sparsify(context.Background(), g, opts(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.EdgeIdx) != len(b.EdgeIdx) {
		t.Fatalf("runs disagree on size: %d vs %d", len(a.EdgeIdx), len(b.EdgeIdx))
	}
	for i := range a.EdgeIdx {
		if a.EdgeIdx[i] != b.EdgeIdx[i] {
			t.Fatalf("runs disagree at edge %d: %d vs %d", i, a.EdgeIdx[i], b.EdgeIdx[i])
		}
	}
	for e := range a.Reweight {
		if a.Reweight[e] != b.Reweight[e] {
			t.Fatalf("reweight %d differs across worker counts: %g vs %g", e, a.Reweight[e], b.Reweight[e])
		}
	}
}

// TestShardedERSkipsClusterCache: the cluster cache's index-free edge
// representation cannot carry ER's per-edge weights, so ER builds must
// neither populate nor consult it — while the default method on the same
// graph exercises both sides, proving the wiring is live.
func TestShardedERSkipsClusterCache(t *testing.T) {
	g := threeCommunities(8, 5)
	ctx := context.Background()

	erCache := newRecordingCache()
	erOpts := shard.Options{
		Shards:   3,
		Cache:    erCache,
		Sparsify: sparsify.Options{Method: sparsify.ER, Seed: 2},
	}
	if _, err := shard.Sparsify(ctx, g, erOpts); err != nil {
		t.Fatal(err)
	}
	if erCache.adds != 0 {
		t.Errorf("ER build stored %d cluster entries, want 0", erCache.adds)
	}
	res, err := shard.Sparsify(ctx, g, erOpts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Shards.ClustersReused != 0 {
		t.Errorf("ER rebuild reused %d clusters, want 0", res.Shards.ClustersReused)
	}

	trCache := newRecordingCache()
	trOpts := shard.Options{
		Shards:   3,
		Cache:    trCache,
		Sparsify: sparsify.Options{Seed: 2},
	}
	if _, err := shard.Sparsify(ctx, g, trOpts); err != nil {
		t.Fatal(err)
	}
	if trCache.adds == 0 {
		t.Fatal("trace build did not populate the cluster cache (wiring dead, ER assertion vacuous)")
	}
	res, err = shard.Sparsify(ctx, g, trOpts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Shards.ClustersReused == 0 {
		t.Error("trace rebuild reused no clusters despite a warm cache")
	}
}
