package lap

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/sparse"
)

// Script is the edit applied by Patch, in terms of the post-delta graph
// g: Reweighted and Added index into g.Edges; Removed lists edges of the
// pre-delta graph that no longer exist (they have no index in g).
type Script struct {
	Reweighted []int
	Added      []int
	Removed    []graph.Edge
}

// Size returns the number of edge edits the script carries.
func (s Script) Size() int { return len(s.Reweighted) + len(s.Added) + len(s.Removed) }

// Patch derives the regularized Laplacian of g by editing base — the
// Laplacian of the pre-delta graph under the same shift — instead of
// reassembling from triplets. Cost is O(k log deg) for k edits plus one
// O(nnz) merge pass only when an added edge needs a new pattern slot.
//
// Removed edges leave stored zeros behind (the pattern only grows);
// zeroDelta reports the net change in stored-zero off-diagonal slots so
// the caller can trigger compaction (CSC.DropZeros) when they pile up.
// Added edges reuse a stored-zero slot when one exists.
//
// Off-diagonal entries are single writes of -w, so they match a cold
// Laplacian(g, shift) bit for bit. Touched diagonals are recomputed from
// g's adjacency in edge order; cold assembly sums the same terms but in
// the (unstable-sort) order Triplet.ToCSC leaves them, so a patched
// diagonal can differ from cold by rounding — one or two ULPs, far below
// anything the solver stack observes. An error means base does not match
// the script (a slot that must exist is missing); callers fall back to
// cold assembly.
func Patch(base *sparse.CSC, g *graph.Graph, shift []float64, sc Script) (patched *sparse.CSC, zeroDelta int, err error) {
	if base.Rows != g.N || base.Cols != g.N {
		return nil, 0, fmt.Errorf("lap: patch base is %dx%d, graph has n=%d", base.Rows, base.Cols, g.N)
	}

	// Pattern growth first: added edges whose off-diagonal slots are not
	// in the base pattern force one merge rebuild; edges that land on a
	// stored-zero slot (a previously removed edge) reuse it in place.
	var grow []sparse.Entry
	for _, idx := range sc.Added {
		e := g.Edges[idx]
		if base.FindEntry(e.U, e.V) < 0 {
			grow = append(grow, sparse.Entry{I: e.U, J: e.V, V: 0}, sparse.Entry{I: e.V, J: e.U, V: 0})
		}
	}
	var out *sparse.CSC
	if len(grow) > 0 {
		out = base.InsertEntries(grow)
	} else {
		out = base.CloneValues()
	}

	set := func(i, j int, v float64) error {
		k := out.FindEntry(i, j)
		if k < 0 {
			return fmt.Errorf("lap: patch expects entry (%d,%d) in base pattern", i, j)
		}
		out.Val[k] = v
		return nil
	}
	for _, idx := range sc.Reweighted {
		e := g.Edges[idx]
		if err := set(e.U, e.V, -e.W); err != nil {
			return nil, 0, err
		}
		if err := set(e.V, e.U, -e.W); err != nil {
			return nil, 0, err
		}
	}
	// Removals before additions: a resurrected edge (removed and re-added
	// in one script) must end at its new weight, not at the removal's 0.
	for _, e := range sc.Removed {
		if err := set(e.U, e.V, 0); err != nil {
			return nil, 0, err
		}
		if err := set(e.V, e.U, 0); err != nil {
			return nil, 0, err
		}
		zeroDelta += 2
	}
	for _, idx := range sc.Added {
		e := g.Edges[idx]
		if base.FindEntry(e.U, e.V) >= 0 {
			zeroDelta -= 2 // reusing a dead slot brings it back to life
		}
		if err := set(e.U, e.V, -e.W); err != nil {
			return nil, 0, err
		}
		if err := set(e.V, e.U, -e.W); err != nil {
			return nil, 0, err
		}
	}

	// Recompute every touched diagonal from scratch in adjacency order.
	// Adjacency lists incident edges in global edge order — the same
	// order triplet assembly sums them — so the result is bit-identical
	// to cold assembly (0 + w₁ ≡ w₁ exactly).
	touched := make(map[int]struct{}, 2*sc.Size())
	mark := func(u, v int) {
		touched[u] = struct{}{}
		touched[v] = struct{}{}
	}
	for _, idx := range sc.Reweighted {
		mark(g.Edges[idx].U, g.Edges[idx].V)
	}
	for _, idx := range sc.Added {
		mark(g.Edges[idx].U, g.Edges[idx].V)
	}
	for _, e := range sc.Removed {
		mark(e.U, e.V)
	}
	for v := range touched {
		d := 0.0
		for p := g.AdjStart[v]; p < g.AdjStart[v+1]; p++ {
			d += g.Edges[g.AdjEdge[p]].W
		}
		if shift != nil && shift[v] != 0 {
			d += shift[v]
		}
		if err := set(v, v, d); err != nil {
			return nil, 0, err
		}
	}
	return out, zeroDelta, nil
}
