// Package lap assembles graph Laplacian matrices and the shared diagonal
// regularization the paper applies so that the pencil (L_G, L_S) is SPD
// with smallest generalized eigenvalue exactly 1 (paper §2 and footnote 1).
package lap

import (
	"repro/internal/graph"
	"repro/internal/sparse"
)

// DefaultShiftRel is the default relative diagonal shift: each vertex gets
// shift = DefaultShiftRel × (average weighted degree) added to its
// Laplacian diagonal. Both L_G and any subgraph Laplacian must use the
// *same* shift vector so the pencil has λmin = 1.
const DefaultShiftRel = 1e-6

// Shift returns the regularization diagonal for g: a constant vector equal
// to rel × mean weighted degree. rel ≤ 0 selects DefaultShiftRel.
func Shift(g *graph.Graph, rel float64) []float64 {
	if rel <= 0 {
		rel = DefaultShiftRel
	}
	var total float64
	for _, e := range g.Edges {
		total += 2 * e.W
	}
	mean := 1.0
	if g.N > 0 {
		mean = total / float64(g.N)
	}
	if mean == 0 {
		mean = 1
	}
	d := make([]float64, g.N)
	s := rel * mean
	for i := range d {
		d[i] = s
	}
	return d
}

// Laplacian assembles L = D − A for graph g with the given extra diagonal
// (may be nil for the exact singular Laplacian).
func Laplacian(g *graph.Graph, extraDiag []float64) *sparse.CSC {
	t := sparse.NewTriplet(g.N, g.N)
	for _, e := range g.Edges {
		t.Add(e.U, e.V, -e.W)
		t.Add(e.V, e.U, -e.W)
		t.Add(e.U, e.U, e.W)
		t.Add(e.V, e.V, e.W)
	}
	if extraDiag != nil {
		for i, v := range extraDiag {
			if v != 0 {
				t.Add(i, i, v)
			}
		}
	}
	// Ensure every diagonal entry exists even for isolated vertices so the
	// matrix stays structurally nonsingular after regularization.
	for i := 0; i < g.N; i++ {
		t.Add(i, i, 0)
	}
	return t.ToCSC()
}

// QuadraticForm returns xᵀ L_g x computed edge-wise:
// Σ w_uv (x_u − x_v)², plus the shift contribution if extraDiag != nil.
// Edge-wise evaluation is numerically friendlier than forming L.
func QuadraticForm(g *graph.Graph, extraDiag, x []float64) float64 {
	var s float64
	for _, e := range g.Edges {
		d := x[e.U] - x[e.V]
		s += e.W * d * d
	}
	if extraDiag != nil {
		for i, v := range extraDiag {
			s += v * x[i] * x[i]
		}
	}
	return s
}
