package lap

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
)

func TestLaplacianSmall(t *testing.T) {
	// Triangle with weights 1, 2, 3.
	g := graph.MustNew(3, []graph.Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 2}, {U: 0, V: 2, W: 3},
	})
	l := Laplacian(g, nil)
	want := [][]float64{{4, -1, -3}, {-1, 3, -2}, {-3, -2, 5}}
	d := l.Dense()
	for i := range want {
		for j := range want[i] {
			if d[i][j] != want[i][j] {
				t.Errorf("L[%d][%d] = %g, want %g", i, j, d[i][j], want[i][j])
			}
		}
	}
}

func TestLaplacianRowSumsAreShift(t *testing.T) {
	g := gen.RandomConnected(20, 30, 1)
	shift := Shift(g, 1e-3)
	l := Laplacian(g, shift)
	d := l.Dense()
	for i := 0; i < g.N; i++ {
		var s float64
		for j := 0; j < g.N; j++ {
			s += d[i][j]
		}
		if math.Abs(s-shift[i]) > 1e-10 {
			t.Errorf("row %d sums to %g, want shift %g", i, s, shift[i])
		}
	}
}

func TestLaplacianSymmetric(t *testing.T) {
	g := gen.RandomConnected(25, 40, 2)
	if !Laplacian(g, Shift(g, 0)).IsSymmetric(0) {
		t.Error("Laplacian not symmetric")
	}
}

func TestQuadraticFormMatchesMatrix(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(20)
		g := gen.RandomConnected(n, n, seed)
		shift := Shift(g, 1e-4)
		l := Laplacian(g, shift)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		y := make([]float64, n)
		l.MulVec(x, y)
		var xLx float64
		for i := range x {
			xLx += x[i] * y[i]
		}
		return math.Abs(xLx-QuadraticForm(g, shift, x)) < 1e-9*(1+math.Abs(xLx))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestQuadraticFormNonnegative(t *testing.T) {
	// PSD-ness probe: xᵀLx ≥ 0 for random x.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(15)
		g := gen.RandomConnected(n, 2*n, seed)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		return QuadraticForm(g, nil, x) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestConstantVectorInKernel(t *testing.T) {
	g := gen.RandomConnected(12, 18, 3)
	ones := make([]float64, g.N)
	for i := range ones {
		ones[i] = 1
	}
	if q := QuadraticForm(g, nil, ones); q != 0 {
		t.Errorf("1ᵀL1 = %g, want 0", q)
	}
}

func TestShiftScalesWithRel(t *testing.T) {
	g := gen.RandomConnected(10, 15, 4)
	s1 := Shift(g, 1e-6)
	s2 := Shift(g, 1e-3)
	if s2[0] <= s1[0] {
		t.Error("larger rel should give larger shift")
	}
	if math.Abs(s2[0]/s1[0]-1000) > 1e-6*1000 {
		t.Errorf("shift ratio %g, want 1000", s2[0]/s1[0])
	}
	// Default when rel ≤ 0.
	d := Shift(g, 0)
	if d[0] != s1[0] {
		t.Errorf("default shift %g, want %g (rel=1e-6)", d[0], s1[0])
	}
}

func TestLaplacianDiagonalAlwaysPresent(t *testing.T) {
	// Even a vertex with tiny degree keeps a structural diagonal entry.
	g := graph.MustNew(3, []graph.Edge{{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}})
	l := Laplacian(g, nil)
	for j := 0; j < 3; j++ {
		found := false
		for k := l.ColPtr[j]; k < l.ColPtr[j+1]; k++ {
			if l.RowIdx[k] == j {
				found = true
			}
		}
		if !found {
			t.Fatalf("diagonal entry (%d,%d) missing from pattern", j, j)
		}
	}
}
