package lap

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func randomGraph(t *testing.T, r *rand.Rand, n, extra int) *graph.Graph {
	t.Helper()
	var edges []graph.Edge
	for i := 1; i < n; i++ {
		edges = append(edges, graph.Edge{U: i - 1, V: i, W: 1 + r.Float64()})
	}
	for k := 0; k < extra; k++ {
		u, v := r.Intn(n), r.Intn(n)
		if u == v {
			continue
		}
		edges = append(edges, graph.Edge{U: u, V: v, W: 1 + r.Float64()})
	}
	g, err := graph.New(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestPatchMatchesCold drives random deltas through
// graph.Delta.ApplyPatch and lap.Patch and asserts the patched
// Laplacian matches the cold-assembled Laplacian of the new graph:
// off-diagonals bit for bit, diagonals to within summation-order
// rounding — the property the streaming pencil path relies on.

// wantClose asserts exact equality off the diagonal (single writes) and
// ≤2-ULP agreement on the diagonal, where cold assembly's unstable
// per-column sort reorders the summation.
func wantClose(t *testing.T, label string, i, j int, got, want float64) {
	t.Helper()
	if i != j {
		if got != want {
			t.Fatalf("%s: entry (%d,%d): patched %v, cold %v", label, i, j, got, want)
		}
		return
	}
	diff := math.Abs(got - want)
	if diff > 4*math.Abs(want)*2.3e-16 {
		t.Fatalf("%s: diag (%d,%d): patched %v, cold %v (diff %g)", label, i, j, got, want, diff)
	}
}

func TestPatchMatchesCold(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		g := randomGraph(t, r, 30, 25)
		shift := Shift(g, 0)
		base := Laplacian(g, shift)

		var d graph.Delta
		seen := make(map[int]bool)
		for k := 0; k < 4; k++ {
			idx := r.Intn(g.M())
			if seen[idx] {
				continue
			}
			seen[idx] = true
			e := g.Edges[idx]
			if r.Float64() < 0.3 {
				d.Remove = append(d.Remove, [2]int{e.U, e.V})
			} else {
				d.Set = append(d.Set, graph.Edge{U: e.U, V: e.V, W: e.W * (0.5 + r.Float64())})
			}
		}
		for k := 0; k < 2; k++ {
			u, v := r.Intn(g.N), r.Intn(g.N)
			if u != v {
				d.Set = append(d.Set, graph.Edge{U: u, V: v, W: 1 + r.Float64()})
			}
		}

		p, err := d.ApplyPatch(g)
		if err != nil {
			t.Fatalf("trial %d: ApplyPatch: %v", trial, err)
		}
		patched, zeroDelta, err := Patch(base, p.G, shift, Script{
			Reweighted: p.Reweighted,
			Added:      p.Added,
			Removed:    p.Removed,
		})
		if err != nil {
			t.Fatalf("trial %d: Patch: %v", trial, err)
		}
		cold := Laplacian(p.G, shift)
		for j := 0; j < g.N; j++ {
			for i := 0; i < g.N; i++ {
				wantClose(t, fmt.Sprintf("trial %d", trial), i, j, patched.At(i, j), cold.At(i, j))
			}
		}
		if zeroDelta < 0 {
			t.Fatalf("trial %d: negative zeroDelta %d without prior stored zeros", trial, zeroDelta)
		}
		// Base must be untouched.
		recold := Laplacian(g, shift)
		for j := 0; j < g.N; j++ {
			for i := 0; i < g.N; i++ {
				if base.At(i, j) != recold.At(i, j) {
					t.Fatalf("trial %d: base mutated at (%d,%d)", trial, i, j)
				}
			}
		}
	}
}

// TestPatchChained applies a chain of deltas, patching the Laplacian at
// every step, and checks both bit-compatibility and the stored-zero
// bookkeeping across the chain — including slot reuse when a removed
// edge comes back.
func TestPatchChained(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	g := randomGraph(t, r, 25, 20)
	shift := Shift(g, 0)
	mat := Laplacian(g, shift)
	zeros := 0
	for step := 0; step < 12; step++ {
		var d graph.Delta
		e := g.Edges[r.Intn(g.M())]
		switch step % 3 {
		case 0:
			d.Set = []graph.Edge{{U: e.U, V: e.V, W: e.W * 1.5}}
		case 1:
			d.Remove = [][2]int{{e.U, e.V}}
		default:
			// Re-add something near a removed slot plus a fresh chord.
			d.Set = []graph.Edge{
				{U: e.U, V: e.V, W: e.W * 2},
				{U: r.Intn(g.N/2) + 1, V: 0, W: 1 + r.Float64()},
			}
		}
		p, err := d.ApplyPatch(g)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		patched, dz, err := Patch(mat, p.G, shift, Script{
			Reweighted: p.Reweighted,
			Added:      p.Added,
			Removed:    p.Removed,
		})
		if err != nil {
			t.Fatalf("step %d: Patch: %v", step, err)
		}
		zeros += dz
		if zeros < 0 {
			t.Fatalf("step %d: zero-slot count went negative (%d)", step, zeros)
		}
		cold := Laplacian(p.G, shift)
		for j := 0; j < g.N; j++ {
			for i := 0; i < g.N; i++ {
				wantClose(t, fmt.Sprintf("step %d", step), i, j, patched.At(i, j), cold.At(i, j))
			}
		}
		// Cross-check the bookkeeping against an actual count.
		actual := 0
		for j := 0; j < patched.Cols; j++ {
			for k := patched.ColPtr[j]; k < patched.ColPtr[j+1]; k++ {
				if patched.Val[k] == 0 && patched.RowIdx[k] != j {
					actual++
				}
			}
		}
		if actual != zeros {
			t.Fatalf("step %d: stored zeros %d, bookkeeping says %d", step, actual, zeros)
		}
		// Compaction must preserve every value and drop the dead slots.
		compact := patched.DropZeros()
		if compact.NNZ() != patched.NNZ()-zeros {
			t.Fatalf("step %d: DropZeros kept %d, want %d", step, compact.NNZ(), patched.NNZ()-zeros)
		}
		for j := 0; j < g.N; j++ {
			for i := 0; i < g.N; i++ {
				if compact.At(i, j) != patched.At(i, j) {
					t.Fatalf("step %d: DropZeros changed (%d,%d)", step, i, j)
				}
			}
		}
		g = p.G
		mat = patched
	}
}

// TestPatchMissingSlot checks the structured failure mode: a script that
// references an entry outside the base pattern must error, not corrupt.
func TestPatchMissingSlot(t *testing.T) {
	g, _ := graph.New(4, []graph.Edge{{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}, {U: 2, V: 3, W: 1}})
	shift := Shift(g, 0)
	base := Laplacian(g, shift)
	// Pretend edge (0,3) was removed — it never existed in base.
	_, _, err := Patch(base, g, shift, Script{Removed: []graph.Edge{{U: 0, V: 3, W: 1}}})
	if err == nil {
		t.Fatal("expected error for slot outside base pattern")
	}
}
