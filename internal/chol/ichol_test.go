package chol

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/lap"
	"repro/internal/sparse"
)

func TestIncompleteMatchesCompleteOnTree(t *testing.T) {
	// A tree Laplacian in leaf-first order has zero fill, so IC(0) equals
	// the exact factorization and solves exactly.
	n := 50
	g := gen.Path(n)
	shift := make([]float64, n)
	for i := range shift {
		shift[i] = 0.1
	}
	a := lap.Laplacian(g, shift)
	f, err := NewIncomplete(a)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = float64(i%5) - 2
	}
	x := f.Solve(b)
	r := make([]float64, n)
	a.MulVec(x, r)
	for i := range r {
		if math.Abs(r[i]-b[i]) > 1e-9 {
			t.Fatalf("residual[%d] = %g (IC(0) should be exact on a path)", i, r[i]-b[i])
		}
	}
}

func TestIncompletePatternPreserved(t *testing.T) {
	g := gen.Grid2D(12, 12, 1)
	a := lap.Laplacian(g, lap.Shift(g, 1e-3))
	f, err := NewIncomplete(a)
	if err != nil {
		t.Fatal(err)
	}
	low := a.Lower()
	if f.NNZ() != low.NNZ() {
		t.Errorf("IC(0) nnz %d ≠ tril(A) nnz %d (zero fill violated)", f.NNZ(), low.NNZ())
	}
}

func TestIncompleteMatchesOnPattern(t *testing.T) {
	// (L Lᵀ) must reproduce A exactly on A's own pattern.
	g := gen.RandomConnected(25, 20, 2)
	a := lap.Laplacian(g, lap.Shift(g, 1e-2))
	f, err := NewIncomplete(a)
	if err != nil {
		t.Fatal(err)
	}
	ld := f.L.Dense()
	n := a.Cols
	prod := make([][]float64, n)
	for i := range prod {
		prod[i] = make([]float64, n)
		for j := 0; j <= i; j++ {
			var s float64
			for k := 0; k <= j; k++ {
				s += ld[i][k] * ld[j][k]
			}
			prod[i][j] = s
		}
	}
	for j := 0; j < n; j++ {
		for k := a.ColPtr[j]; k < a.ColPtr[j+1]; k++ {
			i := a.RowIdx[k]
			if i < j {
				continue
			}
			if math.Abs(prod[i][j]-a.Val[k]) > 1e-9 {
				t.Fatalf("LLᵀ(%d,%d) = %g, A = %g", i, j, prod[i][j], a.Val[k])
			}
		}
	}
}

func TestIncompleteIsApproximateOnGrid(t *testing.T) {
	// On a grid (which has fill), IC(0) is only approximate: solving with
	// it must leave a nonzero residual, but a bounded one.
	g := gen.Grid2D(10, 10, 3)
	a := lap.Laplacian(g, lap.Shift(g, 1e-2))
	f, err := NewIncomplete(a)
	if err != nil {
		t.Fatal(err)
	}
	n := a.Cols
	b := make([]float64, n)
	for i := range b {
		b[i] = 1
	}
	x := f.Solve(b)
	r := make([]float64, n)
	a.MulVec(x, r)
	var res, bn float64
	for i := range r {
		res += (r[i] - b[i]) * (r[i] - b[i])
		bn += b[i] * b[i]
	}
	rel := math.Sqrt(res / bn)
	if rel < 1e-12 {
		t.Error("IC(0) residual suspiciously zero on a grid (fill ignored?)")
	}
	if rel > 1 {
		t.Errorf("IC(0) relative residual %g too large to be useful", rel)
	}
}

func TestIncompleteRejectsIndefinite(t *testing.T) {
	tr := sparse.NewTriplet(2, 2)
	tr.Add(0, 0, 1)
	tr.Add(0, 1, 2)
	tr.Add(1, 0, 2)
	tr.Add(1, 1, 1)
	if _, err := NewIncomplete(tr.ToCSC()); err == nil {
		t.Fatal("indefinite matrix accepted")
	}
}

func TestIncompleteMissingDiagonalRejected(t *testing.T) {
	tr := sparse.NewTriplet(2, 2)
	tr.Add(0, 0, 1)
	tr.Add(1, 0, -0.5)
	tr.Add(0, 1, -0.5)
	// (1,1) structurally absent.
	if _, err := NewIncomplete(tr.ToCSC()); err == nil {
		t.Fatal("missing diagonal accepted")
	}
}
