// Package chol implements sparse Cholesky factorization P A Pᵀ = L Lᵀ for
// symmetric positive definite matrices, in the up-looking style of CSparse:
// elimination tree, per-row pattern via tree reach, and triangular solves.
// It is the workhorse behind the direct solver baseline (the paper uses
// CHOLMOD), the PCG preconditioner application, and the input to the
// sparse-approximate-inverse construction of Algorithm 1.
package chol

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/order"
	"repro/internal/sparse"
)

// ErrNotPD is returned when a nonpositive pivot is encountered.
var ErrNotPD = errors.New("chol: matrix is not positive definite")

// Factor is a sparse Cholesky factorization of a permuted matrix:
// A[Perm[i], Perm[j]] = (L Lᵀ)[i, j].
type Factor struct {
	N    int
	L    *sparse.CSC // lower triangular, diagonal first in each column
	Perm []int       // perm[newIdx] = oldIdx
	inv  []int       // inv[oldIdx] = newIdx
}

// EliminationTree computes the elimination tree of the symmetric matrix a
// (full storage). parent[j] is j's parent, or -1 for roots.
func EliminationTree(a *sparse.CSC) []int {
	n := a.Cols
	parent := make([]int, n)
	ancestor := make([]int, n)
	for k := 0; k < n; k++ {
		parent[k] = -1
		ancestor[k] = -1
		for p := a.ColPtr[k]; p < a.ColPtr[k+1]; p++ {
			i := a.RowIdx[p]
			for i != -1 && i < k {
				next := ancestor[i]
				ancestor[i] = k
				if next == -1 {
					parent[i] = k
				}
				i = next
			}
		}
	}
	return parent
}

// ereach computes the nonzero pattern of row k of L: the set of columns
// j < k with L[k,j] ≠ 0, in topological (ascending) order suitable for the
// up-looking triangular solve. It returns the start index into s; the
// pattern occupies s[top:n]. w is a workspace of flags (≥0 marked with k).
func ereach(a *sparse.CSC, k int, parent []int, s, w []int) int {
	n := a.Cols
	top := n
	w[k] = k
	for p := a.ColPtr[k]; p < a.ColPtr[k+1]; p++ {
		i := a.RowIdx[p]
		if i >= k {
			continue
		}
		// Walk up the etree from i until hitting a marked vertex.
		length := 0
		for ; w[i] != k; i = parent[i] {
			s[length] = i
			length++
			w[i] = k
		}
		// Push path onto the output stack (reversed → topological).
		for length > 0 {
			length--
			top--
			s[top+0] = s[length]
		}
	}
	return top
}

// Options configures New.
type Options struct {
	// Ordering method; order.Auto by default.
	Ordering order.Method
	// Perm overrides the computed ordering when non-nil.
	Perm []int
}

// cscAdapter exposes a symmetric CSC matrix's off-diagonal structure as an
// ordering adjacency.
type cscAdapter struct{ a *sparse.CSC }

func (c cscAdapter) Len() int { return c.a.Cols }
func (c cscAdapter) Visit(u int, fn func(v int)) {
	for p := c.a.ColPtr[u]; p < c.a.ColPtr[u+1]; p++ {
		if v := c.a.RowIdx[p]; v != u {
			fn(v)
		}
	}
}

// New factorizes the SPD matrix a (full symmetric storage) with the chosen
// fill-reducing ordering.
func New(a *sparse.CSC, opts Options) (*Factor, error) {
	n := a.Cols
	if a.Rows != n {
		return nil, fmt.Errorf("chol: matrix must be square, got %dx%d", a.Rows, n)
	}
	perm := opts.Perm
	if perm == nil {
		perm = order.Compute(cscAdapter{a}, opts.Ordering)
	}
	if !order.Validate(perm, n) {
		return nil, fmt.Errorf("chol: invalid permutation (length %d for n=%d)", len(perm), n)
	}
	c := a.PermuteSym(perm)
	parent := EliminationTree(c)

	// Pass 1: count nonzeros per column of L using ereach.
	colCount := make([]int, n)
	s := make([]int, n)
	w := make([]int, n)
	for i := range w {
		w[i] = -1
	}
	for k := 0; k < n; k++ {
		colCount[k]++ // diagonal
		top := ereach(c, k, parent, s, w)
		for t := top; t < n; t++ {
			colCount[s[t]]++
		}
	}
	l := &sparse.CSC{Rows: n, Cols: n, ColPtr: make([]int, n+1)}
	for j := 0; j < n; j++ {
		l.ColPtr[j+1] = l.ColPtr[j] + colCount[j]
	}
	nnz := l.ColPtr[n]
	l.RowIdx = make([]int, nnz)
	l.Val = make([]float64, nnz)

	// Pass 2: numeric up-looking factorization.
	// next[j] = next free slot in column j (diagonal reserved at ColPtr[j]).
	next := make([]int, n)
	for j := 0; j < n; j++ {
		next[j] = l.ColPtr[j] + 1
		l.RowIdx[l.ColPtr[j]] = j // diagonal placeholder
	}
	for i := range w {
		w[i] = -1
	}
	x := make([]float64, n)
	for k := 0; k < n; k++ {
		// Scatter column k of C (upper part, rows ≤ k) into x.
		top := ereach(c, k, parent, s, w)
		var d float64
		for p := c.ColPtr[k]; p < c.ColPtr[k+1]; p++ {
			i := c.RowIdx[p]
			if i < k {
				x[i] = c.Val[p]
			} else if i == k {
				d = c.Val[p]
			}
		}
		// Up-looking sparse triangular solve along the pattern.
		for t := top; t < n; t++ {
			j := s[t]
			lkj := x[j] / l.Val[l.ColPtr[j]]
			x[j] = 0
			for p := l.ColPtr[j] + 1; p < next[j]; p++ {
				x[l.RowIdx[p]] -= l.Val[p] * lkj
			}
			d -= lkj * lkj
			p := next[j]
			next[j]++
			l.RowIdx[p] = k
			l.Val[p] = lkj
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, fmt.Errorf("%w (pivot %d, value %g)", ErrNotPD, k, d)
		}
		l.Val[l.ColPtr[k]] = math.Sqrt(d)
	}

	f := &Factor{N: n, L: l, Perm: perm, inv: make([]int, n)}
	for newIdx, oldIdx := range perm {
		f.inv[oldIdx] = newIdx
	}
	return f, nil
}

// NNZ returns the number of stored entries of L (the fill-in measure used
// for the memory columns of Tables 2 and 3).
func (f *Factor) NNZ() int { return f.L.NNZ() }

// MemBytes estimates factor storage: 12 bytes per entry (8-byte value +
// 4-byte row index) plus column pointers.
func (f *Factor) MemBytes() int64 {
	return int64(f.L.NNZ())*12 + int64(f.N+1)*8
}

// Solve solves A x = b in the original ordering, overwriting nothing;
// x is returned as a fresh slice.
func (f *Factor) Solve(b []float64) []float64 {
	x := make([]float64, f.N)
	f.SolveTo(x, b)
	return x
}

// SolveTo solves A x = b into x (len N). b and x may alias.
func (f *Factor) SolveTo(x, b []float64) {
	n := f.N
	y := make([]float64, n)
	for newIdx, oldIdx := range f.Perm {
		y[newIdx] = b[oldIdx]
	}
	f.LSolve(y)
	f.LTSolve(y)
	for newIdx, oldIdx := range f.Perm {
		x[oldIdx] = y[newIdx]
	}
}

// SolveToNoAlloc is SolveTo with a caller-provided permuted workspace y.
func (f *Factor) SolveToNoAlloc(x, b, y []float64) {
	for newIdx, oldIdx := range f.Perm {
		y[newIdx] = b[oldIdx]
	}
	f.LSolve(y)
	f.LTSolve(y)
	for newIdx, oldIdx := range f.Perm {
		x[oldIdx] = y[newIdx]
	}
}

// SolvePanelNoAlloc solves A X = B for an interleaved n×s panel: entry
// (i, k) of the panel lives at index i*s+k, so one pass over each column
// of L serves all s right-hand sides. x and b are n·s slices in the
// original ordering (they may alias); y is a caller-provided n·s permuted
// workspace. Per panel column the floating-point operations run in
// exactly the order SolveToNoAlloc would run them, so a panel solve is
// bit-identical to s scalar solves.
func (f *Factor) SolvePanelNoAlloc(x, b, y []float64, s int) {
	if s == 1 {
		f.SolveToNoAlloc(x, b, y)
		return
	}
	if s == 8 {
		f.solvePanel8(x, b, y)
		return
	}
	l := f.L
	// Explicit lane loops instead of copy(): the per-row segments are a
	// handful of floats, where the memmove call overhead costs more than
	// the move itself.
	for newIdx, oldIdx := range f.Perm {
		dst, src := y[newIdx*s:newIdx*s+s], b[oldIdx*s:oldIdx*s+s]
		_ = src[len(dst)-1]
		for k := range dst {
			dst[k] = src[k]
		}
	}
	for j := 0; j < f.N; j++ {
		p := l.ColPtr[j]
		d := l.Val[p]
		yj := y[j*s : j*s+s]
		for k := range yj {
			yj[k] /= d
		}
		for p++; p < l.ColPtr[j+1]; p++ {
			v := l.Val[p]
			ri := l.RowIdx[p] * s
			row := y[ri : ri+s]
			_ = yj[len(row)-1]
			for k := range row {
				row[k] -= v * yj[k]
			}
		}
	}
	for j := f.N - 1; j >= 0; j-- {
		p := l.ColPtr[j]
		yj := y[j*s : j*s+s]
		for q := p + 1; q < l.ColPtr[j+1]; q++ {
			v := l.Val[q]
			ri := l.RowIdx[q] * s
			row := y[ri : ri+s]
			_ = yj[len(row)-1]
			for k := range row {
				yj[k] -= v * row[k]
			}
		}
		d := l.Val[p]
		for k := range yj {
			yj[k] /= d
		}
	}
	for newIdx, oldIdx := range f.Perm {
		dst, src := x[oldIdx*s:oldIdx*s+s], y[newIdx*s:newIdx*s+s]
		_ = src[len(dst)-1]
		for k := range dst {
			dst[k] = src[k]
		}
	}
}

// solvePanel8 is SolvePanelNoAlloc specialized to panel width 8 — the
// width the batched solve path feeds it. The per-column lane vector is
// held in eight locals so each factor entry costs eight fused
// multiply-adds with no reloads of the pivot column, and the fixed-size
// array views remove every bounds check. The floating-point operations
// per lane run in exactly the generic order, so the specialization stays
// bit-identical to eight scalar solves.
func (f *Factor) solvePanel8(x, b, y []float64) {
	const s = 8
	l := f.L
	for newIdx, oldIdx := range f.Perm {
		*(*[s]float64)(y[newIdx*s:]) = *(*[s]float64)(b[oldIdx*s:])
	}
	for j := 0; j < f.N; j++ {
		p := l.ColPtr[j]
		d := l.Val[p]
		yj := (*[s]float64)(y[j*s:])
		y0 := yj[0] / d
		y1 := yj[1] / d
		y2 := yj[2] / d
		y3 := yj[3] / d
		y4 := yj[4] / d
		y5 := yj[5] / d
		y6 := yj[6] / d
		y7 := yj[7] / d
		yj[0], yj[1], yj[2], yj[3] = y0, y1, y2, y3
		yj[4], yj[5], yj[6], yj[7] = y4, y5, y6, y7
		for p++; p < l.ColPtr[j+1]; p++ {
			v := l.Val[p]
			row := (*[s]float64)(y[l.RowIdx[p]*s:])
			row[0] -= v * y0
			row[1] -= v * y1
			row[2] -= v * y2
			row[3] -= v * y3
			row[4] -= v * y4
			row[5] -= v * y5
			row[6] -= v * y6
			row[7] -= v * y7
		}
	}
	for j := f.N - 1; j >= 0; j-- {
		p := l.ColPtr[j]
		yj := (*[s]float64)(y[j*s:])
		y0, y1, y2, y3 := yj[0], yj[1], yj[2], yj[3]
		y4, y5, y6, y7 := yj[4], yj[5], yj[6], yj[7]
		for q := p + 1; q < l.ColPtr[j+1]; q++ {
			v := l.Val[q]
			row := (*[s]float64)(y[l.RowIdx[q]*s:])
			y0 -= v * row[0]
			y1 -= v * row[1]
			y2 -= v * row[2]
			y3 -= v * row[3]
			y4 -= v * row[4]
			y5 -= v * row[5]
			y6 -= v * row[6]
			y7 -= v * row[7]
		}
		d := l.Val[p]
		yj[0], yj[1], yj[2], yj[3] = y0/d, y1/d, y2/d, y3/d
		yj[4], yj[5], yj[6], yj[7] = y4/d, y5/d, y6/d, y7/d
	}
	for newIdx, oldIdx := range f.Perm {
		*(*[s]float64)(x[oldIdx*s:]) = *(*[s]float64)(y[newIdx*s:])
	}
}

// LSolve solves L y = y in place (permuted ordering).
func (f *Factor) LSolve(y []float64) {
	l := f.L
	for j := 0; j < f.N; j++ {
		p := l.ColPtr[j]
		yj := y[j] / l.Val[p]
		y[j] = yj
		for p++; p < l.ColPtr[j+1]; p++ {
			y[l.RowIdx[p]] -= l.Val[p] * yj
		}
	}
}

// LTSolve solves Lᵀ y = y in place (permuted ordering).
func (f *Factor) LTSolve(y []float64) {
	l := f.L
	for j := f.N - 1; j >= 0; j-- {
		p := l.ColPtr[j]
		s := y[j]
		for q := p + 1; q < l.ColPtr[j+1]; q++ {
			s -= l.Val[q] * y[l.RowIdx[q]]
		}
		y[j] = s / l.Val[p]
	}
}

// PermutedIndex maps an original vertex index to its position in the
// factor's elimination order.
func (f *Factor) PermutedIndex(oldIdx int) int { return f.inv[oldIdx] }

// OriginalIndex maps an elimination-order position back to the original
// vertex index.
func (f *Factor) OriginalIndex(newIdx int) int { return f.Perm[newIdx] }
