package chol

import (
	"fmt"
	"math"

	"repro/internal/sparse"
)

// NewIncomplete computes the zero-fill incomplete Cholesky factorization
// IC(0): a lower-triangular L with the sparsity pattern of tril(A) such
// that (L Lᵀ)|pattern = A|pattern. For the SDD M-matrices this project
// works with, IC(0) is known to exist (Meijerink–van der Vorst); a
// nonpositive pivot on other inputs returns ErrNotPD.
//
// IC(0) is the classic cheap preconditioner the sparsifier approach
// competes with: it reuses A's pattern (no fill to store), but its
// condition-number improvement on mesh Laplacians is a constant factor,
// whereas the sparsifier preconditioner caps PCG iterations at a level set
// by κ(L_G, L_P). BenchmarkPreconditioners quantifies the gap.
//
// The ordering is natural (IC quality is ordering-insensitive compared to
// complete factorizations, and keeping A's pattern is the point).
func NewIncomplete(a *sparse.CSC) (*Factor, error) {
	n := a.Cols
	if a.Rows != n {
		return nil, fmt.Errorf("chol: matrix must be square, got %dx%d", a.Rows, n)
	}
	low := a.Lower()
	l := &sparse.CSC{
		Rows:   n,
		Cols:   n,
		ColPtr: append([]int(nil), low.ColPtr...),
		RowIdx: append([]int(nil), low.RowIdx...),
		Val:    make([]float64, low.NNZ()),
	}

	// rowHead[i] holds the entries L[i][k] produced so far as parallel
	// slices sorted by k (columns are processed in order).
	rowCols := make([][]int32, n)
	rowVals := make([][]float64, n)

	dotRows := func(i, j int) float64 {
		ci, vi := rowCols[i], rowVals[i]
		cj, vj := rowCols[j], rowVals[j]
		var s float64
		for x, y := 0, 0; x < len(ci) && y < len(cj); {
			switch {
			case ci[x] < cj[y]:
				x++
			case ci[x] > cj[y]:
				y++
			default:
				s += vi[x] * vj[y]
				x++
				y++
			}
		}
		return s
	}

	for j := 0; j < n; j++ {
		p0 := l.ColPtr[j]
		if p0 >= l.ColPtr[j+1] || l.RowIdx[p0] != j {
			return nil, fmt.Errorf("chol: IC(0) requires a structurally present diagonal at %d", j)
		}
		d := low.Val[p0] - dotRows(j, j)
		if d <= 0 || math.IsNaN(d) {
			return nil, fmt.Errorf("%w (IC(0) pivot %d, value %g)", ErrNotPD, j, d)
		}
		d = math.Sqrt(d)
		l.Val[p0] = d
		rowCols[j] = append(rowCols[j], int32(j))
		rowVals[j] = append(rowVals[j], d)
		for p := p0 + 1; p < l.ColPtr[j+1]; p++ {
			i := l.RowIdx[p]
			v := (low.Val[p] - dotRows(i, j)) / d
			l.Val[p] = v
			rowCols[i] = append(rowCols[i], int32(j))
			rowVals[i] = append(rowVals[i], v)
		}
	}

	perm := make([]int, n)
	inv := make([]int, n)
	for i := range perm {
		perm[i] = i
		inv[i] = i
	}
	return &Factor{N: n, L: l, Perm: perm, inv: inv}, nil
}
