package chol

import (
	"fmt"
	"math"

	"repro/internal/order"
	"repro/internal/sparse"
)

// FromParts reassembles a Factor from its serialized components: the
// lower-triangular factor L (diagonal first in each column, as New lays
// it out) and the fill-reducing permutation. It is the receiving side of
// the fabric's remote factor builds, so it validates everything a
// malformed or corrupted payload could get wrong before the factor is
// allowed anywhere near a solve:
//
//   - L must be square of dimension n with exactly n+1 column pointers,
//     monotonically nondecreasing, and aligned row/value storage;
//   - every column must lead with its diagonal entry, and every diagonal
//     must be positive and finite — the SPD witness: L L^T with such an L
//     is positive definite by construction, so a factor passing this
//     check is a valid (if possibly wrong-valued) SPD preconditioner
//     block, never a NaN source or a singular solve;
//   - off-diagonal entries must be finite and strictly below the
//     diagonal (lower triangular);
//   - perm must be a permutation of 0..n-1.
//
// The inverse permutation is recomputed locally rather than trusted from
// the wire.
func FromParts(n int, l *sparse.CSC, perm []int) (*Factor, error) {
	if n < 1 {
		return nil, fmt.Errorf("chol: factor dimension %d", n)
	}
	if l == nil || l.Rows != n || l.Cols != n {
		return nil, fmt.Errorf("chol: factor L is not %d×%d", n, n)
	}
	if len(l.ColPtr) != n+1 || l.ColPtr[0] != 0 {
		return nil, fmt.Errorf("chol: factor L has malformed column pointers")
	}
	nnz := l.ColPtr[n]
	if len(l.RowIdx) != nnz || len(l.Val) != nnz {
		return nil, fmt.Errorf("chol: factor L storage misaligned (%d pointers vs %d/%d entries)",
			nnz, len(l.RowIdx), len(l.Val))
	}
	for j := 0; j < n; j++ {
		lo, hi := l.ColPtr[j], l.ColPtr[j+1]
		if hi < lo || hi > nnz {
			return nil, fmt.Errorf("chol: factor L column %d has decreasing pointers", j)
		}
		if hi == lo || l.RowIdx[lo] != j {
			return nil, fmt.Errorf("chol: factor L column %d does not lead with its diagonal", j)
		}
		d := l.Val[lo]
		if !(d > 0) || math.IsInf(d, 0) {
			return nil, fmt.Errorf("chol: factor L has nonpositive or non-finite diagonal %g at %d", d, j)
		}
		for p := lo + 1; p < hi; p++ {
			i := l.RowIdx[p]
			if i <= j || i >= n {
				return nil, fmt.Errorf("chol: factor L entry (%d,%d) outside the strict lower triangle", i, j)
			}
			if math.IsInf(l.Val[p], 0) || math.IsNaN(l.Val[p]) {
				return nil, fmt.Errorf("chol: factor L has non-finite entry at (%d,%d)", i, j)
			}
		}
	}
	if !order.Validate(perm, n) {
		return nil, fmt.Errorf("chol: invalid permutation (length %d for n=%d)", len(perm), n)
	}
	f := &Factor{N: n, L: l, Perm: perm, inv: make([]int, n)}
	for newIdx, oldIdx := range perm {
		f.inv[oldIdx] = newIdx
	}
	return f, nil
}
