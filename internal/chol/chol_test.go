package chol

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dense"
	"repro/internal/gen"
	"repro/internal/lap"
	"repro/internal/order"
	"repro/internal/sparse"
)

// laplacianPlusEps builds a small SPD test matrix from a random connected
// graph Laplacian with a diagonal shift.
func laplacianPlusEps(n, extra int, seed int64) *sparse.CSC {
	g := gen.RandomConnected(n, extra, seed)
	shift := make([]float64, n)
	for i := range shift {
		shift[i] = 0.05
	}
	return lap.Laplacian(g, shift)
}

func reconstructError(a *sparse.CSC, f *Factor) float64 {
	n := a.Cols
	// Compare P A Pᵀ with L Lᵀ densely.
	c := a.PermuteSym(f.Perm).Dense()
	l := f.L.Dense()
	var maxd float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for k := 0; k <= i && k <= j; k++ {
				s += l[i][k] * l[j][k]
			}
			if d := math.Abs(s - c[i][j]); d > maxd {
				maxd = d
			}
		}
	}
	return maxd
}

func TestFactorReconstructsSmall(t *testing.T) {
	for _, m := range []order.Method{order.Natural, order.RCM, order.MinDegree, order.NestedDissection} {
		a := laplacianPlusEps(12, 8, 42)
		f, err := New(a, Options{Ordering: m})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if e := reconstructError(a, f); e > 1e-10 {
			t.Errorf("%v: ‖LLᵀ − PAPᵀ‖∞ = %g", m, e)
		}
	}
}

func TestSolveMatchesDense(t *testing.T) {
	a := laplacianPlusEps(15, 10, 7)
	f, err := New(a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	b := make([]float64, 15)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	got := f.Solve(b)
	want, err := dense.SolveSPD(dense.FromRows(a.Dense()), b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-8 {
			t.Errorf("x[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestSolveResidual(t *testing.T) {
	a := laplacianPlusEps(200, 150, 11)
	f, err := New(a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	b := make([]float64, 200)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x := f.Solve(b)
	r := make([]float64, 200)
	a.MulVec(x, r)
	var res, bn float64
	for i := range r {
		res += (r[i] - b[i]) * (r[i] - b[i])
		bn += b[i] * b[i]
	}
	if math.Sqrt(res/bn) > 1e-10 {
		t.Errorf("relative residual %g too large", math.Sqrt(res/bn))
	}
}

func TestSolveToNoAllocMatchesSolve(t *testing.T) {
	a := laplacianPlusEps(30, 20, 13)
	f, err := New(a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, 30)
	for i := range b {
		b[i] = float64(i%7) - 3
	}
	want := f.Solve(b)
	got := make([]float64, 30)
	y := make([]float64, 30)
	f.SolveToNoAlloc(got, b, y)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("mismatch at %d", i)
		}
	}
}

func TestNotPositiveDefinite(t *testing.T) {
	// A pure (unshifted) Laplacian is singular → factorization must fail.
	g := gen.Path(5)
	a := lap.Laplacian(g, nil)
	if _, err := New(a, Options{Ordering: order.Natural}); err == nil {
		t.Fatal("expected ErrNotPD on singular Laplacian")
	}
}

func TestEliminationTreePath(t *testing.T) {
	// Tridiagonal matrix in natural order: etree is the path i → i+1.
	a := laplacianPlusEpsPath(6)
	parent := EliminationTree(a)
	for i := 0; i < 5; i++ {
		if parent[i] != i+1 {
			t.Errorf("parent[%d] = %d, want %d", i, parent[i], i+1)
		}
	}
	if parent[5] != -1 {
		t.Errorf("root parent = %d, want -1", parent[5])
	}
}

func laplacianPlusEpsPath(n int) *sparse.CSC {
	g := gen.Path(n)
	shift := make([]float64, n)
	for i := range shift {
		shift[i] = 0.1
	}
	return lap.Laplacian(g, shift)
}

func TestTreeOrderedPathHasZeroFill(t *testing.T) {
	// A path factored in natural order is bidiagonal: nnz(L) = 2n−1.
	n := 100
	a := laplacianPlusEpsPath(n)
	f, err := New(a, Options{Ordering: order.Natural})
	if err != nil {
		t.Fatal(err)
	}
	if f.NNZ() != 2*n-1 {
		t.Errorf("path fill: nnz = %d, want %d", f.NNZ(), 2*n-1)
	}
}

func TestMinDegreeBeatsNaturalFillOnGrid(t *testing.T) {
	g := gen.Grid2D(20, 20, 1)
	shift := make([]float64, g.N)
	for i := range shift {
		shift[i] = 0.05
	}
	a := lap.Laplacian(g, shift)
	fn, err := New(a, Options{Ordering: order.Natural})
	if err != nil {
		t.Fatal(err)
	}
	fm, err := New(a, Options{Ordering: order.MinDegree})
	if err != nil {
		t.Fatal(err)
	}
	if fm.NNZ() >= fn.NNZ() {
		t.Errorf("min degree fill %d not better than natural %d", fm.NNZ(), fn.NNZ())
	}
}

func TestPermutedIndexRoundTrip(t *testing.T) {
	a := laplacianPlusEps(25, 10, 17)
	f, err := New(a, Options{Ordering: order.MinDegree})
	if err != nil {
		t.Fatal(err)
	}
	for old := 0; old < 25; old++ {
		if f.OriginalIndex(f.PermutedIndex(old)) != old {
			t.Fatalf("perm/inv mismatch at %d", old)
		}
	}
}

func TestFactorDiagonalFirstInColumns(t *testing.T) {
	a := laplacianPlusEps(40, 30, 19)
	f, err := New(a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	l := f.L
	for j := 0; j < f.N; j++ {
		if l.RowIdx[l.ColPtr[j]] != j {
			t.Fatalf("column %d does not start with its diagonal", j)
		}
		if l.Val[l.ColPtr[j]] <= 0 {
			t.Fatalf("nonpositive diagonal at column %d", j)
		}
	}
}

func TestMMatrixFactorSigns(t *testing.T) {
	// Proposition 1: for SDD Laplacian-like matrices, L has positive
	// diagonal and nonpositive off-diagonals.
	a := laplacianPlusEps(30, 25, 23)
	f, err := New(a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	l := f.L
	for j := 0; j < f.N; j++ {
		for p := l.ColPtr[j] + 1; p < l.ColPtr[j+1]; p++ {
			if l.Val[p] > 1e-12 {
				t.Fatalf("positive off-diagonal L[%d,%d] = %g", l.RowIdx[p], j, l.Val[p])
			}
		}
	}
}

func TestSolveRandomSPDQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(25)
		a := laplacianPlusEps(n, rng.Intn(3*n), seed)
		fac, err := New(a, Options{})
		if err != nil {
			return false
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		b := make([]float64, n)
		a.MulVec(x, b)
		got := fac.Solve(b)
		for i := range x {
			if math.Abs(got[i]-x[i]) > 1e-6*(1+math.Abs(x[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestRejectsNonSquare(t *testing.T) {
	a := &sparse.CSC{Rows: 2, Cols: 3, ColPtr: []int{0, 0, 0, 0}}
	if _, err := New(a, Options{}); err == nil {
		t.Fatal("expected error for non-square matrix")
	}
}

func TestExplicitPermOption(t *testing.T) {
	a := laplacianPlusEps(10, 5, 29)
	perm := []int{9, 8, 7, 6, 5, 4, 3, 2, 1, 0}
	f, err := New(a, Options{Perm: perm})
	if err != nil {
		t.Fatal(err)
	}
	if e := reconstructError(a, f); e > 1e-10 {
		t.Errorf("explicit perm reconstruct error %g", e)
	}
	if _, err := New(a, Options{Perm: []int{0, 0}}); err == nil {
		t.Error("invalid explicit perm accepted")
	}
}

func TestGraphLaplacianPSDProperty(t *testing.T) {
	// Factorization of L + εI should succeed for any connected graph
	// (SPD by construction) — exercised across random graphs.
	f := func(seed int64) bool {
		n := 3 + int(seed%31+31)%31
		a := laplacianPlusEps(n, n, seed)
		_, err := New(a, Options{})
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSolvePanelBitIdenticalToScalar(t *testing.T) {
	const n, s = 40, 5
	a := laplacianPlusEps(n, 60, 7)
	f, err := New(a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	b := make([]float64, n*s)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x := make([]float64, n*s)
	y := make([]float64, n*s)
	f.SolvePanelNoAlloc(x, b, y, s)

	bk := make([]float64, n)
	xk := make([]float64, n)
	yk := make([]float64, n)
	for k := 0; k < s; k++ {
		for i := 0; i < n; i++ {
			bk[i] = b[i*s+k]
		}
		f.SolveToNoAlloc(xk, bk, yk)
		for i := 0; i < n; i++ {
			if x[i*s+k] != xk[i] {
				t.Fatalf("panel column %d differs from scalar solve at row %d: %g vs %g",
					k, i, x[i*s+k], xk[i])
			}
		}
	}
}
