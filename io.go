package trsparse

import (
	"fmt"
	"io"

	"repro/internal/graph"
	"repro/internal/sparse"
)

// ReadMatrixMarketGraph loads a graph from a Matrix Market file, accepting
// either form the SuiteSparse collection uses for the paper's test cases:
//
//   - an SDD matrix (Laplacian-like, negative off-diagonals): each strictly
//     negative off-diagonal entry a_ij becomes an edge of weight −a_ij;
//   - an adjacency/weights matrix (positive off-diagonals): each positive
//     off-diagonal entry becomes an edge with that weight.
//
// Mixed-sign off-diagonals are rejected. This is the bridge for running the
// benchmark harness on the real ecology2/thermal2/… matrices when they are
// available locally.
func ReadMatrixMarketGraph(r io.Reader) (*Graph, error) {
	a, err := sparse.ReadMatrixMarket(r)
	if err != nil {
		return nil, err
	}
	return GraphFromMatrix(a)
}

// GraphFromMatrix converts a square sparse matrix to a weighted graph per
// the rules of ReadMatrixMarketGraph.
func GraphFromMatrix(a *sparse.CSC) (*Graph, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("trsparse: matrix is %dx%d, want square", a.Rows, a.Cols)
	}
	neg, pos := 0, 0
	for j := 0; j < a.Cols; j++ {
		for k := a.ColPtr[j]; k < a.ColPtr[j+1]; k++ {
			if i := a.RowIdx[k]; i != j {
				if a.Val[k] < 0 {
					neg++
				} else if a.Val[k] > 0 {
					pos++
				}
			}
		}
	}
	if neg > 0 && pos > 0 {
		return nil, fmt.Errorf("trsparse: matrix has %d negative and %d positive off-diagonals; cannot infer graph", neg, pos)
	}
	laplacian := neg > 0
	var edges []Edge
	for j := 0; j < a.Cols; j++ {
		for k := a.ColPtr[j]; k < a.ColPtr[j+1]; k++ {
			i := a.RowIdx[k]
			if i <= j { // take each undirected edge once (lower triangle)
				continue
			}
			v := a.Val[k]
			if laplacian {
				v = -v
			}
			if v > 0 {
				edges = append(edges, Edge{U: i, V: j, W: v})
			}
		}
	}
	return graph.New(a.Rows, edges)
}
