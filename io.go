package trsparse

import (
	"fmt"
	"io"

	"repro/internal/graph"
	"repro/internal/sparse"
)

// ReadMatrixMarketGraph loads a graph from a Matrix Market file, accepting
// either form the SuiteSparse collection uses for the paper's test cases:
//
//   - an SDD matrix (Laplacian-like, negative off-diagonals): each strictly
//     negative off-diagonal entry a_ij becomes an edge of weight −a_ij;
//   - an adjacency/weights matrix (positive off-diagonals): each positive
//     off-diagonal entry becomes an edge with that weight.
//
// Mixed-sign off-diagonals are rejected. This is the bridge for running the
// benchmark harness on the real ecology2/thermal2/… matrices when they are
// available locally.
func ReadMatrixMarketGraph(r io.Reader) (*Graph, error) {
	a, err := sparse.ReadMatrixMarket(r)
	if err != nil {
		return nil, err
	}
	return GraphFromMatrix(a)
}

// WriteMatrixMarketGraph writes g as a Matrix Market file in the
// adjacency convention ReadMatrixMarketGraph accepts (coordinate real
// symmetric, positive off-diagonals = edge weights, no diagonal).
// Weights are written with enough digits to round-trip float64 exactly,
// so Write→Read reproduces the graph bit for bit.
func WriteMatrixMarketGraph(w io.Writer, g *Graph) error {
	if g == nil {
		return fmt.Errorf("trsparse: nil graph")
	}
	tr := sparse.NewTriplet(g.N, g.N)
	for _, e := range g.Edges {
		// Lower triangle only: the symmetric writer emits entries with
		// row ≥ col, and edges are normalized U ≤ V.
		tr.Add(e.V, e.U, e.W)
	}
	return sparse.WriteMatrixMarket(w, tr.ToCSC(), true)
}

// GraphFromMatrix converts a square sparse matrix to a weighted graph per
// the rules of ReadMatrixMarketGraph.
func GraphFromMatrix(a *sparse.CSC) (*Graph, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("trsparse: matrix is %dx%d, want square", a.Rows, a.Cols)
	}
	neg, pos := 0, 0
	for j := 0; j < a.Cols; j++ {
		for k := a.ColPtr[j]; k < a.ColPtr[j+1]; k++ {
			if i := a.RowIdx[k]; i != j {
				if a.Val[k] < 0 {
					neg++
				} else if a.Val[k] > 0 {
					pos++
				}
			}
		}
	}
	if neg > 0 && pos > 0 {
		return nil, fmt.Errorf("trsparse: matrix has %d negative and %d positive off-diagonals; cannot infer graph", neg, pos)
	}
	laplacian := neg > 0
	var edges []Edge
	for j := 0; j < a.Cols; j++ {
		for k := a.ColPtr[j]; k < a.ColPtr[j+1]; k++ {
			i := a.RowIdx[k]
			if i <= j { // take each undirected edge once (lower triangle)
				continue
			}
			v := a.Val[k]
			if laplacian {
				v = -v
			}
			if v > 0 {
				edges = append(edges, Edge{U: i, V: j, W: v})
			}
		}
	}
	return graph.New(a.Rows, edges)
}
