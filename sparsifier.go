package trsparse

import (
	"context"

	"repro/internal/core"
)

// Sparsifier is a long-lived handle over one (graph, sparsifier) pair:
// the sparsifier subgraph plus the prepared pencil (shared regularization
// shift, both assembled Laplacians, and the sparsifier's Cholesky
// factorization), built once by New and reused across every subsequent
// measurement. Effective-resistance-style workloads issue many solves
// against one preconditioner; the handle makes that reuse explicit instead
// of silently rebuilding the factorization per call the way the deprecated
// free functions do.
//
// A Sparsifier is immutable after construction and safe for concurrent
// use. Every method takes a context.Context threaded down into the PCG
// iterations and Lanczos sweeps (polled every few iterations), so slow
// jobs are cancellable end to end; a canceled call returns an error
// matching ErrCanceled.
//
// Methods: Solve, SolveTol, SolveBatch, CondNumber, TraceProxy, Fiedler,
// Partition, plus ...With variants taking explicit steps/probes/seed and
// accessors (N, SparsifierGraph, Result, Pencil, Shift, Config, BuildTime,
// FactorNNZ, MemBytes, ShardStats, PrecondStats).
type Sparsifier = core.Sparsifier

// Solution is the outcome of one preconditioned Solve.
type Solution = core.Solution

// Structured sentinel errors returned by New and the Sparsifier methods.
// Match them with errors.Is; each returned error wraps one of these
// together with graph context (vertex/edge counts, expected dimensions).
var (
	// ErrDisconnected: the graph (or a prebuilt sparsifier) is not
	// connected.
	ErrDisconnected = core.ErrDisconnected
	// ErrNotSPD: the regularized sparsifier Laplacian failed Cholesky
	// factorization.
	ErrNotSPD = core.ErrNotSPD
	// ErrCanceled: the context was canceled or its deadline passed; the
	// underlying context error stays in the chain, so
	// errors.Is(err, context.Canceled) keeps working.
	ErrCanceled = core.ErrCanceled
	// ErrTooLarge: the graph exceeds the WithMaxVertices admission limit.
	ErrTooLarge = core.ErrTooLarge
	// ErrDimension: a right-hand side or prebuilt sparsifier has the wrong
	// size for the graph.
	ErrDimension = core.ErrDimension
)

// New builds a Sparsifier handle for the connected graph g: it runs the
// configured sparsification algorithm (the paper's trace reduction by
// default), assembles the regularized Laplacian pencil with the same shift
// the construction used, and factorizes the sparsifier — once. Subsequent
// Solve/CondNumber/TraceProxy/Fiedler/Partition calls reuse the handle
// with no rebuilding.
//
// Construction honors ctx: cancellation mid-build abandons the remaining
// recovery rounds promptly and returns an error matching ErrCanceled.
func New(ctx context.Context, g *Graph, opts ...Option) (*Sparsifier, error) {
	return core.NewSparsifier(ctx, g, newConfig(opts))
}
