package trsparse

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"time"
)

// TestOptionRoundTrip: every functional option lands in the effective
// config field it documents.
func TestOptionRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		opt  Option
		get  func(Config) any
		want any
	}{
		{"WithMethod", WithMethod(FeGRASS), func(c Config) any { return c.Sparsify.Method }, FeGRASS},
		{"WithAlpha", WithAlpha(0.17), func(c Config) any { return c.Sparsify.Alpha }, 0.17},
		{"WithRecoveryRounds", WithRecoveryRounds(3), func(c Config) any { return c.Sparsify.Rounds }, 3},
		{"WithBeta", WithBeta(7), func(c Config) any { return c.Sparsify.Beta }, 7},
		{"WithDelta", WithDelta(0.25), func(c Config) any { return c.Sparsify.Delta }, 0.25},
		{"WithSimilarityHops", WithSimilarityHops(4), func(c Config) any { return c.Sparsify.SimilarityHops }, 4},
		{"WithShiftRel", WithShiftRel(1e-4), func(c Config) any { return c.Sparsify.ShiftRel }, 1e-4},
		{"WithWorkers", WithWorkers(2), func(c Config) any { return c.Sparsify.Workers }, 2},
		{"WithSeed", WithSeed(99), func(c Config) any { return c.Sparsify.Seed }, int64(99)},
		{"WithTolerance", WithTolerance(1e-9), func(c Config) any { return c.Tol }, 1e-9},
		{"WithMaxIterations", WithMaxIterations(123), func(c Config) any { return c.MaxIter }, 123},
		{"WithLanczosSteps", WithLanczosSteps(40), func(c Config) any { return c.LanczosSteps }, 40},
		{"WithTraceProbes", WithTraceProbes(12), func(c Config) any { return c.TraceProbes }, 12},
		{"WithFiedlerSteps", WithFiedlerSteps(8), func(c Config) any { return c.FiedlerSteps }, 8},
		{"WithFiedlerTolerance", WithFiedlerTolerance(1e-7), func(c Config) any { return c.FiedlerTol }, 1e-7},
		{"WithMaxVertices", WithMaxVertices(5000), func(c Config) any { return c.MaxVertices }, 5000},
		{"WithCancelCheckEvery", WithCancelCheckEvery(8), func(c Config) any { return c.CheckEvery }, 8},
		{"WithShardThreshold", WithShardThreshold(4000), func(c Config) any { return c.ShardThreshold }, 4000},
		{"WithShards", WithShards(6), func(c Config) any { return c.Shards }, 6},
		{"WithPrecond", WithPrecond(PrecondSchwarz), func(c Config) any { return c.Precond }, PrecondSchwarz},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := newConfig([]Option{tc.opt})
			if got := tc.get(cfg); !reflect.DeepEqual(got, tc.want) {
				t.Errorf("%s: config field = %v, want %v", tc.name, got, tc.want)
			}
		})
	}

	// Composite options.
	g := Grid2D(4, 4, 1)
	cfg := newConfig([]Option{WithSparsifierGraph(g)})
	if cfg.Prebuilt != g {
		t.Error("WithSparsifierGraph did not set Prebuilt")
	}
	o := Options{Alpha: 0.3, Rounds: 2, Seed: 5}
	cfg = newConfig([]Option{WithSparsifyOptions(o)})
	if !reflect.DeepEqual(cfg.Sparsify, o) {
		t.Errorf("WithSparsifyOptions: %+v != %+v", cfg.Sparsify, o)
	}
	// Later options win.
	cfg = newConfig([]Option{WithAlpha(0.1), WithAlpha(0.2), nil})
	if cfg.Sparsify.Alpha != 0.2 {
		t.Errorf("option composition: alpha = %g, want 0.2", cfg.Sparsify.Alpha)
	}
}

// TestNewOptionsAreEffective: the options actually steer construction,
// not just the config struct.
func TestNewOptionsAreEffective(t *testing.T) {
	ctx := context.Background()
	g := Grid2D(30, 30, 2)
	lean, err := New(ctx, g, WithAlpha(0.02), WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	dense, err := New(ctx, g, WithAlpha(0.20), WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	if lean.SparsifierGraph().M() >= dense.SparsifierGraph().M() {
		t.Errorf("alpha not effective: lean %d edges, dense %d",
			lean.SparsifierGraph().M(), dense.SparsifierGraph().M())
	}
	if got := dense.Config().Sparsify.Alpha; got != 0.20 {
		t.Errorf("Config() alpha = %g, want 0.20", got)
	}
}

func TestNewValidation(t *testing.T) {
	ctx := context.Background()

	if _, err := New(ctx, nil); err == nil {
		t.Error("nil graph accepted")
	}

	// Disconnected input → ErrDisconnected.
	disc, err := NewGraph(4, []Edge{{U: 0, V: 1, W: 1}, {U: 2, V: 3, W: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(ctx, disc); !errors.Is(err, ErrDisconnected) {
		t.Errorf("disconnected graph: err = %v, want ErrDisconnected", err)
	}

	// Admission limit → ErrTooLarge.
	g := Grid2D(10, 10, 1)
	if _, err := New(ctx, g, WithMaxVertices(50)); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversized graph: err = %v, want ErrTooLarge", err)
	}

	// Prebuilt sparsifier over a different vertex set → ErrDimension (the
	// v1 free functions used to panic or return garbage here).
	small := Grid2D(5, 5, 1)
	if _, err := New(ctx, g, WithSparsifierGraph(small)); !errors.Is(err, ErrDimension) {
		t.Errorf("mismatched sparsifier: err = %v, want ErrDimension", err)
	}

	// Disconnected prebuilt sparsifier → ErrDisconnected.
	discSub, err := NewGraph(g.N, []Edge{{U: 0, V: 1, W: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(ctx, g, WithSparsifierGraph(discSub)); !errors.Is(err, ErrDisconnected) {
		t.Errorf("disconnected sparsifier: err = %v, want ErrDisconnected", err)
	}
}

// TestDeprecatedWrappersValidate: the v1 free functions inherit the v2
// validation instead of panicking on mismatched vertex counts.
func TestDeprecatedWrappersValidate(t *testing.T) {
	g := Grid2D(8, 8, 1)
	wrong := Grid2D(5, 5, 1)
	if _, err := CondNumber(g, wrong, 1); !errors.Is(err, ErrDimension) {
		t.Errorf("CondNumber: err = %v, want ErrDimension", err)
	}
	if _, _, err := SolvePCG(g, wrong, make([]float64, g.N), 1e-6); !errors.Is(err, ErrDimension) {
		t.Errorf("SolvePCG: err = %v, want ErrDimension", err)
	}
	if _, err := Fiedler(g, wrong, 3, 1e-6, 1); !errors.Is(err, ErrDimension) {
		t.Errorf("Fiedler: err = %v, want ErrDimension", err)
	}
	if _, err := TraceProxy(g, wrong, 10, 1); !errors.Is(err, ErrDimension) {
		t.Errorf("TraceProxy: err = %v, want ErrDimension", err)
	}
}

func TestSolveValidatesRHS(t *testing.T) {
	ctx := context.Background()
	s, err := New(ctx, Grid2D(6, 6, 1), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Solve(ctx, make([]float64, 10)); !errors.Is(err, ErrDimension) {
		t.Errorf("mis-sized rhs: err = %v, want ErrDimension", err)
	}
	if _, err := s.SolveBatch(ctx, [][]float64{make([]float64, s.N()), {1}}); !errors.Is(err, ErrDimension) {
		t.Errorf("mis-sized batch rhs: err = %v, want ErrDimension", err)
	}
}

// TestCancelBeforeNew: an already-canceled context fails fast with
// ErrCanceled (and the context error stays matchable).
func TestCancelBeforeNew(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := New(ctx, Grid2D(50, 50, 1))
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("context.Canceled not in chain: %v", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("pre-canceled New took %v", d)
	}
}

// TestCancelMidNew: canceling while construction is running abandons the
// remaining recovery rounds promptly.
func TestCancelMidNew(t *testing.T) {
	g := Grid2D(150, 150, 3)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	started := time.Now()
	go func() {
		_, err := New(ctx, g, WithSeed(3))
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		// The build may legitimately finish before the cancel lands on a
		// fast machine; only a late *successful* return is acceptable.
		if err != nil && !errors.Is(err, ErrCanceled) {
			t.Fatalf("err = %v, want ErrCanceled (or nil if the build won the race)", err)
		}
		if err != nil && time.Since(started) > 10*time.Second {
			t.Fatalf("cancellation took %v, not prompt", time.Since(started))
		}
	case <-time.After(30 * time.Second):
		t.Fatal("canceled New never returned")
	}
}

// TestCancelMidSolve: a solve that cannot converge (tol below machine
// precision) is stopped by cancellation within the poll cadence instead
// of running out its huge iteration budget.
func TestCancelMidSolve(t *testing.T) {
	bg := context.Background()
	g := Grid2D(120, 120, 4)
	s, err := New(bg, g, WithSeed(4), WithMaxIterations(5_000_000), WithCancelCheckEvery(8))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	b := make([]float64, g.N)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	ctx, cancel := context.WithTimeout(bg, 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = s.SolveTol(ctx, b, 1e-300)
	elapsed := time.Since(start)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("context.DeadlineExceeded not in chain: %v", err)
	}
	if elapsed > 10*time.Second {
		t.Fatalf("canceled solve took %v, not prompt", elapsed)
	}
	// The same solve with a live context keeps working afterwards (the
	// handle is stateless across calls).
	sol, err := s.Solve(bg, b)
	if err != nil || !sol.Converged {
		t.Fatalf("post-cancel solve: %+v, %v", sol, err)
	}
}

// TestSolveBatch: many right-hand sides against one factorization, in
// input order.
func TestSolveBatch(t *testing.T) {
	ctx := context.Background()
	g := Grid2D(20, 20, 5)
	s, err := New(ctx, g, WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	bs := make([][]float64, 6)
	for i := range bs {
		bs[i] = make([]float64, g.N)
		for j := range bs[i] {
			bs[i][j] = rng.NormFloat64()
		}
	}
	sols, err := s.SolveBatch(ctx, bs)
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != len(bs) {
		t.Fatalf("got %d solutions for %d systems", len(sols), len(bs))
	}
	for i, sol := range sols {
		if sol == nil || !sol.Converged {
			t.Fatalf("solution %d: %+v", i, sol)
		}
		// Cross-check against a fresh single solve of the same system.
		single, err := s.Solve(ctx, bs[i])
		if err != nil {
			t.Fatal(err)
		}
		for j := range sol.X {
			if sol.X[j] != single.X[j] {
				t.Fatalf("solution %d differs from single solve at %d", i, j)
			}
		}
	}
}

// TestPartitionHandle: the handle's Partition splits an elongated grid
// across its long axis, like the Fiedler sign structure demands.
func TestPartitionHandle(t *testing.T) {
	ctx := context.Background()
	nx, ny := 40, 8
	g := Grid2D(nx, ny, 6)
	s, err := New(ctx, g, WithSeed(6), WithFiedlerSteps(20), WithFiedlerTolerance(1e-8))
	if err != nil {
		t.Fatal(err)
	}
	part, err := s.Partition(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(part) != g.N {
		t.Fatalf("partition length %d, want %d", len(part), g.N)
	}
	if part[0] == part[nx-1] {
		t.Error("partition does not separate the grid's long-axis endpoints")
	}
}

// TestHandleCarriesShift: the handle's pencil uses the construction
// Result.Shift — the satellite fix for the v1 wrappers that passed nil.
func TestHandleCarriesShift(t *testing.T) {
	ctx := context.Background()
	g := Grid2D(15, 15, 7)
	// A deliberately non-default regularization makes the drop observable.
	s, err := New(ctx, g, WithSeed(7), WithShiftRel(1e-3))
	if err != nil {
		t.Fatal(err)
	}
	res := s.Result()
	if res == nil {
		t.Fatal("constructed handle has no Result")
	}
	shift := s.Shift()
	for i := range shift {
		if shift[i] != res.Shift[i] {
			t.Fatalf("pencil shift[%d]=%g differs from construction shift %g",
				i, shift[i], res.Shift[i])
		}
	}
	// With the shared shift, λmin of the pencil is 1, so κ(G,G)≈1 even at
	// the larger regularization.
	self, err := New(ctx, g, WithSparsifierGraph(g), WithShiftRel(1e-3))
	if err != nil {
		t.Fatal(err)
	}
	k, err := self.CondNumber(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if k < 0.999 || k > 1.001 {
		t.Errorf("κ(G,G) = %g under shared shift, want ≈1", k)
	}
}

// TestPrecondStrategies: WithPrecond steers the pencil's preconditioner
// construction end to end — every strategy solves the same system to the
// same answer, and the handle reports how it was built.
func TestPrecondStrategies(t *testing.T) {
	ctx := context.Background()
	g := Grid2D(30, 30, 2)
	rng := rand.New(rand.NewSource(4))
	b := make([]float64, g.N)
	for i := range b {
		b[i] = rng.NormFloat64()
	}

	mono, err := New(ctx, g, WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if ps := mono.PrecondStats(); ps == nil || ps.Kind != "monolithic" || ps.FactorNNZ <= 0 {
		t.Fatalf("monolithic PrecondStats = %+v", mono.PrecondStats())
	}
	if mono.FactorNNZ() != int(mono.PrecondStats().FactorNNZ) {
		t.Fatal("FactorNNZ accessor disagrees with PrecondStats")
	}

	sch, err := New(ctx, g, WithSeed(1), WithPrecond(PrecondSchwarz))
	if err != nil {
		t.Fatal(err)
	}
	ps := sch.PrecondStats()
	if ps == nil || ps.Kind != "schwarz" || ps.Clusters < 2 || len(ps.PerClusterNNZ) != ps.Clusters {
		t.Fatalf("schwarz PrecondStats = %+v", ps)
	}

	// A sharded build picks Schwarz automatically; forcing monolithic
	// overrides it.
	shardedAuto, err := New(ctx, g, WithSeed(1), WithShardThreshold(300))
	if err != nil {
		t.Fatal(err)
	}
	if k := shardedAuto.PrecondStats().Kind; k != "schwarz" {
		t.Fatalf("sharded auto precond = %q, want schwarz", k)
	}
	shardedMono, err := New(ctx, g, WithSeed(1), WithShardThreshold(300), WithPrecond(PrecondMonolithic))
	if err != nil {
		t.Fatal(err)
	}
	if k := shardedMono.PrecondStats().Kind; k != "monolithic" {
		t.Fatalf("sharded forced-monolithic precond = %q", k)
	}

	var ref []float64
	for _, s := range []*Sparsifier{mono, sch, shardedAuto, shardedMono} {
		sol, err := s.Solve(ctx, b)
		if err != nil || !sol.Converged {
			t.Fatalf("%s solve: converged=%v err=%v", s.PrecondStats().Kind, sol != nil && sol.Converged, err)
		}
		if ref == nil {
			ref = sol.X
			continue
		}
		// All strategies solve the same L_G x = b; answers agree to the
		// PCG tolerance scale.
		var diff, norm float64
		for i := range ref {
			d := sol.X[i] - ref[i]
			diff += d * d
			norm += ref[i] * ref[i]
		}
		if diff > 1e-6*norm {
			t.Fatalf("%s solution diverges: rel² = %g", s.PrecondStats().Kind, diff/norm)
		}
	}
}
