package trsparse

import (
	"math"
	"math/rand"
	"testing"
)

func TestFacadeSparsifyAndCondNumber(t *testing.T) {
	g := Grid2D(40, 40, 1)
	res, err := Sparsify(g, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	kSparse, err := CondNumber(g, res.Sparsifier, 1)
	if err != nil {
		t.Fatal(err)
	}
	kTree, err := CondNumber(g, g.Subgraph(res.Tree.EdgeIdx), 1)
	if err != nil {
		t.Fatal(err)
	}
	if kSparse >= kTree {
		t.Errorf("sparsifier κ=%.1f not below tree κ=%.1f", kSparse, kTree)
	}
	kSelf, err := CondNumber(g, g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(kSelf-1) > 1e-6 {
		t.Errorf("κ(G,G) = %g", kSelf)
	}
}

func TestFacadeTraceProxyBoundsKappa(t *testing.T) {
	// Eq. (5): κ ≤ Tr(L_P⁻¹ L_G). With estimator noise, allow 10% slack.
	g := Grid2D(30, 30, 5)
	res, err := Sparsify(g, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	kappa, err := CondNumber(g, res.Sparsifier, 5)
	if err != nil {
		t.Fatal(err)
	}
	trace, err := TraceProxy(g, res.Sparsifier, 100, 5)
	if err != nil {
		t.Fatal(err)
	}
	if kappa > 1.1*trace {
		t.Errorf("κ=%g exceeds trace proxy %g", kappa, trace)
	}
	if trace < float64(g.N) {
		t.Errorf("trace %g below n=%d (impossible for S ⊆ G)", trace, g.N)
	}
}

func TestFacadeFiedlerPartitionsGrid(t *testing.T) {
	// The Fiedler vector of an elongated grid splits it across the long
	// axis: columns 0 and nx−1 must land on opposite signs.
	nx, ny := 40, 8
	g := Grid2D(nx, ny, 6)
	res, err := Sparsify(g, Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	fv, err := Fiedler(g, res.Sparsifier, 20, 1e-8, 6)
	if err != nil {
		t.Fatal(err)
	}
	left := fv[0]     // (0, 0)
	right := fv[nx-1] // (nx−1, 0)
	if left*right >= 0 {
		t.Errorf("Fiedler endpoints same sign: %g, %g", left, right)
	}
}

func TestFacadeSolvePCG(t *testing.T) {
	g := Tri2D(30, 30, 2)
	res, err := Sparsify(g, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	b := make([]float64, g.N)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x, iters, err := SolvePCG(g, res.Sparsifier, b, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	if iters <= 0 || iters > 200 {
		t.Errorf("unexpected iteration count %d", iters)
	}
	// Verify the residual directly through the quadratic form machinery:
	// recompute L_G x and compare with b.
	sum := 0.0
	for i := range x {
		sum += x[i]
	}
	if math.IsNaN(sum) {
		t.Fatal("solution contains NaN")
	}
}

func TestNewGraphValidation(t *testing.T) {
	if _, err := NewGraph(2, []Edge{{U: 0, V: 0, W: 1}}); err == nil {
		t.Error("self loop accepted")
	}
	g, err := NewGraph(3, []Edge{{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 2}})
	if err != nil || g.M() != 2 {
		t.Errorf("valid graph rejected: %v", err)
	}
}
