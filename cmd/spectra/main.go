// Command spectra prints spectral diagnostics of a graph and its
// sparsifier: size and degree statistics, spanning-tree stretch, the trace
// proxy Tr(L_P⁻¹ L_G), the estimated condition number κ(L_G, L_P), and
// how both fall as densification rounds add edges. Useful for inspecting
// unfamiliar inputs before committing to a full experiment run. Each
// subgraph is measured through its own v2 handle (trsparse.New with
// WithSparsifierGraph), and ^C cancels mid-measurement.
//
// Usage:
//
//	spectra -case NACA0015 -scale 1
//	spectra -mm matrix.mtx
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"os/signal"
	"sort"
	"syscall"

	trsparse "repro"
	"repro/internal/gen"
	"repro/internal/graph"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("spectra: ")

	caseName := flag.String("case", "ecology2", "benchmark case name")
	mmPath := flag.String("mm", "", "load graph from a Matrix Market file")
	scale := flag.Float64("scale", 1, "case size multiplier")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var g *graph.Graph
	if *mmPath != "" {
		f, err := os.Open(*mmPath)
		if err != nil {
			log.Fatal(err)
		}
		g, err = trsparse.ReadMatrixMarketGraph(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	} else {
		c, err := gen.ByName(*caseName)
		if err != nil {
			log.Fatal(err)
		}
		g = c.Build(*scale, *seed)
	}

	degs := make([]int, g.N)
	for v := 0; v < g.N; v++ {
		degs[v] = g.Degree(v)
	}
	sort.Ints(degs)
	fmt.Printf("graph:  |V|=%d |E|=%d  degree min/med/max = %d/%d/%d\n",
		g.N, g.M(), degs[0], degs[g.N/2], degs[g.N-1])

	s, err := trsparse.New(ctx, g, trsparse.WithSeed(*seed), trsparse.WithTraceProbes(50))
	if err != nil {
		log.Fatal(err)
	}
	res := s.Result()
	fmt.Printf("MEWST:  total stretch %.4g over %d off-tree edges\n",
		res.Tree.TotalStretch(), g.M()-(g.N-1))

	report := func(label string, h *trsparse.Sparsifier) {
		kappa, err := h.CondNumber(ctx)
		if err != nil {
			log.Fatal(err)
		}
		trace, err := h.TraceProxy(ctx)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s edges=%-8d κ≈%-10.4g Tr(L_P⁻¹L_G)≈%-12.5g (n=%d is the floor)\n",
			label, h.SparsifierGraph().M(), kappa, trace, g.N)
	}
	tree, err := trsparse.New(ctx, g,
		trsparse.WithSparsifierGraph(g.Subgraph(res.Tree.EdgeIdx)),
		trsparse.WithSeed(*seed), trsparse.WithTraceProbes(50))
	if err != nil {
		log.Fatal(err)
	}
	report("spanning tree:", tree)
	report("sparsifier (α=10%):", s)
	fmt.Printf("sparsification: %v (tree %v, scoring %v, factorizations %v)\n",
		res.Stats.Total, res.Stats.TreeTime, res.Stats.ScoreTime, res.Stats.FactorTime)
	if len(res.Stats.SPAINnz) > 0 {
		fmt.Printf("SPAI Z̃ nonzeros per round: %v (n·log₂n = %.3g)\n",
			res.Stats.SPAINnz, float64(g.N)*math.Log2(float64(g.N)))
	}
}
