// Command sparsify builds a graph spectral sparsifier for a named
// benchmark case or a Matrix Market file and reports the Table-1 metrics:
// construction time, relative condition number, and PCG iterations/time
// with the sparsifier as preconditioner. It drives the v2 handle API
// (trsparse.New) and is interruptible: ^C cancels the build or the
// measurement mid-flight.
//
// Usage:
//
//	sparsify -case ecology2 -scale 1 -method trace
//	sparsify -mm matrix.mtx -method grass -alpha 0.15
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"os/signal"
	"syscall"
	"time"

	trsparse "repro"
	"repro/internal/gen"
	"repro/internal/graph"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sparsify: ")

	caseName := flag.String("case", "ecology2", "benchmark case name (see -list)")
	list := flag.Bool("list", false, "list available cases and exit")
	mmPath := flag.String("mm", "", "load graph from a Matrix Market file instead of a generated case")
	scale := flag.Float64("scale", 1, "case size multiplier (1 = downsized default; ~70 restores paper scale)")
	method := flag.String("method", "trace", "sparsification method: trace | grass | fegrass | er")
	erSketches := flag.Int("er-sketches", 0, "JL sketch count for method er (0 = auto from -er-eps)")
	erEps := flag.Float64("er-eps", 0, "target relative accuracy of sketched effective resistances (0 = default 0.5)")
	alpha := flag.Float64("alpha", 0.10, "fraction of |V| off-tree edges to recover")
	rounds := flag.Int("rounds", 5, "densification rounds N_r")
	beta := flag.Int("beta", 5, "BFS truncation depth β")
	delta := flag.Float64("delta", 0.1, "SPAI pruning threshold δ")
	seed := flag.Int64("seed", 1, "random seed")
	pcgTol := flag.Float64("rtol", 1e-3, "PCG relative tolerance")
	shardThreshold := flag.Int("shard-threshold", 0, "build through the sharded pipeline when |V| exceeds this (0 = always monolithic)")
	shards := flag.Int("shards", 0, "cluster count K for the sharded pipeline (0 = auto from threshold)")
	flag.Parse()

	if *list {
		for _, c := range gen.Table1Cases() {
			fmt.Printf("%-12s %-8s paper |V|=%.1e |E|=%.1e\n", c.Name, c.Kind, c.PaperV, c.PaperE)
		}
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var g *graph.Graph
	if *mmPath != "" {
		f, err := os.Open(*mmPath)
		if err != nil {
			log.Fatal(err)
		}
		g, err = trsparse.ReadMatrixMarketGraph(f)
		f.Close()
		if err != nil {
			log.Fatalf("loading %s: %v", *mmPath, err)
		}
	} else {
		c, err := gen.ByName(*caseName)
		if err != nil {
			log.Fatal(err)
		}
		g = c.Build(*scale, *seed)
	}

	var m trsparse.Method
	switch *method {
	case "trace":
		m = trsparse.TraceReduction
	case "grass":
		m = trsparse.GRASS
	case "fegrass":
		m = trsparse.FeGRASS
	case "er":
		m = trsparse.MethodER
	default:
		log.Fatalf("unknown method %q (want trace, grass, fegrass, or er)", *method)
	}

	s, err := trsparse.New(ctx, g,
		trsparse.WithMethod(m),
		trsparse.WithAlpha(*alpha),
		trsparse.WithRecoveryRounds(*rounds),
		trsparse.WithBeta(*beta),
		trsparse.WithDelta(*delta),
		trsparse.WithERSketches(*erSketches),
		trsparse.WithEREpsilon(*erEps),
		trsparse.WithSeed(*seed),
		trsparse.WithTolerance(*pcgTol),
		trsparse.WithMaxIterations(2000),
		trsparse.WithShardThreshold(*shardThreshold),
		trsparse.WithShards(*shards),
	)
	if err != nil {
		log.Fatal(err)
	}
	res := s.Result()

	kappa, err := s.CondNumber(ctx)
	if err != nil {
		log.Fatal(err)
	}

	// PCG on a random RHS (paper: random RHS, rtol 1e-3).
	rng := rand.New(rand.NewSource(*seed + 31))
	b := make([]float64, g.N)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	t0 := time.Now()
	sol, err := s.Solve(ctx, b)
	if err != nil {
		log.Fatal(err)
	}
	pcgTime := time.Since(t0)
	if !sol.Converged {
		log.Printf("warning: PCG hit the %d-iteration cap without converging (relres %.3g); Ni below is a truncation artifact", 2000, sol.RelRes)
	}

	fmt.Printf("graph        |V|=%d |E|=%d\n", g.N, g.M())
	fmt.Printf("method       %v\n", m)
	fmt.Printf("sparsifier   %d edges (tree %d + recovered %d)\n",
		s.SparsifierGraph().M(), g.N-1, s.SparsifierGraph().M()-(g.N-1))
	if st := s.ShardStats(); st != nil {
		fmt.Printf("sharded      K=%d (plan %v, build %v, stitch %v; cut %d → retained %d + recovered %d; %d BFS fallbacks)\n",
			st.Shards, st.PlanTime, st.BuildTime, st.StitchTime,
			st.CutEdges, st.CutRetained, st.CutRecovered, st.FallbackSplits)
	}
	fmt.Printf("Ts           %v  (tree %v, scoring %v, factorization %v)\n",
		res.Stats.Total, res.Stats.TreeTime, res.Stats.ScoreTime, res.Stats.FactorTime)
	fmt.Printf("kappa        %.4g\n", kappa)
	fmt.Printf("PCG          Ni=%d Ti=%v (rtol %.0e, random RHS)\n", sol.Iterations, pcgTime, *pcgTol)
	fmt.Printf("precond      nnz(L)=%d (%.1f MB)\n", s.FactorNNZ(), float64(s.MemBytes())/(1<<20))
}
