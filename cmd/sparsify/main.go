// Command sparsify builds a graph spectral sparsifier for a named
// benchmark case or a Matrix Market file and reports the Table-1 metrics:
// construction time, relative condition number, and PCG iterations/time
// with the sparsifier as preconditioner.
//
// Usage:
//
//	sparsify -case ecology2 -scale 1 -method trace
//	sparsify -mm matrix.mtx -method grass -alpha 0.15
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	trsparse "repro"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/sparsify"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sparsify: ")

	caseName := flag.String("case", "ecology2", "benchmark case name (see -list)")
	list := flag.Bool("list", false, "list available cases and exit")
	mmPath := flag.String("mm", "", "load graph from a Matrix Market file instead of a generated case")
	scale := flag.Float64("scale", 1, "case size multiplier (1 = downsized default; ~70 restores paper scale)")
	method := flag.String("method", "trace", "sparsification method: trace | grass | fegrass")
	alpha := flag.Float64("alpha", 0.10, "fraction of |V| off-tree edges to recover")
	rounds := flag.Int("rounds", 5, "densification rounds N_r")
	beta := flag.Int("beta", 5, "BFS truncation depth β")
	delta := flag.Float64("delta", 0.1, "SPAI pruning threshold δ")
	seed := flag.Int64("seed", 1, "random seed")
	pcgTol := flag.Float64("rtol", 1e-3, "PCG relative tolerance")
	flag.Parse()

	if *list {
		for _, c := range gen.Table1Cases() {
			fmt.Printf("%-12s %-8s paper |V|=%.1e |E|=%.1e\n", c.Name, c.Kind, c.PaperV, c.PaperE)
		}
		return
	}

	var g *graph.Graph
	if *mmPath != "" {
		f, err := os.Open(*mmPath)
		if err != nil {
			log.Fatal(err)
		}
		g, err = trsparse.ReadMatrixMarketGraph(f)
		f.Close()
		if err != nil {
			log.Fatalf("loading %s: %v", *mmPath, err)
		}
	} else {
		c, err := gen.ByName(*caseName)
		if err != nil {
			log.Fatal(err)
		}
		g = c.Build(*scale, *seed)
	}

	var m sparsify.Method
	switch *method {
	case "trace":
		m = sparsify.TraceReduction
	case "grass":
		m = sparsify.GRASS
	case "fegrass":
		m = sparsify.FeGRASS
	default:
		log.Fatalf("unknown method %q (want trace, grass, or fegrass)", *method)
	}

	out, err := core.Evaluate(g, sparsify.Options{
		Method: m, Alpha: *alpha, Rounds: *rounds, Beta: *beta, Delta: *delta, Seed: *seed,
	}, core.EvalOptions{PCGTol: *pcgTol, Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("graph        |V|=%d |E|=%d\n", out.N, out.M)
	fmt.Printf("method       %v\n", out.Method)
	fmt.Printf("sparsifier   %d edges (tree %d + recovered %d)\n",
		out.SparsifierEdges, out.N-1, out.SparsifierEdges-(out.N-1))
	fmt.Printf("Ts           %v  (tree %v, scoring %v, factorization %v)\n",
		out.SparsifyTime, out.Result.Stats.TreeTime, out.Result.Stats.ScoreTime, out.Result.Stats.FactorTime)
	fmt.Printf("kappa        %.4g\n", out.Kappa)
	fmt.Printf("PCG          Ni=%d Ti=%v (rtol %.0e, random RHS)\n", out.PCGIters, out.PCGTime, *pcgTol)
	fmt.Printf("precond      nnz(L)=%d (%.1f MB)\n", out.FactorNNZ, float64(out.MemBytes)/(1<<20))
}
