// Command benchguard compares two `go test -json -bench` output files and
// fails when a benchmark got slower than an allowed factor. CI runs it
// after the bench job so a PR that regresses the serving hot path
// (BenchmarkSparsifierSolve) fails visibly instead of silently shipping
// the slowdown.
//
// Usage:
//
//	benchguard -old BENCH_pr2.json -new BENCH_pr3.json \
//	    -bench 'BenchmarkSparsifierSolve' -max-slowdown 1.25
//
// Benchmarks present in only one file are reported but do not fail the
// run (the set is expected to grow PR over PR); a matched benchmark whose
// new ns/op exceeds old·max-slowdown fails it.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// event is the subset of the test2json stream benchguard reads.
type event struct {
	Action string `json:"Action"`
	Output string `json:"Output"`
}

// benchLine matches "BenchmarkName-8   	      12	  98765 ns/op ..."
// (the CPU-count suffix is stripped so runs from different machines
// compare).
var benchLine = regexp.MustCompile(`^(Benchmark[^\s]+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

// parse extracts benchmark name → ns/op from a test2json stream (or raw
// `go test -bench` text). test2json splits one terminal line across
// output events — the benchmark name arrives in its own fragment ending
// in a tab, the timings in the next — so fragments are reassembled until
// a newline before matching.
func parse(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string]float64)
	take := func(line string) {
		if m := benchLine.FindStringSubmatch(strings.TrimSpace(line)); m != nil {
			if ns, err := strconv.ParseFloat(m[2], 64); err == nil {
				out[m[1]] = ns
			}
		}
	}
	var frag strings.Builder
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		var ev event
		if err := json.Unmarshal([]byte(line), &ev); err == nil {
			if ev.Action != "output" {
				continue
			}
			frag.WriteString(ev.Output)
			if strings.HasSuffix(ev.Output, "\n") {
				take(frag.String())
				frag.Reset()
			}
			continue
		}
		take(line) // raw `go test -bench` text
	}
	take(frag.String()) // unterminated trailing fragment
	return out, sc.Err()
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchguard: ")
	oldPath := flag.String("old", "", "baseline bench JSON (test2json stream)")
	newPath := flag.String("new", "", "candidate bench JSON (test2json stream)")
	benchRE := flag.String("bench", ".", "regexp of benchmark names the slowdown gate applies to")
	maxSlowdown := flag.Float64("max-slowdown", 1.25, "fail when new/old ns/op exceeds this for a gated benchmark")
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		log.Fatal("need -old and -new")
	}
	gate, err := regexp.Compile(*benchRE)
	if err != nil {
		log.Fatalf("bad -bench regexp: %v", err)
	}

	oldNS, err := parse(*oldPath)
	if err != nil {
		log.Fatalf("parsing %s: %v", *oldPath, err)
	}
	newNS, err := parse(*newPath)
	if err != nil {
		log.Fatalf("parsing %s: %v", *newPath, err)
	}
	if len(oldNS) == 0 {
		log.Fatalf("no benchmark results in %s", *oldPath)
	}
	if len(newNS) == 0 {
		log.Fatalf("no benchmark results in %s", *newPath)
	}

	names := make([]string, 0, len(newNS))
	for name := range newNS {
		names = append(names, name)
	}
	sort.Strings(names)

	failed := false
	for _, name := range names {
		nv := newNS[name]
		ov, ok := oldNS[name]
		if !ok {
			fmt.Printf("NEW   %-60s %14.0f ns/op (no baseline)\n", name, nv)
			continue
		}
		ratio := nv / ov
		status := "ok  "
		if gate.MatchString(name) && ratio > *maxSlowdown {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("%s  %-60s %14.0f -> %14.0f ns/op  (%.2fx, limit %.2fx)\n",
			status, name, ov, nv, ratio, *maxSlowdown)
	}
	for name := range oldNS {
		if _, ok := newNS[name]; !ok {
			fmt.Printf("GONE  %-60s (present in baseline only)\n", name)
		}
	}
	if failed {
		log.Fatalf("benchmark regression above %.2fx", *maxSlowdown)
	}
}
