// Command benchguard compares two `go test -json -bench` output files and
// fails when a benchmark got slower than an allowed factor. CI runs it
// after the bench job so a PR that regresses a gated path (the serving
// hot path BenchmarkSparsifierSolve, the sharded construction race
// BenchmarkShardedSparsify) fails visibly instead of silently shipping
// the slowdown.
//
// Usage:
//
//	benchguard -old BENCH_pr3.json -new BENCH_pr4.json \
//	    -gate 'BenchmarkSparsifierSolve=1.25' \
//	    -gate 'BenchmarkShardedSparsify=1.40'
//
// Each -gate is a regexp=max-slowdown pair and may repeat; a benchmark
// matching several gates is held to the strictest. The legacy
// -bench/-max-slowdown pair remains as a single default gate. Benchmarks
// present in only one file are reported but do not fail the run (the set
// is expected to grow PR over PR); a matched benchmark whose new ns/op
// exceeds old·max-slowdown fails it.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// gate is one regexp → allowed-slowdown rule.
type gate struct {
	re  *regexp.Regexp
	max float64
}

// gateFlags accumulates repeated -gate 'regexp=factor' flags.
type gateFlags []gate

func (g *gateFlags) String() string {
	var parts []string
	for _, x := range *g {
		parts = append(parts, fmt.Sprintf("%s=%g", x.re, x.max))
	}
	return strings.Join(parts, ",")
}

func (g *gateFlags) Set(s string) error {
	eq := strings.LastIndex(s, "=")
	if eq < 0 {
		return fmt.Errorf("gate %q: want regexp=max-slowdown", s)
	}
	re, err := regexp.Compile(s[:eq])
	if err != nil {
		return fmt.Errorf("gate %q: %w", s, err)
	}
	max, err := strconv.ParseFloat(s[eq+1:], 64)
	if err != nil || max <= 0 {
		return fmt.Errorf("gate %q: bad max-slowdown %q", s, s[eq+1:])
	}
	*g = append(*g, gate{re: re, max: max})
	return nil
}

// limitFor returns the strictest max-slowdown any gate imposes on name,
// or +Inf when no gate matches.
func (g gateFlags) limitFor(name string) float64 {
	limit := math.Inf(1)
	for _, x := range g {
		if x.re.MatchString(name) && x.max < limit {
			limit = x.max
		}
	}
	return limit
}

// event is the subset of the test2json stream benchguard reads.
type event struct {
	Action string `json:"Action"`
	Output string `json:"Output"`
}

// benchLine matches "BenchmarkName-8   	      12	  98765 ns/op ..."
// (the CPU-count suffix is stripped so runs from different machines
// compare).
var benchLine = regexp.MustCompile(`^(Benchmark[^\s]+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

// parse extracts benchmark name → ns/op from a test2json stream (or raw
// `go test -bench` text). test2json splits one terminal line across
// output events — the benchmark name arrives in its own fragment ending
// in a tab, the timings in the next — so fragments are reassembled until
// a newline before matching.
func parse(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string]float64)
	take := func(line string) {
		if m := benchLine.FindStringSubmatch(strings.TrimSpace(line)); m != nil {
			if ns, err := strconv.ParseFloat(m[2], 64); err == nil {
				out[m[1]] = ns
			}
		}
	}
	var frag strings.Builder
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		var ev event
		if err := json.Unmarshal([]byte(line), &ev); err == nil {
			if ev.Action != "output" {
				continue
			}
			frag.WriteString(ev.Output)
			if strings.HasSuffix(ev.Output, "\n") {
				take(frag.String())
				frag.Reset()
			}
			continue
		}
		take(line) // raw `go test -bench` text
	}
	take(frag.String()) // unterminated trailing fragment
	return out, sc.Err()
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchguard: ")
	oldPath := flag.String("old", "", "baseline bench JSON (test2json stream)")
	newPath := flag.String("new", "", "candidate bench JSON (test2json stream)")
	benchRE := flag.String("bench", "", "regexp for the default gate (legacy single-gate mode)")
	maxSlowdown := flag.Float64("max-slowdown", 1.25, "max-slowdown of the legacy -bench gate")
	var gates gateFlags
	flag.Var(&gates, "gate", "regexp=max-slowdown pair; repeatable, strictest match wins")
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		log.Fatal("need -old and -new")
	}
	if *benchRE != "" {
		re, err := regexp.Compile(*benchRE)
		if err != nil {
			log.Fatalf("bad -bench regexp: %v", err)
		}
		gates = append(gates, gate{re: re, max: *maxSlowdown})
	}
	if len(gates) == 0 {
		// No explicit gate: everything is held to -max-slowdown, matching
		// the historical default of -bench '.'.
		gates = append(gates, gate{re: regexp.MustCompile("."), max: *maxSlowdown})
	}

	oldNS, err := parse(*oldPath)
	if err != nil {
		log.Fatalf("parsing %s: %v", *oldPath, err)
	}
	newNS, err := parse(*newPath)
	if err != nil {
		log.Fatalf("parsing %s: %v", *newPath, err)
	}
	if len(oldNS) == 0 {
		log.Fatalf("no benchmark results in %s", *oldPath)
	}
	if len(newNS) == 0 {
		log.Fatalf("no benchmark results in %s", *newPath)
	}

	names := make([]string, 0, len(newNS))
	for name := range newNS {
		names = append(names, name)
	}
	sort.Strings(names)

	failed := false
	for _, name := range names {
		nv := newNS[name]
		ov, ok := oldNS[name]
		if !ok {
			fmt.Printf("NEW   %-60s %14.0f ns/op (no baseline)\n", name, nv)
			continue
		}
		ratio := nv / ov
		limit := gates.limitFor(name)
		status := "ok  "
		if ratio > limit {
			status = "FAIL"
			failed = true
		}
		lim := "ungated"
		if !math.IsInf(limit, 1) {
			lim = fmt.Sprintf("limit %.2fx", limit)
		}
		fmt.Printf("%s  %-60s %14.0f -> %14.0f ns/op  (%.2fx, %s)\n",
			status, name, ov, nv, ratio, lim)
	}
	for name := range oldNS {
		if _, ok := newNS[name]; !ok {
			fmt.Printf("GONE  %-60s (present in baseline only)\n", name)
		}
	}
	if failed {
		log.Fatal("benchmark regression above a gate limit")
	}
}
