package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"math"
	"mime"
	"net/http"
	"strconv"
	"strings"
	"time"

	trsparse "repro"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/precond"
	"repro/internal/sparsify"
)

// maxBodyBytes caps request bodies; a 64 MiB Matrix Market file covers
// every SuiteSparse case the paper evaluates.
const maxBodyBytes = 64 << 20

// server wires the sparsification engine to the HTTP surface.
type server struct {
	eng   *engine.Engine
	start time.Time
}

func newServer(eng *engine.Engine) *server {
	return &server{eng: eng, start: time.Now()}
}

// handler builds the route table. /v2/* is the current surface: the same
// engine, plus per-request deadlines (?timeout_ms=) and structured error
// codes. /v1/* remains as a deprecation shim over the identical handlers —
// same request and response shapes as before — with Deprecation/Link
// headers pointing at the successor.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v2/sparsify", s.handleSparsify)
	mux.HandleFunc("POST /v2/update", s.handleUpdate)
	mux.HandleFunc("POST /v2/solve", s.handleSolve)
	mux.HandleFunc("POST /v2/partition", s.handlePartition)
	mux.HandleFunc("POST /v2/stream", s.handleStreamOpen)
	mux.HandleFunc("POST /v2/stream/{id}", s.handleStreamPush)
	mux.HandleFunc("GET /v2/stream/{id}", s.handleStreamStats)
	mux.HandleFunc("DELETE /v2/stream/{id}", s.handleStreamClose)
	mux.HandleFunc("GET /v2/stats", s.handleStats)
	mux.HandleFunc("POST /v1/sparsify", deprecated("/v2/sparsify", s.handleSparsify))
	mux.HandleFunc("POST /v1/solve", deprecated("/v2/solve", s.handleSolve))
	mux.HandleFunc("GET /v1/stats", deprecated("/v2/stats", s.handleStats))
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// deprecated wraps a v1 route: it serves exactly the v2 handler but
// advertises the successor endpoint per RFC 8594-style headers so clients
// can migrate before /v1 is removed.
func deprecated(successor string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", fmt.Sprintf("<%s>; rel=\"successor-version\"", successor))
		h(w, r)
	}
}

// requestCtx derives the handler context: the client's disconnect context
// plus an optional per-request deadline from ?timeout_ms= (v2). Invalid or
// non-positive values are rejected by the caller via the returned error.
func requestCtx(r *http.Request) (context.Context, context.CancelFunc, error) {
	ctx := r.Context()
	raw := r.URL.Query().Get("timeout_ms")
	if raw == "" {
		return ctx, func() {}, nil
	}
	ms, err := strconv.ParseFloat(raw, 64)
	if err != nil || ms <= 0 || math.IsNaN(ms) || math.IsInf(ms, 0) {
		return nil, nil, fmt.Errorf("invalid timeout_ms %q (want a positive, finite number of milliseconds)", raw)
	}
	// Clamp absurd deadlines instead of letting the float→Duration
	// conversion overflow int64 into an already-expired context; anything
	// past a day is "no effective deadline" for this service.
	const maxTimeoutMS = 24 * 60 * 60 * 1000
	if ms > maxTimeoutMS {
		ms = maxTimeoutMS
	}
	ctx, cancel := context.WithTimeout(ctx, time.Duration(ms*float64(time.Millisecond)))
	return ctx, cancel, nil
}

// graphPayload is an inline graph: vertex count plus [u, v, w] triples.
type graphPayload struct {
	N     int          `json:"n"`
	Edges [][3]float64 `json:"edges"`
}

func (p *graphPayload) toGraph() (*graph.Graph, error) {
	if p == nil {
		return nil, errors.New("missing graph")
	}
	if p.N < 1 {
		return nil, fmt.Errorf("graph needs at least one vertex, got n=%d", p.N)
	}
	// Sparsification needs a connected graph, which takes at least n-1
	// edges; rejecting larger n here keeps a tiny request body from
	// driving O(n) adjacency allocations with an inflated vertex count.
	if p.N > len(p.Edges)+1 {
		return nil, fmt.Errorf("n=%d cannot be connected by %d edges", p.N, len(p.Edges))
	}
	edges := make([]graph.Edge, len(p.Edges))
	for i, e := range p.Edges {
		if e[0] != math.Trunc(e[0]) || e[1] != math.Trunc(e[1]) {
			return nil, fmt.Errorf("edge %d has non-integer endpoints [%g, %g]", i, e[0], e[1])
		}
		edges[i] = graph.Edge{U: int(e[0]), V: int(e[1]), W: e[2]}
	}
	return graph.New(p.N, edges)
}

func edgesPayload(g *graph.Graph) [][3]float64 {
	out := make([][3]float64, g.M())
	for i, e := range g.Edges {
		out[i] = [3]float64{float64(e.U), float64(e.V), e.W}
	}
	return out
}

type sparsifyRequest struct {
	Graph *graphPayload `json:"graph"`
}

// shardInfo is the response-side summary of a sharded build (or of the
// expander guard's decision to abandon one).
type shardInfo struct {
	Shards         int     `json:"shards"`
	CutEdges       int     `json:"cut_edges"`
	CutFraction    float64 `json:"cut_fraction"`
	CutRetained    int     `json:"cut_retained"`
	CutRecovered   int     `json:"cut_recovered"`
	FallbackSplits int     `json:"fallback_splits"`
	// ClustersRemote counts clusters of this build whose construction a
	// fleet worker answered (0 on fleet-less coordinators).
	ClustersRemote int `json:"clusters_remote,omitempty"`
	// Abandoned reports that the plan's cut fraction exceeded the guard
	// ceiling and the build fell back to the monolithic path.
	Abandoned bool `json:"abandoned,omitempty"`
}

// precondInfo is the response-side summary of how the artifact's
// preconditioner was built.
type precondInfo struct {
	Kind       string  `json:"kind"`
	Clusters   int     `json:"clusters,omitempty"`
	CoarseSize int     `json:"coarse_size,omitempty"`
	Colors     int     `json:"colors,omitempty"`
	FactorNNZ  int64   `json:"factor_nnz"`
	MemBytes   int64   `json:"mem_bytes"`
	BuildMS    float64 `json:"build_ms"`
}

// precondInfoOf extracts the preconditioner summary from an artifact.
func precondInfoOf(art *engine.Artifact) *precondInfo {
	ps := art.Handle.PrecondStats()
	if ps == nil {
		return nil
	}
	return &precondInfo{
		Kind:       ps.Kind,
		Clusters:   ps.Clusters,
		CoarseSize: ps.CoarseSize,
		Colors:     ps.Colors,
		FactorNNZ:  ps.FactorNNZ,
		MemBytes:   ps.MemBytes,
		BuildMS:    float64(ps.BuildTime) / float64(time.Millisecond),
	}
}

type sparsifyResponse struct {
	Key             string       `json:"key"`
	N               int          `json:"n"`
	M               int          `json:"m"`
	SparsifierEdges [][3]float64 `json:"sparsifier_edges,omitempty"`
	EdgeCount       int          `json:"sparsifier_edge_count"`
	Cached          bool         `json:"cached"`
	BuildMS         float64      `json:"build_ms"`
	// Sharded is non-nil when the artifact was built through the
	// partition-parallel pipeline (?shards=/?shard_threshold=, the
	// server's -shard-threshold default, or admission above
	// -max-vertices).
	Sharded *shardInfo `json:"sharded,omitempty"`
	// Precond reports how the artifact's preconditioner was built
	// (?precond=monolithic|schwarz|auto selects the strategy).
	Precond *precondInfo `json:"precond,omitempty"`
}

// buildOptsFrom parses the per-request build overrides: ?shards=K,
// ?shard_threshold=N (non-negative integers; 0 inherits the server
// default), ?precond=auto|monolithic|schwarz, and
// ?method=trace|grass|fegrass|er (absent inherits the server default).
func buildOptsFrom(r *http.Request) (engine.BuildOpts, error) {
	var bo engine.BuildOpts
	for _, p := range []struct {
		name string
		dst  *int
	}{
		{"shards", &bo.Shards},
		{"shard_threshold", &bo.ShardThreshold},
	} {
		raw := r.URL.Query().Get(p.name)
		if raw == "" {
			continue
		}
		v, err := strconv.Atoi(raw)
		if err != nil || v < 0 {
			return bo, fmt.Errorf("invalid %s %q (want a non-negative integer)", p.name, raw)
		}
		*p.dst = v
	}
	if raw := r.URL.Query().Get("precond"); raw != "" {
		kind, err := precond.ParseKind(raw)
		if err != nil {
			return bo, fmt.Errorf("invalid precond %q (want auto, monolithic, or schwarz)", raw)
		}
		bo.Precond = kind
	}
	if raw := r.URL.Query().Get("method"); raw != "" {
		m, err := sparsify.ParseMethod(raw)
		if err != nil {
			return bo, fmt.Errorf("invalid method %q (want trace, grass, fegrass, or er)", raw)
		}
		bo.Method = &m
	}
	return bo, nil
}

// shardInfoOf extracts the response summary from a (possibly sharded)
// artifact.
func shardInfoOf(art *engine.Artifact) *shardInfo {
	st := art.Handle.ShardStats()
	if st == nil {
		return nil
	}
	return &shardInfo{
		Shards:         st.Shards,
		CutEdges:       st.CutEdges,
		CutFraction:    st.CutFraction,
		CutRetained:    st.CutRetained,
		CutRecovered:   st.CutRecovered,
		FallbackSplits: st.FallbackSplits,
		ClustersRemote: st.ClustersRemote,
		Abandoned:      st.Abandoned,
	}
}

// isMatrixMarket reports whether the request body is a Matrix Market file
// rather than JSON, judged by Content-Type (text/* or
// application/x-matrix-market) or an explicit ?format=mm.
func isMatrixMarket(r *http.Request) bool {
	if r.URL.Query().Get("format") == "mm" {
		return true
	}
	ct, _, err := mime.ParseMediaType(r.Header.Get("Content-Type"))
	if err != nil {
		return false
	}
	return ct == "application/x-matrix-market" || strings.HasPrefix(ct, "text/")
}

// readGraph extracts the graph from a sparsify request body, accepting
// either JSON (inline edge list) or a raw Matrix Market upload.
func (s *server) readGraph(w http.ResponseWriter, r *http.Request) (*graph.Graph, error) {
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if isMatrixMarket(r) {
		return trsparse.ReadMatrixMarketGraph(body)
	}
	var req sparsifyRequest
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		return nil, fmt.Errorf("decoding JSON body: %w", err)
	}
	return req.Graph.toGraph()
}

func (s *server) handleSparsify(w http.ResponseWriter, r *http.Request) {
	ctx, cancel, err := requestCtx(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	defer cancel()
	bo, err := buildOptsFrom(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	g, err := s.readGraph(w, r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	art, cached, err := s.eng.SparsifyWith(ctx, g, bo)
	if err != nil {
		writeErr(w, statusOf(err), err)
		return
	}
	resp := sparsifyResponse{
		Key:       art.Key,
		N:         art.Fingerprint.N,
		M:         art.Fingerprint.M,
		EdgeCount: art.SparsifierGraph().M(),
		Cached:    cached,
		BuildMS:   float64(art.BuildTime) / float64(time.Millisecond),
		Sharded:   shardInfoOf(art),
		Precond:   precondInfoOf(art),
	}
	// ?edges=false skips materializing the sparsifier edge list — for
	// clients that only want the key for later /v1/solve calls, rendering
	// millions of [u,v,w] triples per request is pure memory amplification.
	if v := r.URL.Query().Get("edges"); v != "false" && v != "0" {
		resp.SparsifierEdges = edgesPayload(art.SparsifierGraph())
	}
	writeJSON(w, http.StatusOK, resp)
}

// updateRequest is an edge delta against a cached base artifact: set
// adds or reweights edges ([u, v, w] triples), remove deletes them
// ([u, v] pairs). The vertex set is fixed.
type updateRequest struct {
	Key    string       `json:"key"`
	Set    [][3]float64 `json:"set,omitempty"`
	Remove [][2]float64 `json:"remove,omitempty"`
}

func (r *updateRequest) toDelta() (graph.Delta, error) {
	var d graph.Delta
	for i, e := range r.Set {
		if e[0] != math.Trunc(e[0]) || e[1] != math.Trunc(e[1]) {
			return d, fmt.Errorf("set %d has non-integer endpoints [%g, %g]", i, e[0], e[1])
		}
		d.Set = append(d.Set, graph.Edge{U: int(e[0]), V: int(e[1]), W: e[2]})
	}
	for i, e := range r.Remove {
		if e[0] != math.Trunc(e[0]) || e[1] != math.Trunc(e[1]) {
			return d, fmt.Errorf("remove %d has non-integer endpoints [%g, %g]", i, e[0], e[1])
		}
		d.Remove = append(d.Remove, [2]int{int(e[0]), int(e[1])})
	}
	return d, nil
}

// reuseInfo is the response-side summary of what an incremental rebuild
// avoided: which fraction of the plan's clusters adopted their cached
// sparsifier verbatim, and how many Schwarz factors were reused.
type reuseInfo struct {
	// Incremental is false when the rebuild fell back to a full build
	// (monolithic base, rebalance guard replan, or abandoned plan).
	Incremental          bool    `json:"incremental"`
	Clusters             int     `json:"clusters"`
	ClustersReused       int     `json:"clusters_reused"`
	ClusterReuseFraction float64 `json:"cluster_reuse_fraction"`
	FactorsReused        int     `json:"factors_reused"`
}

func reuseInfoOf(art *engine.Artifact) *reuseInfo {
	st := art.Handle.ShardStats()
	if st == nil {
		return &reuseInfo{}
	}
	ri := &reuseInfo{
		Incremental:    st.Incremental,
		Clusters:       st.Shards,
		ClustersReused: st.ClustersReused,
	}
	if st.Shards > 0 {
		ri.ClusterReuseFraction = float64(st.ClustersReused) / float64(st.Shards)
	}
	if ps := art.Handle.PrecondStats(); ps != nil {
		ri.FactorsReused = ps.FactorsReused
	}
	return ri
}

type updateResponse struct {
	// Key identifies the NEW artifact (the updated graph's fingerprint);
	// BaseKey echoes the artifact the delta was applied to.
	Key       string       `json:"key"`
	BaseKey   string       `json:"base_key"`
	N         int          `json:"n"`
	M         int          `json:"m"`
	EdgeCount int          `json:"sparsifier_edge_count"`
	Cached    bool         `json:"cached"`
	BuildMS   float64      `json:"build_ms"`
	Reuse     *reuseInfo   `json:"reuse"`
	Sharded   *shardInfo   `json:"sharded,omitempty"`
	Precond   *precondInfo `json:"precond,omitempty"`
}

// handleUpdate serves the incremental rebuild path: POST a base artifact
// key plus an edge delta, get back a new artifact for the updated graph
// that reused every cluster the delta did not touch. The new artifact
// replaces any whole-graph cache entry under the same key (see
// MIGRATION.md).
func (s *server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	ctx, cancel, err := requestCtx(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	defer cancel()
	var req updateRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decoding JSON body: %w", err))
		return
	}
	if req.Key == "" {
		writeErr(w, http.StatusBadRequest, errors.New("missing base artifact key"))
		return
	}
	d, err := req.toDelta()
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if d.Empty() {
		writeErr(w, http.StatusBadRequest, errors.New("empty delta: pass set and/or remove"))
		return
	}
	art, cached, err := s.eng.Update(ctx, req.Key, d)
	if err != nil {
		writeErr(w, statusOf(err), err)
		return
	}
	writeJSON(w, http.StatusOK, updateResponse{
		Key:       art.Key,
		BaseKey:   req.Key,
		N:         art.Fingerprint.N,
		M:         art.Fingerprint.M,
		EdgeCount: art.SparsifierGraph().M(),
		Cached:    cached,
		BuildMS:   float64(art.BuildTime) / float64(time.Millisecond),
		Reuse:     reuseInfoOf(art),
		Sharded:   shardInfoOf(art),
		Precond:   precondInfoOf(art),
	})
}

type solveRequest struct {
	// Key references an artifact from a previous /v1/sparsify response;
	// alternatively pass the graph inline.
	Key   string        `json:"key,omitempty"`
	Graph *graphPayload `json:"graph,omitempty"`
	B     []float64     `json:"b,omitempty"`
	// Rhs is the batched form: an array of right-hand-side vectors solved
	// together as one block solve (one matrix sweep and one
	// preconditioner apply per iteration serve every column). Exactly one
	// of B and Rhs must be set; every Rhs column must have the same
	// length.
	Rhs [][]float64 `json:"rhs,omitempty"`
	Tol float64     `json:"tol,omitempty"`
}

type solveResponse struct {
	Key        string    `json:"key"`
	X          []float64 `json:"x"`
	Iterations int       `json:"iterations"`
	RelRes     float64   `json:"relres"`
	Converged  bool      `json:"converged"`
	Cached     bool      `json:"cached"`
	// Precond reports the preconditioner the solve ran through. For
	// inline graphs ?precond= selects the strategy at build time; for
	// by-key solves the artifact's existing preconditioner is reported
	// (the key pins the build, so ?precond= cannot change it — re-POST
	// /v2/sparsify with the desired strategy instead).
	Precond *precondInfo `json:"precond,omitempty"`
}

// solveColumn is one right-hand side's outcome in a batched solve
// response: its solution plus its own convergence record (block PCG
// converges and deflates columns independently).
type solveColumn struct {
	X          []float64 `json:"x"`
	Iterations int       `json:"iterations"`
	RelRes     float64   `json:"relres"`
	Converged  bool      `json:"converged"`
}

// solveBatchResponse answers the batched request form (rhs array).
type solveBatchResponse struct {
	Key     string        `json:"key"`
	Results []solveColumn `json:"results"`
	Cached  bool          `json:"cached"`
	Precond *precondInfo  `json:"precond,omitempty"`
}

func (s *server) handleSolve(w http.ResponseWriter, r *http.Request) {
	ctx, cancel, err := requestCtx(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	defer cancel()
	bo, err := buildOptsFrom(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	var req solveRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decoding JSON body: %w", err))
		return
	}
	if len(req.B) > 0 && len(req.Rhs) > 0 {
		writeErr(w, http.StatusBadRequest, errors.New("pass either b (one rhs) or rhs (a batch), not both"))
		return
	}
	if len(req.B) == 0 && len(req.Rhs) == 0 {
		writeErr(w, http.StatusBadRequest, errors.New("missing right-hand side: pass b (one vector) or rhs (an array of vectors)"))
		return
	}
	// Ragged batches are a malformed request, rejected here with the
	// machine-readable invalid_request code before any engine work: the
	// engine's own dimension check would blame the artifact instead.
	for i, col := range req.Rhs {
		if len(col) != len(req.Rhs[0]) {
			writeErr(w, http.StatusBadRequest,
				fmt.Errorf("ragged rhs batch: column %d has length %d, column 0 has %d", i, len(col), len(req.Rhs[0])))
			return
		}
	}
	if len(req.Rhs) > 0 && len(req.Rhs[0]) == 0 {
		writeErr(w, http.StatusBadRequest, errors.New("rhs columns are empty"))
		return
	}

	var art *engine.Artifact
	cached := false
	switch {
	case req.Key != "":
		var ok bool
		if art, ok = s.eng.Lookup(req.Key); !ok {
			writeErr(w, http.StatusNotFound,
				fmt.Errorf("no cached artifact for key %q (evicted or never built); re-POST /v2/sparsify", req.Key))
			return
		}
		cached = true
	case req.Graph != nil:
		g, err := req.Graph.toGraph()
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		// Reject a mis-sized rhs before paying for sparsification and
		// factorization (the engine re-checks for the by-key path).
		n := len(req.B)
		if len(req.Rhs) > 0 {
			n = len(req.Rhs[0])
		}
		if n != g.N {
			writeErr(w, http.StatusBadRequest, fmt.Errorf(
				"rhs has length %d, graph has %d vertices (%w)", n, g.N, core.ErrDimension))
			return
		}
		if art, cached, err = s.eng.SparsifyWith(ctx, g, bo); err != nil {
			writeErr(w, statusOf(err), err)
			return
		}
	default:
		writeErr(w, http.StatusBadRequest, errors.New("pass either key or graph"))
		return
	}

	if len(req.Rhs) > 0 {
		results, err := s.eng.SolveBatchArtifact(ctx, art, req.Rhs, req.Tol)
		if err != nil {
			writeErr(w, statusOf(err), err)
			return
		}
		cols := make([]solveColumn, len(results))
		for i, r := range results {
			cols[i] = solveColumn{X: r.X, Iterations: r.Iterations, RelRes: r.RelRes, Converged: r.Converged}
		}
		writeJSON(w, http.StatusOK, solveBatchResponse{
			Key:     art.Key,
			Results: cols,
			Cached:  cached,
			Precond: precondInfoOf(art),
		})
		return
	}

	res, err := s.eng.SolveArtifact(ctx, art, req.B, req.Tol)
	if err != nil {
		writeErr(w, statusOf(err), err)
		return
	}
	writeJSON(w, http.StatusOK, solveResponse{
		Key:        art.Key,
		X:          res.X,
		Iterations: res.Iterations,
		RelRes:     res.RelRes,
		Converged:  res.Converged,
		Cached:     cached,
		Precond:    precondInfoOf(art),
	})
}

type partitionRequest struct {
	// Key references an artifact from a previous /v2/sparsify response;
	// alternatively pass the graph inline.
	Key   string        `json:"key,omitempty"`
	Graph *graphPayload `json:"graph,omitempty"`
}

type partitionResponse struct {
	Key       string `json:"key"`
	Partition []int  `json:"partition"`
}

// handlePartition serves the paper's §4.3 application — a balanced
// spectral bipartition via the sparsifier-preconditioned Fiedler vector —
// through the same cached artifacts the solve path uses.
func (s *server) handlePartition(w http.ResponseWriter, r *http.Request) {
	ctx, cancel, err := requestCtx(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	defer cancel()
	var req partitionRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decoding JSON body: %w", err))
		return
	}
	var art *engine.Artifact
	switch {
	case req.Key != "":
		var ok bool
		if art, ok = s.eng.Lookup(req.Key); !ok {
			writeErr(w, http.StatusNotFound,
				fmt.Errorf("no cached artifact for key %q (evicted or never built); re-POST /v2/sparsify", req.Key))
			return
		}
	case req.Graph != nil:
		g, err := req.Graph.toGraph()
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		if art, _, err = s.eng.Sparsify(ctx, g); err != nil {
			writeErr(w, statusOf(err), err)
			return
		}
	default:
		writeErr(w, http.StatusBadRequest, errors.New("pass either key or graph"))
		return
	}
	part, err := s.eng.PartitionArtifact(ctx, art)
	if err != nil {
		writeErr(w, statusOf(err), err)
		return
	}
	writeJSON(w, http.StatusOK, partitionResponse{Key: art.Key, Partition: part})
}

type statsResponse struct {
	engine.Stats
	HitRate       float64 `json:"cache_hit_rate"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Workers       int     `json:"workers"`
	// CoalesceWindowMS echoes the configured -coalesce-window (0 when
	// request coalescing is disabled), so operators reading batch_p50
	// know what window produced it.
	CoalesceWindowMS float64 `json:"coalesce_window_ms"`
	// Streams is the per-session detail behind the aggregate stream_*
	// counters; absent when no sessions are open.
	Streams []engine.StreamStats `json:"streams,omitempty"`
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.eng.Stats()
	writeJSON(w, http.StatusOK, statsResponse{
		Stats:            st,
		HitRate:          st.HitRate(),
		UptimeSeconds:    time.Since(s.start).Seconds(),
		Workers:          s.eng.Options().Workers,
		CoalesceWindowMS: float64(s.eng.Options().CoalesceWindow) / float64(time.Millisecond),
		Streams:          s.eng.StreamStats(),
	})
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// classify maps an engine or library error to its (HTTP status,
// machine-readable code) pair — the single source of the structured error
// taxonomy: cancellations and timeouts surface as 503 (the service is
// saturated, the per-request deadline passed, or the client gave up),
// oversized graphs as 413, dimension mismatches as 400, recovered panics
// as 500 (an engine fault, not the client's graph), everything else as
// 422 (the graph itself was unusable).
func classify(err error) (int, string) {
	switch {
	case errors.Is(err, core.ErrCanceled),
		errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable, "canceled"
	case errors.Is(err, core.ErrDisconnected):
		return http.StatusUnprocessableEntity, "disconnected"
	case errors.Is(err, core.ErrNotSPD):
		return http.StatusUnprocessableEntity, "not_spd"
	case errors.Is(err, core.ErrTooLarge):
		return http.StatusRequestEntityTooLarge, "too_large"
	case errors.Is(err, core.ErrDimension):
		return http.StatusBadRequest, "dimension"
	case errors.Is(err, engine.ErrUnknownKey):
		return http.StatusNotFound, "unknown_key"
	case errors.Is(err, engine.ErrInternal):
		return http.StatusInternalServerError, "internal"
	case errors.Is(err, engine.ErrStreamBackpressure):
		return http.StatusTooManyRequests, "backpressure"
	case errors.Is(err, engine.ErrStreamClosed):
		return http.StatusConflict, "stream_closed"
	case errors.Is(err, engine.ErrStreamLimit):
		return http.StatusServiceUnavailable, "stream_limit"
	case errors.Is(err, engine.ErrBadDelta):
		return http.StatusBadRequest, "bad_delta"
	case errors.Is(err, errUnknownStream):
		return http.StatusNotFound, "unknown_stream"
	}
	return http.StatusUnprocessableEntity, "invalid_graph"
}

// statusOf is classify's status for call sites that pick the code later.
func statusOf(err error) int {
	status, _ := classify(err)
	return status
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	// Encode before committing the status so an encoding failure (e.g. a
	// NaN that slipped into a result) yields a clean 500 instead of a 200
	// with a truncated body.
	buf, err := json.Marshal(v)
	if err != nil {
		log.Printf("encoding response: %v", err)
		status = http.StatusInternalServerError
		buf = []byte(`{"error":"internal server error: unencodable response","code":"internal"}`)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if _, err := w.Write(append(buf, '\n')); err != nil {
		log.Printf("writing response: %v", err)
	}
}

type errorResponse struct {
	Error string `json:"error"`
	// Code is the machine-readable member of the structured error
	// taxonomy: canceled | disconnected | not_spd | too_large | dimension
	// | unknown_key | internal | invalid_request | invalid_graph |
	// backpressure | stream_closed | stream_limit | bad_delta |
	// unknown_stream.
	Code string `json:"code"`
}

func writeErr(w http.ResponseWriter, status int, err error) {
	// The code comes from the error taxonomy when it recognizes the error;
	// otherwise the handler-chosen status names the code (a 404 is an
	// unknown key, a 400 a malformed request, a 5xx an engine fault, and
	// the 422 fallback an unusable graph).
	_, code := classify(err)
	if code == "invalid_graph" {
		switch {
		case status == http.StatusNotFound:
			code = "unknown_key"
		case status == http.StatusBadRequest:
			code = "invalid_request"
		case status >= http.StatusInternalServerError:
			code = "internal"
		}
	}
	// Server faults keep their detail in the log, not the response body.
	// Cancellations also map to 5xx (503) but are the client's deadline,
	// not a fault — their message is useful and safe to return.
	if code == "internal" {
		log.Printf("internal error: %v", err)
		err = errors.New("internal server error")
	}
	writeJSON(w, status, errorResponse{Error: err.Error(), Code: code})
}
