package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"math"
	"mime"
	"net/http"
	"strings"
	"time"

	trsparse "repro"
	"repro/internal/engine"
	"repro/internal/graph"
)

// maxBodyBytes caps request bodies; a 64 MiB Matrix Market file covers
// every SuiteSparse case the paper evaluates.
const maxBodyBytes = 64 << 20

// server wires the sparsification engine to the HTTP surface.
type server struct {
	eng   *engine.Engine
	start time.Time
}

func newServer(eng *engine.Engine) *server {
	return &server{eng: eng, start: time.Now()}
}

// handler builds the route table.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sparsify", s.handleSparsify)
	mux.HandleFunc("POST /v1/solve", s.handleSolve)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// graphPayload is an inline graph: vertex count plus [u, v, w] triples.
type graphPayload struct {
	N     int          `json:"n"`
	Edges [][3]float64 `json:"edges"`
}

func (p *graphPayload) toGraph() (*graph.Graph, error) {
	if p == nil {
		return nil, errors.New("missing graph")
	}
	if p.N < 1 {
		return nil, fmt.Errorf("graph needs at least one vertex, got n=%d", p.N)
	}
	// Sparsification needs a connected graph, which takes at least n-1
	// edges; rejecting larger n here keeps a tiny request body from
	// driving O(n) adjacency allocations with an inflated vertex count.
	if p.N > len(p.Edges)+1 {
		return nil, fmt.Errorf("n=%d cannot be connected by %d edges", p.N, len(p.Edges))
	}
	edges := make([]graph.Edge, len(p.Edges))
	for i, e := range p.Edges {
		if e[0] != math.Trunc(e[0]) || e[1] != math.Trunc(e[1]) {
			return nil, fmt.Errorf("edge %d has non-integer endpoints [%g, %g]", i, e[0], e[1])
		}
		edges[i] = graph.Edge{U: int(e[0]), V: int(e[1]), W: e[2]}
	}
	return graph.New(p.N, edges)
}

func edgesPayload(g *graph.Graph) [][3]float64 {
	out := make([][3]float64, g.M())
	for i, e := range g.Edges {
		out[i] = [3]float64{float64(e.U), float64(e.V), e.W}
	}
	return out
}

type sparsifyRequest struct {
	Graph *graphPayload `json:"graph"`
}

type sparsifyResponse struct {
	Key             string       `json:"key"`
	N               int          `json:"n"`
	M               int          `json:"m"`
	SparsifierEdges [][3]float64 `json:"sparsifier_edges,omitempty"`
	EdgeCount       int          `json:"sparsifier_edge_count"`
	Cached          bool         `json:"cached"`
	BuildMS         float64      `json:"build_ms"`
}

// isMatrixMarket reports whether the request body is a Matrix Market file
// rather than JSON, judged by Content-Type (text/* or
// application/x-matrix-market) or an explicit ?format=mm.
func isMatrixMarket(r *http.Request) bool {
	if r.URL.Query().Get("format") == "mm" {
		return true
	}
	ct, _, err := mime.ParseMediaType(r.Header.Get("Content-Type"))
	if err != nil {
		return false
	}
	return ct == "application/x-matrix-market" || strings.HasPrefix(ct, "text/")
}

// readGraph extracts the graph from a sparsify request body, accepting
// either JSON (inline edge list) or a raw Matrix Market upload.
func (s *server) readGraph(w http.ResponseWriter, r *http.Request) (*graph.Graph, error) {
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if isMatrixMarket(r) {
		return trsparse.ReadMatrixMarketGraph(body)
	}
	var req sparsifyRequest
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		return nil, fmt.Errorf("decoding JSON body: %w", err)
	}
	return req.Graph.toGraph()
}

func (s *server) handleSparsify(w http.ResponseWriter, r *http.Request) {
	g, err := s.readGraph(w, r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	art, cached, err := s.eng.Sparsify(r.Context(), g)
	if err != nil {
		writeErr(w, statusOf(err), err)
		return
	}
	resp := sparsifyResponse{
		Key:       art.Key,
		N:         art.Fingerprint.N,
		M:         art.Fingerprint.M,
		EdgeCount: art.Sparsifier.M(),
		Cached:    cached,
		BuildMS:   float64(art.BuildTime) / float64(time.Millisecond),
	}
	// ?edges=false skips materializing the sparsifier edge list — for
	// clients that only want the key for later /v1/solve calls, rendering
	// millions of [u,v,w] triples per request is pure memory amplification.
	if v := r.URL.Query().Get("edges"); v != "false" && v != "0" {
		resp.SparsifierEdges = edgesPayload(art.Sparsifier)
	}
	writeJSON(w, http.StatusOK, resp)
}

type solveRequest struct {
	// Key references an artifact from a previous /v1/sparsify response;
	// alternatively pass the graph inline.
	Key   string        `json:"key,omitempty"`
	Graph *graphPayload `json:"graph,omitempty"`
	B     []float64     `json:"b"`
	Tol   float64       `json:"tol,omitempty"`
}

type solveResponse struct {
	Key        string    `json:"key"`
	X          []float64 `json:"x"`
	Iterations int       `json:"iterations"`
	RelRes     float64   `json:"relres"`
	Converged  bool      `json:"converged"`
	Cached     bool      `json:"cached"`
}

func (s *server) handleSolve(w http.ResponseWriter, r *http.Request) {
	var req solveRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decoding JSON body: %w", err))
		return
	}
	if len(req.B) == 0 {
		writeErr(w, http.StatusBadRequest, errors.New("missing rhs b"))
		return
	}

	var (
		res *engine.SolveResult
		err error
	)
	switch {
	case req.Key != "":
		art, ok := s.eng.Lookup(req.Key)
		if !ok {
			writeErr(w, http.StatusNotFound,
				fmt.Errorf("no cached artifact for key %q (evicted or never built); re-POST /v1/sparsify", req.Key))
			return
		}
		res, err = s.eng.SolveArtifact(r.Context(), art, req.B, req.Tol)
		if res != nil {
			res.CacheHit = true
		}
	case req.Graph != nil:
		var g *graph.Graph
		g, err = req.Graph.toGraph()
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		res, err = s.eng.Solve(r.Context(), g, req.B, req.Tol)
	default:
		writeErr(w, http.StatusBadRequest, errors.New("pass either key or graph"))
		return
	}
	if err != nil {
		writeErr(w, statusOf(err), err)
		return
	}
	writeJSON(w, http.StatusOK, solveResponse{
		Key:        res.Artifact.Key,
		X:          res.X,
		Iterations: res.Iterations,
		RelRes:     res.RelRes,
		Converged:  res.Converged,
		Cached:     res.CacheHit,
	})
}

type statsResponse struct {
	engine.Stats
	HitRate       float64 `json:"cache_hit_rate"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Workers       int     `json:"workers"`
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.eng.Stats()
	writeJSON(w, http.StatusOK, statsResponse{
		Stats:         st,
		HitRate:       st.HitRate(),
		UptimeSeconds: time.Since(s.start).Seconds(),
		Workers:       s.eng.Options().Workers,
	})
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// statusOf maps engine errors to HTTP statuses: cancellations and timeouts
// surface as 503 (the service is saturated or the client gave up),
// recovered panics as 500 (an engine fault, not the client's graph),
// everything else as 422 (the graph itself was unusable).
func statusOf(err error) int {
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		return http.StatusServiceUnavailable
	}
	if errors.Is(err, engine.ErrInternal) {
		return http.StatusInternalServerError
	}
	return http.StatusUnprocessableEntity
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	// Encode before committing the status so an encoding failure (e.g. a
	// NaN that slipped into a result) yields a clean 500 instead of a 200
	// with a truncated body.
	buf, err := json.Marshal(v)
	if err != nil {
		log.Printf("encoding response: %v", err)
		status = http.StatusInternalServerError
		buf = []byte(`{"error":"internal server error: unencodable response"}`)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if _, err := w.Write(append(buf, '\n')); err != nil {
		log.Printf("writing response: %v", err)
	}
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeErr(w http.ResponseWriter, status int, err error) {
	// Server faults keep their detail in the log, not the response body.
	if status >= http.StatusInternalServerError {
		log.Printf("internal error: %v", err)
		err = errors.New("internal server error")
	}
	writeJSON(w, status, errorResponse{Error: err.Error()})
}
